// Benchmarks regenerating every experiment of the paper (see DESIGN.md
// §4 for the experiment ↔ bench mapping):
//
//	F3 (Figure 3)  BenchmarkFig3
//	F4 (Figure 4)  BenchmarkFig4
//	F5 (Figure 5)  BenchmarkFig5
//	F6 (Figure 6)  BenchmarkFig6
//	T1 (§4.3)      BenchmarkQuality
//	T2 (§4.1)      BenchmarkQuery_* and BenchmarkIndexBuild
//
// plus the ablations DESIGN.md §5 calls out (PLL vs Dijkstra oracle,
// normalization on/off) and component benchmarks for the baselines.
// Benchmarks run at a reduced corpus scale so `go test -bench=.`
// finishes in minutes; cmd/expgen reproduces the experiments at any
// scale.
package authteam_test

import (
	"math/rand"
	"sync"
	"testing"

	"authteam/internal/core"
	"authteam/internal/dblp"
	"authteam/internal/eval"
	"authteam/internal/expertgraph"
	"authteam/internal/oracle"
	"authteam/internal/pll"
	"authteam/internal/transform"
	"authteam/internal/workload"
)

// benchScale is the corpus size for component benchmarks.
const benchScale = 1200

var (
	benchOnce sync.Once
	benchG    *expertgraph.Graph
	benchP    *transform.Params
	benchIdx  *pll.Index // raw weights
	benchIdxG *pll.Index // G' weights
	benchProj map[int][]expertgraph.SkillID
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		c := dblp.Synthesize(dblp.SynthConfig{Seed: 1, Authors: benchScale})
		g, _, err := dblp.BuildGraph(c, dblp.GraphOptions{LargestComponent: true})
		if err != nil {
			panic(err)
		}
		benchG = g
		benchP, err = transform.Fit(g, 0.6, 0.6, transform.Options{Normalize: true})
		if err != nil {
			panic(err)
		}
		benchIdx = pll.Build(g)
		benchIdxG = pll.BuildWithOptions(g, pll.Options{Weight: benchP.EdgeWeight()})
		gen, err := workload.NewGenerator(g, 11, workload.Options{MinHolders: 2})
		if err != nil {
			panic(err)
		}
		benchProj = make(map[int][]expertgraph.SkillID)
		for _, n := range []int{4, 6, 8, 10} {
			p, err := gen.Project(n)
			if err != nil {
				panic(err)
			}
			benchProj[n] = p
		}
	})
}

// --- T2: index construction and per-query latency (§4.1) ---------------

func BenchmarkIndexBuild_G(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pll.Build(benchG)
	}
}

func BenchmarkIndexBuild_GPrime(b *testing.B) {
	benchSetup(b)
	w := benchP.EdgeWeight()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pll.BuildWithOptions(benchG, pll.Options{Weight: w})
	}
}

func benchmarkQuery(b *testing.B, m core.Method, skills int) {
	benchSetup(b)
	var idx oracle.Oracle = oracle.NewPLL(benchIdxG)
	if m == core.CC {
		idx = oracle.NewPLL(benchIdx)
	}
	project := benchProj[skills]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.NewDiscoverer(benchP, m, core.WithOracle(idx))
		if _, err := d.BestTeam(project); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery_CC_4Skills(b *testing.B)      { benchmarkQuery(b, core.CC, 4) }
func BenchmarkQuery_CC_10Skills(b *testing.B)     { benchmarkQuery(b, core.CC, 10) }
func BenchmarkQuery_CACC_4Skills(b *testing.B)    { benchmarkQuery(b, core.CACC, 4) }
func BenchmarkQuery_CACC_10Skills(b *testing.B)   { benchmarkQuery(b, core.CACC, 10) }
func BenchmarkQuery_SACACC_4Skills(b *testing.B)  { benchmarkQuery(b, core.SACACC, 4) }
func BenchmarkQuery_SACACC_6Skills(b *testing.B)  { benchmarkQuery(b, core.SACACC, 6) }
func BenchmarkQuery_SACACC_8Skills(b *testing.B)  { benchmarkQuery(b, core.SACACC, 8) }
func BenchmarkQuery_SACACC_10Skills(b *testing.B) { benchmarkQuery(b, core.SACACC, 10) }

// --- Baselines ----------------------------------------------------------

func BenchmarkRandomBaseline_1000Trials(b *testing.B) {
	benchSetup(b)
	idx := oracle.NewPLL(benchIdxG)
	project := benchProj[4]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := core.RandomFast(benchP, project, 1000, rng, idx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExact_4Skills(b *testing.B) {
	benchSetup(b)
	idx := oracle.NewPLL(benchIdxG)
	project := benchProj[4]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Exact(benchP, project, core.ExactOptions{
			MaxCandidatesPerSkill: 4,
			Oracle:                idx,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPareto(b *testing.B) {
	benchSetup(b)
	project := benchProj[4]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.ParetoFront(benchG, project, core.ParetoOptions{
			GammaGrid:  []float64{0.2, 0.8},
			LambdaGrid: []float64{0.2, 0.8},
			TopK:       2,
			UsePLL:     true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) --------------------------------------------

// BenchmarkOracle_PLL vs BenchmarkOracle_Dijkstra: per-query distance
// cost of the 2-hop cover against single-source Dijkstra.
func BenchmarkOracle_PLL(b *testing.B) {
	benchSetup(b)
	idx := oracle.NewPLL(benchIdx)
	n := benchG.NumNodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := expertgraph.NodeID(i % n)
		v := expertgraph.NodeID((i * 7919) % n)
		_ = idx.Dist(u, v)
	}
}

func BenchmarkOracle_Dijkstra(b *testing.B) {
	benchSetup(b)
	dj := oracle.NewDijkstra(benchG, nil)
	n := benchG.NumNodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh source each iteration defeats the source cache, so
		// this measures the true cold-query cost.
		u := expertgraph.NodeID(i % n)
		v := expertgraph.NodeID((i * 7919) % n)
		_ = dj.Dist(u, v)
	}
}

// BenchmarkDiscovery_DijkstraOracle quantifies what the index buys at
// the whole-query level (same search, no preprocessing).
func BenchmarkDiscovery_DijkstraOracle_4Skills(b *testing.B) {
	benchSetup(b)
	project := benchProj[4]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.NewDiscoverer(benchP, core.SACACC)
		if _, err := d.BestTeam(project); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNormalization compares searches with and without
// Definition 4's min–max normalization.
func BenchmarkAblationNormalization(b *testing.B) {
	benchSetup(b)
	for _, norm := range []bool{true, false} {
		name := "normalized"
		if !norm {
			name = "raw"
		}
		b.Run(name, func(b *testing.B) {
			p, err := transform.Fit(benchG, 0.6, 0.6, transform.Options{Normalize: norm})
			if err != nil {
				b.Fatal(err)
			}
			idx := oracle.BuildPLL(benchG, p.EdgeWeight())
			project := benchProj[4]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := core.NewDiscoverer(p, core.SACACC, core.WithOracle(idx))
				if _, err := d.BestTeam(project); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Whole-figure benchmarks (F3–F6, T1) ----------------------------------

// benchEvalEnv is a tiny harness environment reused by the figure
// benchmarks.
var (
	evalOnce sync.Once
	evalEnv  *eval.Env
)

func evalSetup(b *testing.B) *eval.Env {
	b.Helper()
	evalOnce.Do(func() {
		env, err := eval.NewEnv(eval.Config{
			Seed:               1,
			Authors:            600,
			Projects:           2,
			SkillCounts:        []int{4, 6},
			Lambdas:            []float64{0.2, 0.6},
			RandomTrials:       500,
			ExactSkillLimit:    4,
			ExactCandidates:    4,
			ExactProjects:      1,
			QualityProjects:    2,
			QualityTrials:      25,
			SensitivityLambdas: []float64{0.2, 0.5, 0.8},
			Workers:            2,
		})
		if err != nil {
			panic(err)
		}
		evalEnv = env
	})
	return evalEnv
}

func BenchmarkFig3(b *testing.B) {
	env := evalSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFig3(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	env := evalSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFig4(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	env := evalSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFig5(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	env := evalSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFig6(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuality(b *testing.B) {
	env := evalSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunQuality(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusSynthesis measures the dataset substrate itself.
func BenchmarkCorpusSynthesis(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dblp.Synthesize(dblp.SynthConfig{Seed: int64(i), Authors: 1000})
	}
}

// BenchmarkGraphDerivation measures corpus → expert network.
func BenchmarkGraphDerivation(b *testing.B) {
	c := dblp.Synthesize(dblp.SynthConfig{Seed: 1, Authors: 1000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dblp.BuildGraph(c, dblp.GraphOptions{LargestComponent: true}); err != nil {
			b.Fatal(err)
		}
	}
}
