package authteam_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"authteam"

	"authteam/internal/core"
	"authteam/internal/dblp"
	"authteam/internal/expertgraph"
	"authteam/internal/pll"
	"authteam/internal/team"
	"authteam/internal/transform"
	"authteam/internal/workload"
)

// TestEndToEndPipeline runs the full corpus → graph → index → discovery
// → evaluation → replacement pipeline through the public facade, on a
// deterministic synthetic corpus.
func TestEndToEndPipeline(t *testing.T) {
	corpus := authteam.SynthesizeCorpus(authteam.SynthConfig{Seed: 5, Authors: 800})
	g, err := authteam.BuildCorpusGraph(corpus, authteam.CorpusGraphOptions{LargestComponent: true})
	if err != nil {
		t.Fatal(err)
	}
	client, err := authteam.New(g, authteam.Options{Gamma: 0.6, Lambda: 0.6, BuildIndex: true})
	if err != nil {
		t.Fatal(err)
	}

	// Pick a feasible 4-skill project via the workload generator.
	gen, err := workload.NewGenerator(g, 3, workload.Options{MinHolders: 2})
	if err != nil {
		t.Fatal(err)
	}
	project, err := gen.Project(4)
	if err != nil {
		t.Fatal(err)
	}
	skills := make([]string, len(project))
	for i, s := range project {
		skills[i] = g.SkillName(s)
	}

	var teams []*authteam.Team
	for _, m := range []authteam.Method{authteam.CC, authteam.CACC, authteam.SACACC} {
		tm, err := client.BestTeam(m, skills)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := tm.Validate(g, project); err != nil {
			t.Fatalf("%v: invalid team: %v", m, err)
		}
		teams = append(teams, tm)
	}

	// The headline property on this instance: the SA-CA-CC team is at
	// least as good as the CC team on the SA-CA-CC objective.
	ccScore := client.Evaluate(teams[0]).SACACC
	saScore := client.Evaluate(teams[2]).SACACC
	if saScore > ccScore+1e-9 {
		t.Errorf("SA-CA-CC (%v) worse than CC (%v) on its own objective", saScore, ccScore)
	}

	// Replace a holder of the SA-CA-CC team.
	saTeam := teams[2]
	leaver := saTeam.Holders()[0]
	reps, err := client.ReplaceMember(saTeam, leaver, 3)
	switch {
	case errors.Is(err, authteam.ErrNoTeam), errors.Is(err, authteam.ErrNoExpert):
		// acceptable: no substitute exists on this instance
	case err != nil:
		t.Fatal(err)
	default:
		for _, r := range reps {
			if err := r.Team.Validate(g, project); err != nil {
				t.Errorf("replacement invalid: %v", err)
			}
		}
	}

	// Baselines bracket the greedy.
	exact, err := client.Exact(skills, authteam.ExactOptions{MaxCandidatesPerSkill: 4})
	if err == nil {
		if client.Evaluate(exact).SACACC > saScore+1e-9 {
			t.Error("Exact (with warm start) must never be worse than greedy")
		}
	} else if !errors.Is(err, authteam.ErrBudgetExceeded) {
		t.Fatal(err)
	}
	rnd, err := client.Random(skills, 500, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := rnd.Validate(g, project); err != nil {
		t.Errorf("random team invalid: %v", err)
	}
}

// TestDiscoveryInvariantsProperty drives the whole stack with random
// graphs and projects: every returned team must validate, evaluate to
// finite nonnegative scores, and the three methods must rank
// consistently on their own objectives.
func TestDiscoveryInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := dblp.Synthesize(dblp.SynthConfig{Seed: seed, Authors: 150 + rng.Intn(150)})
		g, _, err := dblp.BuildGraph(c, dblp.GraphOptions{LargestComponent: true})
		if err != nil {
			return false
		}
		gen, err := workload.NewGenerator(g, seed, workload.Options{})
		if err != nil {
			return false
		}
		project, err := gen.Project(2 + rng.Intn(2))
		if err != nil {
			return true // tiny corpus without a feasible project: skip
		}
		p, err := transform.Fit(g, rng.Float64(), rng.Float64(), transform.Options{Normalize: true})
		if err != nil {
			return false
		}
		for _, m := range []core.Method{core.CC, core.CACC, core.SACACC} {
			teams, err := core.NewDiscoverer(p, m).TopK(project, 3)
			if errors.Is(err, core.ErrNoTeam) {
				continue
			}
			if err != nil {
				return false
			}
			for _, tm := range teams {
				if tm.Validate(g, project) != nil {
					return false
				}
				s := team.Evaluate(tm, p)
				if s.SACACC < 0 || s.CC < 0 || s.CA < 0 || s.SA < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestObjectiveOptimalityProperty: on small graphs where Exact is
// tractable, each method's team must be the best among the three on
// the objective it optimizes (up to greedy slack, which Exact
// bounds from below).
func TestObjectiveOptimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		c := dblp.Synthesize(dblp.SynthConfig{Seed: int64(trial), Authors: 250})
		g, _, err := dblp.BuildGraph(c, dblp.GraphOptions{LargestComponent: true})
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewGenerator(g, int64(trial), workload.Options{MinHolders: 2})
		if err != nil {
			t.Fatal(err)
		}
		project, err := gen.Project(3)
		if err != nil {
			continue
		}
		p, err := transform.Fit(g, 0.6, 0.6, transform.Options{Normalize: true})
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := core.NewDiscoverer(p, core.SACACC).BestTeam(project)
		if err != nil {
			continue
		}
		exact, err := core.Exact(p, project, core.ExactOptions{MaxCandidatesPerSkill: 6})
		if err != nil {
			continue
		}
		ge := team.Evaluate(greedy, p).SACACC
		ee := team.Evaluate(exact, p).SACACC
		if ee > ge+1e-9 {
			t.Errorf("trial %d: exact %v worse than greedy %v", trial, ee, ge)
		}
		_ = rng
	}
}

// TestFigure1EndToEnd reproduces the motivating example through the
// facade, asserting the paper's Figure 1 conclusion.
func TestFigure1EndToEnd(t *testing.T) {
	b := authteam.NewGraphBuilder(6, 4)
	ren := b.AddNode("Xiang Ren", 11, "TM")
	han := b.AddNode("Jiawei Han", 139)
	liu := b.AddNode("Jialu Liu", 9, "SN")
	kotzias := b.AddNode("Dimitrios Kotzias", 3, "TM")
	lappas := b.AddNode("Theodoros Lappas", 12)
	golshan := b.AddNode("Behzad Golshan", 5, "SN")
	b.AddEdge(ren, han, 1)
	b.AddEdge(han, liu, 1)
	b.AddEdge(kotzias, lappas, 1)
	b.AddEdge(lappas, golshan, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	client, err := authteam.New(g, authteam.Options{Gamma: 0.6, Lambda: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := client.BestTeam(authteam.SACACC, []string{"SN", "TM"})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, u := range tm.Nodes {
		names[g.Name(u)] = true
	}
	if !names["Jiawei Han"] || !names["Xiang Ren"] || !names["Jialu Liu"] {
		t.Errorf("SA-CA-CC should return team (a) of Figure 1, got %v", names)
	}
}

// TestPLLDisconnectedProperty: the index agrees with Dijkstra on
// graphs with many components (Infinity included).
func TestPLLDisconnectedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		b := expertgraph.NewBuilder(n, n)
		for i := 0; i < n; i++ {
			b.AddNode("", 1)
		}
		type pair struct{ u, v expertgraph.NodeID }
		seen := map[pair]bool{}
		// Sparse random edges only — often several components.
		for i := 0; i < n/2; i++ {
			u := expertgraph.NodeID(rng.Intn(n))
			v := expertgraph.NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[pair{u, v}] {
				continue
			}
			seen[pair{u, v}] = true
			b.AddEdge(u, v, 0.1+rng.Float64())
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		idx := pll.Build(g)
		src := expertgraph.NodeID(rng.Intn(n))
		ref := expertgraph.Dijkstra(g, src)
		for v := 0; v < n; v++ {
			got := idx.Dist(src, expertgraph.NodeID(v))
			want := ref.Dist[v]
			if math.IsInf(want, 1) {
				if !math.IsInf(got, 1) {
					return false
				}
				continue
			}
			// Hub-sum and path-sum round differently at the last ulp.
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
