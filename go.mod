module authteam

go 1.24
