package authteam_test

import (
	"fmt"
	"log"

	"authteam"
)

// buildExampleGraph wires the small network used by the Example
// functions: two database experts (junior and senior), a networks
// expert and a well-connected mentor.
func buildExampleGraph() *authteam.Graph {
	b := authteam.NewGraphBuilder(4, 3)
	dbJunior := b.AddNode("db-junior", 2, "databases")
	dbSenior := b.AddNode("db-senior", 30, "databases")
	net := b.AddNode("net-expert", 4, "networks")
	mentor := b.AddNode("mentor", 50)
	b.AddEdge(dbJunior, net, 0.2)
	b.AddEdge(dbSenior, mentor, 0.3)
	b.AddEdge(mentor, net, 0.3)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// ExampleClient_BestTeam discovers a team under the authority-aware
// SA-CA-CC objective: it pays a little extra communication cost for
// the senior database expert and the high-authority mentor.
func ExampleClient_BestTeam() {
	g := buildExampleGraph()
	client, err := authteam.New(g, authteam.Options{Gamma: 0.6, Lambda: 0.6})
	if err != nil {
		log.Fatal(err)
	}
	team, err := client.BestTeam(authteam.SACACC, []string{"databases", "networks"})
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range team.Nodes {
		fmt.Println(g.Name(u))
	}
	// Output:
	// db-senior
	// net-expert
	// mentor
}

// ExampleClient_Evaluate scores one team on every objective of the
// paper (Definitions 2–6).
func ExampleClient_Evaluate() {
	g := buildExampleGraph()
	client, err := authteam.New(g, authteam.Options{Gamma: 0.6, Lambda: 0.6})
	if err != nil {
		log.Fatal(err)
	}
	// The communication-cost-only objective returns the junior pair.
	team, err := client.BestTeam(authteam.CC, []string{"databases", "networks"})
	if err != nil {
		log.Fatal(err)
	}
	score := client.Evaluate(team)
	fmt.Printf("members=%d CC=%.2f\n", team.Size(), score.CC)
	// Output:
	// members=2 CC=0.00
}

// ExampleClient_Pareto lists every non-dominated tradeoff between
// communication cost, connector authority and holder authority.
func ExampleClient_Pareto() {
	g := buildExampleGraph()
	client, err := authteam.New(g, authteam.Options{Gamma: 0.5, Lambda: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	front, err := client.Pareto([]string{"databases", "networks"}, authteam.ParetoOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("non-dominated teams:", len(front))
	// Output:
	// non-dominated teams: 2
}
