// Overlay-serving benchmarks: the perf evidence for the
// zero-materialization read path. Under a write-heavy workload every
// discover lands on a brand-new epoch, which is the worst case for
// epoch resolution — the old serving path paid a full graph
// materialization (thaw + delta replay, O(n+m) time and bytes) per
// queried epoch, the overlay path pays O(|delta|).
//
// BenchmarkDiscoverViewServing/overlay       discover via Snapshot.View()
// BenchmarkDiscoverViewServing/materialized  discover via Snapshot.Graph()
//
// Each mode emits a one-line BENCH_view.json record with the discover
// p50/p99 and the bytes allocated per epoch resolution, and the
// overlay mode asserts the store-level materialization counter stayed
// at zero.
package authteam_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"authteam/internal/core"
	"authteam/internal/expertgraph"
	"authteam/internal/live"
	"authteam/internal/stats"
	"authteam/internal/transform"
)

func emitBenchView(name string, fields map[string]any) {
	fields["bench"] = name
	buf, _ := json.Marshal(fields)
	fmt.Printf("BENCH_view.json %s\n", buf)
}

func BenchmarkDiscoverViewServing(b *testing.B) {
	benchSetup(b)
	project := benchProj[4]

	run := func(b *testing.B, mode string, resolve func(*live.Snapshot) (expertgraph.GraphView, error)) {
		st, err := live.Open(benchG, live.Config{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		rng := rand.New(rand.NewSource(41))
		pairs := freshPairs(benchG, rng, 100_000)

		lat := make([]float64, 0, 256)
		var resolveBytes uint64
		var ms0, ms1 runtime.MemStats
		epochs := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// One write per query: every discover resolves a fresh epoch.
			pr := pairs[i%len(pairs)]
			_, _ = st.AddCollaboration(pr[0], pr[1], 0.05+0.9*rng.Float64())

			t0 := time.Now()
			snap := st.Snapshot()
			runtime.ReadMemStats(&ms0)
			g, err := resolve(snap)
			runtime.ReadMemStats(&ms1)
			if err != nil {
				b.Fatal(err)
			}
			resolveBytes += ms1.TotalAlloc - ms0.TotalAlloc
			epochs++

			p, err := transform.Fit(g, 0.6, 0.6, transform.Options{Normalize: true})
			if err != nil {
				b.Fatal(err)
			}
			teams, err := core.NewDiscoverer(p, core.SACACC).TopK(project, 1)
			if err != nil {
				b.Fatal(err)
			}
			if len(teams) == 0 {
				b.Fatal("no team")
			}
			lat = append(lat, float64(time.Since(t0))/float64(time.Millisecond))
		}
		b.StopTimer()

		if mode == "overlay" && st.Materializations() != 0 {
			b.Fatalf("overlay serving materialized %d graphs, want 0", st.Materializations())
		}
		p50 := stats.Percentile(lat, 50)
		p99 := stats.Percentile(lat, 99)
		perEpoch := float64(resolveBytes) / float64(epochs)
		b.ReportMetric(p50, "p50-ms")
		b.ReportMetric(perEpoch, "resolve-B/epoch")
		emitBenchView("discover_view_serving", map[string]any{
			"mode":                    mode,
			"queries":                 b.N,
			"p50_ms":                  p50,
			"p99_ms":                  p99,
			"resolve_bytes_per_epoch": perEpoch,
			"materializations":        st.Materializations(),
			"final_epoch":             st.Epoch(),
		})
	}

	b.Run("overlay", func(b *testing.B) {
		run(b, "overlay", func(snap *live.Snapshot) (expertgraph.GraphView, error) {
			return snap.View(), nil
		})
	})
	b.Run("materialized", func(b *testing.B) {
		run(b, "materialized", func(snap *live.Snapshot) (expertgraph.GraphView, error) {
			return snap.Graph()
		})
	})
}
