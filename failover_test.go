package authteam_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"authteam"
	"authteam/internal/live"
	"authteam/internal/repl"
	"authteam/internal/server"
)

// waitPeerEpoch polls a node's /v1/cluster/role until its epoch
// reaches target.
func waitPeerEpoch(t *testing.T, url string, target uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for {
		ri, err := repl.FetchRole(ctx, nil, url)
		if err == nil && ri.Epoch >= target {
			return
		}
		select {
		case <-ctx.Done():
			t.Fatalf("peer %s stuck below epoch %d (last: %+v, %v)", url, target, ri, err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// TestClientFailover exercises the peer-list failover of an embedded
// following client: when its leader is fenced out of the lineage (or
// simply dead), a mutation re-resolves the leader from Options.Peers —
// the node claiming the role on the highest term — retries there,
// repoints the forwarder AND restarts the local replication loop
// against the survivor. The local replica resyncs onto the surviving
// lineage, so read-your-writes settles and every later write is fully
// acknowledged — no permanent ErrReplicationLag, no frozen reads.
func TestClientFailover(t *testing.T) {
	g := liveBase(t)
	as, err := server.New(server.Config{Graph: g, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer as.Close()
	ats := httptest.NewServer(as.Handler())
	defer ats.Close()

	bs, err := server.New(server.Config{FollowURL: ats.URL, FollowPoll: 100 * time.Millisecond, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	bts := httptest.NewServer(bs.Handler())
	defer bts.Close()

	c, err := authteam.New(nil, authteam.Options{
		Follow:     ats.URL,
		Peers:      []string{ats.URL, bts.URL},
		FollowPoll: 100 * time.Millisecond,
		FollowWait: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Normal operation: the write forwards to A and replicates back.
	if _, err := c.AddExpert("pre", 5, "databases"); err != nil {
		t.Fatalf("pre-failover write: %v", err)
	}
	waitPeerEpoch(t, bts.URL, 1)

	// Failover: B is promoted to term 1 and A is fenced by the first
	// post-partition contact claiming the new term.
	resp, err := http.Post(bts.URL+"/v1/cluster/promote", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote B: %s", resp.Status)
	}
	if _, ferr := repl.NewLeader(ats.URL, nil).WithTerm(bs.Store().Term).AddEdge(0, 2, 0.9); !errors.Is(ferr, live.ErrFenced) {
		t.Fatalf("fencing contact: %v, want ErrFenced", ferr)
	}

	// The client's next mutation bounces off fenced A, re-resolves the
	// leader from the peer list, lands on B, and restarts the local
	// replication loop against B. The restarted loop finds the local
	// store fenced, resyncs from B's base onto the surviving lineage,
	// and catches up — so read-your-writes settles and the write is
	// fully acknowledged.
	if _, err := c.AddExpert("post", 4, "ml"); err != nil {
		t.Fatalf("failover write: %v, want full recovery", err)
	}
	waitPeerEpoch(t, bts.URL, 2)

	// Repointed: the follow-up mutation goes straight to B and the
	// already-resynced replica confirms it without drama.
	if err := c.AddCollaboration(0, 2, 0.7); err != nil {
		t.Fatalf("post-failover write: %v", err)
	}
	waitPeerEpoch(t, bts.URL, 3)

	// The replica recovered for real: the loop is running against the
	// survivor, the fence is gone, and the local epoch reached the
	// surviving lineage's head (awaitEpoch already proved this for each
	// write; pin it explicitly).
	if fs, ok := c.FollowerStats(); !ok || !fs.Running {
		t.Fatalf("follower after failover: ok=%v stats=%+v, want running", ok, fs)
	}
	if got := c.Epoch(); got < 3 {
		t.Fatalf("client epoch after failover: %d, want >= 3", got)
	}

	// Transport-level failover: a client whose leader is simply gone
	// takes the same path off a *url.Error.
	ats.CloseClientConnections()
	ats.Close()
	c2, err := authteam.New(nil, authteam.Options{
		Follow:     ats.URL,
		Peers:      []string{ats.URL, bts.URL},
		FollowPoll: 100 * time.Millisecond,
		FollowWait: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.AddExpert("late", 3, "networks"); err != nil {
		t.Fatalf("dead-leader write: %v, want full recovery", err)
	}
	waitPeerEpoch(t, bts.URL, 4)

	if ri, err := repl.FetchRole(context.Background(), nil, bts.URL); err != nil || ri.Role != "leader" || ri.Term != 1 {
		t.Fatalf("survivor role: %+v, %v", ri, err)
	}
}
