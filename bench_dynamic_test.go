// Fully-dynamic 2-hop cover benchmarks: the perf evidence that
// decremental repair beats rebuilding. Two numbers matter —
//
//	BenchmarkDynamicRepairVsRebuild  label visits + wall time to absorb
//	                                 one mixed mutation batch by repair,
//	                                 against a from-scratch build
//	BenchmarkDiscoverUnderMixedChurn /v1/discover latency while a writer
//	                                 streams inserts, removals and
//	                                 re-weights (the stream PR 2–4
//	                                 could not absorb without rebuilds)
//
// Each benchmark emits a one-line BENCH_dynamic.json record for CI log
// scraping.
package authteam_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"authteam/internal/expertgraph"
	"authteam/internal/live"
	"authteam/internal/pll"
	"authteam/internal/server"
	"authteam/internal/stats"
)

func emitBenchDynamic(name string, fields map[string]any) {
	fields["bench"] = name
	buf, _ := json.Marshal(fields)
	fmt.Printf("BENCH_dynamic.json %s\n", buf)
}

// mixedBatch applies `count` mixed mutations (half inserts, the rest
// removals and re-weights) to a fresh store over benchG and returns
// the store with its pre-batch snapshot.
func mixedBatch(b *testing.B, rng *rand.Rand, count int) (*live.Store, *live.Snapshot, *live.Snapshot) {
	b.Helper()
	st, err := live.Open(benchG, live.Config{})
	if err != nil {
		b.Fatal(err)
	}
	from := st.Snapshot()
	pairs := freshPairs(benchG, rng, count)
	n := benchG.NumNodes()
	applied := 0
	for applied < count {
		switch rng.Intn(4) {
		case 0, 1: // insert
			pr := pairs[rng.Intn(len(pairs))]
			if _, err := st.AddCollaboration(pr[0], pr[1], 0.05+0.9*rng.Float64()); err == nil {
				applied++
			}
		case 2: // remove a random existing edge
			u := expertgraph.NodeID(rng.Intn(n))
			var v expertgraph.NodeID
			deg := 0
			st.Snapshot().View().Neighbors(u, func(w expertgraph.NodeID, _ float64) bool {
				deg++
				if rng.Intn(deg) == 0 {
					v = w
				}
				return true
			})
			if deg > 0 {
				if _, err := st.RemoveCollaboration(u, v); err == nil {
					applied++
				}
			}
		default: // re-weight a random existing edge
			u := expertgraph.NodeID(rng.Intn(n))
			var v expertgraph.NodeID
			deg := 0
			st.Snapshot().View().Neighbors(u, func(w expertgraph.NodeID, _ float64) bool {
				deg++
				if rng.Intn(deg) == 0 {
					v = w
				}
				return true
			})
			if deg > 0 {
				if _, err := st.UpdateCollaboration(u, v, 0.05+0.9*rng.Float64()); err == nil {
					applied++
				}
			}
		}
	}
	return st, from, st.Snapshot()
}

func BenchmarkDynamicRepairVsRebuild(b *testing.B) {
	benchSetup(b)
	// 16 mutations per batch ≈ the delta a serving-layer repair absorbs
	// between discovers; repair cost scales with the affected regions
	// while a rebuild is O(n·m), so the gap widens with graph size.
	const batch = 16
	rng := rand.New(rand.NewSource(131))
	base := pll.Build(benchG)

	var repairNS, rebuildNS int64
	var visits int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, from, to := mixedBatch(b, rng, batch)
		b.StartTimer()

		t0 := time.Now()
		repaired, rs, ok := live.MaintainIndex(base, from, to, nil, nil, 0)
		repairNS += int64(time.Since(t0))
		if !ok || repaired == nil {
			b.Fatal("repair refused the mixed batch")
		}
		if rs.Removed == 0 {
			b.Fatal("batch had no decremental ops")
		}
		visits += int64(rs.Visits)

		b.StopTimer()
		g, err := to.Graph()
		if err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		fresh := pll.Build(g)
		rebuildNS += int64(time.Since(t1))
		_ = fresh
		st.Close()
		b.StartTimer()
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(repairNS)/float64(b.N)/1e6, "repair-ms")
		b.ReportMetric(float64(rebuildNS)/float64(b.N)/1e6, "rebuild-ms")
		emitBenchDynamic("repair_vs_rebuild", map[string]any{
			"batches":         b.N,
			"batch_mutations": batch,
			"repair_ms_avg":   float64(repairNS) / float64(b.N) / 1e6,
			"rebuild_ms_avg":  float64(rebuildNS) / float64(b.N) / 1e6,
			"speedup":         float64(rebuildNS) / float64(max64(repairNS, 1)),
			"repair_visits":   visits,
			"graph_nodes":     benchG.NumNodes(),
			"graph_edges":     benchG.NumEdges(),
		})
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func BenchmarkDiscoverUnderMixedChurn(b *testing.B) {
	benchSetup(b)
	srv, err := server.New(server.Config{
		Graph:          benchG,
		NoPersistIndex: true,
		Workers:        4,
		WarmIndex:      true,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One writer streams a mixed insert/remove/re-weight workload for
	// the whole measurement window (~2k mutations/sec offered).
	var stop atomic.Bool
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(137))
		st := srv.Store()
		pairs := freshPairs(benchG, rng, 100_000)
		n := benchG.NumNodes()
		for i := 0; !stop.Load(); i++ {
			switch rng.Intn(4) {
			case 0, 1:
				pr := pairs[i%len(pairs)]
				_, _ = st.AddCollaboration(pr[0], pr[1], 0.05+0.9*rng.Float64())
			case 2:
				u := expertgraph.NodeID(rng.Intn(n))
				st.Snapshot().View().Neighbors(u, func(v expertgraph.NodeID, _ float64) bool {
					_, _ = st.RemoveCollaboration(u, v)
					return false
				})
			default:
				u := expertgraph.NodeID(rng.Intn(n))
				st.Snapshot().View().Neighbors(u, func(v expertgraph.NodeID, _ float64) bool {
					_, _ = st.UpdateCollaboration(u, v, 0.05+0.9*rng.Float64())
					return false
				})
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	skills := make([]string, 0, 4)
	for _, id := range benchProj[4] {
		skills = append(skills, benchG.SkillName(id))
	}
	body, _ := json.Marshal(map[string]any{"skills": skills, "method": "sa-ca-cc"})

	lat := make([]float64, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		resp, err := http.Post(ts.URL+"/v1/discover", "application/json", strings.NewReader(string(body)))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("discover status %d", resp.StatusCode)
		}
		resp.Body.Close()
		lat = append(lat, float64(time.Since(t0))/float64(time.Millisecond))
	}
	b.StopTimer()
	stop.Store(true)
	<-writerDone

	c := srv.Store().Counters()
	p50 := stats.Percentile(lat, 50)
	p99 := stats.Percentile(lat, 99)
	b.ReportMetric(p50, "p50-ms")
	b.ReportMetric(p99, "p99-ms")
	emitBenchDynamic("discover_under_mixed_churn", map[string]any{
		"queries":       b.N,
		"p50_ms":        p50,
		"p99_ms":        p99,
		"final_epoch":   srv.Store().Epoch(),
		"edges_added":   c.EdgesAdded,
		"edges_removed": c.EdgesRemoved,
		"edges_updated": c.EdgesUpdated,
	})
}
