// Live-mutation benchmarks: the perf baseline for the internal/live
// subsystem. Two numbers matter for an online serving daemon —
//
//	BenchmarkLiveMutationThroughput   sustained edges/sec applied
//	                                  through the store (journal off)
//	BenchmarkLiveDiscoverUnderWrites  /v1/discover latency while one
//	                                  writer streams edge insertions
//
// Each benchmark also emits a one-line BENCH_live.json record so CI
// logs can be scraped into a dashboard without parsing Go bench output.
package authteam_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"authteam/internal/expertgraph"
	"authteam/internal/live"
	"authteam/internal/server"
	"authteam/internal/stats"
)

func emitBenchLive(name string, fields map[string]any) {
	fields["bench"] = name
	buf, _ := json.Marshal(fields)
	fmt.Printf("BENCH_live.json %s\n", buf)
}

// freshPairs returns a shuffled list of node pairs absent from g, so
// benchmark loops insert guaranteed-new edges without retry storms.
func freshPairs(g *expertgraph.Graph, rng *rand.Rand, limit int) [][2]expertgraph.NodeID {
	n := g.NumNodes()
	pairs := make([][2]expertgraph.NodeID, 0, limit)
	for len(pairs) < limit {
		u := expertgraph.NodeID(rng.Intn(n))
		v := expertgraph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if _, exists := g.EdgeWeight(u, v); exists {
			continue
		}
		pairs = append(pairs, [2]expertgraph.NodeID{u, v})
	}
	return pairs
}

func BenchmarkLiveMutationThroughput(b *testing.B) {
	benchSetup(b)
	rng := rand.New(rand.NewSource(99))
	// Cycle through stores: each absorbs up to len(pairs) insertions
	// (duplicates within one store are skipped by the pair list being
	// drawn without an in-store dedup — collisions are rare enough to
	// ignore for a throughput number; real duplicates are rejected in
	// O(1) and still count as applied work below via the error path).
	const perStore = 50_000
	pairs := freshPairs(benchG, rng, perStore)
	var st *live.Store
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	applied := 0
	for i := 0; i < b.N; i++ {
		if i%perStore == 0 {
			if st != nil {
				st.Close()
			}
			var err error
			if st, err = live.Open(benchG, live.Config{}); err != nil {
				b.Fatal(err)
			}
		}
		pr := pairs[i%perStore]
		if _, err := st.AddCollaboration(pr[0], pr[1], 0.05+0.9*rng.Float64()); err == nil {
			applied++
		}
	}
	b.StopTimer()
	st.Close()
	perSec := float64(b.N) / time.Since(start).Seconds()
	b.ReportMetric(perSec, "edges/sec")
	emitBenchLive("mutation_throughput", map[string]any{
		"edges":         b.N,
		"applied":       applied,
		"edges_per_sec": perSec,
	})
}

func BenchmarkLiveDiscoverUnderWrites(b *testing.B) {
	benchSetup(b)
	srv, err := server.New(server.Config{
		Graph:          benchG,
		NoPersistIndex: true,
		Workers:        4,
		WarmIndex:      true,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One writer streams insertions for the whole measurement window.
	var stop atomic.Bool
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(100))
		pairs := freshPairs(benchG, rng, 200_000)
		for i := 0; !stop.Load() && i < len(pairs); i++ {
			pr := pairs[i]
			_, _ = srv.Store().AddCollaboration(pr[0], pr[1], 0.05+0.9*rng.Float64())
			time.Sleep(500 * time.Microsecond) // ~2k mutations/sec offered
		}
	}()

	skills := make([]string, 0, 4)
	for _, id := range benchProj[4] {
		skills = append(skills, benchG.SkillName(id))
	}
	body, _ := json.Marshal(map[string]any{"skills": skills, "method": "sa-ca-cc"})

	lat := make([]float64, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		resp, err := http.Post(ts.URL+"/v1/discover", "application/json", strings.NewReader(string(body)))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("discover status %d", resp.StatusCode)
		}
		resp.Body.Close()
		lat = append(lat, float64(time.Since(t0))/float64(time.Millisecond))
	}
	b.StopTimer()
	stop.Store(true)
	<-writerDone

	p50 := stats.Percentile(lat, 50)
	p99 := stats.Percentile(lat, 99)
	b.ReportMetric(p50, "p50-ms")
	b.ReportMetric(p99, "p99-ms")
	emitBenchLive("discover_under_writes", map[string]any{
		"queries":     b.N,
		"p50_ms":      p50,
		"p99_ms":      p99,
		"final_epoch": srv.Store().Epoch(),
	})
}
