package dblp

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestCorpusRoundTrip(t *testing.T) {
	c := Synthesize(SynthConfig{Seed: 6, Authors: 200})
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertCorporaEqual(t, c, c2)
}

func TestCorpusSaveLoadFile(t *testing.T) {
	c := Synthesize(SynthConfig{Seed: 7, Authors: 150})
	path := filepath.Join(t.TempDir(), "corpus.bin")
	if err := SaveFile(path, c); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertCorporaEqual(t, c, c2)
}

func TestCorpusLoadMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Error("loading a missing corpus should fail")
	}
}

func TestCorpusReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("reading garbage should fail")
	}
}

// TestRoundTripPreservesDerivedGraph: the derived expert network must
// be identical after a round trip (h-index, weights, skills all come
// from corpus content).
func TestRoundTripPreservesDerivedGraph(t *testing.T) {
	c := Synthesize(SynthConfig{Seed: 8, Authors: 300})
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g1, _, err := BuildGraph(c, GraphOptions{LargestComponent: true})
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := BuildGraph(c2, GraphOptions{LargestComponent: true})
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() ||
		g1.NumSkills() != g2.NumSkills() {
		t.Errorf("derived graphs differ: %v vs %v", g1, g2)
	}
}

func assertCorporaEqual(t *testing.T, a, b *Corpus) {
	t.Helper()
	if a.NumAuthors() != b.NumAuthors() || a.NumPapers() != b.NumPapers() ||
		len(a.Venues) != len(b.Venues) {
		t.Fatalf("sizes differ: %v vs %v", a, b)
	}
	for i := range a.Authors {
		if a.Authors[i].Name != b.Authors[i].Name ||
			len(a.Authors[i].Papers) != len(b.Authors[i].Papers) {
			t.Fatalf("author %d differs", i)
		}
	}
	for i := range a.Papers {
		pa, pb := a.Papers[i], b.Papers[i]
		if pa.Title != pb.Title || pa.Year != pb.Year ||
			pa.Citations != pb.Citations || pa.Venue != pb.Venue {
			t.Fatalf("paper %d differs", i)
		}
	}
	for i := range a.Venues {
		if a.Venues[i] != b.Venues[i] {
			t.Fatalf("venue %d differs", i)
		}
	}
}
