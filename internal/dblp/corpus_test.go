package dblp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHIndexOf(t *testing.T) {
	cases := []struct {
		name  string
		cites []int
		want  int
	}{
		{"empty", nil, 0},
		{"zeros", []int{0, 0, 0}, 0},
		{"single cited", []int{5}, 1},
		{"classic", []int{10, 8, 5, 4, 3}, 4},
		{"uniform", []int{3, 3, 3, 3, 3}, 3},
		{"heavy tail", []int{100, 1, 1, 1}, 1},
		{"exact diagonal", []int{4, 3, 2, 1}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := HIndexOf(c.cites); got != c.want {
				t.Errorf("HIndexOf(%v) = %d, want %d", c.cites, got, c.want)
			}
		})
	}
}

func TestHIndexProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		cites := make([]int, len(raw))
		for i, r := range raw {
			cites[i] = int(r)
		}
		h := HIndexOf(cites)
		// 0 ≤ h ≤ len and h ≤ max citation.
		if h < 0 || h > len(cites) {
			return false
		}
		maxC := 0
		for _, c := range cites {
			if c > maxC {
				maxC = c
			}
		}
		return h <= maxC || (h == 0 && maxC == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHIndexDoesNotMutate(t *testing.T) {
	in := []int{1, 5, 2}
	HIndexOf(in)
	if in[0] != 1 || in[1] != 5 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func buildTinyCorpus(t *testing.T) (*Corpus, []AuthorID) {
	t.Helper()
	b := NewBuilder()
	alice := b.Author("Alice")
	bob := b.Author("Bob")
	carol := b.Author("Carol")
	v := b.Venue("VLDB", 5)
	b.AddPaper("Query Optimization in Databases", 2010, v, 50, alice, bob)
	b.AddPaper("Indexing for Query Processing", 2012, v, 30, alice, bob)
	b.AddPaper("Databases and Query Languages", 2013, v, 10, alice)
	b.AddPaper("Social Networks Influence", 2014, v, 5, carol)
	return b.Build(), []AuthorID{alice, bob, carol}
}

func TestBuilderInterning(t *testing.T) {
	b := NewBuilder()
	a1 := b.Author("X")
	a2 := b.Author("X")
	if a1 != a2 {
		t.Error("same name should intern to one AuthorID")
	}
	v1 := b.Venue("KDD", 5)
	v2 := b.Venue("KDD", 1) // rating of existing venue unchanged
	if v1 != v2 {
		t.Error("same venue should intern to one VenueID")
	}
	c := b.Build()
	if c.Venues[v1].Rating != 5 {
		t.Errorf("rating = %v, want first-write 5", c.Venues[v1].Rating)
	}
}

func TestAddPaperDeduplicatesAuthors(t *testing.T) {
	b := NewBuilder()
	a := b.Author("A")
	v := b.Venue("V", 1)
	p := b.AddPaper("Self Collaboration", 2010, v, 0, a, a, a)
	c := b.Build()
	if len(c.Papers[p].Authors) != 1 {
		t.Errorf("authors = %v, want deduplicated single entry", c.Papers[p].Authors)
	}
	if c.PaperCount(a) != 1 {
		t.Errorf("paper count = %d, want 1", c.PaperCount(a))
	}
}

func TestCorpusHIndex(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	// Alice: citations 50, 30, 10 → h = 3.
	if got := c.HIndex(ids[0]); got != 3 {
		t.Errorf("Alice h-index = %d, want 3", got)
	}
	// Bob: 50, 30 → h = 2. Carol: 5 → h = 1.
	if got := c.HIndex(ids[1]); got != 2 {
		t.Errorf("Bob h-index = %d, want 2", got)
	}
	if got := c.HIndex(ids[2]); got != 1 {
		t.Errorf("Carol h-index = %d, want 1", got)
	}
}

func TestJaccard(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	// Alice has papers {0,1,2}, Bob {0,1}: J = 2/3.
	if got := c.Jaccard(ids[0], ids[1]); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Jaccard = %v, want 2/3", got)
	}
	// Alice vs Carol: disjoint → 0.
	if got := c.Jaccard(ids[0], ids[2]); got != 0 {
		t.Errorf("disjoint Jaccard = %v, want 0", got)
	}
	// Self similarity is 1.
	if got := c.Jaccard(ids[0], ids[0]); got != 1 {
		t.Errorf("self Jaccard = %v, want 1", got)
	}
	// Edge weight is the complement.
	if got := c.CoauthorWeight(ids[0], ids[1]); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("CoauthorWeight = %v, want 1/3", got)
	}
}

func TestJaccardSymmetryProperty(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	for _, a := range ids {
		for _, b := range ids {
			if c.Jaccard(a, b) != c.Jaccard(b, a) {
				t.Errorf("Jaccard(%d,%d) not symmetric", a, b)
			}
		}
	}
}

func TestTitleTerms(t *testing.T) {
	cases := []struct {
		title string
		want  []string
	}{
		{"Query Optimization in Databases", []string{"query", "optimization", "databases"}},
		{"The Analysis of New Data", []string{"data"}}, // stop words dropped
		{"Object Oriented Design Patterns", []string{"object oriented", "design", "patterns"}},
		{"Social Networks and Text Mining", []string{"social networks", "text mining"}},
		{"", nil},
		{"A An Of", nil}, // all too short / stopwords
	}
	for _, c := range cases {
		got := TitleTerms(c.title)
		if len(got) != len(c.want) {
			t.Errorf("TitleTerms(%q) = %v, want %v", c.title, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("TitleTerms(%q) = %v, want %v", c.title, got, c.want)
				break
			}
		}
	}
}

func TestSkillsOf(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	// Alice: "query" appears in 3 titles, "databases" in 2,
	// "indexing"/"optimization"/"processing"/"languages" once each.
	skills := c.SkillsOf(ids[0], 2)
	want := []string{"databases", "query"}
	if len(skills) != len(want) {
		t.Fatalf("SkillsOf = %v, want %v", skills, want)
	}
	for i := range want {
		if skills[i] != want[i] {
			t.Fatalf("SkillsOf = %v, want %v", skills, want)
		}
	}
	// With support 1 Carol gets her single-paper terms too.
	if got := c.SkillsOf(ids[2], 1); len(got) != 2 { // "social networks", "influence"
		t.Errorf("SkillsOf(carol, 1) = %v, want 2 terms", got)
	}
	if got := c.SkillsOf(ids[2], 2); len(got) != 0 {
		t.Errorf("SkillsOf(carol, 2) = %v, want none", got)
	}
}

func TestCorpusString(t *testing.T) {
	c, _ := buildTinyCorpus(t)
	if c.String() != "dblp{authors: 3, papers: 4, venues: 1}" {
		t.Errorf("String = %q", c.String())
	}
}
