package dblp

import (
	"strings"
	"testing"
)

const sampleXML = `<?xml version="1.0" encoding="ISO-8859-1"?>
<dblp>
<article mdate="2017-05-28" key="journals/x/1">
  <author>Alice Able</author>
  <author>Bob Best</author>
  <title>Query Processing over Streams</title>
  <year>2014</year>
  <journal>TODS</journal>
</article>
<inproceedings mdate="2017-05-28" key="conf/y/2">
  <author>Alice Able</author>
  <title>Stream Indexing Structures</title>
  <year>2015</year>
  <booktitle>SIGMOD</booktitle>
</inproceedings>
<inproceedings key="conf/y/3">
  <author>Carol Cole</author>
  <title>Future Work After the Cutoff</title>
  <year>2016</year>
  <booktitle>SIGMOD</booktitle>
</inproceedings>
<phdthesis key="thesis/z/4">
  <author>Dave Dent</author>
  <title>Ignored Record Types</title>
  <year>2012</year>
</phdthesis>
<article key="journals/x/5">
  <title>No Authors Here</title>
  <year>2010</year>
  <journal>TODS</journal>
</article>
</dblp>`

func TestParseXML(t *testing.T) {
	c, err := ParseXML(strings.NewReader(sampleXML), ParseXMLOptions{MaxYear: 2015})
	if err != nil {
		t.Fatal(err)
	}
	// Accepted: papers 1 and 2. Dropped: 2016 paper (MaxYear), the
	// phdthesis (wrong record type), the authorless article.
	if c.NumPapers() != 2 {
		t.Fatalf("papers = %d, want 2", c.NumPapers())
	}
	if c.NumAuthors() != 2 {
		t.Fatalf("authors = %d, want 2 (Alice, Bob)", c.NumAuthors())
	}
	alice := AuthorID(0)
	if c.Authors[alice].Name != "Alice Able" {
		t.Errorf("author 0 = %q", c.Authors[alice].Name)
	}
	if c.PaperCount(alice) != 2 {
		t.Errorf("Alice papers = %d, want 2", c.PaperCount(alice))
	}
	// Venues interned from journal and booktitle.
	if len(c.Venues) != 2 {
		t.Errorf("venues = %d, want 2 (TODS, SIGMOD)", len(c.Venues))
	}
	// Citations default to zero (the dump has none).
	for _, p := range c.Papers {
		if p.Citations != 0 {
			t.Error("parsed citations should be 0")
		}
	}
}

func TestParseXMLMaxPapers(t *testing.T) {
	c, err := ParseXML(strings.NewReader(sampleXML), ParseXMLOptions{MaxPapers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPapers() != 1 {
		t.Fatalf("papers = %d, want 1 (stopped early)", c.NumPapers())
	}
}

func TestParseXMLNoFilter(t *testing.T) {
	c, err := ParseXML(strings.NewReader(sampleXML), ParseXMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPapers() != 3 { // the 2016 paper is kept without MaxYear
		t.Fatalf("papers = %d, want 3", c.NumPapers())
	}
}

func TestParseXMLGarbage(t *testing.T) {
	if _, err := ParseXML(strings.NewReader("<dblp><article><title>un"), ParseXMLOptions{}); err == nil {
		t.Error("truncated XML should fail")
	}
}

func TestSetOverrides(t *testing.T) {
	c, err := ParseXML(strings.NewReader(sampleXML), ParseXMLOptions{MaxYear: 2015})
	if err != nil {
		t.Fatal(err)
	}
	c.SetCitations(0, 99)
	if c.Papers[0].Citations != 99 {
		t.Error("SetCitations did not stick")
	}
	c.SetVenueRating(0, 4.5)
	if c.Venues[0].Rating != 4.5 {
		t.Error("SetVenueRating did not stick")
	}
	// Joined citations feed the h-index as usual.
	if c.HIndex(0) != 1 {
		t.Errorf("h-index after join = %d, want 1", c.HIndex(0))
	}
}
