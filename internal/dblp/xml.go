package dblp

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
)

// Streaming parser for the real dblp.xml dump, so the full pipeline
// runs unchanged on the actual dataset the paper used. The dump does
// not carry citation counts (the paper joined h-index from an external
// source), so parsed corpora have zero citations until authorities are
// attached with SetCitations or Corpus-level overrides.

// ParseXMLOptions filters the dump during parsing.
type ParseXMLOptions struct {
	// MaxYear drops papers published after this year (the paper uses
	// the dump "up to 2015"). 0 keeps everything.
	MaxYear int
	// MaxPapers stops parsing after this many accepted papers; 0 is
	// unlimited. Useful for smoke tests on the 3+ GB dump.
	MaxPapers int
	// DefaultVenueRating is assigned to venues discovered in the dump
	// (ratings come from an external ranking; 0 means 1.0).
	DefaultVenueRating float64
}

// ParseXML reads a dblp.xml stream and builds a corpus from its
// <article> and <inproceedings> records. The dump's top-level DTD
// entities for accented characters must already be resolved (the
// decoder maps unknown entities to their raw names).
func ParseXML(r io.Reader, opt ParseXMLOptions) (*Corpus, error) {
	if opt.DefaultVenueRating == 0 {
		opt.DefaultVenueRating = 1.0
	}
	b := NewBuilder()
	dec := xml.NewDecoder(r)
	// dblp.xml declares hundreds of character entities in its DTD;
	// resolve unknown ones permissively instead of failing.
	dec.Entity = xml.HTMLEntity
	dec.Strict = false
	// The dump declares ISO-8859-1. Latin-1 bytes map 1:1 onto Unicode
	// code points, so a byte-to-rune reader is a faithful decoder; any
	// other declared charset is passed through as-is.
	dec.CharsetReader = func(charset string, input io.Reader) (io.Reader, error) {
		switch charset {
		case "ISO-8859-1", "iso-8859-1", "latin1":
			return latin1Reader{r: input}, nil
		default:
			return input, nil
		}
	}

	accepted := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dblp: xml: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if start.Name.Local != "article" && start.Name.Local != "inproceedings" {
			continue
		}
		var rec xmlRecord
		if err := dec.DecodeElement(&rec, &start); err != nil {
			return nil, fmt.Errorf("dblp: xml record: %w", err)
		}
		if rec.Title == "" || len(rec.Authors) == 0 {
			continue
		}
		year, _ := strconv.Atoi(rec.Year)
		if opt.MaxYear > 0 && (year == 0 || year > opt.MaxYear) {
			continue
		}
		venueName := rec.Journal
		if venueName == "" {
			venueName = rec.Booktitle
		}
		if venueName == "" {
			venueName = "unknown"
		}
		venue := b.Venue(venueName, opt.DefaultVenueRating)
		authors := make([]AuthorID, 0, len(rec.Authors))
		for _, name := range rec.Authors {
			authors = append(authors, b.Author(name))
		}
		b.AddPaper(rec.Title, year, venue, 0, authors...)
		accepted++
		if opt.MaxPapers > 0 && accepted >= opt.MaxPapers {
			break
		}
	}
	return b.Build(), nil
}

// latin1Reader transcodes ISO-8859-1 bytes to UTF-8.
type latin1Reader struct {
	r   io.Reader
	buf [2048]byte
}

func (l latin1Reader) Read(p []byte) (int, error) {
	// Each Latin-1 byte expands to at most two UTF-8 bytes, so read at
	// most half the destination to guarantee the encoded form fits.
	max := len(p) / 2
	if max == 0 {
		max = 1
	}
	if max > len(l.buf) {
		max = len(l.buf)
	}
	n, err := l.r.Read(l.buf[:max])
	out := 0
	for _, b := range l.buf[:n] {
		if b < 0x80 {
			p[out] = b
			out++
		} else {
			p[out] = 0xC0 | b>>6
			p[out+1] = 0x80 | b&0x3F
			out += 2
		}
	}
	return out, err
}

type xmlRecord struct {
	Authors   []string `xml:"author"`
	Title     string   `xml:"title"`
	Year      string   `xml:"year"`
	Journal   string   `xml:"journal"`
	Booktitle string   `xml:"booktitle"`
}

// SetCitations overrides the citation count of one paper; used to join
// externally sourced citation data onto a parsed dump.
func (c *Corpus) SetCitations(p PaperID, citations int) {
	c.Papers[p].Citations = citations
}

// SetVenueRating overrides a venue's rating; used to join an external
// venue ranking (the paper uses the Microsoft Academic ranking).
func (c *Corpus) SetVenueRating(v VenueID, rating float64) {
	c.Venues[v].Rating = rating
}
