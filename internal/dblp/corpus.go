// Package dblp implements the dataset substrate of the paper's
// evaluation (§4): a bibliographic corpus of authors, papers and
// venues, the derivation of the expert network from it (h-index node
// weights, Jaccard edge weights, title-term skills for junior
// researchers), a calibrated synthetic corpus generator for offline
// use, and a streaming parser for the real dblp.xml dump.
package dblp

import (
	"fmt"
	"sort"
	"strings"
)

// AuthorID indexes Corpus.Authors.
type AuthorID int32

// PaperID indexes Corpus.Papers.
type PaperID int32

// VenueID indexes Corpus.Venues.
type VenueID int32

// Author is one researcher.
type Author struct {
	Name   string
	Papers []PaperID // sorted ascending
}

// Paper is one publication.
type Paper struct {
	Title     string
	Year      int
	Venue     VenueID
	Authors   []AuthorID
	Citations int
}

// Venue is a publication venue with a quality rating in [1, 5]
// standing in for the Microsoft Academic conference ranking used by
// §4.3 of the paper.
type Venue struct {
	Name   string
	Rating float64
}

// Corpus is an immutable bibliography. Build one with a Builder, the
// synthetic generator, or the XML parser.
type Corpus struct {
	Authors []Author
	Papers  []Paper
	Venues  []Venue
}

// NumAuthors returns the number of authors.
func (c *Corpus) NumAuthors() int { return len(c.Authors) }

// NumPapers returns the number of papers.
func (c *Corpus) NumPapers() int { return len(c.Papers) }

// PaperCount returns the number of papers by author a.
func (c *Corpus) PaperCount(a AuthorID) int { return len(c.Authors[a].Papers) }

// HIndex computes the h-index of author a: the largest h such that at
// least h of the author's papers have at least h citations each.
func (c *Corpus) HIndex(a AuthorID) int {
	cites := make([]int, 0, len(c.Authors[a].Papers))
	for _, p := range c.Authors[a].Papers {
		cites = append(cites, c.Papers[p].Citations)
	}
	return HIndexOf(cites)
}

// HIndexOf computes the h-index of a citation multiset.
func HIndexOf(citations []int) int {
	sorted := append([]int(nil), citations...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	h := 0
	for i, cites := range sorted {
		if cites >= i+1 {
			h = i + 1
		} else {
			break
		}
	}
	return h
}

// Jaccard returns the Jaccard similarity |A∩B| / |A∪B| between the
// paper sets of two authors (0 when both are empty). The paper sets
// must be sorted, which Builder guarantees.
func (c *Corpus) Jaccard(a, b AuthorID) float64 {
	pa, pb := c.Authors[a].Papers, c.Authors[b].Papers
	if len(pa) == 0 && len(pb) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		switch {
		case pa[i] == pb[j]:
			inter++
			i++
			j++
		case pa[i] < pb[j]:
			i++
		default:
			j++
		}
	}
	union := len(pa) + len(pb) - inter
	return float64(inter) / float64(union)
}

// CoauthorWeight returns the paper's edge weight between two authors:
// 1 − Jaccard(papers(a), papers(b)), so frequent collaborators are
// "close" (§4: "we set edge weights ... to 1 − |bi∩bj| / |bi∪bj|").
func (c *Corpus) CoauthorWeight(a, b AuthorID) float64 {
	return 1 - c.Jaccard(a, b)
}

// TitleTerms tokenizes a paper title into lowercase terms, dropping
// stop words and short tokens. Multi-word phrases the paper uses as
// skills (e.g. "object oriented") are kept together when adjacent.
func TitleTerms(title string) []string {
	fields := strings.FieldsFunc(strings.ToLower(title), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9') && r != '-'
	})
	var out []string
	for i := 0; i < len(fields); i++ {
		tok := fields[i]
		// Join known two-word phrases into one term.
		if i+1 < len(fields) {
			if phrase := tok + " " + fields[i+1]; phraseTerms[phrase] {
				out = append(out, phrase)
				i++
				continue
			}
		}
		if len(tok) < 3 || stopWords[tok] {
			continue
		}
		out = append(out, tok)
	}
	return out
}

// phraseTerms are multi-word skills that must survive tokenization
// (the Fig. 6 project uses "object oriented").
var phraseTerms = map[string]bool{
	"object oriented":  true,
	"social networks":  true,
	"text mining":      true,
	"machine learning": true,
	"data mining":      true,
}

var stopWords = map[string]bool{
	"the": true, "and": true, "for": true, "with": true, "from": true,
	"using": true, "towards": true, "toward": true, "via": true,
	"based": true, "approach": true, "study": true, "analysis": true,
	"new": true, "novel": true, "efficient": true, "effective": true,
	"its": true, "are": true, "can": true, "into": true, "over": true,
}

// Builder assembles a Corpus incrementally; used by the generator and
// the XML parser. Authors are interned by name.
type Builder struct {
	corpus    Corpus
	authorIDs map[string]AuthorID
	venueIDs  map[string]VenueID
}

// NewBuilder returns an empty corpus builder.
func NewBuilder() *Builder {
	return &Builder{
		authorIDs: make(map[string]AuthorID),
		venueIDs:  make(map[string]VenueID),
	}
}

// Author interns an author by name.
func (b *Builder) Author(name string) AuthorID {
	if id, ok := b.authorIDs[name]; ok {
		return id
	}
	id := AuthorID(len(b.corpus.Authors))
	b.corpus.Authors = append(b.corpus.Authors, Author{Name: name})
	b.authorIDs[name] = id
	return id
}

// Venue interns a venue by name with the given rating; the rating of
// an existing venue is left unchanged.
func (b *Builder) Venue(name string, rating float64) VenueID {
	if id, ok := b.venueIDs[name]; ok {
		return id
	}
	id := VenueID(len(b.corpus.Venues))
	b.corpus.Venues = append(b.corpus.Venues, Venue{Name: name, Rating: rating})
	b.venueIDs[name] = id
	return id
}

// AddPaper records a paper and links it to its authors. Duplicate
// authors on one paper are collapsed.
func (b *Builder) AddPaper(title string, year int, venue VenueID,
	citations int, authors ...AuthorID) PaperID {

	pid := PaperID(len(b.corpus.Papers))
	seen := make(map[AuthorID]bool, len(authors))
	var uniq []AuthorID
	for _, a := range authors {
		if !seen[a] {
			seen[a] = true
			uniq = append(uniq, a)
			b.corpus.Authors[a].Papers = append(b.corpus.Authors[a].Papers, pid)
		}
	}
	b.corpus.Papers = append(b.corpus.Papers, Paper{
		Title: title, Year: year, Venue: venue,
		Authors: uniq, Citations: citations,
	})
	return pid
}

// Build freezes the corpus. Paper lists are appended in increasing
// PaperID order, so they are already sorted.
func (b *Builder) Build() *Corpus {
	c := b.corpus
	b.corpus = Corpus{}
	return &c
}

// String summarizes the corpus.
func (c *Corpus) String() string {
	return fmt.Sprintf("dblp{authors: %d, papers: %d, venues: %d}",
		len(c.Authors), len(c.Papers), len(c.Venues))
}
