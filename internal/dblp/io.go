package dblp

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Corpus serialization. Parsing the 3+ GB dblp.xml dump takes minutes;
// persisting the resulting corpus makes iterating on graph-derivation
// parameters (junior threshold, term support) cheap.

const ioFormatVersion = 1

type flatCorpus struct {
	Version int
	Authors []Author
	Papers  []Paper
	Venues  []Venue
}

// Write encodes the corpus to w.
func Write(w io.Writer, c *Corpus) error {
	f := flatCorpus{
		Version: ioFormatVersion,
		Authors: c.Authors,
		Papers:  c.Papers,
		Venues:  c.Venues,
	}
	if err := gob.NewEncoder(w).Encode(&f); err != nil {
		return fmt.Errorf("dblp: encode corpus: %w", err)
	}
	return nil
}

// Read decodes a corpus written with Write.
func Read(r io.Reader) (*Corpus, error) {
	var f flatCorpus
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("dblp: decode corpus: %w", err)
	}
	if f.Version != ioFormatVersion {
		return nil, fmt.Errorf("dblp: unsupported corpus format version %d", f.Version)
	}
	return &Corpus{Authors: f.Authors, Papers: f.Papers, Venues: f.Venues}, nil
}

// SaveFile writes the corpus to path.
func SaveFile(path string, c *Corpus) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dblp: save corpus: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := Write(bw, c); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("dblp: save corpus: %w", err)
	}
	return f.Close()
}

// LoadFile reads a corpus from path.
func LoadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dblp: load corpus: %w", err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
