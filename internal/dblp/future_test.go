package dblp

import (
	"math/rand"
	"testing"

	"authteam/internal/expertgraph"
	"authteam/internal/team"
)

// twoTeams builds a strong team (high h-indexes) and a weak team on
// one graph, mirroring the §4.3 SA-CA-CC-vs-CC comparison.
func twoTeams(t *testing.T) (*expertgraph.Graph, *team.Team, *team.Team) {
	t.Helper()
	// Authority gaps sized like Figure 6 of the paper (team h-indexes
	// ~6 vs ~2), not a degenerate blowout.
	b := expertgraph.NewBuilder(6, 4)
	s1 := b.AddNode("strong1", 10, "x")
	s2 := b.AddNode("strong2", 14, "y")
	w1 := b.AddNode("weak1", 1, "x")
	w2 := b.AddNode("weak2", 2, "y")
	b.AddEdge(s1, s2, 0.5)
	b.AddEdge(w1, w2, 0.5)
	b.AddNode("pad1", 1)
	b.AddNode("pad2", 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x, _ := g.SkillID("x")
	y, _ := g.SkillID("y")
	strong, err := team.FromPaths(g, s1,
		map[expertgraph.SkillID]expertgraph.NodeID{x: s1, y: s2},
		map[expertgraph.SkillID][]expertgraph.NodeID{x: {s1}, y: {s1, s2}})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := team.FromPaths(g, w1,
		map[expertgraph.SkillID]expertgraph.NodeID{x: w1, y: w2},
		map[expertgraph.SkillID][]expertgraph.NodeID{x: {w1}, y: {w1, w2}})
	if err != nil {
		t.Fatal(err)
	}
	return g, strong, weak
}

func TestSimulateVenueRatingsBounds(t *testing.T) {
	g, strong, _ := twoTeams(t)
	rng := rand.New(rand.NewSource(1))
	var m FutureModel
	ratings := m.SimulateVenueRatings(strong, g, rng)
	if len(ratings) != 3 { // default PapersPerTeam
		t.Fatalf("papers = %d, want 3", len(ratings))
	}
	for _, r := range ratings {
		if r < 1 || r > 5 {
			t.Errorf("rating %v outside [1,5]", r)
		}
	}
}

func TestStrongTeamWinsMostly(t *testing.T) {
	g, strong, weak := twoTeams(t)
	rng := rand.New(rand.NewSource(2))
	var m FutureModel
	wins := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		if m.CompareTeams(strong, weak, g, rng) {
			wins++
		}
	}
	frac := float64(wins) / trials
	// The mentorship model should make the authoritative team win most
	// of the time, but noise must leave the weak team real chances —
	// the paper reports 78%, not 100%.
	if frac < 0.6 {
		t.Errorf("strong team win rate = %.2f, want > 0.6", frac)
	}
	if frac > 0.99 {
		t.Errorf("strong team win rate = %.2f — noise too small to be honest", frac)
	}
}

func TestCompareDeterministicPerSeed(t *testing.T) {
	g, strong, weak := twoTeams(t)
	var m FutureModel
	r1 := m.CompareTeams(strong, weak, g, rand.New(rand.NewSource(7)))
	r2 := m.CompareTeams(strong, weak, g, rand.New(rand.NewSource(7)))
	if r1 != r2 {
		t.Error("same seed should reproduce the same outcome")
	}
}

func TestFutureModelCustomParams(t *testing.T) {
	g, strong, _ := twoTeams(t)
	m := FutureModel{PapersPerTeam: 7, Noise: 0.01, MentorEffect: 0.5, BaseRating: 2}
	ratings := m.SimulateVenueRatings(strong, g, rand.New(rand.NewSource(3)))
	if len(ratings) != 7 {
		t.Fatalf("papers = %d, want 7", len(ratings))
	}
}

func TestVenuesByRating(t *testing.T) {
	b := NewBuilder()
	b.Venue("Mid", 3)
	b.Venue("Top", 5)
	b.Venue("Low", 1)
	b.Venue("AlsoTop", 5)
	c := b.Build()
	order := VenuesByRating(c)
	if c.Venues[order[0]].Name != "AlsoTop" || c.Venues[order[1]].Name != "Top" {
		t.Errorf("ties break by name: got %q, %q",
			c.Venues[order[0]].Name, c.Venues[order[1]].Name)
	}
	if c.Venues[order[3]].Name != "Low" {
		t.Errorf("worst venue last: got %q", c.Venues[order[3]].Name)
	}
}
