package dblp

import (
	"math"
	"math/rand"
	"sort"

	"authteam/internal/expertgraph"
	"authteam/internal/team"
)

// Future-publication simulator for the §4.3 "quality of teams"
// experiment. The paper checked, on real 2016 DBLP data, whether the
// teams discovered from the pre-2016 graph went on to publish in
// higher-rated venues. That ground truth is unavailable offline, so
// this model generates a team's next-year publications under the
// mentorship assumption the experiment was designed to surface: the
// expected venue rating of a team's output grows with the authority of
// its members — connectors (mentors) contribute as much as holders —
// plus substantial noise. This is a *model*, documented in DESIGN.md;
// it preserves the comparison's shape, not its empirical truth.

// FutureModel parameterizes the simulator.
type FutureModel struct {
	// BaseRating is the venue rating a zero-authority team converges
	// to (default 1.0).
	BaseRating float64
	// MentorEffect scales how strongly the team's mean log-authority
	// lifts venue ratings (default 0.55; at that value teams with a
	// Figure-6-sized authority gap win head-to-heads at roughly the
	// paper's reported 78%).
	MentorEffect float64
	// Noise is the standard deviation of per-paper rating noise
	// (default 0.9, large enough that weak teams keep real chances).
	Noise float64
	// PapersPerTeam is how many next-year papers the team produces
	// (default 3).
	PapersPerTeam int
}

func (m FutureModel) withDefaults() FutureModel {
	if m.BaseRating == 0 {
		m.BaseRating = 1.0
	}
	if m.MentorEffect == 0 {
		m.MentorEffect = 0.55
	}
	if m.Noise == 0 {
		m.Noise = 0.9
	}
	if m.PapersPerTeam == 0 {
		m.PapersPerTeam = 3
	}
	return m
}

// SimulateVenueRatings generates the venue ratings of the team's
// simulated next-year publications (clamped to the rating scale
// [1, 5]).
func (m FutureModel) SimulateVenueRatings(t *team.Team, g *expertgraph.Graph,
	rng *rand.Rand) []float64 {

	m = m.withDefaults()
	// Mean log-authority over the whole team: connectors count fully
	// (the mentorship assumption).
	sum := 0.0
	for _, u := range t.Nodes {
		sum += math.Log1p(g.Authority(u))
	}
	mean := 0.0
	if len(t.Nodes) > 0 {
		mean = sum / float64(len(t.Nodes))
	}
	expected := m.BaseRating + m.MentorEffect*mean
	out := make([]float64, m.PapersPerTeam)
	for i := range out {
		r := expected + rng.NormFloat64()*m.Noise
		if r < 1 {
			r = 1
		}
		if r > 5 {
			r = 5
		}
		out[i] = r
	}
	return out
}

// CompareTeams simulates both teams' next-year output and reports
// whether a's best venue outranks b's best venue (the paper compares
// where each team's 2016 papers appeared). Ties count as a loss for a,
// the conservative choice for the SA-CA-CC-vs-CC comparison.
func (m FutureModel) CompareTeams(a, b *team.Team, g *expertgraph.Graph,
	rng *rand.Rand) bool {

	ra := m.SimulateVenueRatings(a, g, rng)
	rb := m.SimulateVenueRatings(b, g, rng)
	return maxOf(ra) > maxOf(rb)
}

func maxOf(xs []float64) float64 {
	best := math.Inf(-1)
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}

// VenuesByRating returns venue IDs sorted best-first; helper for
// reports that want to name a venue of a given simulated rating.
func VenuesByRating(c *Corpus) []VenueID {
	ids := make([]VenueID, len(c.Venues))
	for i := range ids {
		ids[i] = VenueID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		va, vb := c.Venues[ids[a]], c.Venues[ids[b]]
		if va.Rating != vb.Rating {
			return va.Rating > vb.Rating
		}
		return va.Name < vb.Name
	})
	return ids
}
