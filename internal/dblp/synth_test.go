package dblp

import (
	"testing"

	"authteam/internal/expertgraph"
)

func synthGraph(t *testing.T, seed int64, authors int) (*Corpus, *expertgraph.Graph) {
	t.Helper()
	c := Synthesize(SynthConfig{Seed: seed, Authors: authors})
	g, _, err := BuildGraph(c, GraphOptions{LargestComponent: true})
	if err != nil {
		t.Fatal(err)
	}
	return c, g
}

func TestSynthesizeDeterministic(t *testing.T) {
	c1 := Synthesize(SynthConfig{Seed: 42, Authors: 300})
	c2 := Synthesize(SynthConfig{Seed: 42, Authors: 300})
	if c1.NumPapers() != c2.NumPapers() {
		t.Fatalf("paper counts differ: %d vs %d", c1.NumPapers(), c2.NumPapers())
	}
	for i := range c1.Papers {
		if c1.Papers[i].Title != c2.Papers[i].Title ||
			c1.Papers[i].Citations != c2.Papers[i].Citations {
			t.Fatalf("paper %d differs between identical seeds", i)
		}
	}
	c3 := Synthesize(SynthConfig{Seed: 43, Authors: 300})
	if c3.NumPapers() == c1.NumPapers() && c3.Papers[0].Title == c1.Papers[0].Title {
		t.Error("different seeds produced suspiciously identical corpora")
	}
}

// TestSynthesizeShape asserts the statistical shape the experiments
// rely on (calibrated against the paper's 40K/125K DBLP graph).
func TestSynthesizeShape(t *testing.T) {
	c, g := synthGraph(t, 1, 1500)

	// The giant component holds nearly all authors.
	if g.NumNodes() < 1200 {
		t.Errorf("largest component too small: %d of 1500", g.NumNodes())
	}
	// Edge density in the DBLP band (paper: 125K/40K ≈ 3.1).
	ratio := float64(g.NumEdges()) / float64(g.NumNodes())
	if ratio < 2 || ratio > 6 {
		t.Errorf("edge/node ratio = %.2f, want within [2, 6]", ratio)
	}
	// Juniors (skill holders) dominate, as in any bibliography.
	juniors := 0
	for u := 0; u < g.NumNodes(); u++ {
		if g.Pubs(expertgraph.NodeID(u)) < 10 {
			juniors++
		}
	}
	if frac := float64(juniors) / float64(g.NumNodes()); frac < 0.6 {
		t.Errorf("junior fraction = %.2f, want > 0.6", frac)
	}
	// Authority has a heavy tail: someone important exists.
	maxAuth := 0.0
	for u := 0; u < g.NumNodes(); u++ {
		if a := g.Authority(expertgraph.NodeID(u)); a > maxAuth {
			maxAuth = a
		}
	}
	if maxAuth < 15 {
		t.Errorf("max h-index = %v, want a senior tail (> 15)", maxAuth)
	}
	// Edge weights are Jaccard distances in [0, 1].
	lo, hi := g.EdgeWeightBounds()
	if lo < 0 || hi > 1 {
		t.Errorf("edge weight bounds (%v, %v) outside [0,1]", lo, hi)
	}
	_ = c
}

// TestSynthesizeFigure6Skills checks that the paper's qualitative
// project [analytics, matrix, communities, object oriented] is
// coverable in the synthetic corpus.
func TestSynthesizeFigure6Skills(t *testing.T) {
	_, g := synthGraph(t, 1, 1500)
	for _, skill := range []string{"analytics", "matrix", "communities", "object oriented"} {
		id, ok := g.SkillID(skill)
		if !ok {
			t.Errorf("skill %q missing from synthetic corpus", skill)
			continue
		}
		if len(g.ExpertsWithSkill(id)) == 0 {
			t.Errorf("skill %q has no holders", skill)
		}
	}
}

func TestSynthesizeSkillsAreMineable(t *testing.T) {
	_, g := synthGraph(t, 2, 800)
	if g.NumSkills() < 30 {
		t.Errorf("skill universe = %d, want ≥ 30 for workload generation", g.NumSkills())
	}
	// Each mined skill has at least one holder by construction.
	for s := 0; s < g.NumSkills(); s++ {
		if len(g.ExpertsWithSkill(expertgraph.SkillID(s))) == 0 {
			t.Errorf("skill %q mined but holder lost", g.SkillName(expertgraph.SkillID(s)))
		}
	}
}

func TestSynthesizeYearsBounded(t *testing.T) {
	c := Synthesize(SynthConfig{Seed: 3, Authors: 200, FirstYear: 2000, LastYear: 2005})
	for _, p := range c.Papers {
		if p.Year < 2000 || p.Year > 2005 {
			t.Fatalf("paper year %d outside [2000, 2005]", p.Year)
		}
	}
}

func TestSynthesizeVenueTiers(t *testing.T) {
	c := Synthesize(SynthConfig{Seed: 4, Authors: 400})
	ratings := map[float64]bool{}
	for _, v := range c.Venues {
		ratings[v.Rating] = true
	}
	for _, want := range []float64{1, 2, 3, 4, 5} {
		if !ratings[want] {
			t.Errorf("venue tier with rating %v missing", want)
		}
	}
	// Prestigious authors publish in better venues on average: compare
	// mean venue rating of top-decile authors vs bottom half.
	hi, lo := 0.0, 0.0
	nhi, nlo := 0, 0
	for a := range c.Authors {
		aid := AuthorID(a)
		n := c.PaperCount(aid)
		sum := 0.0
		for _, p := range c.Authors[a].Papers {
			sum += c.Venues[c.Papers[p].Venue].Rating
		}
		if n == 0 {
			continue
		}
		avg := sum / float64(n)
		if n >= 30 {
			hi += avg
			nhi++
		} else if n <= 3 {
			lo += avg
			nlo++
		}
	}
	if nhi == 0 || nlo == 0 {
		t.Skip("corpus too small for prestige comparison")
	}
	if hi/float64(nhi) <= lo/float64(nlo) {
		t.Errorf("prolific authors should publish in better venues: %.2f vs %.2f",
			hi/float64(nhi), lo/float64(nlo))
	}
}

func TestParetoInt(t *testing.T) {
	c := Synthesize(SynthConfig{Seed: 5, Authors: 1000})
	// Productivity is heavy-tailed: median small, max large.
	counts := make([]int, 0, 1000)
	maxC := 0
	for a := range c.Authors {
		n := c.PaperCount(AuthorID(a))
		counts = append(counts, n)
		if n > maxC {
			maxC = n
		}
	}
	small := 0
	for _, n := range counts {
		if n <= 5 {
			small++
		}
	}
	if float64(small)/float64(len(counts)) < 0.5 {
		t.Error("most authors should have few papers")
	}
	if maxC < 30 {
		t.Errorf("max papers = %d, want a productive tail", maxC)
	}
}
