package dblp

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Synthetic DBLP-like corpus generator. The real evaluation of the
// paper uses the DBLP XML dump (to 2015) filtered to a 40K-node /
// 125K-edge co-authorship graph; offline we generate a corpus with the
// same statistical shape:
//
//   - power-law productivity (most authors are juniors with < 10
//     papers — the skill holders; a heavy tail of prolific seniors),
//   - topic communities whose vocabularies supply title terms (and so
//     skills), with occasional cross-topic collaboration,
//   - repeat collaboration, so Jaccard edge weights are non-trivial,
//   - citation counts correlated with productivity and venue tier, so
//     h-index (the authority) correlates with seniority,
//   - tiered venues standing in for the Microsoft Academic ranking.
//
// Everything is deterministic given the seed.

// SynthConfig parameterizes the generator. The zero value gives a
// CI-scale corpus (~4K authors); Scale up with Authors for the
// paper-scale 40K graph.
type SynthConfig struct {
	// Seed drives all randomness. The default 0 is a valid seed.
	Seed int64
	// Authors is the number of authors to generate (default 4000).
	Authors int
	// ProductivityAlpha is the Pareto tail exponent of papers per
	// author (default 1.45; smaller = heavier tail).
	ProductivityAlpha float64
	// MaxPapers caps one author's papers (default 250).
	MaxPapers int
	// FirstYear..LastYear bound publication years (default 1996–2015,
	// matching the paper's "DBLP dataset up to 2015").
	FirstYear, LastYear int
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Authors == 0 {
		c.Authors = 4000
	}
	if c.ProductivityAlpha == 0 {
		c.ProductivityAlpha = 1.45
	}
	if c.MaxPapers == 0 {
		c.MaxPapers = 250
	}
	if c.FirstYear == 0 {
		c.FirstYear = 1996
	}
	if c.LastYear == 0 {
		c.LastYear = 2015
	}
	return c
}

// Synthesize generates a corpus.
func Synthesize(cfg SynthConfig) *Corpus {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()

	// Venues, grouped by tier for prestige-driven selection.
	var tierVenues [][]VenueID
	for _, tier := range venueTiers {
		var ids []VenueID
		for i := 0; i < tier.count; i++ {
			ids = append(ids, b.Venue(fmt.Sprintf("%s-%d", tier.prefix, i+1), tier.rating))
		}
		tierVenues = append(tierVenues, ids)
	}

	n := cfg.Authors
	topic := make([]int, n)
	target := make([]int, n) // papers to write
	prestige := make([]float64, n)
	topicMembers := make([][]AuthorID, len(topicVocab))
	maxPrestige := 1.0
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s %s %d",
			firstNames[rng.Intn(len(firstNames))],
			lastNames[rng.Intn(len(lastNames))], i)
		id := b.Author(name)
		topic[i] = rng.Intn(len(topicVocab))
		topicMembers[topic[i]] = append(topicMembers[topic[i]], id)
		target[i] = paretoInt(rng, cfg.ProductivityAlpha, cfg.MaxPapers)
		prestige[i] = float64(target[i]) * (0.5 + rng.Float64())
		if prestige[i] > maxPrestige {
			maxPrestige = prestige[i]
		}
	}

	// Paper slots: each author appears once per target paper, so lead
	// selection is productivity-weighted by construction.
	var slots []AuthorID
	for i := 0; i < n; i++ {
		for k := 0; k < target[i]; k++ {
			slots = append(slots, AuthorID(i))
		}
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })

	prevCollab := make([][]AuthorID, n)
	for _, lead := range slots {
		coauthors := pickCoauthors(rng, lead, topic, topicMembers, prevCollab, n)
		authors := append([]AuthorID{lead}, coauthors...)

		title := makeTitle(rng, topic[lead], coauthors, topic)
		year := cfg.FirstYear + rng.Intn(cfg.LastYear-cfg.FirstYear+1)

		// Venue tier from lead prestige plus noise: tier index 0 is the
		// top tier.
		pNorm := prestige[lead] / maxPrestige
		tierScore := pNorm + rng.NormFloat64()*0.18
		tier := 0
		switch {
		case tierScore > 0.55:
			tier = 0
		case tierScore > 0.3:
			tier = 1
		case tierScore > 0.15:
			tier = 2
		case tierScore > 0.06:
			tier = 3
		default:
			tier = 4
		}
		venue := tierVenues[tier][rng.Intn(len(tierVenues[tier]))]

		// Citations: heavy-tailed, boosted by venue quality, lead
		// prestige, and paper age. The quadratic prestige multiplier
		// gives prolific seniors h-indexes in the 40–140 range (the
		// paper's running example tops out at Jiawei Han's 139) while
		// juniors stay in single digits.
		age := float64(cfg.LastYear-year+1) / float64(cfg.LastYear-cfg.FirstYear+1)
		rating := venueTiers[tier].rating
		base := float64(paretoInt(rng, 1.15, 3000))
		boost := 1 + 60*pNorm*pNorm
		cites := int(base * boost * (0.25 + rating/5) * (0.3 + 0.7*age))

		b.AddPaper(title, year, venue, cites, authors...)

		for _, co := range coauthors {
			prevCollab[lead] = append(prevCollab[lead], co)
			prevCollab[co] = append(prevCollab[co], lead)
		}
	}
	return b.Build()
}

// pickCoauthors draws 0–4 coauthors: repeat collaborators with
// probability ~0.7 when available, same-topic colleagues most of the
// rest of the time, and occasional cross-topic collaborators (which
// keep the giant component connected across communities).
func pickCoauthors(rng *rand.Rand, lead AuthorID, topic []int,
	topicMembers [][]AuthorID, prevCollab [][]AuthorID, n int) []AuthorID {

	k := coauthorCount(rng)
	seen := map[AuthorID]bool{lead: true}
	var out []AuthorID
	for len(out) < k {
		var cand AuthorID
		switch {
		case len(prevCollab[lead]) > 0 && rng.Float64() < 0.72:
			cand = prevCollab[lead][rng.Intn(len(prevCollab[lead]))]
		case rng.Float64() < 0.85:
			members := topicMembers[topic[lead]]
			cand = members[rng.Intn(len(members))]
		default:
			cand = AuthorID(rng.Intn(n))
		}
		if !seen[cand] {
			seen[cand] = true
			out = append(out, cand)
		} else if rng.Float64() < 0.3 {
			break // tiny collaboration pools: give up instead of looping
		}
	}
	return out
}

func coauthorCount(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < 0.14:
		return 0
	case r < 0.48:
		return 1
	case r < 0.78:
		return 2
	case r < 0.93:
		return 3
	default:
		return 4
	}
}

// makeTitle assembles a title whose content terms come from the lead's
// topic (plus sometimes a coauthor's topic), so junior authors repeat
// topic terms across papers and mine into skills.
func makeTitle(rng *rand.Rand, leadTopic int, coauthors []AuthorID, topic []int) string {
	vocab := topicVocab[leadTopic]
	nTerms := 2 + rng.Intn(3)
	seen := make(map[string]bool, nTerms+2)
	var terms []string
	for len(terms) < nTerms {
		t := vocab[rng.Intn(len(vocab))]
		if !seen[t] {
			seen[t] = true
			terms = append(terms, t)
		}
	}
	if len(coauthors) > 0 && rng.Float64() < 0.3 {
		coVocab := topicVocab[topic[coauthors[rng.Intn(len(coauthors))]]]
		t := coVocab[rng.Intn(len(coVocab))]
		if !seen[t] {
			terms = append(terms, t)
		}
	}
	generic := genericTerms[rng.Intn(len(genericTerms))]
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%s %s for %s", capitalize(generic), joinTerms(terms[:1]), joinTerms(terms[1:]))
	case 1:
		return fmt.Sprintf("On %s in %s %s", joinTerms(terms[:1]), joinTerms(terms[1:]), generic)
	default:
		return fmt.Sprintf("%s of %s with %s", capitalize(joinTerms(terms[:1])), joinTerms(terms[1:]), generic)
	}
}

func joinTerms(terms []string) string { return strings.Join(terms, " ") }

func capitalize(s string) string {
	if s == "" {
		return s
	}
	if s[0] >= 'a' && s[0] <= 'z' {
		return string(s[0]-'a'+'A') + s[1:]
	}
	return s
}

// paretoInt draws a discrete Pareto-tailed value ≥ 1 capped at max.
func paretoInt(rng *rand.Rand, alpha float64, max int) int {
	u := rng.Float64()
	if u == 0 {
		return max
	}
	v := int(math.Pow(1/u, 1/alpha))
	if v < 1 {
		v = 1
	}
	if v > max {
		v = max
	}
	return v
}
