package dblp

// Topic vocabularies for the synthetic corpus. Each topic supplies the
// terms its papers draw titles from; because skills are mined from
// title terms, these vocabularies are also the skill universe of the
// synthetic expert network. The Figure 6 project of the paper —
// [analytics, matrix, communities, object oriented] — is deliberately
// covered. Vocabulary size controls |C(s)|, the holders per skill:
// real DBLP has a huge term universe and so modest C(s) sizes, which
// the 16-term topics approximate at synthetic scale.

// topicVocab lists, per research topic, the content-bearing terms used
// in titles of that topic.
var topicVocab = [][]string{
	{"social networks", "communities", "influence", "diffusion", "centrality", "homophily", "ties", "cascade",
		"friendship", "followers", "virality", "polarization", "engagement", "moderation", "anonymity", "reciprocity"},
	{"text mining", "topic", "document", "sentiment", "corpus", "extraction", "summarization", "annotation",
		"keyphrase", "lexicon", "stylometry", "readability", "deduplication", "normalization", "tokenization", "glossary"},
	{"data mining", "patterns", "itemsets", "clustering", "outlier", "association", "episodes", "sequences",
		"discretization", "pruning", "lattice", "support", "confidence", "contrast", "subgroup", "redescription"},
	{"machine learning", "kernel", "regression", "ensemble", "boosting", "features", "generalization", "sparsity",
		"calibration", "bandits", "metalearning", "distillation", "augmentation", "pretraining", "finetuning", "dropout"},
	{"databases", "query", "indexing", "transactions", "schema", "joins", "optimizer", "views",
		"concurrency", "recovery", "partitions", "buffering", "histograms", "cardinalities", "materialization", "vacuuming"},
	{"information retrieval", "ranking", "relevance", "search", "feedback", "snippets", "crawling", "queries",
		"reranking", "freshness", "diversification", "clickthrough", "pooling", "judgments", "expansion", "facets"},
	{"graphs", "matrix", "spectral", "partitioning", "embedding", "reachability", "subgraph", "motifs",
		"treewidth", "coloring", "matching", "flows", "cliques", "isomorphism", "sparsification", "contraction"},
	{"software engineering", "object oriented", "refactoring", "testing", "debugging", "traceability", "modularity", "inheritance",
		"mutation", "coverage", "linting", "refinement", "antipatterns", "idioms", "migration", "deprecation"},
	{"distributed systems", "consensus", "replication", "fault", "latency", "sharding", "gossip", "membership",
		"quorum", "leases", "snapshots", "geodistribution", "backpressure", "reconfiguration", "failover", "heartbeats"},
	{"security", "encryption", "authentication", "privacy", "intrusion", "malware", "obfuscation", "provenance",
		"sandboxing", "attestation", "fuzzing", "exfiltration", "honeypots", "revocation", "hardening", "phishing"},
	{"computer vision", "segmentation", "detection", "tracking", "stereo", "saliency", "texture", "registration",
		"deblurring", "superresolution", "keypoints", "occlusion", "rectification", "photometry", "panorama", "inpainting"},
	{"natural language", "parsing", "translation", "grammar", "semantics", "discourse", "morphology", "coreference",
		"disambiguation", "entailment", "paraphrase", "negation", "anaphora", "treebank", "lemmatization", "diacritics"},
	{"recommendation", "collaborative", "personalization", "preferences", "ratings", "coldstart", "serendipity", "trust",
		"sessions", "implicit", "explanations", "popularity", "novelty", "churn", "bundling", "upselling"},
	{"bioinformatics", "genome", "sequence", "alignment", "protein", "expression", "phylogeny", "motif",
		"variants", "orthologs", "assembly", "haplotype", "epigenetics", "pathways", "docking", "primers"},
	{"optimization", "convex", "gradient", "heuristics", "scheduling", "allocation", "knapsack", "relaxation",
		"duality", "cutting", "branching", "annealing", "swarm", "penalty", "feasibility", "warmstart"},
	{"visualization", "analytics", "dashboards", "interaction", "exploration", "layout", "perception", "storytelling",
		"brushing", "glyphs", "treemaps", "choropleth", "animation", "overview", "linking", "zooming"},
	{"stream processing", "windows", "sketches", "sampling", "approximation", "cardinality", "drift", "workloads",
		"watermarks", "checkpointing", "lateness", "throughput", "micro-batching", "spill", "reordering", "compaction"},
	{"crowdsourcing", "workers", "tasks", "incentives", "aggregation", "quality", "labeling", "marketplaces",
		"adjudication", "redundancy", "spammers", "qualification", "payouts", "batching", "arbitration", "gamification"},
	{"semantic web", "ontology", "linked", "reasoning", "triples", "vocabulary", "entities", "alignments",
		"shapes", "federation", "lineage", "inference", "taxonomy", "thesaurus", "curation", "interlinking"},
	{"hardware", "cache", "pipeline", "accelerator", "energy", "verification", "synthesis", "placement",
		"routing", "prefetching", "speculation", "coherence", "interconnect", "throttling", "binning", "yield"},
}

// genericTerms pad titles; they are common enough across topics that
// they rarely become skills (they also include frequent stop-ish
// words filtered by TitleTerms only when too short).
var genericTerms = []string{
	"framework", "system", "model", "evaluation", "learning", "large",
	"scalable", "adaptive", "dynamic", "robust", "parallel", "online",
}

// firstNames and lastNames drive synthetic author naming.
var firstNames = []string{
	"Wei", "Ana", "John", "Maria", "Chen", "Priya", "Ahmed", "Elena",
	"Jun", "Sofia", "David", "Yuki", "Omar", "Ingrid", "Carlos", "Mei",
	"Ivan", "Fatima", "Lucas", "Nadia", "Peter", "Amara", "Tomás", "Lin",
}

var lastNames = []string{
	"Zhang", "Garcia", "Smith", "Kumar", "Chen", "Novak", "Hassan",
	"Silva", "Tanaka", "Olsen", "Brown", "Ali", "Rossi", "Wang",
	"Petrov", "Nguyen", "Okafor", "Larsen", "Martin", "Sato", "Weber",
	"Costa", "Park", "Dubois",
}

// venueTiers define the synthetic venue universe standing in for the
// Microsoft Academic conference ranking: tier name prefix, count and
// rating (higher is better).
var venueTiers = []struct {
	prefix string
	count  int
	rating float64
}{
	{"TopConf", 6, 5.0},
	{"StrongConf", 10, 4.0},
	{"SolidConf", 14, 3.0},
	{"RegionalConf", 12, 2.0},
	{"Workshop", 18, 1.0},
}
