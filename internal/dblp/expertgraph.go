package dblp

import (
	"fmt"
	"sort"

	"authteam/internal/expertgraph"
)

// Expert network derivation (§4 of the paper): nodes are authors with
// h-index authority, edges connect coauthors with Jaccard-distance
// weights, and junior researchers (< 10 papers) are labelled with
// skills — title terms occurring in at least two of their papers.

// GraphOptions controls the corpus → expert network conversion.
type GraphOptions struct {
	// JuniorMaxPapers: authors with strictly fewer papers are the
	// potential skill holders (paper: "junior researchers with fewer
	// than 10 papers"). 0 means 10.
	JuniorMaxPapers int
	// MinTermSupport: a term becomes a skill when it occurs in at
	// least this many of the author's titles (paper: "terms that occur
	// in at least two of their paper titles"). 0 means 2.
	MinTermSupport int
	// LargestComponent restricts the graph to its largest connected
	// component, the usual setup for team formation on DBLP.
	LargestComponent bool
}

func (o GraphOptions) withDefaults() GraphOptions {
	if o.JuniorMaxPapers == 0 {
		o.JuniorMaxPapers = 10
	}
	if o.MinTermSupport == 0 {
		o.MinTermSupport = 2
	}
	return o
}

// BuildGraph derives the expert network from the corpus. The returned
// mapping translates graph NodeIDs back to corpus AuthorIDs (identity
// when LargestComponent is off).
func BuildGraph(c *Corpus, opt GraphOptions) (*expertgraph.Graph, []AuthorID, error) {
	opt = opt.withDefaults()
	b := expertgraph.NewBuilder(c.NumAuthors(), c.NumPapers()*3)

	for a := range c.Authors {
		aid := AuthorID(a)
		id := b.AddNode(c.Authors[a].Name, float64(c.HIndex(aid)))
		b.SetPubs(id, c.PaperCount(aid))
		if c.PaperCount(aid) < opt.JuniorMaxPapers {
			for _, skill := range c.SkillsOf(aid, opt.MinTermSupport) {
				b.AddSkillTo(id, skill)
			}
		}
	}

	// Coauthor edges, deduplicated across papers.
	type pair struct{ u, v AuthorID }
	seen := make(map[pair]bool)
	for _, p := range c.Papers {
		for i := 0; i < len(p.Authors); i++ {
			for j := i + 1; j < len(p.Authors); j++ {
				u, v := p.Authors[i], p.Authors[j]
				if u > v {
					u, v = v, u
				}
				if seen[pair{u, v}] {
					continue
				}
				seen[pair{u, v}] = true
				b.AddEdge(expertgraph.NodeID(u), expertgraph.NodeID(v), c.CoauthorWeight(u, v))
			}
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("dblp: graph build: %w", err)
	}
	mapping := make([]AuthorID, c.NumAuthors())
	for i := range mapping {
		mapping[i] = AuthorID(i)
	}
	if opt.LargestComponent {
		keep := expertgraph.LargestComponent(g)
		sub, newToOld := expertgraph.Subgraph(g, keep)
		mapping = make([]AuthorID, len(newToOld))
		for i, old := range newToOld {
			mapping[i] = AuthorID(old)
		}
		g = sub
	}
	return g, mapping, nil
}

// SkillsOf extracts the skills of one author: title terms that occur
// in at least minSupport of their papers.
func (c *Corpus) SkillsOf(a AuthorID, minSupport int) []string {
	counts := make(map[string]int)
	for _, p := range c.Authors[a].Papers {
		// Count each term once per paper.
		inPaper := make(map[string]bool)
		for _, term := range TitleTerms(c.Papers[p].Title) {
			inPaper[term] = true
		}
		for term := range inPaper {
			counts[term]++
		}
	}
	var skills []string
	for term, n := range counts {
		if n >= minSupport {
			skills = append(skills, term)
		}
	}
	sort.Strings(skills)
	return skills
}
