package dblp

import (
	"math"
	"testing"

	"authteam/internal/expertgraph"
)

// juniorSeniorCorpus: a junior (2 papers, repeat terms) coauthoring
// with a prolific senior (12 papers).
func juniorSeniorCorpus(t *testing.T) *Corpus {
	t.Helper()
	b := NewBuilder()
	junior := b.Author("Junior")
	senior := b.Author("Senior")
	v := b.Venue("V", 3)
	b.AddPaper("Clustering Patterns in Graphs", 2012, v, 3, junior, senior)
	b.AddPaper("Graphs Clustering at Scale", 2013, v, 2, junior)
	for i := 0; i < 10; i++ {
		b.AddPaper("Spectral Methods Volume", 2000+i, v, 40+i, senior)
	}
	return b.Build()
}

func TestBuildGraphSkillsOnlyForJuniors(t *testing.T) {
	c := juniorSeniorCorpus(t)
	g, mapping, err := BuildGraph(c, GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2", g.NumNodes())
	}
	var jr, sr expertgraph.NodeID = -1, -1
	for u := expertgraph.NodeID(0); int(u) < g.NumNodes(); u++ {
		switch c.Authors[mapping[u]].Name {
		case "Junior":
			jr = u
		case "Senior":
			sr = u
		}
	}
	// Junior repeats "clustering" and "graphs" across both titles.
	if len(g.Skills(jr)) != 2 {
		t.Errorf("junior skills = %d, want 2", len(g.Skills(jr)))
	}
	// Senior has 12 papers (≥ 10): no skills even though terms repeat.
	if len(g.Skills(sr)) != 0 {
		t.Errorf("senior skills = %v, want none", g.Skills(sr))
	}
}

func TestBuildGraphAuthorityAndWeights(t *testing.T) {
	c := juniorSeniorCorpus(t)
	g, mapping, err := BuildGraph(c, GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var jr, sr expertgraph.NodeID
	for u := expertgraph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if c.Authors[mapping[u]].Name == "Junior" {
			jr = u
		} else {
			sr = u
		}
	}
	// Authority = h-index (floored at 1).
	if got := g.Authority(sr); got != float64(c.HIndex(mapping[sr])) {
		t.Errorf("senior authority = %v, want h-index %d", got, c.HIndex(mapping[sr]))
	}
	// Pubs recorded.
	if g.Pubs(sr) != 11 {
		t.Errorf("senior pubs = %d, want 11", g.Pubs(sr))
	}
	// Edge weight = 1 − Jaccard: shared 1 of 12 distinct papers.
	w, ok := g.EdgeWeight(jr, sr)
	if !ok {
		t.Fatal("coauthor edge missing")
	}
	wantJ := 1.0 / 12
	if math.Abs(w-(1-wantJ)) > 1e-12 {
		t.Errorf("edge weight = %v, want %v", w, 1-wantJ)
	}
}

func TestBuildGraphDefaults(t *testing.T) {
	// MinTermSupport default is 2: single-occurrence terms are not
	// skills; JuniorMaxPapers default is 10.
	b := NewBuilder()
	a := b.Author("OneHit")
	v := b.Venue("V", 1)
	b.AddPaper("Unique Wording Here", 2010, v, 0, a)
	c := b.Build()
	g, _, err := BuildGraph(c, GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSkills() != 0 {
		t.Errorf("skills = %d, want 0 with support 2", g.NumSkills())
	}
	g2, _, err := BuildGraph(c, GraphOptions{MinTermSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumSkills() == 0 {
		t.Error("support 1 should mine single-occurrence terms")
	}
}

func TestBuildGraphLargestComponent(t *testing.T) {
	b := NewBuilder()
	// Component 1: three authors on shared papers. Component 2: loner.
	a1, a2, a3 := b.Author("A1"), b.Author("A2"), b.Author("A3")
	loner := b.Author("Loner")
	v := b.Venue("V", 1)
	b.AddPaper("Joint Work Graphs", 2010, v, 1, a1, a2)
	b.AddPaper("More Joint Graphs", 2011, v, 1, a2, a3)
	b.AddPaper("Solo Effort Theory", 2012, v, 1, loner)
	c := b.Build()
	g, mapping, err := BuildGraph(c, GraphOptions{LargestComponent: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("LCC nodes = %d, want 3", g.NumNodes())
	}
	for _, aid := range mapping {
		if c.Authors[aid].Name == "Loner" {
			t.Error("loner should be dropped from largest component")
		}
	}
}

func TestBuildGraphEdgeDedup(t *testing.T) {
	// Coauthors on several papers still produce one edge.
	b := NewBuilder()
	x, y := b.Author("X"), b.Author("Y")
	v := b.Venue("V", 1)
	b.AddPaper("First Shared Result", 2010, v, 1, x, y)
	b.AddPaper("Second Shared Result", 2011, v, 1, x, y)
	c := b.Build()
	g, _, err := BuildGraph(c, GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", g.NumEdges())
	}
	// Jaccard = 1 (identical paper sets) → weight 0.
	if w, _ := g.EdgeWeight(0, 1); w != 0 {
		t.Errorf("weight = %v, want 0 for identical paper sets", w)
	}
}
