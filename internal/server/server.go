// Package server is the long-lived query-serving layer over the team
// discovery library: an HTTP/JSON daemon that loads the expert graph
// and its 2-hop cover index once at startup and then amortizes that
// preprocessing over arbitrarily many discovery requests — the usage
// regime the paper's indexing argument (§4.1) assumes, and the seam
// every scaling extension (sharding, batching, replication) plugs
// into.
//
// Endpoints:
//
//	POST /v1/discover        one project → top-k teams
//	POST /v1/discover/batch  many projects, fanned out over workers
//	GET  /healthz            liveness + graph summary
//	GET  /stats              query counters, latency percentiles,
//	                         cache hit rate
//
// Identical requests are served from an LRU result cache keyed on the
// normalized project and full parameterization; every computation is
// bounded by a per-request timeout and the daemon drains in-flight
// requests on shutdown.
package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"authteam/internal/expertgraph"
	"authteam/internal/transform"
)

// Config parameterizes a Server. The zero value is usable given a
// Graph or GraphPath.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":7411").
	Addr string
	// GraphPath is the expert network file produced by dblpgen. It is
	// ignored when Graph is non-nil, but still used (when non-empty) as
	// the persistence prefix for built indexes.
	GraphPath string
	// Graph serves an already-loaded graph (tests, embedding).
	Graph *expertgraph.Graph
	// NoPersistIndex disables writing built 2-hop covers next to the
	// graph file.
	NoPersistIndex bool
	// CacheSize bounds the result LRU (default 1024; negative
	// disables caching).
	CacheSize int
	// RequestTimeout bounds each discovery computation (default 30s).
	RequestTimeout time.Duration
	// Workers is the root-scan parallelism per discovery and the
	// fan-out width of batch requests (default runtime.NumCPU()).
	Workers int
	// Gamma and Lambda are the defaults applied to requests that omit
	// them. Nil means 0.6 (the paper's setting); pointers keep an
	// explicit server default of 0 distinguishable from unset.
	Gamma, Lambda *float64
	// WarmIndex builds the default-γ G' index during New instead of on
	// the first CA-CC/SA-CA-CC request.
	WarmIndex bool
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":7411"
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	return c
}

// Server answers team discovery requests over one expert network. It
// is safe for concurrent use; create with New.
type Server struct {
	cfg     Config
	g       *expertgraph.Graph
	indexes *indexSet
	cache   *lruCache
	metrics *metrics
	// gamma and lambda are the resolved request defaults.
	gamma, lambda float64

	// params memoizes transform fits per (γ, λ). Fitting is O(n), so
	// the map is simply cleared if a parameter sweep overgrows it.
	pmu    sync.Mutex
	params map[[2]float64]*transform.Params

	// flights holds one latch per cache key being computed, so
	// concurrent identical requests run the discovery once.
	flightMu sync.Mutex
	flights  map[string]chan struct{}
}

// New loads (or adopts) the graph and prepares the serving state. With
// cfg.WarmIndex it also builds the default-γ index before returning,
// so the first request pays no preprocessing latency.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	g := cfg.Graph
	if g == nil {
		if cfg.GraphPath == "" {
			return nil, fmt.Errorf("server: config needs Graph or GraphPath")
		}
		var err error
		g, err = expertgraph.LoadFile(cfg.GraphPath)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	base := cfg.GraphPath
	if cfg.NoPersistIndex {
		base = ""
	}
	s := &Server{
		cfg:     cfg,
		g:       g,
		indexes: newIndexSet(g, base),
		cache:   newLRU(cfg.CacheSize),
		metrics: newMetrics(),
		gamma:   0.6,
		lambda:  0.6,
		params:  make(map[[2]float64]*transform.Params),
		flights: make(map[string]chan struct{}),
	}
	if cfg.Gamma != nil {
		s.gamma = *cfg.Gamma
	}
	if cfg.Lambda != nil {
		s.lambda = *cfg.Lambda
	}
	if s.gamma < 0 || s.gamma > 1 || s.lambda < 0 || s.lambda > 1 {
		return nil, fmt.Errorf("server: default γ=%v λ=%v out of [0,1]", s.gamma, s.lambda)
	}
	if cfg.WarmIndex {
		p, err := s.paramsFor(s.gamma, s.lambda)
		if err != nil {
			return nil, err
		}
		s.indexes.forMethod(p, defaultMethod)
	}
	return s, nil
}

// Graph returns the expert network being served.
func (s *Server) Graph() *expertgraph.Graph { return s.g }

// paramsFor returns the memoized transform fit for (γ, λ).
func (s *Server) paramsFor(gamma, lambda float64) (*transform.Params, error) {
	key := [2]float64{gamma, lambda}
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if p, ok := s.params[key]; ok {
		return p, nil
	}
	p, err := transform.Fit(s.g, gamma, lambda, transform.Options{Normalize: true})
	if err != nil {
		return nil, err
	}
	if len(s.params) >= 256 {
		clear(s.params)
	}
	s.params[key] = p
	return p, nil
}

// Handler returns the routed HTTP handler, for embedding the server
// under an existing mux or an httptest server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/discover", s.handleDiscover)
	mux.HandleFunc("POST /v1/discover/batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// ListenAndServe serves until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests for up to 10 seconds.
func (s *Server) ListenAndServe(ctx context.Context) error {
	srv := &http.Server{
		Addr:              s.cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		drain, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(drain)
	}
}
