// Package server is the long-lived query-serving layer over the team
// discovery library: an HTTP/JSON daemon that loads the expert graph
// and its 2-hop cover index once at startup and then amortizes that
// preprocessing over arbitrarily many discovery requests — the usage
// regime the paper's indexing argument (§4.1) assumes, and the seam
// every scaling extension (sharding, batching, replication) plugs
// into.
//
// Endpoints:
//
//	POST   /v1/discover          one project → top-k teams
//	POST   /v1/discover/batch    many projects, fanned out over workers
//	POST   /v1/graph/nodes       add an expert (live mutation)
//	POST   /v1/graph/edges       add a collaboration (live mutation)
//	PATCH  /v1/graph/nodes/{id}  update authority / grant skills
//	DELETE /v1/graph/nodes/{id}  tombstone an expert (drops its edges)
//	DELETE /v1/graph/edges       remove a collaboration
//	PATCH  /v1/graph/edges       re-weight a collaboration
//	GET    /v1/journal/tail      replication: journal records after an epoch (long-poll)
//	GET    /v1/journal/base      replication: the compacted fold snapshot
//	GET    /healthz              liveness + graph summary + epoch
//	GET    /stats                query counters, latency percentiles,
//	                             cache hit rate, live-mutation state
//
// The graph is served through the live-mutation overlay
// (internal/live): every request resolves one epoch snapshot and runs
// entirely against it (snapshot isolation), mutations advance the
// epoch atomically, and the result cache is epoch-keyed so a discover
// answer is never served from a dead epoch. The 2-hop cover indexes
// are carried across epochs by incremental repair (resumed pruned
// Dijkstras); when a delta is not repairable the index is rebuilt
// asynchronously while affected queries fall back to exact per-root
// Dijkstra. Identical requests are served from an LRU result cache
// keyed on the epoch, the normalized project and the full
// parameterization; every computation is bounded by a per-request
// timeout and the daemon drains in-flight requests on shutdown.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"authteam/internal/expertgraph"
	"authteam/internal/live"
	"authteam/internal/obs"
	"authteam/internal/repl"
	"authteam/internal/transform"
)

// Config parameterizes a Server. The zero value is usable given a
// Graph or GraphPath.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":7411").
	Addr string
	// GraphPath is the expert network file produced by dblpgen. It is
	// ignored when Graph is non-nil, but still used (when non-empty) as
	// the persistence prefix for built indexes.
	GraphPath string
	// Graph serves an already-loaded graph (tests, embedding).
	Graph *expertgraph.Graph
	// JournalPath enables the write-ahead mutation journal. An existing
	// journal is replayed onto the base graph at startup, restoring the
	// pre-restart epoch. Empty disables journaling (mutations are then
	// lost on restart).
	JournalPath string
	// JournalSync fsyncs the journal after every mutation.
	JournalSync bool
	// CompactThreshold folds the journal into a persisted base graph
	// (JournalPath+".base") at boot when the replayed suffix has at
	// least this many records, keeping restart replay O(recent churn).
	// 0 disables the boot fold. With CompactInterval set it is also the
	// background compactor's record trigger.
	CompactThreshold int
	// CompactInterval enables the background compactor: a goroutine
	// that polls at this (jittered) cadence and — when the journal has
	// accumulated CompactThreshold records or CompactBytes bytes since
	// the last fold — runs Compact while serving, re-basing the
	// in-memory store so resident log length and per-epoch overlay cost
	// stay O(churn since the last fold) in a never-restarted daemon.
	// 0 disables it. Requires JournalPath.
	CompactInterval time.Duration
	// CompactBytes is the background compactor's journal-size trigger
	// (0 disables the byte trigger; with CompactThreshold also 0 the
	// compactor falls back to a record default).
	CompactBytes int64
	// RepairBudget caps how many delta mutations an index is carried
	// across by incremental repair before a full rebuild is preferred
	// (default 512; negative disables incremental repair).
	RepairBudget int
	// RepairVisitBudget caps the label-visit work of one incremental
	// repair operation: a repair touching more labels than this falls
	// back to an async rebuild, bounding the latency a pathological
	// delta (hub removal) injects into the request path. 0 disables
	// the cap.
	RepairVisitBudget int
	// MemoEvery is the spacing of the store's reconstruction
	// checkpoints (live.Config.MemoEvery); ≤ 0 keeps the default (256).
	// Smaller values trade memory for faster SnapshotAt on deep
	// histories.
	MemoEvery int
	// CommitBatch caps how many queued mutations the store's group
	// committer covers with one journal write + epoch publish
	// (live.Config.CommitBatch); ≤ 0 keeps the default (256).
	CommitBatch int
	// CommitInterval makes the group committer wait this long after a
	// batch's first mutation for stragglers before committing — fewer
	// fsyncs under JournalSync at the cost of per-op latency. 0 (the
	// default) commits as soon as the queue drains.
	CommitInterval time.Duration
	// CommitAuto replaces the fixed CommitInterval with an adaptive
	// straggler window: the committer opens a batching window only
	// while journal appends are slower than mutation arrivals (fsync is
	// the bottleneck), and otherwise commits immediately. Overrides
	// CommitInterval when set.
	CommitAuto bool
	// CacheCompactFactor scales the result cache's per-epoch key-list
	// compaction threshold (sweep at factor×CacheSize dead keys; < 1
	// means the default of 2). Larger factors sweep less often at the
	// cost of more idle memory.
	CacheCompactFactor int
	// FollowURL turns the server into a read replica of the leader at
	// this base URL: the store is bootstrapped from the leader's
	// replication log (base snapshot + journal tail), kept current by a
	// background follower loop, and mutation endpoints answer 307
	// redirects to the leader. Empty (the default) serves as a leader.
	FollowURL string
	// FollowPoll bounds one replication long-poll (default 25s).
	FollowPoll time.Duration
	// MinEpochWait bounds how long a read carrying X-Authteam-Min-Epoch
	// may block waiting for replication to catch up before the server
	// gives up (307 to the leader on a follower, 409 on a leader).
	// Default 5s.
	MinEpochWait time.Duration
	// NoPersistIndex disables writing built 2-hop covers next to the
	// graph file.
	NoPersistIndex bool
	// CacheSize bounds the result LRU (default 1024; negative
	// disables caching).
	CacheSize int
	// RequestTimeout bounds each discovery computation (default 30s).
	RequestTimeout time.Duration
	// Workers is the root-scan parallelism per discovery and the
	// fan-out width of batch requests (default runtime.NumCPU()).
	Workers int
	// Gamma and Lambda are the defaults applied to requests that omit
	// them. Nil means 0.6 (the paper's setting); pointers keep an
	// explicit server default of 0 distinguishable from unset.
	Gamma, Lambda *float64
	// WarmIndex builds the default-γ G' index during New instead of on
	// the first CA-CC/SA-CA-CC request.
	WarmIndex bool
	// Metrics supplies an external obs registry for the server's
	// instruments (embedding several components under one exposition).
	// Nil gives the server its own registry; either way GET /metrics
	// serves it. Two servers must not share one registry — their
	// gauge registrations would collide.
	Metrics *obs.Registry
	// NoObserve turns off the optional instrumentation: pipeline
	// tracing (spans, X-Authteam-Trace, debug=trace), per-route HTTP
	// histograms, and the live-store/index/replication instruments.
	// The request counters behind /stats keep working. Exists so the
	// instrumentation overhead is measurable (BENCH_obs.json).
	NoObserve bool
	// DebugAddr starts a second listener (ListenAndServe only) serving
	// net/http/pprof plus /metrics, /readyz and /healthz — profiling
	// stays off the public port. Empty disables it.
	DebugAddr string
	// ReadyMaxLagEpochs is the /readyz threshold on follower epoch lag:
	// past it the probe answers 503 so a balancer sheds the stale
	// replica. 0 means the default (4096); negative disables the check.
	ReadyMaxLagEpochs int64
	// ReadyMaxLag is the /readyz threshold on follower staleness in
	// wall time (how long since the follower last confirmed catch-up).
	// 0 means the default (60s); negative disables the check.
	ReadyMaxLag time.Duration
	// SlowQueryThreshold enables the sampled slow-query log: discovers
	// slower than this are logged through slog with their pipeline
	// spans, rate-limited to one line per second. 0 disables it.
	SlowQueryThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":7411"
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.RepairBudget == 0 {
		c.RepairBudget = 512
	}
	if c.FollowPoll == 0 {
		c.FollowPoll = 25 * time.Second
	}
	if c.MinEpochWait == 0 {
		c.MinEpochWait = 5 * time.Second
	}
	if c.ReadyMaxLagEpochs == 0 {
		c.ReadyMaxLagEpochs = 4096
	}
	if c.ReadyMaxLag == 0 {
		c.ReadyMaxLag = 60 * time.Second
	}
	return c
}

// Server answers team discovery requests over one expert network. It
// is safe for concurrent use; create with New.
type Server struct {
	cfg     Config
	store   *live.Store
	indexes *indexSet
	cache   *lruCache
	metrics *metrics
	// compactor is the background journal-fold loop (nil unless
	// Config.CompactInterval and JournalPath are set).
	compactor *live.Compactor
	// follower is the replication apply loop (nil unless
	// Config.FollowURL is set). It survives promotion as a stopped
	// loop; role, not this pointer, decides how requests are served.
	follower *live.Follower
	// role is the cluster-role state machine (cluster.go); leaderURL is
	// the follower's current upstream ("" once promoted). promoteMu
	// serializes the promote/demote transitions.
	role       atomic.Int32
	leaderURL  atomic.Value // string
	promoteMu  sync.Mutex
	promotions atomic.Uint64
	// fencedRequests counts requests refused (or a leadership lost)
	// because a peer proved a newer term.
	fencedRequests atomic.Uint64
	// Replication-serving counters (leader side of the log).
	tailRequests  atomic.Uint64
	tailCompacted atomic.Uint64
	baseRequests  atomic.Uint64
	// gamma and lambda are the resolved request defaults.
	gamma, lambda float64

	// obs is the metrics registry served at /metrics (always non-nil).
	// observe gates the optional instrumentation — pipeline tracing and
	// the per-route HTTP histograms (httpReqs/httpHist are nil when
	// off; observation on nil instruments is a no-op).
	obs      *obs.Registry
	observe  bool
	httpReqs *obs.CounterVec   // authteam_http_requests_total{route, code}
	httpHist *obs.HistogramVec // authteam_http_request_seconds{route}
	// slowLogNS rate-limits the slow-query log: unix nanos of the last
	// emitted line, CAS-advanced so at most one line per second escapes
	// a latency storm.
	slowLogNS atomic.Int64

	// params memoizes transform fits per (γ, λ, epoch). Fitting is
	// O(n), so the map is simply cleared if a parameter sweep (or a
	// long mutation stream) overgrows it.
	pmu    sync.Mutex
	params map[paramsKey]*transform.Params

	// flights holds one latch per cache key being computed, so
	// concurrent identical requests run the discovery once.
	flightMu sync.Mutex
	flights  map[string]chan struct{}
}

type paramsKey struct {
	gamma, lambda float64
	epoch         uint64
}

// view is one request's consistent slice of the world: an epoch
// snapshot and its zero-copy graph view (base CSR + delta overlay).
// Everything the request touches — skill resolution, search, scoring,
// serialization — reads this view, never "the latest" state and never
// a materialized graph copy.
type view struct {
	snap *live.Snapshot
	g    expertgraph.GraphView
}

func (v view) epoch() uint64 { return v.snap.Epoch() }

// New loads (or adopts) the graph, replays the journal if configured,
// and prepares the serving state. With cfg.WarmIndex it also builds
// the default-γ index before returning, so the first request pays no
// preprocessing latency.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	g := cfg.Graph
	if g == nil {
		switch {
		case cfg.GraphPath != "":
			var err error
			g, err = expertgraph.LoadFile(cfg.GraphPath)
			if err != nil {
				// A follower bootstraps from the leader's replication
				// log, so a missing graph file just means an empty
				// starting point; any other load error is still fatal.
				if cfg.FollowURL == "" || !errors.Is(err, os.ErrNotExist) {
					return nil, fmt.Errorf("server: %w", err)
				}
			}
		case cfg.FollowURL != "":
			// Pure follower: start empty, catch up over the wire.
		default:
			return nil, fmt.Errorf("server: config needs Graph, GraphPath or FollowURL")
		}
		if g == nil {
			var err error
			if g, err = expertgraph.NewBuilder(0, 0).Build(); err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// The optional instruments (store, indexes, replication, routes,
	// tracing) register only when observing; the request counters that
	// back /stats always do.
	var storeReg, deepReg *obs.Registry
	if !cfg.NoObserve {
		storeReg, deepReg = reg, reg
	}
	store, err := live.Open(g, live.Config{
		JournalPath:      cfg.JournalPath,
		Sync:             cfg.JournalSync,
		CompactThreshold: cfg.CompactThreshold,
		MemoEvery:        cfg.MemoEvery,
		CommitBatch:      cfg.CommitBatch,
		CommitInterval:   cfg.CommitInterval,
		CommitAuto:       cfg.CommitAuto,
		Metrics:          storeReg,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	base := cfg.GraphPath
	if cfg.NoPersistIndex {
		base = ""
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		indexes: newIndexSet(base, store, cfg.RepairBudget, cfg.RepairVisitBudget, cfg.Workers, deepReg),
		cache:   newLRU(cfg.CacheSize, cfg.CacheCompactFactor),
		metrics: newMetrics(reg),
		obs:     reg,
		observe: !cfg.NoObserve,
		gamma:   0.6,
		lambda:  0.6,
		params:  make(map[paramsKey]*transform.Params),
		flights: make(map[string]chan struct{}),
	}
	// Boot-time role: FollowURL makes a follower, otherwise a leader —
	// unless the journal replayed a persisted fence, in which case the
	// node restarts demoted: its store would 412 every write anyway, so
	// advertising leadership (and readiness) would only send clients to
	// a dead lineage. From here on the role atomic — not the config —
	// drives request dispatch, so a promotion can flip the node while
	// it serves.
	s.leaderURL.Store(cfg.FollowURL)
	switch {
	case store.Fenced():
		s.role.Store(roleDemoted)
	case cfg.FollowURL != "":
		s.role.Store(roleFollower)
	default:
		s.role.Store(roleLeader)
	}
	if s.observe {
		// The cluster family is exported on every role: a dashboard
		// watches the same four series through a failover instead of
		// series appearing and vanishing with the role.
		reg.GaugeFunc("authteam_cluster_term",
			"Current fencing term of the local store.",
			func() float64 { return float64(s.store.Term()) })
		reg.GaugeFunc("authteam_cluster_role",
			"Cluster role code: 0 leader, 1 follower, 2 promoting, 3 demoted.",
			func() float64 { return float64(s.syncRole()) })
		reg.CounterFunc("authteam_cluster_promotions_total",
			"Follower-to-leader promotions completed by this node.",
			func() float64 { return float64(s.promotions.Load()) })
		reg.CounterFunc("authteam_cluster_fenced_total",
			"Requests refused (or leaderships lost) because a peer proved a newer term.",
			func() float64 { return float64(s.fencedRequests.Load()) })
	}
	if s.observe {
		s.httpReqs = reg.CounterVec("authteam_http_requests_total",
			"HTTP requests by route and status code.", "route", "code")
		s.httpHist = reg.HistogramVec("authteam_http_request_seconds",
			"HTTP request latency by route.", nil, "route")
		reg.CounterFunc("authteam_cache_hits_total",
			"Result-cache hits.", func() float64 { return float64(s.cache.Stats().Hits) })
		reg.CounterFunc("authteam_cache_misses_total",
			"Result-cache misses.", func() float64 { return float64(s.cache.Stats().Misses) })
		reg.GaugeFunc("authteam_cache_size",
			"Resident result-cache entries.", func() float64 { return float64(s.cache.Stats().Size) })
		reg.CounterFunc("authteam_journal_tail_requests_total",
			"Replication tail round-trips served (leader side).",
			func() float64 { return float64(s.tailRequests.Load()) })
		reg.CounterFunc("authteam_journal_base_requests_total",
			"Replication base snapshots served (leader side).",
			func() float64 { return float64(s.baseRequests.Load()) })
	}
	if cfg.Gamma != nil {
		s.gamma = *cfg.Gamma
	}
	if cfg.Lambda != nil {
		s.lambda = *cfg.Lambda
	}
	if s.gamma < 0 || s.gamma > 1 || s.lambda < 0 || s.lambda > 1 {
		return nil, fmt.Errorf("server: default γ=%v λ=%v out of [0,1]", s.gamma, s.lambda)
	}
	// A follower warms its index once replication has caught up, not
	// against the (possibly empty) bootstrap state.
	if cfg.WarmIndex && cfg.FollowURL == "" {
		v := s.view()
		p, err := s.paramsFor(v, s.gamma, s.lambda)
		if err != nil {
			return nil, err
		}
		s.indexes.forMethod(v, p, defaultMethod)
	}
	if cfg.CompactInterval > 0 && cfg.JournalPath == "" {
		return nil, fmt.Errorf("server: CompactInterval requires JournalPath (nothing to fold without a journal)")
	}
	if cfg.JournalPath != "" && cfg.CompactInterval > 0 {
		s.compactor, err = store.StartCompactor(live.CompactorConfig{
			Interval:   cfg.CompactInterval,
			MinRecords: uint64(max(cfg.CompactThreshold, 0)),
			MaxBytes:   cfg.CompactBytes,
			OnFold: func(st live.CompactStats, took time.Duration, err error) {
				if err != nil {
					slog.Error("server: background compaction failed", "err", err)
					return
				}
				slog.Info("server: compacted journal",
					"epoch", st.Epoch,
					"fold_ms", float64(took)/float64(time.Millisecond),
					"folded", st.Folded,
					"in_flight", st.Remaining)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	if cfg.FollowURL != "" {
		// The source claims this store's term on every tail, so a
		// superseded upstream fences us (and we stop, demoted) instead
		// of feeding us a stale lineage; group framing lets a whole
		// upstream batch land as one local group commit.
		src := repl.NewHTTPSource(cfg.FollowURL, nil).WithTerm(store.Term).Instrument(storeReg)
		s.follower = live.StartFollower(store, src, live.FollowerConfig{
			PollTimeout: cfg.FollowPoll,
		})
		if s.observe {
			// Lag in epochs and in seconds: the pair a balancer needs —
			// epochs say how much history is missing, seconds keep
			// growing when the leader is unreachable and no epoch delta
			// is observable.
			reg.GaugeFunc("authteam_replication_lag_epochs",
				"Follower epoch lag behind the leader (0 when caught up).",
				func() float64 { return float64(s.follower.Stats().Lag) })
			reg.GaugeFunc("authteam_replication_lag_seconds",
				"Seconds since the follower last confirmed catch-up (0 while caught up).",
				func() float64 { return s.follower.Stats().LagSeconds })
			reg.CounterFunc("authteam_replication_polls_total",
				"Replication tail round-trips, including idle long-polls.",
				func() float64 { return float64(s.follower.Stats().Polls) })
			reg.CounterFunc("authteam_replication_applied_total",
				"Journal records replayed onto the local store.",
				func() float64 { return float64(s.follower.Stats().Applied) })
			reg.CounterFunc("authteam_replication_base_fetches_total",
				"Full base adoptions (fold-boundary catch-ups).",
				func() float64 { return float64(s.follower.Stats().BaseFetches) })
			reg.CounterFunc("authteam_replication_errors_total",
				"Transient replication source failures.",
				func() float64 { return float64(s.follower.Stats().Errors) })
		}
	}
	return s, nil
}

// Metrics returns the server's obs registry (for embedding: scraping
// or registering further instruments).
func (s *Server) Metrics() *obs.Registry { return s.obs }

// Follower reports the replication apply loop, or nil on a leader.
func (s *Server) Follower() *live.Follower { return s.follower }

// Store exposes the live mutation overlay (for embedding and tests).
func (s *Server) Store() *live.Store { return s.store }

// Graph returns the expert network at the current epoch.
func (s *Server) Graph() *expertgraph.Graph {
	g, err := s.store.Snapshot().Graph()
	if err != nil {
		// Mutations are validated before they are admitted, so a
		// snapshot always materializes; this keeps the accessor simple
		// for logging call sites.
		panic(err)
	}
	return g
}

// view resolves the current epoch snapshot and its overlay read view.
// No graph is materialized: a discover on a freshly mutated epoch
// costs an O(|delta|) overlay construction (shared by every request on
// the same snapshot), not a full graph copy.
func (s *Server) view() view {
	snap := s.store.Snapshot()
	return view{snap: snap, g: snap.View()}
}

// paramsFor returns the memoized transform fit for (γ, λ) at the
// view's epoch.
func (s *Server) paramsFor(v view, gamma, lambda float64) (*transform.Params, error) {
	key := paramsKey{gamma: gamma, lambda: lambda, epoch: v.epoch()}
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if p, ok := s.params[key]; ok {
		return p, nil
	}
	p, err := transform.Fit(v.g, gamma, lambda, transform.Options{Normalize: true})
	if err != nil {
		return nil, err
	}
	if len(s.params) >= 256 {
		clear(s.params)
	}
	s.params[key] = p
	return p, nil
}

// statusWriter records the response status for the per-route request
// counter. Flush is forwarded so streaming handlers keep working.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the per-route latency histogram and
// request counter. The histogram child is resolved once at wiring
// time, so the hot path adds two atomics and a map lookup for the
// status-coded counter. With observation off it returns h unchanged.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	if !s.observe {
		return h
	}
	hist := s.httpHist.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		hist.Observe(time.Since(start).Seconds())
		s.httpReqs.With(route, strconv.Itoa(sw.status)).Inc()
	}
}

// Handler returns the routed HTTP handler, for embedding the server
// under an existing mux or an httptest server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(label, h))
	}
	route("POST /v1/discover", "discover", s.handleDiscover)
	route("POST /v1/discover/batch", "batch", s.handleBatch)
	// Mutation routes are wired once and dispatch on the live role: a
	// leader applies locally, a follower 307s to the writer, a demoted
	// node answers the fence. A follower's store is owned by its
	// replication loop — local writes would fork the history — which is
	// exactly what the dispatch (and under it, the store's own fencing)
	// prevents.
	route("POST /v1/graph/nodes", "add_node", s.dispatchMutation(s.handleAddNode))
	route("POST /v1/graph/edges", "add_edge", s.dispatchMutation(s.handleAddEdge))
	route("PATCH /v1/graph/nodes/{id}", "update_node", s.dispatchMutation(s.handleUpdateNode))
	route("DELETE /v1/graph/nodes/{id}", "remove_node", s.dispatchMutation(s.handleRemoveNode))
	route("DELETE /v1/graph/edges", "remove_edge", s.dispatchMutation(s.handleRemoveEdge))
	route("PATCH /v1/graph/edges", "update_edge", s.dispatchMutation(s.handleUpdateEdge))
	// The replication log is served by every node, not just leaders, so
	// a follower can itself fan out to more followers (relay trees).
	route("GET /v1/journal/tail", "journal_tail", s.handleJournalTail)
	route("GET /v1/journal/base", "journal_base", s.handleJournalBase)
	route("GET /v1/cluster/role", "cluster_role", s.handleClusterRole)
	route("POST /v1/cluster/promote", "cluster_promote", s.handleClusterPromote)
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /stats", "stats", s.handleStats)
	// The observability surface itself is deliberately uninstrumented:
	// scrapes should not move the latency histograms they read.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// handleMetrics serves the registry in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.obs.WritePrometheus(w); err != nil {
		// Headers are gone; nothing to do but note it.
		slog.Debug("server: metrics write failed", "err", err)
	}
}

// ReadyzResponse is the /readyz payload. Readiness is distinct from
// /healthz liveness: a lagging follower is alive (and still serves
// snapshot-consistent reads of its epoch) but should be pulled from a
// freshness-sensitive balancer pool.
type ReadyzResponse struct {
	Ready bool   `json:"ready"`
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
	// Reason explains a 503 ("", when ready).
	Reason string `json:"reason,omitempty"`
	// Follower-only lag detail (mirrors ReplicationStats).
	LeaderEpoch uint64  `json:"leader_epoch,omitempty"`
	LagEpochs   uint64  `json:"lag_epochs,omitempty"`
	LagSeconds  float64 `json:"lag_seconds,omitempty"`
}

// handleReadyz answers the lag-aware readiness probe, following the
// cluster role live: a leader is ready while it serves; a follower is
// ready while its replication loop runs and its lag is inside the
// configured thresholds; a node mid-promotion or fenced out of the
// lineage is not ready (the balancer must stop routing to it even
// though its snapshot reads still work).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	role := s.syncRole()
	resp := ReadyzResponse{Ready: true, Role: roleName(role), Epoch: s.store.Epoch()}
	switch role {
	case roleFollower:
		st := s.follower.Stats()
		resp.LeaderEpoch = st.LeaderEpoch
		resp.LagEpochs = st.Lag
		resp.LagSeconds = st.LagSeconds
		switch {
		case !st.Running:
			resp.Ready = false
			resp.Reason = "replication loop stopped: " + st.LastError
		case s.cfg.ReadyMaxLagEpochs > 0 && st.Lag > uint64(s.cfg.ReadyMaxLagEpochs):
			resp.Ready = false
			resp.Reason = fmt.Sprintf("lag %d epochs exceeds threshold %d", st.Lag, s.cfg.ReadyMaxLagEpochs)
		case s.cfg.ReadyMaxLag > 0 && st.LagSeconds > s.cfg.ReadyMaxLag.Seconds():
			resp.Ready = false
			resp.Reason = fmt.Sprintf("stale for %.1fs, threshold %s", st.LagSeconds, s.cfg.ReadyMaxLag)
		}
	case rolePromoting:
		resp.Ready = false
		resp.Reason = "promotion in progress"
	case roleDemoted:
		resp.Ready = false
		resp.Reason = fmt.Sprintf("fenced by term %d; no longer part of the serving lineage", s.store.Term())
	}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// Close stops the replication follower and background compactor (if
// any) and releases the mutation journal. Serving (reads) keeps
// working; further mutations fail with live.ErrClosed. The follower
// stops first — its apply loop writes through the store the other two
// steps shut down.
func (s *Server) Close() error {
	if s.follower != nil {
		s.follower.Stop()
	}
	if s.compactor != nil {
		s.compactor.Stop()
	}
	return s.store.Close()
}

// debugHandler builds the mux for the private debug listener
// (Config.DebugAddr): pprof plus a second copy of the observability
// endpoints, so profiles and scrapes work even when the public
// address sits behind a proxy that should not expose them.
func (s *Server) debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// ListenAndServe serves until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests for up to 10 seconds. When
// Config.DebugAddr is set, a second listener serves pprof and the
// observability endpoints there; it lives and dies with the main one.
func (s *Server) ListenAndServe(ctx context.Context) error {
	srv := &http.Server{
		Addr:              s.cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	var dbg *http.Server
	if s.cfg.DebugAddr != "" {
		dbg = &http.Server{
			Addr:              s.cfg.DebugAddr,
			Handler:           s.debugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				slog.Error("server: debug listener failed", "addr", dbg.Addr, "err", err)
			}
		}()
	}
	stopDebug := func() {
		if dbg != nil {
			drain, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			dbg.Shutdown(drain)
		}
	}
	select {
	case err := <-errCh:
		stopDebug()
		return err
	case <-ctx.Done():
		drain, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := srv.Shutdown(drain)
		stopDebug()
		if cerr := s.Close(); err == nil {
			err = cerr
		}
		return err
	}
}
