package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"authteam/internal/live"
	"authteam/internal/repl"
)

func getRole(t *testing.T, url string) repl.RoleInfo {
	t.Helper()
	resp, err := http.Get(url + "/v1/cluster/role")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("role endpoint: %s", resp.Status)
	}
	var ri repl.RoleInfo
	if err := json.NewDecoder(resp.Body).Decode(&ri); err != nil {
		t.Fatal(err)
	}
	return ri
}

func promoteNode(t *testing.T, url string, body string) (int, PromoteResponse, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/cluster/promote", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var pr PromoteResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatalf("decode promote reply %s: %v", raw, err)
		}
	}
	return resp.StatusCode, pr, raw
}

// TestClusterRoleEndpoint checks both born roles report themselves.
func TestClusterRoleEndpoint(t *testing.T) {
	ls, lts := newTestServer(t, nil)
	ri := getRole(t, lts.URL)
	if ri.Role != "leader" || ri.Term != 0 || ri.Leader != "" {
		t.Fatalf("born leader role: %+v", ri)
	}
	_, fts := newFollowerServer(t, lts.URL, ls.store.Epoch(), nil)
	fri := getRole(t, fts.URL)
	if fri.Role != "follower" || fri.Leader != lts.URL {
		t.Fatalf("born follower role: %+v", fri)
	}
}

// TestPromoteFollower walks the follower → leader transition end to
// end over HTTP: the promoted node seals the shared prefix, bumps the
// term, applies mutations locally instead of redirecting, serves the
// journal as the new lineage, and reports it all through role, stats
// and readiness.
func TestPromoteFollower(t *testing.T) {
	ls, lts := newTestServer(t, nil)
	if status, data := postJSON(t, lts.URL+"/v1/graph/nodes",
		`{"name": "pre", "authority": 6, "skills": ["analytics"]}`); status != http.StatusCreated {
		t.Fatalf("seed write: %d: %s", status, data)
	}
	fs, fts := newFollowerServer(t, lts.URL, ls.store.Epoch(), nil)

	status, pr, raw := promoteNode(t, fts.URL, "")
	if status != http.StatusOK {
		t.Fatalf("promote: %d: %s", status, raw)
	}
	if pr.Role != "leader" || pr.Term != 1 || pr.SealedEpoch != ls.store.Epoch() {
		t.Fatalf("promote reply %+v, want leader at term 1 sealed at %d", pr, ls.store.Epoch())
	}
	if ri := getRole(t, fts.URL); ri.Role != "leader" || ri.Term != 1 || ri.Leader != "" {
		t.Fatalf("post-promotion role: %+v", ri)
	}

	// Promotion is idempotent: a retry of a timed-out call answers what
	// the first call did.
	if status2, pr2, raw2 := promoteNode(t, fts.URL, ""); status2 != http.StatusOK || pr2.Term != 1 {
		t.Fatalf("repeat promote: %d %+v %s", status2, pr2, raw2)
	}

	// Mutations now apply locally — no redirect — and are minted under
	// the new term.
	req, _ := http.NewRequest("POST", fts.URL+"/v1/graph/nodes",
		strings.NewReader(`{"name": "post", "authority": 4, "skills": ["matrix"]}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := noRedirect().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("write on promoted node: %d: %s", resp.StatusCode, data)
	}
	var mr MutationResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Epoch != pr.SealedEpoch+1 {
		t.Fatalf("first post-promotion epoch %d, want %d", mr.Epoch, pr.SealedEpoch+1)
	}

	// The journal now serves the new lineage: the record past the seal
	// carries term 1.
	src := repl.NewHTTPSource(fts.URL, nil)
	muts, _, err := src.Tail(ctx(t), pr.SealedEpoch, 0)
	if err != nil || len(muts) != 1 {
		t.Fatalf("tail of promoted node: %d muts, %v", len(muts), err)
	}
	if muts[0].Term != 1 {
		t.Fatalf("post-promotion record term %d, want 1", muts[0].Term)
	}

	// Readiness and stats follow the role.
	if code, out := getReadyz(t, fts.URL); code != http.StatusOK || out.Role != "leader" {
		t.Fatalf("promoted readyz: %d %+v", code, out)
	}
	st := getStats(t, fts.URL)
	if st.Replication.Role != "leader" || st.Replication.Term != 1 || st.Replication.Promotions != 1 {
		t.Fatalf("promoted stats: %+v", st.Replication)
	}
	if st.Replication.Follower != nil {
		t.Fatalf("promoted node still reports a follower section: %+v", st.Replication.Follower)
	}
	_ = fs
}

// ctx returns a context bounded well under the test deadline — enough
// for the short tails these tests issue.
func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return c
}

// TestStaleTermTailFenced drives the tail fencing matrix directly over
// the wire against a leader whose store sits at term 3.
func TestStaleTermTailFenced(t *testing.T) {
	ls, lts := newTestServer(t, nil)
	if status, data := postJSON(t, lts.URL+"/v1/graph/nodes",
		`{"name": "pre", "authority": 6, "skills": ["analytics"]}`); status != http.StatusCreated {
		t.Fatalf("seed write: %d: %s", status, data)
	}
	if _, err := ls.store.Promote(3); err != nil {
		t.Fatal(err)
	}
	if status, data := postJSON(t, lts.URL+"/v1/graph/nodes",
		`{"name": "post", "authority": 4, "skills": ["matrix"]}`); status != http.StatusCreated {
		t.Fatalf("post-promotion write: %d: %s", status, data)
	}
	start := ls.store.TermStart() // 1; current epoch is 2

	tail := func(from, term uint64) *http.Response {
		t.Helper()
		url := fmt.Sprintf("%s/v1/journal/tail?from=%d", lts.URL, from)
		if term != 0 {
			url += fmt.Sprintf("&term=%d", term)
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// A stale claim asking for history past the lineage boundary is the
	// splice fencing exists to reject: 412 with our term in the header.
	if resp := tail(start+1, 1); resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("stale term past boundary: %d, want 412", resp.StatusCode)
	} else if resp.Header.Get(repl.TermHeader) != "3" {
		t.Fatalf("fence header %q, want 3", resp.Header.Get(repl.TermHeader))
	}
	// The same stale claim inside the shared prefix is served — that is
	// how an old-term replica catches up into the new lineage.
	if resp := tail(0, 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale term inside shared prefix: %d, want 200", resp.StatusCode)
	}
	// No claim at all (a peer predating cluster roles) is never fenced.
	if resp := tail(start+1, 0); resp.StatusCode != http.StatusOK {
		t.Fatalf("unclaimed tail: %d, want 200", resp.StatusCode)
	}

	// The typed client surfaces the fence as *live.FencedError.
	src := repl.NewHTTPSource(lts.URL, nil).WithTerm(func() uint64 { return 1 })
	_, _, err := src.Tail(ctx(t), start+1, 0)
	if !errors.Is(err, live.ErrFenced) {
		t.Fatalf("typed tail fence: %v, want ErrFenced", err)
	}

	// A claim BEYOND our term proves this leader was superseded: it
	// must answer 412 with its own (lower) term and fence itself.
	if resp := tail(0, 5); resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("future-term tail: %d, want 412", resp.StatusCode)
	} else if resp.Header.Get(repl.TermHeader) != "3" {
		t.Fatalf("superseded leader advertised term %q, want its own 3", resp.Header.Get(repl.TermHeader))
	}
	if ls.Role() != "demoted" || !ls.store.Fenced() {
		t.Fatalf("superseded leader: role %s fenced %v", ls.Role(), ls.store.Fenced())
	}
	// Once demoted, everything is refused: local writes, the tail, the
	// base, and a promotion attempt.
	if status, data := postJSON(t, lts.URL+"/v1/graph/nodes",
		`{"name": "late", "authority": 1}`); status != http.StatusPreconditionFailed {
		t.Fatalf("write on demoted node: %d: %s", status, data)
	}
	if resp := tail(0, 0); resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("tail of demoted node: %d, want 412", resp.StatusCode)
	}
	if resp, err := http.Get(lts.URL + "/v1/journal/base"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusPreconditionFailed {
			t.Fatalf("base of demoted node: %d, want 412", resp.StatusCode)
		}
	}
	if status, _, raw := promoteNode(t, lts.URL, ""); status != http.StatusConflict {
		t.Fatalf("promote demoted node: %d: %s", status, raw)
	}
	if code, out := getReadyz(t, lts.URL); code == http.StatusOK || out.Ready {
		t.Fatalf("demoted readyz: %d %+v", code, out)
	}
}

// TestForwardFenceDemotesOldLeader checks the partitioned-old-leader
// story on the mutation path: the first forwarded write claiming a
// newer term both bounces with the fence and flips the stale leader
// out of the serving lineage.
func TestForwardFenceDemotesOldLeader(t *testing.T) {
	ls, lts := newTestServer(t, nil)
	fwd := repl.NewLeader(lts.URL, nil).WithTerm(func() uint64 { return 2 })
	_, err := fwd.AddEdge(0, 2, 0.5)
	if !errors.Is(err, live.ErrFenced) {
		t.Fatalf("forward with newer term: %v, want ErrFenced", err)
	}
	if ls.Role() != "demoted" || !ls.store.Fenced() {
		t.Fatalf("old leader after fence: role %s fenced %v", ls.Role(), ls.store.Fenced())
	}
	// Its queued writes — retried without any term claim — stay fenced.
	if status, data := postJSON(t, lts.URL+"/v1/graph/edges",
		`{"u": 0, "v": 2, "w": 0.5}`); status != http.StatusPreconditionFailed {
		t.Fatalf("queued write on demoted leader: %d: %s", status, data)
	}
	st := getStats(t, lts.URL)
	if st.Replication.Role != "demoted" || st.Replication.FencedRequests == 0 {
		t.Fatalf("demoted stats: %+v", st.Replication)
	}
}

// soakWrite returns the i-th record of the deterministic soak write
// sequence: a node birth, every third write followed by an edge to the
// seed graph. Identical sequences must yield identical stores.
func soakWrites(n int) []string {
	skills := []string{"analytics", "matrix", "communities"}
	var out []string
	for i := 0; len(out) < n; i++ {
		out = append(out, fmt.Sprintf(`{"name": "n%d", "authority": %d, "skills": ["%s"]}`,
			i, 1+i%17, skills[i%len(skills)]))
	}
	return out[:n]
}

// applyWrites posts ws sequentially to url, failing the test on any
// non-201, and returns the last committed epoch.
func applyWrites(t *testing.T, url string, ws []string) uint64 {
	t.Helper()
	var last uint64
	for i, w := range ws {
		path := "/v1/graph/nodes"
		status, data := postJSON(t, url+path, w)
		if status != http.StatusCreated {
			t.Fatalf("write %d: %d: %s", i, status, data)
		}
		var mr MutationResponse
		if err := json.Unmarshal(data, &mr); err != nil {
			t.Fatal(err)
		}
		last = mr.Epoch
	}
	return last
}

// TestPromotionSoak is the failover drill: a leader dies mid-stream, a
// follower is promoted and takes the remaining writes, the resurrected
// old leader's queued writes are fenced — and the surviving lineage
// answers byte-identically to a control run that never failed over.
func TestPromotionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const total, failAt = 60, 30
	writes := soakWrites(total)

	// A seed write precedes the follower so its catch-up wait is for a
	// non-zero epoch — forcing the base bootstrap before readers start.
	const seed = `{"name": "seed", "authority": 5, "skills": ["analytics"]}`

	// Control: the same write sequence on a leader that never fails.
	_, cts := newTestServer(t, nil)
	applyWrites(t, cts.URL, append([]string{seed}, writes...))
	want, _ := json.Marshal(discoverAt(t, cts.URL))

	// Failover run: leader A, follower B.
	as, ats := newTestServer(t, nil)
	applyWrites(t, ats.URL, []string{seed})
	bs, bts := newFollowerServer(t, ats.URL, as.store.Epoch(), nil)

	// Concurrent readers hammer the follower through the whole drill so
	// the promotion flip runs under real read traffic.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(bts.URL+"/v1/discover", "application/json",
					strings.NewReader(discoverBody))
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader: status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}

	// Phase 1: the stream runs against A until the crash point; B must
	// hold the full prefix before A dies, or the failover loses writes.
	prefixEpoch := applyWrites(t, ats.URL, writes[:failAt])
	waitServerEpoch(t, bs, prefixEpoch)

	// Phase 2: A's transport dies mid-stream.
	ats.CloseClientConnections()
	ats.Close()

	// Phase 3: promote B; it becomes the writer for the rest of the
	// stream.
	status, pr, raw := promoteNode(t, bts.URL, "")
	if status != http.StatusOK || pr.Term != 1 || pr.SealedEpoch != prefixEpoch {
		t.Fatalf("promote: %d %+v %s", status, pr, raw)
	}
	finalEpoch := applyWrites(t, bts.URL, writes[failAt:])

	// Phase 4: A comes back from the dead and the failover-aware client
	// retries its queued writes there, claiming the new lineage's term.
	// The first contact fences A; the queue drains as rejections.
	ats2 := httptest.NewServer(as.Handler())
	defer ats2.Close()
	fwd := repl.NewLeader(ats2.URL, nil).WithTerm(bs.store.Term)
	for i := 0; i < 3; i++ {
		if _, _, err := fwd.AddNode(fmt.Sprintf("queued%d", i), 1, nil); !errors.Is(err, live.ErrFenced) {
			t.Fatalf("queued write %d on resurrected leader: %v, want ErrFenced", i, err)
		}
	}
	if as.Role() != "demoted" || !as.store.Fenced() {
		t.Fatalf("resurrected leader: role %s fenced %v", as.Role(), as.store.Fenced())
	}
	// Its own local queue is equally dead.
	if _, err := as.store.AddCollaboration(0, 2, 0.9); !errors.Is(err, live.ErrFenced) {
		t.Fatalf("local append on fenced store: %v, want ErrFenced", err)
	}

	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// The surviving lineage converged on exactly the control state —
	// same epoch, byte-identical discovery.
	if bs.store.Epoch() != finalEpoch || finalEpoch != uint64(total)+1 {
		t.Fatalf("survivor epoch %d (last write %d), want %d", bs.store.Epoch(), finalEpoch, total+1)
	}
	got, _ := json.Marshal(discoverAt(t, bts.URL))
	if string(want) != string(got) {
		t.Fatalf("failover divergence:\ncontrol  %s\nsurvivor %s", want, got)
	}
	if ri := getRole(t, bts.URL); ri.Role != "leader" || ri.Term != 1 || ri.Epoch != uint64(total)+1 {
		t.Fatalf("survivor role: %+v", ri)
	}
}

// TestLoopFencedFollowerDemotesRole: a follower whose replication loop
// is fenced by its source demotes its own *store* and exits — without
// ever touching the server's role atomic. The server must fold the
// store fence into every role surface anyway: before the fix it kept
// reporting "follower" and, crucially, kept serving /v1/journal/base —
// seeding downstream followers with its divergent suffix stamped under
// the new term.
func TestLoopFencedFollowerDemotesRole(t *testing.T) {
	as, ats := newTestServer(t, nil)
	if status, data := postJSON(t, ats.URL+"/v1/graph/nodes",
		`{"name": "pre", "authority": 6, "skills": ["analytics"]}`); status != http.StatusCreated {
		t.Fatalf("seed write: %d: %s", status, data)
	}
	bs, bts := newFollowerServer(t, ats.URL, as.store.Epoch(), nil)

	// A newer lineage fences A out-of-band (a promoted peer's first
	// contact, compressed to the store call). B's next poll gets the
	// 412 carrying term 9, demotes its own store, and stops.
	if err := as.store.Demote(9); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for !bs.store.Fenced() {
		if time.Now().After(deadline) {
			t.Fatalf("follower store never fenced; follower stats: %+v", bs.follower.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}

	if ri := getRole(t, bts.URL); ri.Role != "demoted" || ri.Term != 9 {
		t.Fatalf("loop-fenced follower role: %+v, want demoted at term 9", ri)
	}
	resp, err := http.Get(bts.URL + "/v1/journal/base")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("base of loop-fenced follower: %d, want 412", resp.StatusCode)
	}
	if status, _, raw := promoteNode(t, bts.URL, ""); status != http.StatusConflict {
		t.Fatalf("promote loop-fenced follower: %d: %s", status, raw)
	}
	if code, out := getReadyz(t, bts.URL); code == http.StatusOK || out.Ready {
		t.Fatalf("loop-fenced follower readyz: %d %+v", code, out)
	}
	st := getStats(t, bts.URL)
	if st.Replication.Role != "demoted" {
		t.Fatalf("loop-fenced follower stats role: %+v", st.Replication)
	}
}

// TestPromoteStaleExplicitTermKeepsFollower: an explicit promote term
// that is not beyond the node's current term is a bad request, not a
// failed promotion — it must answer 409 with the node's role intact.
// Before the fix the store.Promote failure path demoted the node (now
// durably), so an operator typo cost a healthy follower permanently.
func TestPromoteStaleExplicitTermKeepsFollower(t *testing.T) {
	as, ats := newTestServer(t, nil)
	if status, data := postJSON(t, ats.URL+"/v1/graph/nodes",
		`{"name": "pre", "authority": 6, "skills": ["analytics"]}`); status != http.StatusCreated {
		t.Fatalf("seed write: %d: %s", status, data)
	}
	bs, bts := newFollowerServer(t, ats.URL, as.store.Epoch(), nil)
	status, pr, raw := promoteNode(t, bts.URL, `{"term": 5}`)
	if status != http.StatusOK || pr.Term != 5 {
		t.Fatalf("promote to explicit term: %d %+v %s", status, pr, raw)
	}
	if status, data := postJSON(t, bts.URL+"/v1/graph/nodes",
		`{"name": "post", "authority": 4, "skills": ["matrix"]}`); status != http.StatusCreated {
		t.Fatalf("write on promoted node: %d: %s", status, data)
	}

	// C follows the new leader and adopts term 5 from the stream.
	cs, cts := newFollowerServer(t, bts.URL, bs.store.Epoch(), nil)
	if got := cs.store.Term(); got != 5 {
		t.Fatalf("follower term %d, want 5 adopted from the leader", got)
	}

	status, _, raw = promoteNode(t, cts.URL, `{"term": 3}`)
	if status != http.StatusConflict {
		t.Fatalf("stale explicit term: %d: %s", status, raw)
	}
	if ri := getRole(t, cts.URL); ri.Role != "follower" || cs.store.Fenced() {
		t.Fatalf("after rejected promote: %+v fenced %v, want an intact follower", ri, cs.store.Fenced())
	}
	// Still promotable with a genuinely newer term.
	status, pr, raw = promoteNode(t, cts.URL, `{"term": 9}`)
	if status != http.StatusOK || pr.Term != 9 {
		t.Fatalf("promote after rejected attempt: %d %+v %s", status, pr, raw)
	}
}

// TestDemotedRoleSurvivesRestart: a journaled node whose store was
// fenced out of the lineage must come back up demoted — not as a
// self-proclaimed ready leader whose every write 412s. The store-level
// fence already persists (TestDemotePersistsFence); this pins the
// server reading it at boot.
func TestDemotedRoleSurvivesRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "wal.jsonl")
	g := builderGraph(t)
	s1, ts1 := newTestServer(t, func(cfg *Config) {
		cfg.Graph = g
		cfg.JournalPath = journal
	})
	if status, data := postJSON(t, ts1.URL+"/v1/graph/nodes",
		`{"name": "pre", "authority": 6, "skills": ["analytics"]}`); status != http.StatusCreated {
		t.Fatalf("seed write: %d: %s", status, data)
	}
	if err := s1.store.Demote(7); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, func(cfg *Config) {
		cfg.Graph = g
		cfg.JournalPath = journal
	})
	if ri := getRole(t, ts2.URL); ri.Role != "demoted" || ri.Term != 7 {
		t.Fatalf("restarted fenced node role: %+v, want demoted term 7", ri)
	}
	resp, err := http.Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("restarted fenced node readyz: %s, want 503", resp.Status)
	}
	if status, data := postJSON(t, ts2.URL+"/v1/graph/nodes",
		`{"name": "late", "authority": 3, "skills": ["query"]}`); status != http.StatusPreconditionFailed {
		t.Fatalf("write on restarted fenced node: %d: %s", status, data)
	}
	if status, _, _ := promoteNode(t, ts2.URL, `{}`); status != http.StatusConflict {
		t.Fatalf("promote on restarted fenced node: %d, want 409", status)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	_ = ts2
}
