package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"authteam/internal/dblp"
	"authteam/internal/expertgraph"
	"authteam/internal/obs"
	"authteam/internal/workload"
)

// builderGraph is a small handcrafted network: three skills, one
// high-authority connector (dave), every node reachable.
func builderGraph(t *testing.T) *expertgraph.Graph {
	t.Helper()
	b := expertgraph.NewBuilder(5, 6)
	alice := b.AddNode("alice", 12, "analytics")
	bob := b.AddNode("bob", 3, "matrix")
	carol := b.AddNode("carol", 7, "communities")
	dave := b.AddNode("dave", 9)
	erin := b.AddNode("erin", 5, "analytics", "matrix")
	b.AddEdge(alice, dave, 0.3)
	b.AddEdge(dave, bob, 0.2)
	b.AddEdge(dave, carol, 0.5)
	b.AddEdge(alice, erin, 0.9)
	b.AddEdge(erin, carol, 0.4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Graph: builderGraph(t), Workers: 4, CacheSize: 64}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decodeDiscover(t *testing.T, data []byte) DiscoverResponse {
	t.Helper()
	var out DiscoverResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	return out
}

func TestDiscoverBasic(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, data := postJSON(t, ts.URL+"/v1/discover",
		`{"skills": ["analytics", "matrix", "communities"], "method": "sa-ca-cc", "k": 2}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	out := decodeDiscover(t, data)
	if len(out.Teams) == 0 {
		t.Fatal("no teams")
	}
	if out.Cached {
		t.Error("first query reported cached")
	}
	if out.Gamma != 0.6 || out.Lambda != 0.6 {
		t.Errorf("defaults not applied: γ=%v λ=%v", out.Gamma, out.Lambda)
	}
	// Every requested skill must be assigned to some member.
	covered := make(map[string]bool)
	for _, m := range out.Teams[0].Members {
		for _, s := range m.Skills {
			covered[s] = true
		}
	}
	for _, s := range []string{"analytics", "matrix", "communities"} {
		if !covered[s] {
			t.Errorf("skill %q not covered: %s", s, data)
		}
	}
}

func TestDiscoverAllMethods(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, method := range []string{"cc", "ca-cc", "sa-ca-cc", "random", "exact"} {
		body := fmt.Sprintf(`{"skills": ["analytics", "communities"], "method": %q}`, method)
		status, data := postJSON(t, ts.URL+"/v1/discover", body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", method, status, data)
		}
		if out := decodeDiscover(t, data); len(out.Teams) == 0 {
			t.Errorf("%s: no teams", method)
		}
	}
	status, data := postJSON(t, ts.URL+"/v1/discover",
		`{"skills": ["analytics", "communities"], "method": "pareto"}`)
	if status != http.StatusOK {
		t.Fatalf("pareto: status %d: %s", status, data)
	}
	if out := decodeDiscover(t, data); len(out.Pareto) == 0 {
		t.Error("pareto: empty front")
	}
}

func TestDiscoverErrors(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name, body string
		want       int
	}{
		{"empty body", "", http.StatusBadRequest},
		{"malformed json", "{", http.StatusBadRequest},
		{"missing skills", `{"method": "cc"}`, http.StatusBadRequest},
		{"unknown skill", `{"skills": ["juggling"]}`, http.StatusBadRequest},
		{"blank skill", `{"skills": [" "]}`, http.StatusBadRequest},
		{"bad method", `{"skills": ["analytics"], "method": "steiner"}`, http.StatusBadRequest},
		{"bad gamma", `{"skills": ["analytics"], "gamma": 1.5}`, http.StatusBadRequest},
		{"bad lambda", `{"skills": ["analytics"], "lambda": -0.1}`, http.StatusBadRequest},
		{"negative k", `{"skills": ["analytics"], "k": -1}`, http.StatusBadRequest},
		{"huge k", `{"skills": ["analytics"], "k": 4611686018427387904}`, http.StatusBadRequest},
		{"negative trials", `{"skills": ["analytics"], "method": "random", "trials": -5}`, http.StatusBadRequest},
		{"huge trials", `{"skills": ["analytics"], "method": "random", "trials": 2000000000}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, data := postJSON(t, ts.URL+"/v1/discover", tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.want, data)
		}
		var e errorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: malformed error body %s", tc.name, data)
		}
	}
}

func TestDiscoverInfeasible(t *testing.T) {
	b := expertgraph.NewBuilder(4, 2)
	a1 := b.AddNode("a1", 1, "x")
	a2 := b.AddNode("a2", 1, "x")
	c1 := b.AddNode("c1", 1, "y")
	c2 := b.AddNode("c2", 1, "y")
	b.AddEdge(a1, a2, 1)
	b.AddEdge(c1, c2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Graph: g, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, data := postJSON(t, ts.URL+"/v1/discover", `{"skills": ["x", "y"]}`)
	if status != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", status, data)
	}
}

func TestCacheHitDeterminism(t *testing.T) {
	s, ts := newTestServer(t, nil)
	body := `{"skills": ["matrix", "analytics"], "method": "ca-cc", "k": 3}`
	status1, data1 := postJSON(t, ts.URL+"/v1/discover", body)
	if status1 != http.StatusOK {
		t.Fatalf("first: status %d: %s", status1, data1)
	}
	// Same query with reordered, duplicated skills normalizes to the
	// same cache key.
	status2, data2 := postJSON(t, ts.URL+"/v1/discover",
		`{"skills": ["analytics", "matrix", "analytics"], "method": "ca-cc", "k": 3}`)
	if status2 != http.StatusOK {
		t.Fatalf("second: status %d: %s", status2, data2)
	}
	first, second := decodeDiscover(t, data1), decodeDiscover(t, data2)
	if first.Cached {
		t.Error("first query reported cached")
	}
	if !second.Cached {
		t.Error("repeat query not served from cache")
	}
	a, _ := json.Marshal(first.Teams)
	b, _ := json.Marshal(second.Teams)
	if !bytes.Equal(a, b) {
		t.Errorf("cached teams differ:\n%s\n%s", a, b)
	}
	if hits := s.cache.Stats().Hits; hits == 0 {
		t.Error("cache hit count is zero after a repeated identical query")
	}
}

func TestBatch(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, data := postJSON(t, ts.URL+"/v1/discover/batch", `{"requests": [
		{"skills": ["analytics", "communities"], "method": "sa-ca-cc"},
		{"skills": ["nope"]},
		{"skills": ["matrix"], "method": "cc", "k": 2}
	]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	for i, item := range out.Results {
		if item.Index != i {
			t.Errorf("result %d has index %d", i, item.Index)
		}
	}
	if out.Results[0].Status != http.StatusOK || len(out.Results[0].Response.Teams) == 0 {
		t.Errorf("item 0: %+v", out.Results[0])
	}
	if out.Results[1].Status != http.StatusBadRequest || out.Results[1].Error == "" {
		t.Errorf("item 1: %+v", out.Results[1])
	}
	if out.Results[2].Status != http.StatusOK {
		t.Errorf("item 2: %+v", out.Results[2])
	}
}

func TestBatchErrors(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for name, body := range map[string]string{
		"empty body":  "",
		"empty batch": `{"requests": []}`,
	} {
		status, data := postJSON(t, ts.URL+"/v1/discover/batch", body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, status, data)
		}
	}
}

func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" {
		t.Errorf("status %q", out.Status)
	}
	if out.Graph.Nodes != s.Graph().NumNodes() {
		t.Errorf("nodes = %d, want %d", out.Graph.Nodes, s.Graph().NumNodes())
	}
}

func TestStats(t *testing.T) {
	_, ts := newTestServer(t, nil)
	postJSON(t, ts.URL+"/v1/discover", `{"skills": ["analytics"]}`)
	postJSON(t, ts.URL+"/v1/discover", `{"skills": ["analytics"]}`)
	postJSON(t, ts.URL+"/v1/discover", `{"skills": ["analytics"], "method": "bogus"}`)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Queries != 3 {
		t.Errorf("queries = %d, want 3", out.Queries)
	}
	if out.Errors != 1 {
		t.Errorf("errors = %d, want 1", out.Errors)
	}
	if out.ByMethod["sa-ca-cc"] != 2 {
		t.Errorf("by_method = %v", out.ByMethod)
	}
	// Arbitrary client method strings must not become counter keys.
	if out.ByMethod["invalid"] != 1 || out.ByMethod["bogus"] != 0 {
		t.Errorf("by_method = %v, want invalid=1 and no raw label", out.ByMethod)
	}
	if out.Cache.Hits != 1 || out.Cache.Misses != 1 {
		t.Errorf("cache = %+v", out.Cache)
	}
	if out.Latency.Count != 2 {
		t.Errorf("latency count = %d, want 2", out.Latency.Count)
	}
}

// TestStatsSlowestTraceExemplar: /stats pairs its latency percentiles
// with the window's slowest successful discovery, including the stage
// breakdown while tracing is on (the default), and the exemplar rolls
// to the _prev slot when the sample window completes.
func TestStatsSlowestTraceExemplar(t *testing.T) {
	_, ts := newTestServer(t, nil)
	postJSON(t, ts.URL+"/v1/discover", `{"skills": ["analytics"]}`)
	postJSON(t, ts.URL+"/v1/discover", `{"skills": ["communities"]}`)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	ex := out.SlowestTrace
	if ex == nil {
		t.Fatal("no slowest-trace exemplar after successful discoveries")
	}
	if ex.Method != "sa-ca-cc" || ex.ElapsedMS < 0 {
		t.Fatalf("exemplar %+v", ex)
	}
	if ex.Trace == nil || len(ex.Trace.Spans) == 0 {
		t.Fatalf("exemplar carries no stage breakdown with tracing on: %+v", ex)
	}

	// Window roll: after latencyWindow samples the exemplar retires to
	// the previous slot and the current one restarts. Drive the metrics
	// layer directly — 4096 HTTP round trips would dwarf the test.
	m := newMetrics(obs.NewRegistry())
	m.record("sa-ca-cc", 5*time.Millisecond, false, nil)
	for i := 0; i < latencyWindow-1; i++ {
		m.record("sa-ca-cc", time.Millisecond, false, nil)
	}
	snap := m.snapshot()
	if snap.PrevSlowestTrace == nil || snap.PrevSlowestTrace.ElapsedMS != 5 {
		t.Fatalf("completed window's exemplar not retired: %+v", snap.PrevSlowestTrace)
	}
	if snap.SlowestTrace != nil {
		t.Fatalf("fresh window should start with no exemplar, got %+v", snap.SlowestTrace)
	}
	m.record("pareto", 9*time.Millisecond, false, nil)
	if snap = m.snapshot(); snap.SlowestTrace == nil || snap.SlowestTrace.Method != "pareto" {
		t.Fatalf("new window's exemplar: %+v", snap.SlowestTrace)
	}
}

func TestTimeout(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	status, data := postJSON(t, ts.URL+"/v1/discover", `{"skills": ["analytics"]}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", status, data)
	}
}

func TestIndexPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.bin")
	if err := expertgraph.SaveFile(path, builderGraph(t)); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{GraphPath: path, Workers: 2, WarmIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	indexPath := path + ".pll-g0.6"
	if _, err := os.Stat(indexPath); err != nil {
		t.Fatalf("warm index not persisted: %v", err)
	}
	_ = s
	// A second server over the same path must come up (loading, not
	// rebuilding, the persisted index) and serve queries.
	s2, err := New(Config{GraphPath: path, Workers: 2, WarmIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	status, data := postJSON(t, ts.URL+"/v1/discover", `{"skills": ["analytics", "communities"]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
}

// TestStaleIndexDetected regenerates the graph with the same node
// count but different edge weights; the persisted index must be
// rejected by the distance spot-check, not silently reused.
func TestStaleIndexDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.bin")
	if err := expertgraph.SaveFile(path, builderGraph(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{GraphPath: path, Workers: 2, WarmIndex: true}); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path + ".pll-g0.6")
	if err != nil {
		t.Fatal(err)
	}

	// Same topology, different weights → same node count, different
	// distances.
	b := expertgraph.NewBuilder(5, 6)
	alice := b.AddNode("alice", 12, "analytics")
	bob := b.AddNode("bob", 3, "matrix")
	carol := b.AddNode("carol", 7, "communities")
	dave := b.AddNode("dave", 9)
	erin := b.AddNode("erin", 5, "analytics", "matrix")
	b.AddEdge(alice, dave, 0.9)
	b.AddEdge(dave, bob, 0.8)
	b.AddEdge(dave, carol, 0.1)
	b.AddEdge(alice, erin, 0.2)
	b.AddEdge(erin, carol, 0.7)
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := expertgraph.SaveFile(path, g2); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{GraphPath: path, Workers: 2, WarmIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path + ".pll-g0.6")
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().After(before.ModTime()) && after.Size() == before.Size() {
		t.Error("stale index was not rebuilt after the graph changed")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, data := postJSON(t, ts.URL+"/v1/discover", `{"skills": ["analytics", "communities"]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
}

func TestGracefulShutdown(t *testing.T) {
	s, err := New(Config{Graph: builderGraph(t), Addr: "127.0.0.1:0", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// synthGraph builds the expgen-style synthetic expert network used by
// the concurrency test.
func synthGraph(tb testing.TB) *expertgraph.Graph {
	tb.Helper()
	corpus := dblp.Synthesize(dblp.SynthConfig{Seed: 1, Authors: 400})
	g, _, err := dblp.BuildGraph(corpus, dblp.GraphOptions{LargestComponent: true})
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// TestConcurrentDiscover drives ≥64 concurrent discovery requests
// against a synthetic graph — the acceptance load for the serving
// layer — mixing methods and repeating queries so both the compute and
// cache paths run under contention (go test -race covers the races).
func TestConcurrentDiscover(t *testing.T) {
	g := synthGraph(t)
	s, err := New(Config{Graph: g, Workers: 4, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gen, err := workload.NewGenerator(g, 7, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var bodies []string
	methods := []string{"cc", "ca-cc", "sa-ca-cc"}
	for i := 0; i < 8; i++ {
		project, err := gen.Project(2)
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, len(project))
		for j, id := range project {
			names[j] = g.SkillName(id)
		}
		payload, _ := json.Marshal(DiscoverRequest{
			Skills: names,
			Method: methods[i%len(methods)],
			K:      2,
		})
		bodies = append(bodies, string(payload))
	}

	const requests = 96
	var wg sync.WaitGroup
	errs := make(chan string, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/discover", "application/json",
				strings.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, data)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	snap := s.metrics.snapshot()
	if snap.Queries != requests {
		t.Errorf("queries = %d, want %d", snap.Queries, requests)
	}
	// The concurrent wave may race past the cache before the first
	// fill (no request coalescing), so assert the cache on a repeat
	// pass: every body has been computed at least once by now.
	for i, body := range bodies {
		status, data := postJSON(t, ts.URL+"/v1/discover", body)
		if status != http.StatusOK {
			t.Fatalf("repeat %d: status %d: %s", i, status, data)
		}
		if out := decodeDiscover(t, data); !out.Cached {
			t.Errorf("repeat %d not served from cache", i)
		}
	}
	if hits := s.cache.Stats().Hits; hits == 0 {
		t.Error("no cache hits across repeated identical queries")
	}
}
