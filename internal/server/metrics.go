package server

import (
	"sync"
	"time"

	"authteam/internal/obs"
	"authteam/internal/stats"
)

// latencyWindow bounds the per-request latency samples kept for exact
// percentile reporting in /stats. A few thousand samples give stable
// p99 estimates without unbounded growth under sustained traffic.
const latencyWindow = 4096

// metrics is the request-counting layer. The registry instruments are
// the primary surface — scraped at /metrics and re-read at /stats
// snapshot time, so the two can never disagree — while a small
// mutex-guarded ring of recent latencies is kept alongside them to
// give /stats exact (not bucket-interpolated) percentiles.
type metrics struct {
	start time.Time

	// Registry-backed counters and histograms (never nil; the server
	// always owns a registry).
	discover    *obs.CounterVec   // authteam_discover_total{method, outcome}
	mutations   *obs.CounterVec   // authteam_mutations_total{op, outcome}
	discoverLat *obs.HistogramVec // authteam_discover_seconds{method}

	// Exact-percentile sliding window for the /stats latency section.
	mu      sync.Mutex
	welford stats.Welford
	window  []float64 // ring buffer of latencies in milliseconds
	next    int
	// filled flips once the ring has wrapped: from then on the
	// percentiles describe the latest latencyWindow samples only, which
	// /stats surfaces as latency.window_full.
	filled bool

	// Exemplar traces: the slowest successful discovery of the current
	// stats window and of the previous (completed) one. The slot rolls
	// over every latencyWindow samples, in step with the percentile
	// ring, so /stats always pairs its percentiles with a concrete
	// worst request — and its pipeline breakdown, when tracing is on —
	// from the same era instead of a lifetime outlier.
	slowCur, slowPrev *SlowestTrace
}

// SlowestTrace is the exemplar surfaced in /stats: the slowest
// successful discovery of one stats window. Trace carries the stage
// breakdown when the server runs with tracing enabled, and is omitted
// otherwise.
type SlowestTrace struct {
	Method    string     `json:"method"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Trace     *TraceInfo `json:"trace,omitempty"`
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		start: time.Now(),
		discover: reg.CounterVec("authteam_discover_total",
			"Discovery requests by method and outcome.", "method", "outcome"),
		mutations: reg.CounterVec("authteam_mutations_total",
			"Graph mutation attempts by op and outcome.", "op", "outcome"),
		discoverLat: reg.HistogramVec("authteam_discover_seconds",
			"Successful discovery latency by method.", nil, "method"),
	}
}

// recordMutation folds one /v1/graph mutation attempt into the
// counters.
func (m *metrics) recordMutation(op string, failed bool) {
	if failed {
		m.mutations.With(op, "error").Inc()
		return
	}
	m.mutations.With(op, "ok").Inc()
}

// record folds one completed discovery into the counters. Failed
// requests count toward total and errors but not toward latency (or
// the exemplar slot), so fast validation rejections do not drag the
// percentiles down. tr may be nil (failure paths, tracing off); when
// the request is this window's slowest, its breakdown is kept as the
// exemplar.
func (m *metrics) record(method string, elapsed time.Duration, failed bool, tr *obs.Trace) {
	if failed {
		m.discover.With(method, "error").Inc()
		return
	}
	m.discover.With(method, "ok").Inc()
	m.discoverLat.With(method).Observe(elapsed.Seconds())

	ms := float64(elapsed) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.welford.Add(ms)
	if m.slowCur == nil || ms > m.slowCur.ElapsedMS {
		m.slowCur = &SlowestTrace{Method: method, ElapsedMS: ms, Trace: traceInfo(tr)}
	}
	if len(m.window) < latencyWindow {
		m.window = append(m.window, ms)
		if len(m.window) == latencyWindow {
			m.rollWindow()
		}
		return
	}
	m.window[m.next] = ms
	m.next = (m.next + 1) % latencyWindow
	m.filled = true
	if m.next == 0 {
		m.rollWindow()
	}
}

// rollWindow retires the current exemplar window (called with mu held,
// every latencyWindow samples): the finished window's slowest becomes
// the previous exemplar and the slot restarts empty.
func (m *metrics) rollWindow() {
	m.slowPrev, m.slowCur = m.slowCur, nil
}

// LatencyStats is the latency section of the /stats payload, in
// milliseconds over the sliding sample window (mean is lifetime).
type LatencyStats struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	// Window is how many samples currently back the percentiles;
	// WindowFull reports ring saturation — once true, the percentiles
	// describe only the most recent Window samples, not the lifetime.
	Window     int  `json:"window"`
	WindowFull bool `json:"window_full"`
}

// MetricsSnapshot is the query-counter section of the /stats payload.
type MetricsSnapshot struct {
	UptimeSeconds  float64           `json:"uptime_seconds"`
	Queries        uint64            `json:"queries"`
	Errors         uint64            `json:"errors"`
	ByMethod       map[string]uint64 `json:"by_method"`
	Mutations      uint64            `json:"mutations"`
	MutationErrors uint64            `json:"mutation_errors"`
	ByOp           map[string]uint64 `json:"by_op"`
	Latency        LatencyStats      `json:"latency"`
	// SlowestTrace is the slowest successful discovery of the current
	// stats window (the same window backing Latency's percentiles);
	// PrevSlowestTrace is the completed window before it, so a scrape
	// right after a window roll still sees a mature exemplar.
	SlowestTrace     *SlowestTrace `json:"slowest_trace,omitempty"`
	PrevSlowestTrace *SlowestTrace `json:"slowest_trace_prev,omitempty"`
}

// snapshot re-derives the /stats counter section from the registry
// instruments — the registry is the single source of truth — and
// computes the exact window percentiles with one sort.
func (m *metrics) snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		ByMethod:      make(map[string]uint64),
		ByOp:          make(map[string]uint64),
	}
	m.discover.Each(func(values []string, n uint64) {
		method, outcome := values[0], values[1]
		snap.Queries += n
		if outcome == "error" {
			snap.Errors += n
		}
		if method != "" {
			snap.ByMethod[method] += n
		}
	})
	m.mutations.Each(func(values []string, n uint64) {
		op, outcome := values[0], values[1]
		if outcome == "error" {
			snap.MutationErrors += n
			return
		}
		snap.Mutations += n
		snap.ByOp[op] += n
	})

	m.mu.Lock()
	defer m.mu.Unlock()
	snap.Latency.Count = m.welford.N()
	snap.Latency.MeanMS = m.welford.Mean()
	snap.Latency.Window = len(m.window)
	snap.Latency.WindowFull = m.filled
	if len(m.window) > 0 {
		ps := stats.Percentiles(m.window, 50, 90, 99)
		snap.Latency.P50MS, snap.Latency.P90MS, snap.Latency.P99MS = ps[0], ps[1], ps[2]
	}
	snap.SlowestTrace = m.slowCur
	snap.PrevSlowestTrace = m.slowPrev
	return snap
}
