package server

import (
	"sync"
	"time"

	"authteam/internal/stats"
)

// latencyWindow bounds the per-request latency samples kept for
// percentile reporting. A few thousand samples give stable p99
// estimates without unbounded growth under sustained traffic.
const latencyWindow = 4096

// metrics accumulates request counters and a sliding window of
// latencies. All methods are safe for concurrent use.
type metrics struct {
	mu       sync.Mutex
	start    time.Time
	total    uint64
	errors   uint64
	byMethod map[string]uint64
	welford  stats.Welford
	window   []float64 // ring buffer of latencies in milliseconds
	next     int
	filled   bool

	// Live-mutation counters, keyed by op (add_node, add_edge,
	// update_node). Rejected mutations count toward mutationErrs only.
	mutations    uint64
	mutationErrs uint64
	byOp         map[string]uint64
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		byMethod: make(map[string]uint64),
		byOp:     make(map[string]uint64),
	}
}

// recordMutation folds one /v1/graph mutation attempt into the
// counters.
func (m *metrics) recordMutation(op string, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if failed {
		m.mutationErrs++
		return
	}
	m.mutations++
	m.byOp[op]++
}

// record folds one completed discovery into the counters. Failed
// requests count toward total and errors but not toward latency, so
// fast validation rejections do not drag the percentiles down.
func (m *metrics) record(method string, elapsed time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total++
	if method != "" {
		m.byMethod[method]++
	}
	if failed {
		m.errors++
		return
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	m.welford.Add(ms)
	if len(m.window) < latencyWindow {
		m.window = append(m.window, ms)
		return
	}
	m.window[m.next] = ms
	m.next = (m.next + 1) % latencyWindow
	m.filled = true
}

// LatencyStats is the latency section of the /stats payload, in
// milliseconds over the sliding sample window (mean is lifetime).
type LatencyStats struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// MetricsSnapshot is the query-counter section of the /stats payload.
type MetricsSnapshot struct {
	UptimeSeconds  float64           `json:"uptime_seconds"`
	Queries        uint64            `json:"queries"`
	Errors         uint64            `json:"errors"`
	ByMethod       map[string]uint64 `json:"by_method"`
	Mutations      uint64            `json:"mutations"`
	MutationErrors uint64            `json:"mutation_errors"`
	ByOp           map[string]uint64 `json:"by_op"`
	Latency        LatencyStats      `json:"latency"`
}

func (m *metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MetricsSnapshot{
		UptimeSeconds:  time.Since(m.start).Seconds(),
		Queries:        m.total,
		Errors:         m.errors,
		ByMethod:       make(map[string]uint64, len(m.byMethod)),
		Mutations:      m.mutations,
		MutationErrors: m.mutationErrs,
		ByOp:           make(map[string]uint64, len(m.byOp)),
	}
	for k, v := range m.byMethod {
		snap.ByMethod[k] = v
	}
	for k, v := range m.byOp {
		snap.ByOp[k] = v
	}
	snap.Latency.Count = m.welford.N()
	snap.Latency.MeanMS = m.welford.Mean()
	if len(m.window) > 0 {
		snap.Latency.P50MS = stats.Percentile(m.window, 50)
		snap.Latency.P90MS = stats.Percentile(m.window, 90)
		snap.Latency.P99MS = stats.Percentile(m.window, 99)
	}
	return snap
}
