package server

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"authteam/internal/dblp"
	"authteam/internal/expertgraph"
)

// TestConcurrentQueriesDuringParallelRebuild is the race soak for the
// sharded index build: discover traffic keeps hammering the server
// while out-of-bounds edge insertions force full async rebuilds that
// run with Workers = 4, so the race shard sees real concurrent readers
// (overlay views, Dijkstra fallback, cache) alongside the parallel
// build workers for the build's whole lifetime.
func TestConcurrentQueriesDuringParallelRebuild(t *testing.T) {
	c := dblp.Synthesize(dblp.SynthConfig{Seed: 5, Authors: 400})
	g, _, err := dblp.BuildGraph(c, dblp.GraphOptions{LargestComponent: true})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.Graph = g
		cfg.Workers = 4
		cfg.WarmIndex = true
	})
	warm := s.indexes.stats().rebuilds

	// A query the corpus can always answer: the first two skills of
	// node 0 (it holds them, so every epoch has holders).
	var names []string
	for _, sk := range g.Skills(0) {
		names = append(names, `"`+g.SkillName(sk)+`"`)
		if len(names) == 2 {
			break
		}
	}
	body := `{"skills": [` + strings.Join(names, ", ") + `], "method": "sa-ca-cc", "k": 2}`

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Post(ts.URL+"/v1/discover", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("discover during rebuild: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("discover during rebuild: status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	// Rebuild storm: each insertion's weight lies far outside the
	// covering bounds, expanding them — the one delta class repair
	// cannot absorb — so the next discover kicks an async parallel
	// rebuild while the query goroutines keep reading.
	n := expertgraph.NodeID(g.NumNodes())
	added := 0
	for i := 0; added < 5 && int(i) < g.NumNodes()-60; i++ {
		u, v := expertgraph.NodeID(i), expertgraph.NodeID(i)+57
		if v >= n {
			break
		}
		if _, err := s.Store().AddCollaboration(u, v, 10.0+float64(added)); err != nil {
			continue // edge already present; try the next pair
		}
		added++
		time.Sleep(30 * time.Millisecond)
	}
	if added == 0 {
		t.Fatal("no out-of-bounds edge could be inserted")
	}
	close(stop)
	wg.Wait()

	// Drain in-flight rebuilds, then confirm the soak exercised them.
	deadline := time.Now().Add(10 * time.Second)
	for s.indexes.stats().pending && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	ixs := s.indexes.stats()
	if ixs.pending {
		t.Fatal("async rebuild still pending after drain deadline")
	}
	if ixs.rebuilds == warm {
		t.Errorf("no rebuilds triggered (still %d); the soak exercised nothing", warm)
	}
}
