package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
)

// TestReplicationRelayDepth2 wires a two-tier replication tree — a
// second-level follower tails a first-level follower, not the leader —
// and drives a write stream through a leader fold. The journal
// endpoints are served by every node precisely so fan-out trees work;
// this pins that the relayed stream is the same stream: both tiers
// must converge to the leader's epoch and answer discover queries
// byte-identically, including across the fold's base re-anchor.
func TestReplicationRelayDepth2(t *testing.T) {
	dir := t.TempDir()
	ls, lts := newTestServer(t, func(cfg *Config) {
		cfg.JournalPath = filepath.Join(dir, "leader.wal")
	})

	// Seed churn so both tiers bootstrap from a non-trivial stream.
	rng := rand.New(rand.NewSource(90))
	churn := func(n int, tag string) {
		for i := 0; i < n; i++ {
			var status int
			var data []byte
			if rng.Intn(3) == 0 {
				status, data = postJSON(t, lts.URL+"/v1/graph/nodes",
					fmt.Sprintf(`{"name": "%s%d", "authority": %d, "skills": ["s%d"]}`,
						tag, i, 1+rng.Intn(20), rng.Intn(6)))
			} else {
				status, data = postJSON(t, lts.URL+"/v1/graph/edges",
					fmt.Sprintf(`{"u": %d, "v": %d, "w": %.2f}`,
						rng.Intn(8), rng.Intn(8), 0.1+0.8*rng.Float64()))
			}
			// Duplicate edges and self-loops are rejected harmlessly;
			// server errors are not.
			if status >= 500 {
				t.Fatalf("churn write: %d: %s", status, data)
			}
		}
	}
	churn(20, "a")

	// Tier 1 follows the leader; tier 2 follows tier 1 and never talks
	// to the leader at all.
	f1, f1ts := newFollowerServer(t, lts.URL, ls.store.Epoch(), nil)
	defer f1.Close()
	f2, f2ts := newFollowerServer(t, f1ts.URL, f1.store.Epoch(), nil)
	defer f2.Close()

	// Mid-stream: churn, fold the leader's journal, churn again. The
	// relay keeps serving from tier 1's own log, so tier 2 must ride
	// straight across the leader's re-base.
	churn(20, "b")
	if _, err := ls.store.Compact(); err != nil {
		t.Fatal(err)
	}
	churn(20, "c")

	waitServerEpoch(t, f1, ls.store.Epoch())
	waitServerEpoch(t, f2, ls.store.Epoch())

	leaderAns, _ := json.Marshal(discoverAt(t, lts.URL))
	tier1Ans, _ := json.Marshal(discoverAt(t, f1ts.URL))
	tier2Ans, _ := json.Marshal(discoverAt(t, f2ts.URL))
	if string(leaderAns) != string(tier1Ans) {
		t.Fatalf("tier-1 diverged:\nleader %s\ntier1  %s", leaderAns, tier1Ans)
	}
	if string(leaderAns) != string(tier2Ans) {
		t.Fatalf("tier-2 diverged across the relay:\nleader %s\ntier2  %s", leaderAns, tier2Ans)
	}

	// Read-your-writes through the relay: a fresh leader write's epoch,
	// echoed as the min-epoch gate on the second tier, must be honored.
	status, data := postJSON(t, lts.URL+"/v1/graph/nodes",
		`{"name": "relayed", "authority": 7, "skills": ["analytics"]}`)
	if status != http.StatusCreated {
		t.Fatalf("gate write: %d: %s", status, data)
	}
	var mr MutationResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", f2ts.URL+"/v1/discover", strings.NewReader(discoverBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Authteam-Min-Epoch", fmt.Sprint(mr.Epoch))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out DiscoverResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || out.Epoch < mr.Epoch {
		t.Fatalf("gated relay read: status %d at epoch %d, want 200 at ≥ %d",
			resp.StatusCode, out.Epoch, mr.Epoch)
	}

	// The topology must be what the test claims: tier 2 followed tier 1
	// (not the leader), and tier 1 actually served the relayed stream.
	f2st := getStats(t, f2ts.URL)
	if f2st.Replication.Role != "follower" || f2st.Replication.Leader != f1ts.URL {
		t.Fatalf("tier-2 replication section: %+v", f2st.Replication)
	}
	if f2st.Replication.Follower == nil || f2st.Replication.Follower.Applied == 0 {
		t.Fatalf("tier-2 applied nothing through the relay: %+v", f2st.Replication)
	}
	f1st := getStats(t, f1ts.URL)
	if f1st.Replication.TailRequests == 0 {
		t.Fatal("tier-1 served no tail requests — tier 2 bypassed the relay?")
	}

	// Final convergence check after the gate write drained everywhere.
	waitServerEpoch(t, f1, ls.store.Epoch())
	waitServerEpoch(t, f2, ls.store.Epoch())
	leaderAns, _ = json.Marshal(discoverAt(t, lts.URL))
	tier2Ans, _ = json.Marshal(discoverAt(t, f2ts.URL))
	if string(leaderAns) != string(tier2Ans) {
		t.Fatalf("post-gate divergence:\nleader %s\ntier2  %s", leaderAns, tier2Ans)
	}
}
