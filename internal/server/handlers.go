package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"authteam/internal/core"
	"authteam/internal/expertgraph"
	"authteam/internal/live"
	"authteam/internal/obs"
	"authteam/internal/oracle"
	"authteam/internal/repl"
	"authteam/internal/team"
	"authteam/internal/transform"
)

// defaultMethod is the strategy applied when a request omits "method":
// SA-CA-CC, the paper's headline objective.
const defaultMethod = core.SACACC

// maxBatchSize bounds one batch request; larger sweeps should be
// split client-side so a single call cannot monopolize the daemon.
const maxBatchSize = 1024

// maxK and maxTrials bound per-request work. Unbounded values are a
// denial-of-service vector: a huge k panics the top-k allocation in an
// unrecovered worker goroutine (killing the process), and a huge
// trials count pins a core long after the request has timed out.
const (
	maxK      = 100
	maxTrials = 1_000_000
)

// DiscoverRequest is the body of POST /v1/discover and one element of
// a batch. Omitted gamma/lambda fall back to the server defaults;
// omitted k means 1; trials and seed apply to the random baseline only.
type DiscoverRequest struct {
	Skills []string `json:"skills"`
	Method string   `json:"method,omitempty"` // cc | ca-cc | sa-ca-cc | random | exact | pareto
	Gamma  *float64 `json:"gamma,omitempty"`
	Lambda *float64 `json:"lambda,omitempty"`
	K      int      `json:"k,omitempty"`
	Trials int      `json:"trials,omitempty"`
	Seed   *int64   `json:"seed,omitempty"`
}

// MemberResult is one expert of a discovered team. Skills lists the
// project skills assigned to the member; connectors have none.
type MemberResult struct {
	Name      string   `json:"name"`
	Authority float64  `json:"authority"`
	Pubs      int      `json:"pubs"`
	Skills    []string `json:"skills,omitempty"`
}

// ScoreResult carries every objective of the paper evaluated on one
// team under the request's (γ, λ), on normalized scales.
type ScoreResult struct {
	CC     float64 `json:"cc"`
	CA     float64 `json:"ca"`
	SA     float64 `json:"sa"`
	CACC   float64 `json:"ca_cc"`
	SACACC float64 `json:"sa_ca_cc"`
}

// TeamResult is one discovered team.
type TeamResult struct {
	Root    string         `json:"root"`
	Size    int            `json:"size"`
	Members []MemberResult `json:"members"`
	Scores  ScoreResult    `json:"scores"`
}

// ParetoResult is one non-dominated team with its raw objective
// vector and the grid point that surfaced it.
type ParetoResult struct {
	CC     float64    `json:"cc"`
	CA     float64    `json:"ca"`
	SA     float64    `json:"sa"`
	Gamma  float64    `json:"gamma"`
	Lambda float64    `json:"lambda"`
	Team   TeamResult `json:"team"`
}

// DiscoverResponse is the reply to one discovery request. Exactly one
// of Teams and Pareto is populated, depending on the method. Epoch is
// the graph epoch the answer was computed against — mutations advance
// it, and a response (cached or not) always belongs to exactly one
// epoch.
type DiscoverResponse struct {
	Method    string         `json:"method"`
	Skills    []string       `json:"skills"`
	Gamma     float64        `json:"gamma"`
	Lambda    float64        `json:"lambda"`
	K         int            `json:"k"`
	Epoch     uint64         `json:"epoch"`
	Teams     []TeamResult   `json:"teams,omitempty"`
	Pareto    []ParetoResult `json:"pareto,omitempty"`
	Cached    bool           `json:"cached"`
	ElapsedMS float64        `json:"elapsed_ms"`
	// Trace is the per-stage timing breakdown, populated only when the
	// request asked for it with ?debug=trace (and tracing is enabled).
	Trace *TraceInfo `json:"trace,omitempty"`
}

// TraceSpan is one pipeline stage of a traced discovery.
type TraceSpan struct {
	Stage string  `json:"stage"`
	MS    float64 `json:"ms"`
}

// TraceInfo is the ?debug=trace section of a response. The spans
// partition the request's wall time, so their durations sum to
// TotalMS by construction.
type TraceInfo struct {
	TotalMS float64     `json:"total_ms"`
	Spans   []TraceSpan `json:"spans"`
}

// traceInfo converts a completed trace for the response payload; nil
// in, nil out.
func traceInfo(tr *obs.Trace) *TraceInfo {
	if tr == nil {
		return nil
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		return nil
	}
	info := &TraceInfo{TotalMS: float64(tr.Total()) / float64(time.Millisecond)}
	for _, sp := range spans {
		info.Spans = append(info.Spans, TraceSpan{
			Stage: sp.Stage,
			MS:    float64(sp.Dur) / float64(time.Millisecond),
		})
	}
	return info
}

// BatchRequest is the body of POST /v1/discover/batch.
type BatchRequest struct {
	Requests []DiscoverRequest `json:"requests"`
}

// BatchItem is the outcome of one batch element, at the same index as
// its request. Failed elements carry Error and a zero Response.
type BatchItem struct {
	Index    int               `json:"index"`
	Status   int               `json:"status"`
	Error    string            `json:"error,omitempty"`
	Response *DiscoverResponse `json:"response,omitempty"`
}

// BatchResponse is the reply to a batch request.
type BatchResponse struct {
	Results   []BatchItem `json:"results"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

// errorResponse is the body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// httpError pairs a client-facing message with its status code. A
// non-empty location rides along as a Location header (redirects to
// the leader).
type httpError struct {
	status   int
	msg      string
	location string
	// term, when non-nil, is emitted as the X-Authteam-Term header so a
	// fenced (412) reply tells the peer which term rejected it.
	term *uint64
}

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// query is a normalized, validated discovery request: skills resolved
// and deduplicated, defaults applied. Two requests that normalize to
// the same query share one cache entry.
type query struct {
	methodName string
	method     core.Method
	project    []expertgraph.SkillID
	names      []string // skill names in project (SkillID) order
	gamma      float64
	lambda     float64
	k          int
	trials     int
	seed       int64
}

// normalize validates req against the view's graph and the server
// defaults.
func (s *Server) normalize(v view, req *DiscoverRequest) (*query, *httpError) {
	if len(req.Skills) == 0 {
		return nil, errf(http.StatusBadRequest, "missing skills")
	}
	seen := make(map[expertgraph.SkillID]bool, len(req.Skills))
	q := &query{
		gamma:  s.gamma,
		lambda: s.lambda,
		k:      1,
		trials: core.DefaultRandomTrials,
		seed:   1,
	}
	for _, name := range req.Skills {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, errf(http.StatusBadRequest, "empty skill name")
		}
		id, ok := v.g.SkillID(name)
		if !ok {
			return nil, errf(http.StatusBadRequest, "unknown skill %q", name)
		}
		if !seen[id] {
			seen[id] = true
			q.project = append(q.project, id)
		}
	}
	sort.Slice(q.project, func(i, j int) bool { return q.project[i] < q.project[j] })
	for _, id := range q.project {
		q.names = append(q.names, v.g.SkillName(id))
	}

	q.methodName = req.Method
	if q.methodName == "" {
		q.methodName = "sa-ca-cc"
	}
	switch q.methodName {
	case "cc":
		q.method = core.CC
	case "ca-cc":
		q.method = core.CACC
	case "sa-ca-cc":
		q.method = core.SACACC
	case "random", "exact", "pareto":
	default:
		return nil, errf(http.StatusBadRequest, "unknown method %q", q.methodName)
	}

	if req.Gamma != nil {
		q.gamma = *req.Gamma
	}
	if req.Lambda != nil {
		q.lambda = *req.Lambda
	}
	if q.gamma < 0 || q.gamma > 1 {
		return nil, errf(http.StatusBadRequest, "gamma %v out of [0,1]", q.gamma)
	}
	if q.lambda < 0 || q.lambda > 1 {
		return nil, errf(http.StatusBadRequest, "lambda %v out of [0,1]", q.lambda)
	}
	if req.K < 0 || req.K > maxK {
		return nil, errf(http.StatusBadRequest, "k must be in 1..%d", maxK)
	}
	if req.K > 0 {
		q.k = req.K
	}
	if req.Trials < 0 || req.Trials > maxTrials {
		return nil, errf(http.StatusBadRequest, "trials must be in 1..%d", maxTrials)
	}
	if req.Trials > 0 {
		q.trials = req.Trials
	}
	if req.Seed != nil {
		q.seed = *req.Seed
	}
	return q, nil
}

// cacheKey canonically encodes the parameters the normalized query's
// method actually reads — pareto sweeps its own grid (γ, λ and k are
// ignored), and random/exact return a single team (k is ignored) — so
// requests differing only in ignored fields share one entry. Every
// method is deterministic given this key (random is seeded), so equal
// keys imply equal responses.
func (q *query) cacheKey() string {
	var b strings.Builder
	switch q.methodName {
	case "pareto":
		b.WriteString("pareto")
	case "random":
		fmt.Fprintf(&b, "random|g%.9g|l%.9g|t%d|s%d", q.gamma, q.lambda, q.trials, q.seed)
	case "exact":
		fmt.Fprintf(&b, "exact|g%.9g|l%.9g", q.gamma, q.lambda)
	default:
		fmt.Fprintf(&b, "%s|g%.9g|l%.9g|k%d", q.methodName, q.gamma, q.lambda, q.k)
	}
	for _, id := range q.project {
		fmt.Fprintf(&b, "|%d", id)
	}
	return b.String()
}

// discoverOne runs the full request pipeline — normalize, cache
// lookup, timed compute, metrics — and is shared by the single and
// batch endpoints. scanWorkers is the root-scan parallelism granted
// to this one discovery. The returned trace (nil with observation
// off) partitions the request into pipeline stages; it is complete
// only on success — a timed-out computation keeps lapping it in the
// abandoned worker, so error paths must not read it.
func (s *Server) discoverOne(ctx context.Context, req *DiscoverRequest, scanWorkers int) (*DiscoverResponse, *obs.Trace, *httpError) {
	var tr *obs.Trace
	if s.observe {
		tr = obs.NewTrace()
	}
	// Resolve the epoch once; the whole request — skill resolution,
	// cache key, search, scoring — runs against this one snapshot.
	v := s.view()
	q, herr := s.normalize(v, req)
	if herr != nil {
		s.metrics.record(methodLabel(req.Method), 0, true, nil)
		return nil, nil, herr
	}
	tr.Lap("resolve")
	start := time.Now()
	// Epoch-keyed cache entries: a mutation advances the epoch and
	// thereby orphans every cached result of the old epoch, so a
	// discover answer is never served from a dead epoch (the orphans
	// age out of the LRU).
	key := fmt.Sprintf("e%d|%s", v.epoch(), q.cacheKey())
	// Singleflight: concurrent identical cache misses elect one leader
	// whose worker computes and fills the cache; the rest wait on the
	// leader's latch (bounded by their context and the request
	// timeout) and then re-read the cache. With caching disabled there
	// is nowhere for waiters to read a result from, so every request
	// computes independently.
	var latch chan struct{}
	for s.cache.Enabled() {
		if hit, ok := s.cache.Get(key); ok {
			resp := *hit // shallow copy; Teams/Pareto stay shared and immutable
			resp.Cached = true
			resp.ElapsedMS = msSince(start)
			// Re-echo the request's own parameters: the cached entry
			// may come from a request differing in fields its method
			// ignores (e.g. pareto's γ/λ/k).
			resp.Gamma, resp.Lambda, resp.K = q.gamma, q.lambda, q.k
			tr.Lap("cache")
			s.metrics.record(q.methodName, time.Since(start), false, tr)
			s.logSlow(q, time.Since(start), true, v.epoch(), tr)
			return &resp, tr, nil
		}
		s.flightMu.Lock()
		inflight, waiting := s.flights[key]
		if !waiting {
			latch = make(chan struct{})
			s.flights[key] = latch
			s.flightMu.Unlock()
			break // leader: compute below
		}
		s.flightMu.Unlock()
		select {
		case <-inflight:
			// Leader's worker finished (filling the cache on success);
			// loop to re-read.
		case <-ctx.Done():
			s.metrics.record(q.methodName, time.Since(start), true, nil)
			return nil, nil, errf(http.StatusGatewayTimeout, "request cancelled")
		case <-time.After(s.cfg.RequestTimeout):
			s.metrics.record(q.methodName, time.Since(start), true, nil)
			return nil, nil, errf(http.StatusGatewayTimeout,
				"discovery exceeded the %v request timeout", s.cfg.RequestTimeout)
		}
	}
	release := func() {}
	if latch != nil {
		release = func() {
			s.flightMu.Lock()
			delete(s.flights, key)
			s.flightMu.Unlock()
			close(latch)
		}
	}
	resp, herr := s.computeWithTimeout(ctx, v, q, key, scanWorkers, release, tr)
	if herr != nil {
		s.metrics.record(q.methodName, time.Since(start), true, nil)
		return nil, nil, herr
	}
	s.metrics.record(q.methodName, time.Since(start), false, tr)
	s.logSlow(q, time.Since(start), false, v.epoch(), tr)
	return resp, tr, nil
}

// logSlow emits one structured log line for a discovery slower than
// Config.SlowQueryThreshold, rate-limited to at most one per second
// so a pathological workload cannot flood the log. The span breakdown
// rides along when tracing is on.
func (s *Server) logSlow(q *query, elapsed time.Duration, cached bool, epoch uint64, tr *obs.Trace) {
	if s.cfg.SlowQueryThreshold <= 0 || elapsed < s.cfg.SlowQueryThreshold {
		return
	}
	now := time.Now().UnixNano()
	last := s.slowLogNS.Load()
	if now-last < int64(time.Second) || !s.slowLogNS.CompareAndSwap(last, now) {
		return
	}
	slog.Warn("server: slow discovery",
		"method", q.methodName,
		"skills", q.names,
		"elapsed_ms", float64(elapsed)/float64(time.Millisecond),
		"epoch", epoch,
		"cached", cached,
		"spans", tr.Header())
}

// computeWithTimeout bounds one discovery computation by the server's
// request timeout (and the caller's context). The search itself has no
// cancellation points, so on timeout the worker goroutine is abandoned
// — but it still fills the result cache when it eventually finishes,
// so a client retrying a slow query converges on a hit instead of
// recomputing forever. The worker finalizes the response (ElapsedMS,
// cache fill) before publishing it; afterwards the response is
// immutable.
func (s *Server) computeWithTimeout(ctx context.Context, v view, q *query, key string, scanWorkers int, release func(), tr *obs.Trace) (*DiscoverResponse, *httpError) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	type outcome struct {
		resp *DiscoverResponse
		herr *httpError
	}
	ch := make(chan outcome, 1)
	go func() {
		defer release() // after the cache fill, so waiters re-read a hit
		start := time.Now()
		resp, herr := s.compute(v, q, scanWorkers, tr)
		if herr == nil {
			resp.ElapsedMS = msSince(start)
			s.cache.Put(key, v.epoch(), resp)
		}
		ch <- outcome{resp, herr}
	}()
	select {
	case out := <-ch:
		return out.resp, out.herr
	case <-ctx.Done():
		return nil, errf(http.StatusGatewayTimeout,
			"discovery exceeded the %v request timeout", s.cfg.RequestTimeout)
	}
}

// compute runs the selected discovery method against the view's graph
// and indexes, lapping tr at each pipeline stage.
func (s *Server) compute(v view, q *query, scanWorkers int, tr *obs.Trace) (*DiscoverResponse, *httpError) {
	p, err := s.paramsFor(v, q.gamma, q.lambda)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	tr.Lap("fit")
	resp := &DiscoverResponse{
		Method: q.methodName,
		Skills: q.names,
		Gamma:  q.gamma,
		Lambda: q.lambda,
		K:      q.k,
		Epoch:  v.epoch(),
	}
	switch q.methodName {
	case "random":
		tm, err := core.Random(p, q.project, q.trials, rand.New(rand.NewSource(q.seed)))
		if err != nil {
			return nil, discoveryError(err)
		}
		tr.Lap("search")
		resp.Teams = []TeamResult{s.teamResult(v.g, tm, p)}
		tr.Lap("score")
	case "exact":
		tm, err := core.Exact(p, q.project, core.ExactOptions{})
		if err != nil {
			return nil, discoveryError(err)
		}
		tr.Lap("search")
		resp.Teams = []TeamResult{s.teamResult(v.g, tm, p)}
		tr.Lap("score")
	case "pareto":
		front, err := core.ParetoFront(v.g, q.project, core.ParetoOptions{
			// Route the sweep's per-γ indexes through the server's
			// resident set so repeated pareto queries amortize the
			// builds like every other method. A nil oracle (index not
			// yet current at this epoch) falls back to per-root
			// Dijkstra inside the sweep.
			IndexFor: func(p *transform.Params, m core.Method) oracle.Oracle {
				return s.indexes.forMethod(v, p, m)
			},
		})
		if err != nil {
			return nil, discoveryError(err)
		}
		tr.Lap("search")
		for _, f := range front {
			fp, err := s.paramsFor(v, f.Gamma, f.Lambda)
			if err != nil {
				return nil, errf(http.StatusInternalServerError, "%v", err)
			}
			resp.Pareto = append(resp.Pareto, ParetoResult{
				CC: f.CC, CA: f.CA, SA: f.SA,
				Gamma: f.Gamma, Lambda: f.Lambda,
				Team: s.teamResult(v.g, f.Team, fp),
			})
		}
		tr.Lap("score")
	default: // cc | ca-cc | sa-ca-cc
		// A nil oracle means no index is current at this epoch (a
		// rebuild is in flight); TopKParallel then runs exact per-root
		// Dijkstra — slower, but never a dead epoch's distances.
		dist := s.indexes.forMethod(v, p, q.method)
		tr.Lap("index")
		teams, err := core.TopKParallelStaged(p, q.method, q.project, q.k, scanWorkers, dist, tr.Lap)
		if err != nil {
			return nil, discoveryError(err)
		}
		for _, tm := range teams {
			resp.Teams = append(resp.Teams, s.teamResult(v.g, tm, p))
		}
		tr.Lap("score")
	}
	return resp, nil
}

// methodLabel sanitizes a client-supplied method string for the
// per-method metrics counters: unknown strings collapse to one label
// so arbitrary input cannot grow the counter map without bound.
func methodLabel(m string) string {
	switch m {
	case "":
		return "sa-ca-cc"
	case "cc", "ca-cc", "sa-ca-cc", "random", "exact", "pareto":
		return m
	default:
		return "invalid"
	}
}

// discoveryError maps library errors to HTTP statuses: an infeasible
// project is the client's data condition (404), anything else a server
// fault (500).
func discoveryError(err error) *httpError {
	if errors.Is(err, core.ErrNoTeam) || errors.Is(err, core.ErrNoExpert) {
		return errf(http.StatusNotFound, "%v", err)
	}
	return errf(http.StatusInternalServerError, "%v", err)
}

// teamResult serializes one team with member roles and all objective
// scores under p, reading node records from the graph the team was
// discovered on.
func (s *Server) teamResult(g expertgraph.GraphView, tm *team.Team, p *transform.Params) TeamResult {
	roles := make(map[expertgraph.NodeID][]string, len(tm.Assignment))
	for sid, holder := range tm.Assignment {
		roles[holder] = append(roles[holder], g.SkillName(sid))
	}
	for _, r := range roles {
		sort.Strings(r)
	}
	out := TeamResult{
		Root:    g.Name(tm.Root),
		Size:    tm.Size(),
		Members: make([]MemberResult, 0, len(tm.Nodes)),
	}
	for _, u := range tm.Nodes {
		out.Members = append(out.Members, MemberResult{
			Name:      g.Name(u),
			Authority: g.Authority(u),
			Pubs:      g.Pubs(u),
			Skills:    roles[u],
		})
	}
	sc := team.Evaluate(tm, p)
	out.Scores = ScoreResult{CC: sc.CC, CA: sc.CA, SA: sc.SA, CACC: sc.CACC, SACACC: sc.SACACC}
	return out
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req DiscoverRequest
	if herr := decodeBody(r, &req); herr != nil {
		writeError(w, herr)
		return
	}
	// Read-your-writes: a client echoing the epoch of its last write
	// must never observe an older view, even on a lagging replica.
	if herr := s.ensureMinEpoch(r); herr != nil {
		writeError(w, herr)
		return
	}
	resp, tr, herr := s.discoverOne(r.Context(), &req, s.cfg.Workers)
	if herr != nil {
		writeError(w, herr)
		return
	}
	if tr != nil {
		if h := tr.Header(); h != "" {
			w.Header().Set("X-Authteam-Trace", h)
		}
		if r.URL.Query().Get("debug") == "trace" {
			// Shallow-copy before attaching: the response may be the
			// shared cached object, which must stay immutable.
			cp := *resp
			cp.Trace = traceInfo(tr)
			resp = &cp
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if herr := decodeBody(r, &req); herr != nil {
		writeError(w, herr)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, errf(http.StatusBadRequest, "empty batch"))
		return
	}
	if len(req.Requests) > maxBatchSize {
		writeError(w, errf(http.StatusBadRequest,
			"batch of %d exceeds the %d-request limit", len(req.Requests), maxBatchSize))
		return
	}
	if herr := s.ensureMinEpoch(r); herr != nil {
		writeError(w, herr)
		return
	}
	start := time.Now()
	debugTrace := r.URL.Query().Get("debug") == "trace"
	results := make([]BatchItem, len(req.Requests))
	// Split the worker budget between batch fan-out and each item's
	// root scan, so one batch cannot oversubscribe the CPU with up to
	// Workers² goroutines.
	fanout := min(len(req.Requests), s.cfg.Workers)
	scanWorkers := max(1, s.cfg.Workers/fanout)
	sem := make(chan struct{}, fanout)
	var wg sync.WaitGroup
	for i := range req.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp, tr, herr := s.discoverOne(r.Context(), &req.Requests[i], scanWorkers)
			if herr == nil && debugTrace && tr != nil {
				cp := *resp // cached responses are shared; never mutate them
				cp.Trace = traceInfo(tr)
				resp = &cp
			}
			item := BatchItem{Index: i, Status: http.StatusOK, Response: resp}
			if herr != nil {
				item.Status, item.Error, item.Response = herr.status, herr.msg, nil
			}
			results[i] = item
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{
		Results:   results,
		ElapsedMS: msSince(start),
	})
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Epoch         uint64  `json:"epoch"`
	Graph         struct {
		Nodes  int `json:"nodes"`
		Edges  int `json:"edges"`
		Skills int `json:"skills"`
	} `json:"graph"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := s.view()
	resp := HealthResponse{Status: "ok", Epoch: v.epoch()}
	resp.UptimeSeconds = time.Since(s.metrics.start).Seconds()
	resp.Graph.Nodes = v.g.NumNodes()
	resp.Graph.Edges = v.g.NumEdges()
	resp.Graph.Skills = v.g.NumSkills()
	writeJSON(w, http.StatusOK, resp)
}

// LiveStats is the live-mutation section of the /stats payload.
type LiveStats struct {
	Epoch uint64 `json:"epoch"`
	// BaseEpoch is the epoch of the store's in-memory base graph (> 0
	// after a compacted base was adopted at boot or a fold re-based the
	// store while serving); Epoch−BaseEpoch bounds the next restart's
	// journal replay.
	BaseEpoch      uint64 `json:"base_epoch"`
	Nodes          int    `json:"nodes"`
	Edges          int    `json:"edges"`
	JournalRecords uint64 `json:"journal_records"`
	JournalBytes   int64  `json:"journal_bytes"`
	PendingRebuild bool   `json:"pending_rebuild"`
	live.Counters
	IncrementalRepairs uint64 `json:"incremental_repairs"`
	// Repair-kind breakdown: inserts, decremental (edge/node removals)
	// and re-weights (edge weight or authority changes) absorbed
	// without a rebuild. Under mixed churn these climb while
	// FullRebuilds stays flat — the fully dynamic 2-hop cover at work.
	RepairsInsert      uint64 `json:"repairs_insert"`
	RepairsDecremental uint64 `json:"repairs_decremental"`
	RepairsReweight    uint64 `json:"repairs_reweight"`
	// RepairVisitTrips counts repairs abandoned for exceeding the
	// per-operation visit budget (each fell back to an async rebuild).
	RepairVisitTrips uint64 `json:"repair_visit_trips"`
	FullRebuilds     uint64 `json:"full_rebuilds"`
	// Materializations counts full-graph materializations; the overlay
	// read path keeps it at zero while serving discovers (index
	// rebuilds and compactions are the intended exceptions).
	Materializations uint64 `json:"materializations"`
	// Commits counts group commits (published batches); Epoch−Commits
	// is the lifetime batching win. OverlayChainDepth is the chain
	// depth of the current epoch's overlay view (0 = refolded from the
	// base) and OverlayRefolds counts the full refolds the chain depth
	// guard forced.
	Commits           uint64 `json:"commits"`
	OverlayChainDepth int    `json:"overlay_chain_depth"`
	OverlayRefolds    uint64 `json:"overlay_refolds"`
	Compactions       uint64 `json:"compactions"`
	// BaseAdoptions counts wholesale base replacements (a follower
	// re-anchoring on the leader's fold snapshot after falling below
	// the retained journal window).
	BaseAdoptions uint64 `json:"base_adoptions"`
	// RebaseEpoch is the epoch the in-memory store was last re-based
	// onto (by a fold while serving, or by adopting a compacted base at
	// boot); LogLen is the resident mutation log since then — the
	// quantity the background compactor keeps bounded, and the cost of
	// the next per-epoch overlay construction.
	RebaseEpoch uint64 `json:"rebase_epoch"`
	LogLen      int    `json:"log_len"`
	// Compactor reports the background fold loop (zero value when it
	// is disabled).
	Compactor live.CompactorStats `json:"compactor"`
	// CompactorRuns mirrors Compactor.Runs at the top level for
	// dashboards scraping a flat field.
	CompactorRuns uint64 `json:"compactor_runs"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	MetricsSnapshot
	Cache CacheStats `json:"cache"`
	// CacheEvictionsEpoch mirrors Cache.EpochEvictions at the top
	// level for dashboards scraping a flat field.
	CacheEvictionsEpoch uint64           `json:"cache_evictions_epoch"`
	Live                LiveStats        `json:"live"`
	Replication         ReplicationStats `json:"replication"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	records, bytes := s.store.JournalStats()
	ixs := s.indexes.stats()
	cache := s.cache.Stats()
	var compactor live.CompactorStats
	if s.compactor != nil {
		compactor = s.compactor.Stats()
	}
	// Epoch, base epoch and log length all come from the one snapshot
	// resolved above, so the payload is internally consistent even when
	// a fold re-bases the store mid-handler (epoch ≥ rebase_epoch and
	// log_len == epoch − rebase_epoch always hold within a response).
	baseEpoch := snap.BaseEpoch()
	writeJSON(w, http.StatusOK, StatsResponse{
		MetricsSnapshot:     s.metrics.snapshot(),
		Cache:               cache,
		CacheEvictionsEpoch: cache.EpochEvictions,
		Live: LiveStats{
			Epoch:              snap.Epoch(),
			BaseEpoch:          baseEpoch,
			Nodes:              snap.NumNodes(),
			Edges:              snap.NumEdges(),
			JournalRecords:     records,
			JournalBytes:       bytes,
			PendingRebuild:     ixs.pending,
			Counters:           s.store.Counters(),
			IncrementalRepairs: ixs.repairs,
			RepairsInsert:      ixs.repairsInsert,
			RepairsDecremental: ixs.repairsDecremental,
			RepairsReweight:    ixs.repairsReweight,
			RepairVisitTrips:   ixs.visitTrips,
			FullRebuilds:       ixs.rebuilds,
			Materializations:   s.store.Materializations(),
			Commits:            s.store.Commits(),
			OverlayChainDepth:  s.store.ChainDepth(),
			OverlayRefolds:     s.store.Refolds(),
			Compactions:        s.store.Compactions(),
			BaseAdoptions:      s.store.BaseAdoptions(),
			RebaseEpoch:        baseEpoch,
			LogLen:             int(snap.Epoch() - baseEpoch),
			Compactor:          compactor,
			CompactorRuns:      compactor.Runs,
		},
		Replication: s.replicationStats(),
	})
}

// decodeBody parses a JSON request body, rejecting empty and malformed
// bodies with 400.
func decodeBody(r *http.Request, dst any) *httpError {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		return errf(http.StatusBadRequest, "invalid request body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, herr *httpError) {
	if herr.location != "" {
		w.Header().Set("Location", herr.location)
	}
	if herr.term != nil {
		w.Header().Set(repl.TermHeader, strconv.FormatUint(*herr.term, 10))
	}
	writeJSON(w, herr.status, errorResponse{Error: herr.msg})
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}
