package server

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU map from canonical request keys to
// immutable response payloads. Discovery over a fixed graph is a pure
// function of the normalized request, so repeated identical queries —
// the dominant pattern in dashboard and A/B traffic — are answered
// without touching the search at all.
//
// Entries are epoch-tagged: a graph mutation advances the epoch and
// orphans every entry of the old epoch, which can never be served
// again (cache keys embed the epoch). EvictBefore drops them eagerly
// on epoch advance instead of letting dead entries squat in the LRU
// until capacity pressure ages them out.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	// compactFactor scales the per-epoch key-list compaction threshold:
	// the list is swept of LRU-evicted keys once it reaches
	// compactFactor×capacity entries. Higher factors sweep less often
	// (cheaper steady state, more idle memory); lower factors bound idle
	// memory tighter at the cost of more frequent sweeps.
	compactFactor int
	ll            *list.List
	items         map[string]*list.Element
	// epochKeys tracks the keys inserted per epoch so EvictBefore is
	// O(evicted), not O(cache size).
	epochKeys      map[uint64][]string
	hits           uint64
	misses         uint64
	epochEvictions uint64
}

type lruEntry struct {
	key   string
	epoch uint64
	val   *DiscoverResponse
}

// newLRU creates a cache holding up to capacity entries. A capacity
// < 1 disables caching: Get always misses and Put is a no-op. A
// compactFactor < 1 takes the default of 2 (sweep the per-epoch key
// list once it doubles the capacity).
func newLRU(capacity, compactFactor int) *lruCache {
	if compactFactor < 1 {
		compactFactor = 2
	}
	return &lruCache{
		capacity:      capacity,
		compactFactor: compactFactor,
		ll:            list.New(),
		items:         make(map[string]*list.Element),
		epochKeys:     make(map[uint64][]string),
	}
}

// Enabled reports whether the cache stores anything at all.
func (c *lruCache) Enabled() bool { return c.capacity >= 1 }

// Get returns the cached response for key, promoting it to
// most-recently-used. The returned value is shared and must be treated
// as immutable by callers.
func (c *lruCache) Get(key string) (*DiscoverResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores val, computed at the given graph epoch, under key,
// evicting the least-recently-used entry when the cache is full.
func (c *lruCache) Put(key string, epoch uint64, val *DiscoverResponse) {
	if c.capacity < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, epoch: epoch, val: val})
	c.epochKeys[epoch] = append(c.epochKeys[epoch], key)
	// LRU evictions leave their key behind in epochKeys (removing it
	// eagerly would be a linear scan per eviction); compact the list
	// once it clearly outgrows the live set, so a mutation-free epoch
	// with heavy query churn cannot grow it without bound.
	if keys := c.epochKeys[epoch]; len(keys) >= c.compactFactor*c.capacity {
		live := keys[:0]
		for _, k := range keys {
			if _, ok := c.items[k]; ok {
				live = append(live, k)
			}
		}
		c.epochKeys[epoch] = live
	}
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// EvictBefore drops every entry computed at an epoch below cur — dead
// results a mutation just orphaned — and returns how many it removed.
// Called on each epoch advance; cost is proportional to the entries
// actually dropped.
func (c *lruCache) EvictBefore(cur uint64) int {
	if c.capacity < 1 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	evicted := 0
	for epoch, keys := range c.epochKeys {
		if epoch >= cur {
			continue
		}
		for _, key := range keys {
			el, ok := c.items[key]
			if !ok || el.Value.(*lruEntry).epoch != epoch {
				continue // already LRU-evicted (or key reused — impossible, keys embed the epoch)
			}
			c.ll.Remove(el)
			delete(c.items, key)
			evicted++
		}
		delete(c.epochKeys, epoch)
	}
	c.epochEvictions += uint64(evicted)
	return evicted
}

// CacheStats is the cache section of the /stats payload.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Size   int    `json:"size"`
	// EpochEvictions counts entries dropped eagerly because a mutation
	// advanced the epoch past them (capacity evictions not included).
	EpochEvictions uint64  `json:"evictions_epoch"`
	Capacity       int     `json:"capacity"`
	HitRate        float64 `json:"hit_rate"`
}

// Stats reports hit/miss counters and occupancy.
func (c *lruCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Hits:           c.hits,
		Misses:         c.misses,
		Size:           c.ll.Len(),
		EpochEvictions: c.epochEvictions,
		Capacity:       c.capacity,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}
