package server

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU map from canonical request keys to
// immutable response payloads. Discovery over a fixed graph is a pure
// function of the normalized request, so repeated identical queries —
// the dominant pattern in dashboard and A/B traffic — are answered
// without touching the search at all.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element
	hits     uint64
	misses   uint64
}

type lruEntry struct {
	key string
	val *DiscoverResponse
}

// newLRU creates a cache holding up to capacity entries. A capacity
// < 1 disables caching: Get always misses and Put is a no-op.
func newLRU(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Enabled reports whether the cache stores anything at all.
func (c *lruCache) Enabled() bool { return c.capacity >= 1 }

// Get returns the cached response for key, promoting it to
// most-recently-used. The returned value is shared and must be treated
// as immutable by callers.
func (c *lruCache) Get(key string) (*DiscoverResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores val under key, evicting the least-recently-used entry
// when the cache is full.
func (c *lruCache) Put(key string, val *DiscoverResponse) {
	if c.capacity < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// CacheStats is the cache section of the /stats payload.
type CacheStats struct {
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	Size     int     `json:"size"`
	Capacity int     `json:"capacity"`
	HitRate  float64 `json:"hit_rate"`
}

// Stats reports hit/miss counters and occupancy.
func (c *lruCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Hits:     c.hits,
		Misses:   c.misses,
		Size:     c.ll.Len(),
		Capacity: c.capacity,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}
