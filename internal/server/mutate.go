package server

import (
	"errors"
	"net/http"
	"strconv"

	"authteam/internal/expertgraph"
	"authteam/internal/live"
)

// The /v1/graph mutation API. Each call applies exactly one mutation
// through the live store: it is journaled (write-ahead), validated,
// and published as a new epoch before the response is written, so the
// returned epoch gives read-your-writes — any request issued after the
// response resolves a snapshot at least that new. Discover requests
// keep snapshot isolation: a mutation never changes an in-flight
// query's view, it orphans the old epoch's cache entries instead.

// AddNodeRequest is the body of POST /v1/graph/nodes.
type AddNodeRequest struct {
	Name      string   `json:"name"`
	Authority float64  `json:"authority"`
	Skills    []string `json:"skills,omitempty"`
}

// AddEdgeRequest is the body of POST /v1/graph/edges.
type AddEdgeRequest struct {
	U expertgraph.NodeID `json:"u"`
	V expertgraph.NodeID `json:"v"`
	W float64            `json:"w"`
}

// UpdateNodeRequest is the body of PATCH /v1/graph/nodes/{id}. Nil
// Authority leaves the authority unchanged.
type UpdateNodeRequest struct {
	Authority *float64 `json:"authority,omitempty"`
	AddSkills []string `json:"add_skills,omitempty"`
}

// RemoveEdgeRequest is the body of DELETE /v1/graph/edges.
type RemoveEdgeRequest struct {
	U expertgraph.NodeID `json:"u"`
	V expertgraph.NodeID `json:"v"`
}

// UpdateEdgeRequest is the body of PATCH /v1/graph/edges: the new
// communication cost of an existing collaboration.
type UpdateEdgeRequest struct {
	U expertgraph.NodeID `json:"u"`
	V expertgraph.NodeID `json:"v"`
	W float64            `json:"w"`
}

// MutationResponse is the reply to every successful mutation.
type MutationResponse struct {
	// Epoch is the graph epoch at which the mutation became visible.
	Epoch uint64 `json:"epoch"`
	// ID is the assigned NodeID (node additions only).
	ID *expertgraph.NodeID `json:"id,omitempty"`
	// Nodes and Edges are the post-mutation graph counts.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
}

func (s *Server) handleAddNode(w http.ResponseWriter, r *http.Request) {
	var req AddNodeRequest
	if herr := decodeBody(r, &req); herr != nil {
		s.metrics.recordMutation(string(live.OpAddNode), true)
		writeError(w, herr)
		return
	}
	id, epoch, err := s.store.AddExpert(req.Name, req.Authority, req.Skills)
	if err != nil {
		s.metrics.recordMutation(string(live.OpAddNode), true)
		writeError(w, mutationError(err))
		return
	}
	s.cache.EvictBefore(epoch)
	s.metrics.recordMutation(string(live.OpAddNode), false)
	writeJSON(w, http.StatusCreated, s.mutationResponse(epoch, &id))
}

func (s *Server) handleAddEdge(w http.ResponseWriter, r *http.Request) {
	var req AddEdgeRequest
	if herr := decodeBody(r, &req); herr != nil {
		s.metrics.recordMutation(string(live.OpAddEdge), true)
		writeError(w, herr)
		return
	}
	epoch, err := s.store.AddCollaboration(req.U, req.V, req.W)
	if err != nil {
		s.metrics.recordMutation(string(live.OpAddEdge), true)
		writeError(w, mutationError(err))
		return
	}
	s.cache.EvictBefore(epoch)
	s.metrics.recordMutation(string(live.OpAddEdge), false)
	writeJSON(w, http.StatusCreated, s.mutationResponse(epoch, nil))
}

func (s *Server) handleUpdateNode(w http.ResponseWriter, r *http.Request) {
	id64, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		s.metrics.recordMutation(string(live.OpUpdateNode), true)
		writeError(w, errf(http.StatusBadRequest, "bad node id %q", r.PathValue("id")))
		return
	}
	var req UpdateNodeRequest
	if herr := decodeBody(r, &req); herr != nil {
		s.metrics.recordMutation(string(live.OpUpdateNode), true)
		writeError(w, herr)
		return
	}
	epoch, err := s.store.UpdateExpert(expertgraph.NodeID(id64), req.Authority, req.AddSkills)
	if err != nil {
		s.metrics.recordMutation(string(live.OpUpdateNode), true)
		writeError(w, mutationError(err))
		return
	}
	s.cache.EvictBefore(epoch)
	s.metrics.recordMutation(string(live.OpUpdateNode), false)
	writeJSON(w, http.StatusOK, s.mutationResponse(epoch, nil))
}

func (s *Server) handleRemoveEdge(w http.ResponseWriter, r *http.Request) {
	var req RemoveEdgeRequest
	if herr := decodeBody(r, &req); herr != nil {
		s.metrics.recordMutation(string(live.OpRemoveEdge), true)
		writeError(w, herr)
		return
	}
	epoch, err := s.store.RemoveCollaboration(req.U, req.V)
	if err != nil {
		s.metrics.recordMutation(string(live.OpRemoveEdge), true)
		writeError(w, mutationError(err))
		return
	}
	s.cache.EvictBefore(epoch)
	s.metrics.recordMutation(string(live.OpRemoveEdge), false)
	writeJSON(w, http.StatusOK, s.mutationResponse(epoch, nil))
}

func (s *Server) handleRemoveNode(w http.ResponseWriter, r *http.Request) {
	id64, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		s.metrics.recordMutation(string(live.OpRemoveNode), true)
		writeError(w, errf(http.StatusBadRequest, "bad node id %q", r.PathValue("id")))
		return
	}
	epoch, serr := s.store.RemoveExpert(expertgraph.NodeID(id64))
	if serr != nil {
		s.metrics.recordMutation(string(live.OpRemoveNode), true)
		writeError(w, mutationError(serr))
		return
	}
	s.cache.EvictBefore(epoch)
	s.metrics.recordMutation(string(live.OpRemoveNode), false)
	writeJSON(w, http.StatusOK, s.mutationResponse(epoch, nil))
}

func (s *Server) handleUpdateEdge(w http.ResponseWriter, r *http.Request) {
	var req UpdateEdgeRequest
	if herr := decodeBody(r, &req); herr != nil {
		s.metrics.recordMutation(string(live.OpUpdateEdge), true)
		writeError(w, herr)
		return
	}
	epoch, err := s.store.UpdateCollaboration(req.U, req.V, req.W)
	if err != nil {
		s.metrics.recordMutation(string(live.OpUpdateEdge), true)
		writeError(w, mutationError(err))
		return
	}
	s.cache.EvictBefore(epoch)
	s.metrics.recordMutation(string(live.OpUpdateEdge), false)
	writeJSON(w, http.StatusOK, s.mutationResponse(epoch, nil))
}

func (s *Server) mutationResponse(epoch uint64, id *expertgraph.NodeID) MutationResponse {
	snap := s.store.Snapshot()
	return MutationResponse{Epoch: epoch, ID: id, Nodes: snap.NumNodes(), Edges: snap.NumEdges()}
}

// mutationError maps live-store errors to HTTP statuses: unknown
// nodes and edges are 404, a tombstoned node is 410 Gone (it existed,
// and its ID will never come back), an already-existing edge is a 409
// conflict, a fenced store (demoted between dispatch and apply) is a
// 412 carrying the fencing term, the remaining validation failures are
// 400, and anything else (journal I/O) is a server fault.
func mutationError(err error) *httpError {
	switch {
	case errors.Is(err, live.ErrFenced):
		herr := errf(http.StatusPreconditionFailed, "%v", err)
		var fe *live.FencedError
		if errors.As(err, &fe) {
			herr.term = &fe.Term
		}
		return herr
	case errors.Is(err, live.ErrUnknownNode),
		errors.Is(err, live.ErrUnknownEdge):
		return errf(http.StatusNotFound, "%v", err)
	case errors.Is(err, live.ErrRemovedNode):
		return errf(http.StatusGone, "%v", err)
	case errors.Is(err, live.ErrDuplicateEdge):
		return errf(http.StatusConflict, "%v", err)
	case errors.Is(err, live.ErrSelfLoop),
		errors.Is(err, live.ErrNegativeW),
		errors.Is(err, live.ErrEmptyUpdate),
		errors.Is(err, live.ErrEmptyName):
		return errf(http.StatusBadRequest, "%v", err)
	default:
		return errf(http.StatusInternalServerError, "%v", err)
	}
}
