package server

import (
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"sync"

	"authteam/internal/core"
	"authteam/internal/expertgraph"
	"authteam/internal/oracle"
	"authteam/internal/pll"
	"authteam/internal/transform"
)

// maxResidentIndexes bounds the number of distinct 2-hop covers kept in
// memory. CC traffic shares one raw-weight index; CA-CC and SA-CA-CC
// traffic shares one index per γ (λ only shifts holder costs, not edge
// weights), so real deployments need two or three. The bound only
// protects against adversarial γ sweeps.
const maxResidentIndexes = 8

// indexSet owns the 2-hop cover indexes the server queries. Building
// one is the expensive amortized step of the paper (§4.1), so the set
// memoizes per weight-function key and optionally persists each index
// next to the graph file for instant reloads on restart.
type indexSet struct {
	g *expertgraph.Graph
	// base is the persistence path prefix ("" disables persistence);
	// the index for key k lives at <base>.pll-<k>.
	base string

	mu      sync.Mutex
	oracles map[string]*oracle.PLLOracle
	// building holds one latch per in-flight build so a slow build for
	// a new key never blocks lookups of resident indexes, and
	// concurrent requests for the same missing key build it once.
	building map[string]chan struct{}
}

func newIndexSet(g *expertgraph.Graph, base string) *indexSet {
	return &indexSet{
		g:        g,
		base:     base,
		oracles:  make(map[string]*oracle.PLLOracle),
		building: make(map[string]chan struct{}),
	}
}

// indexKey canonically names the weight function an index was built
// over: raw stored weights for CC, the G' weights at γ otherwise.
func indexKey(m core.Method, gamma float64) string {
	if m == core.CC {
		return "cc"
	}
	return fmt.Sprintf("g%.9g", gamma)
}

// forMethod returns the (possibly cached) index oracle serving method m
// under params p, building — and persisting, when enabled — on first
// use. Safe for concurrent use: resident keys are served with a map
// lookup, and a missing key is built exactly once while other keys
// remain available.
func (s *indexSet) forMethod(p *transform.Params, m core.Method) *oracle.PLLOracle {
	key := indexKey(m, p.Gamma)
	s.mu.Lock()
	for {
		if o, ok := s.oracles[key]; ok {
			s.mu.Unlock()
			return o
		}
		latch, inflight := s.building[key]
		if !inflight {
			break
		}
		s.mu.Unlock()
		<-latch
		s.mu.Lock()
	}
	latch := make(chan struct{})
	s.building[key] = latch
	s.mu.Unlock()

	o := s.load(key)
	if o != nil && !s.verifyIndex(o, p, m) {
		log.Printf("server: ignoring stale index %s (distances disagree with the graph)", s.path(key))
		o = nil
	}
	if o == nil {
		o = core.BuildIndexOracle(p, m)
		s.save(key, o.Index())
	}

	s.mu.Lock()
	if len(s.oracles) >= maxResidentIndexes {
		for k := range s.oracles {
			delete(s.oracles, k)
			break
		}
	}
	s.oracles[key] = o
	delete(s.building, key)
	s.mu.Unlock()
	close(latch)
	return o
}

// load reads a previously persisted index for key, discarding it when
// it does not match the loaded graph (e.g. the graph file was rebuilt).
func (s *indexSet) load(key string) *oracle.PLLOracle {
	if s.base == "" {
		return nil
	}
	path := s.path(key)
	ix, err := pll.LoadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			log.Printf("server: ignoring index %s: %v", path, err)
		}
		return nil
	}
	if ix.NumNodes() != s.g.NumNodes() {
		log.Printf("server: ignoring stale index %s (%d nodes, graph has %d)",
			path, ix.NumNodes(), s.g.NumNodes())
		return nil
	}
	log.Printf("server: loaded index %s: %v", path, ix.Stats())
	return oracle.NewPLL(ix)
}

// verifyIndex spot-checks a loaded index against the live graph: one
// reference SSSP from the highest-degree node, compared at sampled
// targets. Node counts alone cannot catch a regenerated graph with the
// same size but different edges or weights, which would silently make
// every distance wrong. Costs one Dijkstra per load — noise next to a
// rebuild.
func (s *indexSet) verifyIndex(o *oracle.PLLOracle, p *transform.Params, m core.Method) bool {
	n := s.g.NumNodes()
	if n == 0 {
		return true
	}
	src := expertgraph.NodeID(0)
	for u := 1; u < n; u++ {
		if s.g.Degree(expertgraph.NodeID(u)) > s.g.Degree(src) {
			src = expertgraph.NodeID(u)
		}
	}
	ws := expertgraph.NewDijkstraWorkspace(s.g)
	var sssp *expertgraph.SSSP
	if m == core.CC {
		sssp = ws.Run(src)
	} else {
		sssp = ws.RunWeighted(src, p.EdgeWeight())
	}
	step := n/64 + 1
	for v := 0; v < n; v += step {
		if !distClose(o.Dist(src, expertgraph.NodeID(v)), sssp.Dist[v]) {
			return false
		}
	}
	return true
}

// distClose compares distances up to float summation-order noise (PLL
// accumulates path weights in a different order than Dijkstra).
func distClose(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return a == b
	}
	d := math.Abs(a - b)
	return d <= 1e-9 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// save persists a freshly built index; failures are logged and
// non-fatal because persistence is purely a restart optimization.
func (s *indexSet) save(key string, ix *pll.Index) {
	if s.base == "" {
		return
	}
	path := s.path(key)
	if err := pll.SaveFile(path, ix); err != nil {
		log.Printf("server: persist index %s: %v", path, err)
		return
	}
	log.Printf("server: persisted index %s: %v", path, ix.Stats())
}

func (s *indexSet) path(key string) string {
	return s.base + ".pll-" + key
}
