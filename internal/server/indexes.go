package server

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"authteam/internal/core"
	"authteam/internal/expertgraph"
	"authteam/internal/live"
	"authteam/internal/obs"
	"authteam/internal/oracle"
	"authteam/internal/pll"
	"authteam/internal/transform"
)

// maxResidentIndexes bounds the number of distinct 2-hop covers kept in
// memory. CC traffic shares one raw-weight index; CA-CC and SA-CA-CC
// traffic shares one index per γ (λ only shifts holder costs, not edge
// weights), so real deployments need two or three. The bound only
// protects against adversarial γ sweeps.
const maxResidentIndexes = 8

// indexSet owns the 2-hop cover indexes the server queries. Building
// one is the expensive amortized step of the paper (§4.1), so the set
// memoizes per weight-function key, carries resident indexes across
// graph epochs with incremental repair (live.MaintainIndex), and
// optionally persists each index next to the graph file for instant
// reloads on restart.
//
// Epoch discipline: every lookup is against one snapshot view, and the
// returned oracle (when non-nil) answers distances for exactly that
// epoch. A lookup that cannot be satisfied without a full rebuild
// kicks the rebuild asynchronously and returns nil — the discovery
// layer then falls back to exact per-root Dijkstra, so queries never
// see distances from a dead epoch.
type indexSet struct {
	// base is the persistence path prefix ("" disables persistence);
	// the index for key k lives at <base>.pll-<k>, with the epoch it
	// was built at in the <base>.pll-<k>.epoch sidecar.
	base string
	// store anchors persisted indexes: a file saved at epoch E is
	// thawed against the store's reconstructed epoch-E snapshot and
	// repaired forward to the serving epoch.
	store *live.Store
	// repairBudget caps the delta length incremental repair accepts.
	repairBudget int
	// workers is the number of goroutines sharding each full 2-hop
	// cover build (see pll.Options.Workers); repairs stay serial, they
	// are already sub-millisecond.
	workers int
	// visitBudget caps the label-visit work of a single repair
	// operation: a repair whose resumed Dijkstras touch more than this
	// many labels is abandoned in favor of an async rebuild, bounding
	// the tail latency a pathological delta (hub removal) can inject
	// into the request path. 0 disables the cap.
	visitBudget int

	mu      sync.Mutex
	entries map[string]*indexEntry
	// building holds one latch per in-flight build/repair. Requests
	// finding a latch AND a resident (stale) entry return immediately
	// with nil; requests finding a latch and no entry (cold start)
	// wait, preserving the original build-once behavior.
	building map[string]chan struct{}

	pending  atomic.Int32  // in-flight async rebuilds
	repairs  atomic.Uint64 // incremental repairs applied
	rebuilds atomic.Uint64 // full builds (cold, stale-load, async)
	// Repair-kind breakdown: what flavour of delta each repair
	// absorbed. A repair with any removal counts as decremental, else
	// any re-weight (edge weight or authority change) as reweight, else
	// insert — so under mixed churn the decremental and reweight
	// counters climbing while full_rebuilds stays flat is the evidence
	// the 2-hop cover is fully dynamic.
	repairsInsert      atomic.Uint64
	repairsDecremental atomic.Uint64
	repairsReweight    atomic.Uint64
	// visitTrips counts repairs abandoned because they exceeded
	// visitBudget (each one fell back to an async rebuild).
	visitTrips atomic.Uint64

	// Registry instruments (nil with observation off; every obs method
	// is a nil-safe no-op, so the maintenance paths need no guards).
	repairHist   *obs.HistogramVec // authteam_index_repair_seconds{kind}
	repairVisits *obs.CounterVec   // authteam_index_repair_visits_total{kind}
	rebuildHist  *obs.HistogramVec // authteam_index_rebuild_seconds{mode}
}

// indexEntry pairs a resident oracle with the snapshot it is exact
// for. The snapshot is retained so the next epoch's repair can diff
// against it (mutation window, normalization bounds), and params holds
// the fit the index's weight function was derived from (nil for the
// raw-weight CC index) — the decremental repair of a later epoch needs
// the *old* weight function to recognize entries built under it.
type indexEntry struct {
	oracle *oracle.PLLOracle
	snap   *live.Snapshot
	params *transform.Params
}

func newIndexSet(base string, store *live.Store, repairBudget, visitBudget, workers int, reg *obs.Registry) *indexSet {
	if workers < 1 {
		workers = 1
	}
	s := &indexSet{
		base:         base,
		store:        store,
		repairBudget: repairBudget,
		workers:      workers,
		visitBudget:  visitBudget,
		entries:      make(map[string]*indexEntry),
		building:     make(map[string]chan struct{}),
	}
	if reg != nil {
		s.repairHist = reg.HistogramVec("authteam_index_repair_seconds",
			"Incremental 2-hop cover repair duration by delta kind.", nil, "kind")
		s.repairVisits = reg.CounterVec("authteam_index_repair_visits_total",
			"Labels touched by incremental repairs, by delta kind.", "kind")
		s.rebuildHist = reg.HistogramVec("authteam_index_rebuild_seconds",
			"Full 2-hop cover build duration by build mode.", nil, "mode")
		reg.GaugeFunc("authteam_index_rebuild_workers",
			"Goroutines sharding each full 2-hop cover build.",
			func() float64 { return float64(s.workers) })
		reg.GaugeFunc("authteam_index_rebuild_queue_depth",
			"Asynchronous index rebuilds currently in flight.",
			func() float64 { return float64(s.pending.Load()) })
		reg.CounterFunc("authteam_index_repairs_total",
			"Incremental index repairs applied.",
			func() float64 { return float64(s.repairs.Load()) })
		reg.CounterFunc("authteam_index_rebuilds_total",
			"Full index builds (cold start, stale load, async refresh).",
			func() float64 { return float64(s.rebuilds.Load()) })
		reg.CounterFunc("authteam_index_repair_visit_trips_total",
			"Repairs abandoned for exceeding the visit budget.",
			func() float64 { return float64(s.visitTrips.Load()) })
	}
	return s
}

// indexKey canonically names the weight function an index was built
// over: raw stored weights for CC, the G' weights at γ otherwise.
func indexKey(m core.Method, gamma float64) string {
	if m == core.CC {
		return "cc"
	}
	return fmt.Sprintf("g%.9g", gamma)
}

// indexSetStats is the maintenance-counter snapshot of the set.
type indexSetStats struct {
	pending            bool
	repairs, rebuilds  uint64
	repairsInsert      uint64
	repairsDecremental uint64
	repairsReweight    uint64
	visitTrips         uint64
}

// stats reports the set's maintenance counters.
func (s *indexSet) stats() indexSetStats {
	return indexSetStats{
		pending:            s.pending.Load() > 0,
		repairs:            s.repairs.Load(),
		rebuilds:           s.rebuilds.Load(),
		repairsInsert:      s.repairsInsert.Load(),
		repairsDecremental: s.repairsDecremental.Load(),
		repairsReweight:    s.repairsReweight.Load(),
		visitTrips:         s.visitTrips.Load(),
	}
}

// countRepair folds one successful MaintainIndex outcome into the
// kind counters and the per-kind duration histogram. A delta absorbed
// entirely for free (only skipped no-ops — value-unchanged authority
// updates, skill grants) counts toward the repair total but toward no
// kind: nothing was inserted, removed or re-weighted.
func (s *indexSet) countRepair(rs live.RepairStats, elapsed time.Duration) {
	s.repairs.Add(1)
	kind := "noop"
	switch {
	case rs.Decremental():
		s.repairsDecremental.Add(1)
		kind = "decremental"
	case rs.Reweight():
		s.repairsReweight.Add(1)
		kind = "reweight"
	case rs.Inserted > 0:
		s.repairsInsert.Add(1)
		kind = "insert"
	}
	s.repairHist.With(kind).Observe(elapsed.Seconds())
	s.repairVisits.With(kind).Add(uint64(rs.Visits))
}

// forMethod returns an index oracle serving method m under params p at
// the view's epoch, or nil when no epoch-exact index is resident yet
// (the caller must then answer with per-root Dijkstra). Resident
// epoch-exact keys are served with a map lookup; a stale resident key
// is repaired in place when the mutation delta allows it and rebuilt
// asynchronously otherwise; a missing key is built synchronously,
// exactly once.
func (s *indexSet) forMethod(v view, p *transform.Params, m core.Method) oracle.Oracle {
	key := indexKey(m, p.Gamma)
	s.mu.Lock()
	for {
		if e, ok := s.entries[key]; ok && e.snap.Epoch() == v.epoch() {
			s.mu.Unlock()
			return e.oracle
		}
		latch, inflight := s.building[key]
		if !inflight {
			break
		}
		if _, ok := s.entries[key]; ok {
			// A repair/rebuild is in flight; don't serve the dead
			// epoch and don't queue behind the refresh.
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
		<-latch
		s.mu.Lock()
	}
	stale := s.entries[key]
	latch := make(chan struct{})
	s.building[key] = latch
	s.mu.Unlock()

	install := func(e *indexEntry) {
		s.mu.Lock()
		if e != nil {
			// Evict a sibling only when this key actually grows the
			// map; replacing a resident key in place must not cost an
			// unrelated index its slot.
			if _, resident := s.entries[key]; !resident && len(s.entries) >= maxResidentIndexes {
				for k := range s.entries {
					if k != key {
						delete(s.entries, k)
						break
					}
				}
			}
			s.entries[key] = e
		}
		delete(s.building, key)
		s.mu.Unlock()
		close(latch)
	}

	// entryParams records the fit a weighted index's weight function
	// came from; the next repair needs it as its oldWeight.
	var entryParams *transform.Params
	if m != core.CC {
		entryParams = p
	}

	if stale == nil {
		// Cold start for this key: disk, else a synchronous build.
		o := s.load(key, v, p, m)
		if o == nil {
			o = s.build(v, p, m)
			s.rebuilds.Add(1)
			s.save(key, o.Index(), v.epoch())
		}
		install(&indexEntry{oracle: o, snap: v.snap, params: entryParams})
		return o
	}

	// A view older than the resident entry (a slow request that
	// resolved its snapshot before a sibling refreshed the index) must
	// not rebuild for its already-dead epoch, let alone overwrite the
	// newer entry: answer it with per-root Dijkstra and move on.
	if stale.snap.Epoch() > v.epoch() {
		install(nil)
		return nil
	}

	// Stale resident index: prefer carrying it forward incrementally.
	// The old fit (the weights the resident entries were created under)
	// rides along so decremental and authority re-weight repairs can
	// recognize them.
	var weight, oldWeight live.WeightFunc
	if m != core.CC {
		weight = p.EdgeWeight()
		if stale.params != nil {
			oldWeight = stale.params.EdgeWeight()
		}
	}
	if s.repairBudget >= 0 {
		lim := live.RepairLimits{Mutations: s.repairBudget, Visits: s.visitBudget}
		rstart := time.Now()
		if ix, rs, ok := live.MaintainIndexWithin(stale.oracle.Index(), stale.snap, v.snap, weight, oldWeight, lim); ok {
			o := oracle.NewPLL(ix)
			s.countRepair(rs, time.Since(rstart))
			install(&indexEntry{oracle: o, snap: v.snap, params: entryParams})
			return o
		} else if rs.VisitsExceeded {
			s.visitTrips.Add(1)
		}
	}

	// Not repairable (authority update, normalization shift, or past
	// the staleness budget): rebuild off the request path and serve
	// this query — and every query until the build lands — with exact
	// per-root Dijkstra.
	s.pending.Add(1)
	go func() {
		defer s.pending.Add(-1)
		o := s.build(v, p, m)
		s.rebuilds.Add(1)
		s.save(key, o.Index(), v.epoch())
		install(&indexEntry{oracle: o, snap: v.snap, params: entryParams})
	}()
	return nil
}

// build constructs a fresh 2-hop cover for method m at the view's
// epoch. A full build is the one place the serving layer materializes
// a graph: the O(n·m)-ish pruned-Dijkstra sweep touches every edge
// many times, so it runs over the packed CSR copy rather than paying
// the overlay's per-read overhead throughout; queries keep reading the
// overlay and never wait on this copy.
func (s *indexSet) build(v view, p *transform.Params, m core.Method) *oracle.PLLOracle {
	mode := "sequential"
	if s.workers > 1 {
		mode = "parallel"
	}
	if s.rebuildHist != nil {
		start := time.Now()
		defer func() { s.rebuildHist.With(mode).Observe(time.Since(start).Seconds()) }()
	}
	var weight oracle.WeightFunc
	if m != core.CC {
		weight = p.EdgeWeight()
	}
	gv := expertgraph.GraphView(v.g)
	if g, err := v.snap.Graph(); err == nil {
		gv = g
	}
	// Mutations are validated before admission, so materialization
	// cannot fail on a live store; falling back to the overlay view
	// degrades a broken invariant to a slower build, not an outage.
	tr := obs.NewTrace()
	ix := pll.BuildWithOptions(gv, pll.Options{
		Weight:  weight,
		Workers: s.workers,
		OnBlock: func(lo, hi int, _ time.Duration) {
			tr.Lap(fmt.Sprintf("ranks[%d,%d)", lo, hi))
		},
	})
	slog.Debug("server: index build", "mode", mode, "workers", s.workers,
		"total", tr.Total(), "blocks", tr.Header())
	return oracle.NewPLL(ix)
}

// load reads a previously persisted index for key. The index is
// anchored at the epoch recorded in its sidecar: when the serving
// epoch is ahead (journal replayed more mutations since the save), the
// loaded index is repaired across the delta before use, or discarded
// when the delta is not repairable — a persisted index must never be
// served at an epoch it does not describe, and the final distance
// spot-check guards against a silently regenerated graph file.
func (s *indexSet) load(key string, v view, p *transform.Params, m core.Method) *oracle.PLLOracle {
	if s.base == "" {
		return nil
	}
	path := s.path(key)
	ix, err := pll.LoadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			slog.Warn("server: ignoring index", "path", path, "err", err)
		}
		return nil
	}
	savedEpoch := s.loadEpoch(key)
	if savedEpoch != v.epoch() {
		from, ok := s.store.SnapshotAt(savedEpoch)
		if !ok {
			slog.Warn("server: ignoring index outside the store's history",
				"path", path, "saved_epoch", savedEpoch, "store_epoch", v.epoch())
			return nil
		}
		if ix.NumNodes() != from.NumNodes() {
			slog.Warn("server: ignoring stale index",
				"path", path, "index_nodes", ix.NumNodes(),
				"saved_epoch", savedEpoch, "epoch_nodes", from.NumNodes())
			return nil
		}
		var weight, oldWeight live.WeightFunc
		if m != core.CC {
			weight = p.EdgeWeight()
			// A persisted index was built over the fit of its save
			// epoch; re-fit that epoch's view so decremental repair can
			// recognize entries created under the old authorities. The
			// O(n) fit is noise next to the build the repair avoids.
			if oldP, err := transform.Fit(from.View(), p.Gamma, p.Lambda, transform.Options{Normalize: true}); err == nil {
				oldWeight = oldP.EdgeWeight()
			}
		}
		rstart := time.Now()
		repaired, rs, ok := live.MaintainIndexWithin(ix, from, v.snap, weight, oldWeight,
			live.RepairLimits{Mutations: s.repairBudget, Visits: s.visitBudget})
		if !ok {
			if rs.VisitsExceeded {
				s.visitTrips.Add(1)
			}
			slog.Warn("server: ignoring index with unrepairable delta",
				"path", path, "saved_epoch", savedEpoch, "store_epoch", v.epoch())
			return nil
		}
		s.countRepair(rs, time.Since(rstart))
		ix = repaired
	}
	if ix.NumNodes() != v.g.NumNodes() {
		slog.Warn("server: ignoring stale index",
			"path", path, "index_nodes", ix.NumNodes(), "graph_nodes", v.g.NumNodes())
		return nil
	}
	o := oracle.NewPLL(ix)
	if !s.verifyIndex(o, v, p, m) {
		slog.Warn("server: ignoring stale index with mismatched distances", "path", path)
		return nil
	}
	slog.Info("server: loaded index", "path", path, "epoch", v.epoch(), "stats", ix.Stats())
	return o
}

// loadEpoch reads the epoch sidecar of a persisted index; a missing or
// unreadable sidecar anchors the file at epoch 0 (the base graph),
// which is what pre-sidecar deployments persisted.
func (s *indexSet) loadEpoch(key string) uint64 {
	buf, err := os.ReadFile(s.epochPath(key))
	if err != nil {
		return 0
	}
	epoch, err := strconv.ParseUint(strings.TrimSpace(string(buf)), 10, 64)
	if err != nil {
		return 0
	}
	return epoch
}

// verifyIndex spot-checks a loaded index against the view's graph: one
// reference SSSP from the highest-degree node, compared at sampled
// targets. Node counts alone cannot catch a regenerated graph with the
// same size but different edges or weights, which would silently make
// every distance wrong. Costs one Dijkstra per load — noise next to a
// rebuild.
func (s *indexSet) verifyIndex(o *oracle.PLLOracle, v view, p *transform.Params, m core.Method) bool {
	n := v.g.NumNodes()
	if n == 0 {
		return true
	}
	src := expertgraph.NodeID(0)
	for u := 1; u < n; u++ {
		if v.g.Degree(expertgraph.NodeID(u)) > v.g.Degree(src) {
			src = expertgraph.NodeID(u)
		}
	}
	ws := expertgraph.NewDijkstraWorkspace(v.g)
	var sssp *expertgraph.SSSP
	if m == core.CC {
		sssp = ws.Run(src)
	} else {
		sssp = ws.RunWeighted(src, p.EdgeWeight())
	}
	step := n/64 + 1
	for t := 0; t < n; t += step {
		if !distClose(o.Dist(src, expertgraph.NodeID(t)), sssp.Dist[t]) {
			return false
		}
	}
	return true
}

// distClose compares distances up to float summation-order noise (PLL
// accumulates path weights in a different order than Dijkstra).
func distClose(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return a == b
	}
	d := math.Abs(a - b)
	return d <= 1e-9 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// save persists a freshly built index with its epoch sidecar; failures
// are logged and non-fatal because persistence is purely a restart
// optimization. Repaired indexes are not persisted — the journal
// already makes their epochs reproducible, and a restart replays it
// and repairs again from the saved anchor.
func (s *indexSet) save(key string, ix *pll.Index, epoch uint64) {
	if s.base == "" {
		return
	}
	path := s.path(key)
	if err := pll.SaveFile(path, ix); err != nil {
		slog.Warn("server: persist index failed", "path", path, "err", err)
		return
	}
	if err := os.WriteFile(s.epochPath(key), []byte(strconv.FormatUint(epoch, 10)+"\n"), 0o644); err != nil {
		slog.Warn("server: persist index epoch failed", "path", s.epochPath(key), "err", err)
	}
	slog.Info("server: persisted index", "path", path, "epoch", epoch, "stats", ix.Stats())
}

func (s *indexSet) path(key string) string {
	return s.base + ".pll-" + key
}

func (s *indexSet) epochPath(key string) string {
	return s.path(key) + ".epoch"
}
