package server

import (
	"fmt"
	"testing"
)

func resp(tag string) *DiscoverResponse {
	return &DiscoverResponse{Method: tag}
}

func TestLRUBasic(t *testing.T) {
	c := newLRU(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 0, resp("a"))
	got, ok := c.Get("a")
	if !ok || got.Method != "a" {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Size != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.Put("a", 0, resp("a"))
	c.Put("b", 0, resp("b"))
	c.Get("a") // promote a; b is now LRU
	c.Put("c", 0, resp("c"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Get(key); !ok {
			t.Errorf("%s should have survived", key)
		}
	}
	if s := c.Stats(); s.Size != 2 {
		t.Errorf("size = %d, want 2", s.Size)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU(2)
	c.Put("a", 0, resp("old"))
	c.Put("a", 0, resp("new"))
	got, ok := c.Get("a")
	if !ok || got.Method != "new" {
		t.Fatalf("Get(a) = %v, %v; want updated value", got, ok)
	}
	if s := c.Stats(); s.Size != 1 {
		t.Errorf("size = %d, want 1", s.Size)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(0)
	c.Put("a", 0, resp("a"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if s := c.Stats(); s.Size != 0 || s.Capacity != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUChurn(t *testing.T) {
	c := newLRU(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), 0, resp("x"))
	}
	s := c.Stats()
	if s.Size != 8 {
		t.Fatalf("size = %d, want 8", s.Size)
	}
	// Only the 8 most recent survive.
	for i := 92; i < 100; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d missing", i)
		}
	}
}
