package server

import (
	"fmt"
	"testing"
)

func resp(tag string) *DiscoverResponse {
	return &DiscoverResponse{Method: tag}
}

func TestLRUBasic(t *testing.T) {
	c := newLRU(2, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 0, resp("a"))
	got, ok := c.Get("a")
	if !ok || got.Method != "a" {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Size != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2, 0)
	c.Put("a", 0, resp("a"))
	c.Put("b", 0, resp("b"))
	c.Get("a") // promote a; b is now LRU
	c.Put("c", 0, resp("c"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Get(key); !ok {
			t.Errorf("%s should have survived", key)
		}
	}
	if s := c.Stats(); s.Size != 2 {
		t.Errorf("size = %d, want 2", s.Size)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU(2, 0)
	c.Put("a", 0, resp("old"))
	c.Put("a", 0, resp("new"))
	got, ok := c.Get("a")
	if !ok || got.Method != "new" {
		t.Fatalf("Get(a) = %v, %v; want updated value", got, ok)
	}
	if s := c.Stats(); s.Size != 1 {
		t.Errorf("size = %d, want 1", s.Size)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(0, 0)
	c.Put("a", 0, resp("a"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if s := c.Stats(); s.Size != 0 || s.Capacity != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUChurn(t *testing.T) {
	c := newLRU(8, 0)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), 0, resp("x"))
	}
	s := c.Stats()
	if s.Size != 8 {
		t.Fatalf("size = %d, want 8", s.Size)
	}
	// Only the 8 most recent survive.
	for i := 92; i < 100; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d missing", i)
		}
	}
}

// TestLRUEpochKeyCompaction exercises the epochKeys maintenance branch
// directly: LRU evictions leave dead keys behind in the per-epoch key
// list, and once the list reaches 2× capacity within a single epoch it
// must be compacted down to the live entries — otherwise a
// mutation-free epoch with heavy query churn grows it without bound.
func TestLRUEpochKeyCompaction(t *testing.T) {
	const capacity = 8
	c := newLRU(capacity, 0)
	// 10× capacity inserts in one epoch: all but the last 8 are
	// LRU-evicted, and the key list crosses the 2×-capacity compaction
	// threshold repeatedly.
	const inserts = 10 * capacity
	for i := 0; i < inserts; i++ {
		c.Put(fmt.Sprintf("e0|k%d", i), 0, resp("x"))
	}
	c.mu.Lock()
	keyLen := len(c.epochKeys[0])
	c.mu.Unlock()
	// The list may hold up to 2×capacity−1 entries (live set plus dead
	// keys accumulated since the last compaction) but must never track
	// all 80 inserts.
	if keyLen >= 2*capacity {
		t.Fatalf("epochKeys holds %d keys after %d single-epoch inserts, want < %d (compacted)",
			keyLen, inserts, 2*capacity)
	}
	if s := c.Stats(); s.Size != capacity {
		t.Fatalf("size = %d, want %d", s.Size, capacity)
	}

	// EvictBefore must still be exact after compaction: advancing the
	// epoch drops precisely the surviving entries of epoch 0.
	if evicted := c.EvictBefore(1); evicted != capacity {
		t.Fatalf("EvictBefore(1) evicted %d, want the %d live entries", evicted, capacity)
	}
	for i := inserts - capacity; i < inserts; i++ {
		if _, ok := c.Get(fmt.Sprintf("e0|k%d", i)); ok {
			t.Errorf("e0|k%d survived EvictBefore", i)
		}
	}
	if s := c.Stats(); s.Size != 0 || s.EpochEvictions != capacity {
		t.Fatalf("post-evict stats = %+v, want size 0, %d epoch evictions", s, capacity)
	}
	c.mu.Lock()
	rows := len(c.epochKeys)
	c.mu.Unlock()
	if rows != 0 {
		t.Fatalf("epochKeys still tracks %d epochs after EvictBefore", rows)
	}
}
