package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"authteam/internal/obs"
	"authteam/internal/repl"
)

// scrapeFamilies fetches and parses url's /metrics exposition, keyed
// by family name.
func scrapeFamilies(t *testing.T, url string) map[string]obs.Family {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	out := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		out[f.Name] = f
	}
	return out
}

// sampleValue returns the value of the family sample matching name and
// all given label pairs, and whether one exists.
func sampleValue(f obs.Family, name string, labels map[string]string) (float64, bool) {
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// TestMetricsEndpointLeader drives a leader through a discover and a
// mutation, then asserts the exposition parses and carries the core
// families with the expected movement.
func TestMetricsEndpointLeader(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) {
		cfg.JournalPath = filepath.Join(t.TempDir(), "graph.wal")
	})
	status, data := postJSON(t, ts.URL+"/v1/discover", discoverBody)
	if status != http.StatusOK {
		t.Fatalf("discover: %d: %s", status, data)
	}
	status, data = postJSON(t, ts.URL+"/v1/graph/nodes",
		`{"name": "frank", "authority": 8, "skills": ["analytics"]}`)
	if status != http.StatusCreated {
		t.Fatalf("add node: %d: %s", status, data)
	}

	fams := scrapeFamilies(t, ts.URL)
	for _, want := range []string{
		"authteam_http_requests_total",
		"authteam_http_request_seconds",
		"authteam_discover_total",
		"authteam_discover_seconds",
		"authteam_mutations_total",
		"authteam_live_apply_seconds",
		"authteam_live_journal_append_seconds",
		"authteam_live_fold_seconds",
		"authteam_live_overlay_build_seconds",
		"authteam_live_log_len",
		"authteam_live_epoch",
		"authteam_index_repair_seconds",
		"authteam_index_rebuild_seconds",
		"authteam_index_rebuild_queue_depth",
		"authteam_index_rebuild_workers",
		"authteam_index_repairs_total",
		"authteam_index_rebuilds_total",
		"authteam_cache_hits_total",
		"authteam_cache_size",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("family %s missing from exposition", want)
		}
	}

	// Per-route request latency moved for the discover route.
	if n, ok := sampleValue(fams["authteam_http_request_seconds"],
		"authteam_http_request_seconds_count", map[string]string{"route": "discover"}); !ok || n < 1 {
		t.Errorf("discover route latency count = %v (ok=%v), want >= 1", n, ok)
	}
	if n, ok := sampleValue(fams["authteam_http_requests_total"],
		"authteam_http_requests_total", map[string]string{"route": "add_node", "code": "201"}); !ok || n != 1 {
		t.Errorf("add_node 201 count = %v (ok=%v), want 1", n, ok)
	}
	// The applied mutation moved the store instruments.
	if n, ok := sampleValue(fams["authteam_live_apply_seconds"],
		"authteam_live_apply_seconds_count", nil); !ok || n != 1 {
		t.Errorf("live apply count = %v (ok=%v), want 1", n, ok)
	}
	if n, ok := sampleValue(fams["authteam_live_journal_append_seconds"],
		"authteam_live_journal_append_seconds_count", nil); !ok || n != 1 {
		t.Errorf("journal append count = %v (ok=%v), want 1", n, ok)
	}
	if n, ok := sampleValue(fams["authteam_live_epoch"], "authteam_live_epoch", nil); !ok || n != 1 {
		t.Errorf("live epoch = %v (ok=%v), want 1", n, ok)
	}

	// /stats is re-derived from the same registry, so the two surfaces
	// must agree on the query counter.
	st := getStats(t, ts.URL)
	if reg, ok := sampleValue(fams["authteam_discover_total"],
		"authteam_discover_total", map[string]string{"method": "sa-ca-cc", "outcome": "ok"}); !ok || uint64(reg) != st.Queries {
		t.Errorf("registry discover ok = %v, /stats queries = %d", reg, st.Queries)
	}
	if st.Latency.Window != 1 || st.Latency.WindowFull {
		t.Errorf("latency window = %d full=%v, want 1/false", st.Latency.Window, st.Latency.WindowFull)
	}
}

// TestMetricsEndpointFollower checks a live follower exposes the
// replication families.
func TestMetricsEndpointFollower(t *testing.T) {
	ls, lts := newTestServer(t, nil)
	status, data := postJSON(t, lts.URL+"/v1/graph/nodes",
		`{"name": "frank", "authority": 8, "skills": ["analytics"]}`)
	if status != http.StatusCreated {
		t.Fatalf("add node: %d: %s", status, data)
	}
	_, fts := newFollowerServer(t, lts.URL, ls.store.Epoch(), nil)

	fams := scrapeFamilies(t, fts.URL)
	for _, want := range []string{
		"authteam_replication_lag_epochs",
		"authteam_replication_lag_seconds",
		"authteam_replication_polls_total",
		"authteam_replication_applied_total",
		"authteam_replication_base_fetches_total",
		"authteam_replication_tail_roundtrip_seconds",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("family %s missing from follower exposition", want)
		}
	}
	if lag, ok := sampleValue(fams["authteam_replication_lag_epochs"],
		"authteam_replication_lag_epochs", nil); !ok || lag != 0 {
		t.Errorf("caught-up follower lag = %v (ok=%v), want 0", lag, ok)
	}
	if n, ok := sampleValue(fams["authteam_replication_applied_total"],
		"authteam_replication_applied_total", nil); !ok || n < 1 {
		t.Errorf("applied = %v (ok=%v), want >= 1", n, ok)
	}
}

func getReadyz(t *testing.T, url string) (int, ReadyzResponse) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("decode readyz: %v (%s)", err, body)
	}
	return resp.StatusCode, out
}

// TestReadyzLeader: a serving leader is always ready.
func TestReadyzLeader(t *testing.T) {
	_, ts := newTestServer(t, nil)
	code, out := getReadyz(t, ts.URL)
	if code != http.StatusOK || !out.Ready || out.Role != "leader" {
		t.Fatalf("leader readyz = %d %+v", code, out)
	}
}

// TestReadyzFollowerLag puts a gated proxy between a real leader and
// a follower: while the gate starves the tail (reporting the leader's
// epoch but shipping no records) the follower's lag crosses the
// threshold and /readyz must degrade to 503; once the gate opens the
// follower drains the log and readiness returns.
func TestReadyzFollowerLag(t *testing.T) {
	ls, lts := newTestServer(t, nil)
	for i := 0; i < 20; i++ {
		status, data := postJSON(t, lts.URL+"/v1/graph/nodes",
			fmt.Sprintf(`{"name": "expert-%d", "authority": 5, "skills": ["analytics"]}`, i))
		if status != http.StatusCreated {
			t.Fatalf("add node %d: %d: %s", i, status, data)
		}
	}

	var gate atomic.Bool // false: starve the tail
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/journal/tail" && !gate.Load() {
			from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
			// A leader whose log the follower cannot drain: report
			// the true epoch, ship nothing.
			if err := repl.WriteTail(w, from, ls.store.Epoch(), 0, nil); err != nil {
				t.Errorf("write tail: %v", err)
			}
			return
		}
		resp, err := http.Get(lts.URL + r.URL.RequestURI())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer proxy.Close()

	_, fts := newTestServer(t, func(cfg *Config) {
		cfg.Graph = nil
		cfg.FollowURL = proxy.URL
		cfg.FollowPoll = 50 * time.Millisecond
		cfg.ReadyMaxLagEpochs = 10
	})

	waitFor := func(wantCode int, what string) ReadyzResponse {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			code, out := getReadyz(t, fts.URL)
			if code == wantCode {
				return out
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: readyz stuck at %d %+v, want %d", what, code, out, wantCode)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	out := waitFor(http.StatusServiceUnavailable, "lagged")
	if out.Ready || out.Role != "follower" || out.LagEpochs <= 10 || out.Reason == "" {
		t.Fatalf("degraded readyz = %+v", out)
	}

	gate.Store(true)
	out = waitFor(http.StatusOK, "recovered")
	if !out.Ready || out.LagEpochs != 0 || out.Reason != "" {
		t.Fatalf("recovered readyz = %+v", out)
	}
}

// TestTraceEndToEnd checks the X-Authteam-Trace header and the
// ?debug=trace span section: stages must partition the total.
func TestTraceEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Post(ts.URL+"/v1/discover?debug=trace", "application/json",
		jsonBody(discoverBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if h := resp.Header.Get("X-Authteam-Trace"); h == "" {
		t.Error("X-Authteam-Trace header missing")
	}
	out := decodeDiscover(t, data)
	if out.Trace == nil || len(out.Trace.Spans) == 0 {
		t.Fatalf("no trace section in %s", data)
	}
	var sum float64
	stages := make(map[string]bool)
	for _, sp := range out.Trace.Spans {
		sum += sp.MS
		stages[sp.Stage] = true
	}
	if d := math.Abs(sum - out.Trace.TotalMS); d > 0.01+0.001*out.Trace.TotalMS {
		t.Errorf("spans sum to %.4fms, total %.4fms", sum, out.Trace.TotalMS)
	}
	for _, want := range []string{"resolve", "fit", "index", "search", "merge", "score"} {
		if !stages[want] {
			t.Errorf("stage %q missing from trace %s", want, data)
		}
	}

	// Repeat without debug: header still set, no body section.
	resp2, err := http.Post(ts.URL+"/v1/discover", "application/json", jsonBody(discoverBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	data2, _ := io.ReadAll(resp2.Body)
	if h := resp2.Header.Get("X-Authteam-Trace"); h == "" {
		t.Error("header missing on plain request")
	}
	out2 := decodeDiscover(t, data2)
	if out2.Trace != nil {
		t.Errorf("trace section leaked into a non-debug response: %s", data2)
	}
	if !out2.Cached {
		t.Error("second identical query not served from cache")
	}
}

// TestNoObserve checks the kill switch: no tracing, no route
// histograms, while /stats keeps counting.
func TestNoObserve(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) { cfg.NoObserve = true })
	resp, err := http.Post(ts.URL+"/v1/discover?debug=trace", "application/json",
		jsonBody(discoverBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if h := resp.Header.Get("X-Authteam-Trace"); h != "" {
		t.Errorf("trace header %q with observation off", h)
	}
	out := decodeDiscover(t, data)
	if out.Trace != nil {
		t.Errorf("trace section with observation off: %s", data)
	}
	fams := scrapeFamilies(t, ts.URL)
	if _, ok := fams["authteam_http_request_seconds"]; ok {
		t.Error("route histogram registered with observation off")
	}
	if _, ok := fams["authteam_discover_total"]; !ok {
		t.Error("discover counter missing: /stats backing must survive NoObserve")
	}
	if st := getStats(t, ts.URL); st.Queries != 1 {
		t.Errorf("stats queries = %d, want 1", st.Queries)
	}
}

func jsonBody(s string) io.Reader { return strings.NewReader(s) }
