package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// noRedirect returns a client that surfaces 3xx responses instead of
// following them, so tests can assert on the redirect itself.
func noRedirect() *http.Client {
	return &http.Client{
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

// newFollowerServer spins up a follower of leaderURL and waits for it
// to catch up to epoch.
func newFollowerServer(t *testing.T, leaderURL string, epoch uint64, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	fs, fts := newTestServer(t, func(cfg *Config) {
		cfg.Graph = nil
		cfg.FollowURL = leaderURL
		cfg.FollowPoll = 200 * time.Millisecond
		if mutate != nil {
			mutate(cfg)
		}
	})
	waitServerEpoch(t, fs, epoch)
	return fs, fts
}

func waitServerEpoch(t *testing.T, s *Server, epoch uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if !s.store.WaitEpoch(ctx, epoch) {
		t.Fatalf("follower stuck at epoch %d, want %d", s.store.Epoch(), epoch)
	}
}

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// discoverBody asks for all three skills of the builder graph.
const discoverBody = `{"skills": ["analytics", "matrix", "communities"], "method": "sa-ca-cc", "k": 2}`

// neutralize zeroes the per-request fields so leader and follower
// responses can be compared byte-for-byte.
func neutralize(out *DiscoverResponse) {
	out.ElapsedMS = 0
	out.Cached = false
}

func discoverAt(t *testing.T, url string) DiscoverResponse {
	t.Helper()
	status, data := postJSON(t, url+"/v1/discover", discoverBody)
	if status != http.StatusOK {
		t.Fatalf("discover at %s: status %d: %s", url, status, data)
	}
	out := decodeDiscover(t, data)
	neutralize(&out)
	return out
}

// TestFollowerServesIdenticalTeams bootstraps a follower over HTTP
// from a live leader and checks the read API agrees byte-for-byte.
func TestFollowerServesIdenticalTeams(t *testing.T) {
	ls, lts := newTestServer(t, nil)
	// Mutate the leader so the follower has a stream to replay, not
	// just a base.
	status, data := postJSON(t, lts.URL+"/v1/graph/nodes",
		`{"name": "frank", "authority": 8, "skills": ["analytics", "communities"]}`)
	if status != http.StatusCreated {
		t.Fatalf("add node: %d: %s", status, data)
	}
	status, data = postJSON(t, lts.URL+"/v1/graph/edges", `{"u": 5, "v": 3, "w": 0.7}`)
	if status != http.StatusCreated {
		t.Fatalf("add edge: %d: %s", status, data)
	}

	_, fts := newFollowerServer(t, lts.URL, ls.store.Epoch(), nil)

	want, err := json.Marshal(discoverAt(t, lts.URL))
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(discoverAt(t, fts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatalf("follower answer differs:\nleader   %s\nfollower %s", want, got)
	}

	st := getStats(t, fts.URL)
	if st.Replication.Role != "follower" || st.Replication.Follower == nil {
		t.Fatalf("follower /stats replication section: %+v", st.Replication)
	}
	if st.Replication.Follower.BaseFetches < 1 {
		t.Fatalf("bootstrap did not fetch the base: %+v", st.Replication.Follower)
	}
	if lst := getStats(t, lts.URL); lst.Replication.Role != "leader" || lst.Replication.BaseRequests < 1 || lst.Replication.TailRequests < 1 {
		t.Fatalf("leader /stats replication section: %+v", lst.Replication)
	}
}

// TestFollowerRedirectsMutations checks every mutation verb answers
// 307 with a Location on the leader.
func TestFollowerRedirectsMutations(t *testing.T) {
	ls, lts := newTestServer(t, nil)
	_, fts := newFollowerServer(t, lts.URL, ls.store.Epoch(), nil)
	hc := noRedirect()

	cases := []struct{ method, path, body string }{
		{"POST", "/v1/graph/nodes", `{"name": "x", "authority": 1}`},
		{"POST", "/v1/graph/edges", `{"u": 0, "v": 1, "w": 0.5}`},
		{"PATCH", "/v1/graph/nodes/1", `{"add_skills": ["s"]}`},
		{"PATCH", "/v1/graph/edges", `{"u": 0, "v": 3, "w": 0.9}`},
		{"DELETE", "/v1/graph/edges", `{"u": 0, "v": 3}`},
		{"DELETE", "/v1/graph/nodes/4", ``},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, fts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		loc := resp.Header.Get("Location")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("%s %s: status %d, want 307", tc.method, tc.path, resp.StatusCode)
		}
		if want := lts.URL + tc.path; loc != want {
			t.Fatalf("%s %s: Location %q, want %q", tc.method, tc.path, loc, want)
		}
	}
}

// TestReadYourWrites exercises the X-Authteam-Min-Epoch gate: a read
// echoing a mutation's epoch must never observe an older graph.
func TestReadYourWrites(t *testing.T) {
	ls, lts := newTestServer(t, nil)
	_, fts := newFollowerServer(t, lts.URL, ls.store.Epoch(), nil)

	status, data := postJSON(t, lts.URL+"/v1/graph/nodes",
		`{"name": "gina", "authority": 6, "skills": ["matrix"]}`)
	if status != http.StatusCreated {
		t.Fatalf("add node: %d: %s", status, data)
	}
	var mr MutationResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}

	// A satisfied gate: the follower waits (or is already there) and
	// answers at >= the echoed epoch.
	req, _ := http.NewRequest("POST", fts.URL+"/v1/discover", strings.NewReader(discoverBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Authteam-Min-Epoch", fmt.Sprint(mr.Epoch))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gated read: %d: %s", resp.StatusCode, body)
	}
	if out := decodeDiscover(t, body); out.Epoch < mr.Epoch {
		t.Fatalf("gated read answered at epoch %d < min %d", out.Epoch, mr.Epoch)
	}

	// An unreachable gate: a behind follower redirects to the leader
	// rather than serving stale state (short wait bound keeps the test
	// fast).
	_, fts2 := newFollowerServer(t, lts.URL, ls.store.Epoch(), func(cfg *Config) {
		cfg.MinEpochWait = 50 * time.Millisecond
	})
	req2, _ := http.NewRequest("POST", fts2.URL+"/v1/discover", strings.NewReader(discoverBody))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("X-Authteam-Min-Epoch", fmt.Sprint(ls.store.Epoch()+1000))
	resp2, err := noRedirect().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("unreachable gate on follower: %d, want 307", resp2.StatusCode)
	}

	// The same unreachable gate on the leader is a hard 409 — there is
	// nowhere fresher to go.
	ls2, lts2 := newTestServer(t, func(cfg *Config) {
		cfg.MinEpochWait = 50 * time.Millisecond
	})
	req3, _ := http.NewRequest("POST", lts2.URL+"/v1/discover", strings.NewReader(discoverBody))
	req3.Header.Set("Content-Type", "application/json")
	req3.Header.Set("X-Authteam-Min-Epoch", fmt.Sprint(ls2.store.Epoch()+1000))
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusConflict {
		t.Fatalf("unreachable gate on leader: %d, want 409", resp3.StatusCode)
	}

	// A malformed header is the client's fault.
	req4, _ := http.NewRequest("POST", lts.URL+"/v1/discover", strings.NewReader(discoverBody))
	req4.Header.Set("Content-Type", "application/json")
	req4.Header.Set("X-Authteam-Min-Epoch", "banana")
	resp4, err := http.DefaultClient.Do(req4)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp4.Body)
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage min-epoch header: %d, want 400", resp4.StatusCode)
	}
}

// TestFollowerCatchUpAcrossFold restarts a follower after the leader
// has folded its journal past the follower's epoch: the restart must
// adopt the leader's base and converge instead of erroring on the
// compacted gap.
func TestFollowerCatchUpAcrossFold(t *testing.T) {
	dir := t.TempDir()
	ls, lts := newTestServer(t, func(cfg *Config) {
		cfg.JournalPath = filepath.Join(dir, "leader.wal")
	})

	fdir := t.TempDir()
	fcfg := func(cfg *Config) { cfg.JournalPath = filepath.Join(fdir, "follower.wal") }
	fs, _ := newFollowerServer(t, lts.URL, ls.store.Epoch(), fcfg)
	behind := fs.store.Epoch()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// While the follower is down: churn, fold, churn, fold — two folds
	// push the retained window past the follower.
	rng := rand.New(rand.NewSource(80))
	churn := func(n int) {
		for i := 0; i < n; i++ {
			postJSON(t, lts.URL+"/v1/graph/nodes",
				fmt.Sprintf(`{"name": "n%d", "authority": %d, "skills": ["analytics"]}`, i, 1+rng.Intn(9)))
		}
	}
	churn(8)
	if _, err := ls.store.Compact(); err != nil {
		t.Fatal(err)
	}
	churn(8)
	if _, err := ls.store.Compact(); err != nil {
		t.Fatal(err)
	}
	churn(4)
	if _, ok := ls.store.Snapshot().MutationsSince(behind); ok {
		t.Fatal("test setup: follower epoch still inside the leader's retained window")
	}

	fs2, fts2 := newFollowerServer(t, lts.URL, ls.store.Epoch(), fcfg)
	defer fs2.Close()

	want, _ := json.Marshal(discoverAt(t, lts.URL))
	got, _ := json.Marshal(discoverAt(t, fts2.URL))
	if string(want) != string(got) {
		t.Fatalf("post-fold follower answer differs:\nleader   %s\nfollower %s", want, got)
	}
	st := getStats(t, fts2.URL)
	if st.Replication.Follower == nil || st.Replication.Follower.BaseFetches < 1 {
		t.Fatalf("fold catch-up did not fetch the base: %+v", st.Replication)
	}
	if st.Live.BaseAdoptions < 1 {
		t.Fatalf("fold catch-up did not adopt the base: %+v", st.Live)
	}
}

// tearingProxy forwards to target but cuts /v1/journal/tail response
// bodies mid-stream every other request, exercising the follower's
// torn-tail handling over real HTTP.
func tearingProxy(t *testing.T, target string) *httptest.Server {
	t.Helper()
	var n atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(target + r.URL.RequestURI())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		tear := strings.HasPrefix(r.URL.Path, "/v1/journal/tail") &&
			n.Add(1)%2 == 0 && len(body) > 40
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		if tear {
			// Drop the tail of the body and kill the connection so
			// the follower sees a truncated ndjson stream.
			w.Write(body[:len(body)-25])
			panic(http.ErrAbortHandler)
		}
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFollowerSurvivesTornTail replicates through a proxy that tears
// every other tail response mid-record: the follower must apply each
// intact prefix and converge anyway.
func TestFollowerSurvivesTornTail(t *testing.T) {
	ls, lts := newTestServer(t, nil)
	proxy := tearingProxy(t, lts.URL)

	for i := 0; i < 12; i++ {
		status, data := postJSON(t, lts.URL+"/v1/graph/nodes",
			fmt.Sprintf(`{"name": "t%d", "authority": 5, "skills": ["matrix"]}`, i))
		if status != http.StatusCreated {
			t.Fatalf("add node: %d: %s", status, data)
		}
	}

	fs, fts := newFollowerServer(t, proxy.URL, ls.store.Epoch(), nil)
	want, _ := json.Marshal(discoverAt(t, lts.URL))
	got, _ := json.Marshal(discoverAt(t, fts.URL))
	if string(want) != string(got) {
		t.Fatalf("follower behind tearing proxy differs:\nleader   %s\nfollower %s", want, got)
	}
	if fs.store.Epoch() != ls.store.Epoch() {
		t.Fatalf("follower epoch %d, leader %d", fs.store.Epoch(), ls.store.Epoch())
	}
}

// TestReplicationSoak is the end-to-end race-shard test: a leader with
// a fast background compactor under a continuous write stream, a
// follower bootstrapped from nothing over HTTP, and concurrent gated
// reads on the follower asserting read-your-writes while folds move
// the log underneath it.
func TestReplicationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	dir := t.TempDir()
	ls, lts := newTestServer(t, func(cfg *Config) {
		cfg.JournalPath = filepath.Join(dir, "leader.wal")
		cfg.CompactThreshold = 200
		cfg.CompactInterval = 50 * time.Millisecond
	})
	// Seed one write so the catch-up wait is for a non-zero epoch —
	// WaitEpoch(0) is trivially true on a not-yet-bootstrapped store.
	if status, data := postJSON(t, lts.URL+"/v1/graph/nodes",
		`{"name": "seed", "authority": 5, "skills": ["analytics"]}`); status != http.StatusCreated {
		t.Fatalf("seed write: %d: %s", status, data)
	}
	fs, fts := newFollowerServer(t, lts.URL, ls.store.Epoch(), nil)
	defer fs.Close()

	const writes = 1500
	var lastEpoch atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: a steady mutation stream against the leader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(81))
		for i := 0; i < writes; i++ {
			var status int
			var data []byte
			switch rng.Intn(4) {
			case 0:
				status, data = postJSON(t, lts.URL+"/v1/graph/nodes",
					fmt.Sprintf(`{"name": "s%d", "authority": %d, "skills": ["s%d"]}`, i, 1+rng.Intn(20), rng.Intn(6)))
			case 1:
				status, data = postJSON(t, lts.URL+"/v1/graph/edges",
					fmt.Sprintf(`{"u": %d, "v": %d, "w": 0.5}`, rng.Intn(5), 5+rng.Intn(3)))
			default:
				status, data = postJSON(t, lts.URL+"/v1/graph/edges",
					fmt.Sprintf(`{"u": %d, "v": %d, "w": %.2f}`, rng.Intn(8), rng.Intn(8), 0.1+0.8*rng.Float64()))
			}
			// Rejections (dup edges, self-loops) are fine; anything
			// else is not.
			if status < 300 {
				var mr MutationResponse
				if err := json.Unmarshal(data, &mr); err == nil && mr.Epoch > lastEpoch.Load() {
					lastEpoch.Store(mr.Epoch)
				}
			} else if status >= 500 {
				t.Errorf("write %d: status %d: %s", i, status, data)
				return
			}
			// Pace the stream so the readers interleave with real
			// epoch churn instead of racing a burst.
			time.Sleep(time.Millisecond)
		}
	}()

	// Readers: gated discovers on the follower echoing the freshest
	// observed epoch — the response must never be older.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				min := lastEpoch.Load()
				req, _ := http.NewRequest("POST", fts.URL+"/v1/discover", strings.NewReader(discoverBody))
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Authteam-Min-Epoch", fmt.Sprint(min))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("gated read: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				// The gate may redirect to the leader if the follower
				// lags past the wait bound; DefaultClient follows it,
				// so a 200 is the only acceptable outcome either way.
				if resp.StatusCode != http.StatusOK {
					t.Errorf("gated read at min %d: status %d: %s", min, resp.StatusCode, body)
					return
				}
				var out DiscoverResponse
				if err := json.Unmarshal(body, &out); err != nil {
					t.Errorf("gated read decode: %v", err)
					return
				}
				if out.Epoch < min {
					t.Errorf("read-your-writes violated: answered at %d, min %d", out.Epoch, min)
					return
				}
			}
		}()
	}

	// Wait for the writer, then let the follower drain.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for lastEpoch.Load() == 0 || ls.store.Epoch() > lastEpoch.Load() {
			time.Sleep(10 * time.Millisecond)
			if t.Failed() {
				return
			}
		}
	}()
	<-writerDone
	waitServerEpoch(t, fs, ls.store.Epoch())
	close(stop)
	<-done
	if t.Failed() {
		t.FailNow()
	}

	// Convergence: byte-identical answers at the same epoch.
	want, _ := json.Marshal(discoverAt(t, lts.URL))
	got, _ := json.Marshal(discoverAt(t, fts.URL))
	if string(want) != string(got) {
		t.Fatalf("soak divergence:\nleader   %s\nfollower %s", want, got)
	}

	// Deterministic repair epilogue: with the burst over, single-epoch
	// deltas must ride the resident cover incrementally — one write,
	// one catch-up, one read, one repair (timing-independent, unlike
	// the counters under the concurrent stream above).
	for i := 0; i < 5; i++ {
		status, data := postJSON(t, lts.URL+"/v1/graph/edges",
			fmt.Sprintf(`{"u": %d, "v": %d, "w": 0.3}`, i, 5+i))
		if status >= 500 {
			t.Fatalf("epilogue write %d: %d: %s", i, status, data)
		}
		waitServerEpoch(t, fs, ls.store.Epoch())
		discoverAt(t, fts.URL)
	}

	lst := getStats(t, lts.URL)
	fst := getStats(t, fts.URL)
	if lst.Live.Compactions < 1 {
		t.Errorf("leader never folded under the soak: %+v", lst.Live.Compactor)
	}
	if fst.Replication.Follower == nil || !fst.Replication.Follower.Running {
		t.Fatalf("follower loop not running at soak end: %+v", fst.Replication)
	}
	if fst.Replication.Follower.Applied == 0 {
		t.Error("follower applied nothing — bootstrap served the whole stream?")
	}
	// The follower's cover must ride the stream incrementally: full
	// rebuilds bounded while repairs land. Reads arriving while a
	// repair holds the build latch fall back to Dijkstra uncounted, so
	// the repair count is wall-clock-bound — assert presence, not rate.
	if fst.Live.IncrementalRepairs < 3 {
		t.Errorf("follower incremental repairs = %d, want a climbing counter", fst.Live.IncrementalRepairs)
	}
	if fst.Live.FullRebuilds > 10 {
		t.Errorf("follower full rebuilds = %d during steady replication, want a flat counter", fst.Live.FullRebuilds)
	}
}
