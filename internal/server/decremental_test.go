package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"authteam/internal/expertgraph"
	"authteam/internal/live"
)

func deleteJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestDecrementalEndpoints drives the DELETE/PATCH graph API end to
// end: edge re-weight, edge removal, node tombstoning, error mapping
// and the epoch-keyed cache invalidation.
func TestDecrementalEndpoints(t *testing.T) {
	s, ts := newTestServer(t, nil)

	// Re-weight dave—carol.
	status, data := patchJSON(t, ts.URL+"/v1/graph/edges", `{"u": 3, "v": 2, "w": 0.35}`)
	if status != http.StatusOK {
		t.Fatalf("patch edge: %d %s", status, data)
	}
	if upd := decodeMutation(t, data); upd.Epoch != 1 || upd.Edges != 5 {
		t.Fatalf("patch edge response: %+v", upd)
	}
	if w, _ := s.Store().Snapshot().View().EdgeWeight(3, 2); w != 0.35 {
		t.Fatalf("re-weight not visible: %v", w)
	}

	// Cache a discover, then remove an edge: the answer must be
	// recomputed at the new epoch, never served from the dead one.
	status, data = postJSON(t, ts.URL+"/v1/discover", `{"skills": ["analytics", "communities"]}`)
	if status != http.StatusOK {
		t.Fatalf("discover: %d %s", status, data)
	}
	if out := decodeDiscover(t, data); out.Epoch != 1 {
		t.Fatalf("discover epoch %d", out.Epoch)
	}
	status, data = deleteJSON(t, ts.URL+"/v1/graph/edges", `{"u": 4, "v": 2}`)
	if status != http.StatusOK {
		t.Fatalf("delete edge: %d %s", status, data)
	}
	if del := decodeMutation(t, data); del.Epoch != 2 || del.Edges != 4 {
		t.Fatalf("delete edge response: %+v", del)
	}
	status, data = postJSON(t, ts.URL+"/v1/discover", `{"skills": ["analytics", "communities"]}`)
	if status != http.StatusOK {
		t.Fatalf("discover after delete: %d %s", status, data)
	}
	if out := decodeDiscover(t, data); out.Epoch != 2 || out.Cached {
		t.Fatalf("post-removal discover served epoch %d (cached=%v), want fresh epoch 2", out.Epoch, out.Cached)
	}

	// Tombstone erin: her edges go with her and she stops being
	// discoverable; her ID answers 410 Gone from then on.
	status, data = deleteJSON(t, ts.URL+"/v1/graph/nodes/4", ``)
	if status != http.StatusOK {
		t.Fatalf("delete node: %d %s", status, data)
	}
	del := decodeMutation(t, data)
	if del.Epoch != 3 || del.Nodes != 5 || del.Edges != 3 {
		t.Fatalf("delete node response: %+v", del)
	}
	if v := s.Store().Snapshot().View(); v.ValidNode(4) || v.Degree(4) != 0 {
		t.Fatal("tombstoned node still live")
	}
	status, data = postJSON(t, ts.URL+"/v1/discover", `{"skills": ["analytics"]}`)
	if status != http.StatusOK {
		t.Fatalf("discover after tombstone: %d %s", status, data)
	}
	for _, tm := range decodeDiscover(t, data).Teams {
		for _, m := range tm.Members {
			if m.Name == "erin" {
				t.Fatal("tombstoned expert still discovered")
			}
		}
	}

	// Error mapping.
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"DELETE", "/v1/graph/edges", `{"u": 0, "v": 2}`, http.StatusNotFound},  // no such edge
		{"DELETE", "/v1/graph/edges", `{"u": 0, "v": 99}`, http.StatusNotFound}, // no such node
		{"PATCH", "/v1/graph/edges", `{"u": 0, "v": 2, "w": 1}`, http.StatusNotFound},
		{"PATCH", "/v1/graph/edges", `{"u": 0, "v": 3, "w": -1}`, http.StatusBadRequest},
		{"PATCH", "/v1/graph/edges", `{"u": 0, "v": 3, "w": 0.3}`, http.StatusBadRequest}, // no-op re-weight
		{"DELETE", "/v1/graph/nodes/4", ``, http.StatusGone},                              // already tombstoned
		{"DELETE", "/v1/graph/nodes/99", ``, http.StatusNotFound},
		{"DELETE", "/v1/graph/nodes/xyz", ``, http.StatusBadRequest},
		{"PATCH", "/v1/graph/nodes/4", `{"authority": 9}`, http.StatusGone},
		{"POST", "/v1/graph/edges", `{"u": 4, "v": 0, "w": 0.5}`, http.StatusGone},
		{"DELETE", "/v1/graph/edges", `{"u": 4, "v": 0}`, http.StatusGone},
		{"PATCH", "/v1/graph/edges", `{"u": 4, "v": 0, "w": 0.5}`, http.StatusGone},
	} {
		var status int
		var data []byte
		switch tc.method {
		case "POST":
			status, data = postJSON(t, ts.URL+tc.path, tc.body)
		case "PATCH":
			status, data = patchJSON(t, ts.URL+tc.path, tc.body)
		default:
			status, data = deleteJSON(t, ts.URL+tc.path, tc.body)
		}
		if status != tc.want {
			t.Errorf("%s %s %s: status %d, want %d (%s)", tc.method, tc.path, tc.body, status, tc.want, data)
		}
	}

	// Mutation counters: /stats reports the new ops and kinds.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := decodeInto(t, resp.Body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Live.EdgesRemoved != 1 || stats.Live.NodesRemoved != 1 || stats.Live.EdgesUpdated != 1 {
		t.Errorf("live counters: %+v", stats.Live.Counters)
	}
	for _, op := range []string{"remove_edge", "remove_node", "update_edge"} {
		if stats.ByOp[op] != 1 {
			t.Errorf("by_op[%s] = %d, want 1", op, stats.ByOp[op])
		}
	}
	if stats.MutationErrors == 0 {
		t.Error("rejected mutations not counted")
	}
}

func decodeInto(t *testing.T, r io.Reader, dst any) error {
	t.Helper()
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, dst)
}

// TestMixedChurnRepairsNotRebuilds is the acceptance criterion of the
// fully dynamic cover at the serving layer: over a randomized
// in-bounds insert/remove/re-weight/authority stream, every delta is
// absorbed by incremental repair — full_rebuilds stays at its warmup
// value — and the decremental/reweight repair kinds are the ones doing
// the absorbing.
func TestMixedChurnRepairsNotRebuilds(t *testing.T) {
	// Bounds-pinned graph: sentinel extremes the churn never touches,
	// so the weighted γ index stays repairable for every delta.
	b := expertgraph.NewBuilder(22, 60)
	for i := 0; i < 20; i++ {
		b.AddNode(fmt.Sprintf("e%d", i), 2+float64(i), "s", fmt.Sprintf("k%d", i%4))
	}
	lo := b.AddNode("pin-lo", 1, "s")
	hi := b.AddNode("pin-hi", 1000, "s")
	b.AddEdge(lo, hi, 0.01)
	b.AddEdge(lo, 0, 5.0)
	for i := 1; i < 20; i++ {
		b.AddEdge(expertgraph.NodeID(i-1), expertgraph.NodeID(i), 0.2+0.02*float64(i))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.Graph = g
		cfg.WarmIndex = true
	})
	warm := s.indexes.stats().rebuilds

	rng := rand.New(rand.NewSource(91))
	store := s.Store()
	discover := func() {
		status, data := postJSON(t, ts.URL+"/v1/discover", `{"skills": ["k0", "k1", "k2"], "method": "sa-ca-cc"}`)
		if status != http.StatusOK {
			t.Fatalf("discover: %d %s", status, data)
		}
	}
	discover()

	for round := 0; round < 25; round++ {
		// A small in-bounds delta of mixed kinds, then a discover that
		// must absorb it by repair.
		for i := 0; i < 3; i++ {
			switch rng.Intn(5) {
			case 0:
				u, v := expertgraph.NodeID(rng.Intn(20)), expertgraph.NodeID(rng.Intn(20))
				if u != v {
					_, _ = store.AddCollaboration(u, v, 0.3+0.4*rng.Float64())
				}
			case 1:
				if u, v, ok := randomStoreEdge(rng, store, 20); ok {
					_, _ = store.RemoveCollaboration(u, v)
				}
			case 2:
				if u, v, ok := randomStoreEdge(rng, store, 20); ok {
					_, _ = store.UpdateCollaboration(u, v, 0.3+0.4*rng.Float64())
				}
			case 3: // in-bounds authority move
				auth := 3 + float64(rng.Intn(500))
				_, _ = store.UpdateExpert(expertgraph.NodeID(rng.Intn(20)), &auth, nil)
			default: // value-unchanged authority update (must be skipped, not rebuilt)
				u := expertgraph.NodeID(rng.Intn(20))
				same := store.Snapshot().View().Authority(u)
				_, _ = store.UpdateExpert(u, &same, nil)
			}
		}
		discover()
	}

	ixs := s.indexes.stats()
	if ixs.rebuilds != warm {
		t.Errorf("full_rebuilds moved under mixed churn: %d, want warmup value %d", ixs.rebuilds, warm)
	}
	if ixs.repairs == 0 || ixs.repairsDecremental == 0 {
		t.Errorf("repairs did not absorb the stream: %+v", ixs)
	}
	if ixs.pending {
		t.Error("async rebuild pending under mixed churn")
	}
}

// TestExtremeRetirementChurnRepairsNotRebuilds pins the covering-bounds
// fix at the serving layer: a churn stream that *deliberately* retires
// the current extremes every round — removing the max-weight edge,
// re-authoring or tombstoning the expert holding the max inverse
// authority — used to move the tight normalization bounds and force a
// full weighted rebuild per round. Covering bounds never shrink, so
// every one of these deltas must now be absorbed by decremental repair
// with full_rebuilds flat at its warmup value.
func TestExtremeRetirementChurnRepairsNotRebuilds(t *testing.T) {
	// No sentinel pins: the extremes are live values the churn retires.
	b := expertgraph.NewBuilder(24, 60)
	for i := 0; i < 24; i++ {
		b.AddNode(fmt.Sprintf("e%d", i), 2+float64(i), "s", fmt.Sprintf("k%d", i%4))
	}
	for i := 1; i < 24; i++ {
		b.AddEdge(expertgraph.NodeID(i-1), expertgraph.NodeID(i), 0.2+0.02*float64(i))
	}
	for i := 0; i < 12; i++ {
		b.AddEdge(expertgraph.NodeID(i), expertgraph.NodeID(i+12), 0.3+0.01*float64(i))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.Graph = g
		cfg.WarmIndex = true
	})
	warm := s.indexes.stats().rebuilds
	store := s.Store()
	discover := func() {
		status, data := postJSON(t, ts.URL+"/v1/discover", `{"skills": ["k0", "k1", "k2"], "method": "sa-ca-cc"}`)
		if status != http.StatusOK {
			t.Fatalf("discover: %d %s", status, data)
		}
	}
	discover()

	for round := 0; round < 12; round++ {
		v := store.Snapshot().View()

		// Retire the edge holding the current max weight.
		var mu, mv expertgraph.NodeID
		mw := -1.0
		for u := 0; u < v.NumNodes(); u++ {
			v.Neighbors(expertgraph.NodeID(u), func(w expertgraph.NodeID, wt float64) bool {
				if expertgraph.NodeID(u) < w && wt > mw {
					mu, mv, mw = expertgraph.NodeID(u), w, wt
				}
				return true
			})
		}
		if mw >= 0 {
			if _, err := store.RemoveCollaboration(mu, mv); err != nil {
				t.Fatalf("round %d: remove max edge: %v", round, err)
			}
		}

		// Retire the expert holding the current max inverse authority
		// (lowest authority): re-author most rounds, tombstone some.
		lowest, lowAuth := expertgraph.NodeID(-1), 1e18
		for u := 0; u < v.NumNodes(); u++ {
			id := expertgraph.NodeID(u)
			if !v.ValidNode(id) {
				continue
			}
			if a := v.Authority(id); a < lowAuth {
				lowest, lowAuth = id, a
			}
		}
		if round%5 == 2 {
			if _, err := store.RemoveExpert(lowest); err != nil {
				t.Fatalf("round %d: tombstone extreme expert: %v", round, err)
			}
		} else {
			// Strictly inside the covering authority range (2, 25].
			mid := 12 + 0.1*float64(round)
			if _, err := store.UpdateExpert(lowest, &mid, nil); err != nil {
				t.Fatalf("round %d: re-author extreme expert: %v", round, err)
			}
		}
		discover()
	}

	ixs := s.indexes.stats()
	if ixs.rebuilds != warm {
		t.Errorf("full_rebuilds moved under extreme-retirement churn: %d, want warmup value %d", ixs.rebuilds, warm)
	}
	if ixs.repairsDecremental == 0 {
		t.Errorf("decremental repairs did not absorb the stream: %+v", ixs)
	}
	if ixs.pending {
		t.Error("async rebuild pending under extreme-retirement churn")
	}
}

// randomStoreEdge picks a random edge among the first n nodes (the
// churn population; sentinel extremes are excluded).
func randomStoreEdge(rng *rand.Rand, store *live.Store, n int) (expertgraph.NodeID, expertgraph.NodeID, bool) {
	v := store.Snapshot().View()
	start := rng.Intn(n)
	for off := 0; off < n; off++ {
		u := expertgraph.NodeID((start + off) % n)
		var pick expertgraph.NodeID
		found := false
		v.Neighbors(u, func(w expertgraph.NodeID, _ float64) bool {
			if int(w) < n {
				pick, found = w, true
				return rng.Intn(3) != 0 // keep scanning sometimes, for variety
			}
			return true
		})
		if found {
			return u, pick, true
		}
	}
	return 0, 0, false
}
