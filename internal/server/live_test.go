package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"authteam/internal/expertgraph"
)

func patchJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decodeMutation(t *testing.T, data []byte) MutationResponse {
	t.Helper()
	var out MutationResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	return out
}

func TestMutationEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// Add a node.
	status, data := postJSON(t, ts.URL+"/v1/graph/nodes",
		`{"name": "frank", "authority": 20, "skills": ["analytics", "golang"]}`)
	if status != http.StatusCreated {
		t.Fatalf("add node: %d %s", status, data)
	}
	add := decodeMutation(t, data)
	if add.Epoch != 1 || add.ID == nil || int(*add.ID) != 5 || add.Nodes != 6 {
		t.Fatalf("add node response: %+v", add)
	}

	// Wire it in.
	status, data = postJSON(t, ts.URL+"/v1/graph/edges",
		fmt.Sprintf(`{"u": %d, "v": 3, "w": 0.25}`, *add.ID))
	if status != http.StatusCreated {
		t.Fatalf("add edge: %d %s", status, data)
	}
	edge := decodeMutation(t, data)
	if edge.Epoch != 2 || edge.Edges != 6 {
		t.Fatalf("add edge response: %+v", edge)
	}

	// Update authority and grant a skill.
	status, data = patchJSON(t, ts.URL+fmt.Sprintf("/v1/graph/nodes/%d", *add.ID),
		`{"authority": 31, "add_skills": ["matrix"]}`)
	if status != http.StatusOK {
		t.Fatalf("patch node: %d %s", status, data)
	}
	if upd := decodeMutation(t, data); upd.Epoch != 3 {
		t.Fatalf("patch response: %+v", upd)
	}

	// The new expert is immediately discoverable (read-your-writes).
	status, data = postJSON(t, ts.URL+"/v1/discover", `{"skills": ["golang"]}`)
	if status != http.StatusOK {
		t.Fatalf("discover: %d %s", status, data)
	}
	out := decodeDiscover(t, data)
	if out.Epoch != 3 {
		t.Errorf("discover epoch %d, want 3", out.Epoch)
	}
	if len(out.Teams) == 0 || out.Teams[0].Members[0].Name != "frank" {
		t.Errorf("expected frank, got %+v", out.Teams)
	}
	if out.Teams[0].Members[0].Authority != 31 {
		t.Errorf("patched authority not visible: %+v", out.Teams[0].Members[0])
	}

	// Error mapping.
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/graph/nodes", `{"name": "", "authority": 3}`, http.StatusBadRequest},
		{"POST", "/v1/graph/edges", `{"u": 0, "v": 0, "w": 1}`, http.StatusBadRequest},
		{"POST", "/v1/graph/edges", `{"u": 0, "v": 99, "w": 1}`, http.StatusNotFound},
		{"POST", "/v1/graph/edges", `{"u": 5, "v": 3, "w": 0.5}`, http.StatusConflict},
		{"POST", "/v1/graph/edges", `{"u": 0, "v": 2, "w": -1}`, http.StatusBadRequest},
		{"PATCH", "/v1/graph/nodes/99", `{"authority": 3}`, http.StatusNotFound},
		{"PATCH", "/v1/graph/nodes/xyz", `{"authority": 3}`, http.StatusBadRequest},
		{"PATCH", "/v1/graph/nodes/1", `{}`, http.StatusBadRequest},
	} {
		var status int
		var data []byte
		if tc.method == "POST" {
			status, data = postJSON(t, ts.URL+tc.path, tc.body)
		} else {
			status, data = patchJSON(t, ts.URL+tc.path, tc.body)
		}
		if status != tc.want {
			t.Errorf("%s %s %s: status %d, want %d (%s)", tc.method, tc.path, tc.body, status, tc.want, data)
		}
	}
}

// TestCacheInvalidationOnMutation is the epoch-keyed cache acceptance
// check: a cached discover result must not be served after a mutation
// that touches a required skill's C(s) set.
func TestCacheInvalidationOnMutation(t *testing.T) {
	s, ts := newTestServer(t, nil)
	query := `{"skills": ["matrix"], "method": "sa-ca-cc"}`

	_, data := postJSON(t, ts.URL+"/v1/discover", query)
	first := decodeDiscover(t, data)
	if first.Cached || first.Epoch != 0 {
		t.Fatalf("first response: cached=%v epoch=%d", first.Cached, first.Epoch)
	}
	_, data = postJSON(t, ts.URL+"/v1/discover", query)
	if second := decodeDiscover(t, data); !second.Cached {
		t.Fatal("identical repeat not served from cache")
	}

	// Grow C(matrix): a superstar holder directly beside the old team.
	status, data := postJSON(t, ts.URL+"/v1/graph/nodes",
		`{"name": "grace", "authority": 100, "skills": ["matrix"]}`)
	if status != http.StatusCreated {
		t.Fatalf("add node: %d %s", status, data)
	}
	id := *decodeMutation(t, data).ID
	if status, data = postJSON(t, ts.URL+"/v1/graph/edges",
		fmt.Sprintf(`{"u": %d, "v": 3, "w": 0.05}`, id)); status != http.StatusCreated {
		t.Fatalf("add edge: %d %s", status, data)
	}

	_, data = postJSON(t, ts.URL+"/v1/discover", query)
	third := decodeDiscover(t, data)
	if third.Cached {
		t.Fatal("mutation-stale result served from cache")
	}
	if third.Epoch != 2 {
		t.Errorf("post-mutation epoch %d, want 2", third.Epoch)
	}
	holders := map[string]bool{}
	for _, tm := range third.Teams {
		for _, m := range tm.Members {
			holders[m.Name] = true
		}
	}
	if !holders["grace"] {
		t.Errorf("new C(matrix) member ignored; teams: %s", data)
	}
	// The old epoch's entry must not resurface afterwards either.
	_, data = postJSON(t, ts.URL+"/v1/discover", query)
	if again := decodeDiscover(t, data); !again.Cached || again.Epoch != 2 {
		t.Errorf("epoch-2 result not re-cached: cached=%v epoch=%d", again.Cached, again.Epoch)
	}
	// The mutations evicted the dead epoch-0 entry eagerly — only the
	// live epoch's entry may remain, and the eviction is counted.
	if cs := s.cache.Stats(); cs.Size != 1 || cs.EpochEvictions == 0 {
		t.Errorf("dead-epoch entry not eagerly evicted: size=%d evictions_epoch=%d",
			cs.Size, cs.EpochEvictions)
	}
}

// TestIncrementalRepairServesNewEpoch drives the index-maintenance
// path: after warm-building the default-γ index, an in-bounds edge
// insertion must be absorbed by incremental repair (not a rebuild) and
// immediately answered from the repaired index.
func TestIncrementalRepairServesNewEpoch(t *testing.T) {
	s, ts := newTestServer(t, func(cfg *Config) { cfg.WarmIndex = true })
	if ixs := s.indexes.stats(); ixs.rebuilds != 1 {
		t.Fatalf("warm build count %d", ixs.rebuilds)
	}

	// alice—carol at weight 0.35 stays inside the base weight bounds
	// [0.2, 0.9] and adds no authority extreme, so the γ index is
	// repairable in place.
	if status, data := postJSON(t, ts.URL+"/v1/graph/edges", `{"u": 0, "v": 2, "w": 0.35}`); status != http.StatusCreated {
		t.Fatalf("add edge: %d %s", status, data)
	}
	_, data := postJSON(t, ts.URL+"/v1/discover",
		`{"skills": ["analytics", "matrix", "communities"], "method": "sa-ca-cc", "k": 2}`)
	out := decodeDiscover(t, data)
	if out.Epoch != 1 {
		t.Fatalf("epoch %d", out.Epoch)
	}
	ixs := s.indexes.stats()
	if ixs.pending || ixs.repairs != 1 || ixs.rebuilds != 1 {
		t.Errorf("maintenance counters: pending=%v repairs=%d rebuilds=%d", ixs.pending, ixs.repairs, ixs.rebuilds)
	}

	// An authority update is not incrementally repairable for the γ
	// index: the next discover kicks an async rebuild and still
	// answers (via Dijkstra fallback) at the right epoch.
	if status, data := patchJSON(t, ts.URL+"/v1/graph/nodes/3", `{"authority": 2}`); status != http.StatusOK {
		t.Fatalf("patch: %d %s", status, data)
	}
	_, data = postJSON(t, ts.URL+"/v1/discover",
		`{"skills": ["analytics", "matrix", "communities"], "method": "sa-ca-cc", "k": 2}`)
	if out := decodeDiscover(t, data); out.Epoch != 2 || len(out.Teams) == 0 {
		t.Fatalf("post-update discover: %s", data)
	}
}

// TestJournalRestartIdenticalEpoch is the server-level crash-replay
// check: a restarted daemon replays its journal onto the same base
// graph and resumes at the identical epoch.
func TestJournalRestartIdenticalEpoch(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "wal.jsonl")
	g := builderGraph(t)
	s1, ts1 := newTestServer(t, func(cfg *Config) {
		cfg.Graph = g
		cfg.JournalPath = journal
	})
	status, data := postJSON(t, ts1.URL+"/v1/graph/nodes", `{"name": "zoe", "authority": 8, "skills": ["query"]}`)
	if status != http.StatusCreated {
		t.Fatalf("add: %d %s", status, data)
	}
	id := *decodeMutation(t, data).ID
	if status, data = postJSON(t, ts1.URL+"/v1/graph/edges",
		fmt.Sprintf(`{"u": %d, "v": 0, "w": 0.5}`, id)); status != http.StatusCreated {
		t.Fatalf("edge: %d %s", status, data)
	}
	wantEpoch := s1.Store().Epoch()
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, func(cfg *Config) {
		cfg.Graph = g
		cfg.JournalPath = journal
	})
	if got := s2.Store().Epoch(); got != wantEpoch {
		t.Fatalf("replayed epoch %d, want %d", got, wantEpoch)
	}
	status, data = postJSON(t, ts2.URL+"/v1/discover", `{"skills": ["query"]}`)
	if status != http.StatusOK {
		t.Fatalf("discover after replay: %d %s", status, data)
	}
	out := decodeDiscover(t, data)
	if out.Epoch != wantEpoch || len(out.Teams) == 0 || out.Teams[0].Members[0].Name != "zoe" {
		t.Fatalf("replayed state not served: %s", data)
	}
	var health HealthResponse
	if _, body := getBody(t, ts2.URL+"/healthz"); true {
		if err := json.Unmarshal(body, &health); err != nil {
			t.Fatal(err)
		}
	}
	if health.Epoch != wantEpoch {
		t.Errorf("healthz epoch %d, want %d", health.Epoch, wantEpoch)
	}
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestConcurrentMutateAndDiscover hammers the daemon with concurrent
// readers and one mutating writer; every response must be well-formed
// and belong to a monotonically advancing epoch. Run under -race.
func TestConcurrentMutateAndDiscover(t *testing.T) {
	_, ts := newTestServer(t, nil)
	const writes = 120

	var (
		wg       sync.WaitGroup
		done     atomic.Bool
		failures atomic.Int64
	)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for !done.Load() {
				status, data := postJSON(t, ts.URL+"/v1/discover",
					`{"skills": ["analytics", "matrix"], "method": "ca-cc"}`)
				if status != http.StatusOK {
					t.Errorf("discover: %d %s", status, data)
					failures.Add(1)
					return
				}
				out := decodeDiscover(t, data)
				if out.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", out.Epoch, lastEpoch)
					failures.Add(1)
					return
				}
				lastEpoch = out.Epoch
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < writes; i++ {
			status, data := postJSON(t, ts.URL+"/v1/graph/nodes",
				fmt.Sprintf(`{"name": "w%d", "authority": %d, "skills": ["analytics"]}`, i, 1+i%20))
			if status != http.StatusCreated {
				t.Errorf("add node %d: %d %s", i, status, data)
				failures.Add(1)
				return
			}
			id := *decodeMutation(t, data).ID
			if status, data = postJSON(t, ts.URL+"/v1/graph/edges",
				fmt.Sprintf(`{"u": %d, "v": %d, "w": 0.4}`, id, i%5)); status != http.StatusCreated {
				t.Errorf("add edge %d: %d %s", i, status, data)
				failures.Add(1)
				return
			}
		}
	}()
	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}

	status, data := getBody(t, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	var stats StatsResponse
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Live.Epoch != 2*writes || stats.Live.NodesAdded != writes || stats.Live.EdgesAdded != writes {
		t.Errorf("live stats: %+v", stats.Live)
	}
	if stats.Mutations != 2*writes {
		t.Errorf("mutation counter %d, want %d", stats.Mutations, 2*writes)
	}
	if stats.ByOp["add_node"] != writes || stats.ByOp["add_edge"] != writes {
		t.Errorf("by-op counters: %v", stats.ByOp)
	}
}

// TestStatsLiveSection checks the /stats live payload shape on a quiet
// server.
func TestStatsLiveSection(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "wal.jsonl")
	_, ts := newTestServer(t, func(cfg *Config) { cfg.JournalPath = journal })

	if status, data := postJSON(t, ts.URL+"/v1/graph/edges", `{"u": 0, "v": 2, "w": 0.35}`); status != http.StatusCreated {
		t.Fatalf("edge: %d %s", status, data)
	}
	_, data := getBody(t, ts.URL+"/stats")
	var stats StatsResponse
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	l := stats.Live
	if l.Epoch != 1 || l.JournalRecords != 1 || l.JournalBytes == 0 {
		t.Errorf("journal stats: %+v", l)
	}
	if l.EdgesAdded != 1 || l.PendingRebuild {
		t.Errorf("live stats: %+v", l)
	}
	if !bytes.Contains(data, []byte(`"pending_rebuild"`)) {
		t.Error("pending_rebuild missing from payload")
	}
}

// TestPersistedIndexRepairedAcrossRestart is the regression test for a
// subtle staleness hazard: an index persisted at epoch E must not be
// adopted verbatim by a restarted daemon whose journal replays past E.
// The epoch sidecar anchors the file and the load path repairs it
// across the journal delta (or discards it).
func TestPersistedIndexRepairedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.bin")
	journal := filepath.Join(dir, "wal.jsonl")
	if err := expertgraph.SaveFile(graphPath, builderGraph(t)); err != nil {
		t.Fatal(err)
	}

	s1, err := New(Config{GraphPath: graphPath, JournalPath: journal, WarmIndex: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The warm build persisted the γ index at epoch 0. Mutate past it:
	// an in-bounds edge the persisted file knows nothing about.
	if _, err := s1.Store().AddCollaboration(0, 2, 0.35); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: journal replays to epoch 1; the epoch-0 index file must
	// be repaired across the delta during the warm load.
	s2, err := New(Config{GraphPath: graphPath, JournalPath: journal, WarmIndex: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Store().Epoch(); got != 1 {
		t.Fatalf("replayed epoch %d", got)
	}
	if ixs := s2.indexes.stats(); ixs.repairs != 1 {
		t.Fatalf("expected the loaded index to be repaired, repairs=%d", ixs.repairs)
	}

	// The repaired index must agree with a from-scratch server on the
	// same mutated graph.
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	fresh, err := New(Config{Graph: s2.Graph(), NoPersistIndex: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tsFresh := httptest.NewServer(fresh.Handler())
	defer tsFresh.Close()
	body := `{"skills": ["analytics", "matrix", "communities"], "method": "sa-ca-cc", "k": 2}`
	_, repairedData := postJSON(t, ts2.URL+"/v1/discover", body)
	_, freshData := postJSON(t, tsFresh.URL+"/v1/discover", body)
	a, b := decodeDiscover(t, repairedData), decodeDiscover(t, freshData)
	aj, _ := json.Marshal(a.Teams)
	bj, _ := json.Marshal(b.Teams)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("repaired-index teams differ from fresh build:\n%s\nvs\n%s", aj, bj)
	}
}

// TestDiscoverZeroMaterializations is the serving-side acceptance
// check of the overlay read path: discovers on freshly mutated epochs
// must not materialize a single graph. The mutation stream stays
// inside the repairable envelope (in-bounds edge insertions), so the
// index is carried forward incrementally and even the index path never
// copies the graph.
func TestDiscoverZeroMaterializations(t *testing.T) {
	s, ts := newTestServer(t, func(cfg *Config) { cfg.WarmIndex = true })
	if got := s.store.Materializations(); got != 0 {
		t.Fatalf("%d materializations after warm start, want 0 (base epoch serves the base graph)", got)
	}

	edges := []string{
		`{"u": 0, "v": 2, "w": 0.35}`,
		`{"u": 1, "v": 4, "w": 0.45}`,
		`{"u": 0, "v": 1, "w": 0.55}`,
	}
	for i, e := range edges {
		if status, data := postJSON(t, ts.URL+"/v1/graph/edges", e); status != http.StatusCreated {
			t.Fatalf("add edge: %d %s", status, data)
		}
		_, data := postJSON(t, ts.URL+"/v1/discover",
			`{"skills": ["analytics", "matrix", "communities"], "method": "sa-ca-cc", "k": 2}`)
		out := decodeDiscover(t, data)
		if out.Epoch != uint64(i+1) {
			t.Fatalf("discover after edge %d served epoch %d", i, out.Epoch)
		}
		if len(out.Teams) == 0 {
			t.Fatalf("no teams: %s", data)
		}
	}
	if got := s.store.Materializations(); got != 0 {
		t.Fatalf("%d materializations while serving a write-heavy stream, want 0", got)
	}

	// /stats surfaces the counter (and the epoch eviction counter).
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Live.Materializations != 0 {
		t.Fatalf("stats report %d materializations", stats.Live.Materializations)
	}
	if ixs := s.indexes.stats(); ixs.pending || ixs.repairs == 0 {
		t.Fatalf("expected incremental repairs to carry the index (pending=%v repairs=%d)", ixs.pending, ixs.repairs)
	}
}

// TestBackgroundCompactorServing runs the daemon with the background
// compactor enabled under a sustained mutation stream: folds must
// happen while serving (no restart), each one re-basing the in-memory
// store so the resident log stays bounded, and discovery must keep
// answering correctly — including via incrementally repaired indexes
// whose anchors predate a re-base.
func TestBackgroundCompactorServing(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "wal.jsonl")
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.JournalPath = journal
		cfg.CompactInterval = time.Millisecond
		cfg.CompactThreshold = 25
		cfg.WarmIndex = true
	})
	defer s.Close()

	const writes = 150
	for i := 0; i < writes; i++ {
		status, data := postJSON(t, ts.URL+"/v1/graph/nodes",
			fmt.Sprintf(`{"name": "c%d", "authority": %d, "skills": ["matrix"]}`, i, 1+i%15))
		if status != http.StatusCreated {
			t.Fatalf("add node %d: %d %s", i, status, data)
		}
		id := *decodeMutation(t, data).ID
		if status, data = postJSON(t, ts.URL+"/v1/graph/edges",
			fmt.Sprintf(`{"u": %d, "v": %d, "w": 0.3}`, id, i%5)); status != http.StatusCreated {
			t.Fatalf("add edge %d: %d %s", i, status, data)
		}
		// A discover every 8 iterations (16 journal records — under the
		// 25-record fold trigger) keeps each index anchor within one
		// fold generation of the serving epoch, so incremental repair
		// must carry the index across every re-base boundary.
		if i%8 == 0 {
			if status, data := postJSON(t, ts.URL+"/v1/discover",
				`{"skills": ["analytics", "matrix"]}`); status != http.StatusOK {
				t.Fatalf("discover at write %d: %d %s", i, status, data)
			}
		}
	}

	// The stream outpaces the 1ms poll on a loaded runner; give the
	// compactor a bounded window to fold the backlog.
	deadline := time.Now().Add(10 * time.Second)
	for s.store.Compactions() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.store.Compactions() == 0 {
		t.Fatal("background compactor never folded")
	}

	status, data := getBody(t, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	var stats StatsResponse
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	l := stats.Live
	if l.RebaseEpoch == 0 || l.RebaseEpoch != l.BaseEpoch {
		t.Errorf("rebase epoch %d (base %d), want a re-based store", l.RebaseEpoch, l.BaseEpoch)
	}
	if uint64(l.LogLen) != l.Epoch-l.RebaseEpoch {
		t.Errorf("log_len %d, want epoch-rebase_epoch = %d", l.LogLen, l.Epoch-l.RebaseEpoch)
	}
	if l.LogLen >= 2*writes {
		t.Errorf("resident log %d not reset by the re-base", l.LogLen)
	}
	if l.CompactorRuns == 0 || l.Compactor.Runs != l.CompactorRuns {
		t.Errorf("compactor runs: %+v", l.Compactor)
	}
	if l.Compactor.LastFoldMS <= 0 || l.Compactor.LastEpoch == 0 {
		t.Errorf("compactor fold telemetry missing: %+v", l.Compactor)
	}
	for _, field := range []string{`"rebase_epoch"`, `"log_len"`, `"compactor_runs"`, `"last_fold_ms"`} {
		if !bytes.Contains(data, []byte(field)) {
			t.Errorf("%s missing from /stats payload", field)
		}
	}

	// Post-fold serving still answers, at the live epoch, with teams.
	status, data = postJSON(t, ts.URL+"/v1/discover", `{"skills": ["analytics", "matrix"]}`)
	if status != http.StatusOK {
		t.Fatalf("discover after folds: %d %s", status, data)
	}
	out := decodeDiscover(t, data)
	if out.Epoch != 2*writes || len(out.Teams) == 0 {
		t.Fatalf("post-fold discover: epoch %d teams %d", out.Epoch, len(out.Teams))
	}
	// Incremental repair — not full rebuilds — carried the index
	// through the re-bases (anchors stayed within the one-generation
	// MutationsSince window the re-base retains).
	if ixs := s.indexes.stats(); ixs.repairs == 0 {
		t.Error("no incremental repairs across fold boundaries")
	}
}
