package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"authteam/internal/live"
	"authteam/internal/repl"
)

// The journal-as-replication-log endpoints. Every node serves them —
// leaders feed followers, and a follower can relay the same stream to
// followers of its own (fan-out trees) — because they only read the
// store's journal window and base snapshot, never its write path.
//
//	GET /v1/journal/tail?from=E&max=N&wait_ms=T   records after epoch E
//	GET /v1/journal/base                          the fold snapshot
//
// A tail request whose `from` has been compacted away answers 410 Gone
// — the follower must fetch the base and re-anchor. A `from` ahead of
// this node's epoch answers 409 — the follower is talking to a node
// behind itself (a stale relay, or a leader restored from an old
// backup) and must not apply anything from it.

// maxTailBatch caps the records of one tail response regardless of the
// requested max, bounding the response a slow reader pins in memory.
const maxTailBatch = 65536

// maxTailWait caps the server-side long-poll, whatever the client
// asks for.
const maxTailWait = 60 * time.Second

func (s *Server) handleJournalTail(w http.ResponseWriter, r *http.Request) {
	s.tailRequests.Add(1)
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "bad from epoch %q", q.Get("from")))
		return
	}
	max := 4096
	if v := q.Get("max"); v != "" {
		if max, err = strconv.Atoi(v); err != nil || max < 1 {
			writeError(w, errf(http.StatusBadRequest, "bad max %q", v))
			return
		}
	}
	if max > maxTailBatch {
		max = maxTailBatch
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, errf(http.StatusBadRequest, "bad wait_ms %q", v))
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > maxTailWait {
		wait = maxTailWait
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()

	muts, epoch, terr := s.store.TailSince(ctx, from, max)
	switch {
	case terr == nil:
	case errors.Is(terr, live.ErrCompactedEpoch):
		s.tailCompacted.Add(1)
		writeError(w, errf(http.StatusGone,
			"epoch %d is below the retained journal window; fetch /v1/journal/base", from))
		return
	case errors.Is(terr, live.ErrFutureEpoch):
		writeError(w, errf(http.StatusConflict,
			"epoch %d is ahead of this node (at %d)", from, s.store.Epoch()))
		return
	default:
		writeError(w, errf(http.StatusInternalServerError, "%v", terr))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Past this point the stream is committed; a write failure tears
	// the tail mid-record, which the follower-side codec treats as a
	// disconnect (apply the prefix, re-poll), not corruption.
	_ = repl.WriteTail(w, from, epoch, muts)
}

func (s *Server) handleJournalBase(w http.ResponseWriter, r *http.Request) {
	s.baseRequests.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	// Informational only (the stream itself carries the authoritative
	// epoch); a fold racing this handler can make it lag by one.
	w.Header().Set("X-Authteam-Base-Epoch", strconv.FormatUint(s.store.Snapshot().BaseEpoch(), 10))
	if _, err := s.store.WriteBaseTo(w); err != nil {
		// Headers are gone; all we can do is abort the stream so the
		// client sees a tear instead of a truncated-but-200 body.
		panic(http.ErrAbortHandler)
	}
}

// redirectToLeader answers every mutation attempt on a follower: 307
// preserves the method and body, so a client that follows redirects
// lands the same mutation on the leader unchanged.
func (s *Server) redirectToLeader(w http.ResponseWriter, r *http.Request) {
	herr := errf(http.StatusTemporaryRedirect,
		"this node is a read replica; mutations go to the leader at %s", s.cfg.FollowURL)
	herr.location = s.cfg.FollowURL + r.URL.RequestURI()
	writeError(w, herr)
}

// minEpochHeader is the read-your-writes contract: a client echoes the
// epoch of its last mutation response here, and the serving node
// guarantees the read observes at least that epoch (or refuses).
const minEpochHeader = "X-Authteam-Min-Epoch"

// ensureMinEpoch enforces the header on a read. It returns a non-nil
// error when the request must not be served locally: after waiting up
// to MinEpochWait for replication to catch up, a still-behind follower
// redirects the read to the leader and a still-behind leader (client
// knows a future epoch this leader never produced — a restore from an
// old backup, or the wrong endpoint) answers 409.
func (s *Server) ensureMinEpoch(r *http.Request) *httpError {
	v := r.Header.Get(minEpochHeader)
	if v == "" {
		return nil
	}
	min, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return errf(http.StatusBadRequest, "bad %s %q", minEpochHeader, v)
	}
	if s.store.Epoch() >= min {
		return nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MinEpochWait)
	defer cancel()
	if s.store.WaitEpoch(ctx, min) {
		return nil
	}
	if s.cfg.FollowURL != "" {
		herr := errf(http.StatusTemporaryRedirect,
			"replica is at epoch %d, read requires %d; retry at the leader %s",
			s.store.Epoch(), min, s.cfg.FollowURL)
		herr.location = s.cfg.FollowURL + r.URL.RequestURI()
		return herr
	}
	return errf(http.StatusConflict,
		"this node is at epoch %d and will not reach %d; was the write acknowledged elsewhere?",
		s.store.Epoch(), min)
}

// ReplicationStats is the replication section of the /stats payload.
type ReplicationStats struct {
	// Role is "leader" or "follower".
	Role string `json:"role"`
	// Leader is the followed base URL (follower only).
	Leader string `json:"leader,omitempty"`
	// Follower reports the apply loop (follower only).
	Follower *live.FollowerStats `json:"follower,omitempty"`
	// Serving counters for this node's own replication log.
	TailRequests  uint64 `json:"tail_requests"`
	TailCompacted uint64 `json:"tail_compacted"`
	BaseRequests  uint64 `json:"base_requests"`
}

func (s *Server) replicationStats() ReplicationStats {
	rs := ReplicationStats{
		Role:          "leader",
		TailRequests:  s.tailRequests.Load(),
		TailCompacted: s.tailCompacted.Load(),
		BaseRequests:  s.baseRequests.Load(),
	}
	if s.follower != nil {
		rs.Role = "follower"
		rs.Leader = s.cfg.FollowURL
		fs := s.follower.Stats()
		rs.Follower = &fs
	}
	return rs
}
