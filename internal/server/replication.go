package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"authteam/internal/live"
	"authteam/internal/repl"
)

// The journal-as-replication-log endpoints. Every node serves them —
// leaders feed followers, and a follower can relay the same stream to
// followers of its own (fan-out trees) — because they only read the
// store's journal window and base snapshot, never its write path.
//
//	GET /v1/journal/tail?from=E&max=N&wait_ms=T   records after epoch E
//	GET /v1/journal/base                          the fold snapshot
//
// A tail request whose `from` has been compacted away answers 410 Gone
// — the follower must fetch the base and re-anchor. A `from` ahead of
// this node's epoch answers 409 — the follower is talking to a node
// behind itself (a stale relay, or a leader restored from an old
// backup) and must not apply anything from it.
//
// Term fencing (412 + X-Authteam-Term): a requester claiming a term
// below ours AND asking from past our term boundary carries records of
// a superseded lineage — serving it would splice divergent histories,
// so it is fenced and told the current term (its follower loop demotes
// its store). A requester claiming a term above ours proves that WE
// are superseded: a leader self-demotes on the spot (split-brain
// ends at the first post-partition request), and either way the reply
// is a 412 carrying our own, lower term — which the requester reads as
// "source is stale", not as a fence on itself.
//
// With `groups=1` the response frames the batch with group headers so
// the follower applies it as one group commit (see repl wire docs);
// old peers never ask and get the flat stream.

// maxTailBatch caps the records of one tail response regardless of the
// requested max, bounding the response a slow reader pins in memory.
const maxTailBatch = 65536

// maxTailWait caps the server-side long-poll, whatever the client
// asks for.
const maxTailWait = 60 * time.Second

func (s *Server) handleJournalTail(w http.ResponseWriter, r *http.Request) {
	s.tailRequests.Add(1)
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeError(w, errf(http.StatusBadRequest, "bad from epoch %q", q.Get("from")))
		return
	}
	max := 4096
	if v := q.Get("max"); v != "" {
		if max, err = strconv.Atoi(v); err != nil || max < 1 {
			writeError(w, errf(http.StatusBadRequest, "bad max %q", v))
			return
		}
	}
	if max > maxTailBatch {
		max = maxTailBatch
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, errf(http.StatusBadRequest, "bad wait_ms %q", v))
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > maxTailWait {
		wait = maxTailWait
	}

	curTerm := s.store.Term()
	if reqTerm := requestTerm(r); reqTerm != 0 {
		switch {
		case reqTerm > curTerm:
			// The requester is on a newer lineage: this node is the
			// stale one. A leader learns it was superseded right here —
			// before it can feed anyone its dead-end records.
			if s.role.Load() == roleLeader {
				s.demoteSelf(reqTerm)
			}
			writeError(w, fencedErrf(curTerm,
				"this node is on term %d, behind your term %d; it cannot serve your tail", curTerm, reqTerm))
			return
		case reqTerm < curTerm && from > s.store.TermStart():
			// The requester's post-boundary history belongs to a
			// superseded lineage; a tail from there would splice
			// histories. (From at or below the boundary is shared
			// prefix: serving it lets a lagging old-term follower adopt
			// the new term organically from the records.)
			s.fencedRequests.Add(1)
			writeError(w, fencedErrf(curTerm,
				"term %d was superseded by term %d at epoch %d; adopt the new lineage",
				reqTerm, curTerm, s.store.TermStart()))
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()

	muts, epoch, terr := s.store.TailSince(ctx, from, max)
	switch {
	case terr == nil:
	case errors.Is(terr, live.ErrFenced):
		// A demoted store refuses to serve its superseded lineage.
		s.fencedRequests.Add(1)
		writeError(w, fencedErrf(s.store.Term(),
			"this node was fenced by term %d and no longer serves the journal", s.store.Term()))
		return
	case errors.Is(terr, live.ErrCompactedEpoch):
		s.tailCompacted.Add(1)
		writeError(w, errf(http.StatusGone,
			"epoch %d is below the retained journal window; fetch /v1/journal/base", from))
		return
	case errors.Is(terr, live.ErrFutureEpoch):
		writeError(w, errf(http.StatusConflict,
			"epoch %d is ahead of this node (at %d)", from, s.store.Epoch()))
		return
	default:
		writeError(w, errf(http.StatusInternalServerError, "%v", terr))
		return
	}
	// Re-check the fence after the long-poll: this node may have adopted
	// a newer term while the tail waited (organically, from a replicated
	// record), in which case a stale requester asking from past the new
	// boundary must be fenced now — serving the poll's records would
	// splice histories exactly as the pre-poll check prevents. The term
	// is re-read for the response header for the same reason.
	curTerm = s.store.Term()
	if reqTerm := requestTerm(r); reqTerm != 0 && reqTerm < curTerm && from > s.store.TermStart() {
		s.fencedRequests.Add(1)
		writeError(w, fencedErrf(curTerm,
			"term %d was superseded by term %d at epoch %d; adopt the new lineage",
			reqTerm, curTerm, s.store.TermStart()))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Past this point the stream is committed; a write failure tears
	// the tail mid-record, which the follower-side codec treats as a
	// disconnect (apply the prefix, re-poll), not corruption.
	if q.Get("groups") != "" {
		// Batch-aware framing: the whole tail batch is one group, so
		// the follower lands it as a single group commit (one journal
		// append + one epoch publish) instead of len(muts) of each.
		var groups [][]live.Mutation
		if len(muts) > 0 {
			groups = [][]live.Mutation{muts}
		}
		_ = repl.WriteTailGroups(w, from, epoch, curTerm, groups)
		return
	}
	_ = repl.WriteTail(w, from, epoch, curTerm, muts)
}

func (s *Server) handleJournalBase(w http.ResponseWriter, r *http.Request) {
	s.baseRequests.Add(1)
	// syncRole folds the store fence into the role: a relay follower
	// whose replication loop fenced itself (and exited without touching
	// the server role) must refuse here too, or it would seed downstream
	// followers with its divergent suffix — stamped, after Demote raised
	// the term, as if it were the winning lineage. WriteBaseTo below
	// enforces the same fence at the store layer as a backstop.
	if s.syncRole() == roleDemoted {
		// A fenced node must not seed followers with superseded state.
		s.fencedRequests.Add(1)
		writeError(w, fencedErrf(s.store.Term(),
			"this node was fenced by term %d and no longer serves base snapshots", s.store.Term()))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	// Informational only (the stream itself carries the authoritative
	// epoch); a fold racing this handler can make it lag by one.
	w.Header().Set("X-Authteam-Base-Epoch", strconv.FormatUint(s.store.Snapshot().BaseEpoch(), 10))
	if _, err := s.store.WriteBaseTo(w); err != nil {
		// Headers are gone; all we can do is abort the stream so the
		// client sees a tear instead of a truncated-but-200 body.
		panic(http.ErrAbortHandler)
	}
}

// redirectToLeader answers every mutation attempt on a follower: 307
// preserves the method and body, so a client that follows redirects
// lands the same mutation on the leader unchanged.
func (s *Server) redirectToLeader(w http.ResponseWriter, r *http.Request) {
	leader := s.currentLeaderURL()
	herr := errf(http.StatusTemporaryRedirect,
		"this node is a read replica; mutations go to the leader at %s", leader)
	herr.location = leader + r.URL.RequestURI()
	writeError(w, herr)
}

// minEpochHeader is the read-your-writes contract: a client echoes the
// epoch of its last mutation response here, and the serving node
// guarantees the read observes at least that epoch (or refuses).
const minEpochHeader = "X-Authteam-Min-Epoch"

// ensureMinEpoch enforces the header on a read. It returns a non-nil
// error when the request must not be served locally: after waiting up
// to MinEpochWait for replication to catch up, a still-behind follower
// redirects the read to the leader and a still-behind leader (client
// knows a future epoch this leader never produced — a restore from an
// old backup, or the wrong endpoint) answers 409.
func (s *Server) ensureMinEpoch(r *http.Request) *httpError {
	v := r.Header.Get(minEpochHeader)
	if v == "" {
		return nil
	}
	min, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return errf(http.StatusBadRequest, "bad %s %q", minEpochHeader, v)
	}
	if s.store.Epoch() >= min {
		return nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MinEpochWait)
	defer cancel()
	if s.store.WaitEpoch(ctx, min) {
		return nil
	}
	if leader := s.currentLeaderURL(); s.syncRole() == roleFollower && leader != "" {
		herr := errf(http.StatusTemporaryRedirect,
			"replica is at epoch %d, read requires %d; retry at the leader %s",
			s.store.Epoch(), min, leader)
		herr.location = leader + r.URL.RequestURI()
		return herr
	}
	return errf(http.StatusConflict,
		"this node is at epoch %d and will not reach %d; was the write acknowledged elsewhere?",
		s.store.Epoch(), min)
}

// ReplicationStats is the replication section of the /stats payload.
type ReplicationStats struct {
	// Role is "leader", "follower", "promoting" or "demoted" — the live
	// cluster role, not the boot-time configuration.
	Role string `json:"role"`
	// Term and TermStart are the store's fencing token and the epoch
	// its lineage began at.
	Term      uint64 `json:"term"`
	TermStart uint64 `json:"term_start"`
	// Leader is the followed base URL (follower only).
	Leader string `json:"leader,omitempty"`
	// Follower reports the apply loop (follower only).
	Follower *live.FollowerStats `json:"follower,omitempty"`
	// Serving counters for this node's own replication log.
	TailRequests  uint64 `json:"tail_requests"`
	TailCompacted uint64 `json:"tail_compacted"`
	BaseRequests  uint64 `json:"base_requests"`
	// Cluster-role transitions and fences witnessed by this node.
	Promotions     uint64 `json:"promotions"`
	FencedRequests uint64 `json:"fenced_requests"`
}

func (s *Server) replicationStats() ReplicationStats {
	role := s.syncRole()
	rs := ReplicationStats{
		Role:           roleName(role),
		Term:           s.store.Term(),
		TermStart:      s.store.TermStart(),
		TailRequests:   s.tailRequests.Load(),
		TailCompacted:  s.tailCompacted.Load(),
		BaseRequests:   s.baseRequests.Load(),
		Promotions:     s.promotions.Load(),
		FencedRequests: s.fencedRequests.Load(),
	}
	if role == roleFollower {
		rs.Leader = s.currentLeaderURL()
		fs := s.follower.Stats()
		rs.Follower = &fs
	}
	return rs
}
