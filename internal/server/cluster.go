package server

import (
	"net/http"
	"strconv"

	"authteam/internal/repl"
)

// Cluster roles. A server is born leader (no FollowURL) or follower
// (FollowURL set) and can change role while serving:
//
//	          POST /v1/cluster/promote
//	follower ─────────────────────────► promoting ──► leader
//	                                        │(promote failed)
//	                                        ▼
//	leader ───────────────────────────► demoted
//	          (fenced by a newer term)
//
// The states are ordinary int32 codes behind one atomic so every
// request path — mutation dispatch, journal serving, /readyz, /stats,
// metrics — reads the role lock-free and follows it live. Promotion is
// the only multi-step transition (drain → seal → persist term → flip)
// and is serialized by promoteMu; demotion is a single fail-closed
// store + atomic flip that may interrupt a leader mid-stream.
const (
	roleLeader int32 = iota
	roleFollower
	rolePromoting
	roleDemoted
)

func roleName(code int32) string {
	switch code {
	case roleLeader:
		return "leader"
	case roleFollower:
		return "follower"
	case rolePromoting:
		return "promoting"
	default:
		return "demoted"
	}
}

// Role reports the server's current cluster role.
func (s *Server) Role() string { return roleName(s.syncRole()) }

// syncRole reconciles the role atomic with the store's fence and
// returns the current role. The store can be demoted out-of-band —
// most importantly by the follower loop, which fences the store and
// exits when its source proves a newer lineage, without ever touching
// the server — so every role-sensitive path reads the role through
// here: a fenced store IS a demoted node, whatever the atomic last
// said. Without this, a loop-fenced follower would keep role=follower
// forever and, crucially, keep serving /v1/journal/base — seeding
// downstream followers with its divergent suffix stamped under the
// new term, the exact splice fencing exists to prevent.
func (s *Server) syncRole() int32 {
	role := s.role.Load()
	if role == roleDemoted || !s.store.Fenced() {
		return role
	}
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.role.Load() != roleDemoted && s.store.Fenced() {
		s.role.Store(roleDemoted)
	}
	return roleDemoted
}

// currentLeaderURL is the upstream this node redirects mutations to
// while it is a follower ("" once promoted, or on a born leader).
func (s *Server) currentLeaderURL() string {
	if v, ok := s.leaderURL.Load().(string); ok {
		return v
	}
	return ""
}

// handleClusterRole answers GET /v1/cluster/role: the role, term and
// epoch a client needs to find (or re-find) the writer.
func (s *Server) handleClusterRole(w http.ResponseWriter, r *http.Request) {
	role := s.syncRole()
	ri := repl.RoleInfo{
		Role:  roleName(role),
		Term:  s.store.Term(),
		Epoch: s.store.Epoch(),
	}
	if role == roleFollower {
		ri.Leader = s.currentLeaderURL()
	}
	writeJSON(w, http.StatusOK, ri)
}

// PromoteRequest is the body of POST /v1/cluster/promote. Term is
// optional: 0 means "one past my current term", which is correct for
// the common single-failover case; an orchestrator that has seen more
// history can pin a higher term explicitly.
type PromoteRequest struct {
	Term uint64 `json:"term,omitempty"`
}

// PromoteResponse reports a completed promotion: the new term and the
// epoch the follower lineage was sealed at (every epoch ≤ SealedEpoch
// is shared history; everything after is this node's own lineage).
type PromoteResponse struct {
	Role        string `json:"role"`
	Term        uint64 `json:"term"`
	SealedEpoch uint64 `json:"sealed_epoch"`
}

// handleClusterPromote turns a follower into the leader: stop the
// replication loop (draining its in-flight apply), seal the last
// applied epoch, persist the bumped term, then flip the role so the
// mutation routes start applying locally and the journal endpoints
// serve the new lineage. Promoting an already-promoted node is
// idempotent (200 with the current term); promoting a leader-born or
// demoted node is a 409.
func (s *Server) handleClusterPromote(w http.ResponseWriter, r *http.Request) {
	var req PromoteRequest
	if r.ContentLength != 0 {
		if herr := decodeBody(r, &req); herr != nil {
			writeError(w, herr)
			return
		}
	}
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	// Read the role through the fence: a follower whose replication loop
	// was fenced (the loop demotes the store and exits without touching
	// the server) is a demoted node and must not be promotable — its
	// suffix diverged from the lineage that deposed it.
	role := s.role.Load()
	if role != roleDemoted && s.store.Fenced() {
		s.role.Store(roleDemoted)
		role = roleDemoted
	}
	switch role {
	case roleLeader:
		// Already the writer. If this node was promoted earlier the
		// repeat is a retry of a timed-out call; answer what it would
		// have answered.
		writeJSON(w, http.StatusOK, PromoteResponse{
			Role: "leader", Term: s.store.Term(), SealedEpoch: s.store.Epoch(),
		})
		return
	case roleDemoted:
		term := s.store.Term()
		herr := errf(http.StatusConflict, "this node was fenced by term %d; it cannot be promoted", term)
		herr.term = &term
		writeError(w, herr)
		return
	}
	// Reject an unusable explicit term before any side effect: a bad
	// request must not cost the node its follower role (the failure path
	// below demotes, durably).
	if req.Term != 0 {
		if cur := s.store.Term(); req.Term <= cur {
			writeError(w, errf(http.StatusConflict,
				"requested term %d is not beyond the current term %d", req.Term, cur))
			return
		}
	}
	s.role.Store(rolePromoting)
	// Drain: the follower loop finishes (or abandons) its current apply
	// and stops; every epoch it committed is part of the shared prefix
	// we seal below.
	if s.follower != nil {
		s.follower.Stop()
	}
	sealed, err := s.store.Promote(req.Term)
	if err != nil {
		// The follower loop is already stopped and the store may be in
		// an unknown term state: fail closed into demoted — and persist
		// it (store.Demote writes the fence into the journal header), so
		// a restart boots the node back demoted instead of as a healthy
		// follower or leader the operator was told needs attention.
		_ = s.store.Demote(0) // fences in memory even when persisting fails
		s.role.Store(roleDemoted)
		writeError(w, errf(http.StatusInternalServerError, "promote: %v", err))
		return
	}
	s.leaderURL.Store("")
	s.role.Store(roleLeader)
	s.promotions.Add(1)
	writeJSON(w, http.StatusOK, PromoteResponse{
		Role: "leader", Term: s.store.Term(), SealedEpoch: sealed,
	})
}

// demoteSelf fences this node out of the leader role: a request proved
// a newer term exists, so the store is demoted (fail-closed: in-memory
// fence first, then persisted) and the role flips to demoted. Queued
// and future local writes fail with live.ErrFenced; the journal
// endpoints stop serving this superseded lineage.
func (s *Server) demoteSelf(term uint64) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.role.Load() != roleLeader {
		return
	}
	_ = s.store.Demote(term) // Demote fences in memory even when persisting fails
	s.role.Store(roleDemoted)
	s.fencedRequests.Add(1)
}

// requestTerm extracts a peer's term claim from a request: the `term`
// query parameter (tail requests) or the X-Authteam-Term header
// (forwarded mutations). 0 — absent, unparsable, or a peer predating
// cluster roles — claims nothing and is never fenced.
func requestTerm(r *http.Request) uint64 {
	v := r.URL.Query().Get("term")
	if v == "" {
		v = r.Header.Get(repl.TermHeader)
	}
	if v == "" {
		return 0
	}
	t, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return t
}

// fencedErrf builds the 412 reply that tells a peer which term
// rejected it.
func fencedErrf(term uint64, format string, args ...any) *httpError {
	herr := errf(http.StatusPreconditionFailed, format, args...)
	herr.term = &term
	return herr
}

// dispatchMutation wires one mutation route through the role state
// machine: a leader applies locally (after checking the requester's
// term claim — a claim above our own proves we were superseded and
// self-demotes this node before it can split-brain), a follower
// answers a 307 to its leader, a promoting node asks for a retry, and
// a demoted node answers the fence.
func (s *Server) dispatchMutation(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch s.syncRole() {
		case roleLeader:
			if reqTerm := requestTerm(r); reqTerm > s.store.Term() {
				old := s.store.Term()
				s.demoteSelf(reqTerm)
				writeError(w, fencedErrf(s.store.Term(),
					"this node led term %d and was superseded by term %d; re-resolve the leader", old, reqTerm))
				return
			}
			h(w, r)
		case roleFollower:
			s.redirectToLeader(w, r)
		case rolePromoting:
			w.Header().Set("Retry-After", "1")
			writeError(w, errf(http.StatusServiceUnavailable, "promotion in progress; retry shortly"))
		default: // demoted
			s.fencedRequests.Add(1)
			writeError(w, fencedErrf(s.store.Term(),
				"this node was fenced by term %d; re-resolve the leader", s.store.Term()))
		}
	}
}
