// Package stats provides small numeric helpers shared by the team
// discovery algorithms and the experiment harness: means, min–max
// normalization, percentiles and simple accumulators.
//
// Everything operates on float64 slices and is allocation-conscious; the
// helpers never mutate their inputs unless documented otherwise.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs. It panics on an empty slice because a
// minimum of nothing is a programming error, not a data condition.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs (0 for fewer
// than two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Normalize min–max normalizes xs into [0,1] and returns a new slice.
// If all values are equal the result is all zeros (a constant carries no
// ranking information, and zero keeps combined objectives well-defined).
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, hi := Min(xs), Max(xs)
	span := hi - lo
	if span == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / span
	}
	return out
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks. It panics on an empty
// slice or an out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// Percentiles returns the requested percentiles of xs in one pass:
// the input is copied and sorted once, then each rank is interpolated
// from the shared sorted slice. Callers asking for several quantiles
// of the same window (p50/p90/p99 in a stats snapshot) should prefer
// this over repeated Percentile calls, which re-sort per call. Panics
// like Percentile on an empty slice or out-of-range p.
func Percentiles(xs []float64, ps ...float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Percentiles of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// percentileSorted interpolates the p-th percentile of an
// already-sorted, non-empty slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Scaler performs min–max scaling with bounds fixed at construction so
// that the same affine map can be applied to values outside the fitting
// set (e.g. normalizing a path length using graph-wide edge bounds).
type Scaler struct {
	lo, span float64
}

// NewScaler fits a scaler to the given bounds. If hi ≤ lo the scaler
// maps everything to 0 (constant input carries no information).
func NewScaler(lo, hi float64) Scaler {
	if hi <= lo {
		return Scaler{lo: lo, span: 0}
	}
	return Scaler{lo: lo, span: hi - lo}
}

// FitScaler fits a scaler to the min and max of xs.
func FitScaler(xs []float64) Scaler {
	if len(xs) == 0 {
		return Scaler{}
	}
	return NewScaler(Min(xs), Max(xs))
}

// Scale maps x through the scaler. Values outside the fitted range
// extrapolate linearly (they are not clamped), which keeps sums of
// scaled terms additive.
func (s Scaler) Scale(x float64) float64 {
	if s.span == 0 {
		return 0
	}
	return (x - s.lo) / s.span
}

// Bounds reports the fitted (lo, hi) interval.
func (s Scaler) Bounds() (lo, hi float64) {
	return s.lo, s.lo + s.span
}

// Welford is an online mean/variance accumulator (Welford's algorithm),
// useful in benchmarks and long experiment sweeps where storing every
// sample would be wasteful.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds a sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance (0 before two samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
