package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, 2, -4, 4}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); !almostEq(got, c.want) {
				t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); !almostEq(got, 3) {
		t.Errorf("Sum = %v, want 3", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max(nil) did not panic")
		}
	}()
	Max(nil)
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v, want 0", got)
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almostEq(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEq(got[i], want[i]) {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormalizeConstant(t *testing.T) {
	for _, v := range Normalize([]float64{3, 3, 3}) {
		if v != 0 {
			t.Errorf("constant input should normalize to 0, got %v", v)
		}
	}
}

func TestNormalizeDoesNotMutate(t *testing.T) {
	in := []float64{1, 2}
	Normalize(in)
	if in[0] != 1 || in[1] != 2 {
		t.Errorf("Normalize mutated input: %v", in)
	}
}

func TestNormalizeRangeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip pathological float inputs
			}
		}
		out := Normalize(xs)
		for _, v := range out {
			if v < 0 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	if got := Percentile([]float64{42}, 99); got != 42 {
		t.Errorf("Percentile singleton = %v, want 42", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(101) did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestScaler(t *testing.T) {
	s := NewScaler(10, 20)
	if got := s.Scale(10); got != 0 {
		t.Errorf("Scale(lo) = %v, want 0", got)
	}
	if got := s.Scale(20); got != 1 {
		t.Errorf("Scale(hi) = %v, want 1", got)
	}
	if got := s.Scale(15); !almostEq(got, 0.5) {
		t.Errorf("Scale(mid) = %v, want 0.5", got)
	}
	// Extrapolation outside the fitted range stays linear.
	if got := s.Scale(30); !almostEq(got, 2) {
		t.Errorf("Scale(30) = %v, want 2", got)
	}
}

func TestScalerDegenerate(t *testing.T) {
	s := NewScaler(5, 5)
	if got := s.Scale(123); got != 0 {
		t.Errorf("degenerate Scale = %v, want 0", got)
	}
}

func TestFitScaler(t *testing.T) {
	s := FitScaler([]float64{4, 8, 6})
	lo, hi := s.Bounds()
	if lo != 4 || hi != 8 {
		t.Errorf("Bounds = (%v,%v), want (4,8)", lo, hi)
	}
	if s := FitScaler(nil); s.Scale(1) != 0 {
		t.Error("empty FitScaler should scale to 0")
	}
}

func TestScalerLinearityProperty(t *testing.T) {
	// Scaling is affine: Scale(x)+Scale(y) - Scale(z) relates linearly.
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		s := NewScaler(0, 10)
		return almostEq(s.Scale(x)+s.Scale(y), s.Scale(x+y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d, want %d", w.N(), len(xs))
	}
	if !almostEq(w.Mean(), Mean(xs)) {
		t.Errorf("Welford mean %v != batch mean %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.StdDev(), StdDev(xs)) {
		t.Errorf("Welford stddev %v != batch stddev %v", w.StdDev(), StdDev(xs))
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
}

func TestWelfordMatchesBatchProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		return math.Abs(w.Mean()-Mean(xs)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentilesMatchesPercentile(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5, 0}
	ps := []float64{0, 25, 50, 90, 99, 100}
	got := Percentiles(xs, ps...)
	for i, p := range ps {
		if want := Percentile(xs, p); got[i] != want {
			t.Errorf("Percentiles[%v] = %v, want %v", p, got[i], want)
		}
	}
	// The input must not be mutated (both functions sort a copy).
	if xs[0] != 9 || xs[9] != 0 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentilesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Percentiles of empty slice should panic")
		}
	}()
	Percentiles(nil, 50)
}
