package obs

import (
	"strconv"
	"strings"
	"sync"
	"time"
)

// Trace is a lightweight span recorder for a linear pipeline. Stages
// are recorded with Lap, which measures the time since the previous
// lap — so the spans exactly partition the interval from trace start
// to the last lap, and their durations sum to the traced total.
//
// A nil *Trace is valid and records nothing, so instrumented code can
// thread a possibly-nil trace without guarding each call. All methods
// are safe for concurrent use, though a pipeline normally laps from
// one goroutine at a time.
type Trace struct {
	mu    sync.Mutex
	start time.Time
	last  time.Time
	spans []Span
}

// Span is one recorded pipeline stage.
type Span struct {
	Stage string
	Dur   time.Duration
}

// NewTrace starts a trace at the current time.
func NewTrace() *Trace {
	now := time.Now()
	return &Trace{start: now, last: now}
}

// Lap closes the current stage: it records a span named stage lasting
// from the previous lap (or the trace start) until now.
func (t *Trace) Lap(stage string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stage: stage, Dur: now.Sub(t.last)})
	t.last = now
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Total returns the traced interval: trace start to the last lap.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last.Sub(t.start)
}

// Header renders the spans as a compact response-header value:
// "stage=ms;stage=ms;...", millisecond durations with 3 decimals.
func (t *Trace) Header() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for i, s := range t.spans {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(s.Stage)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(float64(s.Dur)/float64(time.Millisecond), 'f', 3, 64))
	}
	return b.String()
}
