package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecording hammers every instrument kind from many
// goroutines; run under -race this is the lock-freedom proof, and the
// final values prove no increment was lost.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	h := r.Histogram("test_latency_seconds", "latency", nil)
	cv := r.CounterVec("test_by_kind_total", "by kind", "kind")
	hv := r.HistogramVec("test_lat_by_route_seconds", "by route", nil, "route")

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := []string{"a", "b"}[w%2]
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				cv.With(kind).Inc()
				hv.With("discover").Observe(0.001)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var byKind uint64
	cv.Each(func(values []string, n uint64) { byKind += n })
	if byKind != workers*perWorker {
		t.Errorf("counter vec total = %d, want %d", byKind, workers*perWorker)
	}
	// The histogram sum is accumulated by CAS; it must equal the exact
	// per-worker arithmetic series sum.
	want := float64(workers) * func() float64 {
		s := 0.0
		for i := 0; i < perWorker; i++ {
			s += float64(i%100) / 1000
		}
		return s
	}()
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
}

// TestExpositionRoundTrip renders a registry exercising every
// instrument kind and label shape, then re-parses it with the strict
// parser: every family must be declared, well-formed, and carry the
// values that were recorded.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_ops_total", "total ops").Add(7)
	r.Gauge("rt_log_len", "resident log length").Set(42.5)
	h := r.Histogram("rt_apply_seconds", "apply latency", nil)
	for _, v := range []float64{0.0001, 0.002, 0.03, 1.5, 500} {
		h.Observe(v)
	}
	cv := r.CounterVec("rt_requests_total", "requests", "route", "code")
	cv.With("discover", "200").Add(3)
	cv.With(`we"ird\route`, "500").Inc() // label escaping must survive the round trip
	hv := r.HistogramVec("rt_route_seconds", "per-route latency", nil, "route")
	hv.With("discover").Observe(0.004)
	r.GaugeFunc("rt_lag_epochs", "lag", func() float64 { return 12 }, "role", "follower")
	r.CounterFunc("rt_repairs_total", "repairs", func() float64 { return 9 }, "kind", "insert")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse back own exposition: %v\n%s", err, b.String())
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	wantType := map[string]MetricType{
		"rt_ops_total":      TypeCounter,
		"rt_log_len":        TypeGauge,
		"rt_apply_seconds":  TypeHistogram,
		"rt_requests_total": TypeCounter,
		"rt_route_seconds":  TypeHistogram,
		"rt_lag_epochs":     TypeGauge,
		"rt_repairs_total":  TypeCounter,
	}
	for name, typ := range wantType {
		f, ok := byName[name]
		if !ok {
			t.Fatalf("family %s missing from exposition", name)
		}
		if f.Type != typ {
			t.Errorf("family %s type = %s, want %s", name, f.Type, typ)
		}
		if len(f.Samples) == 0 {
			t.Errorf("family %s has no samples", name)
		}
	}
	// Spot-check values and labels surviving the round trip.
	for _, s := range byName["rt_requests_total"].Samples {
		if s.Labels["route"] == `we"ird\route` && s.Value != 1 {
			t.Errorf("escaped-label counter = %v, want 1", s.Value)
		}
	}
	for _, s := range byName["rt_lag_epochs"].Samples {
		if s.Labels["role"] != "follower" || s.Value != 12 {
			t.Errorf("gauge func sample = %+v", s)
		}
	}
	found := false
	for _, s := range byName["rt_apply_seconds"].Samples {
		if s.Name == "rt_apply_seconds_count" {
			found = true
			if s.Value != 5 {
				t.Errorf("apply count = %v, want 5", s.Value)
			}
		}
	}
	if !found {
		t.Error("rt_apply_seconds_count missing")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"orphan_metric 1\n",                // sample with no TYPE
		"# TYPE x counter\nx -1\n",         // negative counter
		"# TYPE h histogram\nh_bucket 1\n", // bucket without le
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n", // non-cumulative
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\n",                          // missing +Inf
		"# TYPE x counter\nx{a=b} 1\n",                                        // unquoted label
		"# TYPE x wat\nx 1\n",                                                 // unknown type
	}
	for _, in := range bad {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("ParseExposition accepted malformed input %q", in)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "q", []float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // lands in (0.001, 0.01]
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // lands in (0.1, 1]
	}
	if p50 := h.Quantile(0.5); p50 < 0.001 || p50 > 0.01 {
		t.Errorf("p50 = %v, want within (0.001, 0.01]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 0.1 || p99 > 1 {
		t.Errorf("p99 = %v, want within (0.1, 1]", p99)
	}
}

// TestNilSafety: a nil registry and nil instruments must be silent
// no-ops — this is the contract that makes "observability off" free.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "x").Inc()
	r.Gauge("x", "x").Set(1)
	r.Histogram("x_seconds", "x", nil).Observe(1)
	r.CounterVec("xv_total", "x", "l").With("a").Add(2)
	r.GaugeVec("xg", "x", "l").With("a").Add(1)
	r.HistogramVec("xh_seconds", "x", nil, "l").With("a").Observe(1)
	r.GaugeFunc("xf", "x", func() float64 { return 1 })
	r.CounterFunc("xcf_total", "x", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var tr *Trace
	tr.Lap("resolve")
	if tr.Spans() != nil || tr.Header() != "" || tr.Total() != 0 {
		t.Error("nil trace must record nothing")
	}
}

func TestTracePartition(t *testing.T) {
	tr := NewTrace()
	time.Sleep(2 * time.Millisecond)
	tr.Lap("resolve")
	time.Sleep(1 * time.Millisecond)
	tr.Lap("search")
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Stage != "resolve" || spans[1].Stage != "search" {
		t.Fatalf("spans = %+v", spans)
	}
	var sum time.Duration
	for _, s := range spans {
		if s.Dur <= 0 {
			t.Errorf("span %s has non-positive duration %v", s.Stage, s.Dur)
		}
		sum += s.Dur
	}
	if sum != tr.Total() {
		t.Errorf("span sum %v != total %v — laps must partition the trace", sum, tr.Total())
	}
	if h := tr.Header(); !strings.Contains(h, "resolve=") || !strings.Contains(h, "search=") {
		t.Errorf("header = %q", h)
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c")
	defer func() {
		if recover() == nil {
			t.Error("re-registering c_total as a gauge should panic")
		}
	}()
	r.Gauge("c_total", "c")
}
