package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Family is one parsed exposition family, as returned by
// ParseExposition.
type Family struct {
	Name    string
	Type    MetricType
	Samples []Sample
}

// Sample is one parsed exposition line.
type Sample struct {
	Name   string // full sample name, including _bucket/_sum/_count suffixes
	Labels map[string]string
	Value  float64
}

// ParseExposition parses and validates Prometheus text exposition
// format. It is strict where the round-trip tests need it to be:
// every sample must belong to a family declared with # TYPE before
// it, histogram series must carry the le label on _bucket samples,
// bucket counts must be cumulative (non-decreasing with le), every
// histogram series must end in a +Inf bucket equal to its _count, and
// counter values must be non-negative. It exists so tests and smoke
// checks can assert well-formedness without a Prometheus dependency.
func ParseExposition(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var fams []Family
	byName := map[string]*Family{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := parts[2], MetricType(parts[3])
			switch typ {
			case TypeCounter, TypeGauge, TypeHistogram:
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, parts[3])
			}
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			fams = append(fams, Family{Name: name, Type: typ})
			byName[name] = &fams[len(fams)-1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(byName, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s has no declared family", lineNo, s.Name)
		}
		if err := checkSample(fam, s); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if fams[i].Type == TypeHistogram {
			if err := checkHistogram(&fams[i]); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyFor matches a sample name to its declared family, handling
// the histogram sample suffixes.
func familyFor(byName map[string]*Family, sample string) *Family {
	if f, ok := byName[sample]; ok {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suf)
		if !ok {
			continue
		}
		if f, ok := byName[base]; ok && f.Type == TypeHistogram {
			return f
		}
	}
	return nil
}

func checkSample(fam *Family, s Sample) error {
	switch fam.Type {
	case TypeCounter:
		if s.Name != fam.Name {
			return fmt.Errorf("sample %s does not match counter family %s", s.Name, fam.Name)
		}
		if s.Value < 0 {
			return fmt.Errorf("counter %s has negative value %v", s.Name, s.Value)
		}
	case TypeGauge:
		if s.Name != fam.Name {
			return fmt.Errorf("sample %s does not match gauge family %s", s.Name, fam.Name)
		}
	case TypeHistogram:
		switch s.Name {
		case fam.Name + "_bucket":
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("histogram bucket %s missing le label", s.Name)
			}
			if s.Value < 0 {
				return fmt.Errorf("bucket %s has negative count %v", s.Name, s.Value)
			}
		case fam.Name + "_sum", fam.Name + "_count":
		default:
			return fmt.Errorf("sample %s does not match histogram family %s", s.Name, fam.Name)
		}
	}
	return nil
}

// checkHistogram validates each label series of a histogram family:
// cumulative buckets, a +Inf bucket, and +Inf == _count.
func checkHistogram(fam *Family) error {
	type series struct {
		buckets map[float64]float64 // le -> cumulative count
		count   float64
		hasCnt  bool
	}
	bySeries := map[string]*series{}
	get := func(labels map[string]string) *series {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(labels[k])
			b.WriteByte(';')
		}
		k := b.String()
		s, ok := bySeries[k]
		if !ok {
			s = &series{buckets: map[float64]float64{}}
			bySeries[k] = s
		}
		return s
	}
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			le := s.Labels["le"]
			var bound float64
			if le == "+Inf" {
				bound = math.Inf(1)
			} else {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("%s: bad le %q", fam.Name, le)
				}
				bound = v
			}
			get(s.Labels).buckets[bound] = s.Value
		case fam.Name + "_count":
			sr := get(s.Labels)
			sr.count, sr.hasCnt = s.Value, true
		}
	}
	for key, sr := range bySeries {
		if len(sr.buckets) == 0 {
			return fmt.Errorf("%s{%s}: histogram series with no buckets", fam.Name, key)
		}
		bounds := make([]float64, 0, len(sr.buckets))
		for b := range sr.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		if !math.IsInf(bounds[len(bounds)-1], 1) {
			return fmt.Errorf("%s{%s}: missing +Inf bucket", fam.Name, key)
		}
		prev := -1.0
		for _, b := range bounds {
			if sr.buckets[b] < prev {
				return fmt.Errorf("%s{%s}: bucket counts not cumulative at le=%v", fam.Name, key, b)
			}
			prev = sr.buckets[b]
		}
		if sr.hasCnt && sr.buckets[math.Inf(1)] != sr.count {
			return fmt.Errorf("%s{%s}: +Inf bucket %v != count %v",
				fam.Name, key, sr.buckets[math.Inf(1)], sr.count)
		}
	}
	return nil
}

// parseSample parses one "name{label="v",...} value" line.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// The value is the first field; a timestamp may legally follow.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels consumes a {k="v",...} block starting at s[0]=='{' and
// returns the index just past the closing brace.
func parseLabels(s string, into map[string]string) (int, error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("malformed labels in %q", s)
		}
		name := s[i : i+eq]
		if !validName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c in %q", s[i+1], s)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		into[name] = val.String()
	}
}
