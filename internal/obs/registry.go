// Package obs is a dependency-free observability kit: a metrics
// registry (atomic counters, gauges, and fixed-log-bucket histograms)
// with Prometheus text-format exposition, and a lightweight span
// tracer for request pipelines.
//
// Every instrument is safe for lock-free hot-path use: counters and
// gauges are single atomics, histogram observation is one atomic add
// per bucket plus a CAS loop for the float sum. Registration takes a
// mutex but is expected at wiring time, not per request; label lookup
// on a Vec takes an RWMutex read lock and callers on genuinely hot
// paths should resolve children once with With and hold the pointer.
//
// All instruments and the registry itself are nil-safe: methods on a
// nil *Registry return nil instruments, and methods on nil instruments
// are no-ops. Instrumented code can therefore thread a possibly-nil
// registry without guarding every call site, which keeps the
// "observability off" configuration a true zero-cost path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType enumerates the exposition families obs can emit.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Registry holds named metric families and renders them in Prometheus
// text exposition format. The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid "observability off" registry
// whose constructors return nil instruments.
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one exposition family: a name, type, help string, label
// schema, and a set of children keyed by their label values.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string  // label names, fixed at first registration
	bounds []float64 // histogram upper bounds (exclusive of +Inf)

	mu     sync.RWMutex
	kids   map[string]any // joined label values -> *Counter/*Gauge/*Histogram
	korder []string
	funcs  []funcSample
}

// funcSample is a callback-backed sample: its value is read at
// exposition time from live program state (queue depths, lag, log
// length) instead of being pushed on every change.
type funcSample struct {
	values []string
	fn     func() float64
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments by d via a CAS loop.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Buckets are chosen at
// registration (see DurationBuckets) and never change, so observation
// is lock-free: one atomic add on the bucket, one on the count, and a
// CAS loop folding the value into the sum.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (0..1) from the bucket counts
// by linear interpolation within the winning bucket. Estimates are as
// coarse as the bucket layout; use for dashboards, not SLO math.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if seen+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) { // +Inf bucket: report its lower bound
				return lo
			}
			hi := h.bounds[i]
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-seen)/c
		}
		seen += c
	}
	return h.bounds[len(h.bounds)-1]
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// DurationBuckets returns the standard log-spaced latency layout:
// factor-2 upper bounds from 100µs to ~210s (22 buckets + +Inf),
// expressed in seconds.
func DurationBuckets() []float64 {
	b := make([]float64, 22)
	v := 1e-4
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// registerFamily returns the family for name, creating it if needed,
// and panics on a type/label-schema conflict — re-registering the
// same name with a different shape is a programming error.
func (r *Registry) registerFamily(name, help string, typ MetricType, labels []string, bounds []float64) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic("obs: invalid label name " + strconv.Quote(l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: conflicting registration for %s (%s%v vs %s%v)",
				name, f.typ, f.labels, typ, labels))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		typ:    typ,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		kids:   make(map[string]any),
	}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.registerFamily(name, help, TypeCounter, nil, nil)
	return f.counterChild(nil)
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.registerFamily(name, help, TypeCounter, labels, nil)}
}

// With resolves the child for the given label values, creating it on
// first use. Hot paths should call once and keep the pointer.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.counterChild(values)
}

// Each visits every materialized child with its label values.
func (v *CounterVec) Each(fn func(values []string, count uint64)) {
	if v == nil {
		return
	}
	v.f.mu.RLock()
	defer v.f.mu.RUnlock()
	for _, k := range v.f.korder {
		c := v.f.kids[k].(*Counter)
		fn(splitKey(k), c.Value())
	}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.registerFamily(name, help, TypeGauge, nil, nil)
	return f.gaugeChild(nil)
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.registerFamily(name, help, TypeGauge, labels, nil)}
}

// With resolves the gauge child for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.gaugeChild(values)
}

// GaugeFunc registers a callback-backed gauge sample. labelPairs
// alternates name, value (e.g. "role", "follower"); all registrations
// under one name must use the same label names in the same order. The
// callback runs at exposition time and must be safe to call
// concurrently with the rest of the program.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	r.addFunc(name, help, TypeGauge, fn, labelPairs)
}

// CounterFunc is GaugeFunc for values that are cumulative counts kept
// elsewhere (existing atomics): the family is exposed as a counter but
// read through the callback at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	r.addFunc(name, help, TypeCounter, fn, labelPairs)
}

func (r *Registry) addFunc(name, help string, typ MetricType, fn func() float64, labelPairs []string) {
	if len(labelPairs)%2 != 0 {
		panic("obs: labelPairs must alternate name, value")
	}
	names := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		names = append(names, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	f := r.registerFamily(name, help, typ, names, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.funcs = append(f.funcs, funcSample{values: values, fn: fn})
}

// Histogram registers (or finds) an unlabeled histogram with the
// given ascending bucket upper bounds (nil takes DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets()
	}
	f := r.registerFamily(name, help, TypeHistogram, nil, bounds)
	return f.histogramChild(nil)
}

// HistogramVec registers a histogram family with labels.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets()
	}
	return &HistogramVec{f: r.registerFamily(name, help, TypeHistogram, labels, bounds)}
}

// With resolves the histogram child for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.histogramChild(values)
}

// --- family child management -------------------------------------------

const keySep = "\x1f"

func joinKey(values []string) string { return strings.Join(values, keySep) }
func splitKey(k string) []string {
	if k == "" {
		return nil
	}
	return strings.Split(k, keySep)
}

func (f *family) checkValues(values []string) {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
}

func (f *family) child(values []string, mk func() any) any {
	f.checkValues(values)
	k := joinKey(values)
	f.mu.RLock()
	c, ok := f.kids[k]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.kids[k]; ok {
		return c
	}
	c = mk()
	f.kids[k] = c
	f.korder = append(f.korder, k)
	return c
}

func (f *family) counterChild(values []string) *Counter {
	return f.child(values, func() any { return new(Counter) }).(*Counter)
}

func (f *family) gaugeChild(values []string) *Gauge {
	return f.child(values, func() any { return new(Gauge) }).(*Gauge)
}

func (f *family) histogramChild(values []string) *Histogram {
	return f.child(values, func() any {
		return &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}).(*Histogram)
}

// --- exposition ---------------------------------------------------------

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(string(f.typ))
	b.WriteByte('\n')

	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, k := range f.korder {
		values := splitKey(k)
		switch c := f.kids[k].(type) {
		case *Counter:
			writeSample(b, f.name, f.labels, values, "", "", formatUint(c.Value()))
		case *Gauge:
			writeSample(b, f.name, f.labels, values, "", "", formatFloat(c.Value()))
		case *Histogram:
			writeHistogram(b, f.name, f.labels, values, c)
		}
	}
	for _, fs := range f.funcs {
		writeSample(b, f.name, f.labels, fs.values, "", "", formatFloat(fs.fn()))
	}
}

func writeHistogram(b *strings.Builder, name string, labels, values []string, h *Histogram) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		writeSample(b, name+"_bucket", labels, values, "le", le, formatUint(cum))
	}
	writeSample(b, name+"_sum", labels, values, "", "", formatFloat(h.Sum()))
	writeSample(b, name+"_count", labels, values, "", "", formatUint(h.Count()))
}

// writeSample emits one exposition line. extraK/extraV append one
// trailing label (the histogram "le") after the family labels.
func writeSample(b *strings.Builder, name string, labels, values []string, extraK, extraV, val string) {
	b.WriteString(name)
	if len(labels) > 0 || extraK != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraK != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraK)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(extraV))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(val)
	b.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
