package eval

import (
	"fmt"
	"sort"
	"strings"

	"authteam/internal/core"
	"authteam/internal/expertgraph"
	"authteam/internal/team"
	"authteam/internal/transform"
)

// Figure 6: the qualitative comparison — the best team found by CC,
// CA-CC and SA-CA-CC for the project [analytics, matrix, communities,
// object oriented], with each member's h-index and role, plus the
// aggregate statistics the paper annotates each team with (holder and
// connector average h-index, team h-index, average publications).

// Fig6Team is one method's team rendered for display.
type Fig6Team struct {
	Method  string
	Team    *team.Team
	Profile team.Profile
	Score   team.Score
	Members []Fig6Member
}

// Fig6Member is one row of the team rendering.
type Fig6Member struct {
	Name   string
	HIndex float64
	Pubs   int
	Role   string // "holder(skill, …)" or "connector"
}

// Fig6Result holds all three teams.
type Fig6Result struct {
	ProjectSkills []string
	Teams         []Fig6Team
	UsedFallback  bool
}

// RunFig6 executes the qualitative experiment.
func RunFig6(env *Env) (*Fig6Result, error) {
	cfg := env.Cfg
	project, ok := env.Figure6Project()
	res := &Fig6Result{}
	if !ok {
		gen, err := env.Generator(666)
		if err != nil {
			return nil, err
		}
		project, err = gen.Project(4)
		if err != nil {
			return nil, err
		}
		res.UsedFallback = true
	}
	for _, s := range project {
		res.ProjectSkills = append(res.ProjectSkills, env.Graph.SkillName(s))
	}
	p, err := env.Params(cfg.Lambda)
	if err != nil {
		return nil, err
	}
	for mi, method := range []core.Method{core.CC, core.CACC, core.SACACC} {
		tm, err := env.Discoverer(method, p).BestTeam(project)
		if err != nil {
			return nil, fmt.Errorf("fig6: %v: %w", method, err)
		}
		res.Teams = append(res.Teams, renderTeam(fig4Methods[mi], tm, env.Graph, p))
	}
	return res, nil
}

func renderTeam(methodName string, tm *team.Team, g *expertgraph.Graph,
	p *transform.Params) Fig6Team {

	out := Fig6Team{
		Method:  methodName,
		Team:    tm,
		Profile: team.ProfileOf(tm, g),
		Score:   team.Evaluate(tm, p),
	}
	holderSkills := make(map[expertgraph.NodeID][]string)
	for s, c := range tm.Assignment {
		holderSkills[c] = append(holderSkills[c], g.SkillName(s))
	}
	for _, u := range tm.Nodes {
		m := Fig6Member{
			Name:   g.Name(u),
			HIndex: g.Authority(u),
			Pubs:   g.Pubs(u),
		}
		if skills := holderSkills[u]; len(skills) > 0 {
			sort.Strings(skills)
			m.Role = "holder(" + strings.Join(skills, ", ") + ")"
		} else {
			m.Role = "connector"
		}
		out.Members = append(out.Members, m)
	}
	return out
}

// Table renders all three teams.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 6 — best teams for project [%s] (λ=γ=0.6)",
			strings.Join(r.ProjectSkills, ", ")),
		Headers: []string{"method", "member", "h-index", "pubs", "role"},
	}
	for _, ft := range r.Teams {
		for i, m := range ft.Members {
			method := ""
			if i == 0 {
				method = ft.Method
			}
			t.Rows = append(t.Rows, []string{
				method, m.Name, fmtF(m.HIndex, 0), fmt.Sprintf("%d", m.Pubs), m.Role,
			})
		}
		t.Rows = append(t.Rows, []string{
			"", fmt.Sprintf("[avg holder h=%.2f, conn h=%.2f, team h=%.2f, pubs=%.1f, SA-CA-CC=%.4f]",
				ft.Profile.AvgHolderAuth, ft.Profile.AvgConnectorAuth,
				ft.Profile.AvgTeamAuth, ft.Profile.AvgPubs, ft.Score.SACACC),
			"", "", "",
		})
	}
	return t
}
