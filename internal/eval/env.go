// Package eval is the experiment harness: it regenerates every figure
// and table of the paper's evaluation (§4) — Figure 3 (objective
// scores vs λ), Figure 4 (top-5 precision under a judge panel),
// Figure 5 (sensitivity of team composition to λ), Figure 6
// (qualitative teams), the §4.3 quality-of-teams statistic and the
// §4.1 runtime claims — over the synthetic DBLP corpus, with
// deterministic seeding and CSV/ASCII output.
package eval

import (
	"fmt"
	"runtime"

	"authteam/internal/core"
	"authteam/internal/dblp"
	"authteam/internal/expertgraph"
	"authteam/internal/oracle"
	"authteam/internal/transform"
	"authteam/internal/workload"
)

// Config parameterizes a full experiment run. Zero values select the
// paper's settings where feasible (γ = λ = 0.6, 50 projects, skills
// {4, 6, 8, 10}, top-5, 10,000 random trials) at a reduced default
// corpus scale; raise Authors for paper-scale runs.
type Config struct {
	Seed    int64
	Authors int // corpus size (default 2000; paper scale 40000)

	Projects    int   // projects per skill count (default 50, as in §4)
	SkillCounts []int // default {4, 6, 8, 10}

	Gamma   float64   // default 0.6 (fixed in Fig. 3: "we fix γ at 0.6")
	Lambda  float64   // default 0.6 (Figs. 4 and 6, §4.3)
	Lambdas []float64 // Fig. 3 sweep; default {0.2, 0.4, 0.6, 0.8}

	TopK         int // default 5
	RandomTrials int // default 10,000

	// Exact-baseline tractability knobs (§4: Exact "did not terminate"
	// beyond 6 skills; at scale its candidate space needs truncation).
	ExactSkillLimit int // run Exact only for ≤ this many skills (default 6)
	ExactCandidates int // candidate holders per skill for Exact (default 6)
	ExactProjects   int // projects per skill count for Exact (default 10)

	// SensitivityLambdas is the Fig. 5 sweep (default 0.1 … 0.9).
	SensitivityLambdas []float64

	QualityProjects int // §4.3 projects (default 5, as in the paper)
	QualityTrials   int // simulated head-to-heads per project (default 100)

	NoPLL   bool // use per-root Dijkstra instead of the landmark index
	Workers int  // parallel workers over projects (default NumCPU)
}

func (c Config) withDefaults() Config {
	if c.Authors == 0 {
		c.Authors = 2000
	}
	if c.Projects == 0 {
		c.Projects = 50
	}
	if len(c.SkillCounts) == 0 {
		c.SkillCounts = []int{4, 6, 8, 10}
	}
	if c.Gamma == 0 {
		c.Gamma = 0.6
	}
	if c.Lambda == 0 {
		c.Lambda = 0.6
	}
	if len(c.Lambdas) == 0 {
		c.Lambdas = []float64{0.2, 0.4, 0.6, 0.8}
	}
	if c.TopK == 0 {
		c.TopK = 5
	}
	if c.RandomTrials == 0 {
		c.RandomTrials = core.DefaultRandomTrials
	}
	if c.ExactSkillLimit == 0 {
		c.ExactSkillLimit = 6
	}
	if c.ExactCandidates == 0 {
		c.ExactCandidates = 5
	}
	if c.ExactProjects == 0 {
		c.ExactProjects = 3
	}
	if len(c.SensitivityLambdas) == 0 {
		for l := 0.1; l < 0.95; l += 0.1 {
			c.SensitivityLambdas = append(c.SensitivityLambdas, l)
		}
	}
	if c.QualityProjects == 0 {
		c.QualityProjects = 5
	}
	if c.QualityTrials == 0 {
		c.QualityTrials = 100
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	return c
}

// Env is the shared fixture of one experiment run: the corpus, the
// derived expert network and the distance oracles shared across
// methods. Build one with NewEnv and reuse it across figure runners.
type Env struct {
	Cfg    Config
	Corpus *dblp.Corpus
	Graph  *expertgraph.Graph

	rawOracle oracle.Oracle // raw edge weights (CC search)
	gOracle   oracle.Oracle // G'(γ) weights (CA-CC / SA-CA-CC search)
	refParams *transform.Params
}

// NewEnv synthesizes the corpus, derives the expert network (largest
// component) and prebuilds the shared landmark indexes.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	corpus := dblp.Synthesize(dblp.SynthConfig{Seed: cfg.Seed, Authors: cfg.Authors})
	g, _, err := dblp.BuildGraph(corpus, dblp.GraphOptions{LargestComponent: true})
	if err != nil {
		return nil, err
	}
	env := &Env{Cfg: cfg, Corpus: corpus, Graph: g}
	env.refParams, err = transform.Fit(g, cfg.Gamma, cfg.Lambda, transform.Options{Normalize: true})
	if err != nil {
		return nil, err
	}
	if !cfg.NoPLL {
		env.rawOracle = oracle.BuildPLL(g, nil)
		env.gOracle = oracle.BuildPLL(g, env.refParams.EdgeWeight())
	}
	return env, nil
}

// Params fits transform parameters for the env's γ and the given λ.
// The normalization and the G' edge weights depend only on γ, so the
// shared G' oracle remains valid for every λ.
func (e *Env) Params(lambda float64) (*transform.Params, error) {
	return transform.Fit(e.Graph, e.Cfg.Gamma, lambda, transform.Options{Normalize: true})
}

// Discoverer wires a method to the env's shared oracle (PLL) or to a
// fresh Dijkstra oracle (NoPLL). Discoverers are not safe for
// concurrent use; call this per goroutine.
func (e *Env) Discoverer(m core.Method, p *transform.Params) *core.Discoverer {
	var opts []core.Option
	if !e.Cfg.NoPLL {
		if m == core.CC {
			opts = append(opts, core.WithOracle(e.rawOracle))
		} else {
			opts = append(opts, core.WithOracle(e.gOracle))
		}
	}
	return core.NewDiscoverer(p, m, opts...)
}

// GPrimeOracle returns the shared G'(γ) oracle, or nil when NoPLL.
func (e *Env) GPrimeOracle() oracle.Oracle { return e.gOracle }

// Generator returns a seeded workload generator; streamOffset
// namespaces independent experiment streams.
func (e *Env) Generator(streamOffset int64) (*workload.Generator, error) {
	return workload.NewGenerator(e.Graph, e.Cfg.Seed*1_000_003+streamOffset, workload.Options{MinHolders: 2})
}

// Figure6Project resolves the paper's qualitative project [analytics,
// matrix, communities, object oriented]; ok is false if any skill is
// missing from the corpus.
func (e *Env) Figure6Project() ([]expertgraph.SkillID, bool) {
	names := []string{"analytics", "matrix", "communities", "object oriented"}
	project := make([]expertgraph.SkillID, 0, len(names))
	for _, n := range names {
		id, ok := e.Graph.SkillID(n)
		if !ok || len(e.Graph.ExpertsWithSkill(id)) == 0 {
			return nil, false
		}
		project = append(project, id)
	}
	return project, true
}

// MethodNames are the ranking strategies in the paper's plotting order.
var MethodNames = []string{"CC", "CA-CC", "SA-CA-CC", "Random", "Exact"}

func (e *Env) String() string {
	return fmt.Sprintf("eval.Env{%v, γ=%.2f}", e.Graph, e.Cfg.Gamma)
}
