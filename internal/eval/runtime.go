package eval

import (
	"fmt"
	"time"

	"authteam/internal/core"
	"authteam/internal/oracle"
)

// §4.1 runtime claims: CC, CA-CC and SA-CA-CC "have similar runtime
// since they use the same fundamental algorithm and indexing methods";
// queries take a few hundred milliseconds, growing with the number of
// required skills. This runner measures mean per-query wall time for
// each method and skill count, plus the one-off index construction
// costs.

// RuntimeRow is one skill count's mean query latencies.
type RuntimeRow struct {
	Skills int
	MeanMS map[string]float64
}

// RuntimeResult aggregates the measurements.
type RuntimeResult struct {
	Rows         []RuntimeRow
	IndexBuildMS map[string]float64 // "G"/"G'" PLL construction
	Nodes, Edges int
}

// runtimeProjects is how many queries are averaged per cell.
const runtimeProjects = 5

// RunRuntime executes the timing experiment.
func RunRuntime(env *Env) (*RuntimeResult, error) {
	cfg := env.Cfg
	p, err := env.Params(cfg.Lambda)
	if err != nil {
		return nil, err
	}
	res := &RuntimeResult{
		IndexBuildMS: make(map[string]float64, 2),
		Nodes:        env.Graph.NumNodes(),
		Edges:        env.Graph.NumEdges(),
	}

	// Index construction cost (rebuild fresh so the measurement does
	// not depend on env warm-up).
	t0 := time.Now()
	oracle.BuildPLL(env.Graph, nil)
	res.IndexBuildMS["G"] = msSince(t0)
	t0 = time.Now()
	oracle.BuildPLL(env.Graph, p.EdgeWeight())
	res.IndexBuildMS["G'"] = msSince(t0)

	for _, skills := range cfg.SkillCounts {
		gen, err := env.Generator(int64(900 + skills))
		if err != nil {
			return nil, err
		}
		projects, err := gen.Projects(runtimeProjects, skills)
		if err != nil {
			return nil, err
		}
		row := RuntimeRow{Skills: skills, MeanMS: make(map[string]float64, 3)}
		for mi, method := range []core.Method{core.CC, core.CACC, core.SACACC} {
			total := 0.0
			for _, project := range projects {
				d := env.Discoverer(method, p)
				t0 := time.Now()
				if _, err := d.BestTeam(project); err != nil {
					return nil, fmt.Errorf("runtime: %v: %w", method, err)
				}
				total += msSince(t0)
			}
			row.MeanMS[fig4Methods[mi]] = total / float64(len(projects))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000
}

// Table renders the latency matrix.
func (r *RuntimeResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("§4.1 — mean query latency (ms) on %d nodes / %d edges (index build: G %.0fms, G' %.0fms)",
			r.Nodes, r.Edges, r.IndexBuildMS["G"], r.IndexBuildMS["G'"]),
		Headers: append([]string{"skills"}, fig4Methods...),
	}
	for _, row := range r.Rows {
		cells := []string{fmt.Sprintf("%d", row.Skills)}
		for _, m := range fig4Methods {
			cells = append(cells, fmtF(row.MeanMS[m], 1))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}
