package eval

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// testEnv builds a tiny but non-degenerate environment shared by the
// harness tests. Scales are small so the full suite stays fast; the
// experiment *shapes* are asserted at this scale and reproduced at
// paper scale by cmd/expgen.
func testEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(Config{
		Seed:            3,
		Authors:         600,
		Projects:        3,
		SkillCounts:     []int{2, 3},
		Lambdas:         []float64{0.2, 0.6},
		RandomTrials:    400,
		ExactSkillLimit: 3,
		ExactCandidates: 4,
		// Run Exact on every project so the aggregate Exact ≤ SA-CA-CC
		// comparison in TestFig3 averages over the same project set.
		ExactProjects:      3,
		QualityProjects:    2,
		QualityTrials:      40,
		SensitivityLambdas: []float64{0.2, 0.5, 0.8},
		Workers:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnvDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Authors != 2000 || cfg.Projects != 50 || cfg.Gamma != 0.6 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if len(cfg.SkillCounts) != 4 || cfg.SkillCounts[3] != 10 {
		t.Errorf("SkillCounts = %v", cfg.SkillCounts)
	}
	if len(cfg.Lambdas) != 4 {
		t.Errorf("Lambdas = %v", cfg.Lambdas)
	}
	if len(cfg.SensitivityLambdas) != 9 {
		t.Errorf("SensitivityLambdas = %v", cfg.SensitivityLambdas)
	}
}

func TestFig3(t *testing.T) {
	env := testEnv(t)
	res, err := RunFig3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 2 {
		t.Fatalf("panels = %d, want 2", len(res.Panels))
	}
	for _, panel := range res.Panels {
		for _, method := range []string{"CC", "CA-CC", "SA-CA-CC", "Random"} {
			means := panel.Mean[method]
			if len(means) != 2 {
				t.Fatalf("%s: %d cells", method, len(means))
			}
			for i, v := range means {
				if math.IsNaN(v) || v < 0 {
					t.Errorf("%s skills=%d λ-cell %d: score %v", method, panel.Skills, i, v)
				}
			}
		}
		// The headline claim: SA-CA-CC scores at most CC and CA-CC on
		// its own objective (mean over projects, every λ).
		for i := range panel.Lambdas {
			sa := panel.Mean["SA-CA-CC"][i]
			if sa > panel.Mean["CC"][i]+1e-9 {
				t.Errorf("skills=%d λ=%v: SA-CA-CC (%v) worse than CC (%v)",
					panel.Skills, panel.Lambdas[i], sa, panel.Mean["CC"][i])
			}
			if sa > panel.Mean["Random"][i]+1e-9 {
				t.Errorf("skills=%d λ=%v: SA-CA-CC (%v) worse than Random (%v)",
					panel.Skills, panel.Lambdas[i], sa, panel.Mean["Random"][i])
			}
			// Exact lower-bounds the greedy wherever it ran.
			if ex := panel.Mean["Exact"][i]; !math.IsNaN(ex) && ex > sa+1e-9 {
				t.Errorf("skills=%d λ=%v: Exact (%v) worse than SA-CA-CC (%v)",
					panel.Skills, panel.Lambdas[i], ex, sa)
			}
		}
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SA-CA-CC") {
		t.Error("table missing method column")
	}
}

func TestFig4(t *testing.T) {
	env := testEnv(t)
	res, err := RunFig4(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, m := range fig4Methods {
			p := row.Precision[m]
			if p < 0 || p > 100 {
				t.Errorf("precision %v out of range", p)
			}
		}
		// The paper's finding: the authority-aware methods beat CC.
		if row.Precision["SA-CA-CC"] <= row.Precision["CC"] {
			t.Errorf("skills=%d: SA-CA-CC precision %.1f not above CC %.1f",
				row.Skills, row.Precision["SA-CA-CC"], row.Precision["CC"])
		}
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig5(t *testing.T) {
	env := testEnv(t)
	res, err := RunFig5(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopKFixed.Points) != 3 || len(res.BestRandom.Points) != 3 {
		t.Fatalf("sweep lengths: %d, %d", len(res.TopKFixed.Points), len(res.BestRandom.Points))
	}
	for _, s := range []Fig5Series{res.TopKFixed, res.BestRandom} {
		for _, pt := range s.Points {
			if pt.Size < 1 {
				t.Errorf("team size %v < 1", pt.Size)
			}
			if pt.HolderH < 0 || pt.ConnH < 0 || pt.Pubs < 0 {
				t.Errorf("negative profile values: %+v", pt)
			}
		}
		norm := s.Normalized()
		if len(norm) != 4 {
			t.Fatalf("normalized series = %d", len(norm))
		}
		for _, series := range norm {
			for _, v := range series {
				if v < 0 || v > 1 {
					t.Errorf("normalized value %v outside [0,1]", v)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig6(t *testing.T) {
	env := testEnv(t)
	res, err := RunFig6(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Teams) != 3 {
		t.Fatalf("teams = %d, want 3", len(res.Teams))
	}
	for _, ft := range res.Teams {
		if len(ft.Members) == 0 {
			t.Errorf("%s: empty team", ft.Method)
		}
		holders := 0
		for _, m := range ft.Members {
			if strings.HasPrefix(m.Role, "holder(") {
				holders++
			}
		}
		if holders == 0 {
			t.Errorf("%s: no holders rendered", ft.Method)
		}
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "connector") && !strings.Contains(buf.String(), "holder") {
		t.Error("rendering lost the roles")
	}
}

func TestQuality(t *testing.T) {
	env := testEnv(t)
	res, err := RunQuality(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparisons != res.Projects*res.TrialsEach {
		t.Errorf("comparisons = %d", res.Comparisons)
	}
	if res.WinPct < 0 || res.WinPct > 100 {
		t.Errorf("win pct = %v", res.WinPct)
	}
	// Shape: the authority-aware method should win the majority, as in
	// the paper's 78% (exact value depends on corpus scale).
	if res.WinPct < 50 {
		t.Errorf("SA-CA-CC win rate %.1f%% below 50%% — mentorship shape lost", res.WinPct)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRuntime(t *testing.T) {
	env := testEnv(t)
	res, err := RunRuntime(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, m := range fig4Methods {
			if row.MeanMS[m] < 0 {
				t.Errorf("negative latency for %s", m)
			}
		}
	}
	if res.IndexBuildMS["G"] <= 0 || res.IndexBuildMS["G'"] <= 0 {
		t.Error("index build times missing")
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblations(t *testing.T) {
	env := testEnv(t)
	res, err := RunAblations(env)
	if err != nil {
		t.Fatal(err)
	}
	// The index answers exact distances: team objective values must
	// agree with the Dijkstra oracle on every project.
	if res.OracleAgreements != res.OracleProjects {
		t.Errorf("oracle agreement %d/%d — the index changed results",
			res.OracleAgreements, res.OracleProjects)
	}
	if res.SurrogateRatio <= 0 {
		t.Errorf("surrogate ratio = %v", res.SurrogateRatio)
	}
	// The surrogate sums per-holder path costs (shared segments double
	// counted, holder terms adjusted), so the evaluated objective is
	// normally below the surrogate: ratio ≤ ~1.
	if res.SurrogateRatio > 1.5 {
		t.Errorf("surrogate ratio %v implausibly high", res.SurrogateRatio)
	}
	if res.NormSize <= 0 || res.RawSize <= 0 {
		t.Error("normalization study produced empty teams")
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestJudgesDeterministic(t *testing.T) {
	env := testEnv(t)
	p, err := env.Params(0.6)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := env.Generator(42)
	if err != nil {
		t.Fatal(err)
	}
	project, err := gen.Project(3)
	if err != nil {
		t.Fatal(err)
	}
	teams, err := env.Discoverer(0, p).TopK(project, 3)
	if err != nil {
		t.Fatal(err)
	}
	p1 := PanelPrecision(NewPanel(6, 9), teams, env.Graph)
	p2 := PanelPrecision(NewPanel(6, 9), teams, env.Graph)
	if p1 != p2 {
		t.Error("same panel seed should give identical precision")
	}
	if p1 <= 0 || p1 > 100 {
		t.Errorf("precision %v out of range", p1)
	}
}

func TestPanelPrecisionEmpty(t *testing.T) {
	if PanelPrecision(NewPanel(3, 1), nil, nil) != 0 {
		t.Error("empty team list should score 0")
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Title:   "test",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
	}
	path := filepath.Join(t.TempDir(), "sub", "out.csv")
	if err := tab.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "3") {
		t.Errorf("render lost cells: %q", out)
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtScore(math.NaN()) != "—" {
		t.Error("NaN should render as dash")
	}
	if fmtScore(1.25) != "1.2500" {
		t.Errorf("fmtScore = %q", fmtScore(1.25))
	}
	if fmtF(2.345, 1) != "2.3" {
		t.Errorf("fmtF = %q", fmtF(2.345, 1))
	}
}
