package eval

import (
	"math"
	"math/rand"

	"authteam/internal/expertgraph"
	"authteam/internal/team"
)

// Simulated judge panel for the Figure 4 user study. The paper gave
// six Computer Science graduate students the top-5 teams of each
// method together with each member's publication count and h-index,
// and asked for a quality score in [0, 1]. The simulated judge scores
// from exactly the information the students saw — team-average
// h-index and publications — saturating logarithmically (the perceived
// difference between h-index 40 and 60 is smaller than between 2 and
// 20), with per-judge leniency bias and per-assessment noise. This is
// the behavioural assumption the paper's study surfaces (humans rate
// authoritative teams higher); see DESIGN.md for the substitution note.

// Judge scores teams with a personal bias and noise stream. Not safe
// for concurrent use.
type Judge struct {
	bias  float64
	noise float64
	rng   *rand.Rand
}

// NewPanel creates n judges with deterministic per-judge biases drawn
// from the seed.
func NewPanel(n int, seed int64) []*Judge {
	src := rand.New(rand.NewSource(seed))
	panel := make([]*Judge, n)
	for i := range panel {
		panel[i] = &Judge{
			bias:  src.NormFloat64() * 0.05, // mild leniency differences
			noise: 0.06 + src.Float64()*0.06,
			rng:   rand.New(rand.NewSource(src.Int63())),
		}
	}
	return panel
}

// Score rates one team in [0, 1].
func (j *Judge) Score(tm *team.Team, g *expertgraph.Graph) float64 {
	pr := team.ProfileOf(tm, g)
	base := 0.5*saturate(pr.AvgTeamAuth, 40) +
		0.25*saturate(pr.AvgPubs, 120) +
		0.25*saturate(pr.AvgHolderAuth, 15)
	s := base + j.bias + j.rng.NormFloat64()*j.noise
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// saturate maps x ≥ 0 into [0, 1) with logarithmic diminishing
// returns, reaching ~1 around the reference value.
func saturate(x, ref float64) float64 {
	v := math.Log1p(x) / math.Log1p(ref)
	if v > 1 {
		return 1
	}
	return v
}

// PanelPrecision averages the panel's scores over a slice of teams
// and returns a percentage, the quantity Figure 4 plots.
func PanelPrecision(panel []*Judge, teams []*team.Team, g *expertgraph.Graph) float64 {
	if len(teams) == 0 || len(panel) == 0 {
		return 0
	}
	total := 0.0
	for _, tm := range teams {
		for _, j := range panel {
			total += j.Score(tm, g)
		}
	}
	return 100 * total / float64(len(teams)*len(panel))
}
