package eval

import (
	"fmt"

	"authteam/internal/core"
	"authteam/internal/expertgraph"
	"authteam/internal/stats"
	"authteam/internal/team"
)

// Figure 5: sensitivity of the discovered teams to λ — (a) average
// skill-holder h-index, (b) average connector h-index, (c) average
// team size, (d) average publications — under the paper's two
// methodologies: the top-5 teams of the fixed project [analytics,
// matrix, communities, object oriented], and the best team of five
// random 4-skill projects. The paper plots normalized values; both raw
// and normalized series are reported.

// Fig5Point is one λ sample of the four measures.
type Fig5Point struct {
	Lambda  float64
	HolderH float64 // avg skill-holder h-index
	ConnH   float64 // avg connector h-index
	Size    float64 // avg team size
	Pubs    float64 // avg publications per member
}

// Fig5Series is one methodology's sweep.
type Fig5Series struct {
	Name   string
	Points []Fig5Point
}

// Fig5Result aggregates both methodologies.
type Fig5Result struct {
	TopKFixed    Fig5Series // top-5 teams of the fixed 4-skill project
	BestRandom   Fig5Series // best team of 5 random 4-skill projects
	UsedFallback bool       // fixed project replaced by a random one
}

const fig5RandomProjects = 5

// RunFig5 executes the sensitivity experiment.
func RunFig5(env *Env) (*Fig5Result, error) {
	cfg := env.Cfg
	res := &Fig5Result{}

	fixed, ok := env.Figure6Project()
	if !ok {
		// The corpus is expected to cover the Figure 6 skills; fall
		// back to a random 4-skill project at tiny test scales.
		gen, err := env.Generator(555)
		if err != nil {
			return nil, err
		}
		fixed, err = gen.Project(4)
		if err != nil {
			return nil, err
		}
		res.UsedFallback = true
	}

	gen, err := env.Generator(556)
	if err != nil {
		return nil, err
	}
	randomProjects, err := gen.Projects(fig5RandomProjects, 4)
	if err != nil {
		return nil, err
	}

	res.TopKFixed = Fig5Series{Name: fmt.Sprintf("top-%d teams, fixed project", cfg.TopK)}
	res.BestRandom = Fig5Series{Name: fmt.Sprintf("best team, %d random projects", fig5RandomProjects)}

	for _, lambda := range cfg.SensitivityLambdas {
		p, err := env.Params(lambda)
		if err != nil {
			return nil, err
		}
		// Methodology 1: top-k on the fixed project.
		teams, err := env.Discoverer(core.SACACC, p).TopK(fixed, cfg.TopK)
		if err != nil {
			return nil, fmt.Errorf("fig5: fixed project at λ=%.1f: %w", lambda, err)
		}
		res.TopKFixed.Points = append(res.TopKFixed.Points, averageProfiles(env.Graph, teams, lambda))

		// Methodology 2: best team per random project.
		var bests []*team.Team
		for _, project := range randomProjects {
			tm, err := env.Discoverer(core.SACACC, p).BestTeam(project)
			if err != nil {
				return nil, fmt.Errorf("fig5: random project at λ=%.1f: %w", lambda, err)
			}
			bests = append(bests, tm)
		}
		res.BestRandom.Points = append(res.BestRandom.Points, averageProfiles(env.Graph, bests, lambda))
	}
	return res, nil
}

func averageProfiles(g *expertgraph.Graph, teams []*team.Team, lambda float64) Fig5Point {
	pt := Fig5Point{Lambda: lambda}
	if len(teams) == 0 {
		return pt
	}
	for _, tm := range teams {
		pr := team.ProfileOf(tm, g)
		pt.HolderH += pr.AvgHolderAuth
		pt.ConnH += pr.AvgConnectorAuth
		pt.Size += float64(pr.Size)
		pt.Pubs += pr.AvgPubs
	}
	n := float64(len(teams))
	pt.HolderH /= n
	pt.ConnH /= n
	pt.Size /= n
	pt.Pubs /= n
	return pt
}

// Normalized returns the series' four measures min–max normalized over
// the sweep, the scale of the paper's plot.
func (s Fig5Series) Normalized() [][]float64 {
	pick := func(f func(Fig5Point) float64) []float64 {
		xs := make([]float64, len(s.Points))
		for i, p := range s.Points {
			xs[i] = f(p)
		}
		return stats.Normalize(xs)
	}
	return [][]float64{
		pick(func(p Fig5Point) float64 { return p.HolderH }),
		pick(func(p Fig5Point) float64 { return p.ConnH }),
		pick(func(p Fig5Point) float64 { return p.Size }),
		pick(func(p Fig5Point) float64 { return p.Pubs }),
	}
}

// Table renders both series, raw and normalized.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title: "Figure 5 — sensitivity to λ (raw values, normalized in parentheses)",
		Headers: []string{"series", "lambda", "holder h-index", "connector h-index",
			"team size", "avg pubs"},
	}
	add := func(s Fig5Series) {
		norm := s.Normalized()
		for i, p := range s.Points {
			t.Rows = append(t.Rows, []string{
				s.Name,
				fmtF(p.Lambda, 1),
				fmt.Sprintf("%s (%s)", fmtF(p.HolderH, 2), fmtF(norm[0][i], 2)),
				fmt.Sprintf("%s (%s)", fmtF(p.ConnH, 2), fmtF(norm[1][i], 2)),
				fmt.Sprintf("%s (%s)", fmtF(p.Size, 2), fmtF(norm[2][i], 2)),
				fmt.Sprintf("%s (%s)", fmtF(p.Pubs, 2), fmtF(norm[3][i], 2)),
			})
		}
	}
	add(r.TopKFixed)
	add(r.BestRandom)
	return t
}
