package eval

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"authteam/internal/core"
	"authteam/internal/expertgraph"
	"authteam/internal/team"
	"authteam/internal/transform"
)

// Figure 3: mean SA-CA-CC score of each ranking strategy (CC, CA-CC,
// SA-CA-CC, Random, Exact) as a function of λ, one panel per project
// size (4/6/8/10 skills), γ fixed (0.6 in the paper), averaged over
// Projects random projects. Exact runs only for small panels, exactly
// as the paper reports ("Exact was only able to handle 4 and 6
// skills").

// Fig3Panel is one subplot: skills fixed, series over λ.
type Fig3Panel struct {
	Skills  int
	Lambdas []float64
	// Mean[method][i] is the mean SA-CA-CC score at Lambdas[i]; NaN
	// when the series was not run (Exact on large panels).
	Mean map[string][]float64
}

// Fig3Result aggregates all panels.
type Fig3Result struct {
	Panels []Fig3Panel
}

// projectScores carries one project's per-λ scores for each method.
type projectScores struct {
	scores map[string][]float64 // method -> per-λ SA-CA-CC (NaN = missing)
	err    error
}

// RunFig3 executes the Figure 3 experiment.
func RunFig3(env *Env) (*Fig3Result, error) {
	cfg := env.Cfg
	// Per-λ transform params are immutable after Fit and shared across
	// workers.
	params := make([]*transform.Params, len(cfg.Lambdas))
	for i, l := range cfg.Lambdas {
		p, err := env.Params(l)
		if err != nil {
			return nil, err
		}
		params[i] = p
	}

	res := &Fig3Result{}
	for _, skills := range cfg.SkillCounts {
		gen, err := env.Generator(int64(300 + skills))
		if err != nil {
			return nil, err
		}
		projects, err := gen.Projects(cfg.Projects, skills)
		if err != nil {
			return nil, fmt.Errorf("fig3: %d-skill workload: %w", skills, err)
		}
		panel := Fig3Panel{
			Skills:  skills,
			Lambdas: cfg.Lambdas,
			Mean:    make(map[string][]float64, len(MethodNames)),
		}

		out := make([]projectScores, len(projects))
		runParallel(cfg.Workers, len(projects), func(pi int) {
			out[pi] = fig3Project(env, params, projects[pi], skills, pi)
		})

		for _, method := range MethodNames {
			sums := make([]float64, len(cfg.Lambdas))
			counts := make([]int, len(cfg.Lambdas))
			for pi := range out {
				if out[pi].err != nil {
					continue
				}
				for i, v := range out[pi].scores[method] {
					if !math.IsNaN(v) {
						sums[i] += v
						counts[i]++
					}
				}
			}
			means := make([]float64, len(cfg.Lambdas))
			for i := range means {
				if counts[i] == 0 {
					means[i] = math.NaN()
				} else {
					means[i] = sums[i] / float64(counts[i])
				}
			}
			panel.Mean[method] = means
		}
		for _, ps := range out {
			if ps.err != nil {
				return nil, ps.err
			}
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

// fig3Project computes every method's per-λ score for one project.
func fig3Project(env *Env, params []*transform.Params,
	project []expertgraph.SkillID, skills, projectIdx int) projectScores {

	cfg := env.Cfg
	nan := func() []float64 {
		xs := make([]float64, len(params))
		for i := range xs {
			xs[i] = math.NaN()
		}
		return xs
	}
	ps := projectScores{scores: map[string][]float64{
		"CC": nan(), "CA-CC": nan(), "SA-CA-CC": nan(), "Random": nan(), "Exact": nan(),
	}}

	evalAt := func(tm *team.Team, i int) float64 {
		return team.Evaluate(tm, params[i]).SACACC
	}

	// CC and CA-CC searches are λ-independent: one team each, scored
	// under every λ.
	ccTeam, err := env.Discoverer(core.CC, params[0]).BestTeam(project)
	if err != nil {
		ps.err = fmt.Errorf("fig3: CC on project %d: %w", projectIdx, err)
		return ps
	}
	caccTeam, err := env.Discoverer(core.CACC, params[0]).BestTeam(project)
	if err != nil {
		ps.err = fmt.Errorf("fig3: CA-CC on project %d: %w", projectIdx, err)
		return ps
	}
	for i := range params {
		ps.scores["CC"][i] = evalAt(ccTeam, i)
		ps.scores["CA-CC"][i] = evalAt(caccTeam, i)
	}

	for i, p := range params {
		saTeam, err := env.Discoverer(core.SACACC, p).BestTeam(project)
		if err != nil {
			ps.err = fmt.Errorf("fig3: SA-CA-CC on project %d: %w", projectIdx, err)
			return ps
		}
		ps.scores["SA-CA-CC"][i] = evalAt(saTeam, i)

		rng := rand.New(rand.NewSource(cfg.Seed*7_777_777 + int64(projectIdx)*131 + int64(i)))
		var rndTeam *team.Team
		if env.gOracle != nil {
			rndTeam, err = core.RandomFast(p, project, cfg.RandomTrials, rng, env.gOracle)
		} else {
			rndTeam, err = core.Random(p, project, cfg.RandomTrials, rng)
		}
		if err != nil {
			ps.err = fmt.Errorf("fig3: Random on project %d: %w", projectIdx, err)
			return ps
		}
		ps.scores["Random"][i] = evalAt(rndTeam, i)

		if skills <= cfg.ExactSkillLimit && projectIdx < cfg.ExactProjects {
			// The assignment space is |C|^skills; beyond 4 skills the
			// candidate truncation tightens further to keep Exact's
			// exponential cost within minutes (the paper stops at 6
			// skills for the same reason).
			cands := cfg.ExactCandidates
			if skills > 4 && cands > 3 {
				cands = 3
			}
			exTeam, err := core.Exact(p, project, core.ExactOptions{
				MaxCandidatesPerSkill: cands,
				Oracle:                env.gOracle,
			})
			switch {
			case err == nil:
				ps.scores["Exact"][i] = evalAt(exTeam, i)
			case errors.Is(err, core.ErrBudgetExceeded):
				// The paper's "did not terminate": leave the cell blank.
			default:
				ps.err = fmt.Errorf("fig3: Exact on project %d: %w", projectIdx, err)
				return ps
			}
		}
	}
	return ps
}

// Table renders the panels as one long table (panel, λ, one column per
// method).
func (r *Fig3Result) Table() *Table {
	t := &Table{
		Title:   "Figure 3 — mean SA-CA-CC score by ranking strategy (lower is better)",
		Headers: append([]string{"skills", "lambda"}, MethodNames...),
	}
	for _, panel := range r.Panels {
		for i, l := range panel.Lambdas {
			row := []string{fmt.Sprintf("%d", panel.Skills), fmtF(l, 1)}
			for _, m := range MethodNames {
				row = append(row, fmtScore(panel.Mean[m][i]))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// runParallel fans fn(i) for i in [0, n) over w workers.
func runParallel(w, n int, fn func(i int)) {
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
