package eval

import (
	"fmt"

	"authteam/internal/core"
	"authteam/internal/team"
)

// Figure 4: top-5 precision of CC, CA-CC and SA-CA-CC under the
// (simulated) six-judge panel, per project size, with λ = γ = 0.6.
// The paper used one project per skill count; we average a handful to
// reduce judge-noise variance, which does not change the comparison.

// Fig4Row is one cluster of bars: precision per method at one size.
type Fig4Row struct {
	Skills    int
	Precision map[string]float64 // method -> top-5 precision (%)
}

// Fig4Result aggregates the user study.
type Fig4Result struct {
	Rows []Fig4Row
}

// fig4Methods excludes the baselines the paper's user study omits.
var fig4Methods = []string{"CC", "CA-CC", "SA-CA-CC"}

// fig4ProjectsPerSize is the number of projects averaged per skill
// count (the paper judged one per size; averaging smooths judge noise).
const fig4ProjectsPerSize = 4

// RunFig4 executes the user-study experiment.
func RunFig4(env *Env) (*Fig4Result, error) {
	cfg := env.Cfg
	panel := NewPanel(6, cfg.Seed*31+7)
	p, err := env.Params(cfg.Lambda)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{}
	for _, skills := range cfg.SkillCounts {
		gen, err := env.Generator(int64(400 + skills))
		if err != nil {
			return nil, err
		}
		projects, err := gen.Projects(fig4ProjectsPerSize, skills)
		if err != nil {
			return nil, fmt.Errorf("fig4: %d-skill workload: %w", skills, err)
		}
		row := Fig4Row{Skills: skills, Precision: make(map[string]float64, len(fig4Methods))}
		for mi, method := range []core.Method{core.CC, core.CACC, core.SACACC} {
			var all []*team.Team
			for _, project := range projects {
				teams, err := env.Discoverer(method, p).TopK(project, cfg.TopK)
				if err != nil {
					return nil, fmt.Errorf("fig4: %v: %w", method, err)
				}
				all = append(all, teams...)
			}
			row.Precision[fig4Methods[mi]] = PanelPrecision(panel, all, env.Graph)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the bar chart data.
func (r *Fig4Result) Table() *Table {
	t := &Table{
		Title:   "Figure 4 — top-5 precision (%) under the six-judge panel (λ=γ=0.6)",
		Headers: append([]string{"skills"}, fig4Methods...),
	}
	for _, row := range r.Rows {
		cells := []string{fmt.Sprintf("%d", row.Skills)}
		for _, m := range fig4Methods {
			cells = append(cells, fmtF(row.Precision[m], 1))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}
