package eval

import (
	"fmt"
	"time"

	"authteam/internal/core"
	"authteam/internal/expertgraph"
	"authteam/internal/team"
	"authteam/internal/transform"
)

// Ablations of the design choices DESIGN.md §5 calls out:
//
//  1. Oracle — the 2-hop cover index must return exactly the teams the
//     exact Dijkstra oracle returns (it answers the same DIST values),
//     while being dramatically faster per query; this quantifies both.
//  2. Normalization — Definition 4 requires min–max normalization of
//     edge and node scales before combining. Without it, the raw
//     scales silently re-weight γ and λ; the ablation reports how team
//     composition changes.
//  3. Surrogate — Algorithm 1 scores roots with Σ path costs (shared
//     path segments double-counted). The gap between the surrogate
//     and the evaluated tree objective measures how loose the greedy
//     score is in practice.

// AblationResult carries the three studies.
type AblationResult struct {
	// Oracle study.
	OracleProjects   int
	OracleAgreements int     // projects where PLL and Dijkstra teams tie exactly
	PLLQueryMS       float64 // mean full-query latency via the index
	DijkstraQueryMS  float64 // mean full-query latency via per-root Dijkstra

	// Normalization study (SA-CA-CC teams, mean over projects).
	NormHolderH, RawHolderH float64 // avg holder h-index with/without Def. 4
	NormConnH, RawConnH     float64
	NormSize, RawSize       float64

	// Surrogate study: mean (evaluated objective) / (greedy surrogate).
	SurrogateRatio float64
}

// ablationProjects is the sample size per study.
const ablationProjects = 5

// RunAblations executes all three studies on 4-skill projects.
func RunAblations(env *Env) (*AblationResult, error) {
	cfg := env.Cfg
	p, err := env.Params(cfg.Lambda)
	if err != nil {
		return nil, err
	}
	gen, err := env.Generator(808)
	if err != nil {
		return nil, err
	}
	projects, err := gen.Projects(ablationProjects, 4)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{OracleProjects: len(projects)}

	// 1. Oracle agreement and speed.
	for _, project := range projects {
		t0 := time.Now()
		viaIdx, err := env.Discoverer(core.SACACC, p).BestTeam(project)
		if err != nil {
			return nil, err
		}
		res.PLLQueryMS += msSince(t0)

		t0 = time.Now()
		viaDijkstra, err := core.NewDiscoverer(p, core.SACACC).BestTeam(project)
		if err != nil {
			return nil, err
		}
		res.DijkstraQueryMS += msSince(t0)

		if team.Evaluate(viaIdx, p).SACACC == team.Evaluate(viaDijkstra, p).SACACC {
			res.OracleAgreements++
		}
	}
	res.PLLQueryMS /= float64(len(projects))
	res.DijkstraQueryMS /= float64(len(projects))

	// 2. Normalization.
	raw, err := transform.Fit(env.Graph, cfg.Gamma, cfg.Lambda, transform.Options{Normalize: false})
	if err != nil {
		return nil, err
	}
	for _, project := range projects {
		normTeam, err := env.Discoverer(core.SACACC, p).BestTeam(project)
		if err != nil {
			return nil, err
		}
		rawTeam, err := core.NewDiscoverer(raw, core.SACACC).BestTeam(project)
		if err != nil {
			return nil, err
		}
		np := team.ProfileOf(normTeam, env.Graph)
		rp := team.ProfileOf(rawTeam, env.Graph)
		res.NormHolderH += np.AvgHolderAuth
		res.RawHolderH += rp.AvgHolderAuth
		res.NormConnH += np.AvgConnectorAuth
		res.RawConnH += rp.AvgConnectorAuth
		res.NormSize += float64(np.Size)
		res.RawSize += float64(rp.Size)
	}
	n := float64(len(projects))
	res.NormHolderH /= n
	res.RawHolderH /= n
	res.NormConnH /= n
	res.RawConnH /= n
	res.NormSize /= n
	res.RawSize /= n

	// 3. Surrogate gap: compare the greedy surrogate cost (recomputed
	// from oracle distances for the winning root) with the evaluated
	// objective of the reconstructed tree.
	total, count := 0.0, 0
	for _, project := range projects {
		tm, err := env.Discoverer(core.SACACC, p).BestTeam(project)
		if err != nil {
			return nil, err
		}
		surrogate := surrogateCost(env, p, tm, project)
		evaluated := team.Evaluate(tm, p).SACACC
		if surrogate > 0 {
			total += evaluated / surrogate
			count++
		}
	}
	if count > 0 {
		res.SurrogateRatio = total / float64(count)
	}
	return res, nil
}

// surrogateCost recomputes Algorithm 1's greedy score for the team's
// root and assignment.
func surrogateCost(env *Env, p *transform.Params, tm *team.Team,
	project []expertgraph.SkillID) float64 {

	ws := expertgraph.NewDijkstraWorkspace(env.Graph)
	sssp := ws.RunWeighted(tm.Root, p.EdgeWeight())
	cost := 0.0
	for _, s := range project {
		holder := tm.Assignment[s]
		if holder == tm.Root && env.Graph.HasSkill(tm.Root, s) {
			cost += p.Lambda * p.NormInv(tm.Root)
			continue
		}
		cost += p.SACACCCost(sssp.Dist[holder], holder)
	}
	return cost
}

// Table renders the three studies.
func (r *AblationResult) Table() *Table {
	t := &Table{
		Title:   "Ablations — oracle, normalization, surrogate (4-skill projects)",
		Headers: []string{"study", "metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"oracle", "PLL/Dijkstra team agreement",
			fmt.Sprintf("%d/%d", r.OracleAgreements, r.OracleProjects)},
		[]string{"oracle", "mean query via index (ms)", fmtF(r.PLLQueryMS, 1)},
		[]string{"oracle", "mean query via Dijkstra (ms)", fmtF(r.DijkstraQueryMS, 1)},
		[]string{"normalization", "avg holder h (Def.4 on / off)",
			fmt.Sprintf("%s / %s", fmtF(r.NormHolderH, 2), fmtF(r.RawHolderH, 2))},
		[]string{"normalization", "avg connector h (on / off)",
			fmt.Sprintf("%s / %s", fmtF(r.NormConnH, 2), fmtF(r.RawConnH, 2))},
		[]string{"normalization", "team size (on / off)",
			fmt.Sprintf("%s / %s", fmtF(r.NormSize, 2), fmtF(r.RawSize, 2))},
		[]string{"surrogate", "evaluated / greedy-surrogate ratio", fmtF(r.SurrogateRatio, 3)},
	)
	return t
}
