package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Rendering helpers shared by the figure runners: aligned ASCII tables
// for terminals and CSV files for plotting.

// Table is a rendered experiment artifact.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV writes the table (headers + rows) to path, creating parent
// directories as needed.
func (t *Table) WriteCSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("eval: csv dir: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("eval: csv: %w", err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(t.Headers); err != nil {
		f.Close()
		return err
	}
	if err := w.WriteAll(t.Rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fmtScore formats an objective value; NaN renders as a dash (the
// paper leaves Exact blank where it did not terminate).
func fmtScore(x float64) string {
	if math.IsNaN(x) {
		return "—"
	}
	return fmt.Sprintf("%.4f", x)
}

func fmtF(x float64, prec int) string {
	if math.IsNaN(x) {
		return "—"
	}
	return fmt.Sprintf("%.*f", prec, x)
}
