package eval

import (
	"fmt"
	"math/rand"

	"authteam/internal/core"
	"authteam/internal/dblp"
	"authteam/internal/expertgraph"
)

// §4.3 "Quality of Teams": the paper discovered teams from the
// pre-2016 graph, looked up where those researchers actually published
// in 2016, and found the SA-CA-CC teams' venues outranked the CC
// teams' venues 78% of the time. The real 2016 ground truth is
// unavailable offline; the future-publication simulator (dblp
// .FutureModel, see DESIGN.md) generates next-year venues under the
// mentorship assumption, and this runner reports the same head-to-head
// statistic.

// QualityResult is the §4.3 statistic.
type QualityResult struct {
	Projects    int
	TrialsEach  int
	Wins        int // SA-CA-CC team's best venue strictly outranks CC's
	Comparisons int
	WinPct      float64
	PerProject  []float64 // win % per project
	// Skipped counts projects where both methods discovered the same
	// team — there is no head-to-head to report (the paper compares
	// the venues of the *different* teams each method found).
	Skipped int
}

// RunQuality executes the quality-of-teams experiment.
func RunQuality(env *Env) (*QualityResult, error) {
	cfg := env.Cfg
	p, err := env.Params(cfg.Lambda)
	if err != nil {
		return nil, err
	}
	gen, err := env.Generator(777)
	if err != nil {
		return nil, err
	}
	model := dblp.FutureModel{}
	rng := rand.New(rand.NewSource(cfg.Seed*97 + 13))
	res := &QualityResult{TrialsEach: cfg.QualityTrials}
	// Sample projects until QualityProjects head-to-heads exist: when
	// both methods return the same team there is nothing to compare
	// (the paper's comparison presupposes the methods disagreed).
	const maxDraws = 40
	for draw := 0; draw < maxDraws && res.Projects < cfg.QualityProjects; draw++ {
		project, err := gen.Project(4)
		if err != nil {
			return nil, err
		}
		ccTeam, err := env.Discoverer(core.CC, p).BestTeam(project)
		if err != nil {
			return nil, fmt.Errorf("quality: CC on draw %d: %w", draw, err)
		}
		saTeam, err := env.Discoverer(core.SACACC, p).BestTeam(project)
		if err != nil {
			return nil, fmt.Errorf("quality: SA-CA-CC on draw %d: %w", draw, err)
		}
		if sameNodes(ccTeam.Nodes, saTeam.Nodes) {
			res.Skipped++
			continue
		}
		res.Projects++
		wins := 0
		for trial := 0; trial < cfg.QualityTrials; trial++ {
			if model.CompareTeams(saTeam, ccTeam, env.Graph, rng) {
				wins++
			}
		}
		res.Wins += wins
		res.Comparisons += cfg.QualityTrials
		res.PerProject = append(res.PerProject, 100*float64(wins)/float64(cfg.QualityTrials))
	}
	if res.Comparisons > 0 {
		res.WinPct = 100 * float64(res.Wins) / float64(res.Comparisons)
	}
	return res, nil
}

// Table renders the statistic next to the paper's reported 78%.
func (r *QualityResult) Table() *Table {
	t := &Table{
		Title:   "§4.3 — SA-CA-CC vs CC: simulated next-year venue head-to-heads (paper: 78%)",
		Headers: []string{"project", "SA-CA-CC wins (%)"},
	}
	for i, pct := range r.PerProject {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", i+1), fmtF(pct, 1)})
	}
	t.Rows = append(t.Rows, []string{"overall", fmtF(r.WinPct, 1)})
	if r.Skipped > 0 {
		t.Rows = append(t.Rows, []string{"(identical teams skipped)", fmt.Sprintf("%d", r.Skipped)})
	}
	return t
}

func sameNodes(a, b []expertgraph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
