package workload

import (
	"errors"
	"testing"

	"authteam/internal/dblp"
	"authteam/internal/expertgraph"
)

func testGraph(t *testing.T) *expertgraph.Graph {
	t.Helper()
	c := dblp.Synthesize(dblp.SynthConfig{Seed: 1, Authors: 500})
	g, _, err := dblp.BuildGraph(c, dblp.GraphOptions{LargestComponent: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestProjectSizes(t *testing.T) {
	g := testGraph(t)
	gen, err := NewGenerator(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{4, 6, 8, 10} {
		p, err := gen.Project(n)
		if err != nil {
			t.Fatalf("Project(%d): %v", n, err)
		}
		if len(p) != n {
			t.Fatalf("Project(%d) returned %d skills", n, len(p))
		}
		// Distinct skills.
		seen := make(map[expertgraph.SkillID]bool)
		for _, s := range p {
			if seen[s] {
				t.Errorf("duplicate skill %d in project", s)
			}
			seen[s] = true
			if len(g.ExpertsWithSkill(s)) == 0 {
				t.Errorf("skill %d has no holders", s)
			}
		}
	}
}

func TestProjectsDeterministic(t *testing.T) {
	g := testGraph(t)
	gen1, _ := NewGenerator(g, 7, Options{})
	gen2, _ := NewGenerator(g, 7, Options{})
	p1, err := gen1.Projects(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := gen2.Projects(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		for j := range p1[i] {
			if p1[i][j] != p2[i][j] {
				t.Fatal("same seed should give identical projects")
			}
		}
	}
	gen3, _ := NewGenerator(g, 8, Options{})
	p3, err := gen3.Projects(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range p1 {
		for j := range p1[i] {
			if p1[i][j] != p3[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds should give different projects")
	}
}

func TestMinHolders(t *testing.T) {
	g := testGraph(t)
	loose, _ := NewGenerator(g, 1, Options{MinHolders: 1})
	strict, _ := NewGenerator(g, 1, Options{MinHolders: 5})
	if strict.EligibleSkills() >= loose.EligibleSkills() {
		t.Errorf("MinHolders should shrink eligibility: %d vs %d",
			strict.EligibleSkills(), loose.EligibleSkills())
	}
	p, err := strict.Project(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p {
		if len(g.ExpertsWithSkill(s)) < 5 {
			t.Errorf("skill %d has fewer than 5 holders", s)
		}
	}
}

func TestTooFewSkills(t *testing.T) {
	b := expertgraph.NewBuilder(2, 1)
	x := b.AddNode("x", 1, "only")
	y := b.AddNode("y", 1)
	b.AddEdge(x, y, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Project(4); !errors.Is(err, ErrTooFewSkills) {
		t.Errorf("err = %v, want ErrTooFewSkills", err)
	}
}

func TestBadProjectSize(t *testing.T) {
	g := testGraph(t)
	gen, _ := NewGenerator(g, 1, Options{})
	if _, err := gen.Project(0); err == nil {
		t.Error("Project(0) should fail")
	}
}

// TestFeasibilityAcrossComponents builds a graph where skills only
// co-occur within one component and checks the sampler never returns
// a cross-component project.
func TestFeasibilityAcrossComponents(t *testing.T) {
	b := expertgraph.NewBuilder(4, 2)
	// Component A holds skills {a, b}; component B holds {c, d}.
	a1 := b.AddNode("a1", 1, "a")
	a2 := b.AddNode("a2", 1, "b")
	c1 := b.AddNode("c1", 1, "c")
	c2 := b.AddNode("c2", 1, "d")
	b.AddEdge(a1, a2, 1)
	b.AddEdge(c1, c2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	compOf, _ := expertgraph.Components(g)
	for trial := 0; trial < 50; trial++ {
		p, err := gen.Project(2)
		if err != nil {
			t.Fatal(err)
		}
		comps := make(map[int32]bool)
		for _, s := range p {
			for _, u := range g.ExpertsWithSkill(s) {
				comps[compOf[u]] = true
			}
		}
		if len(comps) != 1 {
			t.Fatalf("project %v spans %d components", p, len(comps))
		}
	}
	// A 3-skill project is infeasible here (components hold 2 each).
	if _, err := gen.Project(3); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}
