// Package workload generates the experimental workloads of §4 of the
// paper: random projects of 4, 6, 8 or 10 required skills, sampled so
// a team exists (every skill coverable within one connected component
// of the expert network), with deterministic seeding so experiment
// runs are reproducible.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"authteam/internal/expertgraph"
)

// Common errors.
var (
	ErrTooFewSkills = errors.New("workload: not enough eligible skills")
	ErrInfeasible   = errors.New("workload: could not sample a feasible project")
)

// Options configures the generator.
type Options struct {
	// MinHolders excludes skills with fewer holders (default 1).
	// Raising it avoids degenerate projects where a skill has exactly
	// one holder and every method must pick the same expert.
	MinHolders int
	// MaxAttempts bounds rejection sampling per project (default 200).
	MaxAttempts int
}

func (o Options) withDefaults() Options {
	if o.MinHolders == 0 {
		o.MinHolders = 1
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 200
	}
	return o
}

// Generator samples feasible projects from one expert network. It is
// not safe for concurrent use (it owns its rand.Rand); create one per
// goroutine.
type Generator struct {
	g        *expertgraph.Graph
	rng      *rand.Rand
	opt      Options
	eligible []expertgraph.SkillID
	compOf   []int32
}

// NewGenerator prepares a generator over g with the given seed.
func NewGenerator(g *expertgraph.Graph, seed int64, opt Options) (*Generator, error) {
	opt = opt.withDefaults()
	gen := &Generator{
		g:   g,
		rng: rand.New(rand.NewSource(seed)),
		opt: opt,
	}
	for s := 0; s < g.NumSkills(); s++ {
		id := expertgraph.SkillID(s)
		if len(g.ExpertsWithSkill(id)) >= opt.MinHolders {
			gen.eligible = append(gen.eligible, id)
		}
	}
	gen.compOf, _ = expertgraph.Components(g)
	return gen, nil
}

// EligibleSkills returns how many skills the generator samples from.
func (gen *Generator) EligibleSkills() int { return len(gen.eligible) }

// Project samples one feasible project with n distinct skills.
func (gen *Generator) Project(n int) ([]expertgraph.SkillID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: project size %d", n)
	}
	if len(gen.eligible) < n {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrTooFewSkills, n, len(gen.eligible))
	}
	for attempt := 0; attempt < gen.opt.MaxAttempts; attempt++ {
		project := gen.sample(n)
		if gen.feasible(project) {
			return project, nil
		}
	}
	return nil, fmt.Errorf("%w: %d skills after %d attempts", ErrInfeasible, n, gen.opt.MaxAttempts)
}

// Projects samples count feasible projects of n skills each.
func (gen *Generator) Projects(count, n int) ([][]expertgraph.SkillID, error) {
	out := make([][]expertgraph.SkillID, 0, count)
	for i := 0; i < count; i++ {
		p, err := gen.Project(n)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// sample draws n distinct eligible skills (partial Fisher–Yates).
func (gen *Generator) sample(n int) []expertgraph.SkillID {
	idx := gen.rng.Perm(len(gen.eligible))[:n]
	out := make([]expertgraph.SkillID, n)
	for i, j := range idx {
		out[i] = gen.eligible[j]
	}
	return out
}

// feasible reports whether some connected component contains at least
// one holder of every skill in the project, i.e. a team exists.
func (gen *Generator) feasible(project []expertgraph.SkillID) bool {
	if len(project) == 0 {
		return false
	}
	// Components holding skill 0's holders are the only candidates.
	cands := make(map[int32]int) // component -> skills covered so far
	for _, u := range gen.g.ExpertsWithSkill(project[0]) {
		cands[gen.compOf[u]] = 1
	}
	for i := 1; i < len(project); i++ {
		hit := make(map[int32]bool)
		for _, u := range gen.g.ExpertsWithSkill(project[i]) {
			hit[gen.compOf[u]] = true
		}
		alive := false
		for comp, covered := range cands {
			if covered == i && hit[comp] {
				cands[comp] = i + 1
				alive = true
			}
		}
		if !alive {
			return false
		}
	}
	for _, covered := range cands {
		if covered == len(project) {
			return true
		}
	}
	return false
}
