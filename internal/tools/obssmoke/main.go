// Command obssmoke is the CI smoke check for the observability layer:
// it boots a real leader/follower pair with teamdisc-equivalent
// configuration (ListenAndServe, debug listener, journal), drives
// mutations and discoveries through HTTP, and then fails loudly
// unless
//
//   - /metrics parses as well-formed Prometheus text exposition on
//     both nodes (via the strict internal parser),
//   - the core metric families are present on each node for its role
//     (request latency by route, live apply/journal timings, index
//     maintenance, replication lag on the follower),
//   - traced discoveries carry the X-Authteam-Trace header and a
//     ?debug=trace span section that sums to the reported total,
//   - /readyz answers 200 on the leader and on the caught-up
//     follower, and
//   - the debug listener serves the pprof index.
//
// It is an end-to-end check, not a unit test: everything runs over
// real TCP listeners exactly as a deployment would.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"authteam/internal/dblp"
	"authteam/internal/obs"
	"authteam/internal/server"
	"authteam/internal/workload"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obssmoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

// freeAddr reserves a loopback port and releases it for the server to
// claim. The tiny race window is acceptable in CI.
func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("reserve port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHTTP(url string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			fail("%s not up after %v (last err: %v)", url, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func postJSON(url, body string) (int, string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		fail("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("read %s: %v", url, err)
	}
	return resp.StatusCode, string(data)
}

// scrape fetches and strictly parses url's exposition, failing the run
// on any malformation.
func scrape(node, url string) map[string]obs.Family {
	resp, err := http.Get(url)
	if err != nil {
		fail("%s: GET %s: %v", node, url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("%s: %s returned %d", node, url, resp.StatusCode)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		fail("%s: malformed exposition at %s: %v", node, url, err)
	}
	out := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		out[f.Name] = f
	}
	return out
}

func requireFamilies(node string, fams map[string]obs.Family, names ...string) {
	for _, n := range names {
		if _, ok := fams[n]; !ok {
			fail("%s: core family %s missing from /metrics", node, n)
		}
	}
}

func checkTrace(node, base string, skills []string) {
	names, _ := json.Marshal(skills)
	body := fmt.Sprintf(`{"skills": %s, "method": "sa-ca-cc", "k": 2}`, names)
	resp, err := http.Post(base+"/v1/discover?debug=trace", "application/json", strings.NewReader(body))
	if err != nil {
		fail("%s: traced discover: %v", node, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	data := string(raw)
	if resp.StatusCode != http.StatusOK {
		fail("%s: traced discover status %d: %s", node, resp.StatusCode, data)
	}
	if resp.Header.Get("X-Authteam-Trace") == "" {
		fail("%s: X-Authteam-Trace header missing", node)
	}
	var out struct {
		Trace *struct {
			TotalMS float64 `json:"total_ms"`
			Spans   []struct {
				Stage string  `json:"stage"`
				MS    float64 `json:"ms"`
			} `json:"spans"`
		} `json:"trace"`
	}
	if err := json.Unmarshal([]byte(data), &out); err != nil {
		fail("%s: decode traced discover: %v", node, err)
	}
	if out.Trace == nil || len(out.Trace.Spans) == 0 {
		fail("%s: no trace section in %s", node, data)
	}
	sum := 0.0
	for _, sp := range out.Trace.Spans {
		sum += sp.MS
	}
	if d := math.Abs(sum - out.Trace.TotalMS); d > 0.01+0.001*out.Trace.TotalMS {
		fail("%s: trace spans sum to %.4fms, total %.4fms", node, sum, out.Trace.TotalMS)
	}
}

func checkReadyz(node, base string) {
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		fail("%s: readyz: %v", node, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("%s: readyz %d: %s", node, resp.StatusCode, data)
	}
}

func main() {
	dir, err := os.MkdirTemp("", "obssmoke")
	if err != nil {
		fail("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	corpus := dblp.Synthesize(dblp.SynthConfig{Seed: 7, Authors: 300})
	g, _, err := dblp.BuildGraph(corpus, dblp.GraphOptions{LargestComponent: true})
	if err != nil {
		fail("build graph: %v", err)
	}
	gen, err := workload.NewGenerator(g, 11, workload.Options{MinHolders: 2})
	if err != nil {
		fail("workload generator: %v", err)
	}
	project, err := gen.Project(3)
	if err != nil {
		fail("sample project: %v", err)
	}
	skills := make([]string, 0, len(project))
	for _, sk := range project {
		skills = append(skills, g.SkillName(sk))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	lAddr, lDebug := freeAddr(), freeAddr()
	leader, err := server.New(server.Config{
		Addr:               lAddr,
		DebugAddr:          lDebug,
		Graph:              g,
		Workers:            4,
		CacheSize:          256,
		JournalPath:        filepath.Join(dir, "leader.wal"),
		SlowQueryThreshold: time.Nanosecond, // exercise the slow-query log path
	})
	if err != nil {
		fail("leader: %v", err)
	}
	go leader.ListenAndServe(ctx)
	lURL := "http://" + lAddr
	waitHTTP(lURL+"/healthz", 10*time.Second)

	// Churn: nodes and edges through the public mutation API, so the
	// apply/journal/repair instruments all move.
	for i := 0; i < 10; i++ {
		status, data := postJSON(lURL+"/v1/graph/nodes",
			fmt.Sprintf(`{"name": "smoke-%d", "authority": 5, "skills": [%q]}`, i, skills[0]))
		if status != http.StatusCreated {
			fail("leader: add node %d: %d: %s", i, status, data)
		}
	}

	fAddr := freeAddr()
	follower, err := server.New(server.Config{
		Addr:       fAddr,
		Graph:      nil,
		FollowURL:  lURL,
		FollowPoll: 200 * time.Millisecond,
		Workers:    4,
		CacheSize:  256,
	})
	if err != nil {
		fail("follower: %v", err)
	}
	go follower.ListenAndServe(ctx)
	fURL := "http://" + fAddr
	waitHTTP(fURL+"/healthz", 10*time.Second)
	waitHTTP(fURL+"/readyz", 15*time.Second) // 200 only once caught up

	// Traced discoveries on both nodes (the follower resolves the same
	// skill names against its replicated graph).
	checkTrace("leader", lURL, skills)
	checkTrace("follower", fURL, skills)

	coreFamilies := []string{
		"authteam_http_requests_total",
		"authteam_http_request_seconds",
		"authteam_discover_total",
		"authteam_discover_seconds",
		"authteam_live_apply_seconds",
		"authteam_live_journal_append_seconds",
		"authteam_live_fold_seconds",
		"authteam_live_overlay_build_seconds",
		"authteam_live_log_len",
		"authteam_live_epoch",
		"authteam_live_commit_batch_ops",
		"authteam_live_commit_seconds",
		"authteam_live_commits_total",
		"authteam_live_overlay_refolds_total",
		"authteam_live_overlay_chain_depth",
		"authteam_index_repair_seconds",
		"authteam_index_rebuild_seconds",
		"authteam_index_rebuild_queue_depth",
		"authteam_index_rebuild_workers",
		"authteam_cache_hits_total",
		// Cluster-role families are exported on every role so a
		// dashboard can watch a node move through the state machine.
		"authteam_cluster_term",
		"authteam_cluster_role",
		"authteam_cluster_promotions_total",
		"authteam_cluster_fenced_total",
	}
	lf := scrape("leader", lURL+"/metrics")
	requireFamilies("leader", lf, coreFamilies...)
	requireFamilies("leader", lf,
		"authteam_journal_tail_requests_total",
		"authteam_journal_base_requests_total")

	ff := scrape("follower", fURL+"/metrics")
	requireFamilies("follower", ff, coreFamilies...)
	requireFamilies("follower", ff,
		"authteam_replication_lag_epochs",
		"authteam_replication_lag_seconds",
		"authteam_replication_polls_total",
		"authteam_replication_applied_total",
		"authteam_replication_tail_roundtrip_seconds")

	// The debug listener mirrors /metrics and serves pprof.
	dbg := scrape("leader-debug", "http://"+lDebug+"/metrics")
	requireFamilies("leader-debug", dbg, "authteam_http_requests_total")
	resp, err := http.Get("http://" + lDebug + "/debug/pprof/")
	if err != nil || resp.StatusCode != http.StatusOK {
		fail("leader-debug: pprof index: err=%v status=%v", err, resp)
	}
	resp.Body.Close()

	checkReadyz("leader", lURL)
	checkReadyz("follower", fURL)

	// Failover drill: promote the follower and verify the role flip is
	// visible end to end — /v1/cluster/role, a locally-applied
	// mutation, and the cluster gauges on /metrics.
	status, data := postJSON(fURL+"/v1/cluster/promote", "{}")
	if status != http.StatusOK {
		fail("promote follower: %d: %s", status, data)
	}
	var ri struct {
		Role string `json:"role"`
		Term uint64 `json:"term"`
	}
	roleResp, err := http.Get(fURL + "/v1/cluster/role")
	if err != nil {
		fail("promoted role: %v", err)
	}
	if err := json.NewDecoder(roleResp.Body).Decode(&ri); err != nil {
		fail("decode promoted role: %v", err)
	}
	roleResp.Body.Close()
	if ri.Role != "leader" || ri.Term != 1 {
		fail("promoted node reports %+v, want leader at term 1", ri)
	}
	if status, data := postJSON(fURL+"/v1/graph/nodes",
		fmt.Sprintf(`{"name": "post-promotion", "authority": 5, "skills": [%q]}`, skills[0])); status != http.StatusCreated {
		fail("promoted node: local mutation: %d: %s", status, data)
	}
	pf := scrape("promoted", fURL+"/metrics")
	requireFamilies("promoted", pf, coreFamilies...)
	gauge := func(name string) float64 {
		fam, ok := pf[name]
		if !ok || len(fam.Samples) == 0 {
			fail("promoted: %s missing a sample", name)
		}
		return fam.Samples[0].Value
	}
	if v := gauge("authteam_cluster_term"); v != 1 {
		fail("promoted: cluster_term = %v, want 1", v)
	}
	if v := gauge("authteam_cluster_role"); v != 0 {
		fail("promoted: cluster_role = %v, want 0 (leader)", v)
	}
	if v := gauge("authteam_cluster_promotions_total"); v != 1 {
		fail("promoted: cluster_promotions_total = %v, want 1", v)
	}
	checkReadyz("promoted", fURL)

	fmt.Println("obssmoke: OK — exposition well-formed on leader, follower and debug listener; trace spans partition totals; readiness green; promotion flips role, term and gauges")
}
