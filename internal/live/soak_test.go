package live

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"authteam/internal/core"
	"authteam/internal/expertgraph"
	"authteam/internal/pll"
	"authteam/internal/transform"
)

// TestConcurrentSoak is the acceptance scenario for the live
// subsystem: concurrent readers run full discovery queries while one
// writer streams ≥ 1000 node/edge insertions. Every query must see a
// consistent epoch, the incrementally repaired 2-hop cover must agree
// with a from-scratch rebuild, and a killed-and-restarted store must
// replay its journal to the identical epoch. Run it under -race.
func TestConcurrentSoak(t *testing.T) {
	const (
		baseNodes = 120
		mutations = 1100
		readers   = 4
	)
	rng := rand.New(rand.NewSource(42))
	base := testGraph(rng, baseNodes)
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	s := mustOpen(t, base, Config{JournalPath: path})
	epoch0 := s.Snapshot()

	project := resolveProject(t, base, []string{"analytics", "matrix", "communities"})

	var (
		done    atomic.Bool
		queries atomic.Int64
		probes  atomic.Int64
		wg      sync.WaitGroup
	)
	errCh := make(chan error, readers+3)

	// Readers: discover continuously, each query pinned to one snapshot.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !done.Load() {
				snap := s.Snapshot()
				g, err := snap.Graph()
				if err != nil {
					errCh <- err
					return
				}
				// Consistency: the snapshot's cheap counters and its
				// materialized graph must describe the same epoch.
				if g.NumNodes() != snap.NumNodes() || g.NumEdges() != snap.NumEdges() {
					errCh <- errors.New("snapshot counters disagree with materialized graph")
					return
				}
				p, err := transform.Fit(g, 0.6, 0.6, transform.Options{Normalize: true})
				if err != nil {
					errCh <- err
					return
				}
				tm, err := core.NewDiscoverer(p, core.SACACC).BestTeam(project)
				if err != nil {
					errCh <- err
					return
				}
				for _, u := range tm.Nodes {
					if !g.ValidNode(u) {
						errCh <- errors.New("team member outside the snapshot's graph")
						return
					}
				}
				for _, sid := range project {
					if _, ok := tm.Assignment[sid]; !ok {
						errCh <- errors.New("uncovered project skill")
						return
					}
				}
				queries.Add(1)
			}
		}(r)
	}

	// Prober: SnapshotAt continuously while the store mutates — and
	// while the compaction below re-bases it in place. SnapshotAt must
	// read only the captured snapshot (base, log, prefix checkpoints),
	// so a concurrent base swap can never hand it mismatched state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prng := rand.New(rand.NewSource(45))
		for !done.Load() {
			cur := s.Snapshot()
			epoch := cur.BaseEpoch() + uint64(prng.Int63n(int64(cur.Epoch()-cur.BaseEpoch()+1)))
			sn, ok := s.SnapshotAt(epoch)
			if !ok {
				// Legitimate only if a re-base moved the floor past the
				// probed epoch between the two reads.
				if epoch >= s.Snapshot().BaseEpoch() {
					errCh <- errors.New("SnapshotAt refused a resident epoch")
					return
				}
				continue
			}
			if sn.Epoch() != epoch || sn.NumNodes() < baseNodes {
				errCh <- errors.New("SnapshotAt returned inconsistent snapshot")
				return
			}
			probes.Add(1)
		}
	}()

	// One compaction mid-stream: fold + journal truncation + in-memory
	// re-base race against the readers, the prober and the writer.
	// (Exactly one fold, so the post-soak incremental repair below still
	// bridges the re-base via the retained previous generation.)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s.Epoch() < mutations/2 && !done.Load() {
			runtime.Gosched()
		}
		if _, err := s.Compact(); err != nil {
			errCh <- err
		}
	}()

	// Writer: stream insertions (plus a sprinkle of updates).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		wrng := rand.New(rand.NewSource(43))
		skills := []string{"analytics", "matrix", "communities", "indexing", "query"}
		inserted := 0
		for inserted < mutations {
			n := s.Snapshot().NumNodes()
			switch roll := wrng.Intn(10); {
			case roll == 0: // new expert
				if _, _, err := s.AddExpert("live", 1+float64(wrng.Intn(20)),
					[]string{skills[wrng.Intn(len(skills))]}); err != nil {
					errCh <- err
					return
				}
				inserted++
			case roll == 1: // authority/skill update (not an insertion)
				auth := 1 + float64(wrng.Intn(40))
				if _, err := s.UpdateExpert(expertgraph.NodeID(wrng.Intn(n)), &auth, nil); err != nil {
					errCh <- err
					return
				}
			default: // new collaboration
				u := expertgraph.NodeID(wrng.Intn(n))
				v := expertgraph.NodeID(wrng.Intn(n))
				if u == v {
					continue
				}
				switch _, err := s.AddCollaboration(u, v, 0.05+wrng.Float64()); {
				case err == nil:
					inserted++
				case errors.Is(err, ErrDuplicateEdge):
				default:
					errCh <- err
					return
				}
			}
			// Pace against the readers so the streams genuinely
			// interleave: every 100 insertions, wait for at least one
			// more query to complete against the mutated store.
			if inserted%100 == 0 {
				for want := queries.Load() + 1; queries.Load() < want; {
					runtime.Gosched()
				}
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if queries.Load() == 0 {
		t.Fatal("no reader queries completed")
	}
	final := s.Snapshot()
	if final.Epoch() < mutations {
		t.Fatalf("final epoch %d < %d insertions", final.Epoch(), mutations)
	}
	if probes.Load() == 0 {
		t.Fatal("no SnapshotAt probes completed")
	}
	if s.Compactions() != 1 {
		t.Fatalf("compactions = %d, want the one mid-stream fold", s.Compactions())
	}
	t.Logf("soak: %d queries, %d SnapshotAt probes against %d mutations (final epoch %d, re-based at %d)",
		queries.Load(), probes.Load(), final.Epoch(), final.Epoch(), s.BaseEpoch())

	// Incremental PLL repair across the full delta must agree with a
	// from-scratch rebuild on random pairs — bridging the mid-stream
	// re-base (epoch0 predates the fold) through the retained previous
	// generation's log.
	repaired, _, ok := MaintainIndex(pll.Build(base), epoch0, final, nil, nil, 0)
	if !ok {
		t.Fatal("raw incremental repair refused the soak delta")
	}
	finalG, err := final.Graph()
	if err != nil {
		t.Fatal(err)
	}
	fresh := pll.Build(finalG)
	prng := rand.New(rand.NewSource(44))
	for i := 0; i < 150; i++ {
		u := expertgraph.NodeID(prng.Intn(finalG.NumNodes()))
		v := expertgraph.NodeID(prng.Intn(finalG.NumNodes()))
		got, want := repaired.Dist(u, v), fresh.Dist(u, v)
		if math.Abs(got-want) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("repaired dist(%d,%d)=%v, rebuild %v", u, v, got, want)
		}
	}

	// Kill and restart: the journal must replay to the identical epoch
	// and graph.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, base, Config{JournalPath: path})
	if s2.Epoch() != final.Epoch() {
		t.Fatalf("replayed epoch %d, want %d", s2.Epoch(), final.Epoch())
	}
	g2, err := s2.Snapshot().Graph()
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, finalG, g2)
}

func resolveProject(t *testing.T, g *expertgraph.Graph, names []string) []expertgraph.SkillID {
	t.Helper()
	out := make([]expertgraph.SkillID, len(names))
	for i, n := range names {
		id, ok := g.SkillID(n)
		if !ok {
			t.Fatalf("skill %q missing from test graph", n)
		}
		out[i] = id
	}
	return out
}
