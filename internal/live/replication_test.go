package live

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"authteam/internal/expertgraph"
	"authteam/internal/pll"
)

func emptyGraph(t *testing.T) *expertgraph.Graph {
	t.Helper()
	g, err := expertgraph.NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// waitFollowerEpoch polls until the store reaches epoch (replication is
// asynchronous) or the deadline passes.
func waitFollowerEpoch(t *testing.T, st *Store, epoch uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if !st.WaitEpoch(ctx, epoch) {
		t.Fatalf("follower stuck at epoch %d, want %d", st.Epoch(), epoch)
	}
}

func TestWaitEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	st := mustOpen(t, testGraph(rng, 10), Config{})
	defer st.Close()

	// Already-reached epochs return true even with a dead context.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if !st.WaitEpoch(dead, 0) {
		t.Fatal("WaitEpoch(0) on a fresh store returned false")
	}

	// An unreached epoch honors the context bound.
	short, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if st.WaitEpoch(short, 1) {
		t.Fatal("WaitEpoch(1) returned true with no mutation")
	}

	// A publish wakes the waiter.
	go func() {
		time.Sleep(30 * time.Millisecond)
		st.AddExpert("late", 1, []string{"s0"})
	}()
	ctx, cancel3 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel3()
	if !st.WaitEpoch(ctx, 1) {
		t.Fatal("WaitEpoch(1) missed the publish")
	}
}

func TestTailSince(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	st := mustOpen(t, testGraph(rng, 15), Config{})
	defer st.Close()
	mutateRandomly(t, st, rng, 10)

	// Ahead of the store: the tailer and the store disagree.
	if _, _, err := st.TailSince(context.Background(), st.Epoch()+1, 0); !errors.Is(err, ErrFutureEpoch) {
		t.Fatalf("future tail: %v, want ErrFutureEpoch", err)
	}

	// A bounded batch from the beginning.
	muts, epoch, err := st.TailSince(context.Background(), 0, 4)
	if err != nil || len(muts) != 4 || epoch != st.Epoch() {
		t.Fatalf("TailSince(0, 4) = %d muts, epoch %d, err %v; want 4, %d, nil", len(muts), epoch, err, st.Epoch())
	}

	// Caught up + expired context: an idle long-poll, empty and nil.
	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	muts, _, err = st.TailSince(short, st.Epoch(), 0)
	if err != nil || len(muts) != 0 {
		t.Fatalf("idle tail = %d muts, err %v; want 0, nil", len(muts), err)
	}

	// Caught up + a concurrent mutation: the long-poll delivers it.
	from := st.Epoch()
	go func() {
		time.Sleep(30 * time.Millisecond)
		st.AddExpert("tailed", 2, []string{"s0"})
	}()
	ctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	muts, _, err = st.TailSince(ctx, from, 0)
	if err != nil || len(muts) != 1 || muts[0].Op != OpAddNode {
		t.Fatalf("woken tail = %+v, err %v; want the one add_node", muts, err)
	}
}

// TestTailSinceCompacted drives the store through two folds: the
// retained window (resident log + one prevLog generation) then starts
// after the first fold, so tailing from 0 must demand a base fetch.
func TestTailSinceCompacted(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	journal := filepath.Join(t.TempDir(), "g.wal")
	st := mustOpen(t, testGraph(rng, 15), Config{JournalPath: journal})
	defer st.Close()

	mutateRandomly(t, st, rng, 10)
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	// One fold is still bridged by prevLog.
	if _, _, err := st.TailSince(context.Background(), 0, 0); err != nil {
		t.Fatalf("tail across one fold: %v", err)
	}
	mutateRandomly(t, st, rng, 10)
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.TailSince(context.Background(), 0, 0); !errors.Is(err, ErrCompactedEpoch) {
		t.Fatalf("tail across two folds: %v, want ErrCompactedEpoch", err)
	}
	// The fold epoch itself is still tailable.
	mutateRandomly(t, st, rng, 3)
	wantRecords := int(st.Epoch() - st.BaseEpoch())
	muts, _, err := st.TailSince(context.Background(), st.BaseEpoch(), 0)
	if err != nil || len(muts) != wantRecords {
		t.Fatalf("tail from the fold epoch = %d muts, err %v; want %d, nil", len(muts), err, wantRecords)
	}
}

// TestFollowerCatchUp replicates store-to-store in one process: a
// follower starting from an empty store must bootstrap off the
// leader's base, replay the stream, and converge on the identical
// graph — then keep converging as the leader keeps mutating.
func TestFollowerCatchUp(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	leader := mustOpen(t, testGraph(rng, 20), Config{})
	defer leader.Close()
	mutateRandomly(t, leader, rng, 25)

	follower := mustOpen(t, emptyGraph(t), Config{})
	defer follower.Close()
	f := StartFollower(follower, SourceFromStore(leader), FollowerConfig{PollTimeout: 200 * time.Millisecond})
	defer f.Stop()

	waitFollowerEpoch(t, follower, leader.Epoch())
	if !equalFP(viewFingerprint(follower.Snapshot().View()), viewFingerprint(leader.Snapshot().View())) {
		t.Fatal("follower graph differs from leader after catch-up")
	}

	// Live stream: more mutations arrive while the follower tails.
	mutateRandomly(t, leader, rng, 25)
	waitFollowerEpoch(t, follower, leader.Epoch())
	if !equalFP(viewFingerprint(follower.Snapshot().View()), viewFingerprint(leader.Snapshot().View())) {
		t.Fatal("follower graph differs from leader mid-stream")
	}

	// The bootstrap adopted the leader's fold base (epoch 0 here — the
	// leader has never folded), so every epoch arrived as a record.
	// The applied counter trails the epoch publication by a few
	// instructions in the follower loop (the epoch is visible the
	// moment the group commit publishes, before Apply's future even
	// resolves), so poll briefly instead of reading it once.
	st := f.Stats()
	for deadline := time.Now().Add(5 * time.Second); st.Applied != leader.Epoch() && time.Now().Before(deadline); st = f.Stats() {
		time.Sleep(time.Millisecond)
	}
	if !st.Running || st.Applied != leader.Epoch() || st.BaseFetches != 1 {
		t.Fatalf("stats %+v, want running, %d applied, 1 bootstrap base fetch", st, leader.Epoch())
	}
	f.Stop()
	if st := f.Stats(); st.Running {
		t.Fatal("follower still running after Stop")
	}
}

// TestFollowerAcrossFolds disconnects the follower, folds the leader's
// journal twice (pushing the retained window past the follower's
// epoch), and reconnects: the follower must fetch the base, adopt it,
// replay the suffix and converge — without a restart.
func TestFollowerAcrossFolds(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	journal := filepath.Join(t.TempDir(), "leader.wal")
	leader := mustOpen(t, testGraph(rng, 20), Config{JournalPath: journal})
	defer leader.Close()
	mutateRandomly(t, leader, rng, 20)

	follower := mustOpen(t, emptyGraph(t), Config{})
	defer follower.Close()
	f := StartFollower(follower, SourceFromStore(leader), FollowerConfig{PollTimeout: 200 * time.Millisecond})
	waitFollowerEpoch(t, follower, leader.Epoch())
	f.Stop()
	behind := follower.Epoch()

	// While the follower is away: two folds, with churn in between,
	// move the retained window past it.
	mutateRandomly(t, leader, rng, 15)
	if _, err := leader.Compact(); err != nil {
		t.Fatal(err)
	}
	mutateRandomly(t, leader, rng, 15)
	if _, err := leader.Compact(); err != nil {
		t.Fatal(err)
	}
	mutateRandomly(t, leader, rng, 10)
	if _, ok := leader.Snapshot().MutationsSince(behind); ok {
		t.Fatal("test setup: the follower's epoch is still inside the retained window")
	}

	f2 := StartFollower(follower, SourceFromStore(leader), FollowerConfig{PollTimeout: 200 * time.Millisecond})
	defer f2.Stop()
	waitFollowerEpoch(t, follower, leader.Epoch())
	if !equalFP(viewFingerprint(follower.Snapshot().View()), viewFingerprint(leader.Snapshot().View())) {
		t.Fatal("follower graph differs from leader after fold-boundary catch-up")
	}
	if st := f2.Stats(); st.BaseFetches < 1 {
		t.Fatalf("stats %+v, want at least one base fetch", st)
	}
	if follower.BaseAdoptions() < 1 {
		t.Fatal("follower store recorded no base adoptions")
	}

	// Replication keeps flowing after the adoption.
	mutateRandomly(t, leader, rng, 10)
	waitFollowerEpoch(t, follower, leader.Epoch())
	if !equalFP(viewFingerprint(follower.Snapshot().View()), viewFingerprint(leader.Snapshot().View())) {
		t.Fatal("follower diverged after post-adoption stream")
	}
}

// TestFollowerDivergenceStops mutates the follower's store outside
// replication: the loop must stop with a sticky error instead of
// silently interleaving two histories.
func TestFollowerDivergenceStops(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	leader := mustOpen(t, testGraph(rng, 15), Config{})
	defer leader.Close()
	mutateRandomly(t, leader, rng, 10)

	follower := mustOpen(t, emptyGraph(t), Config{})
	defer follower.Close()
	f := StartFollower(follower, SourceFromStore(leader), FollowerConfig{PollTimeout: 100 * time.Millisecond})
	defer f.Stop()
	waitFollowerEpoch(t, follower, leader.Epoch())

	// A local write forks the follower's history ahead of the leader's.
	if _, _, err := follower.AddExpert("rogue", 1, []string{"s0"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := f.Stats(); !st.Running {
			if st.LastError == "" {
				t.Fatal("follower stopped without recording why")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower kept running on a forked store")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdoptBaseCrashWindow simulates a crash between AdoptBase's two
// file steps: the new base was renamed into place, the journal still
// holds the pre-adoption history. Open must reset the journal to the
// base epoch instead of erroring (or worse, replaying the dead
// history).
func TestAdoptBaseCrashWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	dir := t.TempDir()
	journal := filepath.Join(dir, "f.wal")

	// The follower's pre-crash state: base graph, journal of 10 records.
	base := testGraph(rng, 15)
	st, err := Open(base, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	mutateRandomly(t, st, rng, 10)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The adopted base: a different store's graph at a far epoch.
	leader := mustOpen(t, testGraph(rng, 20), Config{})
	mutateRandomly(t, leader, rng, 30)
	lsnap := leader.Snapshot()
	lg, err := lsnap.Graph()
	if err != nil {
		t.Fatal(err)
	}
	want := viewFingerprint(lsnap.View())
	adoptedEpoch := lsnap.Epoch()
	leader.Close()

	// Crash window: base file updated, journal untouched.
	if err := writeBaseFile(basePath(journal), lg, adoptedEpoch, 0); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(base, Config{JournalPath: journal})
	if err != nil {
		t.Fatalf("reopen in the adoption crash window: %v", err)
	}
	defer st2.Close()
	if st2.Epoch() != adoptedEpoch || st2.BaseEpoch() != adoptedEpoch {
		t.Fatalf("recovered at epoch %d (base %d), want %d", st2.Epoch(), st2.BaseEpoch(), adoptedEpoch)
	}
	if !equalFP(viewFingerprint(st2.Snapshot().View()), want) {
		t.Fatal("recovered graph is not the adopted base")
	}
	if records, _ := st2.JournalStats(); records != 0 {
		t.Fatalf("journal still holds %d dead records", records)
	}
	// And the store keeps working from there.
	if _, _, err := st2.AddExpert("post", 3, []string{"s0"}); err != nil {
		t.Fatal(err)
	}
	if st2.Epoch() != adoptedEpoch+1 {
		t.Fatalf("epoch %d after one mutation, want %d", st2.Epoch(), adoptedEpoch+1)
	}
}

// TestAdoptBasePersists checks the journaled follower round-trip: after
// AdoptBase, a restart from disk lands on the adopted epoch and graph.
func TestAdoptBasePersists(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	journal := filepath.Join(t.TempDir(), "f.wal")
	st, err := Open(emptyGraph(t), Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}

	leader := mustOpen(t, testGraph(rng, 20), Config{})
	mutateRandomly(t, leader, rng, 20)
	lsnap := leader.Snapshot()
	lg, err := lsnap.Graph()
	if err != nil {
		t.Fatal(err)
	}
	want := viewFingerprint(lsnap.View())
	epoch := lsnap.Epoch()
	leader.Close()

	if err := st.AdoptBase(lg, epoch, 0); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != epoch || st.BaseAdoptions() != 1 {
		t.Fatalf("epoch %d adoptions %d after AdoptBase, want %d/1", st.Epoch(), st.BaseAdoptions(), epoch)
	}
	// Mutations append on top of the adopted base.
	if _, _, err := st.AddExpert("post", 2, []string{"s0"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(emptyGraph(t), Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Epoch() != epoch+1 || st2.BaseEpoch() != epoch {
		t.Fatalf("restart at epoch %d (base %d), want %d (%d)", st2.Epoch(), st2.BaseEpoch(), epoch+1, epoch)
	}
	sn, ok := st2.SnapshotAt(epoch)
	if !ok {
		t.Fatalf("SnapshotAt(%d) refused after restart", epoch)
	}
	if got := viewFingerprint(sn.View()); !equalFP(got, want) {
		t.Fatal("restarted store's adopted base differs")
	}
}

// TestMaintainIndexVisitBudget pins the per-op visit cap: a removal
// repair that would exceed the budget must bail out with
// VisitsExceeded, while an unbounded run absorbs the same delta.
func TestMaintainIndexVisitBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	base := testGraph(rng, 35)
	s := mustOpen(t, base, Config{})
	defer s.Close()
	from := s.Snapshot()
	ix := pll.Build(base)

	// Remove a real edge so the repair has decremental work to do.
	var u, v expertgraph.NodeID
	found := false
	from.View().Neighbors(0, func(n expertgraph.NodeID, w float64) bool {
		u, v, found = 0, n, true
		return false
	})
	if !found {
		t.Fatal("node 0 has no edges")
	}
	if _, err := s.RemoveCollaboration(u, v); err != nil {
		t.Fatal(err)
	}
	to := s.Snapshot()

	if _, rs, ok := MaintainIndexWithin(ix, from, to, nil, nil, RepairLimits{Visits: 1}); ok || !rs.VisitsExceeded {
		t.Fatalf("ok=%v stats=%+v under a 1-visit budget, want a VisitsExceeded refusal", ok, rs)
	}
	repaired, rs, ok := MaintainIndexWithin(ix, from, to, nil, nil, RepairLimits{})
	if !ok || rs.VisitsExceeded {
		t.Fatalf("unbounded repair refused: ok=%v stats=%+v", ok, rs)
	}
	g, err := to.Graph()
	if err != nil {
		t.Fatal(err)
	}
	sampleDistancesAgree(t, rng, repaired, pll.Build(g), g.NumNodes())
}

// TestMemoEveryKnob opens a store with a tiny checkpoint spacing and
// checks SnapshotAt stays exact at every epoch.
func TestMemoEveryKnob(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	st := mustOpen(t, testGraph(rng, 15), Config{MemoEvery: 4})
	defer st.Close()

	// Some mutateRandomly calls advance the epoch by 2 (add + wire-in
	// edge), so record observed epochs rather than assuming 1:1.
	type counts struct{ nodes, edges int }
	history := map[uint64]counts{0: {st.Snapshot().NumNodes(), st.Snapshot().NumEdges()}}
	for i := 0; i < 20; i++ {
		mutateRandomly(t, st, rng, 1)
		sn := st.Snapshot()
		history[sn.Epoch()] = counts{sn.NumNodes(), sn.NumEdges()}
	}
	for e, want := range history {
		sn, ok := st.SnapshotAt(e)
		if !ok {
			t.Fatalf("SnapshotAt(%d) refused", e)
		}
		if sn.NumNodes() != want.nodes || sn.NumEdges() != want.edges {
			t.Fatalf("epoch %d: %d nodes %d edges, want %d/%d",
				e, sn.NumNodes(), sn.NumEdges(), want.nodes, want.edges)
		}
	}
}
