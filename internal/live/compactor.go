package live

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Compactor is the background fold loop of a never-restarted
// deployment: a goroutine that watches how much journal has
// accumulated since the last fold and triggers Compact — which
// persists the folded base, truncates the journal, and re-bases the
// in-memory store — while the store keeps serving reads and writes.
// Scheduling is jittered so a fleet of replicas with identical write
// rates does not fold in lockstep, and folds are single-flight: the
// store's compactMu serializes the loop with any manual Compact call.
// The poll is only the fallback cadence: Apply nudges a watermark
// channel the moment a journal append crosses a trigger, so write
// bursts fold promptly instead of overshooting the byte/record bound
// until the next poll tick.

// CompactorConfig parameterizes StartCompactor.
type CompactorConfig struct {
	// Interval is the poll cadence; each wait is jittered ±20%.
	// Defaults to 30s.
	Interval time.Duration
	// MinRecords triggers a fold when the journal holds at least this
	// many records (the journal is truncated to the post-fold suffix at
	// every fold, so its record count is exactly the churn since the
	// last fold). Defaults to 8192 when MaxBytes is also unset; 0 with
	// MaxBytes set disables the record trigger.
	MinRecords uint64
	// MaxBytes triggers a fold when the journal file reaches this many
	// bytes. 0 disables the byte trigger.
	MaxBytes int64
	// OnFold, when non-nil, observes every fold attempt (stats are
	// meaningful only when err is nil). Called from the compactor
	// goroutine; keep it fast.
	OnFold func(stats CompactStats, took time.Duration, err error)
}

// defaultCompactorRecords is the record trigger applied when a
// compactor is started with neither threshold configured.
const defaultCompactorRecords = 8192

// Compactor runs Compact in the background. Create with
// Store.StartCompactor; stop with Stop.
type Compactor struct {
	store *Store
	cfg   CompactorConfig

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	// wake is the journal-size watermark channel: Apply nudges it
	// (non-blocking) the moment an append crosses the fold trigger, so
	// bursts fold promptly instead of overshooting until the next poll.
	wake chan struct{}

	runs       atomic.Uint64 // folds attempted (trigger fired)
	errs       atomic.Uint64
	wakeups    atomic.Uint64 // folds initiated by the watermark signal
	lastFoldNS atomic.Int64  // duration of the last successful fold
	lastEpoch  atomic.Uint64 // epoch of the last successful fold
}

// CompactorStats is a point-in-time summary of the background
// compactor for observability endpoints.
type CompactorStats struct {
	// Runs counts folds triggered (successful or not); Errors the
	// failed ones; Wakeups the folds initiated by the journal watermark
	// signal rather than the poll timer.
	Runs    uint64 `json:"runs"`
	Errors  uint64 `json:"errors"`
	Wakeups uint64 `json:"wakeups"`
	// LastFoldMS is the wall time of the most recent successful fold
	// (materialize + persist + journal swap + re-base), 0 before any.
	LastFoldMS float64 `json:"last_fold_ms"`
	// LastEpoch is the epoch the most recent successful fold re-based
	// the store onto.
	LastEpoch uint64 `json:"last_epoch"`
}

// StartCompactor launches the background fold loop. It fails on a
// store without a journal (there is nothing to fold) and on a closed
// store.
func (s *Store) StartCompactor(cfg CompactorConfig) (*Compactor, error) {
	s.mu.Lock()
	journaled := s.journal != nil && !s.closed
	s.mu.Unlock()
	if !journaled {
		return nil, fmt.Errorf("start compactor: %w", ErrNoJournal)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.MinRecords == 0 && cfg.MaxBytes == 0 {
		cfg.MinRecords = defaultCompactorRecords
	}
	c := &Compactor{
		store: s,
		cfg:   cfg,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		wake:  make(chan struct{}, 1),
	}
	// Register the watermark with the store: Apply signals the channel
	// the moment a journal append crosses either trigger, so the loop
	// folds promptly under bursts; the jittered poll remains as the
	// fallback (and as the only trigger for pre-watermark deployments
	// writing through replay).
	s.setWatermark(c.wake, cfg.MinRecords, cfg.MaxBytes)
	go c.loop()
	return c, nil
}

func (c *Compactor) loop() {
	defer close(c.done)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	timer := time.NewTimer(jitter(rng, c.cfg.Interval))
	defer timer.Stop()
	for {
		woken := false
		select {
		case <-c.stop:
			return
		case <-timer.C:
		case <-c.wake:
			woken = true
		}
		if c.due() {
			if woken {
				c.wakeups.Add(1)
			}
			c.fold()
		}
		if woken && !timer.Stop() {
			// Drain the expired timer so Reset arms cleanly.
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(jitter(rng, c.cfg.Interval))
	}
}

// due reports whether the journal accumulated enough since the last
// fold to be worth folding again.
func (c *Compactor) due() bool {
	records, bytes := c.store.JournalStats()
	if c.cfg.MinRecords > 0 && records >= c.cfg.MinRecords {
		return true
	}
	return c.cfg.MaxBytes > 0 && bytes >= c.cfg.MaxBytes
}

func (c *Compactor) fold() {
	c.runs.Add(1)
	start := time.Now()
	stats, err := c.store.Compact()
	took := time.Since(start)
	if err != nil {
		c.errs.Add(1)
	} else {
		c.lastFoldNS.Store(int64(took))
		c.lastEpoch.Store(stats.Epoch)
	}
	if c.cfg.OnFold != nil {
		c.cfg.OnFold(stats, took, err)
	}
}

// jitter spreads d by ±20% so replicas desynchronize.
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	return d + time.Duration((rng.Float64()*0.4-0.2)*float64(d))
}

// Stop halts the loop and waits for an in-flight fold to finish. It is
// idempotent and safe to call concurrently.
func (c *Compactor) Stop() {
	c.stopOnce.Do(func() {
		c.store.setWatermark(nil, 0, 0)
		close(c.stop)
	})
	<-c.done
}

// Stats reports the compactor's lifetime counters.
func (c *Compactor) Stats() CompactorStats {
	return CompactorStats{
		Runs:       c.runs.Load(),
		Errors:     c.errs.Load(),
		Wakeups:    c.wakeups.Load(),
		LastFoldMS: float64(c.lastFoldNS.Load()) / float64(time.Millisecond),
		LastEpoch:  c.lastEpoch.Load(),
	}
}
