// Package live makes the expert network mutable while it serves
// traffic. The paper's network is a *social* network — collaborations,
// skills and authority scores change continuously — but the
// expertgraph substrate is deliberately immutable (that is what makes
// it safe for lock-free concurrent readers). This package bridges the
// two with an epoch-versioned overlay:
//
//   - Store accepts mutations (add/remove experts and collaborations,
//     update authority/skills/edge weights) through a group-commit
//     pipeline: mutators enqueue onto an MPSC channel, a single
//     committer goroutine drains it in batches, writes one journal
//     record group with one fsync, and publishes one epoch covering
//     the whole batch. Each mutation still gets its own absolute
//     epoch number (the log stays strictly per-op), and every mutator
//     blocks on a per-op result future, so the synchronous error
//     contract and read-your-writes semantics are those of the old
//     one-lock-one-fsync-per-op path — only the throughput scaling is
//     new.
//   - Every commit produces a new immutable Snapshot, published with
//     an atomic pointer swap; readers resolve the current snapshot
//     without locks and keep a consistent view for as long as they
//     hold it (snapshot isolation).
//   - A Snapshot materializes a full *expertgraph.Graph lazily — the
//     frozen base graph is thawed and the mutation delta replayed —
//     and memoizes it, so a burst of mutations costs one rebuild per
//     *queried* epoch, not per mutation.
//   - A write-ahead journal makes mutations survive restarts: each is
//     appended (one JSON object per line) before it is applied, and
//     Open replays the journal onto the persisted base graph, ending
//     at the identical epoch.
//
// Incremental 2-hop cover maintenance lives in MaintainIndex, which
// repairs a PLL index across epochs with resumed pruned Dijkstras
// instead of rebuilding it.
package live

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"authteam/internal/expertgraph"
	"authteam/internal/obs"
)

// Op identifies a mutation kind in the journal and the in-memory log.
type Op string

// Mutation kinds.
const (
	OpAddNode    Op = "add_node"
	OpAddEdge    Op = "add_edge"
	OpUpdateNode Op = "update_node"
	OpRemoveEdge Op = "remove_edge"
	OpRemoveNode Op = "remove_node"
	OpUpdateEdge Op = "update_edge"
)

// RemovedEdge records one incident edge dropped by a remove_node
// mutation: the far endpoint and the stored weight the edge carried.
// The list is captured at apply time so journal replay, overlay
// construction and decremental index repair are all self-contained —
// none of them has to reconstruct the pre-removal adjacency.
type RemovedEdge struct {
	V expertgraph.NodeID `json:"v"`
	W float64            `json:"w"`
}

// Mutation is one atomic change to the expert network — the unit of
// the write-ahead journal and of the per-epoch delta log. Exactly the
// fields of its Op are meaningful.
type Mutation struct {
	Op Op `json:"op"`

	// Term is the fencing term of the leader that minted this record
	// (see promote.go). Fresh local appends are stamped with the
	// store's current term at commit time; replicated records keep the
	// term they were minted under, which is how followers adopt a new
	// lineage's term — and how a deposed leader's stale-term records
	// are recognized and refused. 0 on records from before the cluster
	// ever promoted (term 0 predates fencing).
	Term uint64 `json:"term,omitempty"`

	// add_node
	Name      string   `json:"name,omitempty"`
	Authority float64  `json:"authority,omitempty"`
	Skills    []string `json:"skills,omitempty"`

	// add_edge / remove_edge / update_edge. W is the new weight for
	// add/update and the removed edge's last stored weight for
	// remove_edge (filled at apply time; decremental index repair needs
	// it); OldW is update_edge's previous weight (also filled at apply).
	U    expertgraph.NodeID `json:"u,omitempty"`
	V    expertgraph.NodeID `json:"v,omitempty"`
	W    float64            `json:"w,omitempty"`
	OldW float64            `json:"old_w,omitempty"`

	// update_node / remove_node. Edges lists the incident edges dropped
	// with a removed node, captured at apply time (see RemovedEdge).
	Node         expertgraph.NodeID `json:"node,omitempty"`
	SetAuthority *float64           `json:"set_authority,omitempty"`
	AddSkills    []string           `json:"add_skills,omitempty"`
	Edges        []RemovedEdge      `json:"edges,omitempty"`
}

// Validation errors returned by the mutators.
var (
	ErrUnknownNode   = errors.New("live: unknown node")
	ErrSelfLoop      = errors.New("live: self loop")
	ErrDuplicateEdge = errors.New("live: edge already exists")
	ErrUnknownEdge   = errors.New("live: unknown edge")
	ErrNegativeW     = errors.New("live: negative edge weight")
	ErrEmptyUpdate   = errors.New("live: update changes nothing")
	ErrEmptyName     = errors.New("live: empty expert name")
	// ErrRemovedNode rejects mutations referencing a tombstoned expert:
	// removal is permanent, the NodeID slot is never resurrected.
	ErrRemovedNode = errors.New("live: removed node")
	// ErrClosed is returned by every mutator after Close. Reads
	// (Snapshot, SnapshotAt, views) keep working.
	ErrClosed = errors.New("live: store closed")
)

// Config parameterizes Open.
type Config struct {
	// JournalPath enables the write-ahead journal ("" disables it). If
	// the file exists its mutations are replayed onto the base graph.
	// A compacted base graph persisted at JournalPath+".base" (see
	// Compact) supersedes the base graph passed to Open, and only the
	// journal suffix past its epoch is replayed.
	JournalPath string
	// Sync fsyncs the journal after every record. Off by default: a
	// process crash still keeps every completed write (the OS page
	// cache survives it), only a host power loss can drop the tail.
	Sync bool
	// CompactThreshold folds the journal into the persisted base graph
	// at Open time when the replayed suffix has at least this many
	// records, keeping boot replay O(recent churn). 0 disables
	// auto-compaction (Compact can still be called explicitly).
	CompactThreshold int
	// MemoEvery is the SnapshotAt checkpoint spacing: the store
	// memoizes (nodes, edges) counts after every MemoEvery mutations so
	// historical snapshots are reconstructed by scanning at most that
	// many log records. Smaller values trade memory for faster
	// SnapshotAt. ≤ 0 means the default (256).
	MemoEvery int
	// CommitBatch caps how many queued mutations one group commit may
	// cover: one journal record group (one write, one fsync under
	// Sync) and one published epoch per batch. ≤ 0 means the default
	// (256).
	CommitBatch int
	// CommitInterval is how long the committer waits after the first
	// queued mutation of a batch for more to accumulate before
	// committing. 0 (the default) commits as soon as the queue drains:
	// batching then comes only from arrival concurrency — ops that
	// queued while the previous commit was in flight — and adds no
	// latency. Positive values trade per-op latency for larger groups
	// (fewer fsyncs), which matters mostly under Sync on slow disks.
	CommitInterval time.Duration
	// CommitAuto opens the CommitInterval batching window adaptively:
	// the committer tracks the journal append duration (the quantity
	// behind authteam_live_journal_append_seconds) against the mutation
	// arrival gap, and waits for stragglers only while the append —
	// fsync included — is the bottleneck (append EWMA > arrival-gap
	// EWMA). Idle or append-cheap workloads keep the zero-latency
	// fast path. Overrides CommitInterval when set.
	CommitAuto bool
	// Metrics registers the store's instruments — apply latency,
	// journal append (+fsync) duration, fold duration, overlay-build
	// time, resident log length and epoch gauges — on the given
	// registry. Nil leaves the store entirely uninstrumented (the
	// hot-path observation calls become no-ops on nil instruments).
	Metrics *obs.Registry
}

// Store is the mutable overlay over one immutable base graph. All
// mutators are safe for concurrent use (they serialize on an internal
// lock); Snapshot is lock-free.
type Store struct {
	journalPath string
	snap        atomic.Pointer[Snapshot]

	mu sync.Mutex // serializes writers
	// base is the in-memory base graph; baseEpoch its absolute epoch: 0
	// for a fresh store, the fold epoch after Open adopted a compacted
	// base or Compact re-based in place. Epochs are absolute (they
	// survive compaction and restarts); log index i holds the mutation
	// of epoch baseEpoch+i+1. All four fields are mutated only under mu
	// (by apply and by Compact's re-base); lock-free readers never
	// touch them — they read the same values from the published
	// snapshot, which carries its own base/log references.
	base      *expertgraph.Graph
	baseEpoch uint64
	log       []Mutation // mutation log since base; len == epoch - baseEpoch
	// prevBaseEpoch/prevLog are the previous re-base generation: the
	// mutations of epochs (prevBaseEpoch, baseEpoch], retained so
	// MutationsSince — and through it incremental index repair — keeps
	// working across one re-base boundary. Exactly one generation is
	// kept (each re-base replaces it), so resident history is bounded
	// by two fold windows of churn, never by deployment lifetime.
	prevBaseEpoch uint64
	prevLog       []Mutation
	journal       *journal // nil when journaling is disabled
	closed        bool     // set by Close; mutators fail with ErrClosed
	// ioErr poisons the store after an unrecoverable journal failure
	// (a torn group that could not be rolled back, or a failed fsync):
	// every further mutation fails with it, because appending past the
	// tear would replay as interior corruption. Set under mu.
	ioErr error
	// compactMu serializes Compact calls (held across the base write
	// and journal swap; mutators keep running under mu meanwhile).
	compactMu sync.Mutex

	// prefix memoizes (nodes, edges) counts after every memo
	// mutations of the current log, so SnapshotAt reconstructs a
	// historical snapshot by scanning at most memo log records
	// past the nearest checkpoint instead of the whole prefix.
	// Appended under mu; published to readers inside each snapshot
	// (same structural sharing as the log), and rebuilt on re-base.
	prefix []prefixCount
	// memo is the checkpoint spacing (Config.MemoEvery, default
	// memoEvery). Immutable after Open.
	memo int
	// lastSnapshotScan records how many log entries the most recent
	// SnapshotAt call scanned (test observability).
	lastSnapshotScan atomic.Int64

	// Writer-side validation state, maintained so mutations are
	// validated in O(1)/O(log) without materializing a graph. nNodes is
	// the ID-space size (tombstoned nodes keep their slot); edgeSet
	// maps each live undirected edge to its stored weight, so removals
	// and re-weights can journal the previous weight without touching a
	// graph. removedNodes holds the tombstoned IDs.
	nNodes       int
	nEdges       int
	edgeSet      map[uint64]float64
	removedNodes map[expertgraph.NodeID]struct{}

	// watermark is the background compactor's early-fold signal: when a
	// journal append crosses the registered record/byte trigger, apply
	// nudges wmCh (non-blocking) so folds start promptly under write
	// bursts instead of waiting out the poll interval. Registered and
	// cleared under mu by the compactor.
	wmCh      chan struct{}
	wmRecords uint64
	wmBytes   int64

	// Group-commit plumbing. Mutators enqueue onto applyCh and block on
	// a per-op future; the committer goroutine (started by Open) drains
	// the channel in batches of up to commitBatchMax ops, waiting
	// commitInterval after the first op of a batch for stragglers.
	// closing gates new senders during Close; senders counts mutators
	// between the gate check and their channel send, so Close knows
	// when applyCh can safely be closed. committerDone is closed when
	// the committer has drained everything and exited.
	applyCh        chan *applyReq
	closing        atomic.Bool
	senders        atomic.Int64
	committerDone  chan struct{}
	commitBatchMax int
	commitInterval time.Duration
	// Adaptive commit interval (Config.CommitAuto): EWMAs of the
	// journal append duration and the mutation arrival gap, in
	// nanoseconds. The committer opens a straggler window only while
	// the append (fsync included) is the slower of the two. Sloppy
	// lock-free updates — a lost EWMA step skews a heuristic, nothing
	// else.
	commitAuto    bool
	ewmaAppendNS  atomic.Int64
	ewmaGapNS     atomic.Int64
	lastArrivalNS atomic.Int64

	// Cluster term state (promote.go): the persisted fencing token,
	// the epoch its lineage began at, and the demotion fence. Written
	// under mu (Open, Promote, Demote, AdoptBase, record-term adoption
	// in commitBatch); read lock-free by the serving layer.
	term      atomic.Uint64
	termStart atomic.Uint64
	fenced    atomic.Bool

	// watch is the epoch-advance notification: a channel closed (and
	// replaced) every time a new epoch's snapshot is published, so
	// WaitEpoch — and through it replication tailing and
	// read-your-writes gating — blocks on a channel instead of
	// polling. Swapped under mu; loaded lock-free.
	watch atomic.Pointer[chan struct{}]

	// Mutation counters for observability (atomics: read by /stats
	// without the writer lock).
	nodesAdded   atomic.Uint64
	edgesAdded   atomic.Uint64
	nodesUpdated atomic.Uint64
	edgesRemoved atomic.Uint64
	nodesRemoved atomic.Uint64
	edgesUpdated atomic.Uint64
	// materialized counts full-graph materializations (Snapshot.Graph
	// actually replaying the delta onto a thawed base) — the number the
	// overlay read path keeps at zero while serving queries.
	materialized atomic.Uint64
	compactions  atomic.Uint64
	// baseAdoptions counts wholesale base replacements (AdoptBase): a
	// follower recovering across a leader fold, never a local fold.
	baseAdoptions atomic.Uint64
	// commits counts group commits (published batches); commits ≤ epoch
	// and the gap is the batching win. refolds counts chained-overlay
	// chain resets forced by the depth guard (full O(|delta|) refolds
	// amortized over maxChainDepth cheap chained builds).
	commits atomic.Uint64
	refolds atomic.Uint64

	// Registry-backed instruments (all nil when Config.Metrics was nil;
	// observation on a nil instrument is a no-op). foldHist is observed
	// by Compact, overlayHist rides inside every published snapshot.
	applyHist   *obs.Histogram
	appendHist  *obs.Histogram
	foldHist    *obs.Histogram
	overlayHist *obs.Histogram
	batchHist   *obs.Histogram
	commitHist  *obs.Histogram
}

// prefixCount is one SnapshotAt checkpoint: the graph size after the
// first k·memoEvery logged mutations.
type prefixCount struct {
	nodes, edges int
}

// memoEvery is the default SnapshotAt checkpoint spacing
// (Config.MemoEvery overrides it per store).
const memoEvery = 256

// Counters reports how many mutations of each kind the store has
// applied (including journal replay).
type Counters struct {
	NodesAdded   uint64 `json:"nodes_added"`
	EdgesAdded   uint64 `json:"edges_added"`
	NodesUpdated uint64 `json:"nodes_updated"`
	EdgesRemoved uint64 `json:"edges_removed"`
	NodesRemoved uint64 `json:"nodes_removed"`
	EdgesUpdated uint64 `json:"edges_updated"`
}

// countMutation folds one mutation's effect into running node/edge
// counts — the single definition SnapshotAt's prefix scan and the
// re-base checkpoint rebuild both apply, so the two can never drift.
// Node removals keep their ID slot, so nodes never shrinks.
func countMutation(m Mutation, nodes, edges *int) {
	switch m.Op {
	case OpAddNode:
		*nodes++
	case OpAddEdge:
		*edges++
	case OpRemoveEdge:
		*edges--
	case OpRemoveNode:
		*edges -= len(m.Edges)
	}
}

func edgeKey(u, v expertgraph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Open wraps base in a mutable store. With cfg.JournalPath set, an
// existing journal is replayed (restoring the pre-restart epoch) and
// subsequent mutations are appended to it. If a compacted base graph
// exists next to the journal (JournalPath+".base", written by
// Compact), it supersedes the passed base and only the journal suffix
// past its epoch is replayed — so replay stays O(churn since the last
// compaction) no matter how old the deployment is.
func Open(base *expertgraph.Graph, cfg Config) (*Store, error) {
	s := &Store{
		base:           base,
		journalPath:    cfg.JournalPath,
		memo:           cfg.MemoEvery,
		commitBatchMax: cfg.CommitBatch,
		commitInterval: cfg.CommitInterval,
		commitAuto:     cfg.CommitAuto,
	}
	if s.memo <= 0 {
		s.memo = memoEvery
	}
	if s.commitBatchMax <= 0 {
		s.commitBatchMax = defaultCommitBatch
	}
	if reg := cfg.Metrics; reg != nil {
		s.applyHist = reg.Histogram("authteam_live_apply_seconds",
			"Write-path latency of one mutation: enqueue, group commit, future resolution.", nil)
		s.appendHist = reg.Histogram("authteam_live_journal_append_seconds",
			"Journal append duration per record group, including fsync when Sync is on.", nil)
		s.batchHist = reg.Histogram("authteam_live_commit_batch_ops",
			"Mutations covered by one group commit (one journal write, one published epoch).",
			commitBatchBuckets)
		s.commitHist = reg.Histogram("authteam_live_commit_seconds",
			"Group-commit latency for one batch: validate, journal group write, apply, publish.", nil)
		s.foldHist = reg.Histogram("authteam_live_fold_seconds",
			"Journal compaction (fold) duration: materialize, base rewrite, journal swap.", nil)
		s.overlayHist = reg.Histogram("authteam_live_overlay_build_seconds",
			"Per-epoch overlay view construction time (first read of a fresh epoch).", nil)
		reg.GaugeFunc("authteam_live_log_len",
			"Resident mutation-log length (epoch minus base epoch).",
			func() float64 { return float64(s.LogLen()) })
		reg.GaugeFunc("authteam_live_epoch",
			"Current store epoch (mutations applied since the original base).",
			func() float64 { return float64(s.Epoch()) })
		reg.CounterFunc("authteam_live_compactions_total",
			"Journal compactions performed, including the Open-time auto-fold.",
			func() float64 { return float64(s.compactions.Load()) })
		reg.CounterFunc("authteam_live_base_adoptions_total",
			"Wholesale base replacements (follower recovery across a leader fold).",
			func() float64 { return float64(s.baseAdoptions.Load()) })
		reg.CounterFunc("authteam_live_materializations_total",
			"Full-graph materializations (thaw + delta replay).",
			func() float64 { return float64(s.materialized.Load()) })
		reg.CounterFunc("authteam_live_commits_total",
			"Group commits published; epoch minus this is the batching win.",
			func() float64 { return float64(s.commits.Load()) })
		reg.CounterFunc("authteam_live_overlay_refolds_total",
			"Full overlay refolds forced by the chain depth guard.",
			func() float64 { return float64(s.refolds.Load()) })
		reg.GaugeFunc("authteam_live_overlay_chain_depth",
			"Chain depth of the current epoch's overlay view (0 = refolded from base).",
			func() float64 { return float64(s.ChainDepth()) })
	}
	initWatch := make(chan struct{})
	s.watch.Store(&initWatch)
	var replay []Mutation
	if cfg.JournalPath != "" {
		cb, cbEpoch, cbTerm, err := loadBaseFile(basePath(cfg.JournalPath))
		if err != nil {
			return nil, err
		}
		if cb != nil {
			s.base, s.baseEpoch = cb, cbEpoch
		}
		muts, jhdr, j, err := openJournal(cfg.JournalPath, cfg.Sync)
		if err != nil {
			return nil, err
		}
		startEpoch := j.startEpoch
		// Recover the term state: the journal header's pair, raised by
		// any record minted under a later term (a follower adopts terms
		// through replicated records, so its header can lag them), and
		// raised again by the base file's term (the AdoptBase crash
		// window leaves a new base over an old journal). The fence flag
		// only ever comes from the header — a fenced store stops
		// applying records, so records can never out-vote it.
		ts := termState{term: jhdr.Term, termStart: jhdr.TermStart, fenced: jhdr.Fenced}
		for i := range muts {
			if muts[i].Term > ts.term {
				ts.term = muts[i].Term
				ts.termStart = startEpoch + uint64(i)
			}
		}
		if cbTerm > ts.term {
			ts.term, ts.termStart = cbTerm, cbEpoch
		}
		if s.baseEpoch > startEpoch+uint64(len(muts)) {
			// Base ahead of the whole journal: the crash window of a base
			// adoption (AdoptBase renames the base into place before
			// resetting the journal — the opposite order could lose
			// records). Every journaled epoch is already folded into the
			// base, so reset the journal to an empty file anchored there.
			slog.Warn("live: journal behind base; resetting journal to the base epoch",
				"journal", cfg.JournalPath,
				"journal_from", startEpoch,
				"journal_to", startEpoch+uint64(len(muts)),
				"base_epoch", s.baseEpoch)
			j.Close()
			staged, serr := stageJournal(cfg.JournalPath, s.baseEpoch, nil, cfg.Sync, ts)
			if serr != nil {
				return nil, serr
			}
			if j, serr = staged.install(cfg.JournalPath, nil); serr != nil {
				return nil, serr
			}
			muts, startEpoch = nil, s.baseEpoch
		}
		s.term.Store(ts.term)
		s.termStart.Store(ts.termStart)
		s.fenced.Store(ts.fenced)
		// The journal covers epochs startEpoch+1 .. startEpoch+len(muts);
		// records up to the base epoch are already folded into the base
		// (a crash between Compact's base rewrite and journal truncation
		// leaves exactly this overlap). A base below the journal's start
		// means the two files are from different histories.
		if s.baseEpoch < startEpoch {
			j.Close()
			return nil, fmt.Errorf("live: journal %s covers epochs %d..%d, base graph is at epoch %d",
				cfg.JournalPath, startEpoch, startEpoch+uint64(len(muts)), s.baseEpoch)
		}
		replay = muts[s.baseEpoch-startEpoch:]
		s.journal = j
	}

	s.resetWriterState()
	s.snap.Store(&Snapshot{
		epoch: s.baseEpoch, baseEpoch: s.baseEpoch,
		base: s.base, g: s.base,
		nodes: s.nNodes, edges: s.nEdges,
		matCtr: &s.materialized, overlayHist: s.overlayHist,
	})

	// Replay is in effect one giant batch: each record is validated and
	// folded into the writer state, and a single snapshot is published
	// at the final epoch — readers only ever see the store fully
	// recovered. The shadow stays empty because stateApply runs per
	// record, so validation reads the real writer state directly.
	if len(replay) > 0 {
		sh := s.newBatchShadow()
		for i := range replay {
			m := replay[i]
			if _, err := s.validateMutation(&m, sh, false); err != nil {
				s.journal.Close()
				return nil, fmt.Errorf("live: journal record %d (epoch %d): %w", i+1, s.baseEpoch+uint64(i)+1, err)
			}
			s.stateApply(m)
		}
		s.snap.Store(s.buildSnapshotLocked())
		s.bumpWatch()
	}
	if cfg.CompactThreshold > 0 && len(replay) >= cfg.CompactThreshold {
		if _, err := s.Compact(); err != nil {
			s.journal.Close()
			return nil, err
		}
	}
	s.applyCh = make(chan *applyReq, s.commitBatchMax)
	s.committerDone = make(chan struct{})
	go s.committer()
	return s, nil
}

// resetWriterState rebuilds the O(1)-validation state — node/edge
// counts, the live-edge weight map, the tombstone set — from the
// in-memory base graph. Called under mu (or before the store is
// shared): at Open, and when AdoptBase replaces the base wholesale.
func (s *Store) resetWriterState() {
	s.nNodes = s.base.NumNodes()
	s.nEdges = s.base.NumEdges()
	s.edgeSet = make(map[uint64]float64, s.nEdges)
	s.removedNodes = nil
	for u := expertgraph.NodeID(0); int(u) < s.nNodes; u++ {
		s.base.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			if u < v {
				s.edgeSet[edgeKey(u, v)] = w
			}
			return true
		})
		if s.base.Removed(u) {
			if s.removedNodes == nil {
				s.removedNodes = make(map[expertgraph.NodeID]struct{})
			}
			s.removedNodes[u] = struct{}{}
		}
	}
}

// bumpWatch wakes every WaitEpoch blocked on an epoch advance: the
// current watch channel is closed and a fresh one installed. Called
// under mu, after the new snapshot is published.
func (s *Store) bumpWatch() {
	next := make(chan struct{})
	if old := s.watch.Swap(&next); old != nil {
		close(*old)
	}
}

// WaitEpoch blocks until the store's epoch reaches target (returning
// true) or ctx is done (returning whether the epoch made it anyway).
// It is the primitive under epoch read-your-writes and replication
// tailing: a reader holding a mutation's epoch waits here instead of
// polling Snapshot.
func (s *Store) WaitEpoch(ctx context.Context, target uint64) bool {
	for {
		// Load the watch channel before checking the epoch: a publish
		// between the two closes exactly this channel, so the wake is
		// never missed.
		ch := s.watch.Load()
		if s.Epoch() >= target {
			return true
		}
		select {
		case <-*ch:
		case <-ctx.Done():
			return s.Epoch() >= target
		}
	}
}

// Close drains the commit pipeline and releases the journal. Mutations
// already enqueued are committed (and journaled) before the committer
// exits; mutations arriving after Close fail with ErrClosed. The store
// stays readable.
func (s *Store) Close() error {
	if s.closing.CompareAndSwap(false, true) {
		// New mutators now bounce off the closing gate before touching
		// applyCh; wait out the ones already past it (senders is
		// incremented before the gate check and decremented after the
		// send), then close the channel — the committer drains what is
		// left and exits.
		for s.senders.Load() != 0 {
			runtime.Gosched()
		}
		close(s.applyCh)
	}
	<-s.committerDone
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.journal == nil {
		return nil
	}
	// Close marks the journal closed in place (further appends fail)
	// but keeps it referenced so JournalStats still reports the real
	// record/byte counts.
	return s.journal.Close()
}

// Snapshot returns the current epoch's immutable view. It never
// blocks, and the returned snapshot stays valid (and consistent)
// however many mutations follow.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Epoch returns the current epoch: the number of mutations applied
// since the base graph.
func (s *Store) Epoch() uint64 { return s.snap.Load().epoch }

// SnapshotAt reconstructs the snapshot of a past epoch (ok=false when
// epoch is ahead of the store, or behind its base — a fold re-bases
// history into the base graph, and pre-base epochs can no longer be
// materialized). The mutation log is append-only, so a historical
// snapshot is just a shorter prefix of it; the (nodes, edges) counts
// are resumed from the nearest prefix checkpoint, making the call
// O(memoEvery) instead of O(epoch). Used to anchor state persisted at
// an earlier epoch (e.g. an on-disk 2-hop cover) so it can be repaired
// forward instead of discarded.
//
// Everything is read from the captured snapshot — base graph, log,
// prefix checkpoints — never from store fields, so the call is correct
// even while a concurrent Compact re-bases the store in place.
func (s *Store) SnapshotAt(epoch uint64) (*Snapshot, bool) {
	cur := s.Snapshot()
	if epoch > cur.epoch || epoch < cur.baseEpoch {
		return nil, false
	}
	if epoch == cur.epoch {
		return cur, true
	}
	idx := int(epoch - cur.baseEpoch)
	log := cur.log[:idx]
	nodes, edges := cur.base.NumNodes(), cur.base.NumEdges()
	from := 0
	if k := idx / s.memo; k > 0 && len(cur.prefix) >= k {
		cp := cur.prefix[k-1]
		nodes, edges = cp.nodes, cp.edges
		from = k * s.memo
	}
	s.lastSnapshotScan.Store(int64(idx - from))
	for _, m := range log[from:] {
		countMutation(m, &nodes, &edges)
	}
	sn := &Snapshot{
		epoch: epoch, baseEpoch: cur.baseEpoch,
		base: cur.base, log: log, nodes: nodes, edges: edges,
		prefix:        cur.prefix[:idx/s.memo],
		prevBaseEpoch: cur.prevBaseEpoch, prevLog: cur.prevLog,
		matCtr: cur.matCtr, overlayHist: cur.overlayHist,
	}
	if epoch == cur.baseEpoch {
		sn.g = cur.base
	}
	return sn, true
}

// Materializations reports how many times a snapshot of this store
// materialized a full graph (thaw + delta replay). The overlay read
// path keeps this at zero for query serving; index rebuilds and
// compaction are the intended exceptions.
func (s *Store) Materializations() uint64 { return s.materialized.Load() }

// Compactions reports how many journal compactions the store has
// performed (including the auto-compaction at Open).
func (s *Store) Compactions() uint64 { return s.compactions.Load() }

// Commits reports how many group commits (published batches) the
// committer has performed; Epoch()−BaseEpoch-relative growth of the
// gap between epoch and commits is the batching win.
func (s *Store) Commits() uint64 { return s.commits.Load() }

// Refolds reports how many full overlay refolds the chain depth guard
// has forced (each one resets the chained-view lineage to a fresh
// fold from base).
func (s *Store) Refolds() uint64 { return s.refolds.Load() }

// ChainDepth reports the chain depth of the current epoch's overlay
// view: 0 when the view is refolded straight from the base (or not
// built yet), k when it patches a depth k−1 view.
func (s *Store) ChainDepth() int {
	sn := s.snap.Load()
	if !sn.viewReady.Load() {
		return 0
	}
	if cv, ok := sn.view.(*chainView); ok {
		return cv.depth
	}
	return 0
}

// BaseEpoch returns the epoch of the store's in-memory base graph: 0
// for a fresh store, the latest fold epoch after Open adopted a
// compacted base or Compact re-based the store in place.
func (s *Store) BaseEpoch() uint64 { return s.snap.Load().baseEpoch }

// LogLen returns the resident mutation-log length: the number of
// mutations applied since the in-memory base graph (epoch − base
// epoch). This is the quantity a re-base resets — under a background
// compactor it stays bounded by churn since the last fold, and it
// bounds the cost of the next OverlayView construction.
func (s *Store) LogLen() int {
	sn := s.snap.Load()
	return int(sn.epoch - sn.baseEpoch)
}

// Counters reports lifetime mutation counts by kind.
func (s *Store) Counters() Counters {
	return Counters{
		NodesAdded:   s.nodesAdded.Load(),
		EdgesAdded:   s.edgesAdded.Load(),
		NodesUpdated: s.nodesUpdated.Load(),
		EdgesRemoved: s.edgesRemoved.Load(),
		NodesRemoved: s.nodesRemoved.Load(),
		EdgesUpdated: s.edgesUpdated.Load(),
	}
}

// isRemoved reports whether id is tombstoned (caller holds mu).
func (s *Store) isRemoved(id expertgraph.NodeID) bool {
	_, gone := s.removedNodes[id]
	return gone
}

// setWatermark registers (or, with a nil channel, clears) the
// background compactor's journal-size triggers; apply nudges ch
// non-blockingly whenever an append crosses them.
func (s *Store) setWatermark(ch chan struct{}, records uint64, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wmCh, s.wmRecords, s.wmBytes = ch, records, bytes
}

// JournalStats reports the journal's record count and byte size, both
// zero when journaling is disabled.
func (s *Store) JournalStats() (records uint64, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return 0, 0
	}
	return s.journal.records, s.journal.bytes
}

// AddExpert adds a new expert and returns its NodeID and the epoch at
// which it became visible. Authority values below 1 are floored to 1
// (the Builder's rule, so a'(c) = 1/a(c) stays defined).
func (s *Store) AddExpert(name string, authority float64, skills []string) (expertgraph.NodeID, uint64, error) {
	id, epoch, err := s.Apply(Mutation{Op: OpAddNode, Name: name, Authority: authority, Skills: skills})
	return id, epoch, err
}

// AddCollaboration adds an undirected edge (u, v) with communication
// cost w and returns the epoch at which it became visible.
func (s *Store) AddCollaboration(u, v expertgraph.NodeID, w float64) (uint64, error) {
	_, epoch, err := s.Apply(Mutation{Op: OpAddEdge, U: u, V: v, W: w})
	return epoch, err
}

// UpdateExpert updates an existing expert's authority (when authority
// is non-nil) and/or grants additional skills.
func (s *Store) UpdateExpert(id expertgraph.NodeID, authority *float64, addSkills []string) (uint64, error) {
	_, epoch, err := s.Apply(Mutation{Op: OpUpdateNode, Node: id, SetAuthority: authority, AddSkills: addSkills})
	return epoch, err
}

// RemoveCollaboration removes the undirected edge (u, v) and returns
// the epoch at which the removal became visible.
func (s *Store) RemoveCollaboration(u, v expertgraph.NodeID) (uint64, error) {
	_, epoch, err := s.Apply(Mutation{Op: OpRemoveEdge, U: u, V: v})
	return epoch, err
}

// RemoveExpert tombstones expert id: its incident edges are dropped,
// its skills cleared, and every further mutation referencing it fails
// with ErrRemovedNode. The NodeID slot is never reused, so snapshots
// across the removal stay consistent.
func (s *Store) RemoveExpert(id expertgraph.NodeID) (uint64, error) {
	_, epoch, err := s.Apply(Mutation{Op: OpRemoveNode, Node: id})
	return epoch, err
}

// UpdateCollaboration replaces the communication cost of the existing
// edge (u, v) and returns the epoch at which the new weight became
// visible.
func (s *Store) UpdateCollaboration(u, v expertgraph.NodeID, w float64) (uint64, error) {
	_, epoch, err := s.Apply(Mutation{Op: OpUpdateEdge, U: u, V: v, W: w})
	return epoch, err
}

// Apply validates m, journals it, applies it and returns once the
// epoch containing it is published. It returns the assigned NodeID for
// add_node mutations (0 otherwise) and the mutation's own epoch.
// Mutations are applied in a total order; the returned epoch supports
// read-your-writes — any snapshot resolved afterwards has at least
// that epoch (the committer publishes a batch's snapshot before
// completing its futures).
//
// Internally the mutation rides the group-commit pipeline: it is
// enqueued to the committer goroutine, validated against the writer
// state plus the effects of earlier ops in the same batch, journaled
// as part of one record group, and applied with the rest of the batch
// under one epoch publish. The call blocks until all of that happened,
// so the error contract is exactly the old synchronous one.
func (s *Store) Apply(m Mutation) (expertgraph.NodeID, uint64, error) {
	var start time.Time
	if s.applyHist != nil {
		start = time.Now()
	}
	if s.commitAuto {
		s.observeArrival()
	}
	s.senders.Add(1)
	if s.closing.Load() {
		s.senders.Add(-1)
		return 0, 0, ErrClosed
	}
	req := &applyReq{m: m, done: make(chan applyResult, 1)}
	s.applyCh <- req
	s.senders.Add(-1)
	res := <-req.done
	if res.err == nil && s.applyHist != nil {
		s.applyHist.Observe(time.Since(start).Seconds())
	}
	return res.id, res.epoch, res.err
}

// ApplyGroup enqueues ms as one contiguous run through the commit
// pipeline and waits for all of them, returning the epoch of the last
// applied mutation, how many applied, and the first per-op error. The
// run shares the committer's group commits — a whole replicated batch
// costs one (or a few) journal fsyncs and epoch publishes instead of
// len(ms) — which is the follower-side half of batch-aware replication
// framing. Ops are committed in order; like Apply, each op's epoch is
// its own. The store must not be receiving interleaved mutations from
// other writers if the caller needs the run to be contiguous (a
// replication follower is the intended caller, and its store has no
// other writers by contract).
//
// The run fails closed on divergence: the first record to fail
// validation aborts every record sharing its commit batch and every
// later one, so nothing past the failure is committed — the store is
// left at a clean prefix boundary (a run longer than the committer's
// batch cap may have durably committed whole earlier batches), never
// with a suffix journaled at epochs shifted down by a dropped record.
func (s *Store) ApplyGroup(ms []Mutation) (lastEpoch uint64, applied int, err error) {
	if len(ms) == 0 {
		return s.Epoch(), 0, nil
	}
	if s.commitAuto {
		s.observeArrival()
	}
	s.senders.Add(1)
	if s.closing.Load() {
		s.senders.Add(-1)
		return 0, 0, ErrClosed
	}
	grp := &commitGroup{}
	reqs := make([]*applyReq, len(ms))
	for i := range ms {
		reqs[i] = &applyReq{m: ms[i], done: make(chan applyResult, 1), group: grp}
		s.applyCh <- reqs[i]
	}
	s.senders.Add(-1)
	for _, r := range reqs {
		res := <-r.done
		switch {
		case res.err != nil:
			if err == nil {
				err = res.err
			}
		default:
			applied++
			lastEpoch = res.epoch
		}
	}
	return lastEpoch, applied, err
}

// observeArrival folds the gap since the previous mutation arrival
// into the arrival-gap EWMA the adaptive commit interval compares
// against the append duration. Lock-free and sloppy by design.
func (s *Store) observeArrival() {
	now := time.Now().UnixNano()
	last := s.lastArrivalNS.Swap(now)
	if last == 0 {
		return
	}
	gap := now - last
	if gap < 0 {
		return
	}
	if gap > int64(maxAutoInterval)*8 {
		// A long idle stretch is not an arrival rate; decay toward
		// "slow arrivals" without letting one pause dominate forever.
		gap = int64(maxAutoInterval) * 8
	}
	old := s.ewmaGapNS.Load()
	s.ewmaGapNS.Store(old + (gap-old)/4)
}

// validateMutation checks m against the writer state overlaid with sh
// (the effects of earlier ops in the same uncommitted batch) and fills
// the apply-time fields: W/OldW for edge removals and re-weights, and
// — when fresh is true — the incident-edge list of a node removal.
// Replay and follower apply pass fresh=false and trust the journaled
// list instead: it was captured when the mutation was first applied,
// and recomputing it would have to reconstruct pre-removal state.
// It returns the NodeID an add_node will be assigned. Caller holds mu.
func (s *Store) validateMutation(m *Mutation, sh *batchShadow, fresh bool) (expertgraph.NodeID, error) {
	var newID expertgraph.NodeID
	switch m.Op {
	case OpAddNode:
		if m.Name == "" {
			return 0, ErrEmptyName
		}
		if m.Authority < 1 {
			m.Authority = 1
		}
		newID = expertgraph.NodeID(sh.numNodes())
	case OpAddEdge:
		switch {
		case m.U == m.V:
			return 0, fmt.Errorf("%w: node %d", ErrSelfLoop, m.U)
		case m.W < 0:
			return 0, fmt.Errorf("%w: %v", ErrNegativeW, m.W)
		case m.U < 0 || int(m.U) >= sh.numNodes():
			return 0, fmt.Errorf("%w: %d", ErrUnknownNode, m.U)
		case m.V < 0 || int(m.V) >= sh.numNodes():
			return 0, fmt.Errorf("%w: %d", ErrUnknownNode, m.V)
		case sh.isRemoved(m.U):
			return 0, fmt.Errorf("%w: %d", ErrRemovedNode, m.U)
		case sh.isRemoved(m.V):
			return 0, fmt.Errorf("%w: %d", ErrRemovedNode, m.V)
		}
		if _, dup := sh.edgeWeight(m.U, m.V); dup {
			return 0, fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, m.U, m.V)
		}
	case OpUpdateNode:
		if m.Node < 0 || int(m.Node) >= sh.numNodes() {
			return 0, fmt.Errorf("%w: %d", ErrUnknownNode, m.Node)
		}
		if sh.isRemoved(m.Node) {
			return 0, fmt.Errorf("%w: %d", ErrRemovedNode, m.Node)
		}
		if m.SetAuthority == nil && len(m.AddSkills) == 0 {
			return 0, ErrEmptyUpdate
		}
		if m.SetAuthority != nil && *m.SetAuthority < 1 {
			one := 1.0
			m.SetAuthority = &one
		}
	case OpRemoveEdge:
		switch {
		case m.U < 0 || int(m.U) >= sh.numNodes():
			return 0, fmt.Errorf("%w: %d", ErrUnknownNode, m.U)
		case m.V < 0 || int(m.V) >= sh.numNodes():
			return 0, fmt.Errorf("%w: %d", ErrUnknownNode, m.V)
		case sh.isRemoved(m.U):
			return 0, fmt.Errorf("%w: %d", ErrRemovedNode, m.U)
		case sh.isRemoved(m.V):
			return 0, fmt.Errorf("%w: %d", ErrRemovedNode, m.V)
		}
		w, ok := sh.edgeWeight(m.U, m.V)
		if !ok {
			return 0, fmt.Errorf("%w: (%d,%d)", ErrUnknownEdge, m.U, m.V)
		}
		// Journal the removed edge's stored weight: decremental index
		// repair and the overlay bounds bookkeeping both need it, and
		// replay must not depend on reconstructing pre-removal state.
		m.W, m.OldW = w, 0
	case OpUpdateEdge:
		switch {
		case m.W < 0:
			return 0, fmt.Errorf("%w: %v", ErrNegativeW, m.W)
		case m.U < 0 || int(m.U) >= sh.numNodes():
			return 0, fmt.Errorf("%w: %d", ErrUnknownNode, m.U)
		case m.V < 0 || int(m.V) >= sh.numNodes():
			return 0, fmt.Errorf("%w: %d", ErrUnknownNode, m.V)
		case sh.isRemoved(m.U):
			return 0, fmt.Errorf("%w: %d", ErrRemovedNode, m.U)
		case sh.isRemoved(m.V):
			return 0, fmt.Errorf("%w: %d", ErrRemovedNode, m.V)
		}
		old, ok := sh.edgeWeight(m.U, m.V)
		if !ok {
			return 0, fmt.Errorf("%w: (%d,%d)", ErrUnknownEdge, m.U, m.V)
		}
		if old == m.W {
			return 0, fmt.Errorf("%w: edge (%d,%d) already weighs %v", ErrEmptyUpdate, m.U, m.V, m.W)
		}
		m.OldW = old
	case OpRemoveNode:
		if m.Node < 0 || int(m.Node) >= sh.numNodes() {
			return 0, fmt.Errorf("%w: %d", ErrUnknownNode, m.Node)
		}
		if sh.isRemoved(m.Node) {
			return 0, fmt.Errorf("%w: %d", ErrRemovedNode, m.Node)
		}
		if fresh {
			// Fresh apply: capture the node's incident edges — the
			// pre-batch snapshot view adjusted by the staged batch
			// effects, so mid-batch removals see mid-batch adjacency.
			m.Edges = sh.incidentEdges(m.Node)
		}
		for _, e := range m.Edges {
			if _, ok := sh.edgeWeight(m.Node, e.V); !ok {
				return 0, fmt.Errorf("%w: (%d,%d)", ErrUnknownEdge, m.Node, e.V)
			}
		}
	default:
		return 0, fmt.Errorf("live: unknown op %q", m.Op)
	}
	return newID, nil
}

// stateApply folds one validated mutation into the writer state and
// the append-only log, checkpointing SnapshotAt prefixes on the way.
// It never publishes — the caller (committer batch, journal replay,
// follower apply) publishes once per batch. Caller holds mu.
func (s *Store) stateApply(m Mutation) {
	switch m.Op {
	case OpAddNode:
		s.nNodes++
		s.nodesAdded.Add(1)
	case OpAddEdge:
		s.edgeSet[edgeKey(m.U, m.V)] = m.W
		s.nEdges++
		s.edgesAdded.Add(1)
	case OpUpdateNode:
		s.nodesUpdated.Add(1)
	case OpRemoveEdge:
		delete(s.edgeSet, edgeKey(m.U, m.V))
		s.nEdges--
		s.edgesRemoved.Add(1)
	case OpUpdateEdge:
		s.edgeSet[edgeKey(m.U, m.V)] = m.W
		s.edgesUpdated.Add(1)
	case OpRemoveNode:
		for _, e := range m.Edges {
			delete(s.edgeSet, edgeKey(m.Node, e.V))
		}
		s.nEdges -= len(m.Edges)
		if s.removedNodes == nil {
			s.removedNodes = make(map[expertgraph.NodeID]struct{})
		}
		s.removedNodes[m.Node] = struct{}{}
		s.nodesRemoved.Add(1)
	}

	// Append-only log with structural sharing: every snapshot holds a
	// header over the same backing array, capped at its own epoch.
	// The writer only ever appends past every published length, so
	// readers never observe a write.
	s.log = append(s.log, m)
	if len(s.log)%s.memo == 0 {
		s.prefix = append(s.prefix, prefixCount{nodes: s.nNodes, edges: s.nEdges})
	}
}

// buildSnapshotLocked assembles (without publishing) the snapshot of
// the current writer state. Caller holds mu, or has exclusive access
// during Open.
func (s *Store) buildSnapshotLocked() *Snapshot {
	next := &Snapshot{
		epoch:         s.baseEpoch + uint64(len(s.log)),
		baseEpoch:     s.baseEpoch,
		base:          s.base,
		log:           s.log,
		prefix:        s.prefix,
		prevBaseEpoch: s.prevBaseEpoch,
		prevLog:       s.prevLog,
		nodes:         s.nNodes,
		edges:         s.nEdges,
		matCtr:        &s.materialized,
		overlayHist:   s.overlayHist,
	}
	if next.epoch == next.baseEpoch {
		next.g = s.base
	}
	return next
}

// Snapshot is one epoch's immutable, consistent view of the network.
// It is safe for concurrent use. A snapshot carries its own base graph
// and log references, so it stays valid — and keeps answering every
// read — after the store re-bases in place (Compact swaps the store's
// base and resets its log, but never mutates a published snapshot).
type Snapshot struct {
	epoch     uint64
	baseEpoch uint64 // epoch of base; log[i] is the mutation of epoch baseEpoch+i+1
	base      *expertgraph.Graph
	log       []Mutation    // the epoch−baseEpoch mutations since base
	prefix    []prefixCount // SnapshotAt checkpoints over log (structurally shared)
	// prevBaseEpoch/prevLog retain the previous re-base generation's
	// mutations — epochs (prevBaseEpoch, baseEpoch] — so MutationsSince
	// can bridge exactly one re-base boundary (see Store.prevLog).
	prevBaseEpoch uint64
	prevLog       []Mutation
	nodes         int
	edges         int
	matCtr        *atomic.Uint64 // store's materialization counter (may be nil)
	overlayHist   *obs.Histogram // overlay-build duration instrument (may be nil)

	once sync.Once
	g    *expertgraph.Graph
	err  error

	viewOnce sync.Once
	view     expertgraph.GraphView
	// viewReady flips true once view is built (by View, or preset by
	// the committer before publication). The committer loads it to
	// decide whether the next batch can chain off this epoch's view
	// without forcing a build nobody asked for.
	viewReady atomic.Bool
}

// Epoch returns the snapshot's epoch (the base epoch = the unmodified
// base graph).
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// BaseEpoch returns the epoch of the base graph this snapshot reads
// through; Epoch−BaseEpoch is the delta the snapshot's overlay view
// patches over the base CSR.
func (sn *Snapshot) BaseEpoch() uint64 { return sn.baseEpoch }

// NumNodes returns the expert count at this epoch without
// materializing the graph.
func (sn *Snapshot) NumNodes() int { return sn.nodes }

// NumEdges returns the undirected edge count at this epoch without
// materializing the graph.
func (sn *Snapshot) NumEdges() int { return sn.edges }

// Graph materializes (and memoizes) the full expert network at this
// epoch: the base graph is thawed and the mutation delta replayed.
// Every caller of the same snapshot shares one materialization.
//
// Query serving does not need this — View answers every read without
// copying the graph — so materialization is reserved for the jobs that
// genuinely want a packed CSR copy: full 2-hop index rebuilds and
// journal compaction. Each actual materialization is counted on the
// store (see Store.Materializations).
func (sn *Snapshot) Graph() (*expertgraph.Graph, error) {
	sn.once.Do(func() {
		if sn.g != nil { // a base-epoch snapshot carries the base graph directly
			return
		}
		if sn.matCtr != nil {
			sn.matCtr.Add(1)
		}
		sn.g, sn.err = materialize(sn.base, sn.log)
	})
	return sn.g, sn.err
}

// View returns the epoch's read-only graph view without materializing
// anything: the base graph itself at the base epoch, and a delta
// overlay (base CSR + per-node patches, O(|delta|) to construct,
// memoized per snapshot) afterwards. This is the read path the whole
// query stack — transform fit, distance oracles, Algorithm 1, team
// evaluation — consumes.
func (sn *Snapshot) View() expertgraph.GraphView {
	sn.viewOnce.Do(func() {
		if sn.epoch == sn.baseEpoch {
			sn.view = sn.base
			sn.viewReady.Store(true)
			return
		}
		var start time.Time
		if sn.overlayHist != nil {
			start = time.Now()
		}
		sn.view = newOverlay(sn.base, sn.log[:sn.epoch-sn.baseEpoch], sn.nodes, sn.edges)
		if sn.overlayHist != nil {
			sn.overlayHist.Observe(time.Since(start).Seconds())
		}
		sn.viewReady.Store(true)
	})
	return sn.view
}

// MutationsSince returns the mutations applied after epoch `from` up
// to this snapshot, or ok=false when from is ahead of this snapshot or
// predates the retained history window. The window is the current
// re-base generation plus exactly one generation back: a fold re-bases
// the store but keeps the folded generation's log (prevLog), so state
// anchored shortly before a fold — a resident 2-hop cover, most
// commonly — can still be repaired forward instead of rebuilt. Epochs
// at or below prevBaseEpoch (two or more folds ago) are honestly
// refused; their history is gone from memory.
func (sn *Snapshot) MutationsSince(from uint64) (muts []Mutation, ok bool) {
	if from > sn.epoch {
		return nil, false
	}
	if from >= sn.baseEpoch {
		return sn.log[from-sn.baseEpoch : sn.epoch-sn.baseEpoch], true
	}
	if sn.prevLog == nil || from < sn.prevBaseEpoch {
		return nil, false
	}
	// Bridge one re-base boundary: prevLog covers (prevBaseEpoch,
	// baseEpoch], log covers (baseEpoch, epoch].
	bridge := sn.prevLog[from-sn.prevBaseEpoch:]
	cur := sn.log[:sn.epoch-sn.baseEpoch]
	out := make([]Mutation, 0, len(bridge)+len(cur))
	out = append(out, bridge...)
	return append(out, cur...), true
}

// materialize replays the delta onto a thawed copy of base.
func materialize(base *expertgraph.Graph, muts []Mutation) (*expertgraph.Graph, error) {
	extraNodes, extraEdges := 0, 0
	for _, m := range muts {
		switch m.Op {
		case OpAddNode:
			extraNodes++
		case OpAddEdge:
			extraEdges++
		}
	}
	b := base.Thaw(extraNodes, extraEdges)
	for _, m := range muts {
		switch m.Op {
		case OpAddNode:
			b.AddNode(m.Name, m.Authority, m.Skills...)
		case OpAddEdge:
			b.AddEdge(m.U, m.V, m.W)
		case OpUpdateNode:
			if m.SetAuthority != nil {
				b.SetAuthority(m.Node, *m.SetAuthority)
			}
			for _, sk := range m.AddSkills {
				b.AddSkillTo(m.Node, sk)
			}
		case OpRemoveEdge:
			b.RemoveEdge(m.U, m.V)
		case OpUpdateEdge:
			b.UpdateEdge(m.U, m.V, m.W)
		case OpRemoveNode:
			for _, e := range m.Edges {
				b.RemoveEdge(m.Node, e.V)
			}
			b.RemoveNode(m.Node)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("live: materialize: %w", err)
	}
	// Build computed tight bounds over the surviving values; widen them
	// to the epoch's covering bounds so the materialized graph and the
	// overlay serving the same epoch answer bit-identical normalization
	// bounds (a §3.2.2 invariant — disagreeing bounds would re-scale
	// every transformed edge weight and silently invalidate the 2-hop
	// cover built over the other view).
	g.WidenBounds(coverBounds(base, muts))
	return g, nil
}

// coverBounds replays newOverlay's covering-bounds fold over the delta:
// seed from the base graph's bounds where its populations are nonempty,
// expand with every value the delta introduces, ignore retirements. The
// result equals the overlay's bounds exactly — same fold over the same
// floats, and min/max folds are order-insensitive.
func coverBounds(base *expertgraph.Graph, muts []Mutation) (minW, maxW, minInv, maxInv float64) {
	haveW := base.NumEdges() > 0
	if haveW {
		minW, maxW = base.EdgeWeightBounds()
	}
	haveInv := base.NumNodes() > base.NumRemoved()
	if haveInv {
		minInv, maxInv = base.InvAuthorityBounds()
	}
	foldW := func(w float64) {
		if !haveW {
			minW, maxW, haveW = w, w, true
			return
		}
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	foldInv := func(inv float64) {
		if !haveInv {
			minInv, maxInv, haveInv = inv, inv, true
			return
		}
		if inv < minInv {
			minInv = inv
		}
		if inv > maxInv {
			maxInv = inv
		}
	}
	for _, m := range muts {
		switch m.Op {
		case OpAddNode:
			foldInv(1 / m.Authority)
		case OpAddEdge:
			foldW(m.W)
		case OpUpdateEdge:
			foldW(m.W)
		case OpUpdateNode:
			if m.SetAuthority != nil {
				foldInv(1 / *m.SetAuthority)
			}
		}
	}
	return
}
