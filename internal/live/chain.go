package live

import (
	"authteam/internal/expertgraph"
)

// chainView answers GraphView reads for one epoch as a patch layer
// over the *previous* epoch's memoized view instead of a fresh fold
// over the whole resident delta. Where OverlayView costs O(|delta|) to
// build (it refolds every mutation since the base), a chainView costs
// O(|batch|): the committer derives epoch E+1's view from epoch E's
// view plus the just-committed batch, so under a sustained write
// stream the per-epoch view-build cost stays flat no matter how long
// ago the last fold was.
//
// The chain is semantically identical to a refold. Bounds continue the
// parent's covering fold (boundSide state is copied by value and the
// batch folded on top — the same sequential fold a full refold runs),
// holder lists merge the parent's sorted lists with the batch's sorted
// additions (the same merge a refold does against the base), and the
// subtractive mask applies to every parent edge by key, which
// subsumes OverlayView's split between masked base entries and
// dropped delta halves. Only the Neighbors visit order can differ —
// GraphView leaves it implementation-defined.
//
// Deep chains accumulate lookup layers (each read walks down the
// parent chain on a patch miss), so the committer bounds depth at
// maxChainDepth and resets the chain with a full refold — the
// "periodic refold guard" — keeping reads O(1)-ish layers and
// amortizing the O(|delta|) refold over maxChainDepth cheap chained
// builds. Compaction and base adoption publish snapshots with fresh
// lazy views, resetting the chain at every rebase/fold boundary.
//
// chainView is immutable after construction and safe for concurrent
// readers; it reads the parent view, which is itself immutable.
type chainView struct {
	parent chainableView
	pn     int // parent node count
	pnSk   int // parent skill count
	depth  int // chain links above the refolded root (root = 0)
	nodes  int
	edges  int

	// Nodes appended by the batch (IDs pn, pn+1, …).
	newNames  []string
	newAuth   []float64
	newInv    []float64
	newSkills [][]expertgraph.SkillID
	newAdj    [][]halfEdge

	// Patches on parent nodes (same shapes as OverlayView's).
	authPatch  map[expertgraph.NodeID]authOverride
	extraAdj   map[expertgraph.NodeID][]halfEdge
	skillPatch map[expertgraph.NodeID][]expertgraph.SkillID

	// Subtractive patches: parent edges masked by key (removed or
	// re-weighted by this batch), the per-endpoint masked count, and
	// nodes tombstoned by this batch.
	removedEdges map[uint64]struct{}
	removedDeg   map[expertgraph.NodeID]int
	removedNodes map[expertgraph.NodeID]struct{}

	newSkillNames []string
	newSkillIDs   map[string]expertgraph.SkillID
	holdersPatch  map[expertgraph.SkillID][]expertgraph.NodeID

	minW, maxW     float64
	minInv, maxInv float64

	wLo, wHi, invLo, invHi boundSide
}

// chainableView is a view another epoch's view can chain off: it
// exposes the covering-bounds fold state so the child can continue the
// fold exactly where the parent left it. Both overlay flavors qualify;
// the raw base graph does not (a chain starting at the base epoch is
// just a fresh OverlayView over the batch).
type chainableView interface {
	expertgraph.GraphView
	boundsState() (wLo, wHi, invLo, invHi boundSide)
}

func (o *OverlayView) boundsState() (wLo, wHi, invLo, invHi boundSide) {
	return o.wLo, o.wHi, o.invLo, o.invHi
}

func (c *chainView) boundsState() (wLo, wHi, invLo, invHi boundSide) {
	return c.wLo, c.wHi, c.invLo, c.invHi
}

// chainOverlay folds one committed batch into a patch layer over the
// previous epoch's view. muts must be the validated batch (same
// guarantees as newOverlay's log), nodes/edges the counts at the new
// epoch, and depth the parent's chain depth plus one.
func chainOverlay(parent chainableView, muts []Mutation, nodes, edges int, depth int) *chainView {
	c := &chainView{
		parent: parent,
		pn:     parent.NumNodes(),
		pnSk:   parent.NumSkills(),
		depth:  depth,
		nodes:  nodes,
		edges:  edges,
	}
	// Continue the parent's covering-bounds fold: copying the boundSide
	// state and folding the batch on top runs the exact sequential fold
	// a full refold from base would, so bounds and tightness come out
	// bit-identical.
	c.wLo, c.wHi, c.invLo, c.invHi = parent.boundsState()

	var addedHolders map[expertgraph.SkillID][]expertgraph.NodeID
	var droppedHolders map[expertgraph.SkillID]map[expertgraph.NodeID]struct{}

	skillID := func(name string) expertgraph.SkillID {
		if id, ok := c.parent.SkillID(name); ok {
			return id
		}
		if id, ok := c.newSkillIDs[name]; ok {
			return id
		}
		id := expertgraph.SkillID(c.pnSk + len(c.newSkillNames))
		c.newSkillNames = append(c.newSkillNames, name)
		if c.newSkillIDs == nil {
			c.newSkillIDs = make(map[string]expertgraph.SkillID)
		}
		c.newSkillIDs[name] = id
		return id
	}
	addHolder := func(s expertgraph.SkillID, u expertgraph.NodeID) {
		if addedHolders == nil {
			addedHolders = make(map[expertgraph.SkillID][]expertgraph.NodeID)
		}
		addedHolders[s] = append(addedHolders[s], u)
	}
	dropHolder := func(s expertgraph.SkillID, u expertgraph.NodeID) {
		if droppedHolders == nil {
			droppedHolders = make(map[expertgraph.SkillID]map[expertgraph.NodeID]struct{})
		}
		set := droppedHolders[s]
		if set == nil {
			set = make(map[expertgraph.NodeID]struct{})
			droppedHolders[s] = set
		}
		set[u] = struct{}{}
	}
	foldInv := func(inv float64) { c.invLo.lower(inv); c.invHi.raise(inv) }
	foldW := func(w float64) { c.wLo.lower(w); c.wHi.raise(w) }
	retireInv := func(inv float64) { c.invLo.retire(inv); c.invHi.retire(inv) }
	retireW := func(w float64) { c.wLo.retire(w); c.wHi.retire(w) }
	effInv := func(u expertgraph.NodeID) float64 {
		if int(u) >= c.pn {
			return c.newInv[int(u)-c.pn]
		}
		if ov, ok := c.authPatch[u]; ok {
			return ov.inv
		}
		return c.parent.InvAuthority(u)
	}

	for _, m := range muts {
		switch m.Op {
		case OpAddNode:
			id := expertgraph.NodeID(c.pn + len(c.newNames))
			inv := 1 / m.Authority
			c.newNames = append(c.newNames, m.Name)
			c.newAuth = append(c.newAuth, m.Authority)
			c.newInv = append(c.newInv, inv)
			var sk []expertgraph.SkillID
			for _, name := range m.Skills {
				s := skillID(name)
				if containsSkill(sk, s) {
					continue
				}
				sk = append(sk, s)
				addHolder(s, id)
			}
			c.newSkills = append(c.newSkills, sk)
			c.newAdj = append(c.newAdj, nil)
			foldInv(inv)

		case OpAddEdge:
			c.addHalf(m.U, halfEdge{to: m.V, w: m.W})
			c.addHalf(m.V, halfEdge{to: m.U, w: m.W})
			foldW(m.W)

		case OpRemoveEdge:
			c.maskEdge(m.U, m.V)
			retireW(m.W)

		case OpUpdateEdge:
			if c.updateHalf(m.U, m.V, m.W) {
				c.updateHalf(m.V, m.U, m.W)
			} else {
				// An edge the parent already serves: mask it by key and
				// carry the new weight as batch halves.
				c.maskEdge(m.U, m.V)
				c.addHalf(m.U, halfEdge{to: m.V, w: m.W})
				c.addHalf(m.V, halfEdge{to: m.U, w: m.W})
			}
			retireW(m.OldW)
			foldW(m.W)

		case OpRemoveNode:
			for _, e := range m.Edges {
				c.maskEdge(m.Node, e.V)
				retireW(e.W)
			}
			retireInv(effInv(m.Node))
			for _, s := range c.effectiveSkills(m.Node) {
				dropHolder(s, m.Node)
			}
			if int(m.Node) >= c.pn {
				c.newSkills[int(m.Node)-c.pn] = nil
			} else {
				if c.skillPatch == nil {
					c.skillPatch = make(map[expertgraph.NodeID][]expertgraph.SkillID)
				}
				c.skillPatch[m.Node] = []expertgraph.SkillID{}
			}
			if c.removedNodes == nil {
				c.removedNodes = make(map[expertgraph.NodeID]struct{})
			}
			c.removedNodes[m.Node] = struct{}{}

		case OpUpdateNode:
			if m.SetAuthority != nil {
				auth := *m.SetAuthority
				inv := 1 / auth
				retireInv(effInv(m.Node))
				if int(m.Node) >= c.pn {
					i := int(m.Node) - c.pn
					c.newAuth[i], c.newInv[i] = auth, inv
				} else {
					if c.authPatch == nil {
						c.authPatch = make(map[expertgraph.NodeID]authOverride)
					}
					c.authPatch[m.Node] = authOverride{auth: auth, inv: inv}
				}
				foldInv(inv)
			}
			for _, name := range m.AddSkills {
				s := skillID(name)
				if containsSkill(c.effectiveSkills(m.Node), s) {
					continue
				}
				if int(m.Node) >= c.pn {
					i := int(m.Node) - c.pn
					c.newSkills[i] = append(c.newSkills[i], s)
				} else {
					if c.skillPatch == nil {
						c.skillPatch = make(map[expertgraph.NodeID][]expertgraph.SkillID)
					}
					if _, ok := c.skillPatch[m.Node]; !ok {
						c.skillPatch[m.Node] = append([]expertgraph.SkillID(nil), c.parent.Skills(m.Node)...)
					}
					c.skillPatch[m.Node] = append(c.skillPatch[m.Node], s)
				}
				addHolder(s, m.Node)
			}
		}
	}

	c.minW, c.maxW = c.wLo.val, c.wHi.val
	c.minInv, c.maxInv = c.invLo.val, c.invHi.val

	if len(addedHolders) > 0 || len(droppedHolders) > 0 {
		c.holdersPatch = make(map[expertgraph.SkillID][]expertgraph.NodeID, len(addedHolders)+len(droppedHolders))
		patchSkill := func(s expertgraph.SkillID) {
			if _, done := c.holdersPatch[s]; done {
				return
			}
			dropped := droppedHolders[s]
			var parentHolders []expertgraph.NodeID
			if int(s) < c.pnSk {
				parentHolders = c.parent.ExpertsWithSkill(s)
			}
			if len(dropped) > 0 {
				kept := make([]expertgraph.NodeID, 0, len(parentHolders))
				for _, u := range parentHolders {
					if _, gone := dropped[u]; !gone {
						kept = append(kept, u)
					}
				}
				parentHolders = kept
			}
			added := addedHolders[s]
			if len(dropped) > 0 && len(added) > 0 {
				kept := make([]expertgraph.NodeID, 0, len(added))
				for _, u := range added {
					if _, gone := dropped[u]; !gone {
						kept = append(kept, u)
					}
				}
				added = kept
			} else if len(added) > 0 {
				added = append([]expertgraph.NodeID(nil), added...)
			}
			sortNodeIDs(added)
			c.holdersPatch[s] = mergeSortedNodeIDs(parentHolders, added)
		}
		for s := range addedHolders {
			patchSkill(s)
		}
		for s := range droppedHolders {
			patchSkill(s)
		}
	}
	return c
}

func (c *chainView) addHalf(u expertgraph.NodeID, e halfEdge) {
	if int(u) >= c.pn {
		i := int(u) - c.pn
		c.newAdj[i] = append(c.newAdj[i], e)
		return
	}
	if c.extraAdj == nil {
		c.extraAdj = make(map[expertgraph.NodeID][]halfEdge)
	}
	c.extraAdj[u] = append(c.extraAdj[u], e)
}

// dropHalf deletes this layer's half-edge u→v if present, reporting
// whether it existed.
func (c *chainView) dropHalf(u, v expertgraph.NodeID) bool {
	var adj []halfEdge
	if int(u) >= c.pn {
		adj = c.newAdj[int(u)-c.pn]
	} else {
		adj = c.extraAdj[u]
	}
	for i, e := range adj {
		if e.to == v {
			last := len(adj) - 1
			adj[i] = adj[last]
			adj = adj[:last]
			if int(u) >= c.pn {
				c.newAdj[int(u)-c.pn] = adj
			} else if last == 0 {
				delete(c.extraAdj, u)
			} else {
				c.extraAdj[u] = adj
			}
			return true
		}
	}
	return false
}

// updateHalf re-weights this layer's half-edge u→v in place, reporting
// whether it existed.
func (c *chainView) updateHalf(u, v expertgraph.NodeID, w float64) bool {
	var adj []halfEdge
	if int(u) >= c.pn {
		adj = c.newAdj[int(u)-c.pn]
	} else {
		adj = c.extraAdj[u]
	}
	for i := range adj {
		if adj[i].to == v {
			adj[i].w = w
			return true
		}
	}
	return false
}

// maskEdge removes the effective edge (u, v) mid-fold: a half pair
// added by this batch is dropped outright; an edge the parent serves
// (whatever layer it lives in there) is masked by key.
func (c *chainView) maskEdge(u, v expertgraph.NodeID) {
	if c.dropHalf(u, v) {
		c.dropHalf(v, u)
		return
	}
	if c.removedEdges == nil {
		c.removedEdges = make(map[uint64]struct{})
		c.removedDeg = make(map[expertgraph.NodeID]int)
	}
	c.removedEdges[edgeKey(u, v)] = struct{}{}
	c.removedDeg[u]++
	c.removedDeg[v]++
}

// isRemoved reports whether u is tombstoned — by this batch or already
// in the parent.
func (c *chainView) isRemoved(u expertgraph.NodeID) bool {
	if _, gone := c.removedNodes[u]; gone {
		return true
	}
	return int(u) < c.pn && !c.parent.ValidNode(u)
}

// effectiveSkills returns u's skill set mid-fold (shared slices; do
// not modify).
func (c *chainView) effectiveSkills(u expertgraph.NodeID) []expertgraph.SkillID {
	if int(u) >= c.pn {
		return c.newSkills[int(u)-c.pn]
	}
	if sk, ok := c.skillPatch[u]; ok {
		return sk
	}
	return c.parent.Skills(u)
}

// --- expertgraph.GraphView ----------------------------------------------

// NumNodes returns the expert count at this epoch.
func (c *chainView) NumNodes() int { return c.nodes }

// NumEdges returns the undirected edge count at this epoch.
func (c *chainView) NumEdges() int { return c.edges }

// NumSkills returns the size of the skill universe at this epoch.
func (c *chainView) NumSkills() int { return c.pnSk + len(c.newSkillNames) }

// Name returns the display name of expert u.
func (c *chainView) Name(u expertgraph.NodeID) string {
	if int(u) >= c.pn {
		return c.newNames[int(u)-c.pn]
	}
	return c.parent.Name(u)
}

// Authority returns a(u), the raw authority of expert u.
func (c *chainView) Authority(u expertgraph.NodeID) float64 {
	if int(u) >= c.pn {
		return c.newAuth[int(u)-c.pn]
	}
	if len(c.authPatch) != 0 {
		if ov, ok := c.authPatch[u]; ok {
			return ov.auth
		}
	}
	return c.parent.Authority(u)
}

// InvAuthority returns a'(u) = 1/a(u).
func (c *chainView) InvAuthority(u expertgraph.NodeID) float64 {
	if int(u) >= c.pn {
		return c.newInv[int(u)-c.pn]
	}
	if len(c.authPatch) != 0 {
		if ov, ok := c.authPatch[u]; ok {
			return ov.inv
		}
	}
	return c.parent.InvAuthority(u)
}

// Pubs returns the publication count of expert u.
func (c *chainView) Pubs(u expertgraph.NodeID) int {
	if int(u) >= c.pn {
		return 0
	}
	return c.parent.Pubs(u)
}

// Degree returns the number of neighbours of expert u.
func (c *chainView) Degree(u expertgraph.NodeID) int {
	if _, gone := c.removedNodes[u]; gone {
		return 0
	}
	if int(u) >= c.pn {
		return len(c.newAdj[int(u)-c.pn])
	}
	d := c.parent.Degree(u)
	if len(c.removedDeg) != 0 {
		d -= c.removedDeg[u]
	}
	if len(c.extraAdj) != 0 {
		d += len(c.extraAdj[u])
	}
	return d
}

// Neighbors visits the parent's edges first (minus any this batch
// masked), then this batch's edges.
func (c *chainView) Neighbors(u expertgraph.NodeID, fn func(v expertgraph.NodeID, w float64) bool) {
	if _, gone := c.removedNodes[u]; gone {
		return
	}
	if int(u) >= c.pn {
		for _, e := range c.newAdj[int(u)-c.pn] {
			if !fn(e.to, e.w) {
				return
			}
		}
		return
	}
	extra := c.extraAdj[u]
	if len(c.removedEdges) == 0 {
		if len(extra) == 0 {
			c.parent.Neighbors(u, fn)
			return
		}
		stopped := false
		c.parent.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			if !fn(v, w) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	} else {
		stopped := false
		c.parent.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			if _, masked := c.removedEdges[edgeKey(u, v)]; masked {
				return true
			}
			if !fn(v, w) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
	for _, e := range extra {
		if !fn(e.to, e.w) {
			return
		}
	}
}

// EdgeWeight returns the weight of edge (u,v) and whether it exists.
// This batch's halves take precedence (they carry re-weights); masked
// parent entries are invisible.
func (c *chainView) EdgeWeight(u, v expertgraph.NodeID) (float64, bool) {
	var extra []halfEdge
	if int(u) >= c.pn {
		extra = c.newAdj[int(u)-c.pn]
	} else {
		extra = c.extraAdj[u]
	}
	for _, e := range extra {
		if e.to == v {
			return e.w, true
		}
	}
	if int(u) < c.pn && int(v) < c.pn {
		if len(c.removedEdges) != 0 {
			if _, masked := c.removedEdges[edgeKey(u, v)]; masked {
				return 0, false
			}
		}
		return c.parent.EdgeWeight(u, v)
	}
	return 0, false
}

// SkillID resolves a skill name to its ID.
func (c *chainView) SkillID(name string) (expertgraph.SkillID, bool) {
	if id, ok := c.parent.SkillID(name); ok {
		return id, true
	}
	id, ok := c.newSkillIDs[name]
	return id, ok
}

// SkillName returns the name of skill s.
func (c *chainView) SkillName(s expertgraph.SkillID) string {
	if int(s) >= c.pnSk {
		return c.newSkillNames[int(s)-c.pnSk]
	}
	return c.parent.SkillName(s)
}

// Skills returns the skills held by expert u. The returned slice is
// shared with the view and must not be modified.
func (c *chainView) Skills(u expertgraph.NodeID) []expertgraph.SkillID {
	if int(u) >= c.pn {
		return c.newSkills[int(u)-c.pn]
	}
	if len(c.skillPatch) != 0 {
		if sk, ok := c.skillPatch[u]; ok {
			return sk
		}
	}
	return c.parent.Skills(u)
}

// HasSkill reports whether expert u holds skill s.
func (c *chainView) HasSkill(u expertgraph.NodeID, s expertgraph.SkillID) bool {
	return containsSkill(c.Skills(u), s)
}

// ExpertsWithSkill returns C(s) sorted by NodeID. The returned slice
// is shared with the view and must not be modified.
func (c *chainView) ExpertsWithSkill(s expertgraph.SkillID) []expertgraph.NodeID {
	if len(c.holdersPatch) != 0 {
		if holders, ok := c.holdersPatch[s]; ok {
			return holders
		}
	}
	if int(s) < c.pnSk {
		return c.parent.ExpertsWithSkill(s)
	}
	return nil
}

// EdgeWeightBounds returns the covering (min, max) edge weight bounds
// at this epoch — bit-identical to a full refold's (same sequential
// fold, resumed from the parent's state).
func (c *chainView) EdgeWeightBounds() (lo, hi float64) { return c.minW, c.maxW }

// InvAuthorityBounds returns the covering (min, max) inverse-authority
// bounds at this epoch, over live (non-tombstoned) experts.
func (c *chainView) InvAuthorityBounds() (lo, hi float64) { return c.minInv, c.maxInv }

// BoundsTight reports whether the covering bounds are each provably
// tight at this epoch (see OverlayView.BoundsTight).
func (c *chainView) BoundsTight() (w, inv bool) {
	return c.wLo.tight() && c.wHi.tight(), c.invLo.tight() && c.invHi.tight()
}

// ValidNode reports whether u is a live node of this view.
func (c *chainView) ValidNode(u expertgraph.NodeID) bool {
	return u >= 0 && int(u) < c.nodes && !c.isRemoved(u)
}

var _ expertgraph.GraphView = (*chainView)(nil)
var _ chainableView = (*chainView)(nil)
var _ chainableView = (*OverlayView)(nil)
