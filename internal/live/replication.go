package live

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"authteam/internal/expertgraph"
)

// The journal doubles as a replication log: every mutation is already
// a self-contained journal record applied in a total epoch order, so a
// follower that replays the same records through the same apply path
// reconstructs the identical store — snapshot by snapshot, epoch by
// epoch. This file is the store-side half of that contract:
//
//   - TailSince serves the record stream (long-polling on the epoch
//     watch channel instead of holding the writer lock),
//   - WriteBaseTo streams the current fold snapshot (the in-memory
//     base graph, which is immutable) for followers behind the
//     retained window,
//   - AdoptBase installs a fetched base wholesale, the follower-side
//     mirror of Compact's re-base,
//   - Follower drives a ReplicationSource — any transport — through
//     catch-up, steady tailing, and fold-boundary recovery.
//
// Group commit on the leader is invisible at this layer: a batch is
// journaled as N ordinary records carrying consecutive per-op epochs,
// byte-identical to what N serial appends would have written, so the
// tail stream, the base snapshot, and the follower's replay need no
// notion of batch boundaries. (A follower still group-commits its own
// applies locally; the win it cannot get today is applying a whole
// leader batch under one lock acquisition — that would need batch
// framing in the wire protocol, noted as a follow-up in ROADMAP.md.)

// Replication errors.
var (
	// ErrCompactedEpoch is returned by TailSince when the requested
	// epoch predates the retained history window (two or more folds
	// ago): the records are gone, the caller must fetch the base
	// snapshot and resume from its epoch.
	ErrCompactedEpoch = errors.New("live: epoch predates the retained journal window")
	// ErrFutureEpoch is returned by TailSince when the requested epoch
	// is ahead of the store — the tailer and the store disagree about
	// history, which a correct follower never does.
	ErrFutureEpoch = errors.New("live: epoch is ahead of the store")
)

// TailSince returns the mutations of epochs from+1 .. from+max (max ≤
// 0 means unbounded) together with the store's current epoch. When the
// store is exactly at `from`, the call long-polls: it blocks on the
// epoch watch until a new epoch is published or ctx is done, and a
// timeout returns an empty batch with a nil error (the idle long-poll
// round-trip). ErrCompactedEpoch and ErrFutureEpoch report a `from`
// outside the retained window.
func (s *Store) TailSince(ctx context.Context, from uint64, max int) ([]Mutation, uint64, error) {
	for {
		if s.fenced.Load() {
			// A demoted store's suffix past TermStart may diverge from
			// the surviving lineage; serving it would replicate the
			// split-brain fencing just prevented.
			return nil, s.Epoch(), &FencedError{Term: s.term.Load()}
		}
		sn := s.Snapshot()
		if from > sn.epoch {
			return nil, sn.epoch, fmt.Errorf("%w: tail from %d, store at %d", ErrFutureEpoch, from, sn.epoch)
		}
		muts, ok := sn.MutationsSince(from)
		if !ok {
			return nil, sn.epoch, fmt.Errorf("%w: tail from %d, window starts after %d", ErrCompactedEpoch, from, sn.prevBaseEpoch)
		}
		if len(muts) > 0 {
			if max > 0 && len(muts) > max {
				muts = muts[:max:max]
			}
			return muts, sn.epoch, nil
		}
		if !s.WaitEpoch(ctx, from+1) {
			return nil, s.Epoch(), nil
		}
	}
}

// WriteBaseTo streams the store's current base graph and its epoch in
// the compacted-base format (WriteBaseStream), returning the epoch
// written. The base graph is immutable and read from one snapshot, so
// the stream is consistent without any locking and costs no
// materialization — it is exactly the graph a local fold last wrote
// (or the graph the store was opened over, at epoch 0). The stream
// carries the store's *current* term: an adopter is joining the
// current lineage at a prefix of it, whatever term that prefix was
// originally written under.
func (s *Store) WriteBaseTo(w io.Writer) (uint64, error) {
	if s.fenced.Load() {
		// A demoted store's base may already contain folded records of
		// the superseded suffix; an adopter would take them for the
		// winning lineage (AdoptBase clears its fence) and re-introduce
		// exactly the split-brain splice the fence prevented.
		return 0, &FencedError{Term: s.term.Load()}
	}
	sn := s.Snapshot()
	if err := WriteBaseStream(w, sn.base, sn.baseEpoch, s.term.Load()); err != nil {
		return 0, err
	}
	return sn.baseEpoch, nil
}

// AdoptBase replaces the store's state wholesale with g at the given
// epoch — the follower-side mirror of Compact's re-base, used when the
// leader's retained window has moved past this store's epoch and
// incremental replay is impossible. The epoch must not be behind the
// store. With a journal, the new base is persisted first and the
// journal then reset to an empty file anchored at the epoch (the same
// crash window as Compact: a crash between the two leaves the base
// ahead of the journal, which Open recovers by resetting the journal).
//
// term is the fencing term the base was served under: a newer term is
// adopted (the store joins that lineage at the adopted epoch), and
// adopting a term at least the store's own clears a demotion fence —
// the divergent state the fence guarded is exactly what the adoption
// just discarded. term 0 (an in-process source predating fencing)
// leaves the term state alone.
//
// The adopted epoch must not be behind the store — with one exception:
// a *fenced* store adopting the surviving lineage (term at least its
// own) may rewind, because its suffix past the fence is divergent
// history whose wholesale discard is the entire point of the resync.
//
// History does not bridge an adoption: prevLog is dropped, so
// MutationsSince refuses epochs below the adopted one and resident
// 2-hop covers anchored before it are rebuilt, not silently repaired
// across a gap whose mutations this store never saw.
func (s *Store) AdoptBase(g *expertgraph.Graph, epoch, term uint64) error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	ts := termState{term: s.term.Load(), termStart: s.termStart.Load(), fenced: s.fenced.Load()}
	// Demote and Promote hold compactMu too, so the fence decision is
	// stable for the rest of the call.
	rewind := ts.fenced && term >= ts.term
	if cur := s.snap.Load().epoch; epoch < cur && !rewind {
		s.mu.Unlock()
		return fmt.Errorf("live: adopt base at epoch %d behind store epoch %d", epoch, cur)
	}
	if term > ts.term {
		ts.term, ts.termStart = term, epoch
	}
	if term >= ts.term {
		ts.fenced = false
	}
	journaled := s.journal != nil && !s.journal.closed
	var sync bool
	if journaled {
		sync = s.journal.sync
	}
	s.mu.Unlock()

	// File work outside the writer lock, ordered base-first (see the
	// crash-window note above).
	var staged *stagedJournal
	if journaled {
		if err := writeBaseFile(basePath(s.journalPath), g, epoch, ts.term); err != nil {
			return err
		}
		var err error
		if staged, err = stageJournal(s.journalPath, epoch, nil, sync, ts); err != nil {
			return err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		if staged != nil {
			staged.abort()
		}
		return ErrClosed
	}
	if cur := s.snap.Load().epoch; epoch < cur && !rewind {
		if staged != nil {
			staged.abort()
		}
		return fmt.Errorf("live: adopt base at epoch %d behind store epoch %d", epoch, cur)
	}
	if staged != nil {
		nj, err := staged.install(s.journalPath, nil)
		if err != nil {
			return err
		}
		old := s.journal
		s.journal = nj
		old.Close()
	}
	s.base, s.baseEpoch = g, epoch
	s.log, s.prefix = nil, nil
	s.prevBaseEpoch, s.prevLog = epoch, nil
	s.term.Store(ts.term)
	s.termStart.Store(ts.termStart)
	s.fenced.Store(ts.fenced)
	s.resetWriterState()
	s.snap.Store(&Snapshot{
		epoch: epoch, baseEpoch: epoch,
		base: g, g: g,
		nodes: s.nNodes, edges: s.nEdges,
		prevBaseEpoch: epoch,
		matCtr:        &s.materialized,
		overlayHist:   s.overlayHist,
	})
	s.bumpWatch()
	s.baseAdoptions.Add(1)
	return nil
}

// BaseAdoptions reports how many times the store adopted a base
// snapshot wholesale (a follower recovering across a leader fold).
func (s *Store) BaseAdoptions() uint64 { return s.baseAdoptions.Load() }

// ReplicationSource is the transport-agnostic record stream a Follower
// replays: tail journal records from an epoch, and fetch the current
// fold snapshot when the tail has moved past the follower. *Store
// itself is a source (SourceFromStore) for in-process replication and
// tests; internal/repl wraps the leader's HTTP endpoints in the same
// interface.
type ReplicationSource interface {
	// Tail returns the mutations of epochs from+1 onward (at most max
	// when max > 0) and the source's current epoch. It blocks —
	// bounded by ctx — while the source has nothing past `from`; an
	// empty batch with a nil error is an idle poll. ErrCompactedEpoch
	// reports that `from` predates the source's retained window (fetch
	// Base); ErrFutureEpoch that the caller is ahead of the source;
	// ErrFenced that the caller's lineage diverged from the source's
	// (the caller must demote itself — resuming would split-brain).
	Tail(ctx context.Context, from uint64, max int) ([]Mutation, uint64, error)
	// Base returns the source's current base snapshot, its epoch, and
	// the term it is served under (0 from sources predating fencing).
	Base(ctx context.Context) (*expertgraph.Graph, uint64, uint64, error)
}

// GroupedSource is an optional ReplicationSource extension: a source
// whose tail preserves batch framing, so a follower can hand each
// group to ApplyGroup and pay one journal fsync and one epoch publish
// per group instead of per record. A Follower uses it when the source
// implements it and falls back to Tail (per-record apply) otherwise —
// which is also what a grouped transport does transparently when the
// *remote* end predates group framing.
type GroupedSource interface {
	ReplicationSource
	// TailGroups is Tail with the flat record stream split into
	// apply-together groups; concatenated in order, the groups are
	// exactly what Tail would have returned.
	TailGroups(ctx context.Context, from uint64, max int) ([][]Mutation, uint64, error)
}

// storeSource adapts a *Store into a ReplicationSource.
type storeSource struct{ s *Store }

// SourceFromStore exposes a store as a ReplicationSource, replicating
// store-to-store inside one process (tests, embedded read replicas).
// The source is grouped: each tail batch arrives as one group.
func SourceFromStore(s *Store) ReplicationSource { return storeSource{s} }

func (ss storeSource) Tail(ctx context.Context, from uint64, max int) ([]Mutation, uint64, error) {
	return ss.s.TailSince(ctx, from, max)
}

func (ss storeSource) TailGroups(ctx context.Context, from uint64, max int) ([][]Mutation, uint64, error) {
	muts, epoch, err := ss.s.TailSince(ctx, from, max)
	if len(muts) == 0 {
		return nil, epoch, err
	}
	return [][]Mutation{muts}, epoch, err
}

func (ss storeSource) Base(context.Context) (*expertgraph.Graph, uint64, uint64, error) {
	if ss.s.fenced.Load() {
		// Same rule as WriteBaseTo: a fenced store must not seed
		// adopters with its superseded lineage.
		return nil, 0, 0, &FencedError{Term: ss.s.term.Load()}
	}
	sn := ss.s.Snapshot()
	return sn.base, sn.baseEpoch, ss.s.term.Load(), nil
}

// FollowerConfig parameterizes StartFollower.
type FollowerConfig struct {
	// PollTimeout bounds each tail long-poll (default 25s).
	PollTimeout time.Duration
	// Backoff is the initial retry delay after a source error; it
	// doubles per consecutive failure up to 32×. Default 500ms.
	Backoff time.Duration
	// MaxBatch caps the records requested per tail call (default 4096).
	MaxBatch int
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.PollTimeout <= 0 {
		c.PollTimeout = 25 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = 500 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	return c
}

// FollowerStats is the replication section a follower reports.
type FollowerStats struct {
	// Running is false once the loop stopped — by Stop, or by a fatal
	// divergence recorded in LastError.
	Running bool `json:"running"`
	// Applied counts records replayed onto the local store.
	Applied uint64 `json:"records_applied"`
	// BaseFetches counts full base adoptions (fold-boundary catch-ups).
	BaseFetches uint64 `json:"base_fetches"`
	// Polls counts tail round-trips, including idle long-polls.
	Polls uint64 `json:"polls"`
	// Errors counts transient source failures (the loop retried).
	Errors uint64 `json:"errors"`
	// LeaderEpoch is the source's epoch as of the last tail response;
	// Lag is LeaderEpoch minus the local epoch at the time of the
	// stats call (0 when caught up).
	LeaderEpoch uint64 `json:"leader_epoch"`
	Lag         uint64 `json:"lag"`
	// LagSeconds is how long ago the follower last confirmed it was
	// caught up with the source (a successful poll with local epoch ≥
	// leader epoch): 0 while caught up, and growing from the moment the
	// follower fell — or lost contact — behind. Unlike Lag it keeps
	// rising while the leader is unreachable, so a readiness probe can
	// shed a stale replica even when no epoch delta is observable.
	LagSeconds float64 `json:"lag_seconds"`
	// LastError is the most recent source or apply error ("" when the
	// last poll succeeded).
	LastError string `json:"last_error,omitempty"`
}

// Follower replays a ReplicationSource onto a local store: steady
// tailing from the store's epoch, automatic base adoption when the
// source's retained window has moved past it, exponential backoff on
// transport errors. The local store must not be mutated by anyone
// else — the follower checks epoch continuity per batch and stops with
// a sticky error on divergence rather than guessing (epochs are
// monotonic; silently resyncing backwards would break every
// epoch-keyed cache above the store).
type Follower struct {
	store *Store
	src   ReplicationSource
	// grouped is src when it also implements GroupedSource: tail
	// batches then arrive with framing and each group is applied as
	// one ApplyGroup run (one fsync, one publish) instead of
	// record-by-record.
	grouped GroupedSource
	cfg     FollowerConfig

	cancel   context.CancelFunc
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	applied     atomic.Uint64
	baseFetches atomic.Uint64
	polls       atomic.Uint64
	errs        atomic.Uint64
	leaderEpoch atomic.Uint64
	lastErr     atomic.Pointer[string]
	// caughtUp is true while the last successful poll confirmed local
	// epoch ≥ leader epoch; caughtUpNS is when that was last true
	// (start time until first confirmation), feeding LagSeconds.
	caughtUp   atomic.Bool
	caughtUpNS atomic.Int64
}

// StartFollower begins replaying src onto store in a background
// goroutine. Stop ends it.
func StartFollower(store *Store, src ReplicationSource, cfg FollowerConfig) *Follower {
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		store:  store,
		src:    src,
		cfg:    cfg.withDefaults(),
		cancel: cancel,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if gs, ok := src.(GroupedSource); ok {
		f.grouped = gs
	}
	f.caughtUpNS.Store(time.Now().UnixNano())
	go f.loop(ctx)
	return f
}

// Stop halts the follower and waits for its loop to exit. The local
// store is left at whatever epoch replication reached; a new follower
// can resume from it later.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.cancel()
	})
	<-f.done
}

// Stats reports the follower's replication counters.
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		Applied:     f.applied.Load(),
		BaseFetches: f.baseFetches.Load(),
		Polls:       f.polls.Load(),
		Errors:      f.errs.Load(),
		LeaderEpoch: f.leaderEpoch.Load(),
	}
	if e := f.lastErr.Load(); e != nil {
		st.LastError = *e
	}
	if local := f.store.Epoch(); st.LeaderEpoch > local {
		st.Lag = st.LeaderEpoch - local
	}
	if !f.caughtUp.Load() {
		if ts := f.caughtUpNS.Load(); ts > 0 {
			st.LagSeconds = time.Since(time.Unix(0, ts)).Seconds()
		}
	}
	select {
	case <-f.done:
	default:
		st.Running = true
	}
	return st
}

func (f *Follower) setErr(err error) {
	if err == nil {
		f.lastErr.Store(nil)
		return
	}
	msg := err.Error()
	f.lastErr.Store(&msg)
}

// sleep waits d or until Stop.
func (f *Follower) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.stop:
	case <-t.C:
	}
}

func (f *Follower) loop(ctx context.Context) {
	defer close(f.done)
	backoff := f.cfg.Backoff
	// Bootstrap: a fresh store (epoch 0, no nodes) first adopts the
	// source's base wholesale. Tailing from epoch 0 would replay records
	// that apply on top of the source's base graph — which an empty
	// local store does not have. An already-seeded store (journal
	// replayed, or opened over the leader's graph file) skips this and
	// resumes from its own epoch. A *fenced* store — demoted out of its
	// old lineage, restarted against the surviving one (client failover)
	// — must also resync wholesale: its suffix diverged, and AdoptBase
	// of the new lineage's base is what discards it and clears the
	// fence; incremental tailing would be refused (and wrong) anyway.
	if f.store.Fenced() || (f.store.Epoch() == 0 && f.store.Snapshot().NumNodes() == 0) {
		for {
			select {
			case <-f.stop:
				return
			default:
			}
			if err := f.adoptBase(ctx); err != nil {
				if ctx.Err() != nil {
					return
				}
				f.errs.Add(1)
				f.setErr(err)
				f.sleep(backoff)
				backoff = min(2*backoff, 32*f.cfg.Backoff)
				continue
			}
			f.setErr(nil)
			backoff = f.cfg.Backoff
			break
		}
	}
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		from := f.store.Epoch()
		pollCtx, cancel := context.WithTimeout(ctx, f.cfg.PollTimeout)
		var (
			groups      [][]Mutation
			leaderEpoch uint64
			err         error
		)
		if f.grouped != nil {
			groups, leaderEpoch, err = f.grouped.TailGroups(pollCtx, from, f.cfg.MaxBatch)
		} else {
			// Ungrouped source: apply record by record, exactly the
			// pre-framing behavior.
			var muts []Mutation
			muts, leaderEpoch, err = f.src.Tail(pollCtx, from, f.cfg.MaxBatch)
			for i := range muts {
				groups = append(groups, muts[i:i+1:i+1])
			}
		}
		cancel()
		f.polls.Add(1)
		if leaderEpoch > 0 {
			f.leaderEpoch.Store(leaderEpoch)
		}

		// Apply whatever arrived — a batch cut short by a torn stream
		// still advances the store group by group; the next poll
		// resumes exactly past the last applied epoch.
		fatal := false
		want := from
		for _, grp := range groups {
			if local := f.store.Epoch(); local != want {
				err = fmt.Errorf("live: follower: local store at epoch %d, expected %d (mutated outside replication)", local, want)
				fatal = true
				break
			}
			last, n, aerr := f.store.ApplyGroup(grp)
			f.applied.Add(uint64(n))
			if aerr != nil {
				err = fmt.Errorf("live: follower: apply epoch %d..%d: %w", want+1, want+uint64(len(grp)), aerr)
				fatal = true
				break
			}
			if n != len(grp) || last != want+uint64(n) {
				err = fmt.Errorf("live: follower: group of %d applied as %d records ending at epoch %d, expected %d (mutated outside replication)",
					len(grp), n, last, want+uint64(len(grp)))
				fatal = true
				break
			}
			want = last
		}

		switch {
		case errors.Is(err, ErrFenced):
			// The source — or the local store — fenced this lineage:
			// our suffix diverged from the surviving one. Demote the
			// local store (persisting the fence and the deposing term)
			// and stop; only a wholesale resync can rejoin the cluster.
			var fe *FencedError
			var term uint64
			if errors.As(err, &fe) {
				term = fe.Term
			}
			if derr := f.store.Demote(term); derr != nil {
				err = fmt.Errorf("%w (demote: %v)", err, derr)
			}
			f.setErr(err)
			return
		case fatal || errors.Is(err, ErrClosed) || errors.Is(err, ErrFutureEpoch):
			// Divergence between the two stores (or a closed local
			// store): stop with a sticky error instead of guessing.
			f.setErr(err)
			return
		case errors.Is(err, ErrCompactedEpoch):
			// The source folded past us while we were away: adopt its
			// base snapshot and resume tailing from the fold epoch.
			if aerr := f.adoptBase(ctx); aerr != nil {
				if ctx.Err() != nil {
					return
				}
				f.errs.Add(1)
				f.setErr(aerr)
				f.sleep(backoff)
				backoff = min(2*backoff, 32*f.cfg.Backoff)
				continue
			}
			f.setErr(nil)
			backoff = f.cfg.Backoff
		case err != nil && ctx.Err() == nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded):
			f.errs.Add(1)
			f.setErr(err)
			// Contact lost: we can no longer vouch for freshness, so
			// LagSeconds starts (or keeps) growing from the last
			// confirmed catch-up.
			f.caughtUp.Store(false)
			f.sleep(backoff)
			backoff = min(2*backoff, 32*f.cfg.Backoff)
		case err == nil:
			f.setErr(nil)
			backoff = f.cfg.Backoff
			if f.store.Epoch() >= leaderEpoch {
				f.caughtUpNS.Store(time.Now().UnixNano())
				f.caughtUp.Store(true)
			} else {
				f.caughtUp.Store(false)
			}
		}
	}
}

// adoptBase fetches the source's base snapshot and installs it. The
// fetch moves a whole graph, so it gets a generous multiple of the
// poll budget.
func (f *Follower) adoptBase(ctx context.Context) error {
	fetchCtx, cancel := context.WithTimeout(ctx, 10*f.cfg.PollTimeout)
	defer cancel()
	g, epoch, term, err := f.src.Base(fetchCtx)
	if err != nil {
		return fmt.Errorf("live: follower: fetch base: %w", err)
	}
	if epoch < f.store.Epoch() && !f.store.Fenced() {
		// Tail said our epoch predates the window, so the source's base
		// must be ahead of us; anything else is two sources talking.
		// (A fenced store is the exception: resyncing onto the surviving
		// lineage may legitimately rewind past its divergent suffix —
		// AdoptBase enforces the term condition.)
		return fmt.Errorf("live: follower: fetched base at epoch %d behind local epoch %d", epoch, f.store.Epoch())
	}
	if err := f.store.AdoptBase(g, epoch, term); err != nil {
		return err
	}
	f.baseFetches.Add(1)
	return nil
}
