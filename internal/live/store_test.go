package live

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"authteam/internal/expertgraph"
	"authteam/internal/pll"
)

// testGraph builds a connected random expert network with skills.
func testGraph(rng *rand.Rand, n int) *expertgraph.Graph {
	skills := []string{"analytics", "matrix", "communities", "indexing", "query"}
	b := expertgraph.NewBuilder(n, 2*n)
	for i := 0; i < n; i++ {
		sk := skills[rng.Intn(len(skills))]
		b.AddNode("", 1+float64(rng.Intn(30)), sk)
	}
	type pair struct{ u, v expertgraph.NodeID }
	seen := make(map[pair]bool)
	add := func(u, v expertgraph.NodeID) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			return
		}
		seen[pair{u, v}] = true
		b.AddEdge(u, v, 0.05+0.9*rng.Float64())
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(expertgraph.NodeID(perm[i-1]), expertgraph.NodeID(perm[i]))
	}
	for i := 0; i < n/2; i++ {
		add(expertgraph.NodeID(rng.Intn(n)), expertgraph.NodeID(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func mustOpen(t *testing.T, g *expertgraph.Graph, cfg Config) *Store {
	t.Helper()
	s, err := Open(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := mustOpen(t, testGraph(rng, 20), Config{})

	before := s.Snapshot()
	if before.Epoch() != 0 {
		t.Fatalf("fresh store epoch %d", before.Epoch())
	}
	id, epoch, err := s.AddExpert("newcomer", 4, []string{"analytics", "rust"})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch after first mutation: %d", epoch)
	}
	if _, err := s.AddCollaboration(id, 3, 0.4); err != nil {
		t.Fatal(err)
	}

	after := s.Snapshot()
	bg, err := before.Graph()
	if err != nil {
		t.Fatal(err)
	}
	ag, err := after.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// The old snapshot must not see the mutation (snapshot isolation).
	if bg.NumNodes() != 20 || ag.NumNodes() != 21 {
		t.Fatalf("node counts: before %d, after %d", bg.NumNodes(), ag.NumNodes())
	}
	if ag.Name(id) != "newcomer" || ag.Authority(id) != 4 {
		t.Fatalf("new node record: %+v", ag.Node(id))
	}
	if _, ok := bg.SkillID("rust"); ok {
		t.Error("old snapshot sees the new skill")
	}
	if sid, ok := ag.SkillID("rust"); !ok {
		t.Error("new snapshot missing the new skill")
	} else if got := ag.ExpertsWithSkill(sid); len(got) != 1 || got[0] != id {
		t.Errorf("C(rust) = %v", got)
	}
	if w, ok := ag.EdgeWeight(id, 3); !ok || w != 0.4 {
		t.Errorf("edge weight: %v %v", w, ok)
	}
	// Cheap introspection agrees with the materialized graph.
	if after.NumNodes() != ag.NumNodes() || after.NumEdges() != ag.NumEdges() {
		t.Errorf("snapshot counters (%d,%d) vs graph (%d,%d)",
			after.NumNodes(), after.NumEdges(), ag.NumNodes(), ag.NumEdges())
	}
}

func TestUpdateExpert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := mustOpen(t, testGraph(rng, 10), Config{})
	auth := 50.0
	if _, err := s.UpdateExpert(2, &auth, []string{"golang"}); err != nil {
		t.Fatal(err)
	}
	g, err := s.Snapshot().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Authority(2) != 50 {
		t.Errorf("authority = %v", g.Authority(2))
	}
	if sid, ok := g.SkillID("golang"); !ok || !g.HasSkill(2, sid) {
		t.Error("skill grant missing")
	}
	c := s.Counters()
	if c.NodesUpdated != 1 {
		t.Errorf("counters: %+v", c)
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := mustOpen(t, testGraph(rng, 10), Config{})
	cases := []struct {
		name string
		err  error
		run  func() error
	}{
		{"self loop", ErrSelfLoop, func() error { _, err := s.AddCollaboration(1, 1, 0.5); return err }},
		{"negative weight", ErrNegativeW, func() error { _, err := s.AddCollaboration(1, 2, -0.5); return err }},
		{"unknown node", ErrUnknownNode, func() error { _, err := s.AddCollaboration(1, 99, 0.5); return err }},
		{"unknown update", ErrUnknownNode, func() error { _, err := s.UpdateExpert(-1, nil, []string{"x"}); return err }},
		{"empty update", ErrEmptyUpdate, func() error { _, err := s.UpdateExpert(1, nil, nil); return err }},
		{"empty name", ErrEmptyName, func() error { _, _, err := s.AddExpert("", 1, nil); return err }},
	}
	for _, tc := range cases {
		if err := tc.run(); !errors.Is(err, tc.err) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.err)
		}
	}
	// Duplicate of an existing base edge and of a delta edge.
	g := s.base
	var u, v expertgraph.NodeID = -1, -1
	g.Neighbors(0, func(x expertgraph.NodeID, w float64) bool { u, v = 0, x; return false })
	if _, err := s.AddCollaboration(u, v, 0.1); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("base duplicate: %v", err)
	}
	if s.Epoch() != 0 {
		t.Errorf("rejected mutations advanced the epoch to %d", s.Epoch())
	}
}

func TestJournalReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := testGraph(rng, 30)
	path := filepath.Join(t.TempDir(), "wal.jsonl")

	s := mustOpen(t, base, Config{JournalPath: path})
	id, _, err := s.AddExpert("alice2", 7, []string{"matrix"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddCollaboration(id, 5, 0.25); err != nil {
		t.Fatal(err)
	}
	auth := 9.0
	if _, err := s.UpdateExpert(3, &auth, []string{"query"}); err != nil {
		t.Fatal(err)
	}
	wantEpoch := s.Epoch()
	wantG, err := s.Snapshot().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Journal accounting must survive Close (the store stays readable).
	if rec, bytes := s.JournalStats(); rec != wantEpoch || bytes == 0 {
		t.Errorf("journal stats after close: %d records, %d bytes", rec, bytes)
	}

	// "Restart": reopen over the same base graph.
	s2 := mustOpen(t, base, Config{JournalPath: path})
	if s2.Epoch() != wantEpoch {
		t.Fatalf("replayed epoch %d, want %d", s2.Epoch(), wantEpoch)
	}
	g2, err := s2.Snapshot().Graph()
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, wantG, g2)

	// The replayed store keeps accepting (and journaling) writes.
	if _, err := s2.AddCollaboration(0, id, 0.33); err != nil {
		t.Fatal(err)
	}
	if s2.Epoch() != wantEpoch+1 {
		t.Fatalf("epoch after post-replay write: %d", s2.Epoch())
	}
}

func TestJournalTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := testGraph(rng, 20)
	path := filepath.Join(t.TempDir(), "wal.jsonl")

	s := mustOpen(t, base, Config{JournalPath: path})
	for i := 0; i < 5; i++ {
		if _, err := s.AddCollaboration(expertgraph.NodeID(i), expertgraph.NodeID(i+10), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn, newline-less final record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"add_edge","u":1,"v":2,"w":0.1`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, base, Config{JournalPath: path})
	if s2.Epoch() != 5 {
		t.Fatalf("epoch after torn-tail replay: %d, want 5", s2.Epoch())
	}
	// The torn bytes must be gone so the next append starts clean.
	if _, err := s2.AddCollaboration(3, 17, 0.2); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, base, Config{JournalPath: path})
	if s3.Epoch() != 6 {
		t.Fatalf("epoch after truncate+append replay: %d, want 6", s3.Epoch())
	}
}

func TestJournalInteriorCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	content := `{"op":"add_edge","u":0,"v":5,"w":0.1}
NOT JSON AT ALL
{"op":"add_edge","u":1,"v":6,"w":0.1}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	if _, err := Open(testGraph(rng, 10), Config{JournalPath: path}); err == nil {
		t.Fatal("interior corruption silently accepted")
	}
}

func TestMaintainRawAlwaysEligible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := testGraph(rng, 40)
	s := mustOpen(t, base, Config{})
	from := s.Snapshot()
	ix := pll.Build(base)

	id, _, err := s.AddExpert("n", 3, []string{"analytics"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddCollaboration(id, 7, 0.3); err != nil {
		t.Fatal(err)
	}
	auth := 99.0
	if _, err := s.UpdateExpert(1, &auth, nil); err != nil {
		t.Fatal(err)
	}
	to := s.Snapshot()

	repaired, _, ok := MaintainIndex(ix, from, to, nil, nil, 0)
	if !ok {
		t.Fatal("raw repair refused")
	}
	g, err := to.Graph()
	if err != nil {
		t.Fatal(err)
	}
	fresh := pll.Build(g)
	for i := 0; i < 200; i++ {
		u := expertgraph.NodeID(rng.Intn(g.NumNodes()))
		v := expertgraph.NodeID(rng.Intn(g.NumNodes()))
		got, want := repaired.Dist(u, v), fresh.Dist(u, v)
		if math.Abs(got-want) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("dist(%d,%d) repaired %v fresh %v", u, v, got, want)
		}
	}
}

func TestMaintainRefusals(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	base := testGraph(rng, 30)
	s := mustOpen(t, base, Config{})
	from := s.Snapshot()
	weight := func(u, v expertgraph.NodeID, w float64) float64 { return w }
	ix := pll.BuildWithOptions(base, pll.Options{Weight: weight})

	// Authority update without the old weight function → weighted
	// repair refused (it cannot recognize entries built under the old
	// authorities), raw allowed. With an oldWeight supplied the same
	// delta repairs — covered by TestMaintainAuthorityReweight.
	auth := 123.0
	if _, err := s.UpdateExpert(2, &auth, nil); err != nil {
		t.Fatal(err)
	}
	to := s.Snapshot()
	if _, _, ok := MaintainIndex(ix, from, to, weight, nil, 0); ok {
		t.Error("weighted repair accepted an authority update")
	}
	if _, _, ok := MaintainIndex(ix, from, to, nil, nil, 0); !ok {
		t.Error("raw repair refused an authority update")
	}

	// Staleness budget.
	for added := 0; added < 4; {
		u := expertgraph.NodeID(rng.Intn(30))
		v := expertgraph.NodeID(rng.Intn(30))
		if u == v {
			continue
		}
		switch _, err := s.AddCollaboration(u, v, 0.4); {
		case err == nil:
			added++
		case errors.Is(err, ErrDuplicateEdge):
		default:
			t.Fatal(err)
		}
	}
	to = s.Snapshot()
	if _, _, ok := MaintainIndex(ix, from, to, nil, nil, 3); ok {
		t.Error("budget of 3 accepted 5 mutations")
	}

	// A snapshot ahead of `to` is not a valid repair source.
	if _, _, ok := MaintainIndex(ix, to, from, nil, nil, 0); ok {
		t.Error("repair accepted from > to")
	}

	// Bound widening (edge weight far outside the base range) →
	// weighted repair refused.
	s2 := mustOpen(t, base, Config{})
	from2 := s2.Snapshot()
	if _, err := s2.AddCollaboration(0, 25, 50.0); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := MaintainIndex(ix, from2, s2.Snapshot(), weight, nil, 0); ok {
		t.Error("weighted repair accepted a bound-widening edge")
	}
}

func assertGraphsEqual(t *testing.T, a, b *expertgraph.Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() || a.NumSkills() != b.NumSkills() {
		t.Fatalf("graph shape: (%d,%d,%d) vs (%d,%d,%d)",
			a.NumNodes(), a.NumEdges(), a.NumSkills(),
			b.NumNodes(), b.NumEdges(), b.NumSkills())
	}
	for u := 0; u < a.NumNodes(); u++ {
		id := expertgraph.NodeID(u)
		if a.Authority(id) != b.Authority(id) || a.Name(id) != b.Name(id) {
			t.Fatalf("node %d differs: %+v vs %+v", u, a.Node(id), b.Node(id))
		}
		as, bs := a.Skills(id), b.Skills(id)
		if len(as) != len(bs) {
			t.Fatalf("node %d skills differ", u)
		}
		for i := range as {
			if a.SkillName(as[i]) != b.SkillName(bs[i]) {
				t.Fatalf("node %d skill %d differs", u, i)
			}
		}
		a.Neighbors(id, func(v expertgraph.NodeID, w float64) bool {
			if bw, ok := b.EdgeWeight(id, v); !ok || bw != w {
				t.Fatalf("edge (%d,%d) differs: %v vs %v,%v", u, v, w, bw, ok)
			}
			return true
		})
	}
}
