package live

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"authteam/internal/expertgraph"
)

// viewFingerprint summarizes a graph view for cross-restart equality
// checks: counts, every node's record, and its adjacency in canonical
// (sorted-by-neighbor) order — Neighbors visit order is
// implementation-defined and must not leak into the comparison.
func viewFingerprint(g expertgraph.GraphView) []float64 {
	fp := []float64{float64(g.NumNodes()), float64(g.NumEdges()), float64(g.NumSkills())}
	for u := expertgraph.NodeID(0); int(u) < g.NumNodes(); u++ {
		fp = append(fp, g.Authority(u), float64(g.Degree(u)), float64(len(g.Skills(u))))
		type half struct {
			to expertgraph.NodeID
			w  float64
		}
		var adj []half
		g.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			adj = append(adj, half{v, w})
			return true
		})
		sort.Slice(adj, func(i, j int) bool { return adj[i].to < adj[j].to })
		for _, e := range adj {
			fp = append(fp, float64(e.to), e.w)
		}
	}
	return fp
}

func equalFP(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCompactRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := randomBase(t, rng, 25)
	journal := filepath.Join(t.TempDir(), "graph.wal")

	st, err := Open(base, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	mutateRandomly(t, st, rng, 40)
	preEpoch := st.Epoch()

	stats, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != preEpoch || stats.Remaining != 0 || stats.Folded != preEpoch || stats.Removed != preEpoch {
		t.Fatalf("compact stats %+v, want epoch=%d folded=removed=%d remaining=0", stats, preEpoch, preEpoch)
	}
	// In-memory re-base: the fold swapped the resident base graph and
	// reset the log without a restart.
	if st.BaseEpoch() != preEpoch || st.LogLen() != 0 {
		t.Fatalf("after compact: base epoch %d log len %d, want %d/0", st.BaseEpoch(), st.LogLen(), preEpoch)
	}
	if records, _ := st.JournalStats(); records != 0 {
		t.Fatalf("journal holds %d records after compaction, want 0", records)
	}
	if _, err := os.Stat(basePath(journal)); err != nil {
		t.Fatalf("compacted base missing: %v", err)
	}

	// Mutations keep flowing into the truncated journal.
	mutateRandomly(t, st, rng, 15)
	finalEpoch := st.Epoch()
	suffix := finalEpoch - preEpoch
	want := viewFingerprint(st.Snapshot().View())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: replay must be bounded by the post-compaction suffix and
	// land on the identical epoch and graph.
	st2, err := Open(base, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Epoch() != finalEpoch {
		t.Fatalf("restart epoch %d, want %d", st2.Epoch(), finalEpoch)
	}
	if st2.BaseEpoch() != preEpoch {
		t.Fatalf("restart base epoch %d, want %d", st2.BaseEpoch(), preEpoch)
	}
	if got := st2.Epoch() - st2.BaseEpoch(); got != suffix {
		t.Fatalf("replayed %d records, want the %d-record suffix", got, suffix)
	}
	if !equalFP(viewFingerprint(st2.Snapshot().View()), want) {
		t.Fatal("graph after restart differs from pre-restart state")
	}
	// History below the compacted base is gone.
	if _, ok := st2.SnapshotAt(preEpoch - 1); ok {
		t.Fatal("SnapshotAt resolved an epoch folded into the base")
	}
	if _, ok := st2.SnapshotAt(preEpoch); !ok {
		t.Fatal("SnapshotAt refused the base epoch itself")
	}
}

// TestCompactCrashBetweenBaseAndTruncate simulates a kill in Compact's
// crash window: the base was rewritten (renamed into place) but the
// journal was never truncated. Reopening must skip the journal prefix
// already folded into the base and land on the identical epoch.
func TestCompactCrashBetweenBaseAndTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := randomBase(t, rng, 25)
	journal := filepath.Join(t.TempDir(), "graph.wal")

	st, err := Open(base, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	mutateRandomly(t, st, rng, 30)
	snap := st.Snapshot()
	epoch := snap.Epoch()
	// First half of Compact only: base rename happens, journal
	// truncation (and the in-memory re-base) does not — the crash
	// window.
	g, err := snap.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBaseFile(basePath(journal), g, snap.Epoch(), 0); err != nil {
		t.Fatal(err)
	}
	want := viewFingerprint(snap.View())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(base, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Epoch() != epoch {
		t.Fatalf("epoch after crash-recovery %d, want %d", st2.Epoch(), epoch)
	}
	if st2.BaseEpoch() != epoch {
		t.Fatalf("base epoch %d, want %d (nothing replayed: every record is folded)", st2.BaseEpoch(), epoch)
	}
	if !equalFP(viewFingerprint(st2.Snapshot().View()), want) {
		t.Fatal("graph after crash-recovery differs")
	}
	// A finished compaction on the recovered store truncates the
	// overlapping journal and keeps the epoch stable. Every journal
	// record sits in the crash-window overlap the interrupted
	// compaction already folded into the recovered base, so this
	// compaction folds nothing itself — Folded must say 0, not
	// double-count the overlap it merely removes from the journal.
	stats, err := st2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != epoch || stats.Remaining != 0 || stats.Folded != 0 || stats.Removed != epoch {
		t.Fatalf("recovery compact stats %+v, want epoch=%d folded=0 removed=%d remaining=0", stats, epoch, epoch)
	}
	mutateRandomly(t, st2, rng, 10)
	final := st2.Epoch()
	st2.Close()

	st3, err := Open(base, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.Epoch() != final {
		t.Fatalf("final epoch %d, want %d", st3.Epoch(), final)
	}
}

func TestCompactThresholdAtOpen(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	base := randomBase(t, rng, 20)
	journal := filepath.Join(t.TempDir(), "graph.wal")

	st, err := Open(base, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	mutateRandomly(t, st, rng, 20)
	epoch := st.Epoch()
	st.Close()

	// Below threshold: replay leaves the journal alone.
	st2, err := Open(base, Config{JournalPath: journal, CompactThreshold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Compactions() != 0 {
		t.Fatal("compacted below threshold")
	}
	st2.Close()

	// At/above threshold: boot folds the journal.
	st3, err := Open(base, Config{JournalPath: journal, CompactThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Compactions() != 1 {
		t.Fatalf("compactions = %d, want 1", st3.Compactions())
	}
	if records, _ := st3.JournalStats(); records != 0 {
		t.Fatalf("journal holds %d records after boot compaction", records)
	}
	if st3.Epoch() != epoch {
		t.Fatalf("epoch %d after boot compaction, want %d", st3.Epoch(), epoch)
	}
	st3.Close()

	// And the next boot replays nothing at all.
	st4, err := Open(base, Config{JournalPath: journal, CompactThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st4.Close()
	if st4.Epoch() != epoch || st4.BaseEpoch() != epoch || st4.Compactions() != 0 {
		t.Fatalf("post-compaction boot: epoch %d base %d compactions %d, want %d/%d/0",
			st4.Epoch(), st4.BaseEpoch(), st4.Compactions(), epoch, epoch)
	}
}

func TestCompactWithoutJournal(t *testing.T) {
	base := randomBase(t, rand.New(rand.NewSource(9)), 10)
	st, err := Open(base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Compact(); err != ErrNoJournal {
		t.Fatalf("Compact without journal: %v, want ErrNoJournal", err)
	}
}
