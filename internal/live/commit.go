package live

import (
	"fmt"
	"log/slog"
	"sort"
	"time"

	"authteam/internal/expertgraph"
)

// Group commit. Mutators don't take the writer lock themselves: they
// enqueue onto an MPSC channel and block on a per-op future while a
// single committer goroutine drains the queue in batches. One batch
// costs one journal record group (one write syscall, one fsync under
// Sync), one writer-lock acquisition, and one epoch publish covering
// every op in it — so N concurrent mutators share the fixed per-commit
// costs instead of each paying them. Epoch numbering stays per-op
// (op i of a batch starting at epoch E gets epoch E+i+1, and the log
// stays strictly per-op), so replication tailing, SnapshotAt,
// MutationsSince and epoch read-your-writes are oblivious to batching.

// defaultCommitBatch caps ops per group commit (Config.CommitBatch
// overrides it).
const defaultCommitBatch = 256

// maxChainDepth is the chained-overlay refold guard: a batch whose
// parent view already sits at this depth gets a full refold from base
// instead of another chain link, bounding per-read layer walks and
// amortizing the O(|delta|) refold over maxChainDepth O(|batch|)
// chained builds.
const maxChainDepth = 16

// commitBatchBuckets sizes the batch-occupancy histogram: powers of
// two up to the default batch cap.
var commitBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// maxAutoInterval caps the straggler window the adaptive commit
// interval (Config.CommitAuto) will open: even on a disk whose fsync
// is slower than this, no mutation waits longer for company.
const maxAutoInterval = 5 * time.Millisecond

// applyReq is one mutation in flight through the commit pipeline.
type applyReq struct {
	m     Mutation
	newID expertgraph.NodeID // assigned by validation (add_node)
	err   error              // validation failure, settled per-op
	done  chan applyResult   // buffered(1): the committer never blocks
	// group, when non-nil, marks the op as part of an all-or-nothing
	// run (ApplyGroup): the first validation failure of any member
	// aborts every not-yet-committed member, so a replicated batch can
	// never land a suffix at shifted-down epochs past a dropped record.
	// Touched only by the single committer goroutine.
	group *commitGroup
}

// commitGroup is the shared abort flag of one ApplyGroup run. err is
// the first member failure; once set, every member in the same or a
// later batch is refused instead of committed.
type commitGroup struct{ err error }

type applyResult struct {
	id    expertgraph.NodeID
	epoch uint64
	err   error
}

// committer is the single consumer of applyCh: it batches queued
// mutations and commits each batch as one journal group + one epoch
// publish. It exits when Close closes the channel, after committing
// everything already enqueued.
func (s *Store) committer() {
	defer close(s.committerDone)
	for req := range s.applyCh {
		s.commitBatch(s.collectBatch(req))
	}
}

// collectBatch gathers up to commitBatchMax ops: everything already
// queued behind first, plus — when CommitInterval is set — whatever
// else arrives within the interval. With a zero interval batching
// comes only from arrival concurrency (ops that queued while the
// previous commit was in flight) and adds no latency.
func (s *Store) collectBatch(first *applyReq) []*applyReq {
	batch := append(make([]*applyReq, 0, min(s.commitBatchMax, 16)), first)
	interval := s.commitInterval
	if s.commitAuto {
		interval = s.autoInterval()
	}
	if interval <= 0 {
		for len(batch) < s.commitBatchMax {
			select {
			case req, ok := <-s.applyCh:
				if !ok {
					return batch
				}
				batch = append(batch, req)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for len(batch) < s.commitBatchMax {
		select {
		case req, ok := <-s.applyCh:
			if !ok {
				return batch
			}
			batch = append(batch, req)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// autoInterval decides the adaptive straggler window: zero (the
// no-latency fast path) unless the journal append EWMA exceeds the
// arrival-gap EWMA — i.e. more than one mutation arrives, on average,
// while one fsync runs, so waiting about one append's worth collects a
// batch that amortizes it. Anything else — idle store, fast disk,
// journaling off — keeps the fast path.
func (s *Store) autoInterval() time.Duration {
	app := s.ewmaAppendNS.Load()
	gap := s.ewmaGapNS.Load()
	if app <= 0 || gap <= 0 || app <= gap {
		return 0
	}
	return min(time.Duration(app), maxAutoInterval)
}

// commitBatch runs one group commit: validate every op against the
// writer state plus the staged effects of earlier ops in the batch,
// write the survivors as one journal record group, fold them into the
// writer state, publish one snapshot covering all of them (with the
// next chained overlay preset), and only then settle the per-op
// futures — so a mutator's returned epoch is always resolvable
// (read-your-writes).
func (s *Store) commitBatch(batch []*applyReq) {
	var start time.Time
	if s.commitHist != nil {
		start = time.Now()
	}
	s.mu.Lock()
	if s.closed || s.ioErr != nil || s.fenced.Load() {
		var err error
		switch {
		case s.closed:
			err = ErrClosed
		case s.ioErr != nil:
			err = s.ioErr
		default:
			err = &FencedError{Term: s.term.Load()}
		}
		s.mu.Unlock()
		for _, r := range batch {
			r.done <- applyResult{err: err}
		}
		return
	}

	// Phase 1: validate. Failed ops settle their own future with the
	// validation error and drop out; survivors stage their effects into
	// the shadow so later ops in the batch validate against them. Term
	// stamping happens here too: a fresh op (term 0) adopts the current
	// term, a replicated record keeps the term it was minted under, and
	// a record minted under an *older* term than ours is a deposed
	// leader's write — fenced.
	//
	// Grouped ops (ApplyGroup) are all-or-nothing within the batch: the
	// first failure marks the group and validation restarts with every
	// member excluded, so members staged *before* the failure are
	// un-staged too — nothing of a failed group reaches the journal, and
	// a replicated run can never commit records at epochs shifted down
	// by a dropped one. Each restart permanently fails one more group,
	// so the loop is bounded by the number of groups in the batch.
	curTerm := s.term.Load()
	staged := make([]*applyReq, 0, len(batch))
	ms := make([]Mutation, 0, len(batch))
	for {
		sh := s.newBatchShadow()
		staged, ms = staged[:0], ms[:0]
		restart := false
		for _, r := range batch {
			if r.group != nil && r.group.err != nil {
				continue // settled after the loop with the group error
			}
			r.err = nil
			if r.m.Term != 0 && r.m.Term < curTerm {
				r.err = &FencedError{Term: curTerm}
			} else {
				var id expertgraph.NodeID
				if id, r.err = s.validateMutation(&r.m, sh, true); r.err == nil {
					if r.m.Term == 0 {
						r.m.Term = curTerm
					}
					r.newID = id
					sh.stage(r.m)
					staged = append(staged, r)
					ms = append(ms, r.m)
					continue
				}
			}
			if r.group != nil {
				r.group.err = r.err
				restart = true
				break
			}
		}
		if !restart {
			break
		}
	}
	for _, r := range batch {
		if r.group != nil && r.group.err != nil && r.err == nil {
			r.err = fmt.Errorf("live: record aborted with its group: %w", r.group.err)
		}
	}

	// Phase 2: one journal record group for the whole batch
	// (write-ahead: nothing mutates writer state before it is durable).
	if len(staged) > 0 && s.journal != nil {
		var jstart time.Time
		if s.appendHist != nil || s.commitAuto {
			jstart = time.Now()
		}
		fatal, err := s.journal.appendGroup(ms)
		if err != nil {
			if fatal {
				// The journal can no longer be appended to safely;
				// poison the store rather than risk replaying a
				// different history than the one served.
				s.ioErr = err
				slog.Error("live: journal unrecoverable; store no longer accepts writes", "err", err)
			}
			s.mu.Unlock()
			for _, r := range batch {
				if r.err == nil {
					r.err = err
				}
				r.done <- applyResult{err: r.err}
			}
			return
		}
		if s.appendHist != nil || s.commitAuto {
			d := time.Since(jstart)
			if s.appendHist != nil {
				s.appendHist.Observe(d.Seconds())
			}
			if s.commitAuto {
				// Whole-group duration, not per-op: an fsync costs about
				// the same however many records ride it, and "one append
				// outlasts the average arrival gap" is exactly the
				// bottleneck condition the window exists for. Tracking
				// per-op cost instead would close the window as soon as
				// batching starts winning and oscillate.
				old := s.ewmaAppendNS.Load()
				s.ewmaAppendNS.Store(old + (int64(d)-old)/4)
			}
		}
		// Nudge the background compactor when this group crossed its
		// fold trigger — a non-blocking watermark signal, so folds
		// start promptly under write bursts without a tight poll
		// interval.
		if s.wmCh != nil &&
			((s.wmRecords > 0 && s.journal.records >= s.wmRecords) ||
				(s.wmBytes > 0 && s.journal.bytes >= s.wmBytes)) {
			select {
			case s.wmCh <- struct{}{}:
			default:
			}
		}
	}

	// Phase 3: fold the batch into the writer state and publish one
	// snapshot at the final epoch, its overlay view pre-derived from
	// the previous epoch's view where possible.
	epoch0 := s.baseEpoch + uint64(len(s.log))
	if len(staged) > 0 {
		for i, r := range staged {
			// Organic term adoption: a replicated record minted under a
			// newer term raises the local term the moment it commits —
			// it is already journaled above, so the adoption is durable
			// by construction. Its epoch is the new lineage's first.
			if r.m.Term > s.term.Load() {
				s.term.Store(r.m.Term)
				s.termStart.Store(epoch0 + uint64(i))
			}
			s.stateApply(r.m)
		}
		prev := s.snap.Load()
		next := s.buildSnapshotLocked()
		s.presetView(prev, next, ms)
		s.snap.Store(next)
		s.bumpWatch()
		s.commits.Add(1)
	}
	s.mu.Unlock()

	// Phase 4: instruments and futures, off the writer lock. The
	// snapshot is already published, so a mutator that wakes here and
	// immediately reads sees its own write.
	if len(staged) > 0 {
		if s.batchHist != nil {
			s.batchHist.Observe(float64(len(staged)))
		}
		if s.commitHist != nil {
			s.commitHist.Observe(time.Since(start).Seconds())
		}
	}
	for i, r := range staged {
		r.done <- applyResult{id: r.newID, epoch: epoch0 + uint64(i) + 1}
	}
	for _, r := range batch {
		if r.err != nil {
			r.done <- applyResult{err: r.err}
		}
	}
}

// presetView derives next's overlay view at commit time: chained off
// prev's memoized view when one exists (O(|batch|)), refolded from
// base when the chain hit the depth guard, and left lazy when prev's
// view was never built — a write-only stretch shouldn't pay for views
// nobody reads. Caller holds mu; next is not yet published.
func (s *Store) presetView(prev, next *Snapshot, batch []Mutation) {
	var start time.Time
	var view expertgraph.GraphView
	switch {
	case prev.epoch == prev.baseEpoch:
		// Chain root: folding just the batch is already the full
		// refold, since nothing precedes it in the resident log.
		if s.overlayHist != nil {
			start = time.Now()
		}
		view = newOverlay(next.base, next.log[:next.epoch-next.baseEpoch], next.nodes, next.edges)
	case prev.viewReady.Load():
		parent, ok := prev.view.(chainableView)
		if !ok {
			return
		}
		depth := 0
		if cv, isChain := parent.(*chainView); isChain {
			depth = cv.depth
		}
		if s.overlayHist != nil {
			start = time.Now()
		}
		if depth >= maxChainDepth {
			// Periodic refold guard: reset the chain with a full fold
			// from base.
			view = newOverlay(next.base, next.log[:next.epoch-next.baseEpoch], next.nodes, next.edges)
			s.refolds.Add(1)
		} else {
			view = chainOverlay(parent, batch, next.nodes, next.edges, depth+1)
		}
	default:
		return
	}
	if s.overlayHist != nil {
		s.overlayHist.Observe(time.Since(start).Seconds())
	}
	next.view = view
	next.viewOnce.Do(func() {}) // burn the once; View returns the preset
	next.viewReady.Store(true)
}

// batchShadow overlays the writer state with the staged effects of the
// current (not yet applied) batch prefix, so op k of a batch validates
// against the world as of op k−1 — exactly what it would have seen
// under the old one-op-one-commit path.
type batchShadow struct {
	s     *Store
	nodes int                 // add_node count staged this batch
	added map[uint64]float64  // edges added (or removed-then-re-added) this batch
	chgd  map[uint64]*float64 // pre-batch edges re-weighted (ptr) or removed (nil)
	gone  map[expertgraph.NodeID]struct{}
}

func (s *Store) newBatchShadow() *batchShadow { return &batchShadow{s: s} }

func (sh *batchShadow) numNodes() int { return sh.s.nNodes + sh.nodes }

func (sh *batchShadow) isRemoved(id expertgraph.NodeID) bool {
	if _, g := sh.gone[id]; g {
		return true
	}
	return sh.s.isRemoved(id)
}

func (sh *batchShadow) edgeWeight(u, v expertgraph.NodeID) (float64, bool) {
	k := edgeKey(u, v)
	if w, ok := sh.added[k]; ok {
		return w, true
	}
	if p, ok := sh.chgd[k]; ok {
		if p == nil {
			return 0, false
		}
		return *p, true
	}
	w, ok := sh.s.edgeSet[k]
	return w, ok
}

// stage folds one validated mutation's effects into the shadow.
func (sh *batchShadow) stage(m Mutation) {
	switch m.Op {
	case OpAddNode:
		sh.nodes++
	case OpAddEdge:
		if sh.added == nil {
			sh.added = make(map[uint64]float64)
		}
		sh.added[edgeKey(m.U, m.V)] = m.W
	case OpUpdateEdge:
		k := edgeKey(m.U, m.V)
		if _, ok := sh.added[k]; ok {
			sh.added[k] = m.W
			return
		}
		w := m.W
		if sh.chgd == nil {
			sh.chgd = make(map[uint64]*float64)
		}
		sh.chgd[k] = &w
	case OpRemoveEdge:
		sh.dropEdge(edgeKey(m.U, m.V))
	case OpRemoveNode:
		for _, e := range m.Edges {
			sh.dropEdge(edgeKey(m.Node, e.V))
		}
		if sh.gone == nil {
			sh.gone = make(map[expertgraph.NodeID]struct{})
		}
		sh.gone[m.Node] = struct{}{}
	}
}

func (sh *batchShadow) dropEdge(k uint64) {
	if _, ok := sh.added[k]; ok {
		// Added this batch: un-adding it suffices. If the same key was
		// also a pre-batch edge removed earlier in the batch, chgd[k]
		// stays nil and keeps masking it.
		delete(sh.added, k)
		return
	}
	if sh.chgd == nil {
		sh.chgd = make(map[uint64]*float64)
	}
	sh.chgd[k] = nil
}

// incidentEdges captures node's incident edges as of the staged batch
// prefix — the pre-batch snapshot view adjusted by the shadow — sorted
// by far endpoint so the journaled remove_node record (and therefore
// replay and repair) is deterministic.
func (sh *batchShadow) incidentEdges(node expertgraph.NodeID) []RemovedEdge {
	var out []RemovedEdge
	sn := sh.s.snap.Load()
	if int(node) < sn.NumNodes() {
		// Pre-batch node: walk the published view's adjacency, dropping
		// edges the batch removed and re-weighting ones it changed.
		// Keys in added are skipped here and picked up below (a
		// removed-then-re-added pre-batch edge lives there).
		sn.View().Neighbors(node, func(v expertgraph.NodeID, w float64) bool {
			k := edgeKey(node, v)
			if _, re := sh.added[k]; re {
				return true
			}
			if p, ok := sh.chgd[k]; ok {
				if p == nil {
					return true
				}
				out = append(out, RemovedEdge{V: v, W: *p})
				return true
			}
			out = append(out, RemovedEdge{V: v, W: w})
			return true
		})
	}
	for k, w := range sh.added {
		u, v := expertgraph.NodeID(k>>32), expertgraph.NodeID(uint32(k))
		switch node {
		case u:
			out = append(out, RemovedEdge{V: v, W: w})
		case v:
			out = append(out, RemovedEdge{V: u, W: w})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].V < out[j].V })
	return out
}
