package live

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"authteam/internal/expertgraph"
)

// TestGroupCommitSoak hammers the group-commit pipeline with many
// concurrent writers and readers: every mutation must receive a
// distinct per-op epoch (the batch boundary is invisible in epoch
// numbering), read-your-writes must hold the instant Apply returns,
// and a killed-and-restarted store must replay the batched journal to
// the identical graph. Run it under -race.
func TestGroupCommitSoak(t *testing.T) {
	const (
		writers      = 8
		opsPerWriter = 60
		total        = writers * opsPerWriter
		baseNodes    = writers * (opsPerWriter - 1)
	)
	rng := rand.New(rand.NewSource(71))
	base := testGraph(rng, baseNodes)
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	// Sync makes each commit pay a real fsync, so mutations queue while
	// one is in flight and batches form from arrival concurrency alone.
	s := mustOpen(t, base, Config{JournalPath: path, Sync: true})

	var (
		done      atomic.Bool
		reads     atomic.Int64
		writersWg sync.WaitGroup
		readersWg sync.WaitGroup
		epochMu   sync.Mutex
	)
	seen := make(map[uint64]bool, total)
	errCh := make(chan error, writers+2)

	// Readers: snapshot counters must always agree with each other and
	// epochs must be monotone per reader.
	for r := 0; r < 2; r++ {
		readersWg.Add(1)
		go func() {
			defer readersWg.Done()
			var last uint64
			for !done.Load() {
				sn := s.Snapshot()
				if sn.Epoch() < last {
					errCh <- errors.New("snapshot epoch went backwards")
					return
				}
				last = sn.Epoch()
				gv := sn.View()
				if gv.NumNodes() != sn.NumNodes() {
					errCh <- errors.New("view node count disagrees with snapshot")
					return
				}
				reads.Add(1)
			}
		}()
	}

	// Writers: each registers one fresh expert, then wires it to a
	// disjoint range of base nodes — a fresh endpoint can never collide
	// with a pre-existing edge, so every op succeeds and the only
	// coordination is the commit pipeline itself.
	for w := 0; w < writers; w++ {
		writersWg.Add(1)
		go func(w int) {
			defer writersWg.Done()
			var hub expertgraph.NodeID
			for i := 0; i < opsPerWriter; i++ {
				var epoch uint64
				var err error
				if i == 0 {
					hub, epoch, err = s.AddExpert("soak", 3, []string{"analytics"})
				} else {
					v := expertgraph.NodeID(w*(opsPerWriter-1) + i - 1)
					epoch, err = s.AddCollaboration(hub, v, 0.25)
				}
				if err != nil {
					errCh <- err
					return
				}
				// Read-your-writes: the published snapshot must already
				// cover this op's epoch.
				if got := s.Snapshot().Epoch(); got < epoch {
					errCh <- errors.New("Apply returned before its epoch was published")
					return
				}
				epochMu.Lock()
				dup := seen[epoch]
				seen[epoch] = true
				epochMu.Unlock()
				if dup {
					errCh <- errors.New("duplicate epoch handed to two mutations")
					return
				}
			}
		}(w)
	}

	writersWg.Wait()
	done.Store(true)
	readersWg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The epochs handed out must be exactly 1..total: per-op-absolute
	// numbering with no gaps or reuse across batch boundaries.
	if len(seen) != total {
		t.Fatalf("distinct epochs %d, want %d", len(seen), total)
	}
	for e := uint64(1); e <= total; e++ {
		if !seen[e] {
			t.Fatalf("epoch %d never handed out", e)
		}
	}
	if s.Epoch() != total {
		t.Fatalf("final epoch %d, want %d", s.Epoch(), total)
	}
	if s.Commits() == 0 || s.Commits() > total {
		t.Fatalf("commits = %d for %d ops", s.Commits(), total)
	}
	if rec, _ := s.JournalStats(); rec != total {
		t.Fatalf("journal records %d, want %d", rec, total)
	}
	t.Logf("group-commit soak: %d ops in %d commits (%.1f ops/commit), %d reads",
		total, s.Commits(), float64(total)/float64(s.Commits()), reads.Load())

	wantG, err := s.Snapshot().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: batched appends must replay identically to per-op ones.
	s2 := mustOpen(t, base, Config{JournalPath: path})
	if s2.Epoch() != total {
		t.Fatalf("replayed epoch %d, want %d", s2.Epoch(), total)
	}
	g2, err := s2.Snapshot().Graph()
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, wantG, g2)
}

// TestGroupCommitBatching pins that a commit interval actually groups
// concurrent mutations: with an accumulation window open, N parallel
// ops must land in far fewer than N commits, while epoch numbering and
// replay stay per-op.
func TestGroupCommitBatching(t *testing.T) {
	const ops = 24
	rng := rand.New(rand.NewSource(72))
	base := testGraph(rng, ops+4)
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	s := mustOpen(t, base, Config{
		JournalPath:    path,
		CommitInterval: 50 * time.Millisecond,
	})

	var wg sync.WaitGroup
	errCh := make(chan error, ops)
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.AddCollaboration(expertgraph.NodeID(i), expertgraph.NodeID(i+2), 0.5); err != nil &&
				!errors.Is(err, ErrDuplicateEdge) {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if s.Epoch() == 0 {
		t.Fatal("no ops committed")
	}
	if s.Commits() >= s.Epoch() {
		t.Fatalf("commits %d not below ops %d — the window never grouped anything",
			s.Commits(), s.Epoch())
	}

	wantEpoch := s.Epoch()
	wantG, err := s.Snapshot().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, base, Config{JournalPath: path})
	if s2.Epoch() != wantEpoch {
		t.Fatalf("replayed epoch %d, want %d", s2.Epoch(), wantEpoch)
	}
	g2, err := s2.Snapshot().Graph()
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, wantG, g2)
}

// TestGroupCommitIntraBatchValidation pins the sequencing contract
// inside one batch: of two conflicting mutations accumulated into the
// same commit window, exactly one may win — the loser must see the
// same error the serial write path produced, not a torn half-applied
// state.
func TestGroupCommitIntraBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	base := testGraph(rng, 20)
	s := mustOpen(t, base, Config{CommitInterval: 50 * time.Millisecond})

	var wg sync.WaitGroup
	var dups, oks atomic.Int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch _, err := s.AddCollaboration(2, 17, 0.4); {
			case err == nil:
				oks.Add(1)
			case errors.Is(err, ErrDuplicateEdge):
				dups.Add(1)
			default:
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if oks.Load() != 1 || dups.Load() != 1 {
		t.Fatalf("conflicting pair resolved as %d ok / %d duplicate, want 1/1",
			oks.Load(), dups.Load())
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch %d after one winning op, want 1", s.Epoch())
	}
	gv := s.Snapshot().View()
	if w, ok := gv.EdgeWeight(2, 17); !ok || w != 0.4 {
		t.Fatalf("edge after batch: %v %v", w, ok)
	}
}

// TestGroupCommitTornBatch simulates a crash that tears a group write
// mid-record: a batch of two appends where the second record is cut
// off without its newline. Replay must keep every complete record and
// drop the torn tail, exactly as with per-op appends, and the next
// write must start clean.
func TestGroupCommitTornBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	base := testGraph(rng, 20)
	path := filepath.Join(t.TempDir(), "wal.jsonl")

	s := mustOpen(t, base, Config{JournalPath: path})
	for i := 0; i < 3; i++ {
		if _, err := s.AddCollaboration(expertgraph.NodeID(i), expertgraph.NodeID(i+10), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-append what a torn two-record group write leaves behind: the
	// first record intact, the second cut mid-JSON.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"op\":\"add_edge\",\"u\":5,\"v\":15,\"w\":0.3}\n{\"op\":\"add_edge\",\"u\":6,\"v\":1"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, base, Config{JournalPath: path})
	if s2.Epoch() != 4 {
		t.Fatalf("epoch after torn-batch replay: %d, want 4 (3 ops + surviving batch head)", s2.Epoch())
	}
	gv := s2.Snapshot().View()
	if w, ok := gv.EdgeWeight(5, 15); !ok || w != 0.3 {
		t.Fatalf("complete record of the torn batch lost: %v %v", w, ok)
	}
	if _, ok := gv.EdgeWeight(6, 1); ok {
		t.Fatal("torn record of the batch was applied")
	}
	// The truncated tail must be gone so the next group write appends
	// cleanly and survives another replay.
	if _, err := s2.AddCollaboration(7, 12, 0.2); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, base, Config{JournalPath: path})
	if s3.Epoch() != 5 {
		t.Fatalf("epoch after truncate+append replay: %d, want 5", s3.Epoch())
	}
}
