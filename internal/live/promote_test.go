package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestPromoteBumpsTermAndStampsAppends drives the happy path of the
// fencing token: promotion seals the epoch, adopts the new term, and
// every subsequent append is minted under it.
func TestPromoteBumpsTermAndStampsAppends(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	s := mustOpen(t, testGraph(rng, 12), Config{JournalPath: filepath.Join(dir, "g.wal")})

	if s.Term() != 0 || s.Fenced() {
		t.Fatalf("fresh store: term %d fenced %v", s.Term(), s.Fenced())
	}
	pre, _, err := s.AddExpert("pre", 3, []string{"analytics"})
	if err != nil {
		t.Fatal(err)
	}

	sealed, perr := s.Promote(0)
	if perr != nil {
		t.Fatal(perr)
	}
	if sealed != s.Epoch() || sealed != 1 {
		t.Fatalf("sealed epoch %d, store epoch %d", sealed, s.Epoch())
	}
	if s.Term() != 1 || s.TermStart() != sealed {
		t.Fatalf("after promote: term %d start %d", s.Term(), s.TermStart())
	}

	// A promotion not beyond the current term is an error, not a reset.
	if _, err := s.Promote(1); err == nil {
		t.Fatal("promote to the current term succeeded")
	}

	// An edge off the freshly-added expert cannot collide with the
	// random seed graph.
	if _, err := s.AddCollaboration(pre, 5, 0.4); err != nil {
		t.Fatal(err)
	}
	muts, _, err := s.TailSince(context.Background(), sealed, 0)
	if err != nil || len(muts) != 1 {
		t.Fatalf("tail past seal: %d muts, %v", len(muts), err)
	}
	if muts[0].Term != 1 {
		t.Fatalf("post-promotion append minted under term %d, want 1", muts[0].Term)
	}
}

// TestStaleTermAppendFenced checks the core fencing rule: a record
// minted under an older term — a deposed leader's queued write riding
// replication — is refused with ErrFenced, while records of the current
// term and the pre-fencing term 0 still land.
func TestStaleTermAppendFenced(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := mustOpen(t, testGraph(rng, 12), Config{})

	if _, err := s.Promote(3); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Apply(Mutation{Op: OpAddEdge, U: 0, V: 7, W: 0.5, Term: 2})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-term apply: %v, want ErrFenced", err)
	}
	var fe *FencedError
	if !errors.As(err, &fe) || fe.Term != 3 {
		t.Fatalf("fence error carries term %v, want 3", err)
	}
	// Epoch unchanged by the refusal.
	if s.Epoch() != 0 {
		t.Fatalf("fenced apply moved the epoch to %d", s.Epoch())
	}
	// Current-term and term-0 (fresh local) records still commit.
	if _, _, err := s.Apply(Mutation{Op: OpAddEdge, U: 0, V: 7, W: 0.5, Term: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddCollaboration(0, 8, 0.5); err != nil {
		t.Fatal(err)
	}
}

// TestDemotePersistsFence demotes a journaled leader and checks the
// fence holds across restart: a deposed leader that crashes and comes
// back must not resume extending its dead-end lineage.
func TestDemotePersistsFence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dir := t.TempDir()
	path := filepath.Join(dir, "g.wal")
	g := testGraph(rng, 12)
	s := mustOpen(t, g, Config{JournalPath: path})

	if _, err := s.AddCollaboration(0, 5, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := s.Demote(5); err != nil {
		t.Fatal(err)
	}
	if !s.Fenced() || s.Term() != 5 {
		t.Fatalf("after demote: fenced %v term %d", s.Fenced(), s.Term())
	}
	if _, err := s.AddCollaboration(0, 6, 0.4); !errors.Is(err, ErrFenced) {
		t.Fatalf("append on demoted store: %v, want ErrFenced", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, _, err := s.TailSince(ctx, 0, 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("tail of demoted store: %v, want ErrFenced", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, g, Config{JournalPath: path})
	if !s2.Fenced() || s2.Term() != 5 {
		t.Fatalf("restarted deposed leader: fenced %v term %d, want fenced at 5", s2.Fenced(), s2.Term())
	}
	if _, err := s2.AddCollaboration(0, 6, 0.4); !errors.Is(err, ErrFenced) {
		t.Fatalf("append after fenced restart: %v, want ErrFenced", err)
	}
}

// TestOrganicTermAdoption feeds a follower-shaped store a replicated
// record minted under a newer term: committing it must raise the local
// term — the side-channel-free way a replica tree converges on a new
// lineage — and persist it across restart via the journaled record.
func TestOrganicTermAdoption(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	dir := t.TempDir()
	path := filepath.Join(dir, "g.wal")
	g := testGraph(rng, 12)
	s := mustOpen(t, g, Config{JournalPath: path})

	if _, _, err := s.Apply(Mutation{Op: OpAddEdge, U: 0, V: 7, W: 0.5, Term: 4}); err != nil {
		t.Fatal(err)
	}
	// TermStart is an exclusive bound: the adopted record committed at
	// epoch 1, so the new lineage starts *after* epoch 0.
	if s.Term() != 4 || s.TermStart() != 0 {
		t.Fatalf("after adopting record: term %d start %d, want 4 starting past 0", s.Term(), s.TermStart())
	}
	if s.Fenced() {
		t.Fatal("organic adoption fenced the store")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, g, Config{JournalPath: path})
	if s2.Term() != 4 {
		t.Fatalf("replayed store term %d, want 4 from the journaled record", s2.Term())
	}
}

// TestCommitAutoSoak runs concurrent writers against a store with the
// adaptive commit window enabled: every accepted write must land in
// order with a distinct epoch, same as the fixed-interval path.
func TestCommitAutoSoak(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dir := t.TempDir()
	s := mustOpen(t, testGraph(rng, 30), Config{
		JournalPath: filepath.Join(dir, "g.wal"),
		CommitAuto:  true,
	})

	const writers, per = 4, 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_, _, err := s.AddExpert(fmt.Sprintf("w%d-%d", w, i), 1+float64(i%9), []string{"analytics"})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				mu.Lock()
				accepted++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if got := s.Epoch(); got != uint64(accepted) {
		t.Fatalf("epoch %d after %d accepted writes", got, accepted)
	}
	g, err := s.Snapshot().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 30+writers*per {
		t.Fatalf("node count %d, want %d", g.NumNodes(), 30+writers*per)
	}
}
