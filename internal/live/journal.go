package live

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
)

// The write-ahead journal is a plain append-only file of one JSON
// mutation per line — trivially greppable, trivially replayable, and
// robust to a crash mid-write: a torn final record is detected on open
// and truncated away (everything before it was fully written, so the
// store resumes at the last durable epoch).

// journal appends mutations to the WAL.
type journal struct {
	f       *os.File
	sync    bool
	closed  bool
	records uint64
	bytes   int64
}

// openJournal reads (and crash-repairs) an existing journal at path,
// returning the mutations to replay and the open append handle.
func openJournal(path string, sync bool) ([]Mutation, *journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("live: journal: %w", err)
	}
	muts, good, err := readJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	end, serr := f.Seek(0, io.SeekEnd)
	if serr != nil {
		f.Close()
		return nil, nil, fmt.Errorf("live: journal: %w", serr)
	}
	if good < end {
		log.Printf("live: journal %s: truncating %d bytes of torn trailing record", path, end-good)
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("live: journal truncate: %w", err)
		}
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("live: journal: %w", err)
		}
	}
	return muts, &journal{f: f, sync: sync, records: uint64(len(muts)), bytes: good}, nil
}

// readJournal parses the journal from the start, returning the parsed
// mutations and the byte offset of the end of the last good record. A
// malformed or torn *final* record is tolerated (the offset stops
// before it); corruption followed by further records is an error,
// because silently skipping an interior mutation would replay a
// different history than the one that was served.
func readJournal(f *os.File) ([]Mutation, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("live: journal: %w", err)
	}
	var (
		muts []Mutation
		good int64
	)
	r := bufio.NewReader(f)
	for lineNo := 1; ; lineNo++ {
		line, err := r.ReadBytes('\n')
		complete := err == nil
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, 0, fmt.Errorf("live: journal: %w", err)
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var m Mutation
			if jerr := json.Unmarshal(trimmed, &m); jerr != nil || !complete {
				// Torn or malformed tail: stop here; openJournal
				// truncates the remainder. Anything after it would be
				// interior corruption.
				if !complete {
					return muts, good, nil
				}
				if _, peekErr := r.Peek(1); peekErr == nil {
					return nil, 0, fmt.Errorf("live: journal record %d is corrupt mid-file: %v", lineNo, jerr)
				}
				return muts, good, nil
			}
			muts = append(muts, m)
		}
		if complete {
			good += int64(len(line))
		}
		if !complete { // EOF
			return muts, good, nil
		}
	}
}

// Append writes one mutation record. The write happens before the
// mutation is applied (write-ahead), so a mutation is never visible to
// readers without being durable in the journal.
func (j *journal) Append(m Mutation) error {
	if j.closed {
		return errors.New("live: journal closed")
	}
	buf, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("live: journal encode: %w", err)
	}
	buf = append(buf, '\n')
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("live: journal append: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("live: journal sync: %w", err)
		}
	}
	j.records++
	j.bytes += int64(len(buf))
	return nil
}

// Close closes the journal file.
func (j *journal) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}
