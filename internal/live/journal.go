package live

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
)

// The write-ahead journal is a plain append-only file of one JSON
// mutation per line — trivially greppable, trivially replayable, and
// robust to a crash mid-write: a torn final record is detected on open
// and truncated away (everything before it was fully written, so the
// store resumes at the last durable epoch).
//
// A journal rewritten by compaction starts with a header line
// ({"journal_start": E}) anchoring its first mutation at epoch E+1;
// journals without a header start at epoch 0 (a fresh deployment, or
// one predating compaction).

// journalHeader is the optional first line of a compacted journal.
// Mutations always carry "op", the header never does, so the two are
// unambiguous. Besides the start epoch it persists the cluster term
// state (see promote.go): the fencing token, the epoch its lineage
// began at, and whether the store was demoted. Journals written before
// terms existed decode to term 0, which every real term exceeds.
type journalHeader struct {
	JournalStart *uint64 `json:"journal_start"`
	Term         uint64  `json:"term,omitempty"`
	TermStart    uint64  `json:"term_start,omitempty"`
	Fenced       bool    `json:"fenced,omitempty"`
}

// journal appends mutations to the WAL.
type journal struct {
	f    *os.File
	sync bool
	// startEpoch anchors the file: record i holds the mutation of
	// epoch startEpoch+i+1.
	startEpoch uint64
	closed     bool
	records    uint64
	bytes      int64
}

// openJournal reads (and crash-repairs) an existing journal at path,
// returning the mutations it holds, the decoded header (start epoch +
// term state), and the open append handle.
func openJournal(path string, sync bool) ([]Mutation, journalHeader, *journal, error) {
	var none journalHeader
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, none, nil, fmt.Errorf("live: journal: %w", err)
	}
	muts, hdr, good, err := readJournal(f)
	if err != nil {
		f.Close()
		return nil, none, nil, err
	}
	end, serr := f.Seek(0, io.SeekEnd)
	if serr != nil {
		f.Close()
		return nil, none, nil, fmt.Errorf("live: journal: %w", serr)
	}
	if good < end {
		slog.Warn("live: truncating torn trailing journal record",
			"journal", path, "torn_bytes", end-good, "good_bytes", good)
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, none, nil, fmt.Errorf("live: journal truncate: %w", err)
		}
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return nil, none, nil, fmt.Errorf("live: journal: %w", err)
		}
	}
	start := uint64(0)
	if hdr.JournalStart != nil {
		start = *hdr.JournalStart
	}
	j := &journal{f: f, sync: sync, startEpoch: start, records: uint64(len(muts)), bytes: good}
	return muts, hdr, j, nil
}

// readJournal parses the journal from the start, returning the parsed
// mutations, the decoded header (zero-valued when absent) and the
// byte offset of the end of the last good record. A malformed or torn
// *final* record is tolerated (the offset stops before it); corruption
// followed by further records is an error, because silently skipping
// an interior mutation would replay a different history than the one
// that was served.
func readJournal(f *os.File) ([]Mutation, journalHeader, int64, error) {
	var none journalHeader
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, none, 0, fmt.Errorf("live: journal: %w", err)
	}
	var (
		muts []Mutation
		hdr  journalHeader
		good int64
	)
	r := bufio.NewReader(f)
	for lineNo := 1; ; lineNo++ {
		line, err := r.ReadBytes('\n')
		complete := err == nil
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, none, 0, fmt.Errorf("live: journal: %w", err)
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var m Mutation
			jerr := json.Unmarshal(trimmed, &m)
			if jerr == nil && m.Op == "" && complete {
				// Not a mutation: the compaction header (first line
				// only) or garbage.
				if lineNo == 1 {
					if herr := json.Unmarshal(trimmed, &hdr); herr == nil && hdr.JournalStart != nil {
						good += int64(len(line))
						continue
					}
					hdr = none
				}
				jerr = fmt.Errorf("record has no op")
			}
			if jerr != nil || !complete {
				// Torn or malformed tail: stop here; openJournal
				// truncates the remainder. Anything after it would be
				// interior corruption.
				if !complete {
					return muts, hdr, good, nil
				}
				if _, peekErr := r.Peek(1); peekErr == nil {
					return nil, none, 0, fmt.Errorf("live: journal record %d is corrupt mid-file: %v", lineNo, jerr)
				}
				return muts, hdr, good, nil
			}
			muts = append(muts, m)
		}
		if complete {
			good += int64(len(line))
		}
		if !complete { // EOF
			return muts, hdr, good, nil
		}
	}
}

// appendGroup writes a group of mutation records with a single Write
// and — when Sync is on — a single fsync: the journal half of group
// commit. The on-disk format is byte-identical to len(ms) individual
// appends (one JSON object per line), so replay, replication tailing
// and compaction cannot tell groups apart.
//
// On a failed group write the partially written bytes are truncated
// away, restoring the known-good prefix: the error is then recoverable
// (the batch fails, the journal keeps accepting appends). If the
// rollback itself fails — or an fsync fails, after which the kernel
// may have silently dropped dirty pages — fatal is true and the caller
// must stop writing through this journal: appending past a torn group
// would turn it into interior corruption on replay.
func (j *journal) appendGroup(ms []Mutation) (fatal bool, err error) {
	if j.closed {
		return false, errors.New("live: journal closed")
	}
	var buf []byte
	for i := range ms {
		b, merr := json.Marshal(ms[i])
		if merr != nil {
			return false, fmt.Errorf("live: journal encode: %w", merr)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	if _, werr := j.f.Write(buf); werr != nil {
		if terr := j.f.Truncate(j.bytes); terr != nil {
			return true, fmt.Errorf("live: journal append: %v (rollback failed: %w)", werr, terr)
		}
		if _, serr := j.f.Seek(j.bytes, io.SeekStart); serr != nil {
			return true, fmt.Errorf("live: journal append: %v (reseek failed: %w)", werr, serr)
		}
		return false, fmt.Errorf("live: journal append: %w", werr)
	}
	if j.sync {
		if serr := j.f.Sync(); serr != nil {
			return true, fmt.Errorf("live: journal sync: %w", serr)
		}
	}
	j.records += uint64(len(ms))
	j.bytes += int64(len(buf))
	return false, nil
}

// Close closes the journal file.
func (j *journal) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}
