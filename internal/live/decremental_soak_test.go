package live

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"authteam/internal/core"
	"authteam/internal/expertgraph"
	"authteam/internal/pll"
	"authteam/internal/transform"
)

// TestDecrementalSoak is the race-shard acceptance scenario for the
// fully dynamic store: one writer streams a mixed
// insert/remove/re-weight/authority workload while readers run
// discovery queries, a prober replays SnapshotAt, a maintainer carries
// a 2-hop cover forward by incremental repair only, and the background
// compactor folds the journal via its watermark signal (the poll
// interval is an hour — every fold in this test is burst-triggered).
// Run it under -race.
func TestDecrementalSoak(t *testing.T) {
	const (
		baseNodes = 100
		mutations = 2000
		readers   = 3
	)
	rng := rand.New(rand.NewSource(51))
	base := testGraph(rng, baseNodes)
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	s := mustOpen(t, base, Config{JournalPath: path})

	comp, err := s.StartCompactor(CompactorConfig{
		Interval:   time.Hour, // watermark-only folding
		MinRecords: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer comp.Stop()

	project := resolveProject(t, base, []string{"analytics", "matrix"})

	var (
		done    atomic.Bool
		queries atomic.Int64
		probes  atomic.Int64
		repairs atomic.Int64
		wg      sync.WaitGroup
	)
	errCh := make(chan error, readers+4)

	// Readers: discovery against the overlay view, tolerating the
	// infeasibility removals can legitimately cause.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				snap := s.Snapshot()
				g := snap.View()
				p, err := transform.Fit(g, 0.6, 0.6, transform.Options{Normalize: true})
				if err != nil {
					errCh <- err
					return
				}
				tm, err := core.NewDiscoverer(p, core.SACACC).BestTeam(project)
				if err != nil {
					if errors.Is(err, core.ErrNoTeam) || errors.Is(err, core.ErrNoExpert) {
						queries.Add(1)
						continue
					}
					errCh <- err
					return
				}
				for _, u := range tm.Nodes {
					if !g.ValidNode(u) {
						errCh <- errors.New("team member invalid (tombstoned?) in its own snapshot")
						return
					}
				}
				queries.Add(1)
			}
		}()
	}

	// SnapshotAt prober across concurrent re-bases.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prng := rand.New(rand.NewSource(53))
		for !done.Load() {
			cur := s.Snapshot()
			epoch := cur.BaseEpoch() + uint64(prng.Int63n(int64(cur.Epoch()-cur.BaseEpoch()+1)))
			if sn, ok := s.SnapshotAt(epoch); ok {
				if sn.Epoch() != epoch {
					errCh <- errors.New("SnapshotAt epoch mismatch")
					return
				}
				probes.Add(1)
			}
		}
	}()

	// Maintainer: carries a raw 2-hop cover forward by incremental
	// repair only; re-anchors with a fresh build when the window is
	// gone (>1 fold since the anchor), never otherwise.
	wg.Add(1)
	go func() {
		defer wg.Done()
		anchor := s.Snapshot()
		ix := pll.Build(anchor.View())
		for !done.Load() {
			to := s.Snapshot()
			if to.Epoch() == anchor.Epoch() {
				runtime.Gosched()
				continue
			}
			next, _, ok := MaintainIndex(ix, anchor, to, nil, nil, 0)
			if !ok {
				// Anchor aged past the retained fold window.
				next = pll.Build(to.View())
			} else {
				repairs.Add(1)
			}
			ix, anchor = next, to
		}
		// Final exactness check against a fresh build.
		g := anchor.View()
		fresh := pll.Build(g)
		prng := rand.New(rand.NewSource(54))
		for i := 0; i < 200; i++ {
			u := expertgraph.NodeID(prng.Intn(g.NumNodes()))
			v := expertgraph.NodeID(prng.Intn(g.NumNodes()))
			got, want := ix.Dist(u, v), fresh.Dist(u, v)
			if math.Abs(got-want) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				errCh <- errors.New("maintained index diverged from fresh build")
				return
			}
		}
	}()

	// Writer: the mixed stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		wrng := rand.New(rand.NewSource(55))
		skills := []string{"analytics", "matrix", "communities", "indexing", "query"}
		applied := 0
		tolerated := func(err error) bool {
			return errors.Is(err, ErrDuplicateEdge) || errors.Is(err, ErrUnknownEdge) ||
				errors.Is(err, ErrRemovedNode) || errors.Is(err, ErrSelfLoop) ||
				errors.Is(err, ErrEmptyUpdate) || errors.Is(err, ErrUnknownNode)
		}
		for applied < mutations {
			n := s.Snapshot().NumNodes()
			var err error
			switch wrng.Intn(10) {
			case 0: // new expert, wired in
				var id expertgraph.NodeID
				id, _, err = s.AddExpert("live", 1+float64(wrng.Intn(20)),
					[]string{skills[wrng.Intn(len(skills))]})
				if err == nil {
					applied++
					_, err = s.AddCollaboration(id, expertgraph.NodeID(wrng.Intn(n)), 0.05+wrng.Float64())
				}
			case 1: // authority update
				auth := 1 + float64(wrng.Intn(40))
				_, err = s.UpdateExpert(expertgraph.NodeID(wrng.Intn(n)), &auth, nil)
			case 2, 3: // edge removal
				if u, v, ok := randomEdge(wrng, s.Snapshot().View()); ok {
					_, err = s.RemoveCollaboration(u, v)
				}
			case 4: // edge re-weight
				if u, v, ok := randomEdge(wrng, s.Snapshot().View()); ok {
					_, err = s.UpdateCollaboration(u, v, 0.05+wrng.Float64())
				}
			case 5: // node removal (rare-ish)
				if wrng.Intn(3) == 0 {
					_, err = s.RemoveExpert(expertgraph.NodeID(wrng.Intn(n)))
				}
			default: // edge insertion
				u := expertgraph.NodeID(wrng.Intn(n))
				v := expertgraph.NodeID(wrng.Intn(n))
				if u != v {
					_, err = s.AddCollaboration(u, v, 0.05+wrng.Float64())
				}
			}
			if err != nil && !tolerated(err) {
				errCh <- err
				return
			}
			if err == nil {
				applied++
			}
			// Pace against the readers so the streams interleave.
			if applied%200 == 0 {
				for want := queries.Load() + 1; queries.Load() < want && !done.Load(); {
					runtime.Gosched()
				}
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if queries.Load() == 0 || probes.Load() == 0 {
		t.Fatalf("streams did not interleave: %d queries, %d probes", queries.Load(), probes.Load())
	}
	if repairs.Load() == 0 {
		t.Fatal("no incremental repairs absorbed the mixed stream")
	}
	c := s.Counters()
	if c.EdgesRemoved == 0 || c.EdgesUpdated == 0 || c.NodesRemoved == 0 {
		t.Fatalf("stream was not genuinely mixed: %+v", c)
	}
	if s.Compactions() == 0 {
		t.Fatal("watermark never triggered a background fold")
	}
	if st := comp.Stats(); st.Wakeups == 0 {
		t.Fatalf("folds happened without watermark wakeups: %+v", st)
	}

	// Kill and restart: replay of the mixed journal lands on the
	// identical epoch and graph.
	epoch := s.Epoch()
	fp := viewFingerprint(s.Snapshot().View())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, base, Config{JournalPath: path})
	if s2.Epoch() != epoch || !equalFP(viewFingerprint(s2.Snapshot().View()), fp) {
		t.Fatalf("restart diverged: epoch %d vs %d", s2.Epoch(), epoch)
	}
	t.Logf("decremental soak: %d queries, %d probes, %d repairs, %d folds over %+v",
		queries.Load(), probes.Load(), repairs.Load(), s.Compactions(), c)
}
