package live

import (
	"sort"

	"authteam/internal/expertgraph"
)

// OverlayView answers expertgraph.GraphView reads for one epoch
// straight from the frozen base CSR plus per-node delta patches —
// the zero-materialization read path of the live store. Building one
// costs O(|delta|): the base graph's packed arrays are shared, and
// only the nodes, edges and skills the delta touches get patch
// entries. Reads on untouched nodes are a map miss away from the raw
// CSR speed; reads on patched nodes consult small merged slices
// computed once at construction.
//
// Decremental mutations patch subtractively: removed or re-weighted
// base edges are masked by key (re-weights re-appear as delta halves
// at the new weight), and tombstoned nodes answer like their
// materialized counterparts (no edges, no skills, ValidNode false,
// excluded from holder lists and normalization bounds).
//
// Normalization bounds are *covering*, not tight: they seed from the
// base graph's bounds and only ever expand as the delta folds in new
// values — retiring the current min/max edge weight or inverse
// authority leaves them where they are. A tight bound would have to
// shrink on such a retirement, and a bounds move re-scales every
// transformed edge weight of §3.2.2 at once, invalidating the whole
// 2-hop cover; under the covering contract the retirement is just an
// ordinary decremental delta the index repairs through. The overlay
// still tracks, conservatively, whether each bound provably remains
// tight (another value is known to hold the extreme — see the base
// graph's ExtremeStats) and reports it via BoundsTight.
//
// The view is semantically identical to the graph Snapshot.Graph()
// would materialize: same IDs (nodes, skills), same holder ordering
// (ExpertsWithSkill stays sorted by NodeID), same covering
// normalization bounds (materialization widens the packed graph to
// match). Only the Neighbors visit order differs (base edges first,
// then delta edges), which GraphView leaves implementation-defined.
//
// OverlayView is immutable after construction and safe for concurrent
// readers.
type OverlayView struct {
	base  *expertgraph.Graph
	nb    int // base node count
	nbSk  int // base skill count
	nodes int
	edges int

	// Nodes appended by the delta (IDs nb, nb+1, …).
	newNames  []string
	newAuth   []float64
	newInv    []float64
	newSkills [][]expertgraph.SkillID
	newAdj    [][]halfEdge

	// Patches on base nodes. skillPatch holds the *full* merged skill
	// list (base skills + grants, in grant order) so Skills stays a
	// single lookup; a tombstoned node's entry is an empty list.
	authPatch  map[expertgraph.NodeID]authOverride
	extraAdj   map[expertgraph.NodeID][]halfEdge
	skillPatch map[expertgraph.NodeID][]expertgraph.SkillID

	// Subtractive patches: base edges masked out by key (removed, or
	// re-weighted and re-added as delta halves), the per-endpoint count
	// of masked base edges (for O(1) Degree), and nodes tombstoned by
	// the delta.
	removedEdges map[uint64]struct{}
	removedDeg   map[expertgraph.NodeID]int
	removedNodes map[expertgraph.NodeID]struct{}

	// Skill universe extensions and patched inverted-index rows
	// (full merged holder lists, sorted by NodeID).
	newSkillNames []string
	newSkillIDs   map[string]expertgraph.SkillID
	holdersPatch  map[expertgraph.SkillID][]expertgraph.NodeID

	minW, maxW     float64
	minInv, maxInv float64

	// Per-bound tightness tracking (see boundSide).
	wLo, wHi, invLo, invHi boundSide
}

// boundSide tracks one covering bound: its value, how many live values
// are known to hold it (the base extreme's multiplicity, plus delta
// values landing exactly on it), and how many of those holders the
// delta retired. The bound is provably tight while retirements stay
// below known holders; the zero count is the conservative "inherited a
// covering-loose bound" state, which reports not-tight until a delta
// value lands on the bound.
type boundSide struct {
	val   float64
	have  bool
	known int
	gone  int
}

// lower folds v toward a minimum bound.
func (b *boundSide) lower(v float64) {
	switch {
	case !b.have:
		b.val, b.known, b.gone, b.have = v, 1, 0, true
	case v < b.val:
		b.val, b.known, b.gone = v, 1, 0
	case v == b.val:
		b.known++
	}
}

// raise folds v toward a maximum bound.
func (b *boundSide) raise(v float64) {
	switch {
	case !b.have:
		b.val, b.known, b.gone, b.have = v, 1, 0, true
	case v > b.val:
		b.val, b.known, b.gone = v, 1, 0
	case v == b.val:
		b.known++
	}
}

// retire records that a value holding the bound left the population.
func (b *boundSide) retire(v float64) {
	if b.have && v == b.val {
		b.gone++
	}
}

// tight reports whether the bound provably equals the population's
// tight extreme.
func (b *boundSide) tight() bool {
	return !b.have || b.gone < b.known
}

// seedBounds initializes a (lo, hi) boundSide pair from a base graph's
// covering bounds. A bound inherits the base extreme's multiplicity as
// its known holder count only when it actually sits on the tight
// extreme; a base bound already covering-loose (widened past a retired
// extreme by an earlier epoch) seeds with zero holders and stays
// reported not-tight. An absent population (have false) seeds empty
// sides that adopt the first folded value.
func seedBounds(have bool, lo, hi float64, ext expertgraph.ExtremeStats) (loSide, hiSide boundSide) {
	if !have {
		return
	}
	loSide = boundSide{val: lo, have: true}
	if lo == ext.Min {
		loSide.known = ext.MinCount
	}
	hiSide = boundSide{val: hi, have: true}
	if hi == ext.Max {
		hiSide.known = ext.MaxCount
	}
	return
}

type halfEdge struct {
	to expertgraph.NodeID
	w  float64
}

type authOverride struct {
	auth, inv float64
}

// newOverlay folds the delta into patch structures over base. muts
// must be the validated mutation log of the target epoch (the store
// guarantees referenced nodes exist and are live, edges are unique,
// authorities are floored at 1, remove_node records carry their
// incident edges).
func newOverlay(base *expertgraph.Graph, muts []Mutation, nodes, edges int) *OverlayView {
	o := &OverlayView{
		base:  base,
		nb:    base.NumNodes(),
		nbSk:  base.NumSkills(),
		nodes: nodes,
		edges: edges,
	}
	wlo, whi := base.EdgeWeightBounds()
	ilo, ihi := base.InvAuthorityBounds()
	o.wLo, o.wHi = seedBounds(base.NumEdges() > 0, wlo, whi, base.EdgeWeightExtremes())
	o.invLo, o.invHi = seedBounds(o.nb > base.NumRemoved(), ilo, ihi, base.InvAuthorityExtremes())

	// addedHolders accumulates per-skill holder additions and
	// droppedHolders per-skill removals (tombstoned nodes); both are
	// merged into holdersPatch at the end.
	var addedHolders map[expertgraph.SkillID][]expertgraph.NodeID
	var droppedHolders map[expertgraph.SkillID]map[expertgraph.NodeID]struct{}

	skillID := func(name string) expertgraph.SkillID {
		if id, ok := base.SkillID(name); ok {
			return id
		}
		if id, ok := o.newSkillIDs[name]; ok {
			return id
		}
		id := expertgraph.SkillID(o.nbSk + len(o.newSkillNames))
		o.newSkillNames = append(o.newSkillNames, name)
		if o.newSkillIDs == nil {
			o.newSkillIDs = make(map[string]expertgraph.SkillID)
		}
		o.newSkillIDs[name] = id
		return id
	}
	addHolder := func(s expertgraph.SkillID, u expertgraph.NodeID) {
		if addedHolders == nil {
			addedHolders = make(map[expertgraph.SkillID][]expertgraph.NodeID)
		}
		addedHolders[s] = append(addedHolders[s], u)
	}
	dropHolder := func(s expertgraph.SkillID, u expertgraph.NodeID) {
		if droppedHolders == nil {
			droppedHolders = make(map[expertgraph.SkillID]map[expertgraph.NodeID]struct{})
		}
		set := droppedHolders[s]
		if set == nil {
			set = make(map[expertgraph.NodeID]struct{})
			droppedHolders[s] = set
		}
		set[u] = struct{}{}
	}
	// Bounds only ever expand (covering contract, see the type doc);
	// retirements just update the tightness bookkeeping.
	foldInv := func(inv float64) { o.invLo.lower(inv); o.invHi.raise(inv) }
	foldW := func(w float64) { o.wLo.lower(w); o.wHi.raise(w) }
	retireInv := func(inv float64) { o.invLo.retire(inv); o.invHi.retire(inv) }
	retireW := func(w float64) { o.wLo.retire(w); o.wHi.retire(w) }
	effInv := func(u expertgraph.NodeID) float64 {
		if int(u) >= o.nb {
			return o.newInv[int(u)-o.nb]
		}
		if ov, ok := o.authPatch[u]; ok {
			return ov.inv
		}
		return base.InvAuthority(u)
	}

	for _, m := range muts {
		switch m.Op {
		case OpAddNode:
			id := expertgraph.NodeID(o.nb + len(o.newNames))
			inv := 1 / m.Authority
			o.newNames = append(o.newNames, m.Name)
			o.newAuth = append(o.newAuth, m.Authority)
			o.newInv = append(o.newInv, inv)
			var sk []expertgraph.SkillID
			for _, name := range m.Skills {
				s := skillID(name)
				if containsSkill(sk, s) {
					continue
				}
				sk = append(sk, s)
				addHolder(s, id)
			}
			o.newSkills = append(o.newSkills, sk)
			o.newAdj = append(o.newAdj, nil)
			foldInv(inv)

		case OpAddEdge:
			o.addHalf(m.U, halfEdge{to: m.V, w: m.W})
			o.addHalf(m.V, halfEdge{to: m.U, w: m.W})
			foldW(m.W)

		case OpRemoveEdge:
			o.maskEdge(m.U, m.V)
			retireW(m.W)

		case OpUpdateEdge:
			if o.updateHalf(m.U, m.V, m.W) {
				o.updateHalf(m.V, m.U, m.W)
			} else {
				// A base edge: mask the CSR entry and carry the new
				// weight as delta halves.
				o.maskEdge(m.U, m.V)
				o.addHalf(m.U, halfEdge{to: m.V, w: m.W})
				o.addHalf(m.V, halfEdge{to: m.U, w: m.W})
			}
			retireW(m.OldW)
			foldW(m.W)

		case OpRemoveNode:
			for _, e := range m.Edges {
				o.maskEdge(m.Node, e.V)
				retireW(e.W)
			}
			// The tombstone retires the node's authority from the
			// tightness bookkeeping (bounds stay put — covering) and
			// its skills from the inverted index.
			retireInv(effInv(m.Node))
			for _, s := range o.effectiveSkills(m.Node) {
				dropHolder(s, m.Node)
			}
			if int(m.Node) >= o.nb {
				o.newSkills[int(m.Node)-o.nb] = nil
			} else {
				if o.skillPatch == nil {
					o.skillPatch = make(map[expertgraph.NodeID][]expertgraph.SkillID)
				}
				o.skillPatch[m.Node] = []expertgraph.SkillID{}
			}
			if o.removedNodes == nil {
				o.removedNodes = make(map[expertgraph.NodeID]struct{})
			}
			o.removedNodes[m.Node] = struct{}{}

		case OpUpdateNode:
			if m.SetAuthority != nil {
				auth := *m.SetAuthority
				inv := 1 / auth
				// The old value leaves the population, the new one joins
				// it; the bounds only ever expand.
				retireInv(effInv(m.Node))
				if int(m.Node) >= o.nb {
					i := int(m.Node) - o.nb
					o.newAuth[i], o.newInv[i] = auth, inv
				} else {
					if o.authPatch == nil {
						o.authPatch = make(map[expertgraph.NodeID]authOverride)
					}
					o.authPatch[m.Node] = authOverride{auth: auth, inv: inv}
				}
				foldInv(inv)
			}
			for _, name := range m.AddSkills {
				s := skillID(name)
				if o.hasSkillDuringBuild(m.Node, s) {
					continue
				}
				if int(m.Node) >= o.nb {
					i := int(m.Node) - o.nb
					o.newSkills[i] = append(o.newSkills[i], s)
				} else {
					if o.skillPatch == nil {
						o.skillPatch = make(map[expertgraph.NodeID][]expertgraph.SkillID)
					}
					if _, ok := o.skillPatch[m.Node]; !ok {
						o.skillPatch[m.Node] = append([]expertgraph.SkillID(nil), base.Skills(m.Node)...)
					}
					o.skillPatch[m.Node] = append(o.skillPatch[m.Node], s)
				}
				addHolder(s, m.Node)
			}
		}
	}

	o.minW, o.maxW = o.wLo.val, o.wHi.val
	o.minInv, o.maxInv = o.invLo.val, o.invHi.val

	if len(addedHolders) > 0 || len(droppedHolders) > 0 {
		o.holdersPatch = make(map[expertgraph.SkillID][]expertgraph.NodeID, len(addedHolders)+len(droppedHolders))
		patchSkill := func(s expertgraph.SkillID) {
			if _, done := o.holdersPatch[s]; done {
				return
			}
			dropped := droppedHolders[s]
			var baseHolders []expertgraph.NodeID
			if int(s) < o.nbSk {
				baseHolders = base.ExpertsWithSkill(s)
			}
			if len(dropped) > 0 {
				kept := make([]expertgraph.NodeID, 0, len(baseHolders))
				for _, u := range baseHolders {
					if _, gone := dropped[u]; !gone {
						kept = append(kept, u)
					}
				}
				baseHolders = kept
			}
			added := addedHolders[s]
			if len(dropped) > 0 && len(added) > 0 {
				kept := make([]expertgraph.NodeID, 0, len(added))
				for _, u := range added {
					if _, gone := dropped[u]; !gone {
						kept = append(kept, u)
					}
				}
				added = kept
			} else if len(added) > 0 {
				added = append([]expertgraph.NodeID(nil), added...)
			}
			sortNodeIDs(added)
			o.holdersPatch[s] = mergeSortedNodeIDs(baseHolders, added)
		}
		for s := range addedHolders {
			patchSkill(s)
		}
		for s := range droppedHolders {
			patchSkill(s)
		}
	}
	return o
}

func (o *OverlayView) addHalf(u expertgraph.NodeID, e halfEdge) {
	if int(u) >= o.nb {
		i := int(u) - o.nb
		o.newAdj[i] = append(o.newAdj[i], e)
		return
	}
	if o.extraAdj == nil {
		o.extraAdj = make(map[expertgraph.NodeID][]halfEdge)
	}
	o.extraAdj[u] = append(o.extraAdj[u], e)
}

// dropHalf deletes the delta half-edge u→v if present, reporting
// whether it existed.
func (o *OverlayView) dropHalf(u, v expertgraph.NodeID) bool {
	var adj []halfEdge
	if int(u) >= o.nb {
		adj = o.newAdj[int(u)-o.nb]
	} else {
		adj = o.extraAdj[u]
	}
	for i, e := range adj {
		if e.to == v {
			last := len(adj) - 1
			adj[i] = adj[last]
			adj = adj[:last]
			if int(u) >= o.nb {
				o.newAdj[int(u)-o.nb] = adj
			} else if last == 0 {
				delete(o.extraAdj, u)
			} else {
				o.extraAdj[u] = adj
			}
			return true
		}
	}
	return false
}

// updateHalf re-weights the delta half-edge u→v in place, reporting
// whether it existed.
func (o *OverlayView) updateHalf(u, v expertgraph.NodeID, w float64) bool {
	var adj []halfEdge
	if int(u) >= o.nb {
		adj = o.newAdj[int(u)-o.nb]
	} else {
		adj = o.extraAdj[u]
	}
	for i := range adj {
		if adj[i].to == v {
			adj[i].w = w
			return true
		}
	}
	return false
}

// maskEdge removes the effective edge (u, v) mid-fold: a delta half
// pair is dropped outright; a base CSR edge is masked by key. An edge
// that was re-weighted earlier in the delta lives as delta halves over
// an already-masked base entry, so dropping the halves suffices.
func (o *OverlayView) maskEdge(u, v expertgraph.NodeID) {
	if o.dropHalf(u, v) {
		o.dropHalf(v, u)
		return
	}
	if o.removedEdges == nil {
		o.removedEdges = make(map[uint64]struct{})
		o.removedDeg = make(map[expertgraph.NodeID]int)
	}
	o.removedEdges[edgeKey(u, v)] = struct{}{}
	o.removedDeg[u]++
	o.removedDeg[v]++
}

// isRemoved reports whether u is tombstoned — by this delta or already
// in the base graph.
func (o *OverlayView) isRemoved(u expertgraph.NodeID) bool {
	if _, gone := o.removedNodes[u]; gone {
		return true
	}
	return int(u) < o.nb && o.base.Removed(u)
}

// effectiveSkills returns u's skill set mid-fold (shared slices; do
// not modify).
func (o *OverlayView) effectiveSkills(u expertgraph.NodeID) []expertgraph.SkillID {
	if int(u) >= o.nb {
		return o.newSkills[int(u)-o.nb]
	}
	if sk, ok := o.skillPatch[u]; ok {
		return sk
	}
	return o.base.Skills(u)
}

// hasSkillDuringBuild checks the effective skill set of u mid-fold.
func (o *OverlayView) hasSkillDuringBuild(u expertgraph.NodeID, s expertgraph.SkillID) bool {
	return containsSkill(o.effectiveSkills(u), s)
}

func containsSkill(sk []expertgraph.SkillID, s expertgraph.SkillID) bool {
	for _, have := range sk {
		if have == s {
			return true
		}
	}
	return false
}

func sortNodeIDs(ids []expertgraph.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// mergeSortedNodeIDs merges two sorted, disjoint ID lists.
func mergeSortedNodeIDs(a, b []expertgraph.NodeID) []expertgraph.NodeID {
	out := make([]expertgraph.NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// --- expertgraph.GraphView ----------------------------------------------

// NumNodes returns the expert count at this epoch (tombstoned experts
// keep their ID slot and stay counted, exactly as in a materialized
// graph).
func (o *OverlayView) NumNodes() int { return o.nodes }

// NumEdges returns the undirected edge count at this epoch.
func (o *OverlayView) NumEdges() int { return o.edges }

// NumSkills returns the size of the skill universe at this epoch.
func (o *OverlayView) NumSkills() int { return o.nbSk + len(o.newSkillNames) }

// Name returns the display name of expert u.
func (o *OverlayView) Name(u expertgraph.NodeID) string {
	if int(u) >= o.nb {
		return o.newNames[int(u)-o.nb]
	}
	return o.base.Name(u)
}

// Authority returns a(u), the raw authority of expert u.
func (o *OverlayView) Authority(u expertgraph.NodeID) float64 {
	if int(u) >= o.nb {
		return o.newAuth[int(u)-o.nb]
	}
	if len(o.authPatch) != 0 {
		if ov, ok := o.authPatch[u]; ok {
			return ov.auth
		}
	}
	return o.base.Authority(u)
}

// InvAuthority returns a'(u) = 1/a(u).
func (o *OverlayView) InvAuthority(u expertgraph.NodeID) float64 {
	if int(u) >= o.nb {
		return o.newInv[int(u)-o.nb]
	}
	if len(o.authPatch) != 0 {
		if ov, ok := o.authPatch[u]; ok {
			return ov.inv
		}
	}
	return o.base.InvAuthority(u)
}

// Pubs returns the publication count of expert u (always 0 for experts
// added through the mutation API, which carries no publication field).
func (o *OverlayView) Pubs(u expertgraph.NodeID) int {
	if int(u) >= o.nb {
		return 0
	}
	return o.base.Pubs(u)
}

// Degree returns the number of neighbours of expert u.
func (o *OverlayView) Degree(u expertgraph.NodeID) int {
	if _, gone := o.removedNodes[u]; gone {
		return 0
	}
	if int(u) >= o.nb {
		return len(o.newAdj[int(u)-o.nb])
	}
	d := o.base.Degree(u)
	if len(o.removedDeg) != 0 {
		d -= o.removedDeg[u]
	}
	if len(o.extraAdj) != 0 {
		d += len(o.extraAdj[u])
	}
	return d
}

// Neighbors visits base edges first (minus any the delta masked), then
// delta edges.
func (o *OverlayView) Neighbors(u expertgraph.NodeID, fn func(v expertgraph.NodeID, w float64) bool) {
	if _, gone := o.removedNodes[u]; gone {
		return
	}
	if int(u) >= o.nb {
		for _, e := range o.newAdj[int(u)-o.nb] {
			if !fn(e.to, e.w) {
				return
			}
		}
		return
	}
	extra := o.extraAdj[u]
	if len(o.removedEdges) == 0 {
		if len(extra) == 0 {
			o.base.Neighbors(u, fn)
			return
		}
		stopped := false
		o.base.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			if !fn(v, w) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	} else {
		stopped := false
		o.base.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			if _, masked := o.removedEdges[edgeKey(u, v)]; masked {
				return true
			}
			if !fn(v, w) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
	for _, e := range extra {
		if !fn(e.to, e.w) {
			return
		}
	}
}

// EdgeWeight returns the weight of edge (u,v) and whether it exists.
// Delta halves take precedence (they carry re-weights); masked base
// entries are invisible.
func (o *OverlayView) EdgeWeight(u, v expertgraph.NodeID) (float64, bool) {
	var extra []halfEdge
	if int(u) >= o.nb {
		extra = o.newAdj[int(u)-o.nb]
	} else {
		extra = o.extraAdj[u]
	}
	for _, e := range extra {
		if e.to == v {
			return e.w, true
		}
	}
	if int(u) < o.nb && int(v) < o.nb {
		if len(o.removedEdges) != 0 {
			if _, masked := o.removedEdges[edgeKey(u, v)]; masked {
				return 0, false
			}
		}
		return o.base.EdgeWeight(u, v)
	}
	return 0, false
}

// SkillID resolves a skill name to its ID.
func (o *OverlayView) SkillID(name string) (expertgraph.SkillID, bool) {
	if id, ok := o.base.SkillID(name); ok {
		return id, true
	}
	id, ok := o.newSkillIDs[name]
	return id, ok
}

// SkillName returns the name of skill s.
func (o *OverlayView) SkillName(s expertgraph.SkillID) string {
	if int(s) >= o.nbSk {
		return o.newSkillNames[int(s)-o.nbSk]
	}
	return o.base.SkillName(s)
}

// Skills returns the skills held by expert u. The returned slice is
// shared with the view and must not be modified.
func (o *OverlayView) Skills(u expertgraph.NodeID) []expertgraph.SkillID {
	if int(u) >= o.nb {
		return o.newSkills[int(u)-o.nb]
	}
	if len(o.skillPatch) != 0 {
		if sk, ok := o.skillPatch[u]; ok {
			return sk
		}
	}
	return o.base.Skills(u)
}

// HasSkill reports whether expert u holds skill s.
func (o *OverlayView) HasSkill(u expertgraph.NodeID, s expertgraph.SkillID) bool {
	return containsSkill(o.Skills(u), s)
}

// ExpertsWithSkill returns C(s) sorted by NodeID. The returned slice
// is shared with the view and must not be modified.
func (o *OverlayView) ExpertsWithSkill(s expertgraph.SkillID) []expertgraph.NodeID {
	if len(o.holdersPatch) != 0 {
		if holders, ok := o.holdersPatch[s]; ok {
			return holders
		}
	}
	if int(s) < o.nbSk {
		return o.base.ExpertsWithSkill(s)
	}
	return nil
}

// EdgeWeightBounds returns the covering (min, max) edge weight bounds
// at this epoch — identical to what materializing the graph (which
// widens to match, see Snapshot.Graph) would answer.
func (o *OverlayView) EdgeWeightBounds() (lo, hi float64) { return o.minW, o.maxW }

// InvAuthorityBounds returns the covering (min, max) inverse-authority
// bounds at this epoch, over live (non-tombstoned) experts.
func (o *OverlayView) InvAuthorityBounds() (lo, hi float64) { return o.minInv, o.maxInv }

// BoundsTight reports whether the covering edge-weight and
// inverse-authority bounds are each provably tight at this epoch —
// i.e. some live value is known to still hold every extreme. False is
// conservative: the bounds remain valid covering bounds either way,
// only possibly wider than the live population's true extremes.
func (o *OverlayView) BoundsTight() (w, inv bool) {
	return o.wLo.tight() && o.wHi.tight(), o.invLo.tight() && o.invHi.tight()
}

// ValidNode reports whether u is a live node of this view (tombstoned
// experts fail, as on a materialized graph).
func (o *OverlayView) ValidNode(u expertgraph.NodeID) bool {
	return u >= 0 && int(u) < o.nodes && !o.isRemoved(u)
}

var _ expertgraph.GraphView = (*OverlayView)(nil)
