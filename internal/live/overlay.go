package live

import (
	"sort"

	"authteam/internal/expertgraph"
)

// OverlayView answers expertgraph.GraphView reads for one epoch
// straight from the frozen base CSR plus per-node delta patches —
// the zero-materialization read path of the live store. Building one
// costs O(|delta|): the base graph's packed arrays are shared, and
// only the nodes, edges and skills the delta touches get patch
// entries. Reads on untouched nodes are a map miss away from the raw
// CSR speed; reads on patched nodes consult small merged slices
// computed once at construction.
//
// Decremental mutations patch subtractively: removed or re-weighted
// base edges are masked by key (re-weights re-appear as delta halves
// at the new weight), tombstoned nodes answer like their materialized
// counterparts (no edges, no skills, ValidNode false, excluded from
// holder lists and normalization bounds), and a delta that retires a
// current extreme — the min/max edge weight or inverse authority —
// triggers an exact full rescan of that bound, something a monotone
// fold cannot express.
//
// The view is semantically identical to the graph Snapshot.Graph()
// would materialize: same IDs (nodes, skills), same holder ordering
// (ExpertsWithSkill stays sorted by NodeID), same exact normalization
// bounds. Only the Neighbors visit order differs (base edges first,
// then delta edges), which GraphView leaves implementation-defined.
//
// OverlayView is immutable after construction and safe for concurrent
// readers.
type OverlayView struct {
	base  *expertgraph.Graph
	nb    int // base node count
	nbSk  int // base skill count
	nodes int
	edges int

	// Nodes appended by the delta (IDs nb, nb+1, …).
	newNames  []string
	newAuth   []float64
	newInv    []float64
	newSkills [][]expertgraph.SkillID
	newAdj    [][]halfEdge

	// Patches on base nodes. skillPatch holds the *full* merged skill
	// list (base skills + grants, in grant order) so Skills stays a
	// single lookup; a tombstoned node's entry is an empty list.
	authPatch  map[expertgraph.NodeID]authOverride
	extraAdj   map[expertgraph.NodeID][]halfEdge
	skillPatch map[expertgraph.NodeID][]expertgraph.SkillID

	// Subtractive patches: base edges masked out by key (removed, or
	// re-weighted and re-added as delta halves), the per-endpoint count
	// of masked base edges (for O(1) Degree), and nodes tombstoned by
	// the delta.
	removedEdges map[uint64]struct{}
	removedDeg   map[expertgraph.NodeID]int
	removedNodes map[expertgraph.NodeID]struct{}

	// Skill universe extensions and patched inverted-index rows
	// (full merged holder lists, sorted by NodeID).
	newSkillNames []string
	newSkillIDs   map[string]expertgraph.SkillID
	holdersPatch  map[expertgraph.SkillID][]expertgraph.NodeID

	minW, maxW     float64
	minInv, maxInv float64
}

type halfEdge struct {
	to expertgraph.NodeID
	w  float64
}

type authOverride struct {
	auth, inv float64
}

// newOverlay folds the delta into patch structures over base. muts
// must be the validated mutation log of the target epoch (the store
// guarantees referenced nodes exist and are live, edges are unique,
// authorities are floored at 1, remove_node records carry their
// incident edges).
func newOverlay(base *expertgraph.Graph, muts []Mutation, nodes, edges int) *OverlayView {
	o := &OverlayView{
		base:  base,
		nb:    base.NumNodes(),
		nbSk:  base.NumSkills(),
		nodes: nodes,
		edges: edges,
	}
	o.minW, o.maxW = base.EdgeWeightBounds()
	o.minInv, o.maxInv = base.InvAuthorityBounds()
	haveW := base.NumEdges() > 0
	haveInv := o.nb > base.NumRemoved()
	invRescan := false
	wRescan := false

	// addedHolders accumulates per-skill holder additions and
	// droppedHolders per-skill removals (tombstoned nodes); both are
	// merged into holdersPatch at the end.
	var addedHolders map[expertgraph.SkillID][]expertgraph.NodeID
	var droppedHolders map[expertgraph.SkillID]map[expertgraph.NodeID]struct{}

	skillID := func(name string) expertgraph.SkillID {
		if id, ok := base.SkillID(name); ok {
			return id
		}
		if id, ok := o.newSkillIDs[name]; ok {
			return id
		}
		id := expertgraph.SkillID(o.nbSk + len(o.newSkillNames))
		o.newSkillNames = append(o.newSkillNames, name)
		if o.newSkillIDs == nil {
			o.newSkillIDs = make(map[string]expertgraph.SkillID)
		}
		o.newSkillIDs[name] = id
		return id
	}
	addHolder := func(s expertgraph.SkillID, u expertgraph.NodeID) {
		if addedHolders == nil {
			addedHolders = make(map[expertgraph.SkillID][]expertgraph.NodeID)
		}
		addedHolders[s] = append(addedHolders[s], u)
	}
	dropHolder := func(s expertgraph.SkillID, u expertgraph.NodeID) {
		if droppedHolders == nil {
			droppedHolders = make(map[expertgraph.SkillID]map[expertgraph.NodeID]struct{})
		}
		set := droppedHolders[s]
		if set == nil {
			set = make(map[expertgraph.NodeID]struct{})
			droppedHolders[s] = set
		}
		set[u] = struct{}{}
	}
	foldInv := func(inv float64) {
		if !haveInv {
			o.minInv, o.maxInv = inv, inv
			haveInv = true
			return
		}
		if inv < o.minInv {
			o.minInv = inv
		}
		if inv > o.maxInv {
			o.maxInv = inv
		}
	}
	foldW := func(w float64) {
		if !haveW {
			o.minW, o.maxW = w, w
			haveW = true
			return
		}
		if w < o.minW {
			o.minW = w
		}
		if w > o.maxW {
			o.maxW = w
		}
	}
	// retireW flags the rescan when a removed or replaced edge weight
	// may have held the current extreme.
	retireW := func(w float64) {
		if w == o.minW || w == o.maxW {
			wRescan = true
		}
	}
	effInv := func(u expertgraph.NodeID) float64 {
		if int(u) >= o.nb {
			return o.newInv[int(u)-o.nb]
		}
		if ov, ok := o.authPatch[u]; ok {
			return ov.inv
		}
		return base.InvAuthority(u)
	}

	for _, m := range muts {
		switch m.Op {
		case OpAddNode:
			id := expertgraph.NodeID(o.nb + len(o.newNames))
			inv := 1 / m.Authority
			o.newNames = append(o.newNames, m.Name)
			o.newAuth = append(o.newAuth, m.Authority)
			o.newInv = append(o.newInv, inv)
			var sk []expertgraph.SkillID
			for _, name := range m.Skills {
				s := skillID(name)
				if containsSkill(sk, s) {
					continue
				}
				sk = append(sk, s)
				addHolder(s, id)
			}
			o.newSkills = append(o.newSkills, sk)
			o.newAdj = append(o.newAdj, nil)
			if !invRescan {
				foldInv(inv)
			}

		case OpAddEdge:
			o.addHalf(m.U, halfEdge{to: m.V, w: m.W})
			o.addHalf(m.V, halfEdge{to: m.U, w: m.W})
			if !wRescan {
				foldW(m.W)
			}

		case OpRemoveEdge:
			o.maskEdge(m.U, m.V)
			retireW(m.W)

		case OpUpdateEdge:
			if o.updateHalf(m.U, m.V, m.W) {
				o.updateHalf(m.V, m.U, m.W)
			} else {
				// A base edge: mask the CSR entry and carry the new
				// weight as delta halves.
				o.maskEdge(m.U, m.V)
				o.addHalf(m.U, halfEdge{to: m.V, w: m.W})
				o.addHalf(m.V, halfEdge{to: m.U, w: m.W})
			}
			retireW(m.OldW)
			if !wRescan {
				foldW(m.W)
			}

		case OpRemoveNode:
			for _, e := range m.Edges {
				o.maskEdge(m.Node, e.V)
				retireW(e.W)
			}
			// The tombstone retires the node's authority from the
			// bounds and its skills from the inverted index.
			if inv := effInv(m.Node); inv == o.minInv || inv == o.maxInv {
				invRescan = true
			}
			for _, s := range o.effectiveSkills(m.Node) {
				dropHolder(s, m.Node)
			}
			if int(m.Node) >= o.nb {
				o.newSkills[int(m.Node)-o.nb] = nil
			} else {
				if o.skillPatch == nil {
					o.skillPatch = make(map[expertgraph.NodeID][]expertgraph.SkillID)
				}
				o.skillPatch[m.Node] = []expertgraph.SkillID{}
			}
			if o.removedNodes == nil {
				o.removedNodes = make(map[expertgraph.NodeID]struct{})
			}
			o.removedNodes[m.Node] = struct{}{}

		case OpUpdateNode:
			if m.SetAuthority != nil {
				auth := *m.SetAuthority
				inv := 1 / auth
				old := effInv(m.Node)
				// Replacing the value that holds the current extreme may
				// shrink the bounds — something a monotone fold cannot
				// express — so flag a full rescan for the end. Folding
				// handles every other case exactly.
				if old == o.minInv || old == o.maxInv {
					invRescan = true
				}
				if int(m.Node) >= o.nb {
					i := int(m.Node) - o.nb
					o.newAuth[i], o.newInv[i] = auth, inv
				} else {
					if o.authPatch == nil {
						o.authPatch = make(map[expertgraph.NodeID]authOverride)
					}
					o.authPatch[m.Node] = authOverride{auth: auth, inv: inv}
				}
				if !invRescan {
					foldInv(inv)
				}
			}
			for _, name := range m.AddSkills {
				s := skillID(name)
				if o.hasSkillDuringBuild(m.Node, s) {
					continue
				}
				if int(m.Node) >= o.nb {
					i := int(m.Node) - o.nb
					o.newSkills[i] = append(o.newSkills[i], s)
				} else {
					if o.skillPatch == nil {
						o.skillPatch = make(map[expertgraph.NodeID][]expertgraph.SkillID)
					}
					if _, ok := o.skillPatch[m.Node]; !ok {
						o.skillPatch[m.Node] = append([]expertgraph.SkillID(nil), base.Skills(m.Node)...)
					}
					o.skillPatch[m.Node] = append(o.skillPatch[m.Node], s)
				}
				addHolder(s, m.Node)
			}
		}
	}

	if invRescan {
		first := true
		lo, hi := 0.0, 0.0
		for u := 0; u < o.nodes; u++ {
			if o.isRemoved(expertgraph.NodeID(u)) {
				continue
			}
			inv := effInv(expertgraph.NodeID(u))
			if first {
				lo, hi = inv, inv
				first = false
				continue
			}
			if inv < lo {
				lo = inv
			}
			if inv > hi {
				hi = inv
			}
		}
		o.minInv, o.maxInv = lo, hi
	}
	if wRescan {
		// Exact recomputation over the effective edge set (base minus
		// masks, plus delta halves), matching what Build would compute.
		first := true
		lo, hi := 0.0, 0.0
		for u := 0; u < o.nodes; u++ {
			o.Neighbors(expertgraph.NodeID(u), func(_ expertgraph.NodeID, w float64) bool {
				if first {
					lo, hi = w, w
					first = false
					return true
				}
				if w < lo {
					lo = w
				}
				if w > hi {
					hi = w
				}
				return true
			})
		}
		o.minW, o.maxW = lo, hi
	}

	if len(addedHolders) > 0 || len(droppedHolders) > 0 {
		o.holdersPatch = make(map[expertgraph.SkillID][]expertgraph.NodeID, len(addedHolders)+len(droppedHolders))
		patchSkill := func(s expertgraph.SkillID) {
			if _, done := o.holdersPatch[s]; done {
				return
			}
			dropped := droppedHolders[s]
			var baseHolders []expertgraph.NodeID
			if int(s) < o.nbSk {
				baseHolders = base.ExpertsWithSkill(s)
			}
			if len(dropped) > 0 {
				kept := make([]expertgraph.NodeID, 0, len(baseHolders))
				for _, u := range baseHolders {
					if _, gone := dropped[u]; !gone {
						kept = append(kept, u)
					}
				}
				baseHolders = kept
			}
			added := addedHolders[s]
			if len(dropped) > 0 && len(added) > 0 {
				kept := make([]expertgraph.NodeID, 0, len(added))
				for _, u := range added {
					if _, gone := dropped[u]; !gone {
						kept = append(kept, u)
					}
				}
				added = kept
			} else if len(added) > 0 {
				added = append([]expertgraph.NodeID(nil), added...)
			}
			sortNodeIDs(added)
			o.holdersPatch[s] = mergeSortedNodeIDs(baseHolders, added)
		}
		for s := range addedHolders {
			patchSkill(s)
		}
		for s := range droppedHolders {
			patchSkill(s)
		}
	}
	return o
}

func (o *OverlayView) addHalf(u expertgraph.NodeID, e halfEdge) {
	if int(u) >= o.nb {
		i := int(u) - o.nb
		o.newAdj[i] = append(o.newAdj[i], e)
		return
	}
	if o.extraAdj == nil {
		o.extraAdj = make(map[expertgraph.NodeID][]halfEdge)
	}
	o.extraAdj[u] = append(o.extraAdj[u], e)
}

// dropHalf deletes the delta half-edge u→v if present, reporting
// whether it existed.
func (o *OverlayView) dropHalf(u, v expertgraph.NodeID) bool {
	var adj []halfEdge
	if int(u) >= o.nb {
		adj = o.newAdj[int(u)-o.nb]
	} else {
		adj = o.extraAdj[u]
	}
	for i, e := range adj {
		if e.to == v {
			last := len(adj) - 1
			adj[i] = adj[last]
			adj = adj[:last]
			if int(u) >= o.nb {
				o.newAdj[int(u)-o.nb] = adj
			} else if last == 0 {
				delete(o.extraAdj, u)
			} else {
				o.extraAdj[u] = adj
			}
			return true
		}
	}
	return false
}

// updateHalf re-weights the delta half-edge u→v in place, reporting
// whether it existed.
func (o *OverlayView) updateHalf(u, v expertgraph.NodeID, w float64) bool {
	var adj []halfEdge
	if int(u) >= o.nb {
		adj = o.newAdj[int(u)-o.nb]
	} else {
		adj = o.extraAdj[u]
	}
	for i := range adj {
		if adj[i].to == v {
			adj[i].w = w
			return true
		}
	}
	return false
}

// maskEdge removes the effective edge (u, v) mid-fold: a delta half
// pair is dropped outright; a base CSR edge is masked by key. An edge
// that was re-weighted earlier in the delta lives as delta halves over
// an already-masked base entry, so dropping the halves suffices.
func (o *OverlayView) maskEdge(u, v expertgraph.NodeID) {
	if o.dropHalf(u, v) {
		o.dropHalf(v, u)
		return
	}
	if o.removedEdges == nil {
		o.removedEdges = make(map[uint64]struct{})
		o.removedDeg = make(map[expertgraph.NodeID]int)
	}
	o.removedEdges[edgeKey(u, v)] = struct{}{}
	o.removedDeg[u]++
	o.removedDeg[v]++
}

// isRemoved reports whether u is tombstoned — by this delta or already
// in the base graph.
func (o *OverlayView) isRemoved(u expertgraph.NodeID) bool {
	if _, gone := o.removedNodes[u]; gone {
		return true
	}
	return int(u) < o.nb && o.base.Removed(u)
}

// effectiveSkills returns u's skill set mid-fold (shared slices; do
// not modify).
func (o *OverlayView) effectiveSkills(u expertgraph.NodeID) []expertgraph.SkillID {
	if int(u) >= o.nb {
		return o.newSkills[int(u)-o.nb]
	}
	if sk, ok := o.skillPatch[u]; ok {
		return sk
	}
	return o.base.Skills(u)
}

// hasSkillDuringBuild checks the effective skill set of u mid-fold.
func (o *OverlayView) hasSkillDuringBuild(u expertgraph.NodeID, s expertgraph.SkillID) bool {
	return containsSkill(o.effectiveSkills(u), s)
}

func containsSkill(sk []expertgraph.SkillID, s expertgraph.SkillID) bool {
	for _, have := range sk {
		if have == s {
			return true
		}
	}
	return false
}

func sortNodeIDs(ids []expertgraph.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// mergeSortedNodeIDs merges two sorted, disjoint ID lists.
func mergeSortedNodeIDs(a, b []expertgraph.NodeID) []expertgraph.NodeID {
	out := make([]expertgraph.NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// --- expertgraph.GraphView ----------------------------------------------

// NumNodes returns the expert count at this epoch (tombstoned experts
// keep their ID slot and stay counted, exactly as in a materialized
// graph).
func (o *OverlayView) NumNodes() int { return o.nodes }

// NumEdges returns the undirected edge count at this epoch.
func (o *OverlayView) NumEdges() int { return o.edges }

// NumSkills returns the size of the skill universe at this epoch.
func (o *OverlayView) NumSkills() int { return o.nbSk + len(o.newSkillNames) }

// Name returns the display name of expert u.
func (o *OverlayView) Name(u expertgraph.NodeID) string {
	if int(u) >= o.nb {
		return o.newNames[int(u)-o.nb]
	}
	return o.base.Name(u)
}

// Authority returns a(u), the raw authority of expert u.
func (o *OverlayView) Authority(u expertgraph.NodeID) float64 {
	if int(u) >= o.nb {
		return o.newAuth[int(u)-o.nb]
	}
	if len(o.authPatch) != 0 {
		if ov, ok := o.authPatch[u]; ok {
			return ov.auth
		}
	}
	return o.base.Authority(u)
}

// InvAuthority returns a'(u) = 1/a(u).
func (o *OverlayView) InvAuthority(u expertgraph.NodeID) float64 {
	if int(u) >= o.nb {
		return o.newInv[int(u)-o.nb]
	}
	if len(o.authPatch) != 0 {
		if ov, ok := o.authPatch[u]; ok {
			return ov.inv
		}
	}
	return o.base.InvAuthority(u)
}

// Pubs returns the publication count of expert u (always 0 for experts
// added through the mutation API, which carries no publication field).
func (o *OverlayView) Pubs(u expertgraph.NodeID) int {
	if int(u) >= o.nb {
		return 0
	}
	return o.base.Pubs(u)
}

// Degree returns the number of neighbours of expert u.
func (o *OverlayView) Degree(u expertgraph.NodeID) int {
	if _, gone := o.removedNodes[u]; gone {
		return 0
	}
	if int(u) >= o.nb {
		return len(o.newAdj[int(u)-o.nb])
	}
	d := o.base.Degree(u)
	if len(o.removedDeg) != 0 {
		d -= o.removedDeg[u]
	}
	if len(o.extraAdj) != 0 {
		d += len(o.extraAdj[u])
	}
	return d
}

// Neighbors visits base edges first (minus any the delta masked), then
// delta edges.
func (o *OverlayView) Neighbors(u expertgraph.NodeID, fn func(v expertgraph.NodeID, w float64) bool) {
	if _, gone := o.removedNodes[u]; gone {
		return
	}
	if int(u) >= o.nb {
		for _, e := range o.newAdj[int(u)-o.nb] {
			if !fn(e.to, e.w) {
				return
			}
		}
		return
	}
	extra := o.extraAdj[u]
	if len(o.removedEdges) == 0 {
		if len(extra) == 0 {
			o.base.Neighbors(u, fn)
			return
		}
		stopped := false
		o.base.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			if !fn(v, w) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	} else {
		stopped := false
		o.base.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			if _, masked := o.removedEdges[edgeKey(u, v)]; masked {
				return true
			}
			if !fn(v, w) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
	for _, e := range extra {
		if !fn(e.to, e.w) {
			return
		}
	}
}

// EdgeWeight returns the weight of edge (u,v) and whether it exists.
// Delta halves take precedence (they carry re-weights); masked base
// entries are invisible.
func (o *OverlayView) EdgeWeight(u, v expertgraph.NodeID) (float64, bool) {
	var extra []halfEdge
	if int(u) >= o.nb {
		extra = o.newAdj[int(u)-o.nb]
	} else {
		extra = o.extraAdj[u]
	}
	for _, e := range extra {
		if e.to == v {
			return e.w, true
		}
	}
	if int(u) < o.nb && int(v) < o.nb {
		if len(o.removedEdges) != 0 {
			if _, masked := o.removedEdges[edgeKey(u, v)]; masked {
				return 0, false
			}
		}
		return o.base.EdgeWeight(u, v)
	}
	return 0, false
}

// SkillID resolves a skill name to its ID.
func (o *OverlayView) SkillID(name string) (expertgraph.SkillID, bool) {
	if id, ok := o.base.SkillID(name); ok {
		return id, true
	}
	id, ok := o.newSkillIDs[name]
	return id, ok
}

// SkillName returns the name of skill s.
func (o *OverlayView) SkillName(s expertgraph.SkillID) string {
	if int(s) >= o.nbSk {
		return o.newSkillNames[int(s)-o.nbSk]
	}
	return o.base.SkillName(s)
}

// Skills returns the skills held by expert u. The returned slice is
// shared with the view and must not be modified.
func (o *OverlayView) Skills(u expertgraph.NodeID) []expertgraph.SkillID {
	if int(u) >= o.nb {
		return o.newSkills[int(u)-o.nb]
	}
	if len(o.skillPatch) != 0 {
		if sk, ok := o.skillPatch[u]; ok {
			return sk
		}
	}
	return o.base.Skills(u)
}

// HasSkill reports whether expert u holds skill s.
func (o *OverlayView) HasSkill(u expertgraph.NodeID, s expertgraph.SkillID) bool {
	return containsSkill(o.Skills(u), s)
}

// ExpertsWithSkill returns C(s) sorted by NodeID. The returned slice
// is shared with the view and must not be modified.
func (o *OverlayView) ExpertsWithSkill(s expertgraph.SkillID) []expertgraph.NodeID {
	if len(o.holdersPatch) != 0 {
		if holders, ok := o.holdersPatch[s]; ok {
			return holders
		}
	}
	if int(s) < o.nbSk {
		return o.base.ExpertsWithSkill(s)
	}
	return nil
}

// EdgeWeightBounds returns the exact (min, max) edge weight at this
// epoch — identical to what materializing the graph would compute.
func (o *OverlayView) EdgeWeightBounds() (lo, hi float64) { return o.minW, o.maxW }

// InvAuthorityBounds returns the exact (min, max) inverse authority at
// this epoch, over live (non-tombstoned) experts.
func (o *OverlayView) InvAuthorityBounds() (lo, hi float64) { return o.minInv, o.maxInv }

// ValidNode reports whether u is a live node of this view (tombstoned
// experts fail, as on a materialized graph).
func (o *OverlayView) ValidNode(u expertgraph.NodeID) bool {
	return u >= 0 && int(u) < o.nodes && !o.isRemoved(u)
}

var _ expertgraph.GraphView = (*OverlayView)(nil)
