package live

import (
	"sort"

	"authteam/internal/expertgraph"
)

// OverlayView answers expertgraph.GraphView reads for one epoch
// straight from the frozen base CSR plus per-node delta patches —
// the zero-materialization read path of the live store. Building one
// costs O(|delta|): the base graph's packed arrays are shared, and
// only the nodes, edges and skills the delta touches get patch
// entries. Reads on untouched nodes are a map miss away from the raw
// CSR speed; reads on patched nodes consult small merged slices
// computed once at construction.
//
// The view is semantically identical to the graph Snapshot.Graph()
// would materialize: same IDs (nodes, skills), same holder ordering
// (ExpertsWithSkill stays sorted by NodeID), same exact normalization
// bounds. Only the Neighbors visit order differs (base edges first,
// then delta edges), which GraphView leaves implementation-defined.
//
// OverlayView is immutable after construction and safe for concurrent
// readers.
type OverlayView struct {
	base  *expertgraph.Graph
	nb    int // base node count
	nbSk  int // base skill count
	nodes int
	edges int

	// Nodes appended by the delta (IDs nb, nb+1, …).
	newNames  []string
	newAuth   []float64
	newInv    []float64
	newSkills [][]expertgraph.SkillID
	newAdj    [][]halfEdge

	// Patches on base nodes. skillPatch holds the *full* merged skill
	// list (base skills + grants, in grant order) so Skills stays a
	// single lookup.
	authPatch  map[expertgraph.NodeID]authOverride
	extraAdj   map[expertgraph.NodeID][]halfEdge
	skillPatch map[expertgraph.NodeID][]expertgraph.SkillID

	// Skill universe extensions and patched inverted-index rows
	// (full merged holder lists, sorted by NodeID).
	newSkillNames []string
	newSkillIDs   map[string]expertgraph.SkillID
	holdersPatch  map[expertgraph.SkillID][]expertgraph.NodeID

	minW, maxW     float64
	minInv, maxInv float64
}

type halfEdge struct {
	to expertgraph.NodeID
	w  float64
}

type authOverride struct {
	auth, inv float64
}

// newOverlay folds the delta into patch structures over base. muts
// must be the validated mutation log of the target epoch (the store
// guarantees referenced nodes exist, edges are unique, authorities are
// floored at 1).
func newOverlay(base *expertgraph.Graph, muts []Mutation, nodes, edges int) *OverlayView {
	o := &OverlayView{
		base:  base,
		nb:    base.NumNodes(),
		nbSk:  base.NumSkills(),
		nodes: nodes,
		edges: edges,
	}
	o.minW, o.maxW = base.EdgeWeightBounds()
	o.minInv, o.maxInv = base.InvAuthorityBounds()
	haveW := base.NumEdges() > 0
	haveInv := o.nb > 0
	invRescan := false

	// addedHolders accumulates per-skill holder additions; merged and
	// sorted into holdersPatch at the end.
	var addedHolders map[expertgraph.SkillID][]expertgraph.NodeID

	skillID := func(name string) expertgraph.SkillID {
		if id, ok := base.SkillID(name); ok {
			return id
		}
		if id, ok := o.newSkillIDs[name]; ok {
			return id
		}
		id := expertgraph.SkillID(o.nbSk + len(o.newSkillNames))
		o.newSkillNames = append(o.newSkillNames, name)
		if o.newSkillIDs == nil {
			o.newSkillIDs = make(map[string]expertgraph.SkillID)
		}
		o.newSkillIDs[name] = id
		return id
	}
	addHolder := func(s expertgraph.SkillID, u expertgraph.NodeID) {
		if addedHolders == nil {
			addedHolders = make(map[expertgraph.SkillID][]expertgraph.NodeID)
		}
		addedHolders[s] = append(addedHolders[s], u)
	}
	foldInv := func(inv float64) {
		if !haveInv {
			o.minInv, o.maxInv = inv, inv
			haveInv = true
			return
		}
		if inv < o.minInv {
			o.minInv = inv
		}
		if inv > o.maxInv {
			o.maxInv = inv
		}
	}
	effInv := func(u expertgraph.NodeID) float64 {
		if int(u) >= o.nb {
			return o.newInv[int(u)-o.nb]
		}
		if ov, ok := o.authPatch[u]; ok {
			return ov.inv
		}
		return base.InvAuthority(u)
	}

	for _, m := range muts {
		switch m.Op {
		case OpAddNode:
			id := expertgraph.NodeID(o.nb + len(o.newNames))
			inv := 1 / m.Authority
			o.newNames = append(o.newNames, m.Name)
			o.newAuth = append(o.newAuth, m.Authority)
			o.newInv = append(o.newInv, inv)
			var sk []expertgraph.SkillID
			for _, name := range m.Skills {
				s := skillID(name)
				if containsSkill(sk, s) {
					continue
				}
				sk = append(sk, s)
				addHolder(s, id)
			}
			o.newSkills = append(o.newSkills, sk)
			o.newAdj = append(o.newAdj, nil)
			foldInv(inv)

		case OpAddEdge:
			o.addHalf(m.U, halfEdge{to: m.V, w: m.W})
			o.addHalf(m.V, halfEdge{to: m.U, w: m.W})
			if !haveW {
				o.minW, o.maxW = m.W, m.W
				haveW = true
			} else {
				if m.W < o.minW {
					o.minW = m.W
				}
				if m.W > o.maxW {
					o.maxW = m.W
				}
			}

		case OpUpdateNode:
			if m.SetAuthority != nil {
				auth := *m.SetAuthority
				inv := 1 / auth
				old := effInv(m.Node)
				// Replacing the value that holds the current extreme may
				// shrink the bounds — something a monotone fold cannot
				// express — so flag a full rescan for the end. Folding
				// handles every other case exactly.
				if old == o.minInv || old == o.maxInv {
					invRescan = true
				}
				if int(m.Node) >= o.nb {
					i := int(m.Node) - o.nb
					o.newAuth[i], o.newInv[i] = auth, inv
				} else {
					if o.authPatch == nil {
						o.authPatch = make(map[expertgraph.NodeID]authOverride)
					}
					o.authPatch[m.Node] = authOverride{auth: auth, inv: inv}
				}
				if !invRescan {
					foldInv(inv)
				}
			}
			for _, name := range m.AddSkills {
				s := skillID(name)
				if o.hasSkillDuringBuild(m.Node, s) {
					continue
				}
				if int(m.Node) >= o.nb {
					i := int(m.Node) - o.nb
					o.newSkills[i] = append(o.newSkills[i], s)
				} else {
					if o.skillPatch == nil {
						o.skillPatch = make(map[expertgraph.NodeID][]expertgraph.SkillID)
					}
					if _, ok := o.skillPatch[m.Node]; !ok {
						o.skillPatch[m.Node] = append([]expertgraph.SkillID(nil), base.Skills(m.Node)...)
					}
					o.skillPatch[m.Node] = append(o.skillPatch[m.Node], s)
				}
				addHolder(s, m.Node)
			}
		}
	}

	if invRescan && o.nodes > 0 {
		first := true
		for u := 0; u < o.nodes; u++ {
			inv := effInv(expertgraph.NodeID(u))
			if first {
				o.minInv, o.maxInv = inv, inv
				first = false
				continue
			}
			if inv < o.minInv {
				o.minInv = inv
			}
			if inv > o.maxInv {
				o.maxInv = inv
			}
		}
	}

	if len(addedHolders) > 0 {
		o.holdersPatch = make(map[expertgraph.SkillID][]expertgraph.NodeID, len(addedHolders))
		for s, added := range addedHolders {
			sortNodeIDs(added)
			var baseHolders []expertgraph.NodeID
			if int(s) < o.nbSk {
				baseHolders = base.ExpertsWithSkill(s)
			}
			o.holdersPatch[s] = mergeSortedNodeIDs(baseHolders, added)
		}
	}
	return o
}

func (o *OverlayView) addHalf(u expertgraph.NodeID, e halfEdge) {
	if int(u) >= o.nb {
		i := int(u) - o.nb
		o.newAdj[i] = append(o.newAdj[i], e)
		return
	}
	if o.extraAdj == nil {
		o.extraAdj = make(map[expertgraph.NodeID][]halfEdge)
	}
	o.extraAdj[u] = append(o.extraAdj[u], e)
}

// hasSkillDuringBuild checks the effective skill set of u mid-fold.
func (o *OverlayView) hasSkillDuringBuild(u expertgraph.NodeID, s expertgraph.SkillID) bool {
	if int(u) >= o.nb {
		return containsSkill(o.newSkills[int(u)-o.nb], s)
	}
	if sk, ok := o.skillPatch[u]; ok {
		return containsSkill(sk, s)
	}
	return int(s) < o.nbSk && o.base.HasSkill(u, s)
}

func containsSkill(sk []expertgraph.SkillID, s expertgraph.SkillID) bool {
	for _, have := range sk {
		if have == s {
			return true
		}
	}
	return false
}

func sortNodeIDs(ids []expertgraph.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// mergeSortedNodeIDs merges two sorted, disjoint ID lists.
func mergeSortedNodeIDs(a, b []expertgraph.NodeID) []expertgraph.NodeID {
	out := make([]expertgraph.NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// --- expertgraph.GraphView ----------------------------------------------

// NumNodes returns the expert count at this epoch.
func (o *OverlayView) NumNodes() int { return o.nodes }

// NumEdges returns the undirected edge count at this epoch.
func (o *OverlayView) NumEdges() int { return o.edges }

// NumSkills returns the size of the skill universe at this epoch.
func (o *OverlayView) NumSkills() int { return o.nbSk + len(o.newSkillNames) }

// Name returns the display name of expert u.
func (o *OverlayView) Name(u expertgraph.NodeID) string {
	if int(u) >= o.nb {
		return o.newNames[int(u)-o.nb]
	}
	return o.base.Name(u)
}

// Authority returns a(u), the raw authority of expert u.
func (o *OverlayView) Authority(u expertgraph.NodeID) float64 {
	if int(u) >= o.nb {
		return o.newAuth[int(u)-o.nb]
	}
	if len(o.authPatch) != 0 {
		if ov, ok := o.authPatch[u]; ok {
			return ov.auth
		}
	}
	return o.base.Authority(u)
}

// InvAuthority returns a'(u) = 1/a(u).
func (o *OverlayView) InvAuthority(u expertgraph.NodeID) float64 {
	if int(u) >= o.nb {
		return o.newInv[int(u)-o.nb]
	}
	if len(o.authPatch) != 0 {
		if ov, ok := o.authPatch[u]; ok {
			return ov.inv
		}
	}
	return o.base.InvAuthority(u)
}

// Pubs returns the publication count of expert u (always 0 for experts
// added through the mutation API, which carries no publication field).
func (o *OverlayView) Pubs(u expertgraph.NodeID) int {
	if int(u) >= o.nb {
		return 0
	}
	return o.base.Pubs(u)
}

// Degree returns the number of neighbours of expert u.
func (o *OverlayView) Degree(u expertgraph.NodeID) int {
	if int(u) >= o.nb {
		return len(o.newAdj[int(u)-o.nb])
	}
	d := o.base.Degree(u)
	if len(o.extraAdj) != 0 {
		d += len(o.extraAdj[u])
	}
	return d
}

// Neighbors visits base edges first, then delta edges.
func (o *OverlayView) Neighbors(u expertgraph.NodeID, fn func(v expertgraph.NodeID, w float64) bool) {
	if int(u) >= o.nb {
		for _, e := range o.newAdj[int(u)-o.nb] {
			if !fn(e.to, e.w) {
				return
			}
		}
		return
	}
	if len(o.extraAdj) == 0 {
		o.base.Neighbors(u, fn)
		return
	}
	extra, ok := o.extraAdj[u]
	if !ok {
		o.base.Neighbors(u, fn)
		return
	}
	stopped := false
	o.base.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
		if !fn(v, w) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, e := range extra {
		if !fn(e.to, e.w) {
			return
		}
	}
}

// EdgeWeight returns the weight of edge (u,v) and whether it exists.
func (o *OverlayView) EdgeWeight(u, v expertgraph.NodeID) (float64, bool) {
	if int(u) < o.nb && int(v) < o.nb {
		if w, ok := o.base.EdgeWeight(u, v); ok {
			return w, true
		}
	}
	var extra []halfEdge
	if int(u) >= o.nb {
		extra = o.newAdj[int(u)-o.nb]
	} else {
		extra = o.extraAdj[u]
	}
	for _, e := range extra {
		if e.to == v {
			return e.w, true
		}
	}
	return 0, false
}

// SkillID resolves a skill name to its ID.
func (o *OverlayView) SkillID(name string) (expertgraph.SkillID, bool) {
	if id, ok := o.base.SkillID(name); ok {
		return id, true
	}
	id, ok := o.newSkillIDs[name]
	return id, ok
}

// SkillName returns the name of skill s.
func (o *OverlayView) SkillName(s expertgraph.SkillID) string {
	if int(s) >= o.nbSk {
		return o.newSkillNames[int(s)-o.nbSk]
	}
	return o.base.SkillName(s)
}

// Skills returns the skills held by expert u. The returned slice is
// shared with the view and must not be modified.
func (o *OverlayView) Skills(u expertgraph.NodeID) []expertgraph.SkillID {
	if int(u) >= o.nb {
		return o.newSkills[int(u)-o.nb]
	}
	if len(o.skillPatch) != 0 {
		if sk, ok := o.skillPatch[u]; ok {
			return sk
		}
	}
	return o.base.Skills(u)
}

// HasSkill reports whether expert u holds skill s.
func (o *OverlayView) HasSkill(u expertgraph.NodeID, s expertgraph.SkillID) bool {
	return containsSkill(o.Skills(u), s)
}

// ExpertsWithSkill returns C(s) sorted by NodeID. The returned slice
// is shared with the view and must not be modified.
func (o *OverlayView) ExpertsWithSkill(s expertgraph.SkillID) []expertgraph.NodeID {
	if len(o.holdersPatch) != 0 {
		if holders, ok := o.holdersPatch[s]; ok {
			return holders
		}
	}
	if int(s) < o.nbSk {
		return o.base.ExpertsWithSkill(s)
	}
	return nil
}

// EdgeWeightBounds returns the exact (min, max) edge weight at this
// epoch — identical to what materializing the graph would compute.
func (o *OverlayView) EdgeWeightBounds() (lo, hi float64) { return o.minW, o.maxW }

// InvAuthorityBounds returns the exact (min, max) inverse authority at
// this epoch.
func (o *OverlayView) InvAuthorityBounds() (lo, hi float64) { return o.minInv, o.maxInv }

// ValidNode reports whether u is a node of this view.
func (o *OverlayView) ValidNode(u expertgraph.NodeID) bool {
	return u >= 0 && int(u) < o.nodes
}

var _ expertgraph.GraphView = (*OverlayView)(nil)
