package live

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"authteam/internal/expertgraph"
	"authteam/internal/pll"
)

// TestCloseRejectsMutations pins the Close contract on both store
// flavors: after Close every mutator fails with ErrClosed — with a
// journal (where the journal's own closed state used to catch it) and
// without one (where mutations previously kept succeeding silently).
func TestCloseRejectsMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		name string
		cfg  func(t *testing.T) Config
	}{
		{"journalless", func(t *testing.T) Config { return Config{} }},
		{"journaled", func(t *testing.T) Config {
			return Config{JournalPath: filepath.Join(t.TempDir(), "wal.jsonl")}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := mustOpen(t, testGraph(rng, 15), tc.cfg(t))
			if _, err := s.AddCollaboration(0, 9, 0.3); err != nil {
				t.Fatal(err)
			}
			epoch := s.Epoch()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.AddExpert("late", 2, nil); !errors.Is(err, ErrClosed) {
				t.Errorf("AddExpert after Close: %v, want ErrClosed", err)
			}
			if _, err := s.AddCollaboration(1, 2, 0.5); !errors.Is(err, ErrClosed) {
				t.Errorf("AddCollaboration after Close: %v, want ErrClosed", err)
			}
			auth := 9.0
			if _, err := s.UpdateExpert(1, &auth, nil); !errors.Is(err, ErrClosed) {
				t.Errorf("UpdateExpert after Close: %v, want ErrClosed", err)
			}
			// Reads survive; rejected mutations advanced nothing.
			if s.Epoch() != epoch || s.Snapshot().NumNodes() != 15 {
				t.Errorf("closed store state moved: epoch %d nodes %d", s.Epoch(), s.Snapshot().NumNodes())
			}
			if err := s.Close(); err != nil { // idempotent
				t.Errorf("second Close: %v", err)
			}
		})
	}
}

// TestRebaseInMemory pins the in-place re-base: after Compact the
// store's base graph IS the fold epoch's graph, the resident log is
// empty, pre-fold snapshots keep answering from their own base+log,
// and SnapshotAt honestly refuses pre-base epochs while still serving
// post-base ones from the re-based state.
func TestRebaseInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	base := randomBase(t, rng, 30)
	st := mustOpen(t, base, Config{JournalPath: filepath.Join(t.TempDir(), "wal")})

	mutateRandomly(t, st, rng, 50)
	preSnap := st.Snapshot()
	preFP := viewFingerprint(preSnap.View())
	foldEpoch := preSnap.Epoch()

	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.BaseEpoch() != foldEpoch || st.LogLen() != 0 {
		t.Fatalf("re-base: base epoch %d log len %d, want %d/0", st.BaseEpoch(), st.LogLen(), foldEpoch)
	}
	// The re-based store serves the identical graph...
	if !equalFP(viewFingerprint(st.Snapshot().View()), preFP) {
		t.Fatal("graph changed across the re-base")
	}
	// ...and the epoch did not move (a fold is not a mutation).
	if st.Epoch() != foldEpoch {
		t.Fatalf("epoch moved to %d across the re-base", st.Epoch())
	}
	// The pre-fold snapshot is still fully functional (its own base+log).
	if !equalFP(viewFingerprint(preSnap.View()), preFP) {
		t.Fatal("published snapshot broken by the re-base")
	}

	// Mutations continue on the new base; SnapshotAt serves post-base
	// epochs and refuses pre-base ones.
	mutateRandomly(t, st, rng, 20)
	if _, ok := st.SnapshotAt(foldEpoch - 1); ok {
		t.Fatal("SnapshotAt resolved an epoch below the re-based base")
	}
	mid, ok := st.SnapshotAt(foldEpoch + 1)
	if !ok {
		t.Fatal("SnapshotAt refused a post-re-base epoch")
	}
	if mid.Epoch() != foldEpoch+1 {
		t.Fatalf("SnapshotAt epoch %d", mid.Epoch())
	}
	// The re-based snapshot's delta is only the post-fold churn: its
	// materialization must agree with an independent replay fingerprint.
	g, err := st.Snapshot().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !equalFP(viewFingerprint(st.Snapshot().View()), viewFingerprint(g)) {
		t.Fatal("overlay and materialized graph disagree after re-base")
	}
}

// TestMaintainIndexAcrossRebase is the acceptance check for index
// repair surviving a fold: an index anchored shortly *before* a
// re-base must still repair forward (no spurious full rebuild) thanks
// to the retained previous-generation log — and an anchor more than
// one fold generation old must be honestly refused.
func TestMaintainIndexAcrossRebase(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := testGraph(rng, 40)
	st := mustOpen(t, base, Config{JournalPath: filepath.Join(t.TempDir(), "wal")})

	anchor := st.Snapshot() // epoch 0
	ix := pll.Build(base)

	// Churn, then fold: the anchor now predates the base epoch.
	insertEdges(t, st, rng, 25)
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	insertEdges(t, st, rng, 15)
	to := st.Snapshot()
	if anchor.Epoch() >= st.BaseEpoch() {
		t.Fatalf("test setup: anchor %d not below base %d", anchor.Epoch(), st.BaseEpoch())
	}

	repaired, _, ok := MaintainIndex(ix, anchor, to, nil, nil, 0)
	if !ok {
		t.Fatal("repair across one re-base refused — spurious full rebuild")
	}
	g, err := to.Graph()
	if err != nil {
		t.Fatal(err)
	}
	fresh := pll.Build(g)
	for i := 0; i < 200; i++ {
		u := expertgraph.NodeID(rng.Intn(g.NumNodes()))
		v := expertgraph.NodeID(rng.Intn(g.NumNodes()))
		got, want := repaired.Dist(u, v), fresh.Dist(u, v)
		if math.Abs(got-want) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("dist(%d,%d) repaired %v fresh %v", u, v, got, want)
		}
	}

	// The budget still applies across the boundary.
	if _, _, ok := MaintainIndex(ix, anchor, to, nil, nil, 10); ok {
		t.Error("budget of 10 accepted a 40-mutation bridged delta")
	}

	// Two folds later the anchor's history is gone: honest refusal.
	insertEdges(t, st, rng, 5)
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := MaintainIndex(ix, anchor, st.Snapshot(), nil, nil, 0); ok {
		t.Error("repair accepted an anchor two fold generations old")
	}
	// But an anchor from the folded (previous) generation still works.
	if _, _, ok := MaintainIndex(pll.Build(mustGraph(t, to)), to, st.Snapshot(), nil, nil, 0); !ok {
		t.Error("repair refused an anchor from the previous generation")
	}
}

func mustGraph(t *testing.T, sn *Snapshot) *expertgraph.Graph {
	t.Helper()
	g, err := sn.Graph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// insertEdges applies exactly n new collaborations.
func insertEdges(t *testing.T, st *Store, rng *rand.Rand, n int) {
	t.Helper()
	for added := 0; added < n; {
		nn := st.Snapshot().NumNodes()
		u := expertgraph.NodeID(rng.Intn(nn))
		v := expertgraph.NodeID(rng.Intn(nn))
		if u == v {
			continue
		}
		switch _, err := st.AddCollaboration(u, v, 0.05+0.9*rng.Float64()); {
		case err == nil:
			added++
		case errors.Is(err, ErrDuplicateEdge):
		default:
			t.Fatal(err)
		}
	}
}

// TestRebaseSoak is the re-base stress test of the acceptance
// criteria: ≥50k mutations stream into a journaled store while the
// background compactor folds and re-bases, concurrent readers resolve
// overlay views and probe SnapshotAt, and the resident log length —
// which bounds per-epoch OverlayView construction — must stay bounded
// by churn since the last fold instead of growing with the run. Run it
// under -race.
func TestRebaseSoak(t *testing.T) {
	const (
		baseNodes  = 400
		mutations  = 50_000
		minRecords = 2_000
		readers    = 2
	)
	rng := rand.New(rand.NewSource(21))
	base := testGraph(rng, baseNodes)
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	s := mustOpen(t, base, Config{JournalPath: path})

	comp, err := s.StartCompactor(CompactorConfig{
		Interval:   time.Millisecond,
		MinRecords: minRecords,
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		done      atomic.Bool
		maxLogLen atomic.Int64
		views     atomic.Int64
		probes    atomic.Int64
		wg        sync.WaitGroup
	)
	errCh := make(chan error, readers+2)

	// Readers: resolve the epoch's overlay view (the per-query cost the
	// re-base keeps bounded) and sanity-check it against the snapshot
	// counters.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				snap := s.Snapshot()
				g := snap.View()
				if g.NumNodes() != snap.NumNodes() || g.NumEdges() != snap.NumEdges() {
					errCh <- errors.New("view counters disagree with snapshot")
					return
				}
				// A handful of reads per view keeps the readers honest
				// without dominating the writer.
				for i := 0; i < 8; i++ {
					u := expertgraph.NodeID(i * g.NumNodes() / 8)
					g.Degree(u)
					g.Authority(u)
				}
				views.Add(1)
			}
		}()
	}

	// Prober: SnapshotAt across the valid range while folds re-base the
	// store underneath it — the race satellite of this PR.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prng := rand.New(rand.NewSource(22))
		for !done.Load() {
			cur := s.Snapshot()
			lo, hi := cur.BaseEpoch(), cur.Epoch()
			epoch := lo + uint64(prng.Int63n(int64(hi-lo+1)))
			sn, ok := s.SnapshotAt(epoch)
			if ok && sn.Epoch() != epoch {
				errCh <- errors.New("SnapshotAt returned the wrong epoch")
				return
			}
			// ok=false is legitimate: a fold may have re-based past
			// `epoch` between the two reads.
			probes.Add(1)
		}
	}()

	// Writer: a sustained mutation stream, tracking the worst resident
	// log length ever observed. When the fold loop falls behind the
	// unthrottled ingest (guaranteed on a single-CPU runner, where the
	// spinning readers starve the compactor goroutine) the writer
	// applies backpressure — exactly what a production ingest path does
	// — which also makes the log-length bound below deterministic: it
	// can only hold if the compactor genuinely folds and re-bases, and
	// a dead compactor trips the stall deadline instead.
	const highWater = 4 * minRecords
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		wrng := rand.New(rand.NewSource(23))
		for applied := 0; applied < mutations; {
			if s.LogLen() >= highWater {
				stall := time.Now()
				for s.LogLen() >= highWater {
					if time.Since(stall) > 30*time.Second {
						errCh <- errors.New("compactor never caught up: resident log stuck at high water")
						return
					}
					time.Sleep(100 * time.Microsecond)
				}
			}
			n := s.Snapshot().NumNodes()
			var err error
			switch roll := wrng.Intn(20); {
			case roll == 0: // occasional new expert
				_, _, err = s.AddExpert("soak", 1+float64(wrng.Intn(30)), []string{"analytics"})
			case roll <= 4: // authority updates (always apply)
				auth := 1 + float64(wrng.Intn(40))
				_, err = s.UpdateExpert(expertgraph.NodeID(wrng.Intn(n)), &auth, nil)
			default: // edge insertions
				u := expertgraph.NodeID(wrng.Intn(n))
				v := expertgraph.NodeID(wrng.Intn(n))
				if u == v {
					continue
				}
				if _, e := s.AddCollaboration(u, v, 0.05+wrng.Float64()); errors.Is(e, ErrDuplicateEdge) {
					continue
				} else {
					err = e
				}
			}
			if err != nil {
				errCh <- err
				return
			}
			applied++
			if l := int64(s.LogLen()); l > maxLogLen.Load() {
				maxLogLen.Store(l)
			}
		}
	}()

	wg.Wait()
	comp.Stop()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	cs := comp.Stats()
	if cs.Runs == 0 || s.Compactions() == 0 {
		t.Fatalf("background compactor never folded (runs %d, compactions %d)", cs.Runs, s.Compactions())
	}
	if cs.Errors != 0 {
		t.Fatalf("%d background folds failed", cs.Errors)
	}
	// The bound: the single writer checks the high-water mark before
	// every apply, so the resident log can never exceed it by more than
	// the one in-flight mutation — unless the re-base silently stopped
	// resetting the log, in which case it would reach ~50k.
	if lim := int64(highWater + 1); maxLogLen.Load() > lim {
		t.Fatalf("resident log reached %d records (trigger %d, limit %d) — re-base is not bounding memory",
			maxLogLen.Load(), minRecords, lim)
	}
	if s.Epoch() < mutations {
		t.Fatalf("final epoch %d < %d applied mutations", s.Epoch(), mutations)
	}
	if views.Load() == 0 || probes.Load() == 0 {
		t.Fatal("readers or probers never ran")
	}
	t.Logf("rebase soak: %d mutations, %d folds, max resident log %d, final log %d, %d views, %d SnapshotAt probes",
		mutations, s.Compactions(), maxLogLen.Load(), s.LogLen(), views.Load(), probes.Load())

	// Kill and restart: the compacted base + journal suffix must replay
	// to the identical epoch and graph.
	finalEpoch := s.Epoch()
	finalFP := viewFingerprint(s.Snapshot().View())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, base, Config{JournalPath: path})
	if s2.Epoch() != finalEpoch {
		t.Fatalf("replayed epoch %d, want %d", s2.Epoch(), finalEpoch)
	}
	if !equalFP(viewFingerprint(s2.Snapshot().View()), finalFP) {
		t.Fatal("graph after restart differs from pre-restart state")
	}
}
