package live

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"authteam/internal/core"
	"authteam/internal/expertgraph"
	"authteam/internal/team"
	"authteam/internal/transform"
)

// randomBase builds a connected random expert network with continuous
// edge weights (exact float ties between distinct paths have measure
// zero, so shortest-path tie-breaking cannot make the overlay and the
// materialized graph diverge).
func randomBase(t *testing.T, rng *rand.Rand, n int) *expertgraph.Graph {
	t.Helper()
	b := expertgraph.NewBuilder(n, 3*n)
	for i := 0; i < n; i++ {
		skills := []string{fmt.Sprintf("s%d", rng.Intn(12))}
		if rng.Intn(2) == 0 {
			skills = append(skills, fmt.Sprintf("s%d", rng.Intn(12)))
		}
		b.AddNode(fmt.Sprintf("e%d", i), float64(1+rng.Intn(50)), skills...)
	}
	for i := 1; i < n; i++ { // random spanning tree keeps it connected
		b.AddEdge(expertgraph.NodeID(rng.Intn(i)), expertgraph.NodeID(i), 0.1+0.8*rng.Float64())
	}
	for tries := 0; tries < 2*n; tries++ {
		u, v := expertgraph.NodeID(rng.Intn(n)), expertgraph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddEdge(u, v, 0.1+0.8*rng.Float64())
	}
	g, err := b.Build()
	if err != nil {
		// The duplicate edges the loop above can produce are rejected by
		// Build; rebuild without the extras is overkill — just retry the
		// tree-only graph.
		b2 := expertgraph.NewBuilder(n, n)
		for i := 0; i < n; i++ {
			b2.AddNode(fmt.Sprintf("e%d", i), float64(1+rng.Intn(50)), fmt.Sprintf("s%d", rng.Intn(12)))
		}
		for i := 1; i < n; i++ {
			b2.AddEdge(expertgraph.NodeID(rng.Intn(i)), expertgraph.NodeID(i), 0.1+0.8*rng.Float64())
		}
		g, err = b2.Build()
		if err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// randomEdge picks a uniformly-ish random existing edge of the view
// (ok=false when the view has none).
func randomEdge(rng *rand.Rand, g expertgraph.GraphView) (expertgraph.NodeID, expertgraph.NodeID, bool) {
	n := g.NumNodes()
	if n == 0 {
		return 0, 0, false
	}
	start := rng.Intn(n)
	for off := 0; off < n; off++ {
		u := expertgraph.NodeID((start + off) % n)
		var pick expertgraph.NodeID
		seen := 0
		g.Neighbors(u, func(v expertgraph.NodeID, _ float64) bool {
			seen++
			if rng.Intn(seen) == 0 {
				pick = v
			}
			return true
		})
		if seen > 0 {
			return u, pick, true
		}
	}
	return 0, 0, false
}

// mutateRandomly applies count random mutations across every kind —
// inserts, removals, re-weights, authority and skill updates
// (rejections are fine — they advance nothing on either side).
func mutateRandomly(t *testing.T, st *Store, rng *rand.Rand, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		n := st.Snapshot().NumNodes()
		switch rng.Intn(12) {
		case 0, 1: // add expert, sometimes with a brand-new skill
			skills := []string{fmt.Sprintf("s%d", rng.Intn(12))}
			if rng.Intn(3) == 0 {
				skills = append(skills, fmt.Sprintf("x%d", rng.Intn(6)))
			}
			id, _, err := st.AddExpert(fmt.Sprintf("new%d", i), float64(rng.Intn(60)), skills)
			if err != nil {
				t.Fatalf("add expert: %v", err)
			}
			// Wire the newcomer in so every skill stays reachable
			// (the anchor may be tombstoned — a rejection is fine).
			if _, err := st.AddCollaboration(id, expertgraph.NodeID(rng.Intn(n)), 0.05+0.9*rng.Float64()); err != nil && !errors.Is(err, ErrRemovedNode) {
				t.Fatalf("connect new expert: %v", err)
			}
		case 2: // authority update, occasionally extreme (exercises the bound rescan)
			auth := float64(1 + rng.Intn(50))
			if rng.Intn(3) == 0 {
				auth = float64(200 + rng.Intn(100))
			}
			_, _ = st.UpdateExpert(expertgraph.NodeID(rng.Intn(n)), &auth, nil)
		case 3: // skill grant, sometimes a new skill name
			sk := fmt.Sprintf("s%d", rng.Intn(12))
			if rng.Intn(4) == 0 {
				sk = fmt.Sprintf("x%d", rng.Intn(6))
			}
			_, _ = st.UpdateExpert(expertgraph.NodeID(rng.Intn(n)), nil, []string{sk})
		case 4, 5: // edge re-weight, occasionally extreme (bound rescan)
			if u, v, ok := randomEdge(rng, st.Snapshot().View()); ok {
				w := 0.05 + 0.9*rng.Float64()
				if rng.Intn(4) == 0 {
					w = 2 + rng.Float64()
				}
				_, _ = st.UpdateCollaboration(u, v, w)
			}
		case 6, 7: // edge removal
			if u, v, ok := randomEdge(rng, st.Snapshot().View()); ok {
				_, _ = st.RemoveCollaboration(u, v)
			}
		case 8: // node removal (tombstone; rejections on re-removal are fine)
			if rng.Intn(2) == 0 {
				_, _ = st.RemoveExpert(expertgraph.NodeID(rng.Intn(n)))
			}
		default: // edge insertion (duplicates/self-loops rejected harmlessly)
			u, v := expertgraph.NodeID(rng.Intn(n)), expertgraph.NodeID(rng.Intn(n))
			_, _ = st.AddCollaboration(u, v, 0.05+0.9*rng.Float64())
		}
	}
}

// checkViewStructure verifies every GraphView read agrees between the
// overlay and the materialized graph.
func checkViewStructure(t *testing.T, gv expertgraph.GraphView, gm *expertgraph.Graph) {
	t.Helper()
	if gv.NumNodes() != gm.NumNodes() || gv.NumEdges() != gm.NumEdges() || gv.NumSkills() != gm.NumSkills() {
		t.Fatalf("sizes: view (%d,%d,%d) vs graph (%d,%d,%d)",
			gv.NumNodes(), gv.NumEdges(), gv.NumSkills(),
			gm.NumNodes(), gm.NumEdges(), gm.NumSkills())
	}
	if l1, h1 := gv.EdgeWeightBounds(); true {
		if l2, h2 := gm.EdgeWeightBounds(); l1 != l2 || h1 != h2 {
			t.Fatalf("edge bounds: view (%v,%v) vs graph (%v,%v)", l1, h1, l2, h2)
		}
	}
	if l1, h1 := gv.InvAuthorityBounds(); true {
		if l2, h2 := gm.InvAuthorityBounds(); l1 != l2 || h1 != h2 {
			t.Fatalf("inv-authority bounds: view (%v,%v) vs graph (%v,%v)", l1, h1, l2, h2)
		}
	}
	for u := expertgraph.NodeID(0); int(u) < gm.NumNodes(); u++ {
		if gv.Name(u) != gm.Name(u) || gv.Authority(u) != gm.Authority(u) ||
			gv.InvAuthority(u) != gm.InvAuthority(u) || gv.Pubs(u) != gm.Pubs(u) {
			t.Fatalf("node %d records differ", u)
		}
		if gv.ValidNode(u) != gm.ValidNode(u) {
			t.Fatalf("node %d validity: view %v vs graph %v", u, gv.ValidNode(u), gm.ValidNode(u))
		}
		if gv.Degree(u) != gm.Degree(u) {
			t.Fatalf("node %d degree: view %d vs graph %d", u, gv.Degree(u), gm.Degree(u))
		}
		viewAdj := map[expertgraph.NodeID]float64{}
		gv.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			viewAdj[v] = w
			return true
		})
		graphAdj := map[expertgraph.NodeID]float64{}
		gm.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			graphAdj[v] = w
			return true
		})
		if !reflect.DeepEqual(viewAdj, graphAdj) {
			t.Fatalf("node %d adjacency differs: view %v vs graph %v", u, viewAdj, graphAdj)
		}
		vs := append([]expertgraph.SkillID(nil), gv.Skills(u)...)
		ms := append([]expertgraph.SkillID(nil), gm.Skills(u)...)
		if !reflect.DeepEqual(vs, ms) {
			t.Fatalf("node %d skills differ: view %v vs graph %v", u, vs, ms)
		}
	}
	for s := expertgraph.SkillID(0); int(s) < gm.NumSkills(); s++ {
		if gv.SkillName(s) != gm.SkillName(s) {
			t.Fatalf("skill %d name differs", s)
		}
		if id, ok := gv.SkillID(gm.SkillName(s)); !ok || id != s {
			t.Fatalf("skill %q resolves to (%d,%v) on the view, want %d", gm.SkillName(s), id, ok, s)
		}
		if !reflect.DeepEqual(
			append([]expertgraph.NodeID(nil), gv.ExpertsWithSkill(s)...),
			append([]expertgraph.NodeID(nil), gm.ExpertsWithSkill(s)...)) {
			t.Fatalf("holders of %q differ", gm.SkillName(s))
		}
	}
}

// assertViewsIdentical compares two GraphViews over the full read
// surface: sizes, bounds *and* tightness flags, every node record,
// adjacency set, skill table and holder list (order-exact — the
// contract sorts holders). It is the chained-vs-refolded differential:
// a view derived by patching a memoized parent must be observationally
// identical to one folded from the base in a single pass.
func assertViewsIdentical(t *testing.T, a, b expertgraph.GraphView) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() || a.NumSkills() != b.NumSkills() {
		t.Fatalf("sizes: (%d,%d,%d) vs (%d,%d,%d)",
			a.NumNodes(), a.NumEdges(), a.NumSkills(),
			b.NumNodes(), b.NumEdges(), b.NumSkills())
	}
	al, ah := a.EdgeWeightBounds()
	bl, bh := b.EdgeWeightBounds()
	if al != bl || ah != bh {
		t.Fatalf("edge bounds: (%v,%v) vs (%v,%v)", al, ah, bl, bh)
	}
	ail, aih := a.InvAuthorityBounds()
	bil, bih := b.InvAuthorityBounds()
	if ail != bil || aih != bih {
		t.Fatalf("inv-authority bounds: (%v,%v) vs (%v,%v)", ail, aih, bil, bih)
	}
	awt, ait := a.(interface{ BoundsTight() (bool, bool) }).BoundsTight()
	bwt, bit := b.(interface{ BoundsTight() (bool, bool) }).BoundsTight()
	if awt != bwt || ait != bit {
		t.Fatalf("tightness flags: (%v,%v) vs (%v,%v)", awt, ait, bwt, bit)
	}
	for u := expertgraph.NodeID(0); int(u) < a.NumNodes(); u++ {
		if a.Name(u) != b.Name(u) || a.Authority(u) != b.Authority(u) ||
			a.InvAuthority(u) != b.InvAuthority(u) || a.Pubs(u) != b.Pubs(u) ||
			a.ValidNode(u) != b.ValidNode(u) || a.Degree(u) != b.Degree(u) {
			t.Fatalf("node %d records differ", u)
		}
		adjA := map[expertgraph.NodeID]float64{}
		a.Neighbors(u, func(v expertgraph.NodeID, w float64) bool { adjA[v] = w; return true })
		adjB := map[expertgraph.NodeID]float64{}
		b.Neighbors(u, func(v expertgraph.NodeID, w float64) bool { adjB[v] = w; return true })
		if !reflect.DeepEqual(adjA, adjB) {
			t.Fatalf("node %d adjacency: %v vs %v", u, adjA, adjB)
		}
		if !reflect.DeepEqual(
			append([]expertgraph.SkillID(nil), a.Skills(u)...),
			append([]expertgraph.SkillID(nil), b.Skills(u)...)) {
			t.Fatalf("node %d skills differ", u)
		}
	}
	for s := expertgraph.SkillID(0); int(s) < a.NumSkills(); s++ {
		if a.SkillName(s) != b.SkillName(s) {
			t.Fatalf("skill %d name differs", s)
		}
		if id, ok := b.SkillID(a.SkillName(s)); !ok || id != s {
			t.Fatalf("skill %q resolves to (%d,%v), want %d", a.SkillName(s), id, ok, s)
		}
		if !reflect.DeepEqual(
			append([]expertgraph.NodeID(nil), a.ExpertsWithSkill(s)...),
			append([]expertgraph.NodeID(nil), b.ExpertsWithSkill(s)...)) {
			t.Fatalf("holders of %q differ (order matters)", a.SkillName(s))
		}
	}
}

// feasibleProject picks project skills that have holders on g.
func feasibleProject(rng *rand.Rand, g expertgraph.GraphView, want int) []expertgraph.SkillID {
	var have []expertgraph.SkillID
	for s := 0; s < g.NumSkills(); s++ {
		if len(g.ExpertsWithSkill(expertgraph.SkillID(s))) > 0 {
			have = append(have, expertgraph.SkillID(s))
		}
	}
	rng.Shuffle(len(have), func(i, j int) { have[i], have[j] = have[j], have[i] })
	if len(have) > want {
		have = have[:want]
	}
	return have
}

// TestOverlayDifferential is the acceptance test of the overlay read
// path: across a randomized mutation stream, every core method must
// return exactly the same teams on the zero-copy OverlayView as on the
// materialized graph — and the overlay side must perform zero
// materializations. Every round ends with a Compact, so from round two
// onward the overlays are patched over a *re-based* base graph: the
// results must stay byte-identical across re-base boundaries.
func TestOverlayDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := randomBase(t, rng, 60)
	st, err := Open(base, Config{JournalPath: filepath.Join(t.TempDir(), "wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// discover records each method's outcome — the teams, or the error
	// it failed with. A mutation stream with removals can legitimately
	// make a project infeasible mid-run; the differential requirement
	// is then that the overlay fails *identically* to the materialized
	// graph, not that both succeed.
	discover := func(g expertgraph.GraphView, project []expertgraph.SkillID) map[string]any {
		out := map[string]any{}
		record := func(method string, teams []*team.Team, err error) {
			if err != nil {
				out[method] = fmt.Sprintf("error: %v", err)
				return
			}
			out[method] = teams
		}
		for _, m := range []core.Method{core.CC, core.CACC, core.SACACC} {
			p, err := transform.Fit(g, 0.6, 0.6, transform.Options{Normalize: true})
			if err != nil {
				t.Fatal(err)
			}
			teams, err := core.NewDiscoverer(p, m).TopK(project, 3)
			record(m.String(), teams, err)
			// One PLL-backed run per checkpoint exercises index
			// construction over the overlay too.
			if m == core.SACACC {
				teams, err := core.NewDiscoverer(p, m, core.WithPLL()).TopK(project, 3)
				record("sa-ca-cc-pll", teams, err)
			}
		}
		front, err := core.ParetoFront(g, project, core.ParetoOptions{})
		if err != nil {
			out["pareto"] = fmt.Sprintf("error: %v", err)
		} else {
			var teams []*team.Team
			for _, f := range front {
				teams = append(teams, f.Team)
			}
			out["pareto"] = teams
		}
		p, err := transform.Fit(g, 0.6, 0.6, transform.Options{Normalize: true})
		if err != nil {
			t.Fatal(err)
		}
		ex, err := core.Exact(p, project[:min(len(project), 2)], core.ExactOptions{MaxCandidatesPerSkill: 4})
		record("exact", []*team.Team{ex}, err)
		return out
	}

	sawChain := false
	for round := 0; round < 4; round++ {
		mutateRandomly(t, st, rng, 30)
		snap := st.Snapshot()
		gv := snap.View()

		// Chained-vs-refolded differential: apply one more mutation on
		// top of the just-built view, so the committer derives the next
		// epoch's view by patching gv (or resets the chain at the refold
		// guard). Either way it must be observationally identical to a
		// one-pass fold of the same log over the same base.
		var anchor expertgraph.NodeID
		for int(anchor) < snap.NumNodes() && !gv.ValidNode(anchor) {
			anchor++
		}
		refoldsBefore := st.Refolds()
		auth := float64(5 + round)
		if _, err := st.UpdateExpert(anchor, &auth, nil); err != nil {
			t.Fatal(err)
		}
		chained := st.Snapshot()
		cgv := chained.View()
		if d := st.ChainDepth(); d > 0 {
			sawChain = true
		} else if st.Refolds() == refoldsBefore && chained.epoch > chained.baseEpoch {
			t.Fatalf("round %d: view after mutation neither chained nor refolded", round)
		}
		refold := newOverlay(chained.base, chained.log[:chained.epoch-chained.baseEpoch],
			chained.nodes, chained.edges)
		assertViewsIdentical(t, cgv, refold)
		snap = chained
		gv = cgv

		before := st.Materializations()
		project := feasibleProject(rand.New(rand.NewSource(int64(round))), gv, 3)
		viewTeams := discover(gv, project)
		checkStructureLater := st.Materializations()
		if checkStructureLater != before {
			t.Fatalf("round %d: view-side discovery materialized %d graphs, want 0",
				round, checkStructureLater-before)
		}

		gm, err := snap.Graph()
		if err != nil {
			t.Fatal(err)
		}
		checkViewStructure(t, gv, gm)
		graphTeams := discover(gm, project)

		for method, want := range graphTeams {
			got := viewTeams[method]
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d method %s: overlay teams differ from materialized teams\noverlay: %+v\nmaterialized: %+v",
					round, method, got, want)
			}
		}
		if st.Materializations() != before+1 {
			t.Fatalf("round %d: %d materializations, want exactly the reference one",
				round, st.Materializations()-before)
		}

		// Fold and re-base: the next round's delta patches over this
		// epoch's materialized graph as the new in-memory base. The fold
		// reuses this snapshot's memoized materialization, so the
		// counter stays exact.
		if _, err := st.Compact(); err != nil {
			t.Fatal(err)
		}
		if st.BaseEpoch() != snap.Epoch() || st.LogLen() != 0 {
			t.Fatalf("round %d: re-base at %d/%d, want %d/0",
				round, st.BaseEpoch(), st.LogLen(), snap.Epoch())
		}
	}
	if !sawChain {
		t.Fatal("chained views never engaged across the mutation stream")
	}
}

// TestOverlayBoundsCovering pins the covering-bounds contract: an
// authority update that retires the current inverse-authority extreme
// leaves the bounds where they are (still covering, provably no longer
// tight), the materialized graph widens to answer the identical
// bounds, and BoundsTight reports the looseness honestly.
func TestOverlayBoundsCovering(t *testing.T) {
	b := expertgraph.NewBuilder(3, 2)
	b.AddNode("low", 1, "a")   // inv 1.0 — the max extreme
	b.AddNode("mid", 4, "b")   // inv 0.25
	b.AddNode("high", 10, "c") // inv 0.1 — the min extreme
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	auth := 5.0 // inv 0.2: the old max (1.0) retires
	if _, err := st.UpdateExpert(0, &auth, nil); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	gv := snap.View()
	gm, err := snap.Graph()
	if err != nil {
		t.Fatal(err)
	}
	vl, vh := gv.InvAuthorityBounds()
	ml, mh := gm.InvAuthorityBounds()
	if vl != ml || vh != mh {
		t.Fatalf("bounds after extreme retirement: view (%v,%v) vs graph (%v,%v)", vl, vh, ml, mh)
	}
	if vl != 0.1 || vh != 1.0 {
		t.Fatalf("covering bounds = (%v,%v), want (0.1,1.0) — retirement must not shrink them", vl, vh)
	}
	wTight, invTight := gv.(interface{ BoundsTight() (bool, bool) }).BoundsTight()
	if !wTight {
		t.Fatal("edge-weight bounds reported loose; no weight was touched")
	}
	if invTight {
		t.Fatal("inverse-authority bounds reported tight; the sole max holder retired")
	}

	// A second expert re-occupying the old extreme makes the bound
	// provably tight again.
	auth2 := 1.0 // inv 1.0 lands exactly on the covering max
	if _, err := st.UpdateExpert(1, &auth2, nil); err != nil {
		t.Fatal(err)
	}
	gv2 := st.Snapshot().View()
	if _, invTight2 := gv2.(interface{ BoundsTight() (bool, bool) }).BoundsTight(); !invTight2 {
		t.Fatal("inverse-authority bounds still reported loose after a value re-occupied the extreme")
	}
}

// TestSnapshotAtUsesPrefixMemo verifies that historical snapshot
// reconstruction is answered from the nearest prefix checkpoint (O(delta
// since memo), not O(epoch)) and still reports exact counts.
func TestSnapshotAtUsesPrefixMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randomBase(t, rng, 20)
	st, err := Open(base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const total = 3*memoEvery + 57
	mutateRandomly(t, st, rng, total+400) // rejections don't advance epochs; overshoot
	top := st.Epoch()
	if top < total {
		t.Fatalf("only %d mutations applied, need ≥ %d", top, total)
	}

	// Reference counts by brute force over the full log.
	cur := st.Snapshot()
	for _, epoch := range []uint64{0, 1, memoEvery - 1, memoEvery, memoEvery + 1, 2*memoEvery + 17, top - 1, top} {
		sn, ok := st.SnapshotAt(epoch)
		if !ok {
			t.Fatalf("SnapshotAt(%d) refused (top %d)", epoch, top)
		}
		nodes, edges := base.NumNodes(), base.NumEdges()
		muts, _ := cur.MutationsSince(0)
		for _, m := range muts[:epoch] {
			switch m.Op {
			case OpAddNode:
				nodes++
			case OpAddEdge:
				edges++
			case OpRemoveEdge:
				edges--
			case OpRemoveNode:
				edges -= len(m.Edges)
			}
		}
		if sn.NumNodes() != nodes || sn.NumEdges() != edges {
			t.Fatalf("SnapshotAt(%d) = (%d,%d), want (%d,%d)", epoch, sn.NumNodes(), sn.NumEdges(), nodes, edges)
		}
		if epoch < top {
			scanned := int(st.lastSnapshotScan.Load())
			if scanned >= memoEvery {
				t.Fatalf("SnapshotAt(%d) scanned %d log entries, want < %d (memoized prefix)",
					epoch, scanned, memoEvery)
			}
		}
	}
}
