package live

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"authteam/internal/expertgraph"
)

// Journal compaction: fold the write-ahead log into a persisted base
// graph so replay-on-boot stays O(churn since the last compaction)
// instead of O(lifetime mutations). The compacted base lives at
// <journal>.base — a gob file of {epoch, graph} — and the journal is
// rewritten to hold only the suffix past that epoch, anchored by a
// {"journal_start": E} header line.
//
// Crash safety hinges on ordering and on both files carrying their own
// epoch. The base is written to a temp file and renamed into place
// *before* the journal is rewritten; a crash between the two leaves a
// new base and an old journal, and Open resolves the overlap by
// skipping the journal records at or below the base's epoch — replay
// lands on the identical epoch either way. A crash before the base
// rename leaves everything untouched, and the journal rewrite itself
// is also temp-file + rename.

// ErrNoJournal is returned by Compact on a store opened without a
// journal (there is nothing to fold).
var ErrNoJournal = errors.New("live: compaction requires a journal")

// CompactStats reports what one compaction did.
type CompactStats struct {
	// Epoch is the epoch folded into the persisted base graph.
	Epoch uint64 `json:"epoch"`
	// Folded is the number of mutations this compaction folded into the
	// base: the records of epochs (pre-fold base epoch, Epoch]. After a
	// crash in a previous compaction's window it is smaller than
	// Removed — the overlap records were already represented by the
	// recovered base and are only being dropped from the journal.
	Folded uint64 `json:"folded"`
	// Removed is the number of records removed from the journal file
	// (everything at or below Epoch, including any crash-window overlap
	// a previously interrupted compaction had already folded).
	Removed uint64 `json:"removed"`
	// Remaining is the number of records left in the journal: the
	// mutations applied while the compaction ran.
	Remaining uint64 `json:"remaining"`
}

// basePath locates the compacted base graph next to a journal.
func basePath(journalPath string) string { return journalPath + ".base" }

// baseHeader precedes the graph in the compacted base file. Term is
// the fencing term of the lineage that folded the base (see
// promote.go); gob matches fields by name, so bases written before
// terms existed decode with Term 0 and newer bases stay readable by
// older code, keeping the format at version 1.
type baseHeader struct {
	Version int
	Epoch   uint64
	Term    uint64
}

const baseFormatVersion = 1

// Compact folds every mutation up to the current epoch into the
// persisted base graph, truncates the journal to the suffix applied
// while the fold ran, and re-bases the store in memory: the folded
// epoch's materialized graph becomes the new in-memory base, the
// resident log shrinks to the post-fold suffix, and the SnapshotAt
// prefix checkpoints are rebuilt for it. A long-running deployment
// under a background compactor therefore keeps resident state —
// journal file, mutation log, per-epoch overlay construction cost —
// O(churn since the last fold), never O(lifetime mutations).
//
// Readers are unaffected throughout: published snapshots carry their
// own base+log references and stay valid, and writers are only blocked
// for the final journal swap + re-base, not for the materialization.
//
// A fold is also a chained-overlay boundary: the first snapshot
// published after the re-base has a different base graph than its
// predecessor, so its view cannot patch the previous epoch's — it
// refolds from the new (short) log and later batches chain from that
// fresh root (see chain.go). That refold is exactly the O(churn)
// bound above, so folding keeps the chain's reset cost small too.
//
// After the re-base, SnapshotAt refuses epochs below the fold (their
// graphs can no longer be reconstructed), while MutationsSince keeps
// answering across exactly one fold boundary (the folded generation's
// log is retained until the next fold) so incremental index repair
// survives a re-base.
func (s *Store) Compact() (CompactStats, error) {
	// One compaction at a time: two interleaved folds could overwrite
	// each other's temp files and leave the base epoch behind the
	// rewritten journal's start — a pairing Open refuses to load. The
	// dedicated lock keeps mutators running during the fold (they only
	// contend on s.mu for the final journal swap).
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if s.foldHist != nil {
		start := time.Now()
		defer func() { s.foldHist.Observe(time.Since(start).Seconds()) }()
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return CompactStats{}, ErrClosed
	}
	if s.journal == nil || s.journal.closed {
		s.mu.Unlock()
		return CompactStats{}, ErrNoJournal
	}
	s.mu.Unlock()

	snap := s.Snapshot()
	// Materializing the fold epoch is the one legitimate
	// materialization besides index rebuilds; the same graph then
	// becomes the new in-memory base.
	g, err := snap.Graph()
	if err != nil {
		return CompactStats{}, fmt.Errorf("live: compact: %w", err)
	}
	ts := termState{term: s.term.Load(), termStart: s.termStart.Load(), fenced: s.fenced.Load()}
	if err := writeBaseFile(basePath(s.journalPath), g, snap.Epoch(), ts.term); err != nil {
		return CompactStats{}, err
	}

	// Stage the journal rewrite outside the writer lock: the bulk of
	// the post-fold tail — everything applied up to this instant — is
	// written and fsynced to a temp file while mutators keep running.
	// The final swap under mu then only appends the handful of records
	// that raced in meanwhile and renames the file, so the writer stall
	// is O(in-flight records), not O(journal tail). The captured tail
	// slice is safe to read without the lock: the log's backing array
	// is append-only and every captured index is already published.
	s.mu.Lock()
	if s.journal == nil || s.journal.closed {
		s.mu.Unlock()
		return CompactStats{}, ErrNoJournal
	}
	foldIdx := int(snap.Epoch() - s.baseEpoch)
	tail := s.log[foldIdx:len(s.log):len(s.log)]
	sync := s.journal.sync
	s.mu.Unlock()

	staged, err := stageJournal(s.journalPath, snap.Epoch(), tail, sync, ts)
	if err != nil {
		return CompactStats{}, err
	}
	return s.swapAndRebase(snap, g, staged, foldIdx, len(tail))
}

// WriteBaseStream encodes a base graph, its epoch and the writing
// lineage's term in the compacted base file format (gob header +
// expertgraph encoding). It is the single codec behind the on-disk
// <journal>.base file and the replication base transfer, so a follower
// can adopt a streamed base byte-for-byte compatible with what a local
// fold would have written.
func WriteBaseStream(w io.Writer, g *expertgraph.Graph, epoch, term uint64) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(&baseHeader{Version: baseFormatVersion, Epoch: epoch, Term: term}); err != nil {
		return fmt.Errorf("live: base encode: %w", err)
	}
	if err := expertgraph.Write(bw, g); err != nil {
		return fmt.Errorf("live: base encode: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("live: base encode: %w", err)
	}
	return nil
}

// ReadBaseStream decodes a graph, its epoch and its term written by
// WriteBaseStream (term 0 for bases from before fencing existed).
func ReadBaseStream(r io.Reader) (*expertgraph.Graph, uint64, uint64, error) {
	br := bufio.NewReader(r)
	var hdr baseHeader
	if err := gob.NewDecoder(br).Decode(&hdr); err != nil {
		return nil, 0, 0, fmt.Errorf("live: base decode: %w", err)
	}
	if hdr.Version != baseFormatVersion {
		return nil, 0, 0, fmt.Errorf("live: base: unsupported version %d", hdr.Version)
	}
	g, err := expertgraph.Read(br)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("live: base decode: %w", err)
	}
	return g, hdr.Epoch, hdr.Term, nil
}

// writeBaseFile persists the materialized fold-epoch graph atomically
// (temp file + fsync + rename). It is the first half of Compact — and
// of AdoptBase; a crash after it leaves a recoverable base/journal
// pairing, never a hole.
func writeBaseFile(path string, g *expertgraph.Graph, epoch, term uint64) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("live: compact: %w", err)
	}
	if err := WriteBaseStream(f, g, epoch, term); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("live: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("live: compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("live: compact: %w", err)
	}
	return nil
}

// swapAndRebase appends the records that raced in while the journal
// rewrite was being staged, atomically installs the staged file, and
// re-bases the in-memory store onto g (the materialized fold-epoch
// graph). Final phase of Compact; runs under the writer lock so
// mutators never observe a half-swapped store — but the lock is held
// only for the straggler append + rename + in-memory swap, not for the
// tail rewrite itself.
func (s *Store) swapAndRebase(snap *Snapshot, g *expertgraph.Graph, staged *stagedJournal, foldIdx, stagedLen int) (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil || s.journal.closed {
		staged.abort()
		return CompactStats{}, ErrNoJournal
	}
	tail := s.log[foldIdx:]
	nj, err := staged.install(s.journalPath, tail[stagedLen:])
	if err != nil {
		return CompactStats{}, err
	}
	old := s.journal
	s.journal = nj
	old.Close()

	// In-memory re-base: the fold-epoch graph becomes the base, the log
	// shrinks to the in-flight suffix (copied into a fresh backing array
	// so the old one is released once published snapshots die), and the
	// prefix checkpoints are rebuilt over the new log. The folded
	// generation's log is retained as prevLog so MutationsSince bridges
	// this one boundary; the generation before it is dropped. The edge
	// set and node/edge counters describe the current epoch, which the
	// re-base does not change, so they stay as they are.
	cur := s.snap.Load()
	newLog := append(make([]Mutation, 0, len(tail)), tail...)
	if foldIdx > 0 {
		// A zero-record fold (crash recovery, back-to-back Compact)
		// keeps the currently retained generation instead of replacing
		// it with an empty window.
		s.prevBaseEpoch, s.prevLog = s.baseEpoch, s.log[:foldIdx]
	}
	s.base = g
	s.baseEpoch = snap.Epoch()
	s.log = newLog
	s.prefix = rebuildPrefix(g, newLog, s.memo)
	next := &Snapshot{
		epoch:         cur.epoch,
		baseEpoch:     s.baseEpoch,
		base:          g,
		log:           newLog,
		prefix:        s.prefix,
		prevBaseEpoch: s.prevBaseEpoch,
		prevLog:       s.prevLog,
		nodes:         s.nNodes,
		edges:         s.nEdges,
		matCtr:        &s.materialized,
		overlayHist:   s.overlayHist,
	}
	if next.epoch == next.baseEpoch {
		next.g = g // base-epoch snapshot: Graph()/View() answer from the base directly
	}
	s.snap.Store(next)

	s.compactions.Add(1)
	return CompactStats{
		Epoch:     snap.Epoch(),
		Folded:    uint64(foldIdx),
		Removed:   snap.Epoch() - old.startEpoch,
		Remaining: uint64(len(tail)),
	}, nil
}

// rebuildPrefix recomputes the SnapshotAt checkpoints for a re-based
// log: entry k-1 holds the graph size after the first k·every
// records of log on top of base.
func rebuildPrefix(base *expertgraph.Graph, log []Mutation, every int) []prefixCount {
	n := len(log) / every
	if n == 0 {
		return nil
	}
	out := make([]prefixCount, 0, n)
	nodes, edges := base.NumNodes(), base.NumEdges()
	for i, m := range log[:n*every] {
		countMutation(m, &nodes, &edges)
		if (i+1)%every == 0 {
			out = append(out, prefixCount{nodes: nodes, edges: edges})
		}
	}
	return out
}

// stagedJournal is a fully written (and fsynced) replacement journal
// that has not been renamed into place yet: the expensive half of the
// rewrite, done without the writer lock.
type stagedJournal struct {
	f          *os.File
	tmp        string
	sync       bool
	startEpoch uint64
	records    uint64
	bytes      int64
}

// stageJournal writes a fresh journal (header + tail records) to a
// temp file and fsyncs it, leaving installation — straggler append +
// rename — to the short critical section. ts is the term state the
// header persists alongside the start epoch.
func stageJournal(path string, startEpoch uint64, tail []Mutation, sync bool, ts termState) (*stagedJournal, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("live: compact journal: %w", err)
	}
	st := &stagedJournal{f: f, tmp: tmp, sync: sync, startEpoch: startEpoch}
	bw := bufio.NewWriter(f)
	hdr, err := json.Marshal(journalHeader{
		JournalStart: &startEpoch,
		Term:         ts.term,
		TermStart:    ts.termStart,
		Fenced:       ts.fenced,
	})
	if err != nil {
		st.abort()
		return nil, fmt.Errorf("live: compact journal: %w", err)
	}
	hdr = append(hdr, '\n')
	if _, err := bw.Write(hdr); err != nil {
		st.abort()
		return nil, fmt.Errorf("live: compact journal: %w", err)
	}
	st.bytes += int64(len(hdr))
	if err := st.writeRecords(bw, tail); err != nil {
		st.abort()
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		st.abort()
		return nil, fmt.Errorf("live: compact journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		st.abort()
		return nil, fmt.Errorf("live: compact journal: %w", err)
	}
	return st, nil
}

func (st *stagedJournal) writeRecords(w io.Writer, muts []Mutation) error {
	for _, m := range muts {
		buf, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("live: compact journal: %w", err)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("live: compact journal: %w", err)
		}
		st.bytes += int64(len(buf))
		st.records++
	}
	return nil
}

// install appends the records applied while the stage was being
// written, fsyncs the (small) addition and renames the file over path,
// returning the open append handle. Called under the store's writer
// lock; the work here is O(stragglers), not O(tail).
func (st *stagedJournal) install(path string, stragglers []Mutation) (*journal, error) {
	if len(stragglers) > 0 {
		if err := st.writeRecords(st.f, stragglers); err != nil {
			st.abort()
			return nil, err
		}
		if err := st.f.Sync(); err != nil {
			st.abort()
			return nil, fmt.Errorf("live: compact journal: %w", err)
		}
	}
	if err := os.Rename(st.tmp, path); err != nil {
		st.abort()
		return nil, fmt.Errorf("live: compact journal: %w", err)
	}
	// The handle follows the rename (it is bound to the inode), and its
	// offset already sits at end-of-file for appends.
	return &journal{f: st.f, sync: st.sync, startEpoch: st.startEpoch, records: st.records, bytes: st.bytes}, nil
}

// abort discards a staged journal that will not be installed.
func (st *stagedJournal) abort() {
	st.f.Close()
	os.Remove(st.tmp)
}

// loadBaseFile reads a compacted base graph, its epoch and its term.
// A missing file returns (nil, 0, 0, nil) — the store then starts from
// the caller's graph at epoch 0.
func loadBaseFile(path string) (*expertgraph.Graph, uint64, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, fmt.Errorf("live: base graph: %w", err)
	}
	defer f.Close()
	g, epoch, term, err := ReadBaseStream(f)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("live: base graph %s: %w", path, err)
	}
	return g, epoch, term, nil
}
