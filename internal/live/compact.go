package live

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"authteam/internal/expertgraph"
)

// Journal compaction: fold the write-ahead log into a persisted base
// graph so replay-on-boot stays O(churn since the last compaction)
// instead of O(lifetime mutations). The compacted base lives at
// <journal>.base — a gob file of {epoch, graph} — and the journal is
// rewritten to hold only the suffix past that epoch, anchored by a
// {"journal_start": E} header line.
//
// Crash safety hinges on ordering and on both files carrying their own
// epoch. The base is written to a temp file and renamed into place
// *before* the journal is rewritten; a crash between the two leaves a
// new base and an old journal, and Open resolves the overlap by
// skipping the journal records at or below the base's epoch — replay
// lands on the identical epoch either way. A crash before the base
// rename leaves everything untouched, and the journal rewrite itself
// is also temp-file + rename.

// ErrNoJournal is returned by Compact on a store opened without a
// journal (there is nothing to fold).
var ErrNoJournal = errors.New("live: compaction requires a journal")

// CompactStats reports what one compaction did.
type CompactStats struct {
	// Epoch is the epoch folded into the persisted base graph.
	Epoch uint64 `json:"epoch"`
	// Folded is the number of journal records dropped (now represented
	// by the base graph).
	Folded uint64 `json:"folded"`
	// Remaining is the number of records left in the journal: the
	// mutations applied while the compaction ran.
	Remaining uint64 `json:"remaining"`
}

// basePath locates the compacted base graph next to a journal.
func basePath(journalPath string) string { return journalPath + ".base" }

// baseHeader precedes the graph in the compacted base file.
type baseHeader struct {
	Version int
	Epoch   uint64
}

const baseFormatVersion = 1

// Compact folds every mutation up to the current epoch into the
// persisted base graph and truncates the journal to the suffix applied
// while the fold ran. Readers are unaffected (the in-memory base and
// log are untouched — published snapshots stay valid), and writers are
// only blocked for the final journal swap, not for the materialization.
//
// SnapshotAt / MutationsSince keep answering for pre-compaction epochs
// until the next restart; after a restart the folded history is gone
// and persisted state anchored below the compaction epoch (e.g. old
// 2-hop covers) is discarded by its consumers.
func (s *Store) Compact() (CompactStats, error) {
	// One compaction at a time: two interleaved folds could overwrite
	// each other's temp files and leave the base epoch behind the
	// rewritten journal's start — a pairing Open refuses to load. The
	// dedicated lock keeps mutators running during the fold (they only
	// contend on s.mu for the final journal swap).
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.Lock()
	if s.journal == nil || s.journal.closed {
		s.mu.Unlock()
		return CompactStats{}, ErrNoJournal
	}
	s.mu.Unlock()

	snap := s.Snapshot()
	if err := s.writeBase(snap); err != nil {
		return CompactStats{}, err
	}
	return s.truncateJournal(snap)
}

// writeBase persists snap's graph (materializing it — the one
// legitimate materialization besides index rebuilds) with its epoch,
// atomically. It is the first half of Compact; a crash after it leaves
// a recoverable base/journal overlap, never a hole.
func (s *Store) writeBase(snap *Snapshot) error {
	g, err := snap.Graph()
	if err != nil {
		return fmt.Errorf("live: compact: %w", err)
	}
	path := basePath(s.journalPath)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("live: compact: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := gob.NewEncoder(bw).Encode(&baseHeader{Version: baseFormatVersion, Epoch: snap.Epoch()}); err != nil {
		f.Close()
		return fmt.Errorf("live: compact: %w", err)
	}
	if err := expertgraph.Write(bw, g); err != nil {
		f.Close()
		return fmt.Errorf("live: compact: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("live: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("live: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("live: compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("live: compact: %w", err)
	}
	return nil
}

// truncateJournal rewrites the journal to hold only the mutations past
// snap's epoch and swaps the store onto the new file. Second half of
// Compact.
func (s *Store) truncateJournal(snap *Snapshot) (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil || s.journal.closed {
		return CompactStats{}, ErrNoJournal
	}
	tail := s.log[snap.Epoch()-s.baseEpoch:]
	nj, err := rewriteJournal(s.journalPath, snap.Epoch(), tail, s.journal.sync)
	if err != nil {
		return CompactStats{}, err
	}
	old := s.journal
	s.journal = nj
	old.Close()
	s.compactions.Add(1)
	return CompactStats{
		Epoch:     snap.Epoch(),
		Folded:    snap.Epoch() - old.startEpoch,
		Remaining: uint64(len(tail)),
	}, nil
}

// rewriteJournal writes a fresh journal (header + tail records) to a
// temp file and renames it over path, returning an open append handle
// for it.
func rewriteJournal(path string, startEpoch uint64, tail []Mutation, sync bool) (*journal, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("live: compact journal: %w", err)
	}
	bw := bufio.NewWriter(f)
	var total int64
	hdr, err := json.Marshal(journalHeader{JournalStart: &startEpoch})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("live: compact journal: %w", err)
	}
	hdr = append(hdr, '\n')
	if _, err := bw.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("live: compact journal: %w", err)
	}
	total += int64(len(hdr))
	for _, m := range tail {
		buf, err := json.Marshal(m)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("live: compact journal: %w", err)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			f.Close()
			return nil, fmt.Errorf("live: compact journal: %w", err)
		}
		total += int64(len(buf))
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("live: compact journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("live: compact journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		return nil, fmt.Errorf("live: compact journal: %w", err)
	}
	// The handle follows the rename (it is bound to the inode), and its
	// offset already sits at end-of-file for appends.
	return &journal{f: f, sync: sync, startEpoch: startEpoch, records: uint64(len(tail)), bytes: total}, nil
}

// loadBaseFile reads a compacted base graph and its epoch. A missing
// file returns (nil, 0, nil) — the store then starts from the caller's
// graph at epoch 0.
func loadBaseFile(path string) (*expertgraph.Graph, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("live: base graph: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var hdr baseHeader
	if err := gob.NewDecoder(br).Decode(&hdr); err != nil {
		return nil, 0, fmt.Errorf("live: base graph %s: %w", path, err)
	}
	if hdr.Version != baseFormatVersion {
		return nil, 0, fmt.Errorf("live: base graph %s: unsupported version %d", path, hdr.Version)
	}
	g, err := expertgraph.Read(br)
	if err != nil {
		return nil, 0, fmt.Errorf("live: base graph %s: %w", path, err)
	}
	return g, hdr.Epoch, nil
}
