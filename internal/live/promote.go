package live

import (
	"errors"
	"fmt"
)

// Cluster roles and epoch fencing. The store carries a persisted,
// monotonic *term* — the fencing token of the replication lineage it
// belongs to. Every fresh append is stamped with the writer's current
// term, replicated records keep the term of the leader that minted
// them, and a record whose term is *behind* the local term is refused
// with ErrFenced. Promotion of a follower bumps the term and records
// the epoch the new lineage starts at (termStart); demotion fences the
// store so a deposed leader can never extend the old lineage:
//
//   - Promote(term): seal the current epoch as the last epoch of the
//     old lineage, adopt the (strictly larger) term, and resume
//     accepting local writes. The new term is persisted in the journal
//     header before it takes effect in memory — a crash mid-promotion
//     leaves the store a follower of the old term, never a second
//     leader of the new one.
//   - Demote(term): refuse all further appends with ErrFenced (also
//     persisted, so a restarted deposed leader stays fenced), adopting
//     the newer term it was fenced by. The only way back into a
//     lineage is AdoptBase — wholesale replacement by a base snapshot
//     of the new term, which clears the fence along with the divergent
//     state it guarded.
//
// Followers adopt newer terms organically: the first replicated record
// stamped with a higher term raises the local term when it commits
// (and, by landing in the local journal, persists it), so the whole
// replica tree converges on the new lineage without any side channel.

// ErrFenced reports a write refused by the fencing token: the store
// was demoted, or the record belongs to an older term than the store's.
// Errors carrying it are usually a *FencedError holding the term that
// did the fencing.
var ErrFenced = errors.New("live: store fenced by a newer term")

// FencedError is the concrete fencing rejection: errors.Is(err,
// ErrFenced) matches it, and Term is the fencing term — what a deposed
// leader adopts when it self-demotes, and what a transport layer echoes
// to the peer so it can tell "I am stale" from "the source is stale".
type FencedError struct {
	// Term is the current term of the store (or peer) that refused the
	// write.
	Term uint64
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("live: fenced by term %d", e.Term)
}

// Is makes errors.Is(err, ErrFenced) true for every FencedError.
func (e *FencedError) Is(target error) bool { return target == ErrFenced }

// termState is the persisted fencing state: the current term, the
// epoch the term's lineage began at (records of epochs > termStart
// belong to it), and whether the store is demoted.
type termState struct {
	term      uint64
	termStart uint64
	fenced    bool
}

// Term returns the store's current fencing term: 0 for a store that
// never saw a promotion, monotonically increasing across the cluster
// otherwise.
func (s *Store) Term() uint64 { return s.term.Load() }

// TermStart returns the epoch at which the current term's lineage
// began: records of epochs > TermStart carry the current term. A
// deposed leader whose epoch ran past TermStart under the old term is
// exactly the divergence fencing exists to reject.
func (s *Store) TermStart() uint64 { return s.termStart.Load() }

// Fenced reports whether the store was demoted: every mutation fails
// with ErrFenced, and it refuses to serve the replication stream (its
// suffix past TermStart may diverge from the surviving lineage).
func (s *Store) Fenced() bool { return s.fenced.Load() }

// Promote seals the store's current epoch as the end of the old
// lineage and adopts term as its new writer term, returning the sealed
// epoch. The caller (the serving layer) must have stopped the follower
// loop first — promotion of a store still applying a remote stream
// would interleave two writers. term must exceed the current term;
// 0 means "current term + 1". The new term is persisted (journal
// header rewrite) before it takes effect, so a crash mid-promotion
// never yields a leader the cluster doesn't know about.
func (s *Store) Promote(term uint64) (sealedEpoch uint64, err error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.ioErr != nil {
		return 0, s.ioErr
	}
	cur := s.term.Load()
	if term == 0 {
		term = cur + 1
	}
	if term <= cur {
		return 0, fmt.Errorf("live: promote to term %d not beyond current term %d", term, cur)
	}
	epoch := s.baseEpoch + uint64(len(s.log))
	if err := s.persistTermLocked(termState{term: term, termStart: epoch}); err != nil {
		return 0, err
	}
	s.term.Store(term)
	s.termStart.Store(epoch)
	s.fenced.Store(false)
	return epoch, nil
}

// Demote fences the store: every further mutation fails with ErrFenced
// and the replication endpoints refuse to serve it. term is the newer
// term that deposed it (0 just fences at the current term). The fence
// takes effect in memory even when persisting it fails — failing open
// here would be the exact split-brain fencing exists to prevent.
func (s *Store) Demote(term uint64) error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fenced.Store(true)
	if cur := s.term.Load(); term > cur {
		// The lineage boundary of the deposing term is unknown from
		// here; anchoring it at the local epoch is safe because a
		// fenced store never serves the stream anyway.
		s.term.Store(term)
		s.termStart.Store(s.baseEpoch + uint64(len(s.log)))
	}
	if s.closed || s.ioErr != nil {
		return nil // fence recorded in memory; nothing durable to update
	}
	return s.persistTermLocked(termState{term: s.term.Load(), termStart: s.termStart.Load(), fenced: true})
}

// persistTermLocked rewrites the journal header with ts, keeping every
// resident record. Stores without a journal (or with a closed one)
// keep term state in memory only. Caller holds mu and compactMu; the
// journal is short by construction (compaction keeps it to churn since
// the last fold), so the rewrite is cheap at the rare moments —
// promotion, demotion — this runs.
func (s *Store) persistTermLocked(ts termState) error {
	if s.journal == nil || s.journal.closed {
		return nil
	}
	staged, err := stageJournal(s.journalPath, s.baseEpoch, s.log, s.journal.sync, ts)
	if err != nil {
		return err
	}
	nj, err := staged.install(s.journalPath, nil)
	if err != nil {
		return err
	}
	old := s.journal
	s.journal = nj
	old.Close()
	return nil
}
