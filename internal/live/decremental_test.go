package live

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"authteam/internal/expertgraph"
	"authteam/internal/pll"
	"authteam/internal/transform"
)

// TestDecrementalValidation pins the store-level contracts of the
// remove/re-weight mutators.
func TestDecrementalValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := mustOpen(t, testGraph(rng, 12), Config{})
	view := s.Snapshot().View()
	u, v, ok := randomEdge(rng, view)
	if !ok {
		t.Fatal("no edge to play with")
	}
	w, _ := view.EdgeWeight(u, v)

	if _, err := s.RemoveCollaboration(u, expertgraph.NodeID(99)); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("remove edge to out-of-range node: %v", err)
	}
	if _, err := s.UpdateCollaboration(u, v, -1); !errors.Is(err, ErrNegativeW) {
		t.Errorf("negative re-weight: %v", err)
	}
	if _, err := s.UpdateCollaboration(u, v, w); !errors.Is(err, ErrEmptyUpdate) {
		t.Errorf("no-op re-weight: %v", err)
	}
	if _, err := s.UpdateCollaboration(u, v, w/2); err != nil {
		t.Fatalf("re-weight: %v", err)
	}
	if got, _ := s.Snapshot().View().EdgeWeight(u, v); got != w/2 {
		t.Errorf("re-weighted edge reads %v, want %v", got, w/2)
	}

	if _, err := s.RemoveCollaboration(u, v); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := s.RemoveCollaboration(u, v); !errors.Is(err, ErrUnknownEdge) {
		t.Errorf("double removal: %v", err)
	}
	if _, err := s.UpdateCollaboration(u, v, 0.5); !errors.Is(err, ErrUnknownEdge) {
		t.Errorf("re-weight of removed edge: %v", err)
	}
	// A removed edge can be re-added.
	if _, err := s.AddCollaboration(u, v, 0.7); err != nil {
		t.Fatalf("re-add after removal: %v", err)
	}

	// Node removal tombstones: every further reference fails with
	// ErrRemovedNode, and the ID is never resurrected.
	if _, err := s.RemoveExpert(u); err != nil {
		t.Fatalf("remove expert: %v", err)
	}
	if s.Snapshot().View().ValidNode(u) {
		t.Error("tombstoned node still valid")
	}
	if _, err := s.RemoveExpert(u); !errors.Is(err, ErrRemovedNode) {
		t.Errorf("double node removal: %v", err)
	}
	if _, err := s.AddCollaboration(u, v, 0.2); !errors.Is(err, ErrRemovedNode) {
		t.Errorf("edge to tombstone: %v", err)
	}
	auth := 5.0
	if _, err := s.UpdateExpert(u, &auth, nil); !errors.Is(err, ErrRemovedNode) {
		t.Errorf("update of tombstone: %v", err)
	}
	// Edge removal/re-weight referencing a tombstoned endpoint reports
	// the tombstone (410 at the API), not a generic unknown edge.
	if _, err := s.RemoveCollaboration(u, v); !errors.Is(err, ErrRemovedNode) {
		t.Errorf("edge removal on tombstone: %v", err)
	}
	if _, err := s.UpdateCollaboration(u, v, 0.6); !errors.Is(err, ErrRemovedNode) {
		t.Errorf("edge re-weight on tombstone: %v", err)
	}

	c := s.Counters()
	if c.EdgesRemoved == 0 || c.NodesRemoved != 1 || c.EdgesUpdated != 1 {
		t.Errorf("counters: %+v", c)
	}
}

// TestRemoveNodeEmbedsEdges pins the self-contained remove_node
// record: the journaled mutation carries the node's incident edges
// (sorted by far endpoint, with their last stored weights), so replay
// and index repair never reconstruct pre-removal adjacency.
func TestRemoveNodeEmbedsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := mustOpen(t, testGraph(rng, 15), Config{})
	victim := expertgraph.NodeID(3)
	want := map[expertgraph.NodeID]float64{}
	s.Snapshot().View().Neighbors(victim, func(v expertgraph.NodeID, w float64) bool {
		want[v] = w
		return true
	})
	if len(want) == 0 {
		t.Fatal("victim is isolated; pick a better seed")
	}
	if _, err := s.RemoveExpert(victim); err != nil {
		t.Fatal(err)
	}
	muts, ok := s.Snapshot().MutationsSince(s.Epoch() - 1)
	if !ok || len(muts) != 1 || muts[0].Op != OpRemoveNode {
		t.Fatalf("unexpected tail: %+v", muts)
	}
	rec := muts[0]
	if len(rec.Edges) != len(want) {
		t.Fatalf("embedded %d edges, want %d", len(rec.Edges), len(want))
	}
	for i, e := range rec.Edges {
		if i > 0 && rec.Edges[i-1].V >= e.V {
			t.Fatalf("embedded edges not sorted: %+v", rec.Edges)
		}
		if w, ok := want[e.V]; !ok || w != e.W {
			t.Fatalf("embedded edge %+v does not match adjacency %v", e, want)
		}
	}
	if s.Snapshot().NumEdges() != s.nEdges {
		t.Fatalf("edge count drift")
	}
}

// TestJournalReplayDecremental round-trips a mixed mutation stream —
// including removals and re-weights — through a restart: the replayed
// store must land on the identical epoch and an identical graph.
func TestJournalReplayDecremental(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	base := testGraph(rng, 30)
	s := mustOpen(t, base, Config{JournalPath: path})
	mutateRandomly(t, s, rng, 150)
	epoch := s.Epoch()
	counters := s.Counters()
	fp := viewFingerprint(s.Snapshot().View())
	if counters.EdgesRemoved == 0 || counters.NodesRemoved == 0 || counters.EdgesUpdated == 0 {
		t.Fatalf("stream did not exercise decremental ops: %+v", counters)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, base, Config{JournalPath: path})
	if s2.Epoch() != epoch {
		t.Fatalf("replayed epoch %d, want %d", s2.Epoch(), epoch)
	}
	if s2.Counters() != counters {
		t.Fatalf("replayed counters %+v, want %+v", s2.Counters(), counters)
	}
	if !equalFP(viewFingerprint(s2.Snapshot().View()), fp) {
		t.Fatal("replayed graph differs from pre-restart graph")
	}
	// And the replayed state keeps mutating consistently (the edge-set
	// weights were rebuilt correctly).
	mutateRandomly(t, s2, rng, 30)
}

// TestCompactDecremental folds a journal whose delta includes
// removals: the re-based store and a cold reopen must both agree with
// the pre-fold state.
func TestCompactDecremental(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	base := testGraph(rng, 30)
	s := mustOpen(t, base, Config{JournalPath: path})
	mutateRandomly(t, s, rng, 120)
	fp := viewFingerprint(s.Snapshot().View())
	epoch := s.Epoch()
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.BaseEpoch() != epoch || !equalFP(viewFingerprint(s.Snapshot().View()), fp) {
		t.Fatal("re-base changed the observable graph")
	}
	mutateRandomly(t, s, rng, 40)
	fp2 := viewFingerprint(s.Snapshot().View())
	epoch2 := s.Epoch()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, base, Config{JournalPath: path})
	if s2.Epoch() != epoch2 || !equalFP(viewFingerprint(s2.Snapshot().View()), fp2) {
		t.Fatal("reopen after fold+churn diverged")
	}
}

// sampleDistancesAgree compares the repaired index against a fresh
// build over the `to` view on sampled pairs (and a few fixed ones).
func sampleDistancesAgree(t *testing.T, rng *rand.Rand, repaired, fresh *pll.Index, n int) {
	t.Helper()
	for i := 0; i < 400; i++ {
		u := expertgraph.NodeID(rng.Intn(n))
		v := expertgraph.NodeID(rng.Intn(n))
		got, want := repaired.Dist(u, v), fresh.Dist(u, v)
		if math.IsInf(got, 1) && math.IsInf(want, 1) {
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("dist(%d,%d): repaired %v, fresh %v", u, v, got, want)
		}
	}
}

// TestMaintainDecrementalDifferential is the MaintainIndex acceptance
// test for mixed deltas on a raw-weight index: a randomized stream of
// inserts, removals, re-weights and node retirements must repair to an
// index that agrees with a fresh build at the target epoch.
func TestMaintainDecrementalDifferential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(40 + seed))
		base := testGraph(rng, 35)
		s := mustOpen(t, base, Config{})
		from := s.Snapshot()
		ix := pll.Build(base)

		mutateRandomly(t, s, rng, 60)
		to := s.Snapshot()
		c := s.Counters()
		if c.EdgesRemoved == 0 && c.NodesRemoved == 0 {
			t.Fatalf("seed %d: stream had no removals", seed)
		}

		repaired, rs, ok := MaintainIndex(ix, from, to, nil, nil, 0)
		if !ok {
			t.Fatalf("seed %d: raw repair refused a mixed delta", seed)
		}
		if rs.Removed == 0 {
			t.Fatalf("seed %d: repair stats report no decremental work: %+v", seed, rs)
		}
		g, err := to.Graph()
		if err != nil {
			t.Fatal(err)
		}
		sampleDistancesAgree(t, rng, repaired, pll.Build(g), g.NumNodes())
		s.Close()
	}
}

// boundsPinnedGraph builds a graph whose weight and authority extremes
// are held by dedicated sentinel nodes/edges that the test never
// mutates, so every other mutation stays inside the normalization
// bounds and weighted repair stays eligible.
func boundsPinnedGraph(rng *rand.Rand, n int) *expertgraph.Graph {
	b := expertgraph.NewBuilder(n+2, 3*n)
	for i := 0; i < n; i++ {
		b.AddNode("", 2+float64(rng.Intn(20)), "s")
	}
	lo := b.AddNode("pin-lo", 1, "s")    // inv 1.0: max inverse authority
	hi := b.AddNode("pin-hi", 1000, "s") // inv 0.001: min inverse authority
	b.AddEdge(lo, hi, 0.01)              // min weight
	b.AddEdge(lo, 0, 5.0)                // max weight
	seen := map[[2]expertgraph.NodeID]bool{}
	add := func(u, v expertgraph.NodeID) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]expertgraph.NodeID{u, v}] {
			return
		}
		seen[[2]expertgraph.NodeID{u, v}] = true
		b.AddEdge(u, v, 0.2+0.6*rng.Float64())
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(expertgraph.NodeID(perm[i-1]), expertgraph.NodeID(perm[i]))
	}
	for i := 0; i < n; i++ {
		add(expertgraph.NodeID(rng.Intn(n)), expertgraph.NodeID(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestMaintainWeightedDecremental drives the weighted (G') repair
// through in-bounds removals and re-weights and checks exactness
// against a fresh weighted build.
func TestMaintainWeightedDecremental(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(60 + seed))
		base := boundsPinnedGraph(rng, 30)
		s := mustOpen(t, base, Config{})
		from := s.Snapshot()
		p, err := transform.Fit(from.View(), 0.6, 0.6, transform.Options{Normalize: true})
		if err != nil {
			t.Fatal(err)
		}
		weight := p.EdgeWeight()
		ix := pll.BuildWithOptions(base, pll.Options{Weight: weight})

		// In-bounds churn only: weights inside (0.01, 5), no authority
		// changes, no sentinel edges touched.
		n := base.NumNodes() - 2
		for i := 0; i < 30; i++ {
			switch rng.Intn(3) {
			case 0:
				u, v := expertgraph.NodeID(rng.Intn(n)), expertgraph.NodeID(rng.Intn(n))
				_, _ = s.AddCollaboration(u, v, 0.2+0.6*rng.Float64())
			case 1:
				if u, v, ok := randomEdge(rng, s.Snapshot().View()); ok && int(u) < n && int(v) < n {
					_, _ = s.RemoveCollaboration(u, v)
				}
			default:
				if u, v, ok := randomEdge(rng, s.Snapshot().View()); ok && int(u) < n && int(v) < n {
					_, _ = s.UpdateCollaboration(u, v, 0.2+0.6*rng.Float64())
				}
			}
		}
		to := s.Snapshot()
		if to.Epoch() == from.Epoch() {
			t.Fatalf("seed %d: no mutations applied", seed)
		}

		// The fit at `to` must agree (bounds pinned) — then the same
		// weight function serves as both new and old.
		p2, err := transform.Fit(to.View(), 0.6, 0.6, transform.Options{Normalize: true})
		if err != nil {
			t.Fatal(err)
		}
		repaired, rs, ok := MaintainIndex(ix, from, to, p2.EdgeWeight(), weight, 0)
		if !ok {
			t.Fatalf("seed %d: weighted repair refused an in-bounds mixed delta", seed)
		}
		if rs.Removed == 0 && rs.Reweighted == 0 {
			t.Fatalf("seed %d: stats report no decremental/reweight work: %+v", seed, rs)
		}
		g, err := to.Graph()
		if err != nil {
			t.Fatal(err)
		}
		fresh := pll.BuildWithOptions(g, pll.Options{Weight: p2.EdgeWeight()})
		sampleDistancesAgree(t, rng, repaired, fresh, g.NumNodes())
		s.Close()
	}
}

// TestMaintainAuthorityReweight: a value-changing authority update on
// a weighted index is absorbed as per-incident-edge re-weights (both
// directions) when the caller supplies the old weight function — the
// case PR 2 used to reject outright.
func TestMaintainAuthorityReweight(t *testing.T) {
	for _, newAuth := range []float64{50.0 /* lighter edges */, 3.0 /* heavier edges */} {
		rng := rand.New(rand.NewSource(71))
		base := boundsPinnedGraph(rng, 25)
		s := mustOpen(t, base, Config{})
		from := s.Snapshot()
		pOld, err := transform.Fit(from.View(), 0.6, 0.6, transform.Options{Normalize: true})
		if err != nil {
			t.Fatal(err)
		}
		ix := pll.BuildWithOptions(base, pll.Options{Weight: pOld.EdgeWeight()})

		// Node 1 starts at authority in [2, 22]; both 50 and 3 stay
		// inside the pinned inverse-authority bounds (0.001, 1).
		if _, err := s.UpdateExpert(1, &newAuth, nil); err != nil {
			t.Fatal(err)
		}
		to := s.Snapshot()
		pNew, err := transform.Fit(to.View(), 0.6, 0.6, transform.Options{Normalize: true})
		if err != nil {
			t.Fatal(err)
		}
		repaired, rs, ok := MaintainIndex(ix, from, to, pNew.EdgeWeight(), pOld.EdgeWeight(), 0)
		if !ok {
			t.Fatalf("auth %v: weighted repair refused an in-bounds authority update", newAuth)
		}
		if rs.Authority != 1 {
			t.Fatalf("auth %v: stats %+v, want Authority=1", newAuth, rs)
		}
		g, err := to.Graph()
		if err != nil {
			t.Fatal(err)
		}
		fresh := pll.BuildWithOptions(g, pll.Options{Weight: pNew.EdgeWeight()})
		sampleDistancesAgree(t, rng, repaired, fresh, g.NumNodes())
		s.Close()
	}
}

// TestMaintainDeltaBornNodeWeighted is the regression test for the
// crash the end-to-end drive caught: a weighted repair whose delta
// adds a node and then removes/re-weights/tombstones edges touching
// it used to index the *old* fit's normalization arrays past their
// length (the old fit predates the node). The old weight function
// must route delta-born edges to the new fit instead.
func TestMaintainDeltaBornNodeWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	base := boundsPinnedGraph(rng, 20)
	s := mustOpen(t, base, Config{})
	from := s.Snapshot()
	pOld, err := transform.Fit(from.View(), 0.6, 0.6, transform.Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	ix := pll.BuildWithOptions(base, pll.Options{Weight: pOld.EdgeWeight()})

	// The exact crash sequence: add a node, wire it in, re-weight the
	// new edge, remove it, re-add it, tombstone the node.
	id, _, err := s.AddExpert("ada", 30, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	mustMutate := func(_ uint64, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustMutate(s.AddCollaboration(id, 3, 0.3))
	mustMutate(s.UpdateCollaboration(id, 3, 0.4))
	mustMutate(s.RemoveCollaboration(id, 3))
	mustMutate(s.AddCollaboration(id, 5, 0.25))
	mustMutate(s.RemoveExpert(id))
	to := s.Snapshot()

	pNew, err := transform.Fit(to.View(), 0.6, 0.6, transform.Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	repaired, _, ok := MaintainIndex(ix, from, to, pNew.EdgeWeight(), pOld.EdgeWeight(), 0)
	if !ok {
		t.Fatal("weighted repair refused a delta-born-node lifecycle")
	}
	g, err := to.Graph()
	if err != nil {
		t.Fatal(err)
	}
	fresh := pll.BuildWithOptions(g, pll.Options{Weight: pNew.EdgeWeight()})
	sampleDistancesAgree(t, rng, repaired, fresh, g.NumNodes())
}

// TestMaintainNoopAuthoritySkip is the regression test for the
// satellite fix: SetAuthority equal to the node's current authority
// changes no G' weight, so a weighted index must absorb it for free —
// not force a rebuild (PR 2 rejected every authority update, even
// no-ops).
func TestMaintainNoopAuthoritySkip(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	base := testGraph(rng, 20)
	s := mustOpen(t, base, Config{})
	from := s.Snapshot()
	p, err := transform.Fit(from.View(), 0.6, 0.6, transform.Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	weight := p.EdgeWeight()
	ix := pll.BuildWithOptions(base, pll.Options{Weight: weight})

	same := base.Authority(4)
	if _, err := s.UpdateExpert(4, &same, nil); err != nil {
		t.Fatal(err)
	}
	to := s.Snapshot()

	// No oldWeight supplied: a value-changing update would be refused,
	// but the no-op must be recognized and skipped.
	repaired, rs, ok := MaintainIndex(ix, from, to, weight, nil, 0)
	if !ok {
		t.Fatal("weighted repair rejected a value-unchanged authority update")
	}
	if rs.Skipped != 1 || rs.Authority != 0 {
		t.Fatalf("stats %+v, want Skipped=1 Authority=0", rs)
	}
	g, err := to.Graph()
	if err != nil {
		t.Fatal(err)
	}
	sampleDistancesAgree(t, rng, repaired, pll.BuildWithOptions(g, pll.Options{Weight: weight}), g.NumNodes())
}

// TestMaintainWeightedExtremeRetirement is the covering-bounds payoff:
// removing the edge that holds the extreme weight — and re-authoring
// the expert holding the extreme inverse authority — used to move the
// tight normalization bounds and force a full weighted rebuild. Under
// the covering contract the bounds stay put, sameBounds holds, the
// delta routes through decremental repair, and the repaired index
// agrees with a fresh build over the widened materialized graph.
func TestMaintainWeightedExtremeRetirement(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	base := testGraph(rng, 30) // no sentinel pinning: extremes are live values
	s := mustOpen(t, base, Config{})
	from := s.Snapshot()
	p, err := transform.Fit(from.View(), 0.6, 0.6, transform.Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	weight := p.EdgeWeight()
	ix := pll.BuildWithOptions(base, pll.Options{Weight: weight})

	// Retire the max-weight edge.
	view := from.View()
	var mu, mv expertgraph.NodeID
	mw := -1.0
	for u := 0; u < view.NumNodes(); u++ {
		view.Neighbors(expertgraph.NodeID(u), func(v expertgraph.NodeID, w float64) bool {
			if expertgraph.NodeID(u) < v && w > mw {
				mu, mv, mw = expertgraph.NodeID(u), v, w
			}
			return true
		})
	}
	if _, hi := view.EdgeWeightBounds(); mw != hi {
		t.Fatalf("scan found max %v, bounds say %v", mw, hi)
	}
	if _, err := s.RemoveCollaboration(mu, mv); err != nil {
		t.Fatal(err)
	}
	// Retire the max inverse authority (the lowest-authority expert).
	lowest, lowAuth := expertgraph.NodeID(0), math.Inf(1)
	for u := 0; u < view.NumNodes(); u++ {
		if a := view.Authority(expertgraph.NodeID(u)); a < lowAuth {
			lowest, lowAuth = expertgraph.NodeID(u), a
		}
	}
	mid := lowAuth + 5
	if _, err := s.UpdateExpert(lowest, &mid, nil); err != nil {
		t.Fatal(err)
	}
	to := s.Snapshot()

	// Covering bounds must be unchanged — that is the whole point.
	if !sameBounds(from.View(), to.View()) {
		t.Fatal("covering bounds moved under extreme retirement")
	}
	p2, err := transform.Fit(to.View(), 0.6, 0.6, transform.Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	repaired, rs, ok := MaintainIndex(ix, from, to, p2.EdgeWeight(), weight, 0)
	if !ok {
		t.Fatal("weighted repair refused an extreme retirement; covering bounds should keep it repairable")
	}
	if rs.Removed != 1 || rs.Authority != 1 {
		t.Fatalf("stats %+v, want Removed=1 Authority=1", rs)
	}
	g, err := to.Graph()
	if err != nil {
		t.Fatal(err)
	}
	fresh := pll.BuildWithOptions(g, pll.Options{Weight: p2.EdgeWeight()})
	sampleDistancesAgree(t, rng, repaired, fresh, g.NumNodes())
}

// TestOverlayDecrementalBounds pins the covering contract on the
// subtractive path: removals that retire the current extreme edge
// weight (and, via node removal, the extreme authority) leave the
// bounds in place — still containing every surviving value — while
// BoundsTight turns false, and the materialized graph widens to answer
// the identical bounds.
func TestOverlayDecrementalBounds(t *testing.T) {
	b := expertgraph.NewBuilder(4, 4)
	b.AddNode("low", 1, "a")   // inv 1.0: the max extreme
	b.AddNode("mid", 4, "b")   // inv 0.25
	b.AddNode("high", 10, "c") // inv 0.1: the min extreme
	b.AddNode("other", 5, "d") // inv 0.2
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.9) // max weight
	b.AddEdge(2, 3, 0.1) // min weight
	b.AddEdge(0, 3, 0.4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, g, Config{})
	if _, err := s.RemoveCollaboration(1, 2); err != nil { // retire max weight
		t.Fatal(err)
	}
	if _, err := s.RemoveExpert(2); err != nil { // retire min inverse authority
		t.Fatal(err)
	}
	snap := s.Snapshot()
	gm, err := snap.Graph()
	if err != nil {
		t.Fatal(err)
	}
	gv := snap.View()
	if vl, vh := gv.EdgeWeightBounds(); true {
		ml, mh := gm.EdgeWeightBounds()
		if vl != ml || vh != mh {
			t.Fatalf("edge bounds: view (%v,%v) vs graph (%v,%v)", vl, vh, ml, mh)
		}
		if vl != 0.1 || vh != 0.9 {
			t.Fatalf("edge bounds (%v,%v), want covering (0.1,0.9) — retirements must not shrink them", vl, vh)
		}
	}
	if vl, vh := gv.InvAuthorityBounds(); true {
		ml, mh := gm.InvAuthorityBounds()
		if vl != ml || vh != mh {
			t.Fatalf("inv bounds: view (%v,%v) vs graph (%v,%v)", vl, vh, ml, mh)
		}
		if vl != 0.1 || vh != 1.0 {
			t.Fatalf("inv bounds (%v,%v), want covering (0.1,1.0) — tombstones must not shrink them", vl, vh)
		}
	}
	// Both retired extremes had a single holder, so both bound pairs are
	// provably no longer tight.
	wTight, invTight := gv.(interface{ BoundsTight() (bool, bool) }).BoundsTight()
	if wTight {
		t.Fatal("edge-weight bounds reported tight after the sole extreme holders retired")
	}
	if invTight {
		t.Fatal("inverse-authority bounds reported tight after the min holder was tombstoned")
	}
}

// TestCompactorWatermark is the regression test for the poll-only
// compactor: with an hour-long poll interval, a write burst crossing
// the record trigger must still fold promptly, via the watermark
// signal Apply sends on the compactor's wake channel.
func TestCompactorWatermark(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	s := mustOpen(t, testGraph(rng, 20), Config{JournalPath: filepath.Join(t.TempDir(), "wal")})
	comp, err := s.StartCompactor(CompactorConfig{
		Interval:   time.Hour, // the poll alone would never fire in this test
		MinRecords: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer comp.Stop()

	mutateRandomly(t, s, rng, 64)
	deadline := time.Now().Add(5 * time.Second)
	for s.Compactions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watermark signal did not trigger a fold within 5s (poll interval is 1h)")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := comp.Stats(); st.Wakeups == 0 {
		t.Errorf("fold happened but no watermark wakeup recorded: %+v", st)
	}
	if s.BaseEpoch() == 0 {
		t.Error("fold did not re-base the store")
	}
}
