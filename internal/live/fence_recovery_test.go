package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"authteam/internal/expertgraph"
)

// TestApplyGroupAbortsOnMemberFailure pins the all-or-nothing contract
// of a replicated group run: the first record to fail validation aborts
// every record sharing its commit batch and every later one, leaving
// the store — and its journal — at a clean prefix boundary, never with
// a suffix committed at epochs shifted down by the dropped record.
func TestApplyGroupAbortsOnMemberFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dir := t.TempDir()
	path := filepath.Join(dir, "g.wal")
	g := testGraph(rng, 10)
	s := mustOpen(t, g, Config{JournalPath: path})

	grp := []Mutation{
		{Op: OpAddNode, Name: "g1", Authority: 2},
		{Op: OpAddEdge, U: 0, V: 99, W: 0.5}, // invalid: unknown node
		{Op: OpAddNode, Name: "g3", Authority: 3},
		{Op: OpAddNode, Name: "g4", Authority: 4},
	}
	last, applied, err := s.ApplyGroup(grp)
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("group with invalid member: %v, want ErrUnknownNode", err)
	}
	// Only a prefix that landed in an *earlier* commit batch may stick
	// (here at most the first record, if the committer raced ahead of
	// the enqueue); everything from the failure's own batch onward must
	// abort. In particular the records after the bad one never commit —
	// the old behavior committed them at epochs shifted down by one.
	if applied > 1 {
		t.Fatalf("applied %d records of a failed group, want at most the pre-failure batch prefix (1)", applied)
	}
	if got := s.Epoch(); got != uint64(applied) || (applied > 0 && last != uint64(applied)) {
		t.Fatalf("epoch %d / last %d after %d applied: the surviving prefix must be contiguous", got, last, applied)
	}
	if n := s.Snapshot().NumNodes(); n != 10+applied {
		t.Fatalf("node count %d after aborted group, want %d", n, 10+applied)
	}

	// The journal agrees: a replay lands at the same clean prefix, not
	// at a misaligned history that silently includes g3/g4.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, g, Config{JournalPath: path})
	defer s2.Close()
	if s2.Epoch() != uint64(applied) || s2.Snapshot().NumNodes() != 10+applied {
		t.Fatalf("replayed store: epoch %d nodes %d, want %d and %d",
			s2.Epoch(), s2.Snapshot().NumNodes(), applied, 10+applied)
	}

	// A clean group still commits whole, from wherever the prefix ended.
	base := s2.Epoch()
	last, n, err := s2.ApplyGroup([]Mutation{
		{Op: OpAddNode, Name: "ok1", Authority: 2},
		{Op: OpAddEdge, U: 0, V: expertgraph.NodeID(10 + applied), W: 0.4},
	})
	if err != nil || n != 2 || last != base+2 {
		t.Fatalf("clean group after abort: applied %d last %d err %v, want 2 at %d", n, last, err, base+2)
	}
}

// TestAdoptBaseRewindsFencedStore pins the failover-resync exception to
// AdoptBase's "never behind the store" rule: a fenced store adopting a
// base of the surviving lineage (term at least its fence term) may
// rewind — its suffix past the fence is divergent history whose
// discard is the point — while an un-fenced store, or a fenced store
// offered a base of a lineage older than the one that fenced it, still
// refuses.
func TestAdoptBaseRewindsFencedStore(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	s := mustOpen(t, testGraph(rng, 10), Config{})
	defer s.Close()

	for i := 0; i < 3; i++ {
		if _, _, err := s.AddExpert(fmt.Sprintf("old%d", i), 2, nil); err != nil {
			t.Fatal(err)
		}
	}
	newBase := testGraph(rng, 5)

	// Un-fenced: a base behind the store is a stale source, refused.
	if err := s.AdoptBase(newBase, 1, 0); err == nil {
		t.Fatal("un-fenced store adopted a base behind its epoch")
	}

	// Fenced by term 2, offered a base of term 1: that lineage did not
	// depose this store; rewinding onto it would lose the fence's
	// guarantee. Still refused.
	if err := s.Demote(2); err != nil {
		t.Fatal(err)
	}
	if err := s.AdoptBase(newBase, 1, 1); err == nil {
		t.Fatal("fenced store adopted a behind-epoch base of an older term")
	}
	if !s.Fenced() || s.Epoch() != 3 {
		t.Fatalf("refused adoption changed the store: fenced %v epoch %d", s.Fenced(), s.Epoch())
	}

	// Fenced by term 2, offered the surviving lineage's base (term 2,
	// epoch 1 < 3): the rewind is allowed, the fence clears, and the
	// store is writable on the new lineage.
	if err := s.AdoptBase(newBase, 1, 2); err != nil {
		t.Fatalf("fenced store refused the surviving lineage's base: %v", err)
	}
	if s.Fenced() || s.Epoch() != 1 || s.Term() != 2 {
		t.Fatalf("after rewind: fenced %v epoch %d term %d, want clear, 1, 2", s.Fenced(), s.Epoch(), s.Term())
	}
	if n := s.Snapshot().NumNodes(); n != 5 {
		t.Fatalf("rewound store kept %d nodes, want the adopted base's 5", n)
	}
	if _, epoch, err := s.AddExpert("new", 3, nil); err != nil || epoch != 2 {
		t.Fatalf("write after rewind: epoch %d, %v", epoch, err)
	}
	tctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	muts, _, err := s.TailSince(tctx, 1, 0)
	if err != nil || len(muts) != 1 || muts[0].Term != 2 {
		t.Fatalf("post-rewind tail: %d muts (%v), want one record minted under term 2", len(muts), err)
	}
}
