package live

import (
	"authteam/internal/expertgraph"
	"authteam/internal/pll"
)

// Incremental 2-hop cover maintenance across epochs. Rebuilding a PLL
// index is the single most expensive computation in the system
// (O(n·m)-ish), so the serving layer asks MaintainIndex to carry an
// existing index forward through the mutation delta first, and only
// rebuilds when the delta is not repairable (or too large to be worth
// repairing — repaired labels are a superset of a fresh build's, so
// unbounded repair would let them drift).
//
// Group commit leaves this file's contract untouched: epochs remain
// per-op-absolute (a batch of N ops advances the epoch by N), so the
// MutationsSince windows repair consumes are the same op-granular
// deltas they were under the serial writer.

// WeightFunc mirrors oracle.WeightFunc / pll.Options.Weight: the
// search-weight transformation the index was built over (nil = stored
// weights).
type WeightFunc = func(u, v expertgraph.NodeID, w float64) float64

// RepairStats summarizes what one MaintainIndex call did, op by op, so
// the serving layer can report which repair kinds are absorbing the
// write stream.
type RepairStats struct {
	// Inserted counts edge insertions (and re-weights that made an edge
	// lighter) absorbed by resumed searches.
	Inserted int `json:"inserted"`
	// Removed counts remove_edge/remove_node mutations absorbed by
	// decremental invalidation + regional recomputation.
	Removed int `json:"removed"`
	// Reweighted counts update_edge mutations repaired (each routed to
	// the insert- or decrement-style path by weight direction).
	Reweighted int `json:"reweighted"`
	// Authority counts authority updates on weighted indexes repaired
	// as per-incident-edge re-weights.
	Authority int `json:"authority"`
	// Skipped counts mutations that provably change no distance on this
	// index (value-unchanged authority updates, skill grants, equal
	// search-weight re-weights) and were absorbed for free.
	Skipped int `json:"skipped"`
	// Visits is the total label-touch count of the repair — the work
	// measure to weigh against a full rebuild.
	Visits int `json:"visits"`
	// VisitsExceeded is set when the repair was abandoned because its
	// visit count crossed RepairLimits.Visits mid-delta (ok=false); the
	// caller should fall back to a rebuild.
	VisitsExceeded bool `json:"visits_exceeded,omitempty"`
}

// Decremental reports whether the repair used decremental machinery
// (entry invalidation), the kind a fully dynamic cover adds over the
// insert-only dynamization.
func (rs RepairStats) Decremental() bool { return rs.Removed > 0 }

// Reweight reports whether the repair handled any weight-changing op
// (edge re-weights or authority updates).
func (rs RepairStats) Reweight() bool { return rs.Reweighted > 0 || rs.Authority > 0 }

// RepairLimits bounds one MaintainIndexWithin call. The zero value is
// unbounded.
type RepairLimits struct {
	// Mutations caps the delta length accepted for repair (≤ 0 means
	// unbounded): a staleness budget — repaired labels are a superset
	// of a fresh build's, so unbounded drift is undesirable anyway.
	Mutations int
	// Visits caps the repair's label-touch count (≤ 0 means
	// unbounded): a work budget, checked after every mutation, so one
	// pathological op — a central-edge removal invalidating a huge
	// label region — abandons the repair early instead of costing more
	// than the rebuild it was meant to avoid. An exceeded budget sets
	// RepairStats.VisitsExceeded.
	Visits int
}

// MaintainIndex returns an index valid at snapshot `to`, derived from
// ix — an index valid at snapshot `from` over weight function weight —
// by replaying the mutation delta: insertions and weight decreases
// with resumed pruned Dijkstras, removals and weight increases with
// decremental invalidation + regional recomputation, and authority
// updates on weighted indexes as per-incident-edge re-weights
// (pll.DynamicIndex throughout). It returns ok=false when the delta
// cannot be repaired incrementally and the caller must rebuild:
//
//   - the delta exceeds budget mutations (staleness budget; budget ≤ 0
//     means unbounded),
//   - a weighted index saw the graph's normalization bounds move (a new
//     or vanished extreme edge weight or authority rescales *every*
//     edge weight), or
//   - a weighted index saw a value-changing authority update but the
//     caller did not supply oldWeight — the weight function the index
//     was built over at `from` — which the decremental tight tests
//     need to recognize entries created under the old authorities.
//
// Value-unchanged authority updates (SetAuthority equal to the node's
// current authority) change no G′ weight and are skipped, never
// rejected. Raw-weight indexes (weight == nil) ignore authority and
// skill updates entirely and need no oldWeight.
//
// Both anchors are snapshots, never store state, so repair keeps
// working while — and after — the store re-bases in place: `from` may
// predate a fold (its mutations are then bridged through the retained
// previous-generation log) and only an anchor more than one fold
// generation old forces the rebuild fallback.
//
// For weighted indexes, weight must be derived from `to`'s fitted
// parameters and oldWeight (when supplied) from `from`'s. Both
// snapshots must come from the same store. ix is not modified.
//
// budget caps the delta length (≤ 0 means unbounded); it is
// RepairLimits.Mutations — MaintainIndexWithin adds a per-op visit
// budget on top.
func MaintainIndex(ix *pll.Index, from, to *Snapshot, weight, oldWeight WeightFunc, budget int) (*pll.Index, RepairStats, bool) {
	return MaintainIndexWithin(ix, from, to, weight, oldWeight, RepairLimits{Mutations: budget})
}

// MaintainIndexWithin is MaintainIndex under explicit limits: the
// staleness budget (lim.Mutations, checked up front) and the work
// budget (lim.Visits, checked after every repaired mutation — the
// first op to push the cumulative label-touch count past it abandons
// the repair with ok=false and RepairStats.VisitsExceeded set, so a
// single catastrophic decremental op costs at most one budget's worth
// of work before the caller falls back to a rebuild).
func MaintainIndexWithin(ix *pll.Index, from, to *Snapshot, weight, oldWeight WeightFunc, lim RepairLimits) (*pll.Index, RepairStats, bool) {
	var rs RepairStats
	muts, ok := to.MutationsSince(from.Epoch())
	if !ok {
		return nil, rs, false
	}
	if len(muts) == 0 {
		return ix, rs, true
	}
	if lim.Mutations > 0 && len(muts) > lim.Mutations {
		return nil, rs, false
	}
	// Repairs read through the overlay views, never a materialized
	// graph: the resumed and regional searches touch only the
	// neighbourhood of the changed edges, so the overlay's per-read
	// overhead is noise and the zero-materialization discipline of the
	// serving path holds.
	fromG := from.View()
	toG := to.View()
	if weight != nil && !sameBounds(fromG, toG) {
		return nil, rs, false
	}
	if oldWeight != nil {
		// The old fit only knows the nodes of `from`. An edge touching a
		// delta-born node can only ever have been weighed by the new
		// fit, so route it there instead of indexing past the old fit's
		// normalization arrays.
		nFrom, prev := fromG.NumNodes(), oldWeight
		oldWeight = func(u, v expertgraph.NodeID, w float64) float64 {
			if int(u) >= nFrom || int(v) >= nFrom {
				return weight(u, v, w)
			}
			return prev(u, v, w)
		}
	}

	// curAuth tracks each touched node's authority through the delta so
	// value-unchanged updates are recognized mid-stream; nodes added in
	// the delta are seeded by their add_node record (fromG cannot
	// answer for them).
	var curAuth map[expertgraph.NodeID]float64
	authOf := func(u expertgraph.NodeID) float64 {
		if a, ok := curAuth[u]; ok {
			return a
		}
		return fromG.Authority(u)
	}
	setAuth := func(u expertgraph.NodeID, a float64) {
		if curAuth == nil {
			curAuth = make(map[expertgraph.NodeID]float64)
		}
		curAuth[u] = a
	}

	d := pll.NewDynamic(ix, weight)
	if oldWeight != nil {
		// Entries surviving from `from` were created under the old
		// weight function; decremental tight tests must recognize both.
		d.SetAltWeight(oldWeight)
	}
	// pg replays the delta state by state: every repair below runs
	// against the graph its mutation actually produced, which the
	// decremental detection (pre-op shortest paths queried from the
	// index, exact for the previous state by induction) requires.
	pg := newPatchGraph(fromG)
	// Grow the index to the final node count first — node additions
	// commute, a node is isolated until its edges arrive — and seed the
	// authority tracker for delta-born nodes.
	nextID := expertgraph.NodeID(fromG.NumNodes())
	for _, m := range muts {
		if m.Op == OpAddNode {
			d.AddNode()
			pg.addNode()
			setAuth(nextID, m.Authority)
			nextID++
		}
	}

	// oldWs returns the candidate search weights an edge may have had
	// when surviving entries were created: under the current weight
	// function and — when the function drifted — under the old one.
	oldWs := func(u, v expertgraph.NodeID, rawOld float64) []float64 {
		if weight == nil {
			return []float64{rawOld}
		}
		w1 := weight(u, v, rawOld)
		if oldWeight == nil {
			return []float64{w1}
		}
		if w2 := oldWeight(u, v, rawOld); w2 != w1 {
			return []float64{w1, w2}
		}
		return []float64{w1}
	}

	for _, m := range muts {
		switch m.Op {
		case OpAddEdge:
			pg.addEdge(m.U, m.V, m.W)
			d.InsertEdge(pg, m.U, m.V, m.W)
			rs.Inserted++

		case OpRemoveEdge:
			pg.removeEdge(m.U, m.V)
			d.RemoveEdge(pg, m.U, m.V, oldWs(m.U, m.V, m.W)...)
			rs.Removed++

		case OpRemoveNode:
			// Retire the node edge by edge, each removal repaired
			// against its own post-state.
			for _, e := range m.Edges {
				pg.removeEdge(m.Node, e.V)
				d.RemoveEdge(pg, m.Node, e.V, oldWs(m.Node, e.V, e.W)...)
			}
			rs.Removed++

		case OpUpdateEdge:
			var oldS, newS float64
			if weight != nil {
				oldS, newS = weight(m.U, m.V, m.OldW), weight(m.U, m.V, m.W)
			} else {
				oldS, newS = m.OldW, m.W
			}
			pg.updateEdge(m.U, m.V, m.W)
			switch {
			case newS < oldS:
				d.InsertEdge(pg, m.U, m.V, m.W)
				rs.Reweighted++
			case newS > oldS:
				d.IncreaseEdge(pg, m.U, m.V, oldWs(m.U, m.V, m.OldW)...)
				rs.Reweighted++
			default:
				// Equal search weight (a raw change the normalizer maps
				// to the same G' weight): no distance can move.
				rs.Skipped++
			}

		case OpUpdateNode:
			if m.SetAuthority == nil {
				continue // skill grants never touch edge weights
			}
			old, next := authOf(m.Node), *m.SetAuthority
			setAuth(m.Node, next)
			if next == old {
				// Value-unchanged update: a'(node) — and thus every G'
				// weight — is identical. Absorb it for free instead of
				// forcing a rebuild.
				rs.Skipped++
				continue
			}
			if weight == nil {
				continue // raw indexes are indifferent to authority
			}
			if oldWeight == nil {
				return nil, rs, false
			}
			// The update re-weights exactly the node's incident edges
			// (bounds are unchanged, checked above, so all other G'
			// weights are stable). Authority increases make them all
			// lighter — batch re-insertions; decreases make them heavier
			// — one *atomic* decremental batch (repairing the edges one
			// at a time would corrupt the tight-chain detection, see
			// pll.IncreaseEdges). pg's adjacency is the node's adjacency
			// at this point of the delta, so earlier insertions are
			// included and earlier removals excluded.
			var heavier []pll.EdgeChange
			pg.Neighbors(m.Node, func(v expertgraph.NodeID, raw float64) bool {
				oS, nS := oldWeight(m.Node, v, raw), weight(m.Node, v, raw)
				switch {
				case nS < oS:
					d.InsertEdge(pg, m.Node, v, raw)
				case nS > oS:
					heavier = append(heavier, pll.EdgeChange{U: m.Node, V: v, WOld: []float64{oS, nS}})
				}
				return true
			})
			if len(heavier) > 0 {
				d.IncreaseEdges(pg, heavier)
			}
			rs.Authority++
		}
		if lim.Visits > 0 && d.Visits() > lim.Visits {
			rs.Visits = d.Visits()
			rs.VisitsExceeded = true
			return nil, rs, false
		}
	}
	rs.Visits = d.Visits()
	return d.Freeze(), rs, true
}

// patchGraph is a cheap mutable adjacency overlay used only inside
// MaintainIndex: it replays the mutation delta over the `from` view
// one op at a time, so each repair traverses exactly the graph its
// mutation produced. Rows are copied from the base lazily, on first
// touch; untouched nodes read straight through.
type patchGraph struct {
	base expertgraph.GraphView
	n    int
	adj  map[expertgraph.NodeID][]patchHalf
}

type patchHalf struct {
	to expertgraph.NodeID
	w  float64
}

func newPatchGraph(base expertgraph.GraphView) *patchGraph {
	return &patchGraph{base: base, n: base.NumNodes(), adj: make(map[expertgraph.NodeID][]patchHalf)}
}

// Neighbors implements pll.Neighborhood.
func (p *patchGraph) Neighbors(u expertgraph.NodeID, fn func(v expertgraph.NodeID, w float64) bool) {
	if row, ok := p.adj[u]; ok {
		for _, e := range row {
			if !fn(e.to, e.w) {
				return
			}
		}
		return
	}
	p.base.Neighbors(u, fn)
}

// row returns u's mutable adjacency, copying it out of the base view
// on first touch.
func (p *patchGraph) row(u expertgraph.NodeID) []patchHalf {
	if row, ok := p.adj[u]; ok {
		return row
	}
	var row []patchHalf
	if int(u) < p.base.NumNodes() {
		p.base.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			row = append(row, patchHalf{to: v, w: w})
			return true
		})
	}
	p.adj[u] = row
	return row
}

func (p *patchGraph) addNode() {
	p.adj[expertgraph.NodeID(p.n)] = nil
	p.n++
}

func (p *patchGraph) addEdge(u, v expertgraph.NodeID, w float64) {
	p.adj[u] = append(p.row(u), patchHalf{to: v, w: w})
	p.adj[v] = append(p.row(v), patchHalf{to: u, w: w})
}

func (p *patchGraph) removeEdge(u, v expertgraph.NodeID) {
	p.dropHalf(u, v)
	p.dropHalf(v, u)
}

func (p *patchGraph) dropHalf(u, v expertgraph.NodeID) {
	row := p.row(u)
	for i, e := range row {
		if e.to == v {
			last := len(row) - 1
			row[i] = row[last]
			p.adj[u] = row[:last]
			return
		}
	}
}

func (p *patchGraph) updateEdge(u, v expertgraph.NodeID, w float64) {
	p.setHalf(u, v, w)
	p.setHalf(v, u, w)
}

func (p *patchGraph) setHalf(u, v expertgraph.NodeID, w float64) {
	row := p.row(u)
	for i := range row {
		if row[i].to == v {
			row[i].w = w
			return
		}
	}
}

// sameBounds reports whether the min–max normalization inputs of Def. 4
// are identical between two graph views, which makes their fitted
// Params (at equal γ, λ) produce identical G' weights for shared edges.
func sameBounds(a, b expertgraph.GraphView) bool {
	aw0, aw1 := a.EdgeWeightBounds()
	bw0, bw1 := b.EdgeWeightBounds()
	ai0, ai1 := a.InvAuthorityBounds()
	bi0, bi1 := b.InvAuthorityBounds()
	return aw0 == bw0 && aw1 == bw1 && ai0 == bi0 && ai1 == bi1
}
