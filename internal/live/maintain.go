package live

import (
	"authteam/internal/expertgraph"
	"authteam/internal/pll"
)

// Incremental 2-hop cover maintenance across epochs. Rebuilding a PLL
// index is the single most expensive computation in the system
// (O(n·m)-ish), so the serving layer asks MaintainIndex to carry an
// existing index forward through the mutation delta first, and only
// rebuilds when the delta is not repairable (or too large to be worth
// repairing — repaired labels are a superset of a fresh build's, so
// unbounded repair would let them drift).

// WeightFunc mirrors oracle.WeightFunc / pll.Options.Weight: the
// search-weight transformation the index was built over (nil = stored
// weights).
type WeightFunc = func(u, v expertgraph.NodeID, w float64) float64

// MaintainIndex returns an index valid at snapshot `to`, derived from
// ix — an index valid at snapshot `from` over weight function weight —
// by replaying the mutation delta with resumed pruned Dijkstras
// (pll.DynamicIndex). It returns ok=false when the delta cannot be
// repaired incrementally and the caller must rebuild:
//
//   - the delta exceeds budget mutations (staleness budget; budget ≤ 0
//     means unbounded),
//   - a weighted index saw an authority update (it changes the G'
//     weight of every edge at the node, a decremental update resumed
//     searches cannot express), or
//   - a weighted index saw the graph's normalization bounds move (new
//     extreme edge weight or authority rescales *every* edge weight).
//
// Raw-weight indexes (weight == nil) are repairable under every
// insertion and are indifferent to authority and skill updates.
//
// Both anchors are snapshots, never store state, so repair keeps
// working while — and after — the store re-bases in place: `from` may
// predate a fold (its mutations are then bridged through the retained
// previous-generation log) and only an anchor more than one fold
// generation old forces the rebuild fallback.
//
// For weighted indexes, weight must be derived from `to`'s fitted
// parameters; the bounds check above guarantees it agrees with the
// weights ix was built over. Both snapshots must come from the same
// store. ix is not modified.
func MaintainIndex(ix *pll.Index, from, to *Snapshot, weight WeightFunc, budget int) (*pll.Index, bool) {
	muts, ok := to.MutationsSince(from.Epoch())
	if !ok {
		return nil, false
	}
	if len(muts) == 0 {
		return ix, true
	}
	if budget > 0 && len(muts) > budget {
		return nil, false
	}
	for _, m := range muts {
		if weight != nil && m.Op == OpUpdateNode && m.SetAuthority != nil {
			return nil, false
		}
	}
	// Repairs read through the overlay views, never a materialized
	// graph: the resumed Dijkstras touch only the neighbourhood of the
	// inserted edges, so the overlay's per-read overhead is noise and
	// the zero-materialization discipline of the serving path holds.
	toG := to.View()
	if weight != nil && !sameBounds(from.View(), toG) {
		return nil, false
	}

	d := pll.NewDynamic(ix, weight)
	// Grow to the final node count first: resumed searches traverse the
	// *final* graph, which can reach a node added later in the delta
	// through an edge inserted earlier in it. Node additions commute —
	// a node is isolated until its edges arrive.
	for _, m := range muts {
		if m.Op == OpAddNode {
			d.AddNode()
		}
	}
	for _, m := range muts {
		// Update mutations have no effect on any index's distances
		// (authority updates on weighted indexes were rejected above;
		// skill grants never touch edge weights).
		if m.Op == OpAddEdge {
			d.InsertEdge(toG, m.U, m.V, m.W)
		}
	}
	return d.Freeze(), true
}

// sameBounds reports whether the min–max normalization inputs of Def. 4
// are identical between two graph views, which makes their fitted
// Params (at equal γ, λ) produce identical G' weights for shared edges.
func sameBounds(a, b expertgraph.GraphView) bool {
	aw0, aw1 := a.EdgeWeightBounds()
	bw0, bw1 := b.EdgeWeightBounds()
	ai0, ai1 := a.InvAuthorityBounds()
	bi0, bi1 := b.InvAuthorityBounds()
	return aw0 == bw0 && aw1 == bw1 && ai0 == bi0 && ai1 == bi1
}
