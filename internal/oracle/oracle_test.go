package oracle

import (
	"math"
	"math/rand"
	"testing"

	"authteam/internal/expertgraph"
	"authteam/internal/pll"
)

func randomGraph(rng *rand.Rand, n, extra int) *expertgraph.Graph {
	b := expertgraph.NewBuilder(n, n+extra)
	for i := 0; i < n; i++ {
		b.AddNode("", float64(1+rng.Intn(10)))
	}
	type pair struct{ u, v expertgraph.NodeID }
	seen := make(map[pair]bool)
	add := func(u, v expertgraph.NodeID) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			return
		}
		seen[pair{u, v}] = true
		b.AddEdge(u, v, 0.05+rng.Float64())
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(expertgraph.NodeID(perm[i-1]), expertgraph.NodeID(perm[i]))
	}
	for i := 0; i < extra; i++ {
		add(expertgraph.NodeID(rng.Intn(n)), expertgraph.NodeID(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestOraclesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 60, 100)
	dj := NewDijkstra(g, nil)
	pl := BuildPLL(g, nil)
	for trial := 0; trial < 500; trial++ {
		u := expertgraph.NodeID(rng.Intn(60))
		v := expertgraph.NodeID(rng.Intn(60))
		d1, d2 := dj.Dist(u, v), pl.Dist(u, v)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("oracle mismatch at (%d,%d): dijkstra=%v pll=%v", u, v, d1, d2)
		}
	}
}

func TestOraclesAgreeReweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 40, 60)
	// Authority-dependent reweighting, like the G' transform.
	wf := func(u, v expertgraph.NodeID, w float64) float64 {
		return w + 0.5*(g.InvAuthority(u)+g.InvAuthority(v))
	}
	dj := NewDijkstra(g, wf)
	pl := BuildPLL(g, wf)
	for trial := 0; trial < 300; trial++ {
		u := expertgraph.NodeID(rng.Intn(40))
		v := expertgraph.NodeID(rng.Intn(40))
		d1, d2 := dj.Dist(u, v), pl.Dist(u, v)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("reweighted mismatch at (%d,%d): dijkstra=%v pll=%v", u, v, d1, d2)
		}
	}
}

func TestDijkstraSourceCache(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 30, 40)
	dj := NewDijkstra(g, nil)
	a := dj.AllFrom(5)
	b := dj.AllFrom(5)
	if &a[0] != &b[0] {
		t.Error("repeated AllFrom on the same source should reuse the cache")
	}
	d1 := dj.Dist(5, 9)
	c := dj.AllFrom(7) // switch source
	_ = c
	d2 := dj.Dist(5, 9) // switch back: recompute, same value
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("distance changed across cache invalidation: %v vs %v", d1, d2)
	}
}

func TestInvalidate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 20, 20)
	scale := 1.0
	dj := NewDijkstra(g, func(u, v expertgraph.NodeID, w float64) float64 {
		return w * scale
	})
	d1 := dj.Dist(0, 10)
	scale = 2.0
	dj.Invalidate()
	d2 := dj.Dist(0, 10)
	if math.Abs(d2-2*d1) > 1e-9 {
		t.Errorf("after doubling weights: %v, want %v", d2, 2*d1)
	}
}

func TestPLLOracleIndexAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 10, 10)
	ix := pll.Build(g)
	o := NewPLL(ix)
	if o.Index() != ix {
		t.Error("Index() should return the wrapped index")
	}
	if o.Dist(0, 0) != 0 {
		t.Error("self distance should be 0")
	}
}
