// Package oracle abstracts the DIST function of Algorithm 1 behind a
// single interface with two implementations: the exact per-source
// Dijkstra (reference, no preprocessing) and the 2-hop cover index
// (pll) that the paper uses for constant-time queries.
//
// Algorithm 1 probes DIST(root, v) for every candidate root and every
// candidate skill holder v, so oracles also expose a source-major
// access pattern that implementations can exploit (the Dijkstra oracle
// caches the last source's full distance array).
package oracle

import (
	"authteam/internal/expertgraph"
	"authteam/internal/pll"
)

// Oracle answers exact shortest-path distance queries over a fixed
// (possibly reweighted) graph.
type Oracle interface {
	// Dist returns the shortest-path distance from u to v, or +Inf if
	// v is unreachable from u.
	Dist(u, v expertgraph.NodeID) float64
}

// WeightFunc reweights an edge (u, v) with stored weight w. It is how
// the transformed graph G' of §3.2.2 is searched without materializing
// it.
type WeightFunc func(u, v expertgraph.NodeID, w float64) float64

// DijkstraOracle answers queries by running a full single-source
// shortest path computation and caching it per source. Algorithm 1
// iterates roots in order, issuing many queries per root, so the cache
// hit rate is (queries-1)/queries. It is not safe for concurrent use;
// create one per goroutine.
type DijkstraOracle struct {
	ws     *expertgraph.DijkstraWorkspace
	weight WeightFunc
	src    expertgraph.NodeID
	valid  bool
	dist   []float64
}

// NewDijkstra creates an exact oracle over g. A nil weight uses stored
// edge weights.
func NewDijkstra(g expertgraph.GraphView, weight WeightFunc) *DijkstraOracle {
	return &DijkstraOracle{
		ws:     expertgraph.NewDijkstraWorkspace(g),
		weight: weight,
		dist:   make([]float64, g.NumNodes()),
	}
}

// Dist implements Oracle.
func (o *DijkstraOracle) Dist(u, v expertgraph.NodeID) float64 {
	return o.AllFrom(u)[v]
}

// AllFrom returns the distance array from src to every node. The slice
// is owned by the oracle and invalidated by the next call with a
// different source.
func (o *DijkstraOracle) AllFrom(src expertgraph.NodeID) []float64 {
	if o.valid && o.src == src {
		return o.dist
	}
	var res *expertgraph.SSSP
	if o.weight == nil {
		res = o.ws.Run(src)
	} else {
		res = o.ws.RunWeighted(src, o.weight)
	}
	copy(o.dist, res.Dist)
	o.src, o.valid = src, true
	return o.dist
}

// Invalidate drops the cached source, forcing the next query to
// recompute. Needed only if the underlying weight function's captured
// state changes.
func (o *DijkstraOracle) Invalidate() { o.valid = false }

// PLLOracle adapts a prebuilt 2-hop cover index to the Oracle
// interface. It is safe for concurrent use.
type PLLOracle struct {
	ix *pll.Index
}

// NewPLL wraps a prebuilt index.
func NewPLL(ix *pll.Index) *PLLOracle { return &PLLOracle{ix: ix} }

// BuildPLL constructs a 2-hop cover over g (reweighted by weight if
// non-nil) and returns an oracle over it.
func BuildPLL(g expertgraph.GraphView, weight WeightFunc) *PLLOracle {
	ix := pll.BuildWithOptions(g, pll.Options{Weight: weight})
	return &PLLOracle{ix: ix}
}

// BuildPLLParallel is BuildPLL sharded over workers goroutines. The
// resulting index is bit-identical to the sequential build.
func BuildPLLParallel(g expertgraph.GraphView, weight WeightFunc, workers int) *PLLOracle {
	ix := pll.BuildWithOptions(g, pll.Options{Weight: weight, Workers: workers})
	return &PLLOracle{ix: ix}
}

// Dist implements Oracle.
func (o *PLLOracle) Dist(u, v expertgraph.NodeID) float64 { return o.ix.Dist(u, v) }

// Index returns the wrapped index (for stats and serialization).
func (o *PLLOracle) Index() *pll.Index { return o.ix }

var (
	_ Oracle = (*DijkstraOracle)(nil)
	_ Oracle = (*PLLOracle)(nil)
)
