package pll

import (
	"sync"
	"sync/atomic"
	"time"

	"authteam/internal/expertgraph"
)

// Parallel index construction.
//
// The sequential sweep processes landmarks in rank order, each pruned
// Dijkstra pruning against every label committed by lower ranks. That
// dependency chain looks serial, but pruning only ever *shrinks* work:
// a Dijkstra pruned against a rank prefix visits a superset of the
// nodes it would visit pruned against the full lower-rank label set,
// and every node it settles without being prefix-pruned is settled at
// its exact distance (a settle inflated by a pruned-away shortest path
// is always itself prefix-pruned — the first pruned vertex on that
// path hands its covering hub to the whole suffix).
//
// So landmarks are processed in rank blocks [lo, hi):
//
//   - Phase A (parallel): each rank r in the block runs its pruned
//     Dijkstra against the frozen labels committed by ranks < lo,
//     recording the surviving (node, dist) pairs as candidates. All
//     candidate distances are exact, and the candidate set of rank r
//     is a superset of its sequential label entries.
//   - Phase B (serial, cheap): ranks commit in ascending order. Rank r
//     first checks whether any of its candidates is covered by a label
//     entry committed by an in-block rank in [lo, r) — the exact float
//     comparison the sequential sweep would apply at that settle. If
//     none is (the common case: in-block landmarks rarely cover each
//     other's Dijkstra balls), the sequential sweep for r would have
//     made decision-for-decision the same prunes as Phase A did, so the
//     candidates ARE its label entries and commit as-is. Otherwise the
//     rank is contaminated — sequential pruning would also have blocked
//     expansion at the covered nodes, reshaping the downstream settles
//     in ways a filter cannot replay — and the rank falls back to a
//     serial prunedSweep against the now-complete labels below r,
//     reproducing the sequential entries exactly.
//
// The result is bit-identical to the sequential build: same label
// sets, same stored distances (differential-tested across graphs,
// weights and worker counts). Blocks grow geometrically (1, 2, 4, …)
// capped at max(8, 2·workers): early high-degree landmarks do the
// bulk of the pruning and must commit before wide blocks are
// profitable, while the cap bounds both the extra candidate work the
// relaxed prefix pruning admits and the odds of contamination — the
// serial redo of contaminated ranks is what limits the speedup.

// rankCandidate is one surviving settle of a Phase A sweep, in settle
// (distance) order.
type rankCandidate struct {
	u expertgraph.NodeID
	d float64
}

// buildParallel is the Options.Workers > 1 path of BuildWithOptions.
func buildParallel(g expertgraph.GraphView, opt Options) *Index {
	n := g.NumNodes()
	nodeAt, rankOf := landmarkOrder(g, opt.Order)
	workers := opt.Workers
	if workers > n {
		workers = n
	}
	labels := make([][]labelEntry, n)

	scratch := make([]*buildScratch, workers)
	for i := range scratch {
		scratch[i] = newBuildScratch(n)
	}

	// Block cap: bigger blocks amortize the per-block barrier, smaller
	// blocks shrink the in-block window in which Phase A candidates can
	// be covered by freshly committed entries (contaminated ranks redo
	// their sweep serially, so contamination is what bounds the
	// speedup). Measured on a 1.2K-node DBLP corpus, contaminated
	// ranks drop from ~29% at cap 32 to ~15% at cap 8; 2·workers keeps
	// every worker busy per block without widening the window further.
	maxBlock := 2 * workers
	if maxBlock < 8 {
		maxBlock = 8
	}
	cands := make([][]rankCandidate, maxBlock)

	var next atomic.Int64
	var wg sync.WaitGroup
	lo, blockSize := 0, 1
	for lo < n {
		hi := lo + blockSize
		if blockSize > maxBlock {
			hi = lo + maxBlock
		}
		if hi > n {
			hi = n
		}
		start := time.Now()

		// Phase A: per-rank candidate sweeps against the committed
		// prefix. Workers pull ranks off a shared counter; labels are
		// frozen for the whole phase (commits happen only in Phase B),
		// so reads need no locking.
		next.Store(int64(lo))
		spawn := workers
		if spawn > hi-lo {
			spawn = hi - lo
		}
		wg.Add(spawn)
		for w := 0; w < spawn; w++ {
			go func(sc *buildScratch) {
				defer wg.Done()
				for {
					r := int(next.Add(1)) - 1
					if r >= hi {
						return
					}
					cands[r-lo] = candidateSweep(g, opt.Weight, labels, nodeAt[r], sc, cands[r-lo][:0])
				}
			}(scratch[w])
		}
		wg.Wait()

		// Phase B: serial in-rank-order commit. For rank r, a candidate
		// already passed the prefix (< lo) prune in Phase A; if no
		// candidate is covered by an entry committed by an in-block rank
		// in [lo, r) — measured through the landmark's own committed
		// label, exactly the sequential prune test — the sequential
		// sweep for r behaves identically to Phase A's and the
		// candidates commit verbatim. A covered candidate contaminates
		// the whole rank (sequential would have blocked expansion
		// there), so the rank re-runs serially against the complete
		// labels below r.
		hub := scratch[0].hubDist
		for r := lo; r < hi; r++ {
			lm := nodeAt[r]
			cs := cands[r-lo]
			for _, e := range labels[lm] {
				hub[e.rank] = e.dist
			}
			clean := true
		detect:
			for _, cd := range cs {
				l := labels[cd.u]
				// In-block committed entries sit at the sorted tail.
				for i := len(l) - 1; i >= 0 && l[i].rank >= int32(lo); i-- {
					if hub[l[i].rank]+l[i].dist <= cd.d {
						clean = false
						break detect
					}
				}
			}
			for _, e := range labels[lm] {
				hub[e.rank] = infinity
			}
			if clean {
				for _, cd := range cs {
					labels[cd.u] = append(labels[cd.u], labelEntry{rank: int32(r), dist: cd.d})
				}
			} else {
				prunedSweep(g, opt.Weight, labels, lm, int32(r), scratch[0])
			}
		}

		if opt.OnBlock != nil {
			opt.OnBlock(lo, hi, time.Since(start))
		}
		lo = hi
		// Clamp at the cap: doubling past it would overflow to zero on
		// long builds (n/maxBlock > 63 blocks) and stall the loop.
		if blockSize < maxBlock {
			blockSize *= 2
		}
	}
	return packIndex(labels, rankOf, nodeAt)
}

// candidateSweep runs one rank's pruned Dijkstra against the committed
// prefix labels and appends the surviving settles to out in settle
// order.
func candidateSweep(g expertgraph.GraphView,
	weight func(u, v expertgraph.NodeID, w float64) float64,
	labels [][]labelEntry, lm expertgraph.NodeID,
	sc *buildScratch, out []rankCandidate) []rankCandidate {

	for _, e := range labels[lm] {
		sc.hubDist[e.rank] = e.dist
	}
	sc.h.reset()
	sc.h.push(lm, 0)
	sc.dist[lm] = 0
	sc.touched = append(sc.touched[:0], lm)

	for sc.h.len() > 0 {
		u, du := sc.h.pop()
		if sc.visited[u] || du > sc.dist[u] {
			continue
		}
		sc.visited[u] = true
		pruned := false
		for _, e := range labels[u] {
			if hd := sc.hubDist[e.rank]; hd+e.dist <= du {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		out = append(out, rankCandidate{u: u, d: du})
		g.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			if weight != nil {
				w = weight(u, v, w)
			}
			if nd := du + w; nd < sc.dist[v] {
				if sc.dist[v] == infinity {
					sc.touched = append(sc.touched, v)
				}
				sc.dist[v] = nd
				sc.h.push(v, nd)
			}
			return true
		})
	}

	sc.clear()
	for _, e := range labels[lm] {
		sc.hubDist[e.rank] = infinity
	}
	return out
}
