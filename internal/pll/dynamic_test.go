package pll

import (
	"math"
	"math/rand"
	"testing"

	"authteam/internal/expertgraph"
)

// edgeSet collects the existing undirected edges of g for sampling
// fresh pairs.
func edgeSet(g *expertgraph.Graph) map[[2]expertgraph.NodeID]bool {
	seen := make(map[[2]expertgraph.NodeID]bool)
	for u := expertgraph.NodeID(0); int(u) < g.NumNodes(); u++ {
		g.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			if u < v {
				seen[[2]expertgraph.NodeID{u, v}] = true
			}
			return true
		})
	}
	return seen
}

// checkAllPairs compares every pair's distance between the repaired
// dynamic index and a from-scratch build over the same graph.
func checkAllPairs(t *testing.T, d *DynamicIndex, fresh *Index, n int) {
	t.Helper()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			got := d.Dist(expertgraph.NodeID(u), expertgraph.NodeID(v))
			want := fresh.Dist(expertgraph.NodeID(u), expertgraph.NodeID(v))
			if math.IsInf(got, 1) && math.IsInf(want, 1) {
				continue
			}
			if diff := math.Abs(got - want); diff > 1e-9 {
				t.Fatalf("dist(%d,%d): repaired %v, rebuilt %v", u, v, got, want)
			}
		}
	}
}

func TestDynamicInsertEdgeMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 12 + rng.Intn(30)
		g := randomGraph(rng, n, n/2)
		base := Build(g)

		// Pick fresh edges to insert.
		existing := edgeSet(g)
		type edge struct {
			u, v expertgraph.NodeID
			w    float64
		}
		var inserts []edge
		for len(inserts) < 2+rng.Intn(8) {
			u := expertgraph.NodeID(rng.Intn(n))
			v := expertgraph.NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if existing[[2]expertgraph.NodeID{u, v}] {
				continue
			}
			existing[[2]expertgraph.NodeID{u, v}] = true
			inserts = append(inserts, edge{u, v, 0.05 + rng.Float64()})
		}

		b := g.Thaw(0, len(inserts))
		for _, e := range inserts {
			b.AddEdge(e.u, e.v, e.w)
		}
		g2, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}

		d := NewDynamic(base, nil)
		for _, e := range inserts {
			d.InsertEdge(g2, e.u, e.v, e.w)
		}
		checkAllPairs(t, d, Build(g2), n)
	}
}

func TestDynamicAddNodeMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(20)
		g := randomGraph(rng, n, n/3)
		base := Build(g)
		d := NewDynamic(base, nil)

		// Grow the graph with new nodes, each wired to 1–3 existing or
		// new nodes, replaying the same sequence into the builder.
		b := g.Thaw(4, 12)
		type edge struct {
			u, v expertgraph.NodeID
			w    float64
		}
		var newEdges []edge
		total := n
		for a := 0; a < 3; a++ {
			id := b.AddNode("", 1)
			if got := d.AddNode(); got != id {
				t.Fatalf("AddNode id %d, builder assigned %d", got, id)
			}
			deg := 1 + rng.Intn(3)
			used := map[expertgraph.NodeID]bool{id: true}
			for j := 0; j < deg; j++ {
				v := expertgraph.NodeID(rng.Intn(total))
				if used[v] {
					continue
				}
				used[v] = true
				w := 0.05 + rng.Float64()
				b.AddEdge(id, v, w)
				newEdges = append(newEdges, edge{id, v, w})
			}
			total++
		}
		g2, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range newEdges {
			d.InsertEdge(g2, e.u, e.v, e.w)
		}
		checkAllPairs(t, d, Build(g2), total)
	}
}

func TestDynamicWeightedInsertMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// A G'-shaped weight function: node terms plus a scaled edge term,
	// mirroring how transform.Params reweights edges.
	weight := func(u, v expertgraph.NodeID, w float64) float64 {
		return 0.01*float64(u%7) + 0.01*float64(v%7) + 2*w
	}
	for trial := 0; trial < 15; trial++ {
		n := 12 + rng.Intn(20)
		g := randomGraph(rng, n, n/2)
		base := BuildWithOptions(g, Options{Weight: weight})

		existing := edgeSet(g)
		var u, v expertgraph.NodeID
		for {
			u = expertgraph.NodeID(rng.Intn(n))
			v = expertgraph.NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if !existing[[2]expertgraph.NodeID{u, v}] {
				break
			}
		}
		w := 0.05 + rng.Float64()
		b := g.Thaw(0, 1)
		b.AddEdge(u, v, w)
		g2, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}

		d := NewDynamic(base, weight)
		d.InsertEdge(g2, u, v, w)
		checkAllPairs(t, d, BuildWithOptions(g2, Options{Weight: weight}), n)
	}
}

func TestDynamicFreezeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 25, 15)
	base := Build(g)

	d := NewDynamic(base, nil)
	id := d.AddNode()
	b := g.Thaw(1, 2)
	if got := b.AddNode("", 1); got != id {
		t.Fatalf("id mismatch: %d vs %d", got, id)
	}
	b.AddEdge(id, 0, 0.3)
	b.AddEdge(id, 5, 0.7)
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d.InsertEdge(g2, id, 0, 0.3)
	d.InsertEdge(g2, id, 5, 0.7)

	frozen := d.Freeze()
	if frozen.NumNodes() != g2.NumNodes() {
		t.Fatalf("frozen nodes %d, graph %d", frozen.NumNodes(), g2.NumNodes())
	}
	for u := 0; u < g2.NumNodes(); u++ {
		for v := 0; v < g2.NumNodes(); v++ {
			a := d.Dist(expertgraph.NodeID(u), expertgraph.NodeID(v))
			b := frozen.Dist(expertgraph.NodeID(u), expertgraph.NodeID(v))
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Fatalf("freeze changed dist(%d,%d): %v vs %v", u, v, a, b)
			}
		}
	}
	// The repair accounting must have registered work.
	if d.Visits() == 0 {
		t.Error("expected repair visits to be counted")
	}
}

func TestDynamicNoopOnRedundantEdge(t *testing.T) {
	// Inserting an edge that creates no shorter path must not corrupt
	// distances (it may add a few entries, but queries stay exact).
	b := expertgraph.NewBuilder(4, 4)
	for i := 0; i < 4; i++ {
		b.AddNode("", 1)
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	base := Build(g)
	b2 := g.Thaw(0, 1)
	b2.AddEdge(0, 3, 100) // longer than the existing 0-1-2-3 path
	g2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic(base, nil)
	d.InsertEdge(g2, 0, 3, 100)
	checkAllPairs(t, d, Build(g2), 4)
}
