package pll

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"authteam/internal/expertgraph"
)

// indexesIdentical reports whether two frozen indexes are bit-identical
// — same packed bytes, offsets and landmark order — which implies
// identical label sets and identical stored distances.
func indexesIdentical(a, b *Index) bool {
	return a.n == b.n && a.total == b.total && a.quant == b.quant &&
		reflect.DeepEqual(a.off, b.off) &&
		bytes.Equal(a.data, b.data) &&
		reflect.DeepEqual(a.rankOf, b.rankOf) &&
		reflect.DeepEqual(a.nodeAt, b.nodeAt)
}

// TestParallelBuildBitIdentical is the tentpole differential: across
// graph shapes, weight functions and worker counts, the block-parallel
// build must produce an index bit-identical to the sequential sweep —
// the same label entries per rank (not merely the same distances).
func TestParallelBuildBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	gamma := func(u, v expertgraph.NodeID, w float64) float64 { return 0.3 + 0.7*w }
	for _, tc := range []struct {
		name   string
		g      *expertgraph.Graph
		weight func(u, v expertgraph.NodeID, w float64) float64
	}{
		{"path", buildPath(t, 40), nil},
		{"sparse", randomGraph(rng, 120, 60), nil},
		{"dense", randomGraph(rng, 80, 800), nil},
		{"weighted", randomGraph(rng, 100, 300), gamma},
		{"tiny", buildPath(t, 2), nil},
	} {
		seq := BuildWithOptions(tc.g, Options{Weight: tc.weight})
		for _, workers := range []int{2, 3, 4, 8} {
			par := BuildWithOptions(tc.g, Options{Weight: tc.weight, Workers: workers})
			if !indexesIdentical(seq, par) {
				t.Fatalf("%s: %d-worker build differs from sequential (entries %d vs %d, bytes %d vs %d)",
					tc.name, workers, seq.total, par.total, len(seq.data), len(par.data))
			}
		}
	}
}

// TestParallelBuildRandomized widens the differential over many random
// graphs and seeds, comparing both the packed bytes and sampled
// distances against Dijkstra ground truth.
func TestParallelBuildRandomized(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(90)
		g := randomGraph(rng, n, rng.Intn(3*n))
		seq := Build(g)
		par := BuildWithOptions(g, Options{Workers: 1 + rng.Intn(7)})
		if !indexesIdentical(seq, par) {
			t.Fatalf("seed %d: parallel build differs from sequential", seed)
		}
		src := expertgraph.NodeID(rng.Intn(n))
		ref := expertgraph.Dijkstra(g, src)
		for v := 0; v < n; v++ {
			got := par.Dist(src, expertgraph.NodeID(v))
			want := ref.Dist[v]
			if math.IsInf(got, 1) && math.IsInf(want, 1) {
				continue
			}
			// A 2-hop query sums two label distances, so it can differ
			// from the Dijkstra path sum by float association — allow
			// ulp-scale slack, nothing more.
			if diff := math.Abs(got - want); diff > 1e-12*(1+want) {
				t.Fatalf("seed %d: Dist(%d,%d) = %v, want %v", seed, src, v, got, want)
			}
		}
	}
}

// TestParallelBuildNaturalOrder covers the OrderNatural path, whose
// weak pruning stresses the in-block commit filter hardest.
func TestParallelBuildNaturalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 70, 140)
	seq := BuildWithOptions(g, Options{Order: OrderNatural})
	par := BuildWithOptions(g, Options{Order: OrderNatural, Workers: 4})
	if !indexesIdentical(seq, par) {
		t.Fatal("natural-order parallel build differs from sequential")
	}
}

// TestParallelBuildOnBlock checks the block callback partitions the
// rank space exactly once, in order.
func TestParallelBuildOnBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 60, 90)
	nextRank := 0
	ix := BuildWithOptions(g, Options{Workers: 4, OnBlock: func(lo, hi int, _ time.Duration) {
		if lo != nextRank || hi <= lo {
			t.Fatalf("block [%d,%d) does not extend previous end %d", lo, hi, nextRank)
		}
		nextRank = hi
	}})
	if nextRank != ix.NumNodes() {
		t.Fatalf("blocks covered [0,%d), want [0,%d)", nextRank, ix.NumNodes())
	}
}

// TestParallelBuildManyBlocks is the regression test for the
// block-size overflow: blockSize used to keep doubling after hitting
// the cap, so any build needing more than 63 blocks overflowed it to
// zero and stalled the block loop forever. 1200 nodes at the 2-worker
// cap (8) needs 150 blocks.
func TestParallelBuildManyBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 1200, 2400)
	blocks := 0
	ix := BuildWithOptions(g, Options{Workers: 2, OnBlock: func(lo, hi int, _ time.Duration) { blocks++ }})
	if blocks <= 63 {
		t.Fatalf("only %d blocks; the regression needs more than 63", blocks)
	}
	if !indexesIdentical(ix, BuildWithOptions(g, Options{})) {
		t.Fatal("parallel build differs from sequential on a many-block graph")
	}
}
