// Package pll implements Pruned Landmark Labeling (2-hop cover) for
// weighted undirected graphs, following Akiba, Iwata and Yoshida
// (SIGMOD 2013) — the index the paper uses to answer the DIST calls of
// Algorithm 1 in (near) constant time.
//
// Construction runs a pruned Dijkstra from every node in landmark order
// (highest degree first by default). A visit of node u at distance d
// from landmark L is pruned when the labels built so far already prove
// dist(L,u) ≤ d; otherwise (L,d) is appended to u's label. Queries
// merge-join the two sorted label arrays. For small-world graphs such
// as co-authorship networks labels stay short, giving microsecond
// queries over graphs where per-query Dijkstra would be milliseconds.
//
// Construction can shard over workers (Options.Workers): landmarks are
// processed in rank blocks whose pruned Dijkstras run concurrently
// against the committed lower-rank labels, followed by a serial
// in-block filter that reproduces the sequential prune decisions
// exactly — see parallel.go. The frozen index stores labels packed
// (delta-encoded varint hub ranks, kind-tagged distances), roughly
// halving the cache footprint of the Dist hot path; see the encoding
// notes on appendEntry.
package pll

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"authteam/internal/expertgraph"
)

// infinity is the distance reported for disconnected pairs. It is
// unexported — math.Inf(1) cannot be a Go constant, and an exported
// mutable var would let importers corrupt every distance comparison in
// the package; callers detect disconnection with math.IsInf (the value
// equals expertgraph.Infinity(), the graph layer's shared sentinel).
var infinity = math.Inf(1)

// labelEntry is one hub entry in a node's label: the landmark's rank in
// the construction order and the exact distance to it. This is the
// unpacked working form used during construction and dynamic repair;
// the frozen Index stores the packed encoding instead.
type labelEntry struct {
	rank int32
	dist float64
}

// unpackedEntryBytes is the in-memory footprint of one labelEntry in a
// []labelEntry slice (int32 + float64, padded to 8-byte alignment).
const unpackedEntryBytes = 16

// Index is an immutable 2-hop cover over a fixed graph. It is safe for
// concurrent queries.
//
// Labels are stored packed: the entries of node u occupy the byte range
// data[off[u]:off[u+1]], each entry encoding its hub rank as a varint
// delta over the previous entry (labels are sorted by rank ascending)
// and its distance in one of three kind-tagged forms (zero, exact
// fixed-point under the index's chosen power-of-two scale, raw
// float64). Decoding is exactness-preserving — Dist
// over the packed form returns bit-identical distances to the unpacked
// merge-join.
type Index struct {
	n     int
	off   []int32 // byte offsets into data, len n+1
	data  []byte  // packed label entries
	total int     // total entry count across all labels
	quant float64 // fixed-point scale for distFixed entries, a power of two
	// rankOf maps NodeID to its construction rank, and nodeAt is the
	// inverse; exposed for diagnostics and serialization.
	rankOf []int32
	nodeAt []expertgraph.NodeID
}

// Order determines the landmark processing order. Better orders put
// central nodes first, which prunes more and keeps labels short.
type Order int

const (
	// OrderDegree processes nodes by descending degree (ties by ID).
	// This is the standard heuristic from the PLL paper.
	OrderDegree Order = iota
	// OrderNatural processes nodes in NodeID order; mainly for tests,
	// since it produces much larger labels.
	OrderNatural
)

// Options configures index construction.
type Options struct {
	Order Order
	// Weight optionally reweights each edge during construction,
	// allowing an index over the transformed graph G' (§3.2.2 of the
	// paper) without materializing it. Nil means stored weights.
	Weight func(u, v expertgraph.NodeID, w float64) float64
	// Workers is the number of goroutines sharding the landmark sweep.
	// Values ≤ 1 build sequentially. The parallel build produces an
	// index bit-identical to the sequential one (same label sets, same
	// stored distances); see parallel.go for the rank-block scheme.
	Workers int
	// OnBlock, if set, is called after each rank block [lo, hi) of the
	// parallel build commits, with the block's wall-clock time. The
	// sequential path reports a single block [0, n).
	OnBlock func(lo, hi int, elapsed time.Duration)
}

// Build constructs the index for g with default options.
func Build(g expertgraph.GraphView) *Index {
	return BuildWithOptions(g, Options{})
}

// BuildWithOptions constructs the index for g. Any GraphView works;
// construction cost is dominated by the pruned Dijkstras, so building
// over a delta overlay instead of a packed CSR graph costs only the
// overlay's per-read overhead.
func BuildWithOptions(g expertgraph.GraphView, opt Options) *Index {
	n := g.NumNodes()
	if opt.Workers > 1 && n > 1 {
		return buildParallel(g, opt)
	}
	nodeAt, rankOf := landmarkOrder(g, opt.Order)
	start := time.Now()
	labels := sequentialLabels(g, opt.Weight, nodeAt)
	if opt.OnBlock != nil {
		opt.OnBlock(0, n, time.Since(start))
	}
	return packIndex(labels, rankOf, nodeAt)
}

// landmarkOrder computes the landmark processing order and its inverse.
func landmarkOrder(g expertgraph.GraphView, order Order) ([]expertgraph.NodeID, []int32) {
	n := g.NumNodes()
	nodeAt := make([]expertgraph.NodeID, n)
	rankOf := make([]int32, n)
	for i := 0; i < n; i++ {
		nodeAt[i] = expertgraph.NodeID(i)
	}
	if order != OrderNatural {
		sort.SliceStable(nodeAt, func(a, b int) bool {
			da, db := g.Degree(nodeAt[a]), g.Degree(nodeAt[b])
			if da != db {
				return da > db
			}
			return nodeAt[a] < nodeAt[b]
		})
	}
	for r, u := range nodeAt {
		rankOf[u] = int32(r)
	}
	return nodeAt, rankOf
}

// sequentialLabels runs the classic single-threaded pruned-Dijkstra
// sweep and returns the per-node labels (sorted by rank ascending).
func sequentialLabels(g expertgraph.GraphView,
	weight func(u, v expertgraph.NodeID, w float64) float64,
	nodeAt []expertgraph.NodeID) [][]labelEntry {

	n := g.NumNodes()
	labels := make([][]labelEntry, n)
	sc := newBuildScratch(n)
	for r := 0; r < n; r++ {
		prunedSweep(g, weight, labels, nodeAt[r], int32(r), sc)
	}
	return labels
}

// prunedSweep runs one landmark's pruned Dijkstra against the labels
// committed so far (all ranks below r must be complete) and appends the
// surviving settles to the labels. Both the sequential build and the
// parallel build's contaminated-rank fallback commit through this
// single function, so their per-rank semantics cannot drift apart.
func prunedSweep(g expertgraph.GraphView,
	weight func(u, v expertgraph.NodeID, w float64) float64,
	labels [][]labelEntry, lm expertgraph.NodeID, r int32, sc *buildScratch) {

	// Load the landmark's current label into hubDist.
	for _, e := range labels[lm] {
		sc.hubDist[e.rank] = e.dist
	}

	sc.h.reset()
	sc.h.push(lm, 0)
	sc.dist[lm] = 0
	sc.touched = append(sc.touched[:0], lm)

	for sc.h.len() > 0 {
		u, du := sc.h.pop()
		if sc.visited[u] || du > sc.dist[u] {
			continue
		}
		sc.visited[u] = true
		// Prune: can existing labels already certify d(lm,u) ≤ du?
		pruned := false
		for _, e := range labels[u] {
			if hd := sc.hubDist[e.rank]; hd+e.dist <= du {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		labels[u] = append(labels[u], labelEntry{rank: r, dist: du})
		g.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			if weight != nil {
				w = weight(u, v, w)
			}
			if nd := du + w; nd < sc.dist[v] {
				if sc.dist[v] == infinity {
					sc.touched = append(sc.touched, v)
				}
				sc.dist[v] = nd
				sc.h.push(v, nd)
			}
			return true
		})
	}

	// Reset scratch for the next landmark.
	sc.clear()
	for _, e := range labels[lm] {
		sc.hubDist[e.rank] = infinity
	}
}

// buildScratch is the per-sweep working set of one pruned Dijkstra:
// tentative distances, visited flags, the landmark's hub distances and
// the touched list that makes resets O(|touched|).
type buildScratch struct {
	dist    []float64
	visited []bool
	hubDist []float64
	touched []expertgraph.NodeID
	h       *pairHeap
}

func newBuildScratch(n int) *buildScratch {
	sc := &buildScratch{
		dist:    make([]float64, n),
		visited: make([]bool, n),
		hubDist: make([]float64, n),
		h:       newPairHeap(n),
	}
	for i := 0; i < n; i++ {
		sc.dist[i] = infinity
		sc.hubDist[i] = infinity
	}
	return sc
}

// clear resets dist/visited for the nodes touched by the last sweep.
func (sc *buildScratch) clear() {
	for _, u := range sc.touched {
		sc.dist[u] = infinity
		sc.visited[u] = false
	}
}

// --- Packed label encoding ---------------------------------------------

// Distance encoding kinds, stored in the low 2 bits of each entry's
// varint header. The header is uvarint((rankDelta << 2) | kind) where
// rankDelta is the gap to the previous entry's rank (previous = -1 for
// the first entry, so deltas are always ≥ 1 and the header is never 0).
const (
	distZero  = 0 // distance is exactly 0 (the landmark's own entry)
	distFixed = 1 // uvarint q follows; distance = q / 2^16, exact
	distFloat = 2 // 8 bytes follow: the raw IEEE-754 little-endian bits
)

// defaultQuantScale is the fixed-point denominator used when the scale
// chooser has no signal (an empty index) and for legacy files that
// predate per-index scales. Scaling by a power of two is exact in
// binary floating point, so a distance is stored quantized only when
// float64(q)/quant round-trips to the identical bit pattern — integer
// and dyadic distances (unit-weight graphs, halved weights) pack into
// a few bytes while arbitrary sums fall back to distFloat. Exactness
// of Dist never depends on the quantization hit rate.
const defaultQuantScale = 1 << 16

// maxFixed bounds the fixed-point payload: beyond it the uvarint would
// be at least as long as the 8 raw float bytes.
const maxFixed = 1 << 49

// maxQuantShift caps the per-index scale exponent considered by
// chooseQuant: scales above 2^30 leave less than 19 bits of integer
// headroom under maxFixed, too little for real distance ranges.
const maxQuantShift = 30

// chooseQuant picks the fixed-point scale for one index: the power of
// two 2^k (k in [0, maxQuantShift]) under which the most label
// distances encode as distFixed. For each nonzero distance the set of
// workable exponents is a contiguous window [lo, hi] — lo the first k
// making dist·2^k integral, hi the last keeping it under maxFixed —
// so a difference array over k counts every window in one pass. Ties
// prefer the smallest k, which yields the shortest uvarint payloads;
// with no signal at all the legacy default wins.
func chooseQuant(labels [][]labelEntry) float64 {
	var diff [maxQuantShift + 2]int
	for _, l := range labels {
		for _, e := range l {
			d := e.dist
			if d <= 0 {
				continue // distZero entries need no scale
			}
			lo := -1
			s := d
			for k := 0; k <= maxQuantShift; k++ {
				if s >= maxFixed {
					break
				}
				if s == math.Trunc(s) {
					lo = k
					break
				}
				s *= 2
			}
			if lo < 0 {
				continue
			}
			hi := lo
			for hi < maxQuantShift && s*2 < maxFixed {
				hi++
				s *= 2
			}
			diff[lo]++
			diff[hi+1]--
		}
	}
	best, bestCount, covered := 0, 0, 0
	for k := 0; k <= maxQuantShift; k++ {
		covered += diff[k]
		if covered > bestCount {
			best, bestCount = k, covered
		}
	}
	if bestCount == 0 {
		return defaultQuantScale
	}
	return float64(uint64(1) << uint(best))
}

// appendEntry appends one packed label entry to data and returns the
// extended slice. prevRank is the rank of the previous entry in the
// same label (-1 for the first); quant is the index's fixed-point
// scale, a power of two.
func appendEntry(data []byte, prevRank, rank int32, dist, quant float64) []byte {
	delta := uint64(rank - prevRank)
	if dist == 0 {
		return binary.AppendUvarint(data, delta<<2|distZero)
	}
	if s := dist * quant; s > 0 && s < maxFixed && s == math.Trunc(s) {
		data = binary.AppendUvarint(data, delta<<2|distFixed)
		return binary.AppendUvarint(data, uint64(s))
	}
	data = binary.AppendUvarint(data, delta<<2|distFloat)
	return binary.LittleEndian.AppendUint64(data, math.Float64bits(dist))
}

// labelCursor decodes one node's packed label entry by entry.
type labelCursor struct {
	data     []byte
	pos, end int
	rank     int32
	dist     float64
	quant    float64 // owning index's fixed-point scale
}

// cursor positions a labelCursor at the start of u's label.
func (ix *Index) cursor(u expertgraph.NodeID) labelCursor {
	return labelCursor{
		data: ix.data, pos: int(ix.off[u]), end: int(ix.off[u+1]),
		rank: -1, quant: ix.quant,
	}
}

// next decodes the next entry into c.rank/c.dist, reporting false at
// the end of the label.
func (c *labelCursor) next() bool {
	if c.pos >= c.end {
		return false
	}
	h := c.uvarint()
	c.rank += int32(h >> 2)
	switch h & 3 {
	case distZero:
		c.dist = 0
	case distFixed:
		c.dist = float64(c.uvarint()) / c.quant
	default:
		c.dist = math.Float64frombits(binary.LittleEndian.Uint64(c.data[c.pos:]))
		c.pos += 8
	}
	return true
}

// uvarint decodes an unsigned varint at c.pos, advancing it. Inlined
// by hand (rather than binary.Uvarint) because it sits on the Dist hot
// path; packed data is produced only by appendEntry, so the encoding
// is trusted.
func (c *labelCursor) uvarint() uint64 {
	var v uint64
	var shift uint
	for {
		b := c.data[c.pos]
		c.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
	}
}

// packIndex freezes per-node labels (sorted by rank ascending) into a
// packed Index.
func packIndex(labels [][]labelEntry, rankOf []int32, nodeAt []expertgraph.NodeID) *Index {
	n := len(labels)
	ix := &Index{
		n:      n,
		off:    make([]int32, n+1),
		quant:  chooseQuant(labels),
		rankOf: rankOf,
		nodeAt: nodeAt,
	}
	total := 0
	for _, l := range labels {
		total += len(l)
	}
	ix.total = total
	ix.data = make([]byte, 0, 6*total)
	for u, l := range labels {
		prev := int32(-1)
		for _, e := range l {
			ix.data = appendEntry(ix.data, prev, e.rank, e.dist, ix.quant)
			prev = e.rank
		}
		ix.off[u+1] = int32(len(ix.data))
	}
	return ix
}

// unpackLabels decodes the packed labels back into the mutable
// per-node form used by DynamicIndex repair.
func (ix *Index) unpackLabels() [][]labelEntry {
	labels := make([][]labelEntry, ix.n)
	for u := 0; u < ix.n; u++ {
		c := ix.cursor(expertgraph.NodeID(u))
		if c.pos == c.end {
			continue
		}
		l := make([]labelEntry, 0, 4)
		for c.next() {
			l = append(l, labelEntry{rank: c.rank, dist: c.dist})
		}
		labels[u] = l
	}
	return labels
}

// Dist returns the exact shortest-path distance between u and v, or
// +Inf when they are disconnected.
func (ix *Index) Dist(u, v expertgraph.NodeID) float64 {
	if u == v {
		return 0
	}
	cu, cv := ix.cursor(u), ix.cursor(v)
	best := infinity
	okU, okV := cu.next(), cv.next()
	for okU && okV {
		switch {
		case cu.rank == cv.rank:
			if d := cu.dist + cv.dist; d < best {
				best = d
			}
			okU, okV = cu.next(), cv.next()
		case cu.rank < cv.rank:
			okU = cu.next()
		default:
			okV = cv.next()
		}
	}
	return best
}

// NumNodes returns the number of indexed nodes.
func (ix *Index) NumNodes() int { return ix.n }

// LabelSize returns the number of hub entries in u's label.
func (ix *Index) LabelSize(u expertgraph.NodeID) int {
	c := ix.cursor(u)
	count := 0
	for c.next() {
		count++
	}
	return count
}

// Stats summarizes the index for logging and benchmarking.
type Stats struct {
	Nodes        int
	TotalEntries int
	AvgLabelSize float64
	MaxLabelSize int
	// Bytes is the resident size of the index: the packed label store
	// plus offsets and the rank permutation.
	Bytes int
	// PackedBytes is the packed label store alone; UnpackedBytes is
	// what the same entries occupy in []labelEntry form (16 B each),
	// i.e. what the label store cost before compression.
	PackedBytes   int
	UnpackedBytes int
}

// Stats computes index statistics.
func (ix *Index) Stats() Stats {
	s := Stats{Nodes: ix.n, TotalEntries: ix.total}
	for u := 0; u < ix.n; u++ {
		if l := ix.LabelSize(expertgraph.NodeID(u)); l > s.MaxLabelSize {
			s.MaxLabelSize = l
		}
	}
	if ix.n > 0 {
		s.AvgLabelSize = float64(s.TotalEntries) / float64(ix.n)
	}
	s.PackedBytes = len(ix.data)
	s.UnpackedBytes = ix.total * unpackedEntryBytes
	s.Bytes = len(ix.data) + len(ix.off)*4 + len(ix.rankOf)*4 + len(ix.nodeAt)*4
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("pll{nodes: %d, entries: %d, avg: %.1f, max: %d, ~%dKB packed (%dKB unpacked)}",
		s.Nodes, s.TotalEntries, s.AvgLabelSize, s.MaxLabelSize, s.Bytes/1024, s.UnpackedBytes/1024)
}

// pairHeap is a plain binary min-heap of (node, priority) pairs with
// lazy deletion — pruned Dijkstra never needs decrease-key because
// stale entries are skipped on pop.
type pairHeap struct {
	ids  []expertgraph.NodeID
	prio []float64
}

func newPairHeap(capacity int) *pairHeap {
	return &pairHeap{
		ids:  make([]expertgraph.NodeID, 0, capacity),
		prio: make([]float64, 0, capacity),
	}
}

func (h *pairHeap) reset() {
	h.ids = h.ids[:0]
	h.prio = h.prio[:0]
}

func (h *pairHeap) len() int { return len(h.ids) }

func (h *pairHeap) push(u expertgraph.NodeID, p float64) {
	h.ids = append(h.ids, u)
	h.prio = append(h.prio, p)
	i := len(h.ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= h.prio[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *pairHeap) pop() (expertgraph.NodeID, float64) {
	top, p := h.ids[0], h.prio[0]
	last := len(h.ids) - 1
	h.swap(0, last)
	h.ids = h.ids[:last]
	h.prio = h.prio[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.prio[l] < h.prio[smallest] {
			smallest = l
		}
		if r < last && h.prio[r] < h.prio[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return top, p
}

func (h *pairHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
}
