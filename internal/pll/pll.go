// Package pll implements Pruned Landmark Labeling (2-hop cover) for
// weighted undirected graphs, following Akiba, Iwata and Yoshida
// (SIGMOD 2013) — the index the paper uses to answer the DIST calls of
// Algorithm 1 in (near) constant time.
//
// Construction runs a pruned Dijkstra from every node in landmark order
// (highest degree first by default). A visit of node u at distance d
// from landmark L is pruned when the labels built so far already prove
// dist(L,u) ≤ d; otherwise (L,d) is appended to u's label. Queries
// merge-join the two sorted label arrays. For small-world graphs such
// as co-authorship networks labels stay short, giving microsecond
// queries over graphs where per-query Dijkstra would be milliseconds.
package pll

import (
	"fmt"
	"math"
	"sort"

	"authteam/internal/expertgraph"
)

// infinity is the distance reported for disconnected pairs. It is
// unexported — math.Inf(1) cannot be a Go constant, and an exported
// mutable var would let importers corrupt every distance comparison in
// the package; callers detect disconnection with math.IsInf (the value
// equals expertgraph.Infinity(), the graph layer's shared sentinel).
var infinity = math.Inf(1)

// labelEntry is one hub entry in a node's label: the landmark's rank in
// the construction order and the exact distance to it.
type labelEntry struct {
	rank int32
	dist float64
}

// Index is an immutable 2-hop cover over a fixed graph. It is safe for
// concurrent queries.
type Index struct {
	n int
	// labels in CSR layout: entries of node u live in
	// entries[off[u]:off[u+1]], sorted by rank ascending.
	off     []int32
	entries []labelEntry
	// rankOf maps NodeID to its construction rank, and nodeAt is the
	// inverse; exposed for diagnostics and serialization.
	rankOf []int32
	nodeAt []expertgraph.NodeID
}

// Order determines the landmark processing order. Better orders put
// central nodes first, which prunes more and keeps labels short.
type Order int

const (
	// OrderDegree processes nodes by descending degree (ties by ID).
	// This is the standard heuristic from the PLL paper.
	OrderDegree Order = iota
	// OrderNatural processes nodes in NodeID order; mainly for tests,
	// since it produces much larger labels.
	OrderNatural
)

// Options configures index construction.
type Options struct {
	Order Order
	// Weight optionally reweights each edge during construction,
	// allowing an index over the transformed graph G' (§3.2.2 of the
	// paper) without materializing it. Nil means stored weights.
	Weight func(u, v expertgraph.NodeID, w float64) float64
}

// Build constructs the index for g with default options.
func Build(g expertgraph.GraphView) *Index {
	return BuildWithOptions(g, Options{})
}

// BuildWithOptions constructs the index for g. Any GraphView works;
// construction cost is dominated by the pruned Dijkstras, so building
// over a delta overlay instead of a packed CSR graph costs only the
// overlay's per-read overhead.
func BuildWithOptions(g expertgraph.GraphView, opt Options) *Index {
	n := g.NumNodes()
	idx := &Index{
		n:      n,
		rankOf: make([]int32, n),
		nodeAt: make([]expertgraph.NodeID, n),
	}
	switch opt.Order {
	case OrderNatural:
		for i := 0; i < n; i++ {
			idx.nodeAt[i] = expertgraph.NodeID(i)
		}
	default:
		for i := 0; i < n; i++ {
			idx.nodeAt[i] = expertgraph.NodeID(i)
		}
		sort.SliceStable(idx.nodeAt, func(a, b int) bool {
			da, db := g.Degree(idx.nodeAt[a]), g.Degree(idx.nodeAt[b])
			if da != db {
				return da > db
			}
			return idx.nodeAt[a] < idx.nodeAt[b]
		})
	}
	for r, u := range idx.nodeAt {
		idx.rankOf[u] = int32(r)
	}

	// Mutable per-node labels during construction.
	labels := make([][]labelEntry, n)

	// Scratch for the pruned Dijkstra.
	dist := make([]float64, n)
	visited := make([]bool, n)
	for i := range dist {
		dist[i] = infinity
	}
	var touched []expertgraph.NodeID
	// hubDist[r] is the distance from the current landmark to the
	// landmark of rank r, according to the landmark's own label; used
	// for O(|label|) prune queries.
	hubDist := make([]float64, n)
	for i := range hubDist {
		hubDist[i] = infinity
	}

	h := newPairHeap(n)

	for r := 0; r < n; r++ {
		lm := idx.nodeAt[r]
		// Load the landmark's current label into hubDist.
		for _, e := range labels[lm] {
			hubDist[e.rank] = e.dist
		}

		h.reset()
		h.push(lm, 0)
		dist[lm] = 0
		touched = append(touched[:0], lm)

		for h.len() > 0 {
			u, du := h.pop()
			if visited[u] || du > dist[u] {
				continue
			}
			visited[u] = true
			// Prune: can existing labels already certify d(lm,u) ≤ du?
			pruned := false
			for _, e := range labels[u] {
				if hd := hubDist[e.rank]; hd+e.dist <= du {
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
			labels[u] = append(labels[u], labelEntry{rank: int32(r), dist: du})
			g.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
				if opt.Weight != nil {
					w = opt.Weight(u, v, w)
				}
				if nd := du + w; nd < dist[v] {
					if dist[v] == infinity {
						touched = append(touched, v)
					}
					dist[v] = nd
					h.push(v, nd)
				}
				return true
			})
		}

		// Reset scratch for the next landmark.
		for _, u := range touched {
			dist[u] = infinity
			visited[u] = false
		}
		for _, e := range labels[lm] {
			hubDist[e.rank] = infinity
		}
	}

	// Freeze into CSR.
	total := 0
	idx.off = make([]int32, n+1)
	for i, l := range labels {
		total += len(l)
		idx.off[i+1] = int32(total)
	}
	idx.entries = make([]labelEntry, 0, total)
	for _, l := range labels {
		idx.entries = append(idx.entries, l...)
	}
	return idx
}

// Dist returns the exact shortest-path distance between u and v, or
// +Inf when they are disconnected.
func (ix *Index) Dist(u, v expertgraph.NodeID) float64 {
	if u == v {
		return 0
	}
	lu := ix.entries[ix.off[u]:ix.off[u+1]]
	lv := ix.entries[ix.off[v]:ix.off[v+1]]
	best := infinity
	i, j := 0, 0
	for i < len(lu) && j < len(lv) {
		switch {
		case lu[i].rank == lv[j].rank:
			if d := lu[i].dist + lv[j].dist; d < best {
				best = d
			}
			i++
			j++
		case lu[i].rank < lv[j].rank:
			i++
		default:
			j++
		}
	}
	return best
}

// NumNodes returns the number of indexed nodes.
func (ix *Index) NumNodes() int { return ix.n }

// LabelSize returns the number of hub entries in u's label.
func (ix *Index) LabelSize(u expertgraph.NodeID) int {
	return int(ix.off[u+1] - ix.off[u])
}

// Stats summarizes the index for logging and benchmarking.
type Stats struct {
	Nodes        int
	TotalEntries int
	AvgLabelSize float64
	MaxLabelSize int
	Bytes        int
}

// Stats computes index statistics.
func (ix *Index) Stats() Stats {
	s := Stats{Nodes: ix.n, TotalEntries: len(ix.entries)}
	for u := 0; u < ix.n; u++ {
		if l := ix.LabelSize(expertgraph.NodeID(u)); l > s.MaxLabelSize {
			s.MaxLabelSize = l
		}
	}
	if ix.n > 0 {
		s.AvgLabelSize = float64(s.TotalEntries) / float64(ix.n)
	}
	s.Bytes = len(ix.entries)*12 + len(ix.off)*4 + len(ix.rankOf)*4 + len(ix.nodeAt)*4
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("pll{nodes: %d, entries: %d, avg: %.1f, max: %d, ~%dKB}",
		s.Nodes, s.TotalEntries, s.AvgLabelSize, s.MaxLabelSize, s.Bytes/1024)
}

// pairHeap is a plain binary min-heap of (node, priority) pairs with
// lazy deletion — pruned Dijkstra never needs decrease-key because
// stale entries are skipped on pop.
type pairHeap struct {
	ids  []expertgraph.NodeID
	prio []float64
}

func newPairHeap(capacity int) *pairHeap {
	return &pairHeap{
		ids:  make([]expertgraph.NodeID, 0, capacity),
		prio: make([]float64, 0, capacity),
	}
}

func (h *pairHeap) reset() {
	h.ids = h.ids[:0]
	h.prio = h.prio[:0]
}

func (h *pairHeap) len() int { return len(h.ids) }

func (h *pairHeap) push(u expertgraph.NodeID, p float64) {
	h.ids = append(h.ids, u)
	h.prio = append(h.prio, p)
	i := len(h.ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= h.prio[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *pairHeap) pop() (expertgraph.NodeID, float64) {
	top, p := h.ids[0], h.prio[0]
	last := len(h.ids) - 1
	h.swap(0, last)
	h.ids = h.ids[:last]
	h.prio = h.prio[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.prio[l] < h.prio[smallest] {
			smallest = l
		}
		if r < last && h.prio[r] < h.prio[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return top, p
}

func (h *pairHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
}
