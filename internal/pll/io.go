package pll

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"authteam/internal/expertgraph"
)

// Index serialization: building a 2-hop cover is the expensive step, so
// tools persist it next to the graph and reload in milliseconds.

const ioFormatVersion = 1

type flatIndex struct {
	Version int
	N       int
	Off     []int32
	Ranks   []int32
	Dists   []float64
	RankOf  []int32
	NodeAt  []expertgraph.NodeID
}

// Write encodes the index to w.
func Write(w io.Writer, ix *Index) error {
	f := flatIndex{
		Version: ioFormatVersion,
		N:       ix.n,
		Off:     ix.off,
		Ranks:   make([]int32, len(ix.entries)),
		Dists:   make([]float64, len(ix.entries)),
		RankOf:  ix.rankOf,
		NodeAt:  ix.nodeAt,
	}
	for i, e := range ix.entries {
		f.Ranks[i] = e.rank
		f.Dists[i] = e.dist
	}
	if err := gob.NewEncoder(w).Encode(&f); err != nil {
		return fmt.Errorf("pll: encode: %w", err)
	}
	return nil
}

// Read decodes an index previously written with Write.
func Read(r io.Reader) (*Index, error) {
	var f flatIndex
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("pll: decode: %w", err)
	}
	if f.Version != ioFormatVersion {
		return nil, fmt.Errorf("pll: unsupported format version %d", f.Version)
	}
	ix := &Index{
		n:       f.N,
		off:     f.Off,
		entries: make([]labelEntry, len(f.Ranks)),
		rankOf:  f.RankOf,
		nodeAt:  f.NodeAt,
	}
	for i := range f.Ranks {
		ix.entries[i] = labelEntry{rank: f.Ranks[i], dist: f.Dists[i]}
	}
	return ix, nil
}

// SaveFile writes the index to path.
func SaveFile(path string, ix *Index) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pll: save: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := Write(bw, ix); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("pll: save: %w", err)
	}
	return f.Close()
}

// LoadFile reads an index from path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pll: load: %w", err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
