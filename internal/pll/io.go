package pll

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"authteam/internal/expertgraph"
)

// Index serialization: building a 2-hop cover is the expensive step, so
// tools persist it next to the graph and reload in milliseconds.
//
// Version 2 (current) persists the packed label store verbatim behind
// a magic header, so loading is one gob decode with no re-encoding
// pass. Version 1 files — a headerless gob of the unpacked entry
// arrays — are still readable: Read sniffs the magic and falls back to
// the v1 decoder, packing the entries on load.

// magicV2 prefixes every version-2 file. Gob streams of flatIndex
// cannot begin with these bytes (a gob stream opens with a
// type-definition section whose leading bytes differ), so sniffing is
// unambiguous.
var magicV2 = []byte("PLLIDX02")

// flatIndex is the legacy version-1 serialized form: the unpacked
// label entries as parallel rank/distance arrays, with Off counting
// entries. All fields are exported for gob.
type flatIndex struct {
	Version int
	N       int
	Off     []int32
	Ranks   []int32
	Dists   []float64
	RankOf  []int32
	NodeAt  []expertgraph.NodeID
}

// flatIndexV2 is the version-2 serialized form: the packed label store
// exactly as resident in memory, with Off counting bytes. All fields
// are exported for gob.
type flatIndexV2 struct {
	N      int
	Total  int
	Off    []int32
	Data   []byte
	RankOf []int32
	NodeAt []expertgraph.NodeID
}

// Write encodes the index to w in the current (version 2) format.
func Write(w io.Writer, ix *Index) error {
	if _, err := w.Write(magicV2); err != nil {
		return fmt.Errorf("pll: encode: %w", err)
	}
	f := flatIndexV2{
		N:      ix.n,
		Total:  ix.total,
		Off:    ix.off,
		Data:   ix.data,
		RankOf: ix.rankOf,
		NodeAt: ix.nodeAt,
	}
	if err := gob.NewEncoder(w).Encode(&f); err != nil {
		return fmt.Errorf("pll: encode: %w", err)
	}
	return nil
}

// writeV1 encodes the index in the legacy version-1 format. It exists
// so the v1→v2 load path stays covered by tests; production writers
// always emit version 2.
func writeV1(w io.Writer, ix *Index) error {
	f := flatIndex{
		Version: 1,
		N:       ix.n,
		Off:     make([]int32, 1, ix.n+1),
		Ranks:   make([]int32, 0, ix.total),
		Dists:   make([]float64, 0, ix.total),
		RankOf:  ix.rankOf,
		NodeAt:  ix.nodeAt,
	}
	for u := 0; u < ix.n; u++ {
		c := ix.cursor(expertgraph.NodeID(u))
		for c.next() {
			f.Ranks = append(f.Ranks, c.rank)
			f.Dists = append(f.Dists, c.dist)
		}
		f.Off = append(f.Off, int32(len(f.Ranks)))
	}
	if err := gob.NewEncoder(w).Encode(&f); err != nil {
		return fmt.Errorf("pll: encode: %w", err)
	}
	return nil
}

// Read decodes an index previously written with Write, accepting both
// the current version-2 format and legacy version-1 files.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(magicV2))
	if err == nil && bytes.Equal(head, magicV2) {
		br.Discard(len(magicV2))
		var f flatIndexV2
		if err := gob.NewDecoder(br).Decode(&f); err != nil {
			return nil, fmt.Errorf("pll: decode: %w", err)
		}
		if len(f.Off) != f.N+1 || len(f.RankOf) != f.N || len(f.NodeAt) != f.N {
			return nil, fmt.Errorf("pll: decode: inconsistent v2 index shape")
		}
		return &Index{
			n:      f.N,
			off:    f.Off,
			data:   f.Data,
			total:  f.Total,
			rankOf: f.RankOf,
			nodeAt: f.NodeAt,
		}, nil
	}
	// No magic: a legacy v1 gob stream (or garbage — the decoder will
	// say). The peeked bytes are still buffered, so decode through br.
	var f flatIndex
	if err := gob.NewDecoder(br).Decode(&f); err != nil {
		return nil, fmt.Errorf("pll: decode: %w", err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("pll: unsupported format version %d", f.Version)
	}
	if len(f.Off) != f.N+1 || len(f.Ranks) != len(f.Dists) ||
		len(f.RankOf) != f.N || len(f.NodeAt) != f.N {
		return nil, fmt.Errorf("pll: decode: inconsistent v1 index shape")
	}
	ix := &Index{
		n:      f.N,
		off:    make([]int32, 1, f.N+1),
		total:  len(f.Ranks),
		rankOf: f.RankOf,
		nodeAt: f.NodeAt,
	}
	ix.data = make([]byte, 0, 6*len(f.Ranks))
	for u := 0; u < f.N; u++ {
		prev := int32(-1)
		for i := f.Off[u]; i < f.Off[u+1]; i++ {
			ix.data = appendEntry(ix.data, prev, f.Ranks[i], f.Dists[i])
			prev = f.Ranks[i]
		}
		ix.off = append(ix.off, int32(len(ix.data)))
	}
	return ix, nil
}

// SaveFile writes the index to path.
func SaveFile(path string, ix *Index) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pll: save: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := Write(bw, ix); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("pll: save: %w", err)
	}
	return f.Close()
}

// LoadFile reads an index from path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pll: load: %w", err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
