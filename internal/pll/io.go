package pll

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"authteam/internal/expertgraph"
)

// Index serialization: building a 2-hop cover is the expensive step, so
// tools persist it next to the graph and reload in milliseconds.
//
// Version 3 (current) persists the packed label store verbatim behind
// a magic header — one gob decode, no re-encoding pass — plus the
// per-index fixed-point scale the distFixed payloads were quantized
// under. Version 2 files are identical except the scale field: they
// predate per-index scales, so every distFixed payload in them was
// written at the old global 2^16 scale and Read pins quant to that.
// Version 1 files — a headerless gob of the unpacked entry arrays —
// are still readable too: Read falls back to the v1 decoder and packs
// the entries on load, which re-runs the scale chooser.

// magicV2 and magicV3 prefix version-2 and version-3 files. Gob
// streams of flatIndex cannot begin with these bytes (a gob stream
// opens with a type-definition section whose leading bytes differ),
// so sniffing is unambiguous.
var (
	magicV2 = []byte("PLLIDX02")
	magicV3 = []byte("PLLIDX03")
)

// flatIndex is the legacy version-1 serialized form: the unpacked
// label entries as parallel rank/distance arrays, with Off counting
// entries. All fields are exported for gob.
type flatIndex struct {
	Version int
	N       int
	Off     []int32
	Ranks   []int32
	Dists   []float64
	RankOf  []int32
	NodeAt  []expertgraph.NodeID
}

// flatIndexV2 is the version-2 serialized form: the packed label store
// exactly as resident in memory, with Off counting bytes and every
// distFixed payload at the fixed 2^16 scale. All fields are exported
// for gob.
type flatIndexV2 struct {
	N      int
	Total  int
	Off    []int32
	Data   []byte
	RankOf []int32
	NodeAt []expertgraph.NodeID
}

// flatIndexV3 is the version-3 serialized form: flatIndexV2 plus the
// per-index fixed-point scale. All fields are exported for gob.
type flatIndexV3 struct {
	N      int
	Total  int
	Quant  float64
	Off    []int32
	Data   []byte
	RankOf []int32
	NodeAt []expertgraph.NodeID
}

// Write encodes the index to w in the current (version 3) format.
func Write(w io.Writer, ix *Index) error {
	if _, err := w.Write(magicV3); err != nil {
		return fmt.Errorf("pll: encode: %w", err)
	}
	f := flatIndexV3{
		N:      ix.n,
		Total:  ix.total,
		Quant:  ix.quant,
		Off:    ix.off,
		Data:   ix.data,
		RankOf: ix.rankOf,
		NodeAt: ix.nodeAt,
	}
	if err := gob.NewEncoder(w).Encode(&f); err != nil {
		return fmt.Errorf("pll: encode: %w", err)
	}
	return nil
}

// writeV2 encodes the index in the legacy version-2 format, re-packing
// the labels at the fixed 2^16 scale v2 readers assume. It exists so
// the v2→v3 load path stays covered by tests; production writers
// always emit version 3.
func writeV2(w io.Writer, ix *Index) error {
	f := flatIndexV2{
		N:      ix.n,
		Total:  ix.total,
		Off:    make([]int32, 1, ix.n+1),
		RankOf: ix.rankOf,
		NodeAt: ix.nodeAt,
	}
	f.Data = make([]byte, 0, len(ix.data))
	for u := 0; u < ix.n; u++ {
		prev := int32(-1)
		for c := ix.cursor(expertgraph.NodeID(u)); c.next(); {
			f.Data = appendEntry(f.Data, prev, c.rank, c.dist, defaultQuantScale)
			prev = c.rank
		}
		f.Off = append(f.Off, int32(len(f.Data)))
	}
	if _, err := w.Write(magicV2); err != nil {
		return fmt.Errorf("pll: encode: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(&f); err != nil {
		return fmt.Errorf("pll: encode: %w", err)
	}
	return nil
}

// writeV1 encodes the index in the legacy version-1 format. It exists
// so the v1→v2 load path stays covered by tests; production writers
// always emit version 2.
func writeV1(w io.Writer, ix *Index) error {
	f := flatIndex{
		Version: 1,
		N:       ix.n,
		Off:     make([]int32, 1, ix.n+1),
		Ranks:   make([]int32, 0, ix.total),
		Dists:   make([]float64, 0, ix.total),
		RankOf:  ix.rankOf,
		NodeAt:  ix.nodeAt,
	}
	for u := 0; u < ix.n; u++ {
		c := ix.cursor(expertgraph.NodeID(u))
		for c.next() {
			f.Ranks = append(f.Ranks, c.rank)
			f.Dists = append(f.Dists, c.dist)
		}
		f.Off = append(f.Off, int32(len(f.Ranks)))
	}
	if err := gob.NewEncoder(w).Encode(&f); err != nil {
		return fmt.Errorf("pll: encode: %w", err)
	}
	return nil
}

// Read decodes an index previously written with Write, accepting the
// current version-3 format plus legacy version-2 and version-1 files.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(magicV3))
	if err == nil && bytes.Equal(head, magicV3) {
		br.Discard(len(magicV3))
		var f flatIndexV3
		if err := gob.NewDecoder(br).Decode(&f); err != nil {
			return nil, fmt.Errorf("pll: decode: %w", err)
		}
		if len(f.Off) != f.N+1 || len(f.RankOf) != f.N || len(f.NodeAt) != f.N {
			return nil, fmt.Errorf("pll: decode: inconsistent v3 index shape")
		}
		if f.Quant < 1 || f.Quant != math.Trunc(f.Quant) {
			return nil, fmt.Errorf("pll: decode: invalid v3 quant scale %v", f.Quant)
		}
		return &Index{
			n:      f.N,
			off:    f.Off,
			data:   f.Data,
			total:  f.Total,
			quant:  f.Quant,
			rankOf: f.RankOf,
			nodeAt: f.NodeAt,
		}, nil
	}
	if err == nil && bytes.Equal(head, magicV2) {
		br.Discard(len(magicV2))
		var f flatIndexV2
		if err := gob.NewDecoder(br).Decode(&f); err != nil {
			return nil, fmt.Errorf("pll: decode: %w", err)
		}
		if len(f.Off) != f.N+1 || len(f.RankOf) != f.N || len(f.NodeAt) != f.N {
			return nil, fmt.Errorf("pll: decode: inconsistent v2 index shape")
		}
		// v2 payloads were quantized under the then-global 2^16 scale;
		// the data is adopted verbatim, so the scale must be too.
		return &Index{
			n:      f.N,
			off:    f.Off,
			data:   f.Data,
			total:  f.Total,
			quant:  defaultQuantScale,
			rankOf: f.RankOf,
			nodeAt: f.NodeAt,
		}, nil
	}
	// No magic: a legacy v1 gob stream (or garbage — the decoder will
	// say). The peeked bytes are still buffered, so decode through br.
	var f flatIndex
	if err := gob.NewDecoder(br).Decode(&f); err != nil {
		return nil, fmt.Errorf("pll: decode: %w", err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("pll: unsupported format version %d", f.Version)
	}
	if len(f.Off) != f.N+1 || len(f.Ranks) != len(f.Dists) ||
		len(f.RankOf) != f.N || len(f.NodeAt) != f.N {
		return nil, fmt.Errorf("pll: decode: inconsistent v1 index shape")
	}
	// Re-pack through packIndex so the scale chooser runs over the
	// unpacked entries, exactly as a fresh build would.
	labels := make([][]labelEntry, f.N)
	for u := 0; u < f.N; u++ {
		if f.Off[u] == f.Off[u+1] {
			continue
		}
		l := make([]labelEntry, 0, f.Off[u+1]-f.Off[u])
		for i := f.Off[u]; i < f.Off[u+1]; i++ {
			l = append(l, labelEntry{rank: f.Ranks[i], dist: f.Dists[i]})
		}
		labels[u] = l
	}
	return packIndex(labels, f.RankOf, f.NodeAt), nil
}

// SaveFile writes the index to path.
func SaveFile(path string, ix *Index) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pll: save: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := Write(bw, ix); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("pll: save: %w", err)
	}
	return f.Close()
}

// LoadFile reads an index from path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pll: load: %w", err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
