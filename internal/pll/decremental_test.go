package pll

import (
	"math"
	"math/rand"
	"testing"

	"authteam/internal/expertgraph"
)

// The decremental differentials: after removals, weight increases and
// mixed op streams, the repaired dynamic index must answer every pair
// exactly like an index built from scratch over the final graph. These
// are the acceptance tests of the fully dynamic 2-hop cover — a stale
// (too small) surviving entry would silently corrupt queries, so the
// checks are all-pairs, not sampled.

// graphEdges lists g's undirected edges.
func graphEdges(g *expertgraph.Graph) [][3]float64 {
	var out [][3]float64
	for u := expertgraph.NodeID(0); int(u) < g.NumNodes(); u++ {
		g.Neighbors(u, func(v expertgraph.NodeID, w float64) bool {
			if u < v {
				out = append(out, [3]float64{float64(u), float64(v), w})
			}
			return true
		})
	}
	return out
}

// rebuildWithout returns g minus the given edges (by index into
// graphEdges order).
func applyToBuilder(g *expertgraph.Graph, mutate func(b *expertgraph.Builder)) *expertgraph.Graph {
	b := g.Thaw(0, 4)
	mutate(b)
	g2, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g2
}

func TestDynamicRemoveEdgeMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(25)
		g := randomGraph(rng, n, n)
		d := NewDynamic(Build(g), nil)

		// Remove a handful of random edges one op at a time, repairing
		// against the graph after each removal (the per-op contract).
		removals := 1 + rng.Intn(4)
		for k := 0; k < removals; k++ {
			edges := graphEdges(g)
			if len(edges) == 0 {
				break
			}
			e := edges[rng.Intn(len(edges))]
			u, v, w := expertgraph.NodeID(e[0]), expertgraph.NodeID(e[1]), e[2]
			g = applyToBuilder(g, func(b *expertgraph.Builder) { b.RemoveEdge(u, v) })
			d.RemoveEdge(g, u, v, w)
		}
		checkAllPairs(t, d, Build(g), n)
	}
}

func TestDynamicIncreaseEdgeMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(25)
		g := randomGraph(rng, n, n)
		d := NewDynamic(Build(g), nil)

		for k := 0; k < 1+rng.Intn(4); k++ {
			edges := graphEdges(g)
			e := edges[rng.Intn(len(edges))]
			u, v, old := expertgraph.NodeID(e[0]), expertgraph.NodeID(e[1]), e[2]
			heavier := old + 0.1 + rng.Float64()
			g = applyToBuilder(g, func(b *expertgraph.Builder) { b.UpdateEdge(u, v, heavier) })
			d.IncreaseEdge(g, u, v, old)
		}
		checkAllPairs(t, d, Build(g), n)
	}
}

func TestDynamicDecreaseEdgeMatchesRebuild(t *testing.T) {
	// A weight decrease is the incremental case: resume across the
	// now-cheaper edge exactly like an insertion.
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(25)
		g := randomGraph(rng, n, n)
		d := NewDynamic(Build(g), nil)

		edges := graphEdges(g)
		e := edges[rng.Intn(len(edges))]
		u, v, old := expertgraph.NodeID(e[0]), expertgraph.NodeID(e[1]), e[2]
		lighter := old * (0.1 + 0.7*rng.Float64())
		g = applyToBuilder(g, func(b *expertgraph.Builder) { b.UpdateEdge(u, v, lighter) })
		d.InsertEdge(g, u, v, lighter)
		checkAllPairs(t, d, Build(g), n)
	}
}

func TestDynamicRemoveNodeIsolates(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(20)
		g := randomGraph(rng, n, n/2)
		d := NewDynamic(Build(g), nil)

		victim := expertgraph.NodeID(rng.Intn(n))
		type half struct {
			v expertgraph.NodeID
			w float64
		}
		var incident []half
		g.Neighbors(victim, func(v expertgraph.NodeID, w float64) bool {
			incident = append(incident, half{v, w})
			return true
		})
		// Retire the node edge by edge, each removal repaired against
		// its own post-state — the per-op contract the live layer's
		// patch graph provides.
		for _, h := range incident {
			g = applyToBuilder(g, func(b *expertgraph.Builder) { b.RemoveEdge(victim, h.v) })
			d.RemoveEdge(g, victim, h.v, h.w)
		}
		g = applyToBuilder(g, func(b *expertgraph.Builder) { b.RemoveNode(victim) })

		checkAllPairs(t, d, Build(g), n)
		for v := 0; v < n; v++ {
			if v == int(victim) {
				continue
			}
			if got := d.Dist(victim, expertgraph.NodeID(v)); !math.IsInf(got, 1) {
				t.Fatalf("removed node %d still reaches %d at %v", victim, v, got)
			}
		}
	}
}

func TestDynamicMixedStreamMatchesRebuild(t *testing.T) {
	// The long-haul differential: interleaved inserts, removals,
	// re-weights (both directions) and node retirements, repaired one
	// op at a time; the index must stay exact at *every* step, not just
	// at the end — a stale entry could otherwise be masked by a later
	// insertion.
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 12; trial++ {
		n := 12 + rng.Intn(16)
		g := randomGraph(rng, n, n)
		d := NewDynamic(Build(g), nil)
		total := n

		for step := 0; step < 25; step++ {
			switch rng.Intn(6) {
			case 0: // add a node wired to an existing one
				id := d.AddNode()
				anchor := expertgraph.NodeID(rng.Intn(total))
				w := 0.05 + rng.Float64()
				g = applyToBuilder(g, func(b *expertgraph.Builder) {
					nid := b.AddNode("", 1)
					if nid != id {
						t.Fatalf("node id drift: %d vs %d", nid, id)
					}
					if !g.Removed(anchor) {
						b.AddEdge(id, anchor, w)
					}
				})
				total++
				if _, ok := g.EdgeWeight(id, anchor); ok {
					d.InsertEdge(g, id, anchor, w)
				}
			case 1: // insert a fresh edge
				u := expertgraph.NodeID(rng.Intn(total))
				v := expertgraph.NodeID(rng.Intn(total))
				if u == v || g.Removed(u) || g.Removed(v) {
					continue
				}
				if _, dup := g.EdgeWeight(u, v); dup {
					continue
				}
				w := 0.05 + rng.Float64()
				g = applyToBuilder(g, func(b *expertgraph.Builder) { b.AddEdge(u, v, w) })
				d.InsertEdge(g, u, v, w)
			case 2: // remove an edge
				edges := graphEdges(g)
				if len(edges) == 0 {
					continue
				}
				e := edges[rng.Intn(len(edges))]
				u, v, w := expertgraph.NodeID(e[0]), expertgraph.NodeID(e[1]), e[2]
				g = applyToBuilder(g, func(b *expertgraph.Builder) { b.RemoveEdge(u, v) })
				d.RemoveEdge(g, u, v, w)
			case 3: // make an edge heavier
				edges := graphEdges(g)
				if len(edges) == 0 {
					continue
				}
				e := edges[rng.Intn(len(edges))]
				u, v, old := expertgraph.NodeID(e[0]), expertgraph.NodeID(e[1]), e[2]
				heavier := old + 0.1 + rng.Float64()
				g = applyToBuilder(g, func(b *expertgraph.Builder) { b.UpdateEdge(u, v, heavier) })
				d.IncreaseEdge(g, u, v, old)
			case 4: // make an edge lighter
				edges := graphEdges(g)
				if len(edges) == 0 {
					continue
				}
				e := edges[rng.Intn(len(edges))]
				u, v, old := expertgraph.NodeID(e[0]), expertgraph.NodeID(e[1]), e[2]
				lighter := old * (0.2 + 0.6*rng.Float64())
				g = applyToBuilder(g, func(b *expertgraph.Builder) { b.UpdateEdge(u, v, lighter) })
				d.InsertEdge(g, u, v, lighter)
			case 5: // retire a node, edge by edge
				victim := expertgraph.NodeID(rng.Intn(total))
				if g.Removed(victim) {
					continue
				}
				type half struct {
					v expertgraph.NodeID
					w float64
				}
				var incident []half
				g.Neighbors(victim, func(v expertgraph.NodeID, w float64) bool {
					incident = append(incident, half{v, w})
					return true
				})
				for _, h := range incident {
					g = applyToBuilder(g, func(b *expertgraph.Builder) { b.RemoveEdge(victim, h.v) })
					d.RemoveEdge(g, victim, h.v, h.w)
				}
				g = applyToBuilder(g, func(b *expertgraph.Builder) { b.RemoveNode(victim) })
			}
			checkAllPairs(t, d, Build(g), total)
		}
	}
}

func TestDynamicIncreaseEdgesBatchMatchesRebuild(t *testing.T) {
	// The atomic-batch case: one semantic change (an authority-style
	// re-weight) makes every incident edge of a node heavier at once.
	// The batch must repair in one call and stay exact — this is the
	// regression test for the interleaved-detection bug sequential
	// per-edge IncreaseEdge calls would reintroduce.
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 20; trial++ {
		n := 12 + rng.Intn(20)
		g := randomGraph(rng, n, n)
		node := expertgraph.NodeID(rng.Intn(n))
		oldAuthBias := 0.0
		newAuthBias := 0.3 + 0.5*rng.Float64() // heavier incident edges
		weightWith := func(bias float64) func(u, v expertgraph.NodeID, w float64) float64 {
			return func(u, v expertgraph.NodeID, w float64) float64 {
				s := w
				if u == node || v == node {
					s += bias
				}
				return s
			}
		}
		oldW := weightWith(oldAuthBias)
		newW := weightWith(newAuthBias)

		d := NewDynamic(BuildWithOptions(g, Options{Weight: oldW}), newW)
		d.SetAltWeight(oldW)
		var batch []EdgeChange
		g.Neighbors(node, func(v expertgraph.NodeID, w float64) bool {
			batch = append(batch, EdgeChange{U: node, V: v, WOld: []float64{oldW(node, v, w), newW(node, v, w)}})
			return true
		})
		d.IncreaseEdges(g, batch)
		checkAllPairs(t, d, BuildWithOptions(g, Options{Weight: newW}), n)
	}
}

func TestDynamicWeightedDecrementMatchesRebuild(t *testing.T) {
	// Decremental repair under a G'-shaped weight function, including
	// the two-candidate tight test (SetAltWeight) a weight-function
	// re-fit requires.
	rng := rand.New(rand.NewSource(127))
	oldWeight := func(u, v expertgraph.NodeID, w float64) float64 {
		return 0.02*float64(u%5) + 0.02*float64(v%5) + 2*w
	}
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(20)
		g := randomGraph(rng, n, n)
		d := NewDynamic(BuildWithOptions(g, Options{Weight: oldWeight}), oldWeight)
		d.SetAltWeight(oldWeight)

		for k := 0; k < 1+rng.Intn(3); k++ {
			edges := graphEdges(g)
			e := edges[rng.Intn(len(edges))]
			u, v, w := expertgraph.NodeID(e[0]), expertgraph.NodeID(e[1]), e[2]
			g = applyToBuilder(g, func(b *expertgraph.Builder) { b.RemoveEdge(u, v) })
			d.RemoveEdge(g, u, v, oldWeight(u, v, w))
		}
		checkAllPairs(t, d, BuildWithOptions(g, Options{Weight: oldWeight}), n)
	}
}
