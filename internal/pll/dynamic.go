package pll

import (
	"sort"

	"authteam/internal/expertgraph"
)

// Incremental maintenance of a 2-hop cover under node and edge
// insertions, following the dynamization of pruned landmark labeling
// (Akiba, Iwata, Yoshida — "Dynamic and Historical Shortest-Path
// Distance Queries on Large Evolving Networks", WWW 2014), adapted
// from BFS to weighted Dijkstra.
//
// On inserting edge (u, v), only shortest paths through the new edge
// can improve. For every landmark that already labels u or v, the
// landmark's original pruned Dijkstra is *resumed*: seeded at the far
// endpoint with the distance through the new edge and expanded with
// the same prefix-rank pruning rule as construction. Repair therefore
// costs a handful of truncated Dijkstras instead of a full O(n·m)
// rebuild. The repaired index answers every query exactly; it may
// carry entries a from-scratch build would have pruned (resumption
// never removes labels), which is why callers bound repair work with a
// staleness budget and fall back to a rebuild once labels drift.

// DynamicIndex is a mutable 2-hop cover. It is the thawed counterpart
// of Index: labels live in per-node slices that InsertEdge and AddNode
// grow in place. It is NOT safe for concurrent use — mutate it from a
// single goroutine and Freeze it into an immutable Index for readers.
type DynamicIndex struct {
	labels [][]labelEntry // per node, sorted by rank ascending
	rankOf []int32
	nodeAt []expertgraph.NodeID
	weight func(u, v expertgraph.NodeID, w float64) float64 // nil = stored weights

	// Scratch for resumed Dijkstras, sized to the node count.
	dist    []float64
	hubDist []float64
	heap    *pairHeap

	// visits counts label-array touches across all repairs, the work
	// measure callers can compare against a rebuild.
	visits int
}

// NewDynamic thaws ix into a mutable index. The weight function must
// be the one the index was built over (nil for stored weights); it is
// used to expand resumed Dijkstras. ix itself is not modified.
func NewDynamic(ix *Index, weight func(u, v expertgraph.NodeID, w float64) float64) *DynamicIndex {
	n := ix.n
	d := &DynamicIndex{
		labels:  make([][]labelEntry, n),
		rankOf:  append([]int32(nil), ix.rankOf...),
		nodeAt:  append([]expertgraph.NodeID(nil), ix.nodeAt...),
		weight:  weight,
		dist:    make([]float64, n),
		hubDist: make([]float64, n),
		heap:    newPairHeap(64),
	}
	for u := 0; u < n; u++ {
		lo, hi := ix.off[u], ix.off[u+1]
		d.labels[u] = append([]labelEntry(nil), ix.entries[lo:hi]...)
	}
	for i := range d.dist {
		d.dist[i] = infinity
		d.hubDist[i] = infinity
	}
	return d
}

// NumNodes returns the number of indexed nodes.
func (d *DynamicIndex) NumNodes() int { return len(d.labels) }

// Visits returns the cumulative label-touch count of all repairs since
// thawing, a proxy for repair work.
func (d *DynamicIndex) Visits() int { return d.visits }

// AddNode appends a new, initially isolated node to the index and
// returns its ID. The node is ranked last (least central) — the
// standard placement for a newcomer, revisited only by a full rebuild
// — and starts with the self label every landmark carries. Edges
// incident to it are indexed by subsequent InsertEdge calls.
func (d *DynamicIndex) AddNode() expertgraph.NodeID {
	id := expertgraph.NodeID(len(d.labels))
	rank := int32(len(d.labels))
	d.labels = append(d.labels, []labelEntry{{rank: rank, dist: 0}})
	d.rankOf = append(d.rankOf, rank)
	d.nodeAt = append(d.nodeAt, id)
	d.dist = append(d.dist, infinity)
	d.hubDist = append(d.hubDist, infinity)
	return id
}

// Dist returns the exact shortest-path distance between u and v, or
// +Inf when they are disconnected.
func (d *DynamicIndex) Dist(u, v expertgraph.NodeID) float64 {
	if u == v {
		return 0
	}
	return mergeJoin(d.labels[u], d.labels[v])
}

func mergeJoin(lu, lv []labelEntry) float64 {
	best := infinity
	i, j := 0, 0
	for i < len(lu) && j < len(lv) {
		switch {
		case lu[i].rank == lv[j].rank:
			if s := lu[i].dist + lv[j].dist; s < best {
				best = s
			}
			i++
			j++
		case lu[i].rank < lv[j].rank:
			i++
		default:
			j++
		}
	}
	return best
}

// entryFor returns u's label distance to the landmark of rank r and
// whether the entry exists.
func (d *DynamicIndex) entryFor(u expertgraph.NodeID, r int32) (float64, bool) {
	l := d.labels[u]
	i := sort.Search(len(l), func(i int) bool { return l[i].rank >= r })
	if i < len(l) && l[i].rank == r {
		return l[i].dist, true
	}
	return 0, false
}

// setEntry inserts or tightens the (r, dist) entry of u's label,
// keeping it sorted by rank.
func (d *DynamicIndex) setEntry(u expertgraph.NodeID, r int32, dist float64) {
	l := d.labels[u]
	i := sort.Search(len(l), func(i int) bool { return l[i].rank >= r })
	if i < len(l) && l[i].rank == r {
		if dist < l[i].dist {
			l[i].dist = dist
		}
		return
	}
	l = append(l, labelEntry{})
	copy(l[i+1:], l[i:])
	l[i] = labelEntry{rank: r, dist: dist}
	d.labels[u] = l
}

// InsertEdge repairs the index for a new undirected edge (u, v) with
// stored weight w. g must be the graph WITH the edge (and any other
// already-reported insertions) applied — resumed searches traverse it.
// Both endpoints must already be indexed (AddNode first for new
// nodes). Inserting a batch of edges one call at a time over the final
// graph converges to an index that answers every pair exactly: any
// improved shortest path uses at least one inserted edge, and that
// edge's resumption propagates the improvement through the rest of the
// batch's edges, which are already traversable.
func (d *DynamicIndex) InsertEdge(g expertgraph.GraphView, u, v expertgraph.NodeID, w float64) {
	wp := w
	if d.weight != nil {
		wp = d.weight(u, v, w)
	}
	// Affected landmarks: every hub of either endpoint, resumed in
	// ascending rank order so higher-priority repairs maximize pruning
	// of later ones (and so a new node inherits its neighbor's hubs
	// before its own bottom-ranked landmark is resumed).
	ranks := make([]int32, 0, len(d.labels[u])+len(d.labels[v]))
	for _, e := range d.labels[u] {
		ranks = append(ranks, e.rank)
	}
	for _, e := range d.labels[v] {
		ranks = append(ranks, e.rank)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	for i, r := range ranks {
		if i > 0 && ranks[i-1] == r {
			continue // deduplicate hubs shared by both endpoints
		}
		d.resume(g, r, u, v, wp)
	}
}

// resume continues the pruned Dijkstra of the landmark with rank r
// across the new edge (u, v) of search weight wp: each endpoint the
// landmark labels seeds the far endpoint at label distance + wp, and
// the search expands exactly like construction, pruning any node whose
// distance is already certified by hubs ranked above r.
func (d *DynamicIndex) resume(g expertgraph.GraphView, r int32, u, v expertgraph.NodeID, wp float64) {
	lm := d.nodeAt[r]
	// Load the landmark's label for O(|label|) prefix prune queries.
	for _, e := range d.labels[lm] {
		d.hubDist[e.rank] = e.dist
	}
	d.heap.reset()
	var touched []expertgraph.NodeID
	seed := func(x expertgraph.NodeID, dx float64) {
		if dx < d.dist[x] {
			if d.dist[x] == infinity {
				touched = append(touched, x)
			}
			d.dist[x] = dx
			d.heap.push(x, dx)
		}
	}
	if du, ok := d.entryFor(u, r); ok {
		seed(v, du+wp)
	}
	if dv, ok := d.entryFor(v, r); ok {
		seed(u, dv+wp)
	}
	for d.heap.len() > 0 {
		x, dx := d.heap.pop()
		if dx > d.dist[x] {
			continue
		}
		d.visits++
		// An existing entry at or below dx already covers this visit.
		if have, ok := d.entryFor(x, r); ok && have <= dx {
			continue
		}
		// Prefix prune: hubs ranked above r (rank < r) that certify
		// dist(lm, x) ≤ dx make the entry redundant, exactly as in
		// construction. Ranks below r are ignored — the cover
		// invariant ties each entry to the highest-ranked vertex on
		// its shortest path.
		pruned := false
		for _, e := range d.labels[x] {
			if e.rank >= r {
				break
			}
			if hd := d.hubDist[e.rank]; hd+e.dist <= dx {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		d.setEntry(x, r, dx)
		g.Neighbors(x, func(y expertgraph.NodeID, wxy float64) bool {
			if d.weight != nil {
				wxy = d.weight(x, y, wxy)
			}
			if nd := dx + wxy; nd < d.dist[y] {
				if d.dist[y] == infinity {
					touched = append(touched, y)
				}
				d.dist[y] = nd
				d.heap.push(y, nd)
			}
			return true
		})
	}
	for _, x := range touched {
		d.dist[x] = infinity
	}
	for _, e := range d.labels[lm] {
		d.hubDist[e.rank] = infinity
	}
}

// Freeze packs the labels into an immutable CSR Index for concurrent
// readers. The DynamicIndex remains usable afterwards.
func (d *DynamicIndex) Freeze() *Index {
	n := len(d.labels)
	ix := &Index{
		n:      n,
		off:    make([]int32, n+1),
		rankOf: append([]int32(nil), d.rankOf...),
		nodeAt: append([]expertgraph.NodeID(nil), d.nodeAt...),
	}
	total := 0
	for i, l := range d.labels {
		total += len(l)
		ix.off[i+1] = int32(total)
	}
	ix.entries = make([]labelEntry, 0, total)
	for _, l := range d.labels {
		ix.entries = append(ix.entries, l...)
	}
	return ix
}
