package pll

import (
	"math"
	"sort"

	"authteam/internal/expertgraph"
)

// Dynamic maintenance of a 2-hop cover under both incremental and
// decremental graph changes, following the dynamization of pruned
// landmark labeling (Akiba, Iwata, Yoshida — "Dynamic and Historical
// Shortest-Path Distance Queries on Large Evolving Networks", WWW
// 2014) for insertions and the affected-region invalidation style of
// decremental 2-hop cover maintenance (D'Angelo, D'Emidio, Frigioni)
// for removals, both adapted from BFS to weighted Dijkstra.
//
// Insertion: on inserting edge (u, v), only shortest paths through the
// new edge can improve. For every landmark that already labels u or v,
// the landmark's original pruned Dijkstra is *resumed*: seeded at the
// far endpoint with the distance through the new edge and expanded
// with the same prefix-rank pruning rule as construction.
//
// Removal / weight increase: distances can only grow, so label entries
// can become too SMALL — which silently corrupts queries — and must be
// found and invalidated. A pair's distance can change only if every
// one of its shortest paths crossed the changed edge, so detection
// walks the tight shortest-path cones behind each endpoint on the
// still-intact index (true distances telescope along shortest paths,
// making the walks complete regardless of which entries individual
// nodes hold). Every cone member is itself a PLL landmark; its region
// — the far-side nodes whose path from it crossed the edge — is
// invalidated wholesale (entries deleted, previously-pruned pairs
// included, because a removal can also break the covering that
// justified a pruned entry) and then recomputed by re-running the
// landmark's pruned Dijkstra restricted to the region, in ascending
// rank order so each recomputation prunes against already-exact
// higher-priority labels. Repair therefore costs work proportional to
// the affected cones, not the graph.
//
// The repaired index answers every query exactly; it may carry entries
// a from-scratch build would have pruned (repairs add but rarely
// prune), which is why callers bound repair work with a staleness
// budget and fall back to a rebuild once labels drift.

// Neighborhood is the graph read surface repairs traverse: adjacency
// with weights, nothing more. Any expertgraph.GraphView satisfies it,
// and so does the live layer's incremental patch graph, which replays
// a mutation delta state by state so every repair sees exactly the
// graph its mutation produced.
type Neighborhood interface {
	Neighbors(u expertgraph.NodeID, fn func(v expertgraph.NodeID, w float64) bool)
}

// DynamicIndex is a mutable 2-hop cover. It is the thawed counterpart
// of Index: labels live in per-node slices that the repair operations
// grow, shrink and patch in place. It is NOT safe for concurrent use —
// mutate it from a single goroutine and Freeze it into an immutable
// Index for readers.
type DynamicIndex struct {
	labels [][]labelEntry // per node, sorted by rank ascending
	rankOf []int32
	nodeAt []expertgraph.NodeID
	weight func(u, v expertgraph.NodeID, w float64) float64 // nil = stored weights
	// alt is an optional second weight function consulted by the tight
	// tests of decremental repair: when the weight function itself has
	// drifted across a repair window (an authority re-fit changes G'
	// weights), surviving entries may have been created under either
	// function, and a chain is treated as tight if it is tight under
	// either. Over-approximating the affected region is safe (it is
	// recomputed exactly); under-approximating is not.
	alt func(u, v expertgraph.NodeID, w float64) float64

	// Scratch for resumed Dijkstras, sized to the node count.
	dist    []float64
	hubDist []float64
	heap    *pairHeap

	// visits counts label-array touches across all repairs, the work
	// measure callers can compare against a rebuild.
	visits int
}

// NewDynamic thaws ix into a mutable index, unpacking the packed
// labels into per-node entry slices. The weight function must be the
// one the index was built over (nil for stored weights); it is used to
// expand resumed Dijkstras. ix itself is not modified.
func NewDynamic(ix *Index, weight func(u, v expertgraph.NodeID, w float64) float64) *DynamicIndex {
	n := ix.n
	d := &DynamicIndex{
		labels:  ix.unpackLabels(),
		rankOf:  append([]int32(nil), ix.rankOf...),
		nodeAt:  append([]expertgraph.NodeID(nil), ix.nodeAt...),
		weight:  weight,
		dist:    make([]float64, n),
		hubDist: make([]float64, n),
		heap:    newPairHeap(64),
	}
	for i := range d.dist {
		d.dist[i] = infinity
		d.hubDist[i] = infinity
	}
	return d
}

// NumNodes returns the number of indexed nodes.
func (d *DynamicIndex) NumNodes() int { return len(d.labels) }

// Visits returns the cumulative label-touch count of all repairs since
// thawing, a proxy for repair work.
func (d *DynamicIndex) Visits() int { return d.visits }

// AddNode appends a new, initially isolated node to the index and
// returns its ID. The node is ranked last (least central) — the
// standard placement for a newcomer, revisited only by a full rebuild
// — and starts with the self label every landmark carries. Edges
// incident to it are indexed by subsequent InsertEdge calls.
func (d *DynamicIndex) AddNode() expertgraph.NodeID {
	id := expertgraph.NodeID(len(d.labels))
	rank := int32(len(d.labels))
	d.labels = append(d.labels, []labelEntry{{rank: rank, dist: 0}})
	d.rankOf = append(d.rankOf, rank)
	d.nodeAt = append(d.nodeAt, id)
	d.dist = append(d.dist, infinity)
	d.hubDist = append(d.hubDist, infinity)
	return id
}

// Dist returns the exact shortest-path distance between u and v, or
// +Inf when they are disconnected.
func (d *DynamicIndex) Dist(u, v expertgraph.NodeID) float64 {
	if u == v {
		return 0
	}
	return mergeJoin(d.labels[u], d.labels[v])
}

func mergeJoin(lu, lv []labelEntry) float64 {
	best := infinity
	i, j := 0, 0
	for i < len(lu) && j < len(lv) {
		switch {
		case lu[i].rank == lv[j].rank:
			if s := lu[i].dist + lv[j].dist; s < best {
				best = s
			}
			i++
			j++
		case lu[i].rank < lv[j].rank:
			i++
		default:
			j++
		}
	}
	return best
}

// loadHub mirrors x's label into the rank-indexed hubDist scratch
// array; unloadHub clears it. While loaded, distLoaded answers
// d.Dist(x, z) for any z with a single scan of labels[z] — the walks
// of decremental detection query thousands of distances against one
// fixed endpoint, and the array form halves the merge cost.
func (d *DynamicIndex) loadHub(x expertgraph.NodeID) {
	for _, e := range d.labels[x] {
		d.hubDist[e.rank] = e.dist
	}
}

func (d *DynamicIndex) unloadHub(x expertgraph.NodeID) {
	for _, e := range d.labels[x] {
		d.hubDist[e.rank] = infinity
	}
}

func (d *DynamicIndex) distLoaded(z expertgraph.NodeID) float64 {
	best := infinity
	for _, e := range d.labels[z] {
		if s := d.hubDist[e.rank] + e.dist; s < best {
			best = s
		}
	}
	return best
}

// entryFor returns u's label distance to the landmark of rank r and
// whether the entry exists.
func (d *DynamicIndex) entryFor(u expertgraph.NodeID, r int32) (float64, bool) {
	l := d.labels[u]
	i := sort.Search(len(l), func(i int) bool { return l[i].rank >= r })
	if i < len(l) && l[i].rank == r {
		return l[i].dist, true
	}
	return 0, false
}

// setEntry inserts or tightens the (r, dist) entry of u's label,
// keeping it sorted by rank.
func (d *DynamicIndex) setEntry(u expertgraph.NodeID, r int32, dist float64) {
	l := d.labels[u]
	i := sort.Search(len(l), func(i int) bool { return l[i].rank >= r })
	if i < len(l) && l[i].rank == r {
		if dist < l[i].dist {
			l[i].dist = dist
		}
		return
	}
	l = append(l, labelEntry{})
	copy(l[i+1:], l[i:])
	l[i] = labelEntry{rank: r, dist: dist}
	d.labels[u] = l
}

// InsertEdge repairs the index for a new undirected edge (u, v) with
// stored weight w. g must be the graph WITH the edge (and any other
// already-reported insertions) applied — resumed searches traverse it.
// Both endpoints must already be indexed (AddNode first for new
// nodes). Inserting a batch of edges one call at a time over the final
// graph converges to an index that answers every pair exactly: any
// improved shortest path uses at least one inserted edge, and that
// edge's resumption propagates the improvement through the rest of the
// batch's edges, which are already traversable.
func (d *DynamicIndex) InsertEdge(g Neighborhood, u, v expertgraph.NodeID, w float64) {
	wp := w
	if d.weight != nil {
		wp = d.weight(u, v, w)
	}
	// Affected landmarks: every hub of either endpoint, resumed in
	// ascending rank order so higher-priority repairs maximize pruning
	// of later ones (and so a new node inherits its neighbor's hubs
	// before its own bottom-ranked landmark is resumed).
	ranks := make([]int32, 0, len(d.labels[u])+len(d.labels[v]))
	for _, e := range d.labels[u] {
		ranks = append(ranks, e.rank)
	}
	for _, e := range d.labels[v] {
		ranks = append(ranks, e.rank)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	for i, r := range ranks {
		if i > 0 && ranks[i-1] == r {
			continue // deduplicate hubs shared by both endpoints
		}
		d.resume(g, r, u, v, wp)
	}
}

// resume continues the pruned Dijkstra of the landmark with rank r
// across the new edge (u, v) of search weight wp: each endpoint the
// landmark labels seeds the far endpoint at label distance + wp, and
// the search expands exactly like construction, pruning any node whose
// distance is already certified by hubs ranked above r.
func (d *DynamicIndex) resume(g Neighborhood, r int32, u, v expertgraph.NodeID, wp float64) {
	lm := d.nodeAt[r]
	// Load the landmark's label for O(|label|) prefix prune queries.
	for _, e := range d.labels[lm] {
		d.hubDist[e.rank] = e.dist
	}
	d.heap.reset()
	var touched []expertgraph.NodeID
	seed := func(x expertgraph.NodeID, dx float64) {
		if dx < d.dist[x] {
			if d.dist[x] == infinity {
				touched = append(touched, x)
			}
			d.dist[x] = dx
			d.heap.push(x, dx)
		}
	}
	if du, ok := d.entryFor(u, r); ok {
		seed(v, du+wp)
	}
	if dv, ok := d.entryFor(v, r); ok {
		seed(u, dv+wp)
	}
	for d.heap.len() > 0 {
		x, dx := d.heap.pop()
		if dx > d.dist[x] {
			continue
		}
		d.visits++
		// An existing entry at or below dx already covers this visit.
		if have, ok := d.entryFor(x, r); ok && have <= dx {
			continue
		}
		// Prefix prune: hubs ranked above r (rank < r) that certify
		// dist(lm, x) ≤ dx make the entry redundant, exactly as in
		// construction. Ranks below r are ignored — the cover
		// invariant ties each entry to the highest-ranked vertex on
		// its shortest path.
		pruned := false
		for _, e := range d.labels[x] {
			if e.rank >= r {
				break
			}
			if hd := d.hubDist[e.rank]; hd+e.dist <= dx {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		d.setEntry(x, r, dx)
		g.Neighbors(x, func(y expertgraph.NodeID, wxy float64) bool {
			if d.weight != nil {
				wxy = d.weight(x, y, wxy)
			}
			if nd := dx + wxy; nd < d.dist[y] {
				if d.dist[y] == infinity {
					touched = append(touched, y)
				}
				d.dist[y] = nd
				d.heap.push(y, nd)
			}
			return true
		})
	}
	for _, x := range touched {
		d.dist[x] = infinity
	}
	for _, e := range d.labels[lm] {
		d.hubDist[e.rank] = infinity
	}
}

// SetAltWeight installs a second weight function for the decremental
// tight tests (see the alt field). Pass nil to clear it.
func (d *DynamicIndex) SetAltWeight(f func(u, v expertgraph.NodeID, w float64) float64) {
	d.alt = f
}

// removeEntry deletes u's entry for the landmark of rank r, if any.
func (d *DynamicIndex) removeEntry(u expertgraph.NodeID, r int32) {
	l := d.labels[u]
	i := sort.Search(len(l), func(i int) bool { return l[i].rank >= r })
	if i < len(l) && l[i].rank == r {
		d.labels[u] = append(l[:i], l[i+1:]...)
	}
}

// tightEq reports whether got ≈ want up to float summation-order
// noise. Creation chains telescope distances in the same order the
// original search did, so true witnesses compare bitwise equal; the
// tolerance only widens the net when a weight function was re-fitted
// mid-window. Over-matching is safe (extra invalidation is recomputed
// exactly), under-matching is not.
func tightEq(got, want float64) bool {
	diff := math.Abs(got - want)
	return diff <= 1e-9 || diff <= 1e-9*math.Abs(want)
}

// RemoveEdge repairs the index after the undirected edge (u, v) was
// removed. g must be the graph immediately after the removal — for a
// sequence of *separate* decrements, apply and repair them one at a
// time, each against its own post-state (detection walks pre-change
// shortest paths queried from the index, which is exact for the
// previous state). wOld lists the candidate *search* weights the edge
// may have carried while surviving entries were created — one value
// normally, two when the index's weight function was re-fitted inside
// the repair window.
func (d *DynamicIndex) RemoveEdge(g Neighborhood, u, v expertgraph.NodeID, wOld ...float64) {
	d.repairHeavier(g, []EdgeChange{{U: u, V: v, WOld: wOld}})
}

// IncreaseEdge repairs the index after edge (u, v)'s search weight
// grew. g must already carry the new weight; wOld lists the candidate
// old search weights, as for RemoveEdge. (Weight decreases are the
// incremental case — use InsertEdge, which resumes across the
// now-cheaper edge.)
func (d *DynamicIndex) IncreaseEdge(g Neighborhood, u, v expertgraph.NodeID, wOld ...float64) {
	d.repairHeavier(g, []EdgeChange{{U: u, V: v, WOld: wOld}})
}

// EdgeChange names one edge of a simultaneous decremental batch, with
// the candidate old search weights its surviving entries may encode.
type EdgeChange struct {
	U, V expertgraph.NodeID
	WOld []float64
}

// IncreaseEdges repairs one *atomic* batch of weight increases — a
// single semantic change that re-weights several edges at once, most
// prominently an authority decrease making every incident edge of a
// node heavier. The batch MUST be repaired in one call: processing the
// edges one IncreaseEdge at a time would interleave detection (which
// walks tight chains over consistent pre-change distances) with
// recomputation (which rewrites some of those distances), and a stale
// chain crossing a later edge of the batch through an
// already-recomputed node would no longer telescope — leaving a
// too-small entry behind. Here every cone and region is detected on
// the intact pre-batch index before anything is invalidated.
func (d *DynamicIndex) IncreaseEdges(g Neighborhood, changes []EdgeChange) {
	d.repairHeavier(g, changes)
}

// affectedRegion is the invalidation unit of one decremental repair:
// one affected landmark and the nodes whose distance to it may have
// grown. set holds the nodes to invalidate AND recompute (the landmark
// outranks them, so it may have to label them); drop holds nodes that
// outrank the landmark — any entry there is non-canonical drift whose
// value can only be stale, so it is deleted without recomputation (the
// pair's cover lives in higher-priority labels).
type affectedRegion struct {
	rank int32
	set  []expertgraph.NodeID
	drop []expertgraph.NodeID
	in   map[expertgraph.NodeID]bool
}

// affectedCone walks the tight shortest-path cone behind one endpoint
// of the changed edge: starting from `near`, it collects every node z
// whose pre-op shortest path to `far` ran through the edge — the tight
// test uses true pre-op distances queried from the (still intact)
// index, which telescope along shortest paths, so the walk is complete
// regardless of which entries individual nodes hold.
func (d *DynamicIndex) affectedCone(g Neighborhood, near, far expertgraph.NodeID) []expertgraph.NodeID {
	d.loadHub(far)
	defer d.unloadHub(far)
	distFar := map[expertgraph.NodeID]float64{far: 0}
	toFar := func(z expertgraph.NodeID) float64 {
		if dz, ok := distFar[z]; ok {
			return dz
		}
		dz := d.distLoaded(z)
		distFar[z] = dz
		return dz
	}
	cone := []expertgraph.NodeID{near}
	in := map[expertgraph.NodeID]bool{near: true}
	for qi := 0; qi < len(cone); qi++ {
		z := cone[qi]
		dz := toFar(z)
		d.visits++
		g.Neighbors(z, func(y expertgraph.NodeID, w float64) bool {
			if in[y] {
				return true
			}
			ws := w
			if d.weight != nil {
				ws = d.weight(z, y, w)
			}
			tight := tightEq(dz+ws, toFar(y))
			if !tight && d.alt != nil {
				tight = tightEq(dz+d.alt(z, y, w), toFar(y))
			}
			if tight {
				in[y] = true
				cone = append(cone, y)
			}
			return true
		})
	}
	return cone
}

// landmarkRegion collects the affected targets of one landmark: the
// nodes x whose pre-op shortest path *from lm* crossed the changed
// edge near→far, found by a tight-edge walk from `far` over the
// landmark's true pre-op distances (d.Dist on the intact index). Every
// such pair is re-evaluated, not just those holding an entry — a
// removal can break a *covering* (the hub that made the pruned build
// skip an entry drifts away), in which case the landmark must now
// label a node it previously did not.
//
// farCone is the tight cone behind `far`: a shortest lm→x path through
// the edge continues with a shortest far→x path, so every region node
// is a cone member — the walk filters expansion candidates with one
// map lookup before paying a distance query.
func (d *DynamicIndex) landmarkRegion(g Neighborhood, lm, far expertgraph.NodeID, farCone map[expertgraph.NodeID]bool, region *affectedRegion) {
	r := region.rank
	d.loadHub(lm)
	defer d.unloadHub(lm)
	dist := map[expertgraph.NodeID]float64{lm: 0}
	fromLm := func(z expertgraph.NodeID) float64 {
		if dz, ok := dist[z]; ok {
			return dz
		}
		dz := d.distLoaded(z)
		dist[z] = dz
		return dz
	}
	// The walk keeps its own visited set: in a batch, the same
	// landmark's region can be grown from several changed edges whose
	// cone filters differ, so an already-collected node must still be
	// expandable under this edge's filter.
	var queue []expertgraph.NodeID
	visited := map[expertgraph.NodeID]bool{}
	mark := func(x expertgraph.NodeID) {
		if x == lm || visited[x] {
			return
		}
		visited[x] = true
		queue = append(queue, x)
		if region.in[x] {
			return
		}
		region.in[x] = true
		if d.rankOf[x] > r {
			region.set = append(region.set, x)
		} else {
			region.drop = append(region.drop, x)
		}
	}
	mark(far)
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		dx := fromLm(x)
		d.visits++
		g.Neighbors(x, func(y expertgraph.NodeID, w float64) bool {
			if y == lm || visited[y] || !farCone[y] {
				return true
			}
			ws := w
			if d.weight != nil {
				ws = d.weight(x, y, w)
			}
			tight := tightEq(dx+ws, fromLm(y))
			if !tight && d.alt != nil {
				tight = tightEq(dx+d.alt(x, y, w), fromLm(y))
			}
			if tight {
				mark(y)
			}
			return true
		})
	}
}

// repairHeavier implements RemoveEdge/IncreaseEdge/IncreaseEdges.
// Distances can only
// grow, so label entries can become too small — which would silently
// corrupt queries — and must be found and invalidated before anything
// is recomputed:
//
//  1. Detection (on the intact index): a pair (s, t) can change only
//     if every shortest s–t path crossed the changed edge. The
//     affected sources are the tight cones behind each endpoint; every
//     node is a PLL landmark, so each cone member lm gets a region —
//     the nodes on the far side whose pre-op shortest path from lm ran
//     through the edge, found by a per-landmark tight walk. Both walks
//     query true pre-op distances from the still-intact index.
//  2. Invalidation: every (landmark, region-node) entry is deleted
//     before any recomputation, so detection and boundary seeding
//     never read an entry that is about to die.
//  3. Recomputation: each affected landmark's pruned Dijkstra is
//     re-run restricted to its region, in ascending rank order so it
//     prunes against already-exact higher-priority labels.
func (d *DynamicIndex) repairHeavier(g Neighborhood, changes []EdgeChange) {
	// Phase 1 runs for the WHOLE batch before anything is invalidated:
	// every cone and region walk reads consistent pre-batch distances.
	type activeChange struct {
		u, v             expertgraph.NodeID
		coneU, coneV     []expertgraph.NodeID
		inConeU, inConeV map[expertgraph.NodeID]bool
	}
	var active []activeChange
	for _, c := range changes {
		// The edge was on a shortest u–v path iff its weight was tight
		// with the pre-change distance; a slack edge changes nothing.
		duv := d.Dist(c.U, c.V)
		seedTight := false
		for _, w := range c.WOld {
			if tightEq(duv, w) {
				seedTight = true
				break
			}
		}
		if !seedTight {
			continue
		}
		ac := activeChange{
			u:     c.U,
			v:     c.V,
			coneU: d.affectedCone(g, c.U, c.V),
			coneV: d.affectedCone(g, c.V, c.U),
		}
		ac.inConeU = make(map[expertgraph.NodeID]bool, len(ac.coneU))
		for _, z := range ac.coneU {
			ac.inConeU[z] = true
		}
		ac.inConeV = make(map[expertgraph.NodeID]bool, len(ac.coneV))
		for _, z := range ac.coneV {
			ac.inConeV[z] = true
		}
		active = append(active, ac)
	}
	if len(active) == 0 {
		return
	}

	regions := make(map[int32]*affectedRegion)
	regionFor := func(r int32) *affectedRegion {
		region := regions[r]
		if region == nil {
			region = &affectedRegion{rank: r, in: make(map[expertgraph.NodeID]bool)}
			regions[r] = region
		}
		return region
	}
	for _, ac := range active {
		for _, lm := range ac.coneU {
			d.landmarkRegion(g, lm, ac.v, ac.inConeV, regionFor(d.rankOf[lm]))
		}
		for _, lm := range ac.coneV {
			d.landmarkRegion(g, lm, ac.u, ac.inConeU, regionFor(d.rankOf[lm]))
		}
	}
	ranks := make([]int32, 0, len(regions))
	for r := range regions {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })

	for _, r := range ranks {
		for _, x := range regions[r].set {
			d.removeEntry(x, r)
		}
		for _, x := range regions[r].drop {
			d.removeEntry(x, r)
		}
	}
	for _, r := range ranks {
		if len(regions[r].set) > 0 {
			d.recomputeRegion(g, *regions[r])
		}
	}
}

// recomputeRegion re-runs the pruned Dijkstra of region's landmark
// restricted to the invalidated nodes: each is seeded through its
// neighbors outside the region, whose distances to the landmark are
// exact (their pairs were untouched by this repair, or recomputed
// already at a higher priority) and answerable by a rank-bounded merge
// with the landmark's label. The search then relaxes inside the region
// with the same prefix-rank pruning rule as construction: a settled
// node writes an exact entry, and a pruned settle certifies that the
// covering hub pair is exact (the upper-bound sum is ≤ an exact
// distance, hence equal), so the 2-hop cover stays exact either way.
func (d *DynamicIndex) recomputeRegion(g Neighborhood, region affectedRegion) {
	r := region.rank
	lm := d.nodeAt[r]
	// Only set members are recomputed; drop members (they outrank the
	// landmark — their entries were deleted, their cover lives in
	// higher-priority labels) count as boundary, answerable through the
	// rank-bounded merge like any other outside node.
	inSet := region.in
	if len(region.drop) > 0 {
		inSet = make(map[expertgraph.NodeID]bool, len(region.set))
		for _, x := range region.set {
			inSet[x] = true
		}
	}
	for _, e := range d.labels[lm] {
		d.hubDist[e.rank] = e.dist
	}
	// distToLm answers d(lm, y) for boundary nodes through hubs of rank
	// ≤ r only: those labels are already exact, while lower-priority
	// ranks may still await their own recomputation.
	distToLm := func(y expertgraph.NodeID) float64 {
		best := infinity
		for _, e := range d.labels[y] {
			if e.rank > r {
				break
			}
			if hd := d.hubDist[e.rank]; hd+e.dist < best {
				best = hd + e.dist
			}
		}
		return best
	}
	d.heap.reset()
	var touched []expertgraph.NodeID
	for _, x := range region.set {
		g.Neighbors(x, func(y expertgraph.NodeID, w float64) bool {
			if inSet[y] {
				return true
			}
			dy := distToLm(y)
			if dy == infinity {
				return true
			}
			if d.weight != nil {
				w = d.weight(y, x, w)
			}
			if nd := dy + w; nd < d.dist[x] {
				if d.dist[x] == infinity {
					touched = append(touched, x)
				}
				d.dist[x] = nd
				d.heap.push(x, nd)
			}
			return true
		})
	}
	for d.heap.len() > 0 {
		x, dx := d.heap.pop()
		if dx > d.dist[x] {
			continue
		}
		d.visits++
		if have, ok := d.entryFor(x, r); ok && have <= dx {
			continue
		}
		pruned := false
		for _, e := range d.labels[x] {
			if e.rank >= r {
				break
			}
			if hd := d.hubDist[e.rank]; hd+e.dist <= dx {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		d.setEntry(x, r, dx)
		g.Neighbors(x, func(y expertgraph.NodeID, wxy float64) bool {
			if !inSet[y] {
				return true // outside nodes are already exact
			}
			if d.weight != nil {
				wxy = d.weight(x, y, wxy)
			}
			if nd := dx + wxy; nd < d.dist[y] {
				if d.dist[y] == infinity {
					touched = append(touched, y)
				}
				d.dist[y] = nd
				d.heap.push(y, nd)
			}
			return true
		})
	}
	for _, x := range touched {
		d.dist[x] = infinity
	}
	for _, e := range d.labels[lm] {
		d.hubDist[e.rank] = infinity
	}
}

// Freeze packs the labels into an immutable Index for concurrent
// readers. The DynamicIndex remains usable afterwards.
func (d *DynamicIndex) Freeze() *Index {
	return packIndex(d.labels, append([]int32(nil), d.rankOf...),
		append([]expertgraph.NodeID(nil), d.nodeAt...))
}
