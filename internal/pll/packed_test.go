package pll

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"authteam/internal/expertgraph"
)

// TestPackedEncodingRoundTrip drives appendEntry/labelCursor over
// adversarial distance values: zeros, integers, dyadic fractions that
// quantize exactly, and arbitrary float64s that must fall back to the
// raw encoding bit-for-bit.
func TestPackedEncodingRoundTrip(t *testing.T) {
	dists := []float64{
		0, 1, 2, 10, 65536, 1.0 / 65536, 3 + 1.0/65536, 0.5, 0.25,
		0.1, 0.3333333333333333, math.Pi, 1e-12, 1e12, 7.25e9,
		math.Nextafter(1, 2), float64(1<<50) + 0.5,
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		nEntries := 1 + rng.Intn(20)
		entries := make([]labelEntry, 0, nEntries)
		rank := int32(rng.Intn(3))
		for i := 0; i < nEntries; i++ {
			d := dists[rng.Intn(len(dists))]
			if rng.Intn(3) == 0 {
				d = rng.Float64() * 100
			}
			entries = append(entries, labelEntry{rank: rank, dist: d})
			rank += int32(1 + rng.Intn(1000))
		}
		var data []byte
		prev := int32(-1)
		for _, e := range entries {
			data = appendEntry(data, prev, e.rank, e.dist, defaultQuantScale)
			prev = e.rank
		}
		c := labelCursor{data: data, pos: 0, end: len(data), rank: -1, quant: defaultQuantScale}
		for i, e := range entries {
			if !c.next() {
				t.Fatalf("trial %d: cursor ended at entry %d/%d", trial, i, nEntries)
			}
			if c.rank != e.rank || math.Float64bits(c.dist) != math.Float64bits(e.dist) {
				t.Fatalf("trial %d entry %d: got (%d,%v) want (%d,%v)",
					trial, i, c.rank, c.dist, e.rank, e.dist)
			}
		}
		if c.next() {
			t.Fatalf("trial %d: cursor overran %d entries", trial, nEntries)
		}
	}
}

// TestPackedDistMatchesUnpacked compares the packed merge-join against
// a straight merge over the unpacked entries for every pair of a
// random graph — distances must be bit-identical.
func TestPackedDistMatchesUnpacked(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 60, 120)
	ix := Build(g)
	labels := ix.unpackLabels()
	unpackedDist := func(u, v expertgraph.NodeID) float64 {
		if u == v {
			return 0
		}
		lu, lv := labels[u], labels[v]
		best := infinity
		i, j := 0, 0
		for i < len(lu) && j < len(lv) {
			switch {
			case lu[i].rank == lv[j].rank:
				if d := lu[i].dist + lv[j].dist; d < best {
					best = d
				}
				i++
				j++
			case lu[i].rank < lv[j].rank:
				i++
			default:
				j++
			}
		}
		return best
	}
	for u := 0; u < 60; u++ {
		for v := 0; v < 60; v++ {
			got := ix.Dist(expertgraph.NodeID(u), expertgraph.NodeID(v))
			want := unpackedDist(expertgraph.NodeID(u), expertgraph.NodeID(v))
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Dist(%d,%d): packed %v vs unpacked %v", u, v, got, want)
			}
		}
	}
}

// TestPackedShrink pins the compression claim the index exists for:
// the packed label store must be at least 35% smaller than the
// unpacked []labelEntry form on a representative random graph.
func TestPackedShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 300, 900)
	s := Build(g).Stats()
	if s.PackedBytes == 0 || s.UnpackedBytes == 0 {
		t.Fatalf("degenerate byte stats: %+v", s)
	}
	shrink := 1 - float64(s.PackedBytes)/float64(s.UnpackedBytes)
	if shrink < 0.35 {
		t.Errorf("packed labels shrink %.1f%%, want ≥ 35%% (packed %d, unpacked %d)",
			100*shrink, s.PackedBytes, s.UnpackedBytes)
	}
}

// TestDynamicRoundTripPacked pins the unpack→repair→Freeze cycle: a
// freeze with no intervening mutations must reproduce the packed form
// byte-identically.
func TestDynamicRoundTripPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 50, 100)
	ix := Build(g)
	frozen := NewDynamic(ix, nil).Freeze()
	if !indexesIdentical(ix, frozen) {
		t.Fatal("NewDynamic+Freeze round trip changed the packed index")
	}
}

// TestReadV1Format proves legacy (version 1, unpacked gob) index files
// still load, answering identical distances to the index that wrote
// them.
func TestReadV1Format(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	g := randomGraph(rng, 40, 80)
	ix := Build(g)
	var buf bytes.Buffer
	if err := writeV1(&buf, ix); err != nil {
		t.Fatalf("writeV1: %v", err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read v1: %v", err)
	}
	if !indexesIdentical(ix, loaded) {
		t.Fatal("v1 load did not reconstruct the packed index")
	}
	for trial := 0; trial < 200; trial++ {
		u := expertgraph.NodeID(rng.Intn(40))
		v := expertgraph.NodeID(rng.Intn(40))
		d1, d2 := ix.Dist(u, v), loaded.Dist(u, v)
		if d1 != d2 && !(math.IsInf(d1, 1) && math.IsInf(d2, 1)) {
			t.Fatalf("v1 round-trip distance mismatch at (%d,%d): %v vs %v", u, v, d1, d2)
		}
	}
}

// TestQuantChooser pins the per-index scale chooser on hand-built
// entry sets where the best scale is known.
func TestQuantChooser(t *testing.T) {
	entries := func(dists ...float64) [][]labelEntry {
		l := make([]labelEntry, len(dists))
		for i, d := range dists {
			l[i] = labelEntry{rank: int32(i), dist: d}
		}
		return [][]labelEntry{l}
	}
	cases := []struct {
		name   string
		labels [][]labelEntry
		want   float64
	}{
		{"empty", nil, defaultQuantScale},
		{"zeros only", entries(0, 0), defaultQuantScale},
		{"irrational", entries(math.Pi, math.Sqrt2, 1e-12), defaultQuantScale},
		{"integers", entries(1, 7, 42), 1},
		{"halves beat integers", entries(1, 2, 0.5, 1.5), 2},
		{"huge integers need scale 1", entries(1e10, 3e10, 5e10), 1},
		{"fine dyadics", entries(1.0/(1<<20), 3.0/(1<<20)), 1 << 20},
		{"majority wins", entries(0.25, 0.75, 1.25, math.Pi), 4},
	}
	for _, tc := range cases {
		if got := chooseQuant(tc.labels); got != tc.want {
			t.Errorf("%s: chooseQuant = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestQuantLargeDistancesPackFixed is the regression the per-index
// scale exists for: a graph whose distances are integers too large for
// the old global 2^16 scale (dist·2^16 ≥ 2^49 falls back to raw
// floats) must now choose scale 1 and pack every entry fixed-point,
// still answering bit-exact distances.
func TestQuantLargeDistancesPackFixed(t *testing.T) {
	const w = 1e10 // integer edge weight; path distances reach 39e10 ≈ 2^38.5
	n := 40
	b := expertgraph.NewBuilder(n, n-1)
	for i := 0; i < n; i++ {
		b.AddNode("", 1)
	}
	for i := 1; i < n; i++ {
		b.AddEdge(expertgraph.NodeID(i-1), expertgraph.NodeID(i), w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(g)
	if ix.quant != 1 {
		t.Fatalf("quant = %v, want 1 for huge integer distances", ix.quant)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := w * math.Abs(float64(u-v))
			if got := ix.Dist(expertgraph.NodeID(u), expertgraph.NodeID(v)); got != want {
				t.Fatalf("Dist(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
	// Every nonzero entry must have taken the fixed path: header (≤2
	// bytes for these rank deltas) + uvarint(dist) ≤ 6 bytes, versus 9+
	// for a float fallback. Byte budget proves no entry fell back.
	if max := ix.total * 8; len(ix.data) >= max {
		t.Errorf("packed %d bytes for %d entries — float fallbacks slipped in", len(ix.data), ix.total)
	}
	// And the index must survive a serialization round trip with its
	// scale intact.
	var buf bytes.Buffer
	if err := Write(&buf, ix); err != nil {
		t.Fatalf("Write: %v", err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !indexesIdentical(ix, loaded) {
		t.Fatal("v3 round trip changed the index")
	}
}

// TestReadV2Format proves version-2 files (fixed 2^16 scale, no quant
// field) still load: the packed bytes are adopted verbatim with the
// scale pinned to the legacy constant, and distances stay bit-exact.
func TestReadV2Format(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomGraph(rng, 40, 80)
	ix := Build(g)
	var buf bytes.Buffer
	if err := writeV2(&buf, ix); err != nil {
		t.Fatalf("writeV2: %v", err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read v2: %v", err)
	}
	if loaded.quant != defaultQuantScale {
		t.Fatalf("v2 load quant = %v, want legacy %v", loaded.quant, float64(defaultQuantScale))
	}
	for trial := 0; trial < 200; trial++ {
		u := expertgraph.NodeID(rng.Intn(40))
		v := expertgraph.NodeID(rng.Intn(40))
		d1, d2 := ix.Dist(u, v), loaded.Dist(u, v)
		if math.Float64bits(d1) != math.Float64bits(d2) &&
			!(math.IsInf(d1, 1) && math.IsInf(d2, 1)) {
			t.Fatalf("v2 round-trip distance mismatch at (%d,%d): %v vs %v", u, v, d1, d2)
		}
	}
}
