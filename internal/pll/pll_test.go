package pll

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"authteam/internal/expertgraph"
)

func buildPath(t *testing.T, n int) *expertgraph.Graph {
	t.Helper()
	b := expertgraph.NewBuilder(n, n-1)
	for i := 0; i < n; i++ {
		b.AddNode("", 1)
	}
	for i := 1; i < n; i++ {
		b.AddEdge(expertgraph.NodeID(i-1), expertgraph.NodeID(i), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(rng *rand.Rand, n, extra int) *expertgraph.Graph {
	b := expertgraph.NewBuilder(n, n+extra)
	for i := 0; i < n; i++ {
		b.AddNode("", 1)
	}
	type pair struct{ u, v expertgraph.NodeID }
	seen := make(map[pair]bool)
	add := func(u, v expertgraph.NodeID) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			return
		}
		seen[pair{u, v}] = true
		b.AddEdge(u, v, 0.05+rng.Float64())
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(expertgraph.NodeID(perm[i-1]), expertgraph.NodeID(perm[i]))
	}
	for i := 0; i < extra; i++ {
		add(expertgraph.NodeID(rng.Intn(n)), expertgraph.NodeID(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestPathGraphDistances(t *testing.T) {
	g := buildPath(t, 10)
	ix := Build(g)
	for u := 0; u < 10; u++ {
		for v := 0; v < 10; v++ {
			want := math.Abs(float64(u - v))
			if got := ix.Dist(expertgraph.NodeID(u), expertgraph.NodeID(v)); got != want {
				t.Errorf("Dist(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestSelfDistance(t *testing.T) {
	g := buildPath(t, 5)
	ix := Build(g)
	for u := 0; u < 5; u++ {
		if d := ix.Dist(expertgraph.NodeID(u), expertgraph.NodeID(u)); d != 0 {
			t.Errorf("Dist(%d,%d) = %v, want 0", u, u, d)
		}
	}
}

func TestDisconnected(t *testing.T) {
	b := expertgraph.NewBuilder(4, 2)
	for i := 0; i < 4; i++ {
		b.AddNode("", 1)
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(g)
	if d := ix.Dist(0, 2); !math.IsInf(d, 1) {
		t.Errorf("cross-component Dist = %v, want +Inf", d)
	}
	if d := ix.Dist(2, 3); d != 1 {
		t.Errorf("intra-component Dist = %v, want 1", d)
	}
}

func TestMatchesDijkstraProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		g := randomGraph(rng, n, n)
		ix := Build(g)
		for trial := 0; trial < 5; trial++ {
			src := expertgraph.NodeID(rng.Intn(n))
			ref := expertgraph.Dijkstra(g, src)
			for v := 0; v < n; v++ {
				got := ix.Dist(src, expertgraph.NodeID(v))
				if math.Abs(got-ref.Dist[v]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNaturalOrderMatchesDegreeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, 50, 80)
	degIx := BuildWithOptions(g, Options{Order: OrderDegree})
	natIx := BuildWithOptions(g, Options{Order: OrderNatural})
	for trial := 0; trial < 300; trial++ {
		u := expertgraph.NodeID(rng.Intn(50))
		v := expertgraph.NodeID(rng.Intn(50))
		d1, d2 := degIx.Dist(u, v), natIx.Dist(u, v)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("order-dependent distance: Dist(%d,%d) degree=%v natural=%v",
				u, v, d1, d2)
		}
	}
}

func TestDegreeOrderShrinksLabels(t *testing.T) {
	// A star graph: degree order indexes the hub first, giving tiny
	// labels; natural order starting from a leaf cannot prune as well.
	n := 50
	b := expertgraph.NewBuilder(n, n-1)
	for i := 0; i < n; i++ {
		b.AddNode("", 1)
	}
	hub := expertgraph.NodeID(n - 1) // highest ID so natural order does it last
	for i := 0; i < n-1; i++ {
		b.AddEdge(expertgraph.NodeID(i), hub, 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	deg := BuildWithOptions(g, Options{Order: OrderDegree}).Stats()
	nat := BuildWithOptions(g, Options{Order: OrderNatural}).Stats()
	if deg.TotalEntries >= nat.TotalEntries {
		t.Errorf("degree order should shrink labels: degree=%d natural=%d",
			deg.TotalEntries, nat.TotalEntries)
	}
	if deg.AvgLabelSize > 2.1 {
		t.Errorf("star graph with hub-first order should have ~2 entry labels, got %v",
			deg.AvgLabelSize)
	}
}

func TestReweightedBuild(t *testing.T) {
	g := buildPath(t, 6)
	// Double every edge during construction; distances must double too.
	ix := BuildWithOptions(g, Options{
		Weight: func(u, v expertgraph.NodeID, w float64) float64 { return 2 * w },
	})
	if d := ix.Dist(0, 5); d != 10 {
		t.Errorf("reweighted Dist(0,5) = %v, want 10", d)
	}
}

func TestStats(t *testing.T) {
	g := buildPath(t, 8)
	ix := Build(g)
	s := ix.Stats()
	if s.Nodes != 8 {
		t.Errorf("Stats.Nodes = %d, want 8", s.Nodes)
	}
	if s.TotalEntries == 0 || s.AvgLabelSize == 0 || s.MaxLabelSize == 0 {
		t.Errorf("degenerate stats: %+v", s)
	}
	if s.String() == "" {
		t.Error("Stats.String should be non-empty")
	}
	sum := 0
	for u := 0; u < 8; u++ {
		sum += ix.LabelSize(expertgraph.NodeID(u))
	}
	if sum != s.TotalEntries {
		t.Errorf("label sizes sum %d != TotalEntries %d", sum, s.TotalEntries)
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 40, 60)
	ix := Build(g)
	var buf bytes.Buffer
	if err := Write(&buf, ix); err != nil {
		t.Fatalf("Write: %v", err)
	}
	ix2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for trial := 0; trial < 200; trial++ {
		u := expertgraph.NodeID(rng.Intn(40))
		v := expertgraph.NodeID(rng.Intn(40))
		d1, d2 := ix.Dist(u, v), ix2.Dist(u, v)
		if d1 != d2 && !(math.IsInf(d1, 1) && math.IsInf(d2, 1)) {
			t.Fatalf("round-trip distance mismatch at (%d,%d): %v vs %v", u, v, d1, d2)
		}
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("reading garbage should fail")
	}
}

func TestEmptyGraphIndex(t *testing.T) {
	g, err := expertgraph.NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(g)
	if ix.NumNodes() != 0 {
		t.Errorf("NumNodes = %d, want 0", ix.NumNodes())
	}
}

func TestSingleNode(t *testing.T) {
	b := expertgraph.NewBuilder(1, 0)
	b.AddNode("only", 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(g)
	if d := ix.Dist(0, 0); d != 0 {
		t.Errorf("Dist(0,0) = %v, want 0", d)
	}
}
