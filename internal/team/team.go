// Package team defines the team model of the paper (Definition 1): a
// connected subgraph of the expert network whose nodes cover a project,
// together with the skill→expert assignment, plus the evaluation of
// every ranking objective (Definitions 2–6) on an actual team.
//
// Algorithm 1 scores candidates with a greedy surrogate during search;
// the objective values reported by the paper's experiments are computed
// on the returned team subgraph. This package is that ground truth.
package team

import (
	"fmt"
	"sort"

	"authteam/internal/expertgraph"
	"authteam/internal/transform"
)

// Edge is an undirected team edge with its raw graph weight.
type Edge struct {
	U, V expertgraph.NodeID
	W    float64
}

// Team is a connected subgraph covering a project. Nodes not assigned
// any skill are connectors (Definition 3).
type Team struct {
	Root       expertgraph.NodeID
	Nodes      []expertgraph.NodeID // sorted, unique
	Edges      []Edge               // unique, U < V
	Assignment map[expertgraph.SkillID]expertgraph.NodeID
}

// FromPaths builds a team from root-to-holder shortest paths drawn from
// a single shortest-path tree. assignment maps each required skill to
// its chosen holder; paths[s] is the node sequence root..holder for
// skill s. Shared path prefixes are deduplicated.
func FromPaths(g expertgraph.GraphView, root expertgraph.NodeID,
	assignment map[expertgraph.SkillID]expertgraph.NodeID,
	paths map[expertgraph.SkillID][]expertgraph.NodeID) (*Team, error) {

	nodeSet := map[expertgraph.NodeID]bool{root: true}
	type ekey struct{ u, v expertgraph.NodeID }
	edgeSet := map[ekey]float64{}
	for s, path := range paths {
		if len(path) == 0 {
			return nil, fmt.Errorf("team: empty path for skill %d", s)
		}
		if path[0] != root {
			return nil, fmt.Errorf("team: path for skill %d starts at %d, not root %d",
				s, path[0], root)
		}
		if last := path[len(path)-1]; last != assignment[s] {
			return nil, fmt.Errorf("team: path for skill %d ends at %d, assignment says %d",
				s, last, assignment[s])
		}
		for i, u := range path {
			nodeSet[u] = true
			if i == 0 {
				continue
			}
			w, ok := g.EdgeWeight(path[i-1], u)
			if !ok {
				return nil, fmt.Errorf("team: path edge (%d,%d) not in graph", path[i-1], u)
			}
			a, b := path[i-1], u
			if a > b {
				a, b = b, a
			}
			edgeSet[ekey{a, b}] = w
		}
	}

	t := &Team{
		Root:       root,
		Assignment: make(map[expertgraph.SkillID]expertgraph.NodeID, len(assignment)),
	}
	for s, c := range assignment {
		t.Assignment[s] = c
	}
	for u := range nodeSet {
		t.Nodes = append(t.Nodes, u)
	}
	sort.Slice(t.Nodes, func(i, j int) bool { return t.Nodes[i] < t.Nodes[j] })
	for k, w := range edgeSet {
		t.Edges = append(t.Edges, Edge{U: k.u, V: k.v, W: w})
	}
	sort.Slice(t.Edges, func(i, j int) bool {
		if t.Edges[i].U != t.Edges[j].U {
			return t.Edges[i].U < t.Edges[j].U
		}
		return t.Edges[i].V < t.Edges[j].V
	})
	return t, nil
}

// Holders returns the distinct skill holders, sorted. An expert
// covering several skills appears once (Definition 1 allows csi = csj).
func (t *Team) Holders() []expertgraph.NodeID {
	seen := make(map[expertgraph.NodeID]bool, len(t.Assignment))
	var out []expertgraph.NodeID
	for _, c := range t.Assignment {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Connectors returns team nodes that hold no assigned skill, sorted
// (Definition 3: all nodes excluding skill holders).
func (t *Team) Connectors() []expertgraph.NodeID {
	holder := make(map[expertgraph.NodeID]bool, len(t.Assignment))
	for _, c := range t.Assignment {
		holder[c] = true
	}
	var out []expertgraph.NodeID
	for _, u := range t.Nodes {
		if !holder[u] {
			out = append(out, u)
		}
	}
	return out
}

// Size returns the number of experts on the team.
func (t *Team) Size() int { return len(t.Nodes) }

// Validate checks that t is a well-formed team for project: every
// required skill is assigned to a team member that actually holds it,
// all edges exist in g, and the team subgraph is connected.
func (t *Team) Validate(g expertgraph.GraphView, project []expertgraph.SkillID) error {
	inTeam := make(map[expertgraph.NodeID]bool, len(t.Nodes))
	for _, u := range t.Nodes {
		if !g.ValidNode(u) {
			return fmt.Errorf("team: node %d not in graph", u)
		}
		inTeam[u] = true
	}
	for _, s := range project {
		c, ok := t.Assignment[s]
		if !ok {
			return fmt.Errorf("team: skill %q unassigned", g.SkillName(s))
		}
		if !inTeam[c] {
			return fmt.Errorf("team: holder %d of skill %q not on team", c, g.SkillName(s))
		}
		if !g.HasSkill(c, s) {
			return fmt.Errorf("team: expert %q does not hold skill %q",
				g.Name(c), g.SkillName(s))
		}
	}
	for _, e := range t.Edges {
		if !inTeam[e.U] || !inTeam[e.V] {
			return fmt.Errorf("team: edge (%d,%d) endpoint not on team", e.U, e.V)
		}
		w, ok := g.EdgeWeight(e.U, e.V)
		if !ok {
			return fmt.Errorf("team: edge (%d,%d) not in graph", e.U, e.V)
		}
		if w != e.W {
			return fmt.Errorf("team: edge (%d,%d) weight %v differs from graph %v",
				e.U, e.V, e.W, w)
		}
	}
	if !t.connected() {
		return fmt.Errorf("team: subgraph not connected")
	}
	return nil
}

func (t *Team) connected() bool {
	if len(t.Nodes) <= 1 {
		return true
	}
	adj := make(map[expertgraph.NodeID][]expertgraph.NodeID, len(t.Nodes))
	for _, e := range t.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	seen := map[expertgraph.NodeID]bool{t.Nodes[0]: true}
	stack := []expertgraph.NodeID{t.Nodes[0]}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return len(seen) == len(t.Nodes)
}

// Score holds every objective of the paper evaluated on one team, on
// the normalized scales of the supplied transform parameters.
type Score struct {
	CC     float64 // Definition 2: Σ edge weights
	CA     float64 // Definition 3: Σ connector inverse authorities
	SA     float64 // Definition 5: Σ holder inverse authorities
	CACC   float64 // Definition 4: γ·CA + (1−γ)·CC
	SACACC float64 // Definition 6: λ·SA + (1−λ)·CA-CC
}

// Evaluate computes all objectives of t under params.
func Evaluate(t *Team, p *transform.Params) Score {
	var s Score
	for _, e := range t.Edges {
		s.CC += p.NormW(e.W)
	}
	for _, u := range t.Connectors() {
		s.CA += p.NormInv(u)
	}
	for _, u := range t.Holders() {
		s.SA += p.NormInv(u)
	}
	s.CACC = p.Gamma*s.CA + (1-p.Gamma)*s.CC
	s.SACACC = p.Lambda*s.SA + (1-p.Lambda)*s.CACC
	return s
}

// Profile summarizes the human-facing statistics the paper reports in
// Figures 5 and 6: average authorities, team-wide authority and
// publication counts.
type Profile struct {
	Size               int
	AvgHolderAuth      float64
	AvgConnectorAuth   float64
	AvgTeamAuth        float64
	AvgPubs            float64
	Holders, Connector int
}

// ProfileOf computes the display profile of t over g.
func ProfileOf(t *Team, g expertgraph.GraphView) Profile {
	pr := Profile{Size: t.Size()}
	holders := t.Holders()
	conns := t.Connectors()
	pr.Holders, pr.Connector = len(holders), len(conns)
	for _, u := range holders {
		pr.AvgHolderAuth += g.Authority(u)
	}
	if len(holders) > 0 {
		pr.AvgHolderAuth /= float64(len(holders))
	}
	for _, u := range conns {
		pr.AvgConnectorAuth += g.Authority(u)
	}
	if len(conns) > 0 {
		pr.AvgConnectorAuth /= float64(len(conns))
	}
	for _, u := range t.Nodes {
		pr.AvgTeamAuth += g.Authority(u)
		pr.AvgPubs += float64(g.Pubs(u))
	}
	if len(t.Nodes) > 0 {
		pr.AvgTeamAuth /= float64(len(t.Nodes))
		pr.AvgPubs /= float64(len(t.Nodes))
	}
	return pr
}
