package team

import (
	"math"
	"strings"
	"testing"

	"authteam/internal/expertgraph"
	"authteam/internal/transform"
)

// fixture builds the 5-node graph used throughout:
//
//	root r(a=5) — h1(a=2, db) via w=0.4
//	r — m(a=10) via w=0.2, m — h2(a=1, ml) via w=0.3
//
// so the team for {db, ml} rooted at r is a 4-node tree with connector
// m (h-index 10) when h2 is reached through m.
func fixture(t *testing.T) (*expertgraph.Graph, map[string]expertgraph.NodeID) {
	t.Helper()
	b := expertgraph.NewBuilder(5, 4)
	r := b.AddNode("r", 5)
	h1 := b.AddNode("h1", 2, "db")
	m := b.AddNode("m", 10)
	h2 := b.AddNode("h2", 1, "ml")
	x := b.AddNode("x", 3, "db")
	b.SetPubs(r, 50)
	b.SetPubs(h1, 5)
	b.SetPubs(m, 100)
	b.SetPubs(h2, 3)
	b.AddEdge(r, h1, 0.4)
	b.AddEdge(r, m, 0.2)
	b.AddEdge(m, h2, 0.3)
	b.AddEdge(r, x, 0.9)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, map[string]expertgraph.NodeID{"r": r, "h1": h1, "m": m, "h2": h2, "x": x}
}

func makeTeam(t *testing.T, g *expertgraph.Graph, ids map[string]expertgraph.NodeID) *Team {
	t.Helper()
	db, _ := g.SkillID("db")
	ml, _ := g.SkillID("ml")
	assignment := map[expertgraph.SkillID]expertgraph.NodeID{
		db: ids["h1"],
		ml: ids["h2"],
	}
	paths := map[expertgraph.SkillID][]expertgraph.NodeID{
		db: {ids["r"], ids["h1"]},
		ml: {ids["r"], ids["m"], ids["h2"]},
	}
	tm, err := FromPaths(g, ids["r"], assignment, paths)
	if err != nil {
		t.Fatalf("FromPaths: %v", err)
	}
	return tm
}

func TestFromPaths(t *testing.T) {
	g, ids := fixture(t)
	tm := makeTeam(t, g, ids)
	if tm.Size() != 4 {
		t.Errorf("Size = %d, want 4", tm.Size())
	}
	if len(tm.Edges) != 3 {
		t.Errorf("edges = %d, want 3", len(tm.Edges))
	}
	if tm.Root != ids["r"] {
		t.Errorf("Root = %d, want %d", tm.Root, ids["r"])
	}
}

func TestFromPathsSharedPrefix(t *testing.T) {
	g, ids := fixture(t)
	db, _ := g.SkillID("db")
	ml, _ := g.SkillID("ml")
	// Both paths pass through m: shared prefix edges deduplicate.
	assignment := map[expertgraph.SkillID]expertgraph.NodeID{db: ids["h1"], ml: ids["h2"]}
	paths := map[expertgraph.SkillID][]expertgraph.NodeID{
		db: {ids["m"], ids["r"], ids["h1"]},
		ml: {ids["m"], ids["h2"]},
	}
	tm, err := FromPaths(g, ids["m"], assignment, paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(tm.Edges) != 3 {
		t.Errorf("edges = %d, want 3 (no duplicates)", len(tm.Edges))
	}
}

func TestFromPathsErrors(t *testing.T) {
	g, ids := fixture(t)
	db, _ := g.SkillID("db")
	t.Run("wrong start", func(t *testing.T) {
		_, err := FromPaths(g, ids["r"],
			map[expertgraph.SkillID]expertgraph.NodeID{db: ids["h1"]},
			map[expertgraph.SkillID][]expertgraph.NodeID{db: {ids["m"], ids["h1"]}})
		if err == nil || !strings.Contains(err.Error(), "root") {
			t.Errorf("want root error, got %v", err)
		}
	})
	t.Run("wrong end", func(t *testing.T) {
		_, err := FromPaths(g, ids["r"],
			map[expertgraph.SkillID]expertgraph.NodeID{db: ids["x"]},
			map[expertgraph.SkillID][]expertgraph.NodeID{db: {ids["r"], ids["h1"]}})
		if err == nil || !strings.Contains(err.Error(), "assignment") {
			t.Errorf("want assignment error, got %v", err)
		}
	})
	t.Run("missing edge", func(t *testing.T) {
		_, err := FromPaths(g, ids["r"],
			map[expertgraph.SkillID]expertgraph.NodeID{db: ids["h1"]},
			map[expertgraph.SkillID][]expertgraph.NodeID{db: {ids["r"], ids["h2"], ids["h1"]}})
		if err == nil || !strings.Contains(err.Error(), "not in graph") {
			t.Errorf("want missing edge error, got %v", err)
		}
	})
	t.Run("empty path", func(t *testing.T) {
		_, err := FromPaths(g, ids["r"],
			map[expertgraph.SkillID]expertgraph.NodeID{db: ids["h1"]},
			map[expertgraph.SkillID][]expertgraph.NodeID{db: {}})
		if err == nil {
			t.Error("want empty path error")
		}
	})
}

func TestHoldersAndConnectors(t *testing.T) {
	g, ids := fixture(t)
	tm := makeTeam(t, g, ids)
	holders := tm.Holders()
	if len(holders) != 2 || holders[0] != ids["h1"] || holders[1] != ids["h2"] {
		t.Errorf("Holders = %v, want [h1 h2]", holders)
	}
	conns := tm.Connectors()
	if len(conns) != 2 || conns[0] != ids["r"] || conns[1] != ids["m"] {
		t.Errorf("Connectors = %v, want [r m]", conns)
	}
}

func TestMultiSkillHolderCountedOnce(t *testing.T) {
	g, ids := fixture(t)
	db, _ := g.SkillID("db")
	ml, _ := g.SkillID("ml")
	// One expert covers both skills (csi == csj is allowed by Def. 1).
	assignment := map[expertgraph.SkillID]expertgraph.NodeID{db: ids["h1"], ml: ids["h1"]}
	paths := map[expertgraph.SkillID][]expertgraph.NodeID{
		db: {ids["h1"]},
		ml: {ids["h1"]},
	}
	tm, err := FromPaths(g, ids["h1"], assignment, paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(tm.Holders()) != 1 {
		t.Errorf("Holders = %v, want single h1", tm.Holders())
	}
	if len(tm.Connectors()) != 0 {
		t.Errorf("Connectors = %v, want none", tm.Connectors())
	}
	if tm.Size() != 1 {
		t.Errorf("Size = %d, want 1", tm.Size())
	}
}

func TestValidate(t *testing.T) {
	g, ids := fixture(t)
	tm := makeTeam(t, g, ids)
	db, _ := g.SkillID("db")
	ml, _ := g.SkillID("ml")
	if err := tm.Validate(g, []expertgraph.SkillID{db, ml}); err != nil {
		t.Errorf("valid team rejected: %v", err)
	}
}

func TestValidateFailures(t *testing.T) {
	g, ids := fixture(t)
	db, _ := g.SkillID("db")
	ml, _ := g.SkillID("ml")
	tm := makeTeam(t, g, ids)

	t.Run("unassigned skill", func(t *testing.T) {
		bad := *tm
		bad.Assignment = map[expertgraph.SkillID]expertgraph.NodeID{db: ids["h1"]}
		if err := bad.Validate(g, []expertgraph.SkillID{db, ml}); err == nil {
			t.Error("missing assignment should fail")
		}
	})
	t.Run("holder lacks skill", func(t *testing.T) {
		bad := makeTeam(t, g, ids)
		bad.Assignment[ml] = ids["m"] // m holds nothing
		if err := bad.Validate(g, []expertgraph.SkillID{db, ml}); err == nil {
			t.Error("holder without skill should fail")
		}
	})
	t.Run("disconnected", func(t *testing.T) {
		bad := makeTeam(t, g, ids)
		bad.Edges = bad.Edges[:1] // drop edges: nodes no longer connected
		if err := bad.Validate(g, []expertgraph.SkillID{db, ml}); err == nil {
			t.Error("disconnected team should fail")
		}
	})
	t.Run("edge weight tampered", func(t *testing.T) {
		bad := makeTeam(t, g, ids)
		bad.Edges = append([]Edge(nil), bad.Edges...)
		bad.Edges[0].W += 0.1
		if err := bad.Validate(g, []expertgraph.SkillID{db, ml}); err == nil {
			t.Error("tampered edge weight should fail")
		}
	})
}

func TestEvaluateRawScales(t *testing.T) {
	g, ids := fixture(t)
	tm := makeTeam(t, g, ids)
	p, err := transform.Fit(g, 0.6, 0.4, transform.Options{Normalize: false})
	if err != nil {
		t.Fatal(err)
	}
	s := Evaluate(tm, p)
	// CC: edges 0.4 + 0.2 + 0.3 = 0.9
	if math.Abs(s.CC-0.9) > 1e-12 {
		t.Errorf("CC = %v, want 0.9", s.CC)
	}
	// CA: connectors r(a=5), m(a=10): 0.2 + 0.1 = 0.3
	if math.Abs(s.CA-0.3) > 1e-12 {
		t.Errorf("CA = %v, want 0.3", s.CA)
	}
	// SA: holders h1(a=2), h2(a=1): 0.5 + 1 = 1.5
	if math.Abs(s.SA-1.5) > 1e-12 {
		t.Errorf("SA = %v, want 1.5", s.SA)
	}
	wantCACC := 0.6*0.3 + 0.4*0.9
	if math.Abs(s.CACC-wantCACC) > 1e-12 {
		t.Errorf("CACC = %v, want %v", s.CACC, wantCACC)
	}
	wantSACACC := 0.4*1.5 + 0.6*wantCACC
	if math.Abs(s.SACACC-wantSACACC) > 1e-12 {
		t.Errorf("SACACC = %v, want %v", s.SACACC, wantSACACC)
	}
}

func TestEvaluateObjectiveIdentities(t *testing.T) {
	g, ids := fixture(t)
	tm := makeTeam(t, g, ids)
	// γ=0: CA-CC reduces to CC. λ=0: SA-CA-CC reduces to CA-CC.
	p0, err := transform.Fit(g, 0, 0, transform.Options{Normalize: false})
	if err != nil {
		t.Fatal(err)
	}
	s := Evaluate(tm, p0)
	if s.CACC != s.CC {
		t.Errorf("γ=0: CACC %v != CC %v", s.CACC, s.CC)
	}
	if s.SACACC != s.CACC {
		t.Errorf("λ=0: SACACC %v != CACC %v", s.SACACC, s.CACC)
	}
	// γ=1: CA-CC reduces to CA. λ=1: SA-CA-CC reduces to SA.
	p1, err := transform.Fit(g, 1, 1, transform.Options{Normalize: false})
	if err != nil {
		t.Fatal(err)
	}
	s1 := Evaluate(tm, p1)
	if s1.CACC != s1.CA {
		t.Errorf("γ=1: CACC %v != CA %v", s1.CACC, s1.CA)
	}
	if s1.SACACC != s1.SA {
		t.Errorf("λ=1: SACACC %v != SA %v", s1.SACACC, s1.SA)
	}
}

func TestProfileOf(t *testing.T) {
	g, ids := fixture(t)
	tm := makeTeam(t, g, ids)
	pr := ProfileOf(tm, g)
	if pr.Size != 4 || pr.Holders != 2 || pr.Connector != 2 {
		t.Errorf("counts = %+v", pr)
	}
	if math.Abs(pr.AvgHolderAuth-1.5) > 1e-12 { // (2+1)/2
		t.Errorf("AvgHolderAuth = %v, want 1.5", pr.AvgHolderAuth)
	}
	if math.Abs(pr.AvgConnectorAuth-7.5) > 1e-12 { // (5+10)/2
		t.Errorf("AvgConnectorAuth = %v, want 7.5", pr.AvgConnectorAuth)
	}
	if math.Abs(pr.AvgTeamAuth-4.5) > 1e-12 { // (5+2+10+1)/4
		t.Errorf("AvgTeamAuth = %v, want 4.5", pr.AvgTeamAuth)
	}
	if math.Abs(pr.AvgPubs-39.5) > 1e-12 { // (50+5+100+3)/4
		t.Errorf("AvgPubs = %v, want 39.5", pr.AvgPubs)
	}
}

func TestProfileSingleton(t *testing.T) {
	g, ids := fixture(t)
	db, _ := g.SkillID("db")
	tm, err := FromPaths(g, ids["h1"],
		map[expertgraph.SkillID]expertgraph.NodeID{db: ids["h1"]},
		map[expertgraph.SkillID][]expertgraph.NodeID{db: {ids["h1"]}})
	if err != nil {
		t.Fatal(err)
	}
	pr := ProfileOf(tm, g)
	if pr.AvgConnectorAuth != 0 {
		t.Errorf("no connectors: AvgConnectorAuth = %v, want 0", pr.AvgConnectorAuth)
	}
	if pr.AvgHolderAuth != 2 {
		t.Errorf("AvgHolderAuth = %v, want 2", pr.AvgHolderAuth)
	}
}
