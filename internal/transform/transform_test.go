package transform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"authteam/internal/expertgraph"
)

// buildLine returns a 4-node path graph with distinct authorities and
// weights so normalization is non-trivial:
//
//	n0(a=1) --0.2-- n1(a=2) --0.6-- n2(a=4) --1.0-- n3(a=10)
func buildLine(t *testing.T) *expertgraph.Graph {
	t.Helper()
	b := expertgraph.NewBuilder(4, 3)
	n0 := b.AddNode("n0", 1)
	n1 := b.AddNode("n1", 2)
	n2 := b.AddNode("n2", 4)
	n3 := b.AddNode("n3", 10)
	b.AddEdge(n0, n1, 0.2)
	b.AddEdge(n1, n2, 0.6)
	b.AddEdge(n2, n3, 1.0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFitValidation(t *testing.T) {
	g := buildLine(t)
	for _, bad := range []struct{ gamma, lambda float64 }{
		{-0.1, 0.5}, {1.1, 0.5}, {0.5, -0.1}, {0.5, 1.1},
	} {
		if _, err := Fit(g, bad.gamma, bad.lambda, Options{}); err == nil {
			t.Errorf("Fit(γ=%v, λ=%v) should fail", bad.gamma, bad.lambda)
		}
	}
	if _, err := Fit(g, 0, 0, Options{}); err != nil {
		t.Errorf("boundary params should be accepted: %v", err)
	}
	if _, err := Fit(g, 1, 1, Options{}); err != nil {
		t.Errorf("boundary params should be accepted: %v", err)
	}
}

func TestNormalization(t *testing.T) {
	g := buildLine(t)
	p, err := Fit(g, 0.6, 0.6, Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	// Edge weights 0.2..1.0 normalize to 0..1.
	if got := p.NormW(0.2); got != 0 {
		t.Errorf("NormW(min) = %v, want 0", got)
	}
	if got := p.NormW(1.0); got != 1 {
		t.Errorf("NormW(max) = %v, want 1", got)
	}
	if got := p.NormW(0.6); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("NormW(mid) = %v, want 0.5", got)
	}
	// Inverse authorities: 1/1=1 is max (→1), 1/10=0.1 is min (→0):
	// high authority means zero cost.
	if got := p.NormInv(0); got != 1 {
		t.Errorf("NormInv(lowest authority) = %v, want 1", got)
	}
	if got := p.NormInv(3); got != 0 {
		t.Errorf("NormInv(highest authority) = %v, want 0", got)
	}
}

func TestNoNormalizationIsIdentity(t *testing.T) {
	g := buildLine(t)
	p, err := Fit(g, 0.5, 0.5, Options{Normalize: false})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NormW(0.6); got != 0.6 {
		t.Errorf("raw NormW = %v, want 0.6", got)
	}
	if got := p.NormInv(1); got != 0.5 { // a'(n1) = 1/2
		t.Errorf("raw NormInv = %v, want 0.5", got)
	}
}

func TestEdgeWeightFormula(t *testing.T) {
	g := buildLine(t)
	p, err := Fit(g, 0.6, 0.5, Options{Normalize: false})
	if err != nil {
		t.Fatal(err)
	}
	ew := p.EdgeWeight()
	// Edge (n1,n2): w=0.6, a'(n1)=0.5, a'(n2)=0.25.
	want := 0.6*(0.5+0.25) + 2*0.4*0.6
	if got := ew(1, 2, 0.6); math.Abs(got-want) > 1e-12 {
		t.Errorf("w'(1,2) = %v, want %v", got, want)
	}
}

func TestGammaZeroReducesToCommunication(t *testing.T) {
	g := buildLine(t)
	p, err := Fit(g, 0, 0, Options{Normalize: false})
	if err != nil {
		t.Fatal(err)
	}
	ew := p.EdgeWeight()
	// γ=0: w' = 2w exactly; authority plays no role.
	if got := ew(0, 1, 0.2); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("γ=0 w' = %v, want 0.4", got)
	}
}

func TestGammaOneIgnoresCommunication(t *testing.T) {
	g := buildLine(t)
	p, err := Fit(g, 1, 0, Options{Normalize: false})
	if err != nil {
		t.Fatal(err)
	}
	ew := p.EdgeWeight()
	// γ=1: w' = a'(u)+a'(v) regardless of w.
	want := 1.0 + 0.5
	if got := ew(0, 1, 123.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("γ=1 w' = %v, want %v", got, want)
	}
}

// TestPathTelescoping verifies the core property of the transformation:
// the G' weight of a path x0..xk equals
//
//	γ·(a'(x0) + a'(xk) + 2·Σ internal a') + 2(1−γ)·Σ w
//
// so internal (connector) authorities count twice and endpoints once.
func TestPathTelescoping(t *testing.T) {
	g := buildLine(t)
	p, err := Fit(g, 0.6, 0.5, Options{Normalize: false})
	if err != nil {
		t.Fatal(err)
	}
	path := []expertgraph.NodeID{0, 1, 2, 3}
	got := p.PathWeight(path)
	aInv := []float64{1, 0.5, 0.25, 0.1}
	ccSum := 0.2 + 0.6 + 1.0
	want := 0.6*(aInv[0]+aInv[3]+2*(aInv[1]+aInv[2])) + 2*0.4*ccSum
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PathWeight = %v, want %v", got, want)
	}
}

func TestPathTelescopingProperty(t *testing.T) {
	f := func(seed int64, gRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		gamma := math.Mod(math.Abs(gRaw), 1)
		n := 4 + rng.Intn(10)
		b := expertgraph.NewBuilder(n, n-1)
		for i := 0; i < n; i++ {
			b.AddNode("", float64(1+rng.Intn(15)))
		}
		ws := make([]float64, n-1)
		for i := 1; i < n; i++ {
			ws[i-1] = 0.05 + rng.Float64()
			b.AddEdge(expertgraph.NodeID(i-1), expertgraph.NodeID(i), ws[i-1])
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		p, err := Fit(g, gamma, 0.5, Options{Normalize: false})
		if err != nil {
			return false
		}
		path := make([]expertgraph.NodeID, n)
		for i := range path {
			path[i] = expertgraph.NodeID(i)
		}
		got := p.PathWeight(path)
		want := gamma * (g.InvAuthority(0) + g.InvAuthority(expertgraph.NodeID(n-1)))
		for i := 1; i < n-1; i++ {
			want += 2 * gamma * g.InvAuthority(expertgraph.NodeID(i))
		}
		for _, w := range ws {
			want += 2 * (1 - gamma) * w
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHolderCostAdjustments(t *testing.T) {
	g := buildLine(t)
	p, err := Fit(g, 0.6, 0.3, Options{Normalize: false})
	if err != nil {
		t.Fatal(err)
	}
	dist := 2.5
	v := expertgraph.NodeID(1) // a'(v) = 0.5
	if got, want := p.CACCCost(dist, v), dist-0.6*0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("CACCCost = %v, want %v", got, want)
	}
	wantSA := (1-0.3)*(dist-0.6*0.5) + 0.3*0.5
	if got := p.SACACCCost(dist, v); math.Abs(got-wantSA) > 1e-12 {
		t.Errorf("SACACCCost = %v, want %v", got, wantSA)
	}
}

func TestLambdaZeroSACACCEqualsCACC(t *testing.T) {
	g := buildLine(t)
	p, err := Fit(g, 0.6, 0, Options{Normalize: false})
	if err != nil {
		t.Fatal(err)
	}
	for v := expertgraph.NodeID(0); v < 4; v++ {
		d := 1.7
		if math.Abs(p.SACACCCost(d, v)-p.CACCCost(d, v)) > 1e-12 {
			t.Errorf("λ=0: SACACCCost should equal CACCCost at node %d", v)
		}
	}
}

func TestPathWeightMissingEdge(t *testing.T) {
	g := buildLine(t)
	p, err := Fit(g, 0.5, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PathWeight([]expertgraph.NodeID{0, 2}); !math.IsInf(got, 1) {
		t.Errorf("non-adjacent path weight = %v, want +Inf", got)
	}
	if got := p.PathWeight([]expertgraph.NodeID{0}); got != 0 {
		t.Errorf("single-node path weight = %v, want 0", got)
	}
}

func TestGraphAccessor(t *testing.T) {
	g := buildLine(t)
	p, err := Fit(g, 0.5, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph() != g {
		t.Error("Graph() should return the fitted graph")
	}
}
