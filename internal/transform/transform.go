// Package transform implements the node-weight-to-edge-weight graph
// transformation of §3.2.2 of the paper, which lets one search
// algorithm (Algorithm 1) optimize all of the paper's objectives.
//
// Given tradeoff parameters γ (connector authority vs communication
// cost) and λ (skill-holder authority vs everything else), the
// transformed graph G' reweights every edge (ci, cj) as
//
//	w'(ci,cj) = γ·(a'(ci)+a'(cj)) + 2·(1−γ)·w(ci,cj)
//
// so that a shortest path in G' accounts for the inverse authorities of
// its internal nodes (each internal node is incident to two path edges,
// hence the factor 2 on the communication term to keep the scales
// matched). Because edge weights and inverse authorities live on
// different scales, Definition 4 of the paper normalizes both before
// combining; Params carries the fitted min–max scalers and applies them
// consistently in search and in reported objective values.
package transform

import (
	"fmt"

	"authteam/internal/expertgraph"
	"authteam/internal/stats"
)

// Params bundles the tradeoff parameters and the normalization fitted
// to one graph view. Construct with Fit; the zero value is not usable.
type Params struct {
	Gamma  float64 // connector-authority weight γ ∈ [0,1] (Def. 4)
	Lambda float64 // skill-holder-authority weight λ ∈ [0,1] (Def. 6)

	g      expertgraph.GraphView
	wScale stats.Scaler
	aScale stats.Scaler
	// normInv caches the normalized inverse authority ā'(u) per node.
	normInv []float64
}

// Options controls fitting.
type Options struct {
	// Normalize enables the min–max normalization of Def. 4. It is on
	// in all paper experiments; turning it off (ablation) combines raw
	// scales directly.
	Normalize bool
}

// Fit validates (γ, λ) and fits normalization scalers to g. Any
// GraphView works — fitting only reads bounds and inverse authorities,
// so the live overlay is fitted without materializing a graph.
func Fit(g expertgraph.GraphView, gamma, lambda float64, opt Options) (*Params, error) {
	if gamma < 0 || gamma > 1 {
		return nil, fmt.Errorf("transform: gamma %v out of [0,1]", gamma)
	}
	if lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("transform: lambda %v out of [0,1]", lambda)
	}
	p := &Params{Gamma: gamma, Lambda: lambda, g: g}
	if opt.Normalize {
		p.wScale = stats.NewScaler(spread(g.EdgeWeightBounds()))
		p.aScale = stats.NewScaler(spread(g.InvAuthorityBounds()))
	} else {
		p.wScale = stats.NewScaler(0, 1) // identity map
		p.aScale = stats.NewScaler(0, 1)
	}
	p.normInv = make([]float64, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		p.normInv[u] = p.aScale.Scale(g.InvAuthority(expertgraph.NodeID(u)))
	}
	return p, nil
}

// spread widens degenerate bounds so a constant scale maps to 0 via
// Scaler's degenerate handling rather than dividing by zero.
func spread(lo, hi float64) (float64, float64) { return lo, hi }

// Graph returns the graph view the params were fitted to.
func (p *Params) Graph() expertgraph.GraphView { return p.g }

// NormW returns the normalized edge weight w̄.
func (p *Params) NormW(w float64) float64 { return p.wScale.Scale(w) }

// NormInv returns the normalized inverse authority ā'(u).
func (p *Params) NormInv(u expertgraph.NodeID) float64 { return p.normInv[u] }

// EdgeWeight returns the G' weight function
// w'(u,v) = γ(ā'(u)+ā'(v)) + 2(1−γ)w̄(u,v), suitable for the reweighted
// Dijkstra and PLL builders.
func (p *Params) EdgeWeight() func(u, v expertgraph.NodeID, w float64) float64 {
	gamma := p.Gamma
	norm := p.normInv
	ws := p.wScale
	return func(u, v expertgraph.NodeID, w float64) float64 {
		return gamma*(norm[u]+norm[v]) + 2*(1-gamma)*ws.Scale(w)
	}
}

// CACCCost converts a G' distance DIST'(root, v) into the CA-CC greedy
// cost of picking v as a skill holder (§3.2.2): the holder's own
// authority is removed because v is a skill holder, not a connector.
func (p *Params) CACCCost(distPrime float64, v expertgraph.NodeID) float64 {
	return distPrime - p.Gamma*p.normInv[v]
}

// SACACCCost converts a G' distance into the SA-CA-CC greedy cost of
// picking v as a skill holder (§3.2.3):
//
//	(1−λ)·(DIST'(root,v) − γ·ā'(v)) + λ·ā'(v)
//
// i.e. the holder's authority is removed from the connector term and
// re-added under the skill-holder tradeoff λ.
func (p *Params) SACACCCost(distPrime float64, v expertgraph.NodeID) float64 {
	return (1-p.Lambda)*(distPrime-p.Gamma*p.normInv[v]) + p.Lambda*p.normInv[v]
}

// PathWeight computes the exact G' weight of a path given as a node
// sequence, for verifying oracle distances against the telescoped
// definition. It returns 0 for paths of fewer than two nodes.
func (p *Params) PathWeight(path []expertgraph.NodeID) float64 {
	total := 0.0
	ew := p.EdgeWeight()
	for i := 1; i < len(path); i++ {
		w, ok := p.g.EdgeWeight(path[i-1], path[i])
		if !ok {
			return expertgraph.Infinity()
		}
		total += ew(path[i-1], path[i], w)
	}
	return total
}
