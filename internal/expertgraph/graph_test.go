package expertgraph

import (
	"errors"
	"math"
	"sort"
	"testing"
)

// buildDiamond returns the 4-node diamond used across tests:
//
//	a(auth 2, skills: db) — b(auth 4, skills: ml)     a-b: 1.0
//	a — c(auth 1, skills: db, ml)                      a-c: 2.0
//	b — d(auth 8, no skills)                           b-d: 0.5
//	c — d                                              c-d: 1.0
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4, 4)
	a := b.AddNode("a", 2, "db")
	bb := b.AddNode("b", 4, "ml")
	c := b.AddNode("c", 1, "db", "ml")
	d := b.AddNode("d", 8)
	b.AddEdge(a, bb, 1.0)
	b.AddEdge(a, c, 2.0)
	b.AddEdge(bb, d, 0.5)
	b.AddEdge(c, d, 1.0)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildCounts(t *testing.T) {
	g := buildDiamond(t)
	if g.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.NumSkills() != 2 {
		t.Errorf("NumSkills = %d, want 2", g.NumSkills())
	}
}

func TestNodeAccessors(t *testing.T) {
	g := buildDiamond(t)
	if g.Name(0) != "a" {
		t.Errorf("Name(0) = %q, want a", g.Name(0))
	}
	if g.Authority(1) != 4 {
		t.Errorf("Authority(1) = %v, want 4", g.Authority(1))
	}
	if got := g.InvAuthority(1); got != 0.25 {
		t.Errorf("InvAuthority(1) = %v, want 0.25", got)
	}
	if g.Degree(0) != 2 || g.Degree(3) != 2 {
		t.Errorf("Degree = %d,%d, want 2,2", g.Degree(0), g.Degree(3))
	}
}

func TestAuthorityFloor(t *testing.T) {
	b := NewBuilder(1, 0)
	id := b.AddNode("zero", 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Authority(id) != 1 {
		t.Errorf("authority 0 should floor to 1, got %v", g.Authority(id))
	}
	if g.InvAuthority(id) != 1 {
		t.Errorf("inverse authority should be 1, got %v", g.InvAuthority(id))
	}
}

func TestNeighbors(t *testing.T) {
	g := buildDiamond(t)
	var got []NodeID
	g.Neighbors(0, func(v NodeID, w float64) bool {
		got = append(got, v)
		return true
	})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []NodeID{1, 2}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Neighbors(0) = %v, want %v", got, want)
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	g := buildDiamond(t)
	calls := 0
	g.Neighbors(0, func(NodeID, float64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early-stop iteration made %d calls, want 1", calls)
	}
}

func TestEdgeWeight(t *testing.T) {
	g := buildDiamond(t)
	if w, ok := g.EdgeWeight(1, 3); !ok || w != 0.5 {
		t.Errorf("EdgeWeight(1,3) = %v,%v, want 0.5,true", w, ok)
	}
	if w, ok := g.EdgeWeight(3, 1); !ok || w != 0.5 {
		t.Errorf("EdgeWeight(3,1) = %v,%v, want symmetric 0.5,true", w, ok)
	}
	if _, ok := g.EdgeWeight(0, 3); ok {
		t.Error("EdgeWeight(0,3) should not exist")
	}
}

func TestSkills(t *testing.T) {
	g := buildDiamond(t)
	db, ok := g.SkillID("db")
	if !ok {
		t.Fatal("skill db missing")
	}
	ml, ok := g.SkillID("ml")
	if !ok {
		t.Fatal("skill ml missing")
	}
	if g.SkillName(db) != "db" || g.SkillName(ml) != "ml" {
		t.Error("SkillName round-trip failed")
	}
	if !g.HasSkill(0, db) || g.HasSkill(0, ml) {
		t.Error("node a should hold db only")
	}
	if !g.HasSkill(2, db) || !g.HasSkill(2, ml) {
		t.Error("node c should hold both skills")
	}
	if len(g.Skills(3)) != 0 {
		t.Error("node d should hold no skills")
	}
}

func TestExpertsWithSkill(t *testing.T) {
	g := buildDiamond(t)
	db, _ := g.SkillID("db")
	got := g.ExpertsWithSkill(db)
	want := []NodeID{0, 2}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("ExpertsWithSkill(db) = %v, want %v", got, want)
	}
}

func TestSkillIDUnknown(t *testing.T) {
	g := buildDiamond(t)
	if _, ok := g.SkillID("quantum"); ok {
		t.Error("unknown skill should not resolve")
	}
}

func TestAddSkillToDeduplicates(t *testing.T) {
	b := NewBuilder(1, 0)
	id := b.AddNode("x", 1, "db")
	b.AddSkillTo(id, "db")
	b.AddSkillTo(id, "db")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Skills(id)) != 1 {
		t.Errorf("duplicate skill grants should collapse, got %v", g.Skills(id))
	}
}

func TestBounds(t *testing.T) {
	g := buildDiamond(t)
	lo, hi := g.EdgeWeightBounds()
	if lo != 0.5 || hi != 2.0 {
		t.Errorf("EdgeWeightBounds = (%v,%v), want (0.5,2)", lo, hi)
	}
	alo, ahi := g.InvAuthorityBounds()
	if alo != 0.125 || ahi != 1.0 {
		t.Errorf("InvAuthorityBounds = (%v,%v), want (0.125,1)", alo, ahi)
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("self loop", func(t *testing.T) {
		b := NewBuilder(1, 1)
		u := b.AddNode("u", 1)
		b.AddEdge(u, u, 1)
		if _, err := b.Build(); !errors.Is(err, ErrSelfLoop) {
			t.Errorf("err = %v, want ErrSelfLoop", err)
		}
	})
	t.Run("negative weight", func(t *testing.T) {
		b := NewBuilder(2, 1)
		u, v := b.AddNode("u", 1), b.AddNode("v", 1)
		b.AddEdge(u, v, -0.5)
		if _, err := b.Build(); !errors.Is(err, ErrNegativeWeight) {
			t.Errorf("err = %v, want ErrNegativeWeight", err)
		}
	})
	t.Run("unknown node", func(t *testing.T) {
		b := NewBuilder(1, 1)
		u := b.AddNode("u", 1)
		b.AddEdge(u, 99, 1)
		if _, err := b.Build(); !errors.Is(err, ErrUnknownNode) {
			t.Errorf("err = %v, want ErrUnknownNode", err)
		}
	})
	t.Run("duplicate edge", func(t *testing.T) {
		b := NewBuilder(2, 2)
		u, v := b.AddNode("u", 1), b.AddNode("v", 1)
		b.AddEdge(u, v, 1)
		b.AddEdge(v, u, 2) // same undirected edge, opposite order
		if _, err := b.Build(); !errors.Is(err, ErrDuplicateEdge) {
			t.Errorf("err = %v, want ErrDuplicateEdge", err)
		}
	})
}

func TestValidNode(t *testing.T) {
	g := buildDiamond(t)
	if !g.ValidNode(0) || !g.ValidNode(3) {
		t.Error("nodes 0 and 3 should be valid")
	}
	if g.ValidNode(-1) || g.ValidNode(4) {
		t.Error("-1 and 4 should be invalid")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Error("empty build should give empty graph")
	}
	lo, hi := g.EdgeWeightBounds()
	if lo != 0 || hi != 0 {
		t.Error("empty graph bounds should be zero")
	}
}

func TestInfinityIsInf(t *testing.T) {
	if !math.IsInf(Infinity(), 1) {
		t.Error("Infinity() must be +Inf")
	}
}

func TestStringSummary(t *testing.T) {
	g := buildDiamond(t)
	want := "expertgraph{nodes: 4, edges: 4, skills: 2}"
	if g.String() != want {
		t.Errorf("String = %q, want %q", g.String(), want)
	}
}
