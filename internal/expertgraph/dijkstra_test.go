package expertgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDijkstraDiamond(t *testing.T) {
	g := buildDiamond(t)
	// Diamond: a-b 1.0, a-c 2.0, b-d 0.5, c-d 1.0.
	res := Dijkstra(g, 0)
	want := []float64{0, 1.0, 2.0, 1.5}
	for v, d := range want {
		if math.Abs(res.Dist[v]-d) > 1e-12 {
			t.Errorf("Dist[%d] = %v, want %v", v, res.Dist[v], d)
		}
	}
}

func TestDijkstraPath(t *testing.T) {
	g := buildDiamond(t)
	res := Dijkstra(g, 0)
	path := res.PathTo(3)
	want := []NodeID{0, 1, 3} // a -> b -> d (cost 1.5 beats a->c->d = 3.0)
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := NewBuilder(3, 1)
	u, v := b.AddNode("u", 1), b.AddNode("v", 1)
	b.AddNode("island", 1)
	b.AddEdge(u, v, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := Dijkstra(g, 0)
	if !math.IsInf(res.Dist[2], 1) {
		t.Errorf("island Dist = %v, want +Inf", res.Dist[2])
	}
	if res.PathTo(2) != nil {
		t.Error("path to island should be nil")
	}
}

func TestDijkstraPathToSource(t *testing.T) {
	g := buildDiamond(t)
	res := Dijkstra(g, 2)
	path := res.PathTo(2)
	if len(path) != 1 || path[0] != 2 {
		t.Errorf("PathTo(source) = %v, want [2]", path)
	}
}

func TestShortestPath(t *testing.T) {
	g := buildDiamond(t)
	path, d := ShortestPath(g, 2, 1) // c->a->b = 3.0 vs c->d->b = 1.5
	if math.Abs(d-1.5) > 1e-12 {
		t.Errorf("dist = %v, want 1.5", d)
	}
	want := []NodeID{2, 3, 1}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestWorkspaceReuse(t *testing.T) {
	g := buildDiamond(t)
	ws := NewDijkstraWorkspace(g)
	r1 := ws.Run(0)
	d03 := r1.Dist[3]
	r2 := ws.Run(3)
	if math.Abs(r2.Dist[0]-d03) > 1e-12 {
		t.Errorf("symmetric distance mismatch: %v vs %v", r2.Dist[0], d03)
	}
	// Run from every node to shake out stale workspace state.
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		res := ws.Run(u)
		if res.Dist[u] != 0 {
			t.Errorf("Dist[src=%d] = %v, want 0", u, res.Dist[u])
		}
	}
}

func TestRunWeighted(t *testing.T) {
	g := buildDiamond(t)
	ws := NewDijkstraWorkspace(g)
	// Constant reweighting to 1 turns the search into hop counting.
	res := ws.RunWeighted(0, func(u, v NodeID, w float64) float64 { return 1 })
	want := []float64{0, 1, 1, 2}
	for v, d := range want {
		if res.Dist[v] != d {
			t.Errorf("hop Dist[%d] = %v, want %v", v, res.Dist[v], d)
		}
	}
}

// randomConnectedGraph builds a connected random graph: a spanning path
// plus extra random edges, with uniform weights in (0, 1].
func randomConnectedGraph(rng *rand.Rand, n, extra int) *Graph {
	b := NewBuilder(n, n+extra)
	for i := 0; i < n; i++ {
		b.AddNode("", float64(1+rng.Intn(20)))
	}
	type pair struct{ u, v NodeID }
	seen := make(map[pair]bool)
	addEdge := func(u, v NodeID) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			return
		}
		seen[pair{u, v}] = true
		b.AddEdge(u, v, 0.05+rng.Float64())
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		addEdge(NodeID(perm[i-1]), NodeID(perm[i]))
	}
	for i := 0; i < extra; i++ {
		addEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// bellmanFord is an independent O(VE) reference for shortest paths.
func bellmanFord(g *Graph, src NodeID) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = infinity
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := NodeID(0); int(u) < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			g.Neighbors(u, func(v NodeID, w float64) bool {
				if nd := dist[u] + w; nd < dist[v] {
					dist[v] = nd
					changed = true
				}
				return true
			})
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestDijkstraMatchesBellmanFordProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := randomConnectedGraph(rng, n, n)
		src := NodeID(rng.Intn(n))
		d1 := Dijkstra(g, src).Dist
		d2 := bellmanFord(g, src)
		for i := range d1 {
			if math.Abs(d1[i]-d2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDijkstraTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnectedGraph(rng, 60, 120)
	all := make([]*SSSP, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		all[u] = Dijkstra(g, NodeID(u))
	}
	for trial := 0; trial < 500; trial++ {
		a := rng.Intn(g.NumNodes())
		b := rng.Intn(g.NumNodes())
		c := rng.Intn(g.NumNodes())
		if all[a].Dist[b] > all[a].Dist[c]+all[c].Dist[b]+1e-9 {
			t.Fatalf("triangle inequality violated: d(%d,%d) > d(%d,%d)+d(%d,%d)",
				a, b, a, c, c, b)
		}
	}
}

func TestHeapOrdering(t *testing.T) {
	h := newIndexedHeap(10)
	prios := []float64{5, 1, 4, 2, 3}
	for i, p := range prios {
		h.push(NodeID(i), p)
	}
	h.decrease(0, 0.5) // node 0: 5 -> 0.5, now the minimum
	var got []NodeID
	for h.len() > 0 {
		u, _ := h.pop()
		got = append(got, u)
	}
	want := []NodeID{0, 1, 3, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heap pop order = %v, want %v", got, want)
		}
	}
}

func TestHeapReset(t *testing.T) {
	h := newIndexedHeap(4)
	h.push(1, 2)
	h.push(2, 1)
	h.reset()
	if h.len() != 0 || h.contains(1) || h.contains(2) {
		t.Error("reset should empty the heap and clear positions")
	}
	h.push(3, 1)
	if u, _ := h.pop(); u != 3 {
		t.Error("heap unusable after reset")
	}
}
