package expertgraph

import (
	"bytes"
	"errors"
	"testing"
)

func removalFixture(t *testing.T) *Builder {
	t.Helper()
	b := NewBuilder(4, 4)
	b.AddNode("a", 2, "x")
	b.AddNode("b", 4, "y")
	b.AddNode("c", 8, "x", "y")
	b.AddNode("d", 16, "z")
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.7)
	b.AddEdge(2, 3, 0.9)
	b.AddEdge(0, 3, 0.2)
	return b
}

func TestBuilderRemoveAndUpdateEdge(t *testing.T) {
	b := removalFixture(t)
	b.UpdateEdge(1, 2, 0.05) // new min weight
	b.RemoveEdge(0, 3)       // old min weight gone
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges %d, want 3", g.NumEdges())
	}
	if w, ok := g.EdgeWeight(1, 2); !ok || w != 0.05 {
		t.Fatalf("updated weight %v %v", w, ok)
	}
	if _, ok := g.EdgeWeight(0, 3); ok {
		t.Fatal("removed edge still present")
	}
	if lo, hi := g.EdgeWeightBounds(); lo != 0.05 || hi != 0.9 {
		t.Fatalf("bounds (%v,%v), want (0.05,0.9)", lo, hi)
	}

	// Unknown-edge operations are sticky errors.
	b2 := removalFixture(t)
	b2.RemoveEdge(0, 2)
	if _, err := b2.Build(); !errors.Is(err, ErrUnknownEdge) {
		t.Fatalf("remove of unknown edge: %v", err)
	}
	b3 := removalFixture(t)
	b3.UpdateEdge(0, 2, 0.4)
	if _, err := b3.Build(); !errors.Is(err, ErrUnknownEdge) {
		t.Fatalf("update of unknown edge: %v", err)
	}
}

func TestBuilderRemoveNode(t *testing.T) {
	b := removalFixture(t)
	// Node 2 holds skills x and y and the graph's max authority term.
	b.RemoveEdge(1, 2)
	b.RemoveEdge(2, 3)
	b.RemoveNode(2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumRemoved() != 1 {
		t.Fatalf("nodes %d removed %d", g.NumNodes(), g.NumRemoved())
	}
	if g.ValidNode(2) || !g.Removed(2) {
		t.Fatal("tombstone not reflected")
	}
	if g.Degree(2) != 0 || len(g.Skills(2)) != 0 {
		t.Fatal("tombstone keeps edges or skills")
	}
	for _, s := range []string{"x", "y"} {
		id, ok := g.SkillID(s)
		if !ok {
			t.Fatalf("skill %s vanished from the universe", s)
		}
		for _, holder := range g.ExpertsWithSkill(id) {
			if holder == 2 {
				t.Fatalf("tombstone still holds %s", s)
			}
		}
	}
	// Authority bounds exclude the tombstone (inv 1/8 was the min
	// before removal among a=2,4,8,16 → now 1/16 … no: removing a=8
	// leaves 2,4,16; min inv = 1/16, max = 1/2).
	if lo, hi := g.InvAuthorityBounds(); lo != 1.0/16 || hi != 0.5 {
		t.Fatalf("inv bounds (%v,%v)", lo, hi)
	}

	// Removing a non-isolated node, or twice, is a sticky error.
	b2 := removalFixture(t)
	b2.RemoveNode(2)
	if _, err := b2.Build(); err == nil {
		t.Fatal("removal of wired node accepted")
	}
	b3 := removalFixture(t)
	b3.RemoveEdge(1, 2)
	b3.RemoveEdge(2, 3)
	b3.RemoveNode(2)
	b3.RemoveNode(2)
	if _, err := b3.Build(); !errors.Is(err, ErrRemovedNode) {
		t.Fatalf("double removal: %v", err)
	}
	// Edges to tombstones are rejected.
	b4 := removalFixture(t)
	b4.RemoveEdge(1, 2)
	b4.RemoveEdge(2, 3)
	b4.RemoveNode(2)
	b4.AddEdge(0, 2, 0.4)
	if _, err := b4.Build(); !errors.Is(err, ErrRemovedNode) {
		t.Fatalf("edge to tombstone: %v", err)
	}
}

func TestTombstoneRoundTrips(t *testing.T) {
	b := removalFixture(t)
	b.RemoveEdge(1, 2)
	b.RemoveEdge(2, 3)
	b.RemoveNode(2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Write/Read round trip keeps the tombstone.
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Removed(2) || g2.NumRemoved() != 1 || g2.ValidNode(2) {
		t.Fatal("serialization dropped the tombstone")
	}
	if lo, hi := g2.InvAuthorityBounds(); lo != 1.0/16 || hi != 0.5 {
		t.Fatalf("round-tripped inv bounds (%v,%v)", lo, hi)
	}

	// Thaw carries the tombstone into the next builder generation.
	g3, err := g.Thaw(0, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g3.Removed(2) || g3.NumRemoved() != 1 {
		t.Fatal("Thaw dropped the tombstone")
	}
}
