package expertgraph

// Thaw copies g into a fresh Builder so an extended graph can be built
// without mutating g — the materialization primitive of the live
// mutation overlay, which replays a delta of added nodes, edges and
// skill grants on top of a frozen base graph. Capacity hints reserve
// room for the delta so the copy does not reallocate while replaying.
func (g *Graph) Thaw(extraNodeHint, extraEdgeHint int) *Builder {
	b := NewBuilder(g.NumNodes()+extraNodeHint, g.NumEdges()+extraEdgeHint)
	// Intern skills in ID order so the thawed builder assigns the same
	// SkillIDs as g, keeping delta mutations that reference existing
	// skills stable across materializations.
	for s := 0; s < g.NumSkills(); s++ {
		b.Skill(g.SkillName(SkillID(s)))
	}
	for u := 0; u < g.NumNodes(); u++ {
		nd := g.Node(NodeID(u))
		id := b.AddNode(nd.Name, nd.Authority)
		b.SetPubs(id, nd.Pubs)
		for _, s := range g.Skills(NodeID(u)) {
			b.AddSkillTo(id, g.SkillName(s))
		}
		if g.Removed(NodeID(u)) {
			b.RemoveNode(id) // tombstones carry over; removed nodes have no edges
		}
	}
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		g.Neighbors(u, func(v NodeID, w float64) bool {
			if u < v {
				b.AddEdge(u, v, w)
			}
			return true
		})
	}
	return b
}
